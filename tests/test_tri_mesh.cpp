// Tests for the 2D adaptive triangle mesh: generation, Rivara refinement
// (conformity, forest invariants, leaf accounting), coarsening round-trips
// and dual-graph extraction.

#include <gtest/gtest.h>

#include <cmath>

#include "graph/builder.hpp"
#include "mesh/dual.hpp"
#include "mesh/generate.hpp"
#include "mesh/metrics.hpp"
#include "mesh/tri_mesh.hpp"

namespace pnr::mesh {
namespace {

TriMesh unit_square(int n = 4, double jitter = 0.0, std::uint64_t seed = 1) {
  return structured_tri_mesh(n, n, jitter, seed);
}

std::vector<ElemIdx> leaves_in_disc(const TriMesh& m, double cx, double cy,
                                    double r) {
  std::vector<ElemIdx> out;
  for (const ElemIdx e : m.leaf_elements()) {
    const Point2 c = m.centroid(e);
    if ((c.x - cx) * (c.x - cx) + (c.y - cy) * (c.y - cy) < r * r)
      out.push_back(e);
  }
  return out;
}

TEST(Generate, StructuredCountsMatch) {
  const TriMesh m = unit_square(4);
  EXPECT_EQ(m.num_initial_elements(), 32);
  EXPECT_EQ(m.num_leaves(), 32);
  EXPECT_EQ(m.num_vertices_alive(), 25);
  EXPECT_TRUE(m.check_invariants().empty()) << m.check_invariants();
}

TEST(Generate, PaperMeshSize) {
  const TriMesh m = paper_initial_tri_mesh();
  EXPECT_EQ(m.num_initial_elements(), 2 * 79 * 79);
  EXPECT_TRUE(m.check_invariants().empty()) << m.check_invariants();
}

TEST(Generate, JitterKeepsPositiveAreas) {
  const TriMesh m = unit_square(8, 0.3, 42);
  for (const ElemIdx e : m.leaf_elements())
    EXPECT_GT(m.signed_area(e), 0.0);
}

TEST(Generate, TotalAreaIsDomainArea) {
  const TriMesh m = unit_square(6, 0.25, 3);
  double area = 0.0;
  for (const ElemIdx e : m.leaf_elements()) area += m.signed_area(e);
  EXPECT_NEAR(area, 4.0, 1e-9);
}

TEST(Refine, SingleMarkBisectsAndStaysConforming) {
  TriMesh m = unit_square(4);
  const auto before = m.num_leaves();
  const auto bisections = m.refine({0});
  EXPECT_GE(bisections, 1);
  EXPECT_EQ(m.num_leaves(), before + bisections);
  EXPECT_TRUE(m.check_invariants().empty()) << m.check_invariants();
}

TEST(Refine, MarkedElementIsNoLongerLeaf) {
  TriMesh m = unit_square(4);
  m.refine({5});
  EXPECT_FALSE(m.is_leaf(5));
  EXPECT_EQ(m.tri(5).child[0] != kNoElem, true);
}

TEST(Refine, AreaConservedThroughRefinement) {
  TriMesh m = unit_square(4, 0.2, 7);
  m.refine(m.leaf_elements());
  m.refine(leaves_in_disc(m, 0.5, 0.5, 0.5));
  double area = 0.0;
  for (const ElemIdx e : m.leaf_elements()) area += m.signed_area(e);
  EXPECT_NEAR(area, 4.0, 1e-9);
  EXPECT_TRUE(m.check_invariants().empty()) << m.check_invariants();
}

TEST(Refine, UniformRefinementDoublesLeaves) {
  TriMesh m = unit_square(4);
  const auto n0 = m.num_leaves();
  m.refine(m.leaf_elements());
  // Every leaf bisected at least once; propagation may add more.
  EXPECT_GE(m.num_leaves(), 2 * n0);
  EXPECT_TRUE(m.check_invariants().empty());
}

TEST(Refine, DeepLocalRefinementTerminatesAndConforms) {
  TriMesh m = unit_square(8, 0.25, 11);
  for (int round = 0; round < 8; ++round) {
    const auto marked = leaves_in_disc(m, 0.9, 0.9, 0.3);
    ASSERT_FALSE(marked.empty());
    m.refine(marked);
    ASSERT_TRUE(m.check_invariants().empty()) << m.check_invariants();
  }
  EXPECT_GT(m.num_leaves(), 500);
}

TEST(Refine, LeafCountsTrackCoarseAncestors) {
  TriMesh m = unit_square(4);
  m.refine({3});
  std::int64_t total = 0;
  for (ElemIdx c = 0; c < m.num_initial_elements(); ++c)
    total += m.leaf_count(c);
  EXPECT_EQ(total, m.num_leaves());
  EXPECT_GE(m.leaf_count(3), 2);
}

TEST(Refine, LevelsIncreaseMonotonically) {
  TriMesh m = unit_square(4);
  m.refine(m.leaf_elements());
  m.refine(m.leaf_elements());
  for (const ElemIdx e : m.leaf_elements()) {
    const auto& t = m.tri(e);
    EXPECT_GE(t.level, 1);
    EXPECT_LE(t.level, 4);  // propagation bound for two uniform rounds
  }
}

TEST(Coarsen, UndoesSimpleRefinement) {
  TriMesh m = unit_square(4);
  const auto initial_leaves = m.num_leaves();
  const auto initial_verts = m.num_vertices_alive();
  m.refine({0});
  const auto merges = m.coarsen(m.leaf_elements());
  EXPECT_GT(merges, 0);
  EXPECT_TRUE(m.check_invariants().empty()) << m.check_invariants();
  // Coarsening everything marked must return to the initial mesh (possibly
  // needing several passes for deep trees — one suffices for one round).
  EXPECT_EQ(m.num_leaves(), initial_leaves);
  EXPECT_EQ(m.num_vertices_alive(), initial_verts);
}

TEST(Coarsen, MultiPassReturnsToInitialMesh) {
  TriMesh m = unit_square(4, 0.2, 5);
  const auto initial_leaves = m.num_leaves();
  for (int round = 0; round < 3; ++round)
    m.refine(leaves_in_disc(m, 0.0, 0.0, 0.8));
  while (m.coarsen(m.leaf_elements()) > 0) {
    ASSERT_TRUE(m.check_invariants().empty()) << m.check_invariants();
  }
  EXPECT_EQ(m.num_leaves(), initial_leaves);
  for (ElemIdx c = 0; c < m.num_initial_elements(); ++c)
    EXPECT_EQ(m.leaf_count(c), 1);
}

TEST(Coarsen, RefusesWhenMidpointStillUsed) {
  TriMesh m = unit_square(4);
  m.refine({0});
  // Mark only one child: its sibling is unmarked, so nothing may coarsen.
  ElemIdx child = m.tri(0).child[0];
  const auto merges = m.coarsen({child});
  EXPECT_EQ(merges, 0);
}

TEST(Coarsen, SlotsAreRecycled) {
  TriMesh m = unit_square(4);
  m.refine(m.leaf_elements());
  const auto slots_after_refine = m.element_slots();
  while (m.coarsen(m.leaf_elements()) > 0) {
  }
  m.refine(m.leaf_elements());
  EXPECT_EQ(m.element_slots(), slots_after_refine);
}

TEST(Dual, FineDualMatchesLeafCount) {
  TriMesh m = unit_square(4);
  m.refine({0, 1, 2});
  const auto dual = fine_dual_graph(m);
  EXPECT_EQ(dual.graph.num_vertices(),
            static_cast<graph::VertexId>(m.num_leaves()));
  EXPECT_TRUE(dual.graph.validate().empty()) << dual.graph.validate();
  // Every dual vertex weight is 1 (fine graph counts elements).
  for (graph::VertexId v = 0; v < dual.graph.num_vertices(); ++v)
    EXPECT_EQ(dual.graph.vertex_weight(v), 1);
}

TEST(Dual, FineDualDegreesAtMostThree) {
  TriMesh m = unit_square(5, 0.2, 9);
  m.refine(leaves_in_disc(m, 0.5, 0.5, 0.6));
  const auto dual = fine_dual_graph(m);
  for (graph::VertexId v = 0; v < dual.graph.num_vertices(); ++v)
    EXPECT_LE(dual.graph.degree(v), 3);
}

TEST(Dual, NestedWeightsSumToLeaves) {
  TriMesh m = unit_square(4);
  for (int round = 0; round < 3; ++round)
    m.refine(leaves_in_disc(m, 0.9, 0.9, 0.4));
  const auto g = nested_dual_graph(m);
  EXPECT_EQ(g.num_vertices(), m.num_initial_elements());
  EXPECT_EQ(g.total_vertex_weight(), m.num_leaves());
  EXPECT_TRUE(g.validate().empty()) << g.validate();
}

TEST(Dual, NestedEdgeWeightsCountAdjacentLeafPairs) {
  // Refine one element heavily; edges of its coarse vertex must gain weight.
  TriMesh m = unit_square(2);  // 8 initial triangles
  const auto g0 = nested_dual_graph(m);
  for (int round = 0; round < 3; ++round) {
    std::vector<ElemIdx> marked;
    for (const ElemIdx e : m.leaf_elements())
      if (m.tri(e).coarse == 0) marked.push_back(e);
    m.refine(marked);
  }
  const auto g1 = nested_dual_graph(m);
  EXPECT_GT(g1.vertex_weight(0), g0.vertex_weight(0));
  EXPECT_GE(g1.weighted_degree(0), g0.weighted_degree(0));
}

TEST(Dual, IncrementalInterfaceWeightsMatchBruteForce) {
  // The nested graph is assembled from incrementally maintained interface
  // counters; they must agree with a scan of the fine leaf edges after an
  // arbitrary refine/coarsen history.
  TriMesh m = unit_square(5, 0.2, 23);
  for (int round = 0; round < 3; ++round) {
    m.refine(leaves_in_disc(m, 0.4, -0.2, 0.7));
    m.coarsen(leaves_in_disc(m, -0.5, 0.5, 0.5));
  }
  const auto g = nested_dual_graph(m);

  graph::GraphBuilder brute(m.num_initial_elements());
  for (ElemIdx c = 0; c < m.num_initial_elements(); ++c)
    brute.set_vertex_weight(c, m.leaf_count(c));
  m.for_each_leaf_edge([&](VertIdx, VertIdx, ElemIdx e1, ElemIdx e2) {
    if (e1 == kNoElem || e2 == kNoElem) return;
    if (m.tri(e1).coarse != m.tri(e2).coarse)
      brute.add_edge(m.tri(e1).coarse, m.tri(e2).coarse, 1);
  });
  const auto expected = brute.build();

  ASSERT_EQ(g.num_vertices(), expected.num_vertices());
  ASSERT_EQ(g.num_edges(), expected.num_edges());
  for (graph::VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(g.vertex_weight(v), expected.vertex_weight(v));
    for (const graph::VertexId u : expected.neighbors(v))
      EXPECT_EQ(g.edge_weight(v, u), expected.edge_weight(v, u));
  }
}

TEST(Dual, ProjectionAssignsAncestorSubset) {
  TriMesh m = unit_square(2);
  m.refine(m.leaf_elements());
  const auto leaves = m.leaf_elements();
  std::vector<part::PartId> coarse(static_cast<std::size_t>(m.num_initial_elements()));
  for (std::size_t c = 0; c < coarse.size(); ++c)
    coarse[c] = static_cast<part::PartId>(c % 2);
  const auto fine = project_coarse_assignment(m, leaves, coarse);
  for (std::size_t i = 0; i < leaves.size(); ++i)
    EXPECT_EQ(fine[i],
              coarse[static_cast<std::size_t>(m.tri(leaves[i]).coarse)]);
}

TEST(Metrics, SharedVerticesSimpleSplit) {
  // 2×2 grid split left/right: the three middle-column vertices are shared.
  TriMesh m = unit_square(2);
  const auto leaves = m.leaf_elements();
  std::vector<part::PartId> assign(leaves.size());
  for (std::size_t i = 0; i < leaves.size(); ++i)
    assign[i] = m.centroid(leaves[i]).x < 0.0 ? 0 : 1;
  EXPECT_EQ(shared_vertices(m, leaves, assign), 3);
}

TEST(Metrics, NoSharedVerticesForSinglePart) {
  TriMesh m = unit_square(3);
  const auto leaves = m.leaf_elements();
  std::vector<part::PartId> assign(leaves.size(), 0);
  EXPECT_EQ(shared_vertices(m, leaves, assign), 0);
}

TEST(Metrics, AdjacentSubdomainsOnStripes) {
  // Three vertical stripes: the middle one touches both others, the outer
  // ones touch only the middle.
  TriMesh m = unit_square(6);
  const auto dual = fine_dual_graph(m);
  std::vector<part::PartId> assign(dual.elems.size());
  for (std::size_t i = 0; i < dual.elems.size(); ++i) {
    const double x = m.centroid(dual.elems[i]).x;
    assign[i] = x < -0.33 ? 0 : (x < 0.33 ? 1 : 2);
  }
  const auto counts = adjacent_subdomains(dual.graph, assign, 3);
  ASSERT_EQ(counts.size(), 3u);
  EXPECT_EQ(counts[0], 1);
  EXPECT_EQ(counts[1], 2);
  EXPECT_EQ(counts[2], 1);
}

TEST(Metrics, QualityAnglesBounded) {
  const TriMesh m = unit_square(6, 0.25, 13);
  const auto q = mesh_quality(m);
  EXPECT_GT(q.min_angle_deg, 5.0);
  EXPECT_LT(q.max_angle_deg, 175.0);
  EXPECT_GT(q.min_volume, 0.0);
}

TEST(Boundary, MaskMarksPerimeterOnly) {
  const TriMesh m = unit_square(3);
  const auto mask = m.boundary_vertex_mask();
  int boundary = 0;
  for (std::int64_t v = 0; v < static_cast<std::int64_t>(m.vertex_slots()); ++v)
    boundary += mask[static_cast<std::size_t>(v)] ? 1 : 0;
  EXPECT_EQ(boundary, 12);  // 4×4 grid: 16 vertices, 4 interior
}

}  // namespace
}  // namespace pnr::mesh
