// Tests for the pnr::check deep-invariant validators: a randomized
// refine → repartition → coarsen round-trip that runs the level-2 audits
// after every phase, and negative tests that corrupt a CSR graph, a conn
// table, and the forest ↔ dual-graph contract and assert each validator
// reports the *precise* defect (by violation code).

#include <gtest/gtest.h>

#include <vector>

#include "check/check.hpp"
#include "graph/builder.hpp"
#include "mesh/dual.hpp"
#include "mesh/generate.hpp"
#include "partition/conn.hpp"
#include "partition/pairqueue.hpp"
#include "pared/session.hpp"
#include "util/prof.hpp"
#include "util/rng.hpp"

namespace pnr {
namespace {

using check::CheckReport;

graph::Graph grid_graph(int nx, int ny) {
  graph::GraphBuilder b(nx * ny);
  auto id = [&](int i, int j) {
    return static_cast<graph::VertexId>(j * nx + i);
  };
  for (int j = 0; j < ny; ++j)
    for (int i = 0; i < nx; ++i) {
      if (i + 1 < nx) b.add_edge(id(i, j), id(i + 1, j));
      if (j + 1 < ny) b.add_edge(id(i, j), id(i, j + 1));
    }
  return b.build();
}

/// Left/right halves of an nx-wide grid.
part::Partition halves(const graph::Graph& g, int nx) {
  std::vector<part::PartId> assign(static_cast<std::size_t>(g.num_vertices()));
  for (std::size_t v = 0; v < assign.size(); ++v)
    assign[v] = static_cast<int>(v) % nx < nx / 2 ? 0 : 1;
  return part::Partition(2, std::move(assign));
}

// ---- CheckReport ----------------------------------------------------------

TEST(CheckReport, CollectsQueriesAndCaps) {
  CheckReport r("demo");
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.to_string(), "demo: ok");
  r.fail("a.b", "first");
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.has("a.b"));
  EXPECT_FALSE(r.has("a"));
  for (int i = 0; i < 100; ++i) r.fail("spam", "again");
  EXPECT_EQ(r.violations().size(), CheckReport::kMaxViolations);
  EXPECT_EQ(r.dropped(), 101 - static_cast<std::int64_t>(
                                   CheckReport::kMaxViolations));
  EXPECT_NE(r.to_string().find("dropped"), std::string::npos);
  EXPECT_NE(r.to_string().find("a.b: first"), std::string::npos);
}

TEST(CheckReport, EnforceAbortsWithTheFullReport) {
  CheckReport bad("demo");
  bad.fail("csr.asymmetric", "edge {1,2} weights disagree");
  EXPECT_DEATH(check::enforce(bad, "test.site"), "csr.asymmetric");
}

// ---- check_graph ----------------------------------------------------------

TEST(CheckGraph, BuilderOutputPassesStrictAudit) {
  const graph::Graph g = grid_graph(6, 5);
  check::GraphCheckOptions opt;
  opt.require_sorted_adjacency = true;
  opt.require_positive_vertex_weights = true;
  opt.require_positive_edge_weights = true;
  const CheckReport r = check::check_graph(g, opt);
  EXPECT_TRUE(r.ok()) << r.to_string();
}

TEST(CheckGraph, DetectsAsymmetricEdgeWeight) {
  // Edge {0,1} stored with weight 2 forward and 3 backward.
  graph::Graph g({0, 1, 2}, {1, 0}, {2, 3}, {1, 1});
  const CheckReport r = check::check_graph(g);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.has("csr.asymmetric")) << r.to_string();
}

TEST(CheckGraph, DetectsSelfLoopUnlessAllowed) {
  graph::Graph g({0, 2, 4}, {0, 1, 0, 1}, {1, 1, 1, 1}, {1, 1});
  EXPECT_TRUE(check::check_graph(g).has("csr.self_loop"));
  check::GraphCheckOptions opt;
  opt.allow_self_loops = true;
  EXPECT_FALSE(check::check_graph(g, opt).has("csr.self_loop"));
}

TEST(CheckGraph, DetectsDuplicateArcAndRange) {
  graph::Graph dup({0, 2, 4}, {1, 1, 0, 0}, {1, 1, 1, 1}, {1, 1});
  EXPECT_TRUE(check::check_graph(dup).has("csr.duplicate"));
  graph::Graph range({0, 1, 2}, {5, 0}, {1, 1}, {1, 1});
  EXPECT_TRUE(check::check_graph(range).has("csr.range"));
}

TEST(CheckGraph, DetectsBadWeightsAndUnsortedAdjacency) {
  graph::Graph neg({0, 1, 2}, {1, 0}, {1, 1}, {-1, 1});
  EXPECT_TRUE(check::check_graph(neg).has("weight.vertex"));

  // Triangle listed as {2,1} at vertex 0: valid CSR, just unsorted.
  graph::Graph uns({0, 2, 4, 6}, {2, 1, 0, 2, 1, 0}, {1, 1, 1, 1, 1, 1},
                   {1, 1, 1});
  EXPECT_TRUE(check::check_graph(uns).ok());
  check::GraphCheckOptions opt;
  opt.require_sorted_adjacency = true;
  EXPECT_TRUE(check::check_graph(uns, opt).has("csr.unsorted"));
}

// ---- check_partition / check_partition_state ------------------------------

TEST(CheckPartition, DetectsShapeRangeAndEmptySubset) {
  const graph::Graph g = grid_graph(4, 4);
  part::Partition pi = halves(g, 4);
  EXPECT_TRUE(check::check_partition(g, pi).ok());

  part::Partition short_pi(2, std::vector<part::PartId>(3, 0));
  EXPECT_TRUE(check::check_partition(g, short_pi).has("part.size"));

  part::Partition bad = halves(g, 4);
  bad.assign[5] = 7;
  EXPECT_TRUE(check::check_partition(g, bad).has("part.range"));

  part::Partition empty(3, halves(g, 4).assign);  // subset 2 unused
  EXPECT_TRUE(check::check_partition(g, empty).has("part.empty_subset"));
}

TEST(CheckPartitionState, ExactForBuiltAndDeltaUpdatedTables) {
  const graph::Graph g = grid_graph(6, 6);
  part::Partition pi = halves(g, 6);
  part::ConnTable conn;
  conn.build(g, pi.assign, pi.num_parts);
  auto weights = part::part_weights(g, pi);
  EXPECT_TRUE(check::check_partition_state(g, pi, conn, nullptr, &weights)
                  .ok());

  // Drive the real delta-update machinery and re-audit: move every vertex
  // of column nx/2 across, one at a time.
  for (graph::VertexId v = 0; v < g.num_vertices(); ++v) {
    if (static_cast<int>(v) % 6 != 3) continue;
    part::conn_apply_move(conn, g, v, 1, 0);
    pi.assign[static_cast<std::size_t>(v)] = 0;
    weights[1] -= g.vertex_weight(v);
    weights[0] += g.vertex_weight(v);
    const CheckReport r =
        check::check_partition_state(g, pi, conn, nullptr, &weights);
    EXPECT_TRUE(r.ok()) << r.to_string();
  }
}

TEST(CheckPartitionState, DetectsCorruptedConnRow) {
  const graph::Graph g = grid_graph(4, 4);
  const part::Partition pi = halves(g, 4);
  {
    part::ConnTable conn;
    conn.build(g, pi.assign, pi.num_parts);
    conn.add(1, 1, 1);  // vertex 1 has a real slot for subset 1: wrong weight
    EXPECT_TRUE(check::check_partition_state(g, pi, conn).has("conn.weight"));
  }
  {
    part::ConnTable conn;
    conn.build(g, pi.assign, pi.num_parts);
    conn.add(0, 1, 3);  // vertex 0 has no edge into subset 1: phantom slot
    EXPECT_TRUE(check::check_partition_state(g, pi, conn).has("conn.phantom"));
  }
}

TEST(CheckPartitionState, DetectsBoundaryAndWeightDesync) {
  const graph::Graph g = grid_graph(4, 4);
  const part::Partition pi = halves(g, 4);
  part::ConnTable conn;
  conn.build(g, pi.assign, pi.num_parts);

  part::VertexSet boundary;
  boundary.reset(static_cast<std::size_t>(g.num_vertices()));
  for (graph::VertexId v = 0; v < g.num_vertices(); ++v)
    if (conn.is_boundary(v, pi.assign[static_cast<std::size_t>(v)]))
      boundary.insert(v);
  EXPECT_TRUE(check::check_partition_state(g, pi, conn, &boundary).ok());

  boundary.erase(boundary.items().front());
  EXPECT_TRUE(check::check_partition_state(g, pi, conn, &boundary)
                  .has("boundary.missing"));
  boundary.insert(0);  // corner vertex, interior to subset 0
  EXPECT_TRUE(check::check_partition_state(g, pi, conn, &boundary)
                  .has("boundary.phantom"));

  auto weights = part::part_weights(g, pi);
  weights[0] += 1;
  EXPECT_TRUE(check::check_partition_state(g, pi, conn, nullptr, &weights)
                  .has("weights.mismatch"));
}

// ---- check_pairqueue ------------------------------------------------------

TEST(CheckPairQueue, StaysConsistentThroughMixedOperations) {
  part::PairQueueTable q(3, 16);
  util::Rng rng(11);
  for (int round = 0; round < 200; ++round) {
    const auto v = static_cast<graph::VertexId>(rng.next_below(16));
    // The table files every entry of v under its current subset; keep that
    // contract by deriving `from` from the vertex id.
    const auto from = static_cast<part::PartId>(v % 3);
    const auto to = static_cast<part::PartId>(
        (from + 1 + static_cast<part::PartId>(rng.next_below(2))) % 3);
    const auto op = rng.next_below(4);
    if (op <= 1)
      q.push_or_update(v, from, to,
                       static_cast<double>(rng.next_below(100)) - 50.0);
    else if (op == 2)
      q.pop_best();
    else
      q.remove_all(v, from);
    const CheckReport r = check::check_pairqueue(q);
    ASSERT_TRUE(r.ok()) << "round " << round << ": " << r.to_string();
  }
}

// ---- check_forest ---------------------------------------------------------

TEST(CheckForest, DetectsCorruptedDualWeights) {
  mesh::TriMesh m = mesh::structured_tri_mesh(6, 6, 0.2, 3);
  util::Rng rng(3);
  auto leaves = m.leaf_elements();
  std::vector<mesh::ElemIdx> marked;
  for (const mesh::ElemIdx e : leaves)
    if (rng.next_below(3) == 0) marked.push_back(e);
  m.refine(marked);

  graph::Graph nested = mesh::nested_dual_graph(m);
  EXPECT_TRUE(check::check_forest(m, nested).ok());

  graph::Graph bad_vwgt = nested;
  bad_vwgt.set_vertex_weight(0, bad_vwgt.vertex_weight(0) + 1);
  EXPECT_TRUE(check::check_forest(m, bad_vwgt).has("forest.leaf_weight"));

  // Desynchronize one interface count.
  mesh::ElemIdx c1 = mesh::kNoElem, c2 = mesh::kNoElem;
  std::int64_t w = 0;
  m.for_each_coarse_interface(
      [&](mesh::ElemIdx a, mesh::ElemIdx b, std::int64_t weight) {
        if (c1 == mesh::kNoElem) { c1 = a; c2 = b; w = weight; }
      });
  ASSERT_NE(c1, mesh::kNoElem);
  graph::Graph bad_ewgt = nested;
  ASSERT_TRUE(bad_ewgt.set_edge_weight(c1, c2, w + 1));
  EXPECT_TRUE(
      check::check_forest(m, bad_ewgt).has("forest.interface_weight"));

  // A dual of the wrong shape is rejected outright.
  const graph::Graph wrong = grid_graph(2, 2);
  EXPECT_TRUE(check::check_forest(m, wrong).has("forest.vertex_count"));
}

// ---- randomized round-trip ------------------------------------------------

template <typename Mesh>
void expect_mesh_phase_ok(const Mesh& m, const char* phase) {
  const CheckReport rm = check::check_mesh(m);
  EXPECT_TRUE(rm.ok()) << phase << ": " << rm.to_string();

  const graph::Graph nested = mesh::nested_dual_graph(m);
  check::GraphCheckOptions opt;
  opt.require_sorted_adjacency = true;
  opt.require_positive_vertex_weights = true;
  opt.require_positive_edge_weights = true;
  const CheckReport rg = check::check_graph(nested, opt);
  EXPECT_TRUE(rg.ok()) << phase << ": " << rg.to_string();

  const CheckReport rf = check::check_forest(m, nested);
  EXPECT_TRUE(rf.ok()) << phase << ": " << rf.to_string();
}

template <typename Mesh>
void expect_partition_phase_ok(const Mesh& m, part::PartId p,
                               const char* phase) {
  const auto dual = mesh::fine_dual_graph(m);
  const auto elems = m.leaf_elements();
  std::vector<part::PartId> assign(elems.size());
  for (std::size_t i = 0; i < elems.size(); ++i)
    assign[i] = m.tag(elems[i]);
  part::Partition pi(p, std::move(assign));
  const CheckReport rp = check::check_partition(dual.graph, pi);
  EXPECT_TRUE(rp.ok()) << phase << ": " << rp.to_string();

  part::ConnTable conn;
  conn.build(dual.graph, pi.assign, p);
  const CheckReport rs = check::check_partition_state(dual.graph, pi, conn);
  EXPECT_TRUE(rs.ok()) << phase << ": " << rs.to_string();
}

template <typename Mesh, typename Session>
void run_round_trip(Mesh m, Session session, part::PartId p,
                    std::uint64_t seed, int steps) {
  util::Rng rng(seed);
  for (int step = 0; step < steps; ++step) {
    auto leaves = m.leaf_elements();
    std::vector<mesh::ElemIdx> marked;
    for (const mesh::ElemIdx e : leaves)
      if (rng.next_below(4) == 0) marked.push_back(e);
    m.refine(marked);
    expect_mesh_phase_ok(m, "refine");

    session.step(m);
    expect_partition_phase_ok(m, p, "repartition");

    leaves = m.leaf_elements();
    marked.clear();
    for (const mesh::ElemIdx e : leaves)
      if (rng.next_below(4) == 0) marked.push_back(e);
    m.coarsen(marked);
    expect_mesh_phase_ok(m, "coarsen");
  }
}

TEST(CheckRoundTrip, RefineRepartitionCoarsen2D) {
  run_round_trip(mesh::structured_tri_mesh(8, 8, 0.2, 5),
                 pared::Session2D(pared::Strategy::kPNR, 4, 5), 4, 5, 3);
}

TEST(CheckRoundTrip, RefineRepartitionCoarsen3D) {
  run_round_trip(mesh::structured_tet_mesh(3, 3, 3, 0.1, 9),
                 pared::Session3D(pared::Strategy::kPNR, 4, 9), 4, 9, 2);
}

// ---- prof surfacing -------------------------------------------------------

#ifndef PNR_PROF_DISABLE
TEST(CheckCounters, AuditsSurfaceAsProfCounters) {
  // Build the graph before arming prof: at PNR_CHECK_LEVEL >= 2 the
  // builder's own audit would otherwise bump check.audits too.
  const graph::Graph g = grid_graph(3, 3);
  prof::reset();
  prof::set_enabled(true);
  check::enforce(check::check_graph(g), "test.site");
  prof::set_enabled(false);
  const prof::Report snap = prof::snapshot();
  std::int64_t audits = 0, graph_audits = 0;
  for (const auto& c : snap.counters) {
    if (c.name == "check.audits") audits = c.value;
    if (c.name == "check.graph") graph_audits = c.value;
  }
  EXPECT_EQ(audits, 1);
  EXPECT_EQ(graph_audits, 1);
  prof::reset();
}
#endif

}  // namespace
}  // namespace pnr
