// Tests for the message-passing simulator (point-to-point ordering,
// collectives, traffic accounting), serialization, the Section 8 migration
// model, and the full P0–P3 coordinator protocol.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>

#include "fem/problems.hpp"
#include "graph/builder.hpp"
#include "mesh/generate.hpp"
#include "parallel/comm.hpp"
#include "parallel/model.hpp"
#include "parallel/protocol.hpp"
#include "parallel/serialize.hpp"

namespace pnr::par {
namespace {

TEST(Comm, PointToPointFifoPerChannel) {
  World world(2);
  world.run([](Comm& c) {
    if (c.rank() == 0) {
      for (int k = 0; k < 10; ++k) {
        Writer w;
        w.put(k);
        c.send(1, 7, w.take());
      }
    } else {
      for (int k = 0; k < 10; ++k) {
        Reader r(c.recv(0, 7));
        EXPECT_EQ(r.get<int>(), k);
      }
    }
  });
}

TEST(Comm, TagsAreIndependentChannels) {
  World world(2);
  world.run([](Comm& c) {
    if (c.rank() == 0) {
      Writer a, b;
      a.put(1);
      b.put(2);
      c.send(1, 100, a.take());
      c.send(1, 200, b.take());
    } else {
      // Receive in the opposite order of sending: tags keep them apart.
      Reader r2(c.recv(0, 200));
      Reader r1(c.recv(0, 100));
      EXPECT_EQ(r2.get<int>(), 2);
      EXPECT_EQ(r1.get<int>(), 1);
    }
  });
}

TEST(Comm, GatherBroadcastReduce) {
  World world(4);
  world.run([](Comm& c) {
    Writer w;
    w.put(c.rank() * 10);
    const auto all = c.gather(0, w.take());
    if (c.rank() == 0) {
      ASSERT_EQ(all.size(), 4u);
      for (int r = 0; r < 4; ++r) {
        Reader reader(all[static_cast<std::size_t>(r)]);
        EXPECT_EQ(reader.get<int>(), r * 10);
      }
    }
    Bytes b;
    if (c.rank() == 0) {
      Writer bw;
      bw.put(99);
      b = bw.take();
    }
    b = c.broadcast(0, std::move(b));
    Reader br(b);
    EXPECT_EQ(br.get<int>(), 99);

    EXPECT_EQ(c.all_reduce_sum(c.rank() + 1), 1 + 2 + 3 + 4);
    EXPECT_DOUBLE_EQ(c.all_reduce_max(static_cast<double>(c.rank())), 3.0);
  });
}

TEST(Comm, BarrierSynchronizes) {
  World world(4);
  std::atomic<int> phase_one{0};
  world.run([&](Comm& c) {
    phase_one.fetch_add(1);
    c.barrier();
    EXPECT_EQ(phase_one.load(), 4);
  });
}

TEST(Comm, TrafficCountersAccumulate) {
  World world(2);
  world.run([](Comm& c) {
    if (c.rank() == 0) c.send(1, 1, Bytes(128));
    else c.recv(0, 1);
    c.barrier();
  });
  EXPECT_GE(world.total_bytes(), 128);
  EXPECT_GE(world.total_messages(), 1);
}

TEST(Comm, ReusableAcrossRuns) {
  World world(2);
  for (int round = 0; round < 3; ++round) {
    world.run([round](Comm& c) {
      const auto sum = c.all_reduce_sum(round);
      EXPECT_EQ(sum, 2 * round);
    });
  }
}

TEST(Serialize, RoundTripsPodsAndVectors) {
  Writer w;
  w.put<std::int32_t>(-7);
  w.put<double>(3.25);
  w.put_vector<std::int64_t>({1, 2, 3});
  w.put_vector<double>({});
  Reader r(w.take());
  EXPECT_EQ(r.get<std::int32_t>(), -7);
  EXPECT_DOUBLE_EQ(r.get<double>(), 3.25);
  const auto v = r.get_vector<std::int64_t>();
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v[2], 3);
  EXPECT_TRUE(r.get_vector<double>().empty());
  EXPECT_TRUE(r.done());
}

TEST(Model, PathGraphCost) {
  // 3 processors in a path, origin at the end: d = {0,1,2}, m=6, p=3 →
  // (1+2)·2 = 6.
  graph::GraphBuilder b(3);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  const auto h = b.build();
  EXPECT_DOUBLE_EQ(migration_cost_model(h, 0, 6), 6.0);
  // Center origin: (1+1)·2 = 4.
  EXPECT_DOUBLE_EQ(migration_cost_model(h, 1, 6), 4.0);
}

TEST(Model, CornerBoundFormula) {
  // 2(√p−1)(p−1)m/p for p=16, m=16: 2·3·15·1 = 90.
  EXPECT_DOUBLE_EQ(corner_mesh_bound(16, 16), 90.0);
  EXPECT_LE(corner_mesh_bound(16, 16), 2.0 * 4.0 * 16.0);
}

class Protocol : public ::testing::TestWithParam<int> {};

TEST_P(Protocol, RunsStepsAndConservesOwnership) {
  const int procs = GetParam();
  World world(procs);
  std::atomic<std::int64_t> moved_total{0};
  world.run([&](Comm& c) {
    core::PnrOptions options;
    ParedRank rank(c, mesh::structured_tri_mesh(10, 10, 0.25, 2), options, 17);
    rank.initialize();

    for (int step = 0; step < 3; ++step) {
      const auto field = fem::moving_peak(-0.5 + 0.15 * step);
      fem::MarkOptions mark;
      mark.refine_threshold = 0.03;
      mark.coarsen_threshold = 0.006;
      mark.max_level = 4;
      const auto stats = rank.step(field, mark);

      // Global leaf conservation: owned leaves across ranks must equal the
      // replicated mesh's leaf count.
      const auto owned = c.all_reduce_sum(rank.owned_leaves());
      EXPECT_EQ(owned, rank.local_mesh().num_leaves());
      EXPECT_LE(stats.imbalance_after, 0.25);
      if (c.rank() == 0) moved_total.fetch_add(stats.elements_moved);

      // Ownership vectors agree across ranks (checked via checksum).
      std::int64_t checksum = 0;
      for (std::size_t i = 0; i < rank.ownership().size(); ++i)
        checksum += static_cast<std::int64_t>(i + 1) * rank.ownership()[i];
      const auto sum = c.all_reduce_sum(checksum);
      EXPECT_EQ(sum, checksum * procs);
    }
  });
  EXPECT_GE(moved_total.load(), 0);
}

INSTANTIATE_TEST_SUITE_P(Ranks, Protocol, ::testing::Values(1, 2, 4, 7));

TEST(Protocol3D, TetrahedralMeshRoundTrips) {
  World world(3);
  world.run([&](Comm& c) {
    core::PnrOptions options;
    ParedRank3D rank(c, mesh::structured_tet_mesh(4, 4, 4, 0.1, 2), options,
                     23);
    rank.initialize();
    fem::ScalarField3 field = fem::corner_problem_3d();
    fem::MarkOptions mark;
    mark.refine_threshold = 0.01;
    mark.max_level = 3;
    for (int step = 0; step < 2; ++step) {
      const auto stats = rank.step(field, mark);
      EXPECT_GE(stats.bisections, 0);
      const auto owned = c.all_reduce_sum(rank.owned_leaves());
      EXPECT_EQ(owned, rank.local_mesh().num_leaves());
      mark.refine_threshold /= 4.0;  // deepen next step
    }
  });
}

TEST(ProtocolTraffic, PayloadScalesWithMigration) {
  World world(4);
  std::atomic<std::int64_t> payload{0};
  std::atomic<std::int64_t> moved{0};
  world.run([&](Comm& c) {
    core::PnrOptions options;
    ParedRank rank(c, mesh::structured_tri_mesh(8, 8, 0.2, 3), options, 11);
    rank.initialize();
    const auto field = fem::moving_peak(-0.2);
    fem::MarkOptions mark;
    mark.refine_threshold = 0.02;
    mark.max_level = 4;
    const auto stats = rank.step(field, mark);
    if (c.rank() == 0) {
      payload.store(stats.payload_bytes);
      moved.store(stats.elements_moved);
    }
  });
  if (moved.load() > 0) {
    // Every migrated element costs at least one serialized node record.
    EXPECT_GE(payload.load(), moved.load() * 10);
  }
}

}  // namespace
}  // namespace pnr::par
