// Tests for the flow-directed rebalancer (PNR's phase A) — drains
// overweight subsets through the Hu–Blake potentials without ping-pong.

#include <gtest/gtest.h>

#include "graph/builder.hpp"
#include "partition/rebalance.hpp"
#include "util/rng.hpp"

namespace pnr::part {
namespace {

Graph grid_graph(int nx, int ny) {
  graph::GraphBuilder b(nx * ny);
  auto id = [&](int i, int j) { return static_cast<graph::VertexId>(j * nx + i); };
  for (int j = 0; j < ny; ++j)
    for (int i = 0; i < nx; ++i) {
      if (i + 1 < nx) b.add_edge(id(i, j), id(i + 1, j));
      if (j + 1 < ny) b.add_edge(id(i, j), id(i, j + 1));
    }
  return b.build();
}

TEST(Rebalance, NoopWhenBalanced) {
  const Graph g = grid_graph(8, 8);
  Partition pi(2, std::vector<PartId>(64));
  for (int v = 0; v < 64; ++v)
    pi.assign[static_cast<std::size_t>(v)] = (v % 8 < 4) ? 0 : 1;
  const auto r = rebalance_greedy(g, pi);
  EXPECT_TRUE(r.balanced);
  EXPECT_EQ(r.moves, 0);
}

TEST(Rebalance, DrainsOneOverweightPart) {
  const Graph g = grid_graph(8, 8);
  // 3/4 of the grid on part 0.
  Partition pi(2, std::vector<PartId>(64));
  for (int j = 0; j < 8; ++j)
    for (int i = 0; i < 8; ++i)
      pi.assign[static_cast<std::size_t>(j * 8 + i)] = i >= 6 ? 1 : 0;
  RebalanceOptions opt;
  opt.tol = 0.02;
  const auto r = rebalance_greedy(g, pi, opt);
  EXPECT_TRUE(r.balanced);
  EXPECT_GT(r.moves, 0);
  EXPECT_LE(imbalance(g, pi), 0.05);
  // Weight moved ≈ the imbalance (32 − 16 = 16 vertices), not the mesh.
  EXPECT_LE(r.weight_moved, 24);
}

TEST(Rebalance, PushesThroughAChainOfParts) {
  // Stripes 0|1|2 where part 0 is heavily overweight and part 2 is light:
  // weight must flow through part 1.
  const Graph g = grid_graph(12, 4);
  Partition pi(3, std::vector<PartId>(48));
  for (int j = 0; j < 4; ++j)
    for (int i = 0; i < 12; ++i) {
      PartId p = 0;
      if (i >= 8) p = 1;
      if (i >= 10) p = 2;
      pi.assign[static_cast<std::size_t>(j * 12 + i)] = p;
    }
  RebalanceOptions opt;
  opt.tol = 0.05;
  const auto r = rebalance_greedy(g, pi, opt);
  EXPECT_TRUE(r.balanced);
  const auto w = part_weights(g, pi);
  for (const Weight x : w) EXPECT_NEAR(static_cast<double>(x), 16.0, 3.0);
  (void)r;
}

TEST(Rebalance, RespectsCustomTargets) {
  const Graph g = grid_graph(10, 2);
  Partition pi(2, std::vector<PartId>(20, 0));
  for (int v = 15; v < 20; ++v) pi.assign[static_cast<std::size_t>(v)] = 1;
  const std::vector<Weight> targets{5, 15};  // part 0 should shrink to 5
  RebalanceOptions opt;
  opt.targets = &targets;
  opt.tol = 0.05;
  rebalance_greedy(g, pi, opt);
  const auto w = part_weights(g, pi);
  EXPECT_LE(w[0], 6);
}

TEST(Rebalance, WeightedVerticesHandled) {
  graph::GraphBuilder b(6);
  for (graph::VertexId v = 0; v + 1 < 6; ++v) b.add_edge(v, v + 1);
  for (graph::VertexId v = 0; v < 6; ++v) b.set_vertex_weight(v, 10);
  b.set_vertex_weight(0, 40);
  const Graph g = b.build();  // weights 40 10 10 10 10 10 = 90
  Partition pi(2, {0, 0, 0, 1, 1, 1});  // 60 vs 30
  RebalanceOptions opt;
  opt.tol = 0.2;
  const auto r = rebalance_greedy(g, pi, opt);
  const auto w = part_weights(g, pi);
  EXPECT_LE(std::max(w[0], w[1]), 60);
  EXPECT_GT(r.weight_moved, 0);
}

TEST(Rebalance, NeverEmptiesAPart) {
  const Graph g = grid_graph(4, 1);
  Partition pi(2, {0, 0, 0, 1});
  const std::vector<Weight> targets{4, 0};  // pathological target
  RebalanceOptions opt;
  opt.targets = &targets;
  rebalance_greedy(g, pi, opt);
  EXPECT_TRUE(all_parts_used(g, pi));
}

TEST(Rebalance, MigrationGainPrefersHomecoming) {
  const Graph g = grid_graph(8, 8);
  // Part 0 overweight; two candidate vertices equivalent for the cut, but
  // one is "away from home" — alpha should prefer returning it.
  Partition pi(2, std::vector<PartId>(64));
  std::vector<PartId> home(64);
  for (int j = 0; j < 8; ++j)
    for (int i = 0; i < 8; ++i) {
      const auto idx = static_cast<std::size_t>(j * 8 + i);
      pi.assign[idx] = i >= 6 ? 1 : 0;
      home[idx] = i >= 4 ? 1 : 0;  // columns 4,5 are displaced
    }
  RebalanceOptions opt;
  opt.tol = 0.02;
  opt.alpha = 10.0;
  opt.home = &home;
  rebalance_greedy(g, pi, opt);
  // The displaced columns should be the ones that moved to part 1.
  int displaced_restored = 0;
  for (int j = 0; j < 8; ++j)
    for (int i = 4; i < 6; ++i)
      displaced_restored +=
          pi.assign[static_cast<std::size_t>(j * 8 + i)] == 1;
  EXPECT_GT(displaced_restored, 8);
}

TEST(QuotientGraph, StaysExactUnderRandomMoves) {
  const Graph g = grid_graph(12, 12);
  const PartId p = 5;
  const auto n = static_cast<std::size_t>(g.num_vertices());
  util::Rng rng(17);
  Partition pi(p, std::vector<PartId>(n));
  for (auto& a : pi.assign)
    a = static_cast<PartId>(rng.next_below(static_cast<std::uint64_t>(p)));

  ConnTable conn;
  conn.build(g, pi.assign, p);
  QuotientGraph quotient;
  quotient.build(g, pi.assign, p);

  for (int move = 0; move < 500; ++move) {
    const auto v = static_cast<graph::VertexId>(rng.next_below(n));
    const PartId from = pi.assign[static_cast<std::size_t>(v)];
    PartId to =
        static_cast<PartId>(rng.next_below(static_cast<std::uint64_t>(p)));
    if (to == from) to = static_cast<PartId>((to + 1) % p);
    quotient.apply_move(conn, v, from, to);
    conn_apply_move(conn, g, v, from, to);
    pi.assign[static_cast<std::size_t>(v)] = to;
    if (move % 50 == 0) ASSERT_EQ(quotient.violation(g, pi), "");
  }
  EXPECT_EQ(quotient.violation(g, pi), "");

  QuotientGraph fresh;
  fresh.build(g, pi.assign, p);
  for (PartId a = 0; a < p; ++a)
    for (PartId b = static_cast<PartId>(a + 1); b < p; ++b)
      EXPECT_EQ(quotient.cross(a, b), fresh.cross(a, b));
  // The lazily rebuilt unit CSR (cached across zero-crossings) must equal a
  // from-scratch derivation's adjacency pattern.
  const graph::Graph& unit = quotient.unit_graph();
  const graph::Graph& unit_fresh = fresh.unit_graph();
  EXPECT_EQ(unit.xadj(), unit_fresh.xadj());
  EXPECT_EQ(unit.adjncy(), unit_fresh.adjncy());
}

TEST(Rebalance, SharedStateAdoptedAndHandedBackExact) {
  const Graph g = grid_graph(10, 10);
  Partition pi(2, std::vector<PartId>(100));
  for (int j = 0; j < 10; ++j)
    for (int i = 0; i < 10; ++i)
      pi.assign[static_cast<std::size_t>(j * 10 + i)] = i >= 7 ? 1 : 0;

  SharedConnState chain;
  RebalanceOptions opt;
  opt.tol = 0.02;
  const auto with_chain = rebalance_greedy(g, pi, opt, &chain);
  EXPECT_TRUE(chain.conn_valid);
  EXPECT_TRUE(chain.quotient_valid);
  // The handed-back state is exact for the final assignment...
  EXPECT_EQ(chain.quotient.violation(g, pi), "");
  ConnTable fresh;
  fresh.build(g, pi.assign, pi.num_parts);
  for (graph::VertexId v = 0; v < g.num_vertices(); ++v) {
    ASSERT_EQ(chain.conn.entries(v).size(), fresh.entries(v).size());
    for (const ConnTable::Slot& s : fresh.entries(v))
      EXPECT_EQ(chain.conn.get(v, s.part), s.weight);
  }
  // ...and the chained call produces the same partition as a cold one.
  Partition pi_cold(2, std::vector<PartId>(100));
  for (int j = 0; j < 10; ++j)
    for (int i = 0; i < 10; ++i)
      pi_cold.assign[static_cast<std::size_t>(j * 10 + i)] = i >= 7 ? 1 : 0;
  const auto cold = rebalance_greedy(g, pi_cold, opt);
  EXPECT_EQ(with_chain.moves, cold.moves);
  EXPECT_EQ(pi.assign, pi_cold.assign);
  // A second chained call adopts the carried state instead of rebuilding and
  // must behave like a no-op on the already balanced partition.
  const auto again = rebalance_greedy(g, pi, opt, &chain);
  EXPECT_TRUE(again.balanced);
  EXPECT_EQ(again.moves, 0);
  EXPECT_EQ(chain.quotient.violation(g, pi), "");
}

}  // namespace
}  // namespace pnr::part
