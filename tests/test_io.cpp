// Tests for mesh file I/O: Triangle/TetGen round trips (including format
// quirks: 0/1-based indices, comments, attribute columns) and VTK export.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "mesh/generate.hpp"
#include "mesh/io.hpp"

namespace pnr::mesh {
namespace {

class IoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("pnr_io_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }

  std::filesystem::path dir_;
};

TEST_F(IoTest, TriangleRoundTrip) {
  auto original = structured_tri_mesh(5, 4, 0.2, 7);
  original.refine({0, 3, 9});
  ASSERT_TRUE(write_triangle_files(original, path("tri")));

  const auto loaded = read_triangle_files(path("tri"));
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->num_leaves(), original.num_leaves());
  EXPECT_EQ(loaded->num_vertices_alive(), original.num_vertices_alive());
  EXPECT_TRUE(loaded->check_invariants().empty())
      << loaded->check_invariants();

  // Total area must survive the round trip.
  double area_in = 0.0, area_out = 0.0;
  for (const ElemIdx e : original.leaf_elements())
    area_in += original.signed_area(e);
  for (const ElemIdx e : loaded->leaf_elements())
    area_out += loaded->signed_area(e);
  EXPECT_NEAR(area_in, area_out, 1e-9);
}

TEST_F(IoTest, TetgenRoundTrip) {
  auto original = structured_tet_mesh(3, 3, 2, 0.1, 7);
  original.refine({0, 5});
  ASSERT_TRUE(write_triangle_files(original, path("tet")));

  const auto loaded = read_tetgen_files(path("tet"));
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->num_leaves(), original.num_leaves());
  EXPECT_EQ(loaded->num_vertices_alive(), original.num_vertices_alive());
  EXPECT_TRUE(loaded->check_invariants().empty());
}

TEST_F(IoTest, LoadedMeshIsRefinable) {
  auto original = structured_tri_mesh(4, 4, 0.0, 1);
  ASSERT_TRUE(write_triangle_files(original, path("ref")));
  auto loaded = read_triangle_files(path("ref"));
  ASSERT_TRUE(loaded.has_value());
  const auto before = loaded->num_leaves();
  loaded->refine(loaded->leaf_elements());
  EXPECT_GE(loaded->num_leaves(), 2 * before);
  EXPECT_TRUE(loaded->check_invariants().empty());
}

TEST_F(IoTest, ZeroBasedIndicesAndComments) {
  {
    std::ofstream node(path("zb") + ".node");
    node << "# a comment\n4 2 0 0\n"
         << "0 0.0 0.0\n1 1.0 0.0  # trailing comment\n"
         << "2 1.0 1.0\n3 0.0 1.0\n";
    std::ofstream ele(path("zb") + ".ele");
    ele << "2 3 0\n0 0 1 2\n1 0 2 3\n";
  }
  const auto loaded = read_triangle_files(path("zb"));
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->num_leaves(), 2);
  EXPECT_EQ(loaded->num_vertices_alive(), 4);
}

TEST_F(IoTest, RejectsMalformedFiles) {
  {
    std::ofstream node(path("bad") + ".node");
    node << "3 2 0 0\n1 0 0\n2 1 0\n";  // claims 3 nodes, provides 2
  }
  EXPECT_FALSE(read_triangle_files(path("bad")).has_value());
  EXPECT_FALSE(read_triangle_files(path("missing")).has_value());
}

TEST_F(IoTest, RejectsOutOfRangeElementIndices) {
  {
    std::ofstream node(path("oob") + ".node");
    node << "3 2 0 0\n1 0 0\n2 1 0\n3 0 1\n";
    std::ofstream ele(path("oob") + ".ele");
    ele << "1 3 0\n1 1 2 9\n";  // vertex 9 does not exist
  }
  EXPECT_FALSE(read_triangle_files(path("oob")).has_value());
}

TEST_F(IoTest, VtkContainsExpectedSections) {
  auto mesh = structured_tri_mesh(3, 3, 0.0, 1);
  const auto elems = mesh.leaf_elements();
  std::vector<part::PartId> assign(elems.size());
  for (std::size_t i = 0; i < elems.size(); ++i)
    assign[i] = static_cast<part::PartId>(i % 2);
  const std::string file = path("mesh.vtk");
  ASSERT_TRUE(write_vtk(mesh, elems, assign, file));

  std::ifstream f(file);
  std::stringstream buffer;
  buffer << f.rdbuf();
  const std::string content = buffer.str();
  EXPECT_NE(content.find("UNSTRUCTURED_GRID"), std::string::npos);
  EXPECT_NE(content.find("POINTS 16 double"), std::string::npos);
  EXPECT_NE(content.find("CELLS 18 72"), std::string::npos);
  EXPECT_NE(content.find("SCALARS partition int 1"), std::string::npos);
}

TEST_F(IoTest, Vtk3DUsesTetraCells) {
  auto mesh = structured_tet_mesh(2, 2, 2, 0.0, 1);
  const auto elems = mesh.leaf_elements();
  const std::string file = path("mesh3.vtk");
  ASSERT_TRUE(write_vtk(mesh, elems, {}, file));
  std::ifstream f(file);
  std::stringstream buffer;
  buffer << f.rdbuf();
  EXPECT_NE(buffer.str().find("CELL_TYPES 48"), std::string::npos);
}

}  // namespace
}  // namespace pnr::mesh
