// Tests for Partition metrics and the KL/FM refinement engine, including
// the migration-aware gain model (the heart of PNR's Section 9 heuristic).

#include <gtest/gtest.h>

#include "graph/builder.hpp"
#include "partition/partition.hpp"
#include "partition/refine.hpp"

namespace pnr::part {
namespace {

Graph grid_graph(int nx, int ny) {
  graph::GraphBuilder b(nx * ny);
  auto id = [&](int i, int j) { return static_cast<graph::VertexId>(j * nx + i); };
  for (int j = 0; j < ny; ++j)
    for (int i = 0; i < nx; ++i) {
      if (i + 1 < nx) b.add_edge(id(i, j), id(i + 1, j));
      if (j + 1 < ny) b.add_edge(id(i, j), id(i, j + 1));
    }
  return b.build();
}

Partition stripes(int nx, int ny, PartId p) {
  std::vector<PartId> assign(static_cast<std::size_t>(nx) * ny);
  for (int j = 0; j < ny; ++j)
    for (int i = 0; i < nx; ++i)
      assign[static_cast<std::size_t>(j * nx + i)] =
          static_cast<PartId>(i * p / nx);
  return Partition(p, std::move(assign));
}

TEST(Metrics, CutOfVerticalSplit) {
  const Graph g = grid_graph(4, 4);
  const Partition pi = stripes(4, 4, 2);
  EXPECT_EQ(cut_size(g, pi), 4);  // 4 horizontal edges cross the middle
}

TEST(Metrics, PartWeightsAndImbalance) {
  const Graph g = grid_graph(4, 4);
  const Partition pi = stripes(4, 4, 2);
  const auto w = part_weights(g, pi);
  EXPECT_EQ(w[0], 8);
  EXPECT_EQ(w[1], 8);
  EXPECT_DOUBLE_EQ(imbalance(g, pi), 0.0);
  EXPECT_DOUBLE_EQ(balance_cost(g, pi), 0.0);
}

TEST(Metrics, MigrationCountsWeightMoved) {
  const Graph g = grid_graph(4, 1);
  Partition a(2, {0, 0, 1, 1});
  Partition b(2, {0, 1, 1, 0});
  EXPECT_EQ(migration_cost(g, a, b), 2);
  EXPECT_EQ(moved_vertices(a, b), 2);
  EXPECT_EQ(migration_cost(g, a, a), 0);
}

TEST(Metrics, RepartitionCostComposition) {
  const Graph g = grid_graph(2, 2);
  Partition old_pi(2, {0, 0, 1, 1});
  Partition new_pi(2, {0, 1, 1, 1});
  const double expected =
      static_cast<double>(cut_size(g, new_pi)) +
      0.5 * static_cast<double>(migration_cost(g, old_pi, new_pi)) +
      2.0 * balance_cost(g, new_pi);
  EXPECT_DOUBLE_EQ(repartition_cost(g, old_pi, new_pi, 0.5, 2.0), expected);
}

TEST(Metrics, AllPartsUsed) {
  const Graph g = grid_graph(3, 1);
  EXPECT_TRUE(all_parts_used(g, Partition(2, {0, 1, 0})));
  EXPECT_FALSE(all_parts_used(g, Partition(3, {0, 1, 0})));
}

TEST(Refine, ImprovesAJaggedBisection) {
  const Graph g = grid_graph(8, 8);
  // Checkerboard start: terrible cut, perfectly balanced.
  std::vector<PartId> assign(64);
  for (int j = 0; j < 8; ++j)
    for (int i = 0; i < 8; ++i)
      assign[static_cast<std::size_t>(j * 8 + i)] =
          static_cast<PartId>((i + j) % 2);
  Partition pi(2, std::move(assign));
  const auto before = cut_size(g, pi);
  RefineOptions opt;
  opt.max_passes = 10;
  const auto result = refine_partition(g, pi, opt);
  EXPECT_GT(result.total_gain, 0.0);
  EXPECT_LT(cut_size(g, pi), before);
  EXPECT_LE(imbalance(g, pi), 0.04);
  EXPECT_TRUE(pi.valid_for(g));
}

TEST(Refine, NeverWorsensTheObjective) {
  const Graph g = grid_graph(6, 6);
  Partition pi = stripes(6, 6, 3);
  const auto before = cut_size(g, pi);
  RefineOptions opt;
  refine_partition(g, pi, opt);
  EXPECT_LE(cut_size(g, pi), before);
}

TEST(Refine, HardBalanceRespectsCap) {
  const Graph g = grid_graph(10, 10);
  Partition pi = stripes(10, 10, 4);
  RefineOptions opt;
  opt.imbalance_tol = 0.1;
  refine_partition(g, pi, opt);
  EXPECT_LE(imbalance(g, pi), 0.1 + 1e-9);
}

TEST(Refine, SoftBalanceRebalancesOverloadedPart) {
  const Graph g = grid_graph(8, 8);
  // Everything on part 0 except one vertex: the β term must spread load.
  std::vector<PartId> assign(64, 0);
  assign[63] = 1;
  Partition pi(2, std::move(assign));
  RefineOptions opt;
  opt.hard_balance = false;
  opt.beta = 1.0;
  opt.max_passes = 20;
  refine_partition(g, pi, opt);
  EXPECT_LT(imbalance(g, pi), 0.10);
}

TEST(Refine, MigrationTermKeepsVerticesHome) {
  const Graph g = grid_graph(8, 8);
  Partition home = stripes(8, 8, 2);
  // Perturb: flip a band of vertices to the wrong side.
  Partition pi = home;
  for (int j = 0; j < 8; ++j) pi.assign[static_cast<std::size_t>(j * 8 + 3)] = 1;
  RefineOptions opt;
  opt.hard_balance = false;
  opt.alpha = 5.0;  // migration dominates: vertices should return home
  opt.beta = 0.0;
  opt.home = &home.assign;
  opt.max_passes = 10;
  refine_partition(g, pi, opt);
  EXPECT_EQ(migration_cost(g, home, pi), 0);
}

TEST(Refine, AlphaZeroIgnoresHome) {
  const Graph g = grid_graph(6, 6);
  Partition pi = stripes(6, 6, 2);
  const Partition before = pi;
  RefineOptions opt;  // alpha = 0, no home needed
  refine_partition(g, pi, opt);
  EXPECT_TRUE(pi.valid_for(g));
  (void)before;
}

TEST(Refine, NeverEmptiesAPart) {
  graph::GraphBuilder b(3);
  b.add_edge(0, 1, 100);
  b.add_edge(1, 2, 100);
  const Graph g = b.build();
  // Cut-wise it would love to merge everything into one side.
  Partition pi(2, {0, 1, 1});
  RefineOptions opt;
  opt.hard_balance = false;
  opt.max_passes = 5;
  refine_partition(g, pi, opt);
  EXPECT_TRUE(all_parts_used(g, pi));
}

TEST(Refine, UnequalTargetsHonored) {
  const Graph g = grid_graph(9, 4);  // 36 vertices
  Partition pi = stripes(9, 4, 2);
  const std::vector<Weight> targets{12, 24};
  RefineOptions opt;
  opt.targets = &targets;
  opt.imbalance_tol = 0.05;
  opt.hard_balance = true;
  opt.beta = 0.5;
  refine_partition(g, pi, opt);
  const auto w = part_weights(g, pi);
  EXPECT_LE(w[0], static_cast<Weight>(12 * 1.2));
}

TEST(Refine, ReportedGainEqualsObjectiveDecrease) {
  // The KL gains must be exact deltas of the objective: the sum of kept
  // gains equals cost(before) − cost(after). Checked for cut+migration
  // (hard mode) and for the full Eq. 1 (soft mode, total divisible by p so
  // the integer targets match the analytic average).
  const Graph g = grid_graph(8, 8);  // 64 vertices, p=4 → avg 16 exactly
  Partition home = stripes(8, 8, 4);

  for (const bool hard : {true, false}) {
    Partition pi = home;
    util::Rng rng(3);
    for (auto& a : pi.assign)  // scramble a third of the assignment
      if (rng.next_below(3) == 0) a = static_cast<PartId>(rng.next_below(4));

    RefineOptions opt;
    opt.alpha = 0.3;
    opt.home = &home.assign;
    opt.hard_balance = hard;
    opt.beta = hard ? 0.0 : 0.7;
    opt.max_passes = 6;

    const double before = repartition_cost(g, home, pi, opt.alpha, opt.beta);
    const auto result = refine_partition(g, pi, opt);
    const double after = repartition_cost(g, home, pi, opt.alpha, opt.beta);
    EXPECT_NEAR(result.total_gain, before - after, 1e-6)
        << (hard ? "hard" : "soft");
  }
}

TEST(Refine, WeightedVerticesBalanceByWeight) {
  graph::GraphBuilder b(4);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(2, 3);
  b.set_vertex_weight(0, 3);
  b.set_vertex_weight(3, 3);
  const Graph g = b.build();  // weights 3 1 1 3
  Partition pi(2, {0, 0, 0, 1});  // weights: 5 vs 3
  RefineOptions opt;
  opt.hard_balance = false;
  opt.beta = 10.0;
  refine_partition(g, pi, opt);
  const auto w = part_weights(g, pi);
  EXPECT_EQ(w[0], 4);
  EXPECT_EQ(w[1], 4);
}

}  // namespace
}  // namespace pnr::part
