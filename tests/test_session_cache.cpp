// Tests for the persistent repartition state a PNR session carries across
// adaptation rounds: the incrementally weight-patched coarse dual graph
// (mesh::DualWeightDelta + apply_dual_delta), the cached contraction
// hierarchy (core::HierarchyCache via PnrOptions::reuse_hierarchy), and the
// deferred step-metrics contract of pared::Session.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "core/pnr.hpp"
#include "mesh/dual.hpp"
#include "pared/session.hpp"
#include "pared/workloads.hpp"
#include "util/prof.hpp"

namespace pnr::pared {
namespace {

void expect_graphs_equal(const graph::Graph& a, const graph::Graph& b) {
  ASSERT_EQ(a.num_vertices(), b.num_vertices());
  EXPECT_EQ(a.xadj(), b.xadj());
  EXPECT_EQ(a.adjncy(), b.adjncy());
  EXPECT_EQ(a.vwgt(), b.vwgt());
  EXPECT_EQ(a.adjwgt(), b.adjwgt());
}

std::int64_t counter_value(const prof::Report& report,
                           const std::string& name) {
  for (const auto& c : report.counters)
    if (c.name == name) return c.value;
  return -1;
}

// The coarse dual graph patched in place by consecutive deltas must equal a
// from-scratch nested_dual_graph after every adaptation — exact CSR arrays,
// not just metrics. 2D transient: refinement and coarsening both occur.
TEST(DualDelta, IncrementalMatchesRebuild2D) {
  TransientOptions opts;
  opts.steps = 8;
  opts.grid_n = 14;
  TransientRun run(opts);
  auto& mesh = run.mutable_mesh();

  // Drain whatever the constructor's initial refinement accumulated; the
  // graph built now is current at that drain's epoch.
  (void)mesh.drain_dual_delta();
  graph::Graph g = mesh::nested_dual_graph(mesh);

  while (!run.done()) {
    run.advance();
    const mesh::DualWeightDelta delta = mesh.drain_dual_delta();
    ASSERT_TRUE(mesh::apply_dual_delta(mesh, delta, g));
    expect_graphs_equal(g, mesh::nested_dual_graph(mesh));
  }
}

TEST(DualDelta, IncrementalMatchesRebuild3D) {
  CornerSeries3D series(4);
  auto& mesh = series.mutable_mesh();
  (void)mesh.drain_dual_delta();
  graph::Graph g = mesh::nested_dual_graph(mesh);

  for (int level = 0; level < 3; ++level) {
    series.advance();
    const mesh::DualWeightDelta delta = mesh.drain_dual_delta();
    ASSERT_TRUE(mesh::apply_dual_delta(mesh, delta, g));
    expect_graphs_equal(g, mesh::nested_dual_graph(mesh));
  }
}

// An unrelated consumer draining the mesh between two session steps breaks
// the epoch chain; the delta then spans a gap the session never saw and the
// only safe reaction is a rebuild. The session must detect this (and keep
// producing valid partitions), which the session.dual_rebuilds counter makes
// observable: one rebuild for the first step, one for the gap.
TEST(DualDelta, EpochGapForcesSessionRebuild) {
  TransientOptions opts;
  opts.steps = 4;
  opts.grid_n = 12;
  TransientRun run(opts);
  Session2D session(Strategy::kPNR, 4, 3);

  prof::reset();
  prof::set_enabled(true);
  session.step(run.mutable_mesh());
  run.advance();
  (void)run.mutable_mesh().drain_dual_delta();  // foreign drain
  session.step(run.mutable_mesh());
  prof::set_enabled(false);

  EXPECT_EQ(counter_value(prof::snapshot(), "session.dual_rebuilds"), 2);
  for (const mesh::ElemIdx e : run.mesh().leaf_elements()) {
    EXPECT_GE(run.mesh().tag(e), 0);
    EXPECT_LT(run.mesh().tag(e), 4);
  }
}

// Steady state of an undisturbed session: the coarse graph is rebuilt once
// (the first step) and only patched afterwards, and the contraction
// hierarchy cache serves at least some levels.
TEST(SessionCache, SteadyStateReusesPersistentState) {
  // Enough steps that the peak moves gently per step: large jumps put every
  // cached level above the churn tolerance and the cache (correctly) serves
  // nothing.
  TransientOptions opts;
  opts.steps = 12;
  opts.grid_n = 20;
  TransientRun run(opts);
  Session2D session(Strategy::kPNR, 4, 3);

  prof::reset();
  prof::set_enabled(true);
  session.step(run.mutable_mesh());
  while (!run.done()) {
    run.advance();
    session.step(run.mutable_mesh());
  }
  prof::set_enabled(false);

  const prof::Report report = prof::snapshot();
  EXPECT_EQ(counter_value(report, "session.dual_rebuilds"), 1);
  EXPECT_GT(counter_value(report, "pnr.cache.hits"), 0);
}

// Two sessions over identical workloads must adopt identical assignments at
// every step — the cached-hierarchy path is deterministic, not just
// statistically similar.
TEST(SessionCache, CachedPathIsDeterministic) {
  TransientOptions opts;
  opts.steps = 5;
  opts.grid_n = 14;
  TransientRun run_a(opts), run_b(opts);
  Session2D a(Strategy::kPNR, 4, 11);
  Session2D b(Strategy::kPNR, 4, 11);

  a.step(run_a.mutable_mesh());
  b.step(run_b.mutable_mesh());
  while (!run_a.done()) {
    run_a.advance();
    run_b.advance();
    const StepReport ra = a.step(run_a.mutable_mesh());
    const StepReport rb = b.step(run_b.mutable_mesh());
    EXPECT_EQ(ra.cut_new, rb.cut_new);
    EXPECT_EQ(ra.migrated, rb.migrated);
    for (const mesh::ElemIdx e : run_a.mesh().leaf_elements())
      ASSERT_EQ(run_a.mesh().tag(e), run_b.mesh().tag(e));
  }
}

// Hierarchy reuse is a perf optimization with a bounded quality cost: over a
// transient run the cached path's total cut and migration must stay close to
// the from-scratch path's (the churn tolerance evicts levels before the
// heaviest-member home approximation can degrade them much).
TEST(SessionCache, CachedQualityStaysCloseToCold) {
  TransientOptions opts;
  opts.steps = 8;
  opts.grid_n = 16;
  TransientRun run_cold(opts), run_cached(opts);
  core::PnrOptions cold_opts;
  cold_opts.reuse_hierarchy = false;
  Session2D cold(Strategy::kPNR, 4, 7, cold_opts);
  Session2D cached(Strategy::kPNR, 4, 7);

  cold.step(run_cold.mutable_mesh());
  cached.step(run_cached.mutable_mesh());
  double cold_cut = 0.0, cached_cut = 0.0;
  double cold_mig = 0.0, cached_mig = 0.0;
  while (!run_cold.done()) {
    run_cold.advance();
    run_cached.advance();
    const StepReport rc = cold.step(run_cold.mutable_mesh());
    const StepReport rr = cached.step(run_cached.mutable_mesh());
    cold_cut += static_cast<double>(rc.cut_new);
    cached_cut += static_cast<double>(rr.cut_new);
    cold_mig += static_cast<double>(rc.migrated);
    cached_mig += static_cast<double>(rr.migrated);
    EXPECT_LE(rr.imbalance, 0.15);
  }
  ASSERT_GT(cold_cut, 0.0);
  ASSERT_GT(cold_mig, 0.0);
  EXPECT_LE(cached_cut, 1.15 * cold_cut);
  EXPECT_LE(cached_mig, 1.25 * cold_mig);
}

// Deferred metrics are an evaluation-order change, not an approximation:
// every field metrics() settles must equal what an eager session reported,
// and metrics_current() must flip exactly at step/adapt boundaries.
TEST(SessionCache, DeferredMetricsMatchEager) {
  TransientOptions opts;
  opts.steps = 5;
  opts.grid_n = 12;
  TransientRun run_a(opts), run_b(opts);
  Session2D eager(Strategy::kPNR, 4, 9);
  Session2D deferred(Strategy::kPNR, 4, 9);
  deferred.set_defer_metrics(true);

  EXPECT_FALSE(deferred.metrics_current(run_b.mesh()));
  auto compare_step = [&] {
    const StepReport ra = eager.step(run_a.mutable_mesh());
    deferred.step(run_b.mutable_mesh());
    ASSERT_TRUE(deferred.metrics_current(run_b.mesh()));
    const StepReport rb = deferred.metrics(run_b.mutable_mesh());
    EXPECT_EQ(ra.elements, rb.elements);
    EXPECT_EQ(ra.cut_prev, rb.cut_prev);
    EXPECT_EQ(ra.cut_new, rb.cut_new);
    EXPECT_EQ(ra.shared_vertices, rb.shared_vertices);
    EXPECT_EQ(ra.migrated, rb.migrated);
    EXPECT_EQ(ra.migrated_remapped, rb.migrated_remapped);
    EXPECT_DOUBLE_EQ(ra.imbalance, rb.imbalance);
  };

  compare_step();
  while (!run_a.done()) {
    run_a.advance();
    run_b.advance();
    EXPECT_FALSE(deferred.metrics_current(run_b.mesh()));
    compare_step();
  }
}

}  // namespace
}  // namespace pnr::pared
