// Tests for the PNR core: initial partitioning of weighted nested graphs,
// migration-aware repartitioning (balance restoration, migration economy,
// stability), the ablation switches and the Theorem 6.1 snap.

#include <gtest/gtest.h>

#include <cmath>

#include "core/pnr.hpp"
#include "core/snap.hpp"
#include "fem/estimator.hpp"
#include "fem/problems.hpp"
#include "graph/builder.hpp"
#include "mesh/dual.hpp"
#include "mesh/generate.hpp"
#include "mesh/metrics.hpp"

namespace pnr::core {
namespace {

/// Weighted grid graph: one heavy block in a corner (mimics an adapted
/// nested graph).
graph::Graph weighted_grid(int nx, int ny, graph::Weight corner_weight) {
  graph::GraphBuilder b(nx * ny);
  auto id = [&](int i, int j) { return static_cast<graph::VertexId>(j * nx + i); };
  for (int j = 0; j < ny; ++j)
    for (int i = 0; i < nx; ++i) {
      if (i + 1 < nx) b.add_edge(id(i, j), id(i + 1, j));
      if (j + 1 < ny) b.add_edge(id(i, j), id(i, j + 1));
      if (i >= nx - 3 && j >= ny - 3) b.set_vertex_weight(id(i, j), corner_weight);
    }
  return b.build();
}

TEST(PnrInitial, BalancedAndAllPartsUsed) {
  const auto g = weighted_grid(12, 12, 20);
  Pnr pnr(8);
  util::Rng rng(1);
  const auto pi = pnr.initial_partition(g, rng);
  EXPECT_TRUE(pi.valid_for(g));
  EXPECT_TRUE(part::all_parts_used(g, pi));
  EXPECT_LE(part::imbalance(g, pi), 0.06);
}

TEST(PnrRepartition, NoChangeNoMigration) {
  const auto g = weighted_grid(10, 10, 1);
  Pnr pnr(4);
  util::Rng rng(2);
  const auto pi = pnr.initial_partition(g, rng);
  RepartitionStats stats;
  const auto pi2 = pnr.repartition(g, pi, rng, &stats);
  // Nothing changed, so very little (ideally nothing) should move.
  EXPECT_LE(stats.migrate, g.total_vertex_weight() / 20);
  EXPECT_LE(part::imbalance(g, pi2), 0.06);
}

TEST(PnrRepartition, RestoresBalanceAfterLocalGrowth) {
  // Start balanced on unit weights, then grow one corner's weights 10x.
  const auto before = weighted_grid(12, 12, 1);
  Pnr pnr(4);
  util::Rng rng(3);
  const auto pi = pnr.initial_partition(before, rng);

  const auto after = weighted_grid(12, 12, 10);
  RepartitionStats stats;
  const auto pi2 = pnr.repartition(after, pi, rng, &stats);
  // One weight-10 vertex is ~18% of a part here, so the achievable ε is
  // granularity-limited; what matters is that balance is restored.
  EXPECT_LE(stats.imbalance_after, 0.12);
  EXPECT_LT(stats.imbalance_after, stats.imbalance_before);
  EXPECT_TRUE(part::all_parts_used(after, pi2));
}

TEST(PnrRepartition, MigrationNearTheNecessaryMinimum) {
  const auto before = weighted_grid(12, 12, 1);
  Pnr pnr(4);
  util::Rng rng(4);
  const auto pi = pnr.initial_partition(before, rng);

  const auto after = weighted_grid(12, 12, 10);
  RepartitionStats stats;
  pnr.repartition(after, pi, rng, &stats);
  // The 9 corner vertices grew from 1 to 10: 81 extra weight appeared in
  // one subset; ~3/4 of it must leave. Allow generous slack for the KL
  // polish, but far less than "half the mesh" (total weight is 225).
  const graph::Weight total = after.total_vertex_weight();
  EXPECT_LT(stats.migrate, total / 2);
  EXPECT_GT(stats.migrate, 0);
}

TEST(PnrRepartition, StatsAreConsistent) {
  const auto before = weighted_grid(10, 10, 1);
  Pnr pnr(4);
  util::Rng rng(5);
  const auto pi = pnr.initial_partition(before, rng);
  const auto after = weighted_grid(10, 10, 6);
  RepartitionStats stats;
  const auto pi2 = pnr.repartition(after, pi, rng, &stats);
  EXPECT_EQ(stats.cut_before, part::cut_size(after, pi));
  EXPECT_EQ(stats.cut_after, part::cut_size(after, pi2));
  EXPECT_EQ(stats.migrate, part::migration_cost(after, pi, pi2));
  EXPECT_DOUBLE_EQ(stats.imbalance_after, part::imbalance(after, pi2));
}

TEST(PnrRepartition, AblationSwitchesStillProduceValidPartitions) {
  const auto before = weighted_grid(10, 10, 1);
  const auto after = weighted_grid(10, 10, 6);
  for (const bool scratch : {false, true})
    for (const bool random : {false, true}) {
      PnrOptions opt;
      opt.repartition_coarsest = scratch;
      opt.random_matching = random;
      Pnr pnr(4, opt);
      util::Rng rng(6);
      const auto pi = pnr.initial_partition(before, rng);
      const auto pi2 = pnr.repartition(after, pi, rng);
      EXPECT_TRUE(pi2.valid_for(after));
      EXPECT_TRUE(part::all_parts_used(after, pi2));
    }
}

TEST(PnrRepartition, SoftEq1ModeKeepsBalance) {
  PnrOptions opt;
  opt.hard_balance = false;  // literal Eq. 1
  const auto before = weighted_grid(10, 10, 1);
  const auto after = weighted_grid(10, 10, 6);
  Pnr pnr(4, opt);
  util::Rng rng(7);
  const auto pi = pnr.initial_partition(before, rng);
  RepartitionStats stats;
  pnr.repartition(after, pi, rng, &stats);
  EXPECT_LE(stats.imbalance_after, 0.25);  // soft mode is looser but sane
}

TEST(PnrMesh, EndToEndOnAdaptedTriMesh) {
  auto mesh = mesh::structured_tri_mesh(12, 12, 0.2, 9);
  const auto field = fem::corner_problem_2d();
  Pnr pnr(4);
  util::Rng rng(8);
  auto g = mesh::nested_dual_graph(mesh);
  auto pi = pnr.initial_partition(g, rng);

  for (int round = 0; round < 3; ++round) {
    fem::MarkOptions mark;
    mark.refine_threshold = 0.02 * std::pow(0.5, round);
    mark.max_level = round + 3;
    mesh.refine(fem::mark_for_refinement(mesh, field, mark));
    g = mesh::nested_dual_graph(mesh);
    RepartitionStats stats;
    pi = pnr.repartition(g, pi, rng, &stats);
    EXPECT_LE(stats.imbalance_after, 0.08);
    // Migration should be well under the adapted mesh size.
    EXPECT_LT(stats.migrate, mesh.num_leaves());
  }
  const auto elems = mesh.leaf_elements();
  const auto fine = mesh::project_coarse_assignment(mesh, elems, pi.assign);
  EXPECT_GT(mesh::shared_vertices(mesh, elems, fine), 0);
}

TEST(Snap, IdentityWhenAlreadyNested) {
  auto mesh = mesh::structured_tri_mesh(6, 6, 0.0, 1);
  mesh.refine(mesh.leaf_elements());
  const auto elems = mesh.leaf_elements();
  // A partition constant on each coarse element: snapping must not change it.
  std::vector<part::PartId> fine(elems.size());
  for (std::size_t i = 0; i < elems.size(); ++i)
    fine[i] = static_cast<part::PartId>(mesh.tri(elems[i]).coarse % 4);
  const auto snap = snap_to_coarse(mesh, elems, fine, 4);
  EXPECT_EQ(snap.fine_assign, fine);
}

TEST(Snap, MajorityRules) {
  auto mesh = mesh::structured_tri_mesh(4, 4, 0.0, 1);
  mesh.refine(mesh.leaf_elements());
  mesh.refine(mesh.leaf_elements());
  const auto elems = mesh.leaf_elements();
  // Coarse element 0 gets 3/4 of its leaves on processor 1.
  std::vector<part::PartId> fine(elems.size(), 0);
  int count = 0;
  for (std::size_t i = 0; i < elems.size(); ++i)
    if (mesh.tri(elems[i]).coarse == 0 && count++ % 4 != 0) fine[i] = 1;
  const auto snap = snap_to_coarse(mesh, elems, fine, 2);
  EXPECT_EQ(snap.coarse_assign[0], 1);
}

TEST(Snap, ProducesValidNestedPartition3D) {
  auto mesh = mesh::structured_tet_mesh(3, 3, 3, 0.0, 1);
  mesh.refine(mesh.leaf_elements());
  const auto elems = mesh.leaf_elements();
  std::vector<part::PartId> fine(elems.size());
  for (std::size_t i = 0; i < elems.size(); ++i)
    fine[i] = static_cast<part::PartId>(i % 3);
  const auto snap = snap_to_coarse(mesh, elems, fine, 3);
  for (std::size_t i = 0; i < elems.size(); ++i)
    EXPECT_EQ(snap.fine_assign[i],
              snap.coarse_assign[static_cast<std::size_t>(
                  mesh.tet(elems[i]).coarse)]);
}

}  // namespace
}  // namespace pnr::core
