// pnr::prof (spans, counters, gauges, exporters) and the pnr::util::Json
// document type it exports through.

#include <gtest/gtest.h>

#include <sstream>

#include "exec/pool.hpp"
#include "util/json.hpp"
#include "util/prof.hpp"

namespace {

using pnr::prof::CounterRow;
using pnr::prof::Report;
using pnr::prof::SpanRow;
using pnr::util::Json;

const SpanRow* find_span(const Report& report, const std::string& path) {
  for (const SpanRow& s : report.spans)
    if (s.path == path) return &s;
  return nullptr;
}

const CounterRow* find_counter(const std::vector<CounterRow>& rows,
                               const std::string& name) {
  for (const CounterRow& c : rows)
    if (c.name == name) return &c;
  return nullptr;
}

/// Every test starts from a clean, enabled registry and leaves profiling
/// off (the process-wide default the other suites rely on).
class ProfTest : public ::testing::Test {
 protected:
  void SetUp() override {
    pnr::prof::reset();
    pnr::prof::set_enabled(true);
#ifdef PNR_PROF_DISABLE
    // Probes are compiled out; only the disabled-path contract can be
    // checked in this configuration.
    if (!probes_compiled_in()) GTEST_SKIP() << "built with -DPNR_PROF=OFF";
#endif
  }
  void TearDown() override {
    pnr::prof::set_enabled(false);
    pnr::prof::reset();
  }

  /// Overridden by tests that stay meaningful when probes are stubs.
  virtual bool probes_compiled_in() const { return false; }
};

class ProfDisabledPathTest : public ProfTest {
  bool probes_compiled_in() const override { return true; }
};

TEST_F(ProfTest, SpansAggregateByNestingPath) {
  for (int i = 0; i < 3; ++i) {
    PNR_PROF_SPAN("outer");
    { PNR_PROF_SPAN("inner"); }
    { PNR_PROF_SPAN("inner"); }
  }
  { PNR_PROF_SPAN("inner"); }  // top level: distinct path from outer/inner

  const Report report = pnr::prof::snapshot();
  const SpanRow* outer = find_span(report, "outer");
  const SpanRow* nested = find_span(report, "outer/inner");
  const SpanRow* top = find_span(report, "inner");
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(nested, nullptr);
  ASSERT_NE(top, nullptr);
  EXPECT_EQ(outer->calls, 3);
  EXPECT_EQ(nested->calls, 6);
  EXPECT_EQ(top->calls, 1);
  EXPECT_GE(outer->seconds, nested->seconds);  // inclusive timing
}

TEST_F(ProfTest, DeepNestingRestoresThePathOnUnwind) {
  {
    PNR_PROF_SPAN("a");
    {
      PNR_PROF_SPAN("b");
      { PNR_PROF_SPAN("c"); }
    }
    { PNR_PROF_SPAN("d"); }
  }
  { PNR_PROF_SPAN("e"); }

  const Report report = pnr::prof::snapshot();
  EXPECT_NE(find_span(report, "a/b/c"), nullptr);
  EXPECT_NE(find_span(report, "a/d"), nullptr);
  EXPECT_NE(find_span(report, "e"), nullptr);
  EXPECT_EQ(find_span(report, "a/b/c/d"), nullptr);
}

TEST_F(ProfTest, CountersAccumulateAndGaugesKeepTheMax) {
  pnr::prof::count("edges");
  pnr::prof::count("edges", 41);
  pnr::prof::gauge_max("rss", 100);
  pnr::prof::gauge_max("rss", 50);
  pnr::prof::gauge_max("rss", 700);

  const Report report = pnr::prof::snapshot();
  const CounterRow* edges = find_counter(report.counters, "edges");
  const CounterRow* rss = find_counter(report.gauges, "rss");
  ASSERT_NE(edges, nullptr);
  ASSERT_NE(rss, nullptr);
  EXPECT_EQ(edges->value, 42);
  EXPECT_EQ(rss->value, 700);
}

TEST_F(ProfTest, CountersMergeAcrossThreads) {
  // Thread-local shards must merge into one registry. A 4-thread exec pool
  // with grain 1 runs each of the 4 chunks as its own task, spread over the
  // caller and the workers.
  pnr::exec::Pool pool(4);
  pool.parallel_for(
      4,
      [](std::int64_t b, std::int64_t e) {
        for (std::int64_t c = b; c < e; ++c) {
          for (int i = 0; i < 100; ++i) pnr::prof::count("thread.ticks");
          PNR_PROF_SPAN("thread.work");
        }
      },
      pnr::exec::Chunking{1, 4});
  pool.shutdown();

  const Report report = pnr::prof::snapshot();
  const CounterRow* ticks = find_counter(report.counters, "thread.ticks");
  const SpanRow* work = find_span(report, "thread.work");
  ASSERT_NE(ticks, nullptr);
  ASSERT_NE(work, nullptr);
  EXPECT_EQ(ticks->value, 400);
  EXPECT_EQ(work->calls, 4);
}

TEST_F(ProfDisabledPathTest, DisabledProbesRecordNothing) {
  pnr::prof::set_enabled(false);
  {
    PNR_PROF_SPAN("ghost");
    pnr::prof::count("ghost_counter", 7);
    pnr::prof::gauge_max("ghost_gauge", 7);
  }
  const Report report = pnr::prof::snapshot();
  EXPECT_TRUE(report.spans.empty());
  EXPECT_TRUE(report.counters.empty());
  EXPECT_TRUE(report.gauges.empty());
}

TEST_F(ProfDisabledPathTest, ResetClearsEverything) {
  { PNR_PROF_SPAN("x"); }
  pnr::prof::count("c");
  pnr::prof::reset();
  const Report report = pnr::prof::snapshot();
  EXPECT_TRUE(report.spans.empty());
  EXPECT_TRUE(report.counters.empty());
  EXPECT_TRUE(pnr::prof::enabled());  // reset keeps the switch
}

TEST_F(ProfTest, PeakRssIsPositiveOnSupportedPlatforms) {
#if defined(__unix__) || defined(__APPLE__)
  EXPECT_GT(pnr::prof::peak_rss_bytes(), 0);
  pnr::prof::sample_peak_rss();
  const Report report = pnr::prof::snapshot();
  const CounterRow* rss = find_counter(report.gauges, "peak_rss_bytes");
  ASSERT_NE(rss, nullptr);
  // Peak RSS is monotone and can grow between the sample above and this
  // re-read (sanitizer allocators make that common), so bound it instead
  // of requiring equality.
  EXPECT_GT(rss->value, 0);
  EXPECT_LE(rss->value, pnr::prof::peak_rss_bytes());
#endif
}

TEST_F(ProfTest, JsonExportRoundTrips) {
  for (int i = 0; i < 2; ++i) {
    PNR_PROF_SPAN("phase");
    { PNR_PROF_SPAN("sub"); }
  }
  pnr::prof::count("moves", 13);
  pnr::prof::gauge_max("peak", 99);

  std::string error;
  const auto doc = Json::parse(pnr::prof::to_json(), &error);
  ASSERT_TRUE(doc.has_value()) << error;

  const Json* spans = doc->find("spans");
  ASSERT_NE(spans, nullptr);
  ASSERT_TRUE(spans->is_array());
  bool found_sub = false;
  for (const Json& row : spans->elements()) {
    if (row.find("path")->as_string() == "phase/sub") {
      found_sub = true;
      EXPECT_EQ(row.find("calls")->as_int(), 2);
      EXPECT_GE(row.find("seconds")->as_double(), 0.0);
    }
  }
  EXPECT_TRUE(found_sub);
  ASSERT_NE(doc->find("counters"), nullptr);
  EXPECT_EQ(doc->find("counters")->find("moves")->as_int(), 13);
  EXPECT_EQ(doc->find("gauges")->find("peak")->as_int(), 99);
}

TEST_F(ProfTest, SummaryTableListsSpansAndCounters) {
  { PNR_PROF_SPAN("alpha"); }
  pnr::prof::count("beta", 5);
  std::ostringstream os;
  pnr::prof::write_summary(os);
  EXPECT_NE(os.str().find("alpha"), std::string::npos);
  EXPECT_NE(os.str().find("beta"), std::string::npos);
}

// ---- pnr::util::Json ----

TEST(JsonTest, BuildsAndDumpsStableOutput) {
  Json doc = Json::object();
  doc["name"] = "pnr";
  doc["count"] = std::int64_t{3};
  doc["ratio"] = 0.5;
  doc["ok"] = true;
  Json arr = Json::array();
  arr.push_back(1);
  arr.push_back("two");
  doc["list"] = std::move(arr);
  EXPECT_EQ(doc.dump(),
            "{\"name\":\"pnr\",\"count\":3,\"ratio\":0.5,\"ok\":true,"
            "\"list\":[1,\"two\"]}");
}

TEST(JsonTest, ParsesNestedDocuments) {
  const std::string text =
      R"({"a": [1, 2.5, {"b": "x\ny"}], "c": null, "d": false})";
  std::string error;
  const auto doc = Json::parse(text, &error);
  ASSERT_TRUE(doc.has_value()) << error;
  const Json* a = doc->find("a");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->at(0).as_int(), 1);
  EXPECT_DOUBLE_EQ(a->at(1).as_double(), 2.5);
  EXPECT_EQ(a->at(2).find("b")->as_string(), "x\ny");
  EXPECT_TRUE(doc->find("c")->is_null());
  EXPECT_FALSE(doc->find("d")->as_bool());
}

TEST(JsonTest, DumpParseRoundTripPreservesStructure) {
  Json doc = Json::object();
  doc["text"] = "quote \" backslash \\ tab \t";
  doc["negative"] = std::int64_t{-17};
  doc["tiny"] = 1.25e-8;
  Json inner = Json::object();
  inner["empty_list"] = Json::array();
  doc["inner"] = std::move(inner);

  for (const int indent : {0, 2}) {
    const auto parsed = Json::parse(doc.dump(indent));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->find("text")->as_string(), doc.find("text")->as_string());
    EXPECT_EQ(parsed->find("negative")->as_int(), -17);
    EXPECT_DOUBLE_EQ(parsed->find("tiny")->as_double(), 1.25e-8);
    EXPECT_EQ(parsed->find("inner")->find("empty_list")->size(), 0u);
  }
}

TEST(JsonTest, RejectsMalformedInput) {
  std::string error;
  EXPECT_FALSE(Json::parse("{", &error).has_value());
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(Json::parse("[1, 2,]", nullptr).has_value());
  EXPECT_FALSE(Json::parse("\"unterminated", nullptr).has_value());
  EXPECT_FALSE(Json::parse("{\"a\": 1} junk", nullptr).has_value());
  EXPECT_FALSE(Json::parse("nul", nullptr).has_value());
}

}  // namespace
