// Tests for the Biswas–Oliker remap (Hungarian assignment) and the
// Hu–Blake diffusion baseline.

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "graph/builder.hpp"
#include "partition/diffusion.hpp"
#include "partition/partition.hpp"
#include "partition/remap.hpp"
#include "util/rng.hpp"

namespace pnr::part {
namespace {

Graph grid_graph(int nx, int ny) {
  graph::GraphBuilder b(nx * ny);
  auto id = [&](int i, int j) { return static_cast<graph::VertexId>(j * nx + i); };
  for (int j = 0; j < ny; ++j)
    for (int i = 0; i < nx; ++i) {
      if (i + 1 < nx) b.add_edge(id(i, j), id(i + 1, j));
      if (j + 1 < ny) b.add_edge(id(i, j), id(i, j + 1));
    }
  return b.build();
}

Weight assignment_cost(const std::vector<Weight>& cost, PartId p,
                       const std::vector<PartId>& sigma) {
  Weight total = 0;
  for (PartId r = 0; r < p; ++r)
    total += cost[static_cast<std::size_t>(r) * p +
                  static_cast<std::size_t>(sigma[static_cast<std::size_t>(r)])];
  return total;
}

TEST(Hungarian, MatchesBruteForceOnRandomMatrices) {
  util::Rng rng(5);
  for (int trial = 0; trial < 50; ++trial) {
    const PartId p = static_cast<PartId>(2 + rng.next_below(4));  // 2..5
    std::vector<Weight> cost(static_cast<std::size_t>(p) * p);
    for (auto& c : cost) c = static_cast<Weight>(rng.next_below(100));

    const auto sigma = hungarian_min_cost(cost, p);
    // Validate it is a permutation.
    std::vector<PartId> sorted = sigma;
    std::sort(sorted.begin(), sorted.end());
    for (PartId i = 0; i < p; ++i) EXPECT_EQ(sorted[static_cast<std::size_t>(i)], i);

    // Brute force over all permutations.
    std::vector<PartId> perm(static_cast<std::size_t>(p));
    std::iota(perm.begin(), perm.end(), 0);
    Weight best = assignment_cost(cost, p, perm);
    do {
      best = std::min(best, assignment_cost(cost, p, perm));
    } while (std::next_permutation(perm.begin(), perm.end()));
    EXPECT_EQ(assignment_cost(cost, p, sigma), best);
  }
}

TEST(Hungarian, IdentityWhenDiagonalIsCheapest) {
  const PartId p = 4;
  std::vector<Weight> cost(16, 10);
  for (PartId i = 0; i < p; ++i)
    cost[static_cast<std::size_t>(i) * 4 + static_cast<std::size_t>(i)] = 0;
  const auto sigma = hungarian_min_cost(cost, p);
  for (PartId i = 0; i < p; ++i) EXPECT_EQ(sigma[static_cast<std::size_t>(i)], i);
}

TEST(Remap, RecoversALabelShuffle) {
  const Graph g = grid_graph(8, 8);
  Partition old_pi(4, std::vector<PartId>(64));
  for (int v = 0; v < 64; ++v)
    old_pi.assign[static_cast<std::size_t>(v)] =
        static_cast<PartId>((v % 8) / 2);
  // New partition = same subsets, labels rotated by 1.
  Partition new_pi = old_pi;
  for (auto& a : new_pi.assign) a = static_cast<PartId>((a + 1) % 4);
  EXPECT_GT(migration_cost(g, old_pi, new_pi), 0);

  const Partition remapped = remap_to_minimize_migration(g, old_pi, new_pi);
  EXPECT_EQ(migration_cost(g, old_pi, remapped), 0);
  EXPECT_EQ(cut_size(g, remapped), cut_size(g, new_pi));
}

TEST(Remap, NeverIncreasesMigration) {
  const Graph g = grid_graph(10, 10);
  util::Rng rng(7);
  for (int trial = 0; trial < 10; ++trial) {
    Partition old_pi(5, std::vector<PartId>(100));
    Partition new_pi(5, std::vector<PartId>(100));
    for (auto& a : old_pi.assign) a = static_cast<PartId>(rng.next_below(5));
    for (auto& a : new_pi.assign) a = static_cast<PartId>(rng.next_below(5));
    const Partition remapped = remap_to_minimize_migration(g, old_pi, new_pi);
    EXPECT_LE(migration_cost(g, old_pi, remapped),
              migration_cost(g, old_pi, new_pi));
    EXPECT_EQ(cut_size(g, remapped), cut_size(g, new_pi));
  }
}

TEST(Remap, OverlapMatrixSumsToTotalWeight) {
  const Graph g = grid_graph(6, 6);
  Partition a(3, std::vector<PartId>(36));
  Partition b(3, std::vector<PartId>(36));
  util::Rng rng(9);
  for (auto& x : a.assign) x = static_cast<PartId>(rng.next_below(3));
  for (auto& x : b.assign) x = static_cast<PartId>(rng.next_below(3));
  const auto overlap = overlap_matrix(g, a, b);
  Weight total = 0;
  for (const Weight w : overlap) total += w;
  EXPECT_EQ(total, g.total_vertex_weight());
}

TEST(ProcessorGraph, EdgesOnlyBetweenAdjacentParts) {
  const Graph g = grid_graph(8, 2);
  // Three horizontal stripes by x: parts 0,1,2 from left to right.
  Partition pi(3, std::vector<PartId>(16));
  for (int j = 0; j < 2; ++j)
    for (int i = 0; i < 8; ++i)
      pi.assign[static_cast<std::size_t>(j * 8 + i)] =
          static_cast<PartId>(i / 3);
  const auto h = processor_graph(g, pi);
  EXPECT_EQ(h.num_vertices(), 3);
  EXPECT_GT(h.edge_weight(0, 1), 0);
  EXPECT_GT(h.edge_weight(1, 2), 0);
  EXPECT_EQ(h.edge_weight(0, 2), 0);  // not adjacent
  EXPECT_EQ(h.vertex_weight(0), 6 * 1);
}

TEST(HuBlake, PotentialsBalanceAPath) {
  // Three processors in a path, loads +2, 0, −2: flow must be 2 across each
  // edge toward the light end.
  graph::GraphBuilder b(3);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  const Graph h = b.build();
  const std::vector<double> load{2.0, 0.0, -2.0};
  const auto lambda = hu_blake_potentials(h, load);
  ASSERT_EQ(lambda.size(), 3u);
  EXPECT_NEAR(lambda[0] - lambda[1], 2.0, 1e-6);
  EXPECT_NEAR(lambda[1] - lambda[2], 2.0, 1e-6);
}

TEST(Diffusion, RebalancesSkewedGrid) {
  const Graph g = grid_graph(12, 12);
  // Heavily skewed: left quarter is part 1, rest part 0.
  Partition pi(2, std::vector<PartId>(144));
  for (int j = 0; j < 12; ++j)
    for (int i = 0; i < 12; ++i)
      pi.assign[static_cast<std::size_t>(j * 12 + i)] = i < 3 ? 1 : 0;
  const double before = imbalance(g, pi);
  const auto result = diffusion_rebalance(g, pi);
  EXPECT_GT(result.moves, 0);
  EXPECT_LT(imbalance(g, pi), before);
  EXPECT_LT(imbalance(g, pi), 0.10);
}

TEST(Diffusion, NoopOnBalancedPartition) {
  const Graph g = grid_graph(8, 8);
  Partition pi(2, std::vector<PartId>(64));
  for (int v = 0; v < 64; ++v)
    pi.assign[static_cast<std::size_t>(v)] = (v % 8) < 4 ? 0 : 1;
  const auto result = diffusion_rebalance(g, pi);
  EXPECT_EQ(result.moves, 0);
}

}  // namespace
}  // namespace pnr::part
