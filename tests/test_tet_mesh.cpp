// Tests for the 3D adaptive tetrahedral mesh: Kuhn generation, longest-edge
// bisection with edge-star propagation, coarsening and dual extraction.

#include <gtest/gtest.h>

#include "mesh/dual.hpp"
#include "mesh/generate.hpp"
#include "mesh/metrics.hpp"
#include "mesh/tet_mesh.hpp"

namespace pnr::mesh {
namespace {

TetMesh unit_cube(int n = 3, double jitter = 0.0, std::uint64_t seed = 1) {
  return structured_tet_mesh(n, n, n, jitter, seed);
}

std::vector<ElemIdx> leaves_in_ball(const TetMesh& m, double cx, double cy,
                                    double cz, double r) {
  std::vector<ElemIdx> out;
  for (const ElemIdx e : m.leaf_elements()) {
    const Point3 c = m.centroid(e);
    const double d2 = (c.x - cx) * (c.x - cx) + (c.y - cy) * (c.y - cy) +
                      (c.z - cz) * (c.z - cz);
    if (d2 < r * r) out.push_back(e);
  }
  return out;
}

TEST(Generate3D, StructuredCounts) {
  const TetMesh m = unit_cube(2);
  EXPECT_EQ(m.num_initial_elements(), 6 * 8);
  EXPECT_EQ(m.num_vertices_alive(), 27);
  EXPECT_TRUE(m.check_invariants().empty()) << m.check_invariants();
}

TEST(Generate3D, VolumeIsDomainVolume) {
  const TetMesh m = unit_cube(3, 0.15, 5);
  double vol = 0.0;
  for (const ElemIdx e : m.leaf_elements()) vol += m.signed_volume(e);
  EXPECT_NEAR(vol, 8.0, 1e-9);
}

TEST(Generate3D, JitteredStaysPositive) {
  const TetMesh m = unit_cube(4, 0.2, 17);
  for (const ElemIdx e : m.leaf_elements())
    EXPECT_GT(m.signed_volume(e), 0.0);
  EXPECT_TRUE(m.check_invariants().empty()) << m.check_invariants();
}

TEST(Refine3D, SingleMarkStaysConforming) {
  TetMesh m = unit_cube(2);
  const auto bisections = m.refine({0});
  EXPECT_GE(bisections, 1);
  EXPECT_TRUE(m.check_invariants().empty()) << m.check_invariants();
}

TEST(Refine3D, VolumeConserved) {
  TetMesh m = unit_cube(2, 0.1, 3);
  m.refine(m.leaf_elements());
  m.refine(leaves_in_ball(m, 0.5, 0.5, 0.5, 0.6));
  double vol = 0.0;
  for (const ElemIdx e : m.leaf_elements()) vol += m.signed_volume(e);
  EXPECT_NEAR(vol, 8.0, 1e-9);
  EXPECT_TRUE(m.check_invariants().empty()) << m.check_invariants();
}

TEST(Refine3D, UniformRoundAtLeastDoubles) {
  TetMesh m = unit_cube(2);
  const auto n0 = m.num_leaves();
  m.refine(m.leaf_elements());
  EXPECT_GE(m.num_leaves(), 2 * n0);
  EXPECT_TRUE(m.check_invariants().empty());
}

TEST(Refine3D, DeepLocalRefinementTerminates) {
  TetMesh m = unit_cube(3, 0.1, 7);
  for (int round = 0; round < 5; ++round) {
    const auto marked = leaves_in_ball(m, 0.9, 0.9, 0.9, 0.5);
    ASSERT_FALSE(marked.empty());
    m.refine(marked);
    ASSERT_TRUE(m.check_invariants().empty()) << m.check_invariants();
  }
  EXPECT_GT(m.num_leaves(), 400);
}

TEST(Refine3D, LeafCountsTrackAncestors) {
  TetMesh m = unit_cube(2);
  m.refine({0, 7, 13});
  std::int64_t total = 0;
  for (ElemIdx c = 0; c < m.num_initial_elements(); ++c)
    total += m.leaf_count(c);
  EXPECT_EQ(total, m.num_leaves());
}

TEST(Coarsen3D, RoundTripToInitial) {
  TetMesh m = unit_cube(2);
  const auto initial_leaves = m.num_leaves();
  const auto initial_verts = m.num_vertices_alive();
  for (int round = 0; round < 2; ++round)
    m.refine(leaves_in_ball(m, 0.0, 0.0, 0.0, 1.2));
  while (m.coarsen(m.leaf_elements()) > 0) {
    ASSERT_TRUE(m.check_invariants().empty()) << m.check_invariants();
  }
  EXPECT_EQ(m.num_leaves(), initial_leaves);
  EXPECT_EQ(m.num_vertices_alive(), initial_verts);
}

TEST(Coarsen3D, PartialMarkDoesNotBreakMesh) {
  TetMesh m = unit_cube(2);
  m.refine(m.leaf_elements());
  // Mark only half the leaves.
  auto leaves = m.leaf_elements();
  leaves.resize(leaves.size() / 2);
  m.coarsen(leaves);
  EXPECT_TRUE(m.check_invariants().empty()) << m.check_invariants();
}

TEST(Dual3D, FineDualDegreesAtMostFour) {
  TetMesh m = unit_cube(2);
  m.refine(m.leaf_elements());
  const auto dual = fine_dual_graph(m);
  EXPECT_TRUE(dual.graph.validate().empty());
  for (graph::VertexId v = 0; v < dual.graph.num_vertices(); ++v)
    EXPECT_LE(dual.graph.degree(v), 4);
}

TEST(Dual3D, NestedWeightsSumToLeaves) {
  TetMesh m = unit_cube(2);
  for (int round = 0; round < 3; ++round)
    m.refine(leaves_in_ball(m, 0.8, 0.8, 0.8, 0.5));
  const auto g = nested_dual_graph(m);
  EXPECT_EQ(g.num_vertices(), m.num_initial_elements());
  EXPECT_EQ(g.total_vertex_weight(), m.num_leaves());
  EXPECT_TRUE(g.validate().empty()) << g.validate();
}

TEST(Metrics3D, SharedVerticesHalfSplit) {
  TetMesh m = unit_cube(2);
  const auto leaves = m.leaf_elements();
  std::vector<part::PartId> assign(leaves.size());
  for (std::size_t i = 0; i < leaves.size(); ++i)
    assign[i] = m.centroid(leaves[i]).x < 0.0 ? 0 : 1;
  // The x = 0 plane of a 3×3×3 vertex grid holds 9 vertices.
  EXPECT_EQ(shared_vertices(m, leaves, assign), 9);
}

TEST(Boundary3D, CubeSurfaceVertices) {
  const TetMesh m = unit_cube(2);
  const auto mask = m.boundary_vertex_mask();
  int boundary = 0;
  for (std::size_t v = 0; v < m.vertex_slots(); ++v)
    boundary += mask[v] ? 1 : 0;
  EXPECT_EQ(boundary, 26);  // 27 vertices, one interior
}

}  // namespace
}  // namespace pnr::mesh
