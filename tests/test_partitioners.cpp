// Integration/property tests for the full partitioners (Multilevel-KL, RSB,
// inertial, greedy growing) over seeds, part counts and mesh shapes, using
// parameterized suites.

#include <gtest/gtest.h>

#include <cmath>

#include "graph/builder.hpp"
#include "mesh/dual.hpp"
#include "mesh/generate.hpp"
#include "partition/ggg.hpp"
#include "partition/inertial.hpp"
#include "partition/mlkl.hpp"
#include "partition/partitioner.hpp"
#include "partition/rcb.hpp"
#include "partition/rsb.hpp"

namespace pnr::part {
namespace {

Graph grid_graph(int nx, int ny) {
  graph::GraphBuilder b(nx * ny);
  auto id = [&](int i, int j) { return static_cast<graph::VertexId>(j * nx + i); };
  for (int j = 0; j < ny; ++j)
    for (int i = 0; i < nx; ++i) {
      if (i + 1 < nx) b.add_edge(id(i, j), id(i + 1, j));
      if (j + 1 < ny) b.add_edge(id(i, j), id(i, j + 1));
    }
  return b.build();
}

TEST(GreedyGrow, HitsTargetWeight) {
  const Graph g = grid_graph(10, 10);
  util::Rng rng(1);
  const auto side = greedy_grow_bisect(g, 50, rng);
  Weight w0 = 0;
  for (std::size_t v = 0; v < side.size(); ++v)
    if (side[v] == 0) w0 += g.vertex_weight(static_cast<graph::VertexId>(v));
  EXPECT_GE(w0, 50);
  EXPECT_LE(w0, 55);  // one absorb may overshoot slightly
}

TEST(GreedyGrow, HandlesDisconnectedGraph) {
  graph::GraphBuilder b(6);
  b.add_edge(0, 1);
  b.add_edge(2, 3);  // vertices 4, 5 isolated
  const Graph g = b.build();
  util::Rng rng(2);
  const auto side = greedy_grow_bisect(g, 3, rng);
  int zeros = 0;
  for (const PartId s : side) zeros += s == 0;
  EXPECT_EQ(zeros, 3);
}

TEST(PseudoPeripheral, EndsFarFromStart) {
  const Graph g = grid_graph(10, 1);  // a path
  const auto v = pseudo_peripheral(g, 5);
  EXPECT_TRUE(v == 0 || v == 9);
}

TEST(Fiedler, SignSplitsAPathInHalf) {
  const Graph g = grid_graph(16, 1);
  util::Rng rng(3);
  const auto x = fiedler_vector(g, rng);
  // The Fiedler vector of a path is monotone: signs split contiguously.
  int sign_changes = 0;
  for (std::size_t v = 1; v < x.size(); ++v)
    if ((x[v] > 0) != (x[v - 1] > 0)) ++sign_changes;
  EXPECT_EQ(sign_changes, 1);
}

TEST(Fiedler, OrthogonalToOnesAndUnit) {
  const Graph g = grid_graph(12, 7);
  util::Rng rng(4);
  auto x = fiedler_vector(g, rng);
  double sum = 0.0, norm = 0.0;
  for (const double v : x) {
    sum += v;
    norm += v * v;
  }
  EXPECT_NEAR(sum, 0.0, 1e-6);
  EXPECT_NEAR(norm, 1.0, 1e-6);
}

struct PwayCase {
  int nx, ny;
  PartId p;
  std::uint64_t seed;
};

class PwayPartitioners : public ::testing::TestWithParam<PwayCase> {};

TEST_P(PwayPartitioners, MlklBalancedAndValid) {
  const auto c = GetParam();
  const Graph g = grid_graph(c.nx, c.ny);
  util::Rng rng(c.seed);
  const Partition pi = multilevel_kl(g, c.p, rng);
  EXPECT_TRUE(pi.valid_for(g));
  EXPECT_TRUE(all_parts_used(g, pi));
  EXPECT_LE(imbalance(g, pi), 0.35);  // recursive bisection compounds tolerance
  // Cut sanity: far below the total edge weight.
  EXPECT_LT(cut_size(g, pi), g.num_edges() / 2);
}

TEST_P(PwayPartitioners, RsbBalancedAndValid) {
  const auto c = GetParam();
  const Graph g = grid_graph(c.nx, c.ny);
  util::Rng rng(c.seed);
  const Partition pi = rsb(g, c.p, rng);
  EXPECT_TRUE(pi.valid_for(g));
  EXPECT_TRUE(all_parts_used(g, pi));
  EXPECT_LE(imbalance(g, pi), 0.35);
  EXPECT_LT(cut_size(g, pi), g.num_edges() / 2);
}

INSTANTIATE_TEST_SUITE_P(
    GridSweep, PwayPartitioners,
    ::testing::Values(PwayCase{8, 8, 2, 1}, PwayCase{8, 8, 4, 2},
                      PwayCase{16, 16, 4, 3}, PwayCase{16, 16, 8, 4},
                      PwayCase{16, 16, 3, 5},   // odd p
                      PwayCase{20, 10, 5, 6},   // odd p, rectangular
                      PwayCase{24, 24, 16, 7}, PwayCase{12, 3, 6, 8}));

TEST(Mlkl, GridCutNearOptimalForBisection) {
  // Bisecting an n×n grid optimally cuts n edges; accept ≤ 2n.
  const Graph g = grid_graph(16, 16);
  util::Rng rng(11);
  const Partition pi = multilevel_kl(g, 2, rng);
  EXPECT_LE(cut_size(g, pi), 32);
}

TEST(Rsb, GridCutNearOptimalForBisection) {
  const Graph g = grid_graph(16, 16);
  util::Rng rng(12);
  const Partition pi = rsb(g, 2, rng);
  EXPECT_LE(cut_size(g, pi), 32);
}

TEST(Inertial, SplitsAlongLongAxis) {
  // Strongly anisotropic grid: the principal axis is x, so a bisection
  // should cut a short vertical line (≈ ny edges).
  const Graph g = grid_graph(40, 4);
  std::vector<double> coords(static_cast<std::size_t>(g.num_vertices()) * 2);
  for (int j = 0; j < 4; ++j)
    for (int i = 0; i < 40; ++i) {
      coords[static_cast<std::size_t>(j * 40 + i) * 2] = i;
      coords[static_cast<std::size_t>(j * 40 + i) * 2 + 1] = j;
    }
  util::Rng rng(13);
  const Partition pi = inertial_partition(g, coords, 2, 2, rng);
  EXPECT_TRUE(pi.valid_for(g));
  EXPECT_LE(cut_size(g, pi), 8);
  EXPECT_LE(imbalance(g, pi), 0.05);
}

TEST(Facade, ParsesAndRuns) {
  EXPECT_EQ(parse_method("mlkl"), Method::kMultilevelKL);
  EXPECT_EQ(parse_method("rsb"), Method::kRSB);
  EXPECT_EQ(parse_method("inertial"), Method::kInertial);
  EXPECT_EQ(parse_method("random"), Method::kRandom);
  EXPECT_FALSE(parse_method("nope").has_value());

  const Graph g = grid_graph(8, 8);
  util::Rng rng(14);
  PartitionerOptions opt;
  opt.method = Method::kRandom;
  const Partition pi = make_partition(g, 4, rng, opt);
  EXPECT_TRUE(pi.valid_for(g));
}

TEST(Facade, ParseNameRoundTripsForEveryMethod) {
  // parse_method must invert method_name for every enum value, including
  // the coordinate methods and the documented aliases.
  for (const Method m : {Method::kMultilevelKL, Method::kRSB,
                         Method::kInertial, Method::kRCB, Method::kRandom}) {
    const auto parsed = parse_method(method_name(m));
    ASSERT_TRUE(parsed.has_value()) << method_name(m);
    EXPECT_EQ(*parsed, m) << method_name(m);
  }
  EXPECT_EQ(parse_method("multilevel-kl"), Method::kMultilevelKL);
  EXPECT_EQ(parse_method("geometric"), Method::kInertial);
  EXPECT_EQ(parse_method("coordinate"), Method::kRCB);
}

TEST(MeshIntegration, MlklPartitionsAdaptedTriDual) {
  auto mesh = mesh::structured_tri_mesh(8, 8, 0.2, 21);
  for (int round = 0; round < 3; ++round) {
    std::vector<mesh::ElemIdx> marked;
    for (const mesh::ElemIdx e : mesh.leaf_elements()) {
      const auto c = mesh.centroid(e);
      if (c.x > 0.3 && c.y > 0.3) marked.push_back(e);
    }
    mesh.refine(marked);
  }
  const auto dual = mesh::fine_dual_graph(mesh);
  util::Rng rng(22);
  const Partition pi = multilevel_kl(dual.graph, 4, rng);
  EXPECT_TRUE(all_parts_used(dual.graph, pi));
  EXPECT_LE(imbalance(dual.graph, pi), 0.25);
}

TEST(Rcb, SplitsAlongWidestAxisWithGoodBalance) {
  const Graph g = grid_graph(40, 4);
  std::vector<double> coords(static_cast<std::size_t>(g.num_vertices()) * 2);
  for (int j = 0; j < 4; ++j)
    for (int i = 0; i < 40; ++i) {
      coords[static_cast<std::size_t>(j * 40 + i) * 2] = i;
      coords[static_cast<std::size_t>(j * 40 + i) * 2 + 1] = j;
    }
  const Partition pi = rcb_partition(g, coords, 2, 4);
  EXPECT_TRUE(pi.valid_for(g));
  EXPECT_TRUE(all_parts_used(g, pi));
  EXPECT_LE(imbalance(g, pi), 0.05);
  // Axis-aligned cuts through the long strip: ~4 edges per cut, 3 cuts.
  EXPECT_LE(cut_size(g, pi), 16);
}

TEST(Rcb, HandlesWeightedVertices) {
  graph::GraphBuilder b(6);
  for (graph::VertexId v = 0; v + 1 < 6; ++v) b.add_edge(v, v + 1);
  b.set_vertex_weight(0, 5);
  const Graph g = b.build();  // weights 5 1 1 1 1 1 = 10
  std::vector<double> coords(12);
  for (int v = 0; v < 6; ++v) coords[static_cast<std::size_t>(v) * 2] = v;
  const Partition pi = rcb_partition(g, coords, 2, 2);
  const auto w = part_weights(g, pi);
  EXPECT_EQ(std::max(w[0], w[1]), 5);
}

TEST(Facade, RcbMethodRuns) {
  EXPECT_EQ(parse_method("rcb"), Method::kRCB);
  const Graph g = grid_graph(10, 10);
  std::vector<double> coords(200);
  for (int j = 0; j < 10; ++j)
    for (int i = 0; i < 10; ++i) {
      coords[static_cast<std::size_t>(j * 10 + i) * 2] = i;
      coords[static_cast<std::size_t>(j * 10 + i) * 2 + 1] = j;
    }
  util::Rng rng(1);
  PartitionerOptions opt;
  opt.method = Method::kRCB;
  opt.coords = coords;
  const Partition pi = make_partition(g, 5, rng, opt);
  EXPECT_TRUE(all_parts_used(g, pi));
  EXPECT_LE(imbalance(g, pi), 0.1);
}

TEST(Mlkl, RandomMatchingAblationStillWorks) {
  const Graph g = grid_graph(16, 16);
  util::Rng rng(23);
  MlklOptions opt;
  opt.random_matching = true;
  const Partition pi = multilevel_kl(g, 4, rng, opt);
  EXPECT_TRUE(all_parts_used(g, pi));
  EXPECT_LE(imbalance(g, pi), 0.35);
}

}  // namespace
}  // namespace pnr::part
