// pnr::exec — the deterministic shared-memory task runtime. The contract
// under test: chunk decomposition depends only on (n, grain, max_chunks),
// reductions combine partials in a fixed-shape tree, and therefore every
// kernel built on the pool is bitwise identical at 1/2/4/8 threads.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "exec/pool.hpp"
#include "fem/cg.hpp"
#include "fem/sparse.hpp"
#include "graph/builder.hpp"
#include "graph/coarsen.hpp"
#include "util/rng.hpp"

namespace pnr {
namespace {

constexpr int kThreadSweep[] = {1, 2, 4, 8};

/// Runs `fn` once per sweep thread count on a fresh pool and returns the
/// per-count results for cross-count comparison.
template <typename Fn>
auto sweep(Fn&& fn) {
  std::vector<decltype(fn(std::declval<exec::Pool&>()))> results;
  for (const int t : kThreadSweep) {
    exec::Pool pool(t);
    results.push_back(fn(pool));
  }
  return results;
}

// ---------------------------------------------------------------------------
// Chunk decomposition.

TEST(ExecChunking, RangesTileTheIndexSpace) {
  for (const std::int64_t n : {0, 1, 7, 100, 4097, 100000}) {
    for (const std::int64_t grain : {1, 64, 1024, 4096}) {
      const exec::Chunking ck{grain, 4096};
      const std::int64_t chunks = exec::num_chunks(n, ck);
      if (n == 0) continue;
      ASSERT_GE(chunks, 1);
      std::int64_t expect_begin = 0;
      for (std::int64_t c = 0; c < chunks; ++c) {
        const auto [b, e] = exec::chunk_range(n, chunks, c);
        EXPECT_EQ(b, expect_begin);
        EXPECT_LE(b, e);
        expect_begin = e;
      }
      EXPECT_EQ(expect_begin, n);
    }
  }
}

TEST(ExecChunking, BalancedWithinOne) {
  const std::int64_t n = 10007, chunks = exec::num_chunks(n, {64, 4096});
  std::int64_t min_sz = n, max_sz = 0;
  for (std::int64_t c = 0; c < chunks; ++c) {
    const auto [b, e] = exec::chunk_range(n, chunks, c);
    min_sz = std::min(min_sz, e - b);
    max_sz = std::max(max_sz, e - b);
  }
  EXPECT_LE(max_sz - min_sz, 1);
}

TEST(ExecChunking, MaxChunksCapsTheCount) {
  EXPECT_EQ(exec::num_chunks(1 << 20, exec::Chunking{1, 8}), 8);
  EXPECT_EQ(exec::num_chunks(100, exec::Chunking{1024, 4096}), 1);
}

// ---------------------------------------------------------------------------
// Pool execution semantics.

TEST(ExecPool, ParallelForVisitsEveryIndexOnce) {
  const std::int64_t n = 10000;
  for (const int t : kThreadSweep) {
    exec::Pool pool(t);
    std::vector<int> hits(static_cast<std::size_t>(n), 0);
    pool.parallel_for(
        n,
        [&](std::int64_t b, std::int64_t e) {
          for (std::int64_t i = b; i < e; ++i)
            ++hits[static_cast<std::size_t>(i)];
        },
        exec::Chunking{64, 4096});
    EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), n)
        << "threads=" << t;
    for (const int h : hits) ASSERT_EQ(h, 1);
  }
}

TEST(ExecPool, ReduceIsBitwiseStableAcrossThreadCounts) {
  // Values spanning ~16 orders of magnitude make float addition visibly
  // non-associative, so any shape difference between thread counts would
  // change bits.
  const std::int64_t n = 50000;
  std::vector<double> v(static_cast<std::size_t>(n));
  util::Rng rng(7);
  for (auto& x : v)
    x = rng.next_double() * std::pow(10.0, rng.uniform_int(-8, 8));
  const auto sums = sweep([&](exec::Pool& pool) {
    return pool.parallel_reduce(
        n, 0.0,
        [&](std::int64_t b, std::int64_t e) {
          double acc = 0.0;
          for (std::int64_t i = b; i < e; ++i)
            acc += v[static_cast<std::size_t>(i)];
          return acc;
        },
        [](double a, double b) { return a + b; }, exec::Chunking{512, 4096});
  });
  for (std::size_t i = 1; i < sums.size(); ++i) {
    EXPECT_EQ(sums[0], sums[i]) << "thread count " << kThreadSweep[i];
  }
}

TEST(ExecPool, ReduceNeverFoldsTheIdentityIn) {
  exec::Pool pool(4);
  const auto sum = pool.parallel_reduce(
      100, std::int64_t{999},
      [](std::int64_t b, std::int64_t e) { return e - b; },
      [](std::int64_t a, std::int64_t b) { return a + b; },
      exec::Chunking{10, 16});
  EXPECT_EQ(sum, 100);
  const auto empty = pool.parallel_reduce(
      0, std::int64_t{999},
      [](std::int64_t, std::int64_t) { return std::int64_t{0}; },
      [](std::int64_t a, std::int64_t b) { return a + b; });
  EXPECT_EQ(empty, 999);
}

TEST(ExecPool, ExclusiveScanMatchesSerialReference) {
  const std::int64_t n = 12345;
  std::vector<std::int64_t> in(static_cast<std::size_t>(n));
  util::Rng rng(11);
  for (auto& x : in) x = rng.uniform_int(0, 9);
  std::vector<std::int64_t> ref(in.size());
  std::int64_t acc = 0;
  for (std::size_t i = 0; i < in.size(); ++i) {
    ref[i] = acc;
    acc += in[i];
  }
  for (const int t : kThreadSweep) {
    exec::Pool pool(t);
    std::vector<std::int64_t> out(in.size());
    const std::int64_t total =
        pool.exclusive_scan(in, out, exec::Chunking{256, 4096});
    EXPECT_EQ(total, acc) << "threads=" << t;
    EXPECT_EQ(out, ref) << "threads=" << t;
  }
}

TEST(ExecPool, EmptyAndSingleElementRanges) {
  exec::Pool pool(4);
  int calls = 0;
  pool.parallel_for(0, [&](std::int64_t, std::int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  pool.parallel_for(1, [&](std::int64_t b, std::int64_t e) {
    ++calls;
    EXPECT_EQ(b, 0);
    EXPECT_EQ(e, 1);
  });
  EXPECT_EQ(calls, 1);
  std::vector<std::int64_t> none;
  std::vector<std::int64_t> out;
  EXPECT_EQ(pool.exclusive_scan(none, out), 0);
}

TEST(ExecPool, ExceptionPropagatesAndPoolSurvives) {
  exec::Pool pool(4);
  EXPECT_THROW(
      pool.parallel_for(
          16,
          [](std::int64_t b, std::int64_t) {
            if (b == 7) throw std::runtime_error("chunk 7 failed");
          },
          exec::Chunking{1, 16}),
      std::runtime_error);
  // The pool must come back clean: a follow-up region runs to completion.
  std::vector<int> hits(16, 0);
  pool.parallel_for(
      16,
      [&](std::int64_t b, std::int64_t e) {
        for (std::int64_t i = b; i < e; ++i)
          ++hits[static_cast<std::size_t>(i)];
      },
      exec::Chunking{1, 16});
  for (const int h : hits) EXPECT_EQ(h, 1);
}

TEST(ExecPool, NestedParallelCallsRunInline) {
  exec::Pool pool(4);
  std::vector<int> hits(64, 0);
  pool.parallel_for(
      8,
      [&](std::int64_t ob, std::int64_t oe) {
        for (std::int64_t o = ob; o < oe; ++o)
          pool.parallel_for(
              8,
              [&](std::int64_t ib, std::int64_t ie) {
                for (std::int64_t i = ib; i < ie; ++i)
                  ++hits[static_cast<std::size_t>(o * 8 + i)];
              },
              exec::Chunking{1, 8});
      },
      exec::Chunking{1, 8});
  for (const int h : hits) EXPECT_EQ(h, 1);
}

TEST(ExecPool, SerialRegionForcesInlineExecution) {
  exec::Pool pool(4);
  EXPECT_FALSE(pool.serial());
  {
    exec::SerialRegion region;
    EXPECT_TRUE(exec::in_serial_context());
    EXPECT_TRUE(pool.serial());
    // Everything still runs (inline) and produces the same coverage.
    std::vector<int> hits(100, 0);
    pool.parallel_for(
        100,
        [&](std::int64_t b, std::int64_t e) {
          for (std::int64_t i = b; i < e; ++i)
            ++hits[static_cast<std::size_t>(i)];
        },
        exec::Chunking{10, 16});
    for (const int h : hits) EXPECT_EQ(h, 1);
  }
  EXPECT_FALSE(exec::in_serial_context());
  EXPECT_FALSE(pool.serial());
}

TEST(ExecPool, RestartsAfterShutdown) {
  exec::Pool pool(4);
  std::vector<int> hits(32, 0);
  auto mark = [&](std::int64_t b, std::int64_t e) {
    for (std::int64_t i = b; i < e; ++i) ++hits[static_cast<std::size_t>(i)];
  };
  pool.parallel_for(32, mark, exec::Chunking{1, 32});
  pool.shutdown();
  EXPECT_EQ(pool.num_threads(), 4);
  pool.parallel_for(32, mark, exec::Chunking{1, 32});  // lazy restart
  for (const int h : hits) EXPECT_EQ(h, 2);
}

TEST(ExecPool, DefaultPoolFollowsSetDefaultThreads) {
  const int before = exec::default_pool().num_threads();
  exec::set_default_threads(3);
  EXPECT_EQ(exec::default_pool().num_threads(), 3);
  exec::set_default_threads(before);
  EXPECT_EQ(exec::default_pool().num_threads(), before);
}

// ---------------------------------------------------------------------------
// Kernel determinism across thread counts.

graph::Graph grid_graph(int nx, int ny) {
  graph::GraphBuilder b(nx * ny);
  auto id = [&](int i, int j) { return static_cast<graph::VertexId>(j * nx + i); };
  for (int j = 0; j < ny; ++j)
    for (int i = 0; i < nx; ++i) {
      if (i + 1 < nx) b.add_edge(id(i, j), id(i + 1, j));
      if (j + 1 < ny) b.add_edge(id(i, j), id(i, j + 1));
    }
  return b.build();
}

void expect_same_graph(const graph::Graph& a, const graph::Graph& b,
                       int threads) {
  EXPECT_EQ(a.xadj(), b.xadj()) << "threads=" << threads;
  EXPECT_EQ(a.adjncy(), b.adjncy()) << "threads=" << threads;
  EXPECT_EQ(a.adjwgt(), b.adjwgt()) << "threads=" << threads;
  EXPECT_EQ(a.vwgt(), b.vwgt()) << "threads=" << threads;
}

/// Restores the process default pool width on scope exit so kernel sweeps
/// can retune it without leaking state into other tests (or a PNR_THREADS
/// override from the environment).
class DefaultThreadsGuard {
 public:
  DefaultThreadsGuard() : saved_(exec::default_pool().num_threads()) {}
  ~DefaultThreadsGuard() { exec::set_default_threads(saved_); }

 private:
  int saved_;
};

TEST(ExecDeterminism, CsrBuildBitwiseEqualAcrossThreadCounts) {
  DefaultThreadsGuard guard;
  std::vector<graph::Graph> built;
  for (const int t : kThreadSweep) {
    exec::set_default_threads(t);
    built.push_back(grid_graph(80, 70));  // 5600 vertices → several chunks
  }
  for (std::size_t i = 1; i < built.size(); ++i)
    expect_same_graph(built[0], built[i], kThreadSweep[i]);
}

TEST(ExecDeterminism, EdgeBatchAssemblyCanonicalizesAnyOrder) {
  DefaultThreadsGuard guard;
  // Duplicate arcs in scrambled order must collapse to one sorted CSR —
  // identically at every thread count.
  std::vector<graph::WeightedEdge> edges = {
      {3, 1, 2}, {0, 1, 1}, {1, 3, 2}, {2, 0, 5}, {1, 0, 1}, {3, 2, 4},
  };
  std::vector<graph::Graph> built;
  for (const int t : kThreadSweep) {
    exec::set_default_threads(t);
    built.push_back(graph::build_csr_from_edges(4, edges, {}));
  }
  for (std::size_t i = 0; i < built.size(); ++i) {
    EXPECT_TRUE(built[i].validate().empty()) << built[i].validate();
    // {0,1} listed once from each side with merged weight 1+1 = 2.
    EXPECT_EQ(built[i].edge_weight(0, 1), 2);
    EXPECT_EQ(built[i].edge_weight(1, 0), 2);
    if (i > 0) expect_same_graph(built[0], built[i], kThreadSweep[i]);
  }
}

TEST(ExecDeterminism, CoarsenMatchingBitwiseEqualAcrossThreadCounts) {
  DefaultThreadsGuard guard;
  const graph::Graph g = grid_graph(60, 60);
  std::vector<graph::CoarseLevel> levels;
  for (const int t : kThreadSweep) {
    exec::set_default_threads(t);
    util::Rng rng(42);  // same seed per count: matching must be identical
    levels.push_back(graph::coarsen_once(g, rng, {}));
  }
  for (std::size_t i = 1; i < levels.size(); ++i) {
    EXPECT_EQ(levels[0].fine_to_coarse, levels[i].fine_to_coarse)
        << "threads=" << kThreadSweep[i];
    expect_same_graph(levels[0].graph, levels[i].graph, kThreadSweep[i]);
  }
}

TEST(ExecDeterminism, CgResidualHistoryBitwiseEqualAcrossThreadCounts) {
  DefaultThreadsGuard guard;
  // 1-D Laplacian big enough (6000 > grain 4096) that the vector kernels
  // split into several chunks and actually exercise the reduction tree.
  const std::int32_t n = 6000;
  std::vector<std::int32_t> rows, cols;
  std::vector<double> vals;
  for (std::int32_t i = 0; i < n; ++i) {
    rows.push_back(i), cols.push_back(i), vals.push_back(2.0);
    if (i + 1 < n) {
      rows.push_back(i), cols.push_back(i + 1), vals.push_back(-1.0);
      rows.push_back(i + 1), cols.push_back(i), vals.push_back(-1.0);
    }
  }
  const auto m = fem::CsrMatrix::from_triplets(n, rows, cols, vals);
  std::vector<double> b(static_cast<std::size_t>(n));
  util::Rng rng(3);
  for (auto& x : b) x = rng.next_double() * 2.0 - 1.0;

  std::vector<fem::CgResult> runs;
  std::vector<std::vector<double>> solutions;
  for (const int t : kThreadSweep) {
    exec::set_default_threads(t);
    std::vector<double> x(static_cast<std::size_t>(n), 0.0);
    runs.push_back(fem::conjugate_gradient(m, b, x, 1e-10, 60));
    solutions.push_back(std::move(x));
  }
  ASSERT_FALSE(runs[0].residuals.empty());
  for (std::size_t i = 1; i < runs.size(); ++i) {
    EXPECT_EQ(runs[0].iterations, runs[i].iterations);
    EXPECT_EQ(runs[0].residuals, runs[i].residuals)
        << "threads=" << kThreadSweep[i];
    EXPECT_EQ(solutions[0], solutions[i]) << "threads=" << kThreadSweep[i];
  }
}

TEST(ExecSubmit, RunsEveryDetachedTaskExactlyOnce) {
  exec::Pool pool(4);
  std::atomic<int> ran{0};
  std::atomic<int> sum{0};
  for (int i = 0; i < 100; ++i)
    pool.submit([&ran, &sum, i] {
      ran.fetch_add(1, std::memory_order_relaxed);
      sum.fetch_add(i, std::memory_order_relaxed);
    });
  pool.wait_detached();
  EXPECT_EQ(ran.load(), 100);
  EXPECT_EQ(sum.load(), 99 * 100 / 2);

  // The pool is reusable after a full drain.
  pool.submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
  pool.wait_detached();
  EXPECT_EQ(ran.load(), 101);
}

TEST(ExecSubmit, TasksRunInSerialContext) {
  // Nested parallel_* inside a detached task must run inline-serial, so a
  // task that itself calls kernels cannot deadlock or oversubscribe.
  exec::Pool pool(4);
  std::atomic<bool> serial{false};
  std::atomic<std::int64_t> total{0};
  pool.submit([&] {
    serial.store(exec::in_serial_context());
    std::vector<std::int64_t> v(10000, 1);
    total.store(pool.parallel_reduce(
        static_cast<std::int64_t>(v.size()), std::int64_t{0},
        [&](std::int64_t lo, std::int64_t hi) {
          std::int64_t acc = 0;
          for (std::int64_t i = lo; i < hi; ++i)
            acc += v[static_cast<std::size_t>(i)];
          return acc;
        },
        [](std::int64_t a, std::int64_t b) { return a + b; }));
  });
  pool.wait_detached();
  EXPECT_TRUE(serial.load());
  EXPECT_EQ(total.load(), 10000);
}

TEST(ExecSubmit, WaitDetachedRethrowsTheFirstTaskException) {
  exec::Pool pool(2);
  for (int i = 0; i < 8; ++i)
    pool.submit([] { throw std::runtime_error("task boom"); });
  EXPECT_THROW(pool.wait_detached(), std::runtime_error);
  // The error is consumed: the pool keeps working afterwards.
  std::atomic<int> ran{0};
  pool.submit([&ran] { ran.fetch_add(1); });
  pool.wait_detached();
  EXPECT_EQ(ran.load(), 1);
}

TEST(ExecSubmit, TasksMaySubmitMoreTasks) {
  // wait_detached must cover transitively-submitted work, the shape the
  // sharded svc server relies on when a drain task re-schedules itself.
  exec::Pool pool(2);
  std::atomic<int> ran{0};
  pool.submit([&] {
    ran.fetch_add(1);
    pool.submit([&] {
      ran.fetch_add(1);
      pool.submit([&] { ran.fetch_add(1); });
    });
  });
  pool.wait_detached();
  EXPECT_EQ(ran.load(), 3);
}

}  // namespace
}  // namespace pnr
