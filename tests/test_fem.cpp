// Tests for the FEM substrate: sparse matrix assembly/merging, CG solving,
// the analytic problems (harmonicity, RHS calculus), P1 convergence on the
// paper's test problems and the error-indicator marking.

#include <gtest/gtest.h>

#include <cmath>

#include "fem/cg.hpp"
#include "fem/estimator.hpp"
#include "fem/p1.hpp"
#include "fem/problems.hpp"
#include "fem/sparse.hpp"
#include "mesh/generate.hpp"

namespace pnr::fem {
namespace {

TEST(Sparse, TripletsMergeDuplicates) {
  const auto m = CsrMatrix::from_triplets(
      2, {0, 0, 0, 1, 1}, {0, 0, 1, 0, 1}, {1.0, 2.0, -1.0, -1.0, 3.0});
  EXPECT_EQ(m.nonzeros(), 4);
  EXPECT_DOUBLE_EQ(m.diagonal(0), 3.0);
  EXPECT_DOUBLE_EQ(m.diagonal(1), 3.0);
  std::vector<double> x{1.0, 1.0}, y(2);
  m.apply(x, y);
  EXPECT_DOUBLE_EQ(y[0], 2.0);
  EXPECT_DOUBLE_EQ(y[1], 2.0);
}

TEST(Sparse, DirichletForcesValue) {
  // 1D Laplacian of 3 nodes, fix u0 = 2.
  auto m = CsrMatrix::from_triplets(
      3, {0, 0, 1, 1, 1, 2, 2}, {0, 1, 0, 1, 2, 1, 2},
      {2, -1, -1, 2, -1, -1, 2});
  std::vector<double> rhs{0, 0, 0};
  std::vector<char> constrained{1, 0, 0};
  std::vector<double> values{2.0, 0.0, 0.0};
  m.set_dirichlet_all(constrained, values, rhs);
  std::vector<double> x(3, 0.0);
  const auto cg = conjugate_gradient(m, rhs, x);
  EXPECT_TRUE(cg.converged);
  EXPECT_NEAR(x[0], 2.0, 1e-8);
}

TEST(Cg, SolvesIdentityInstantly) {
  const auto m = CsrMatrix::from_triplets(3, {0, 1, 2}, {0, 1, 2},
                                          {1.0, 1.0, 1.0});
  std::vector<double> b{1, 2, 3}, x(3, 0.0);
  const auto r = conjugate_gradient(m, b, x);
  EXPECT_TRUE(r.converged);
  EXPECT_LE(r.iterations, 2);
  EXPECT_NEAR(x[2], 3.0, 1e-10);
}

TEST(Problems, CornerIsHarmonic) {
  // Numerical Laplacian of the corner solution should vanish.
  const auto f = corner_problem_2d();
  const double h = 1e-4;
  for (const auto& [x, y] : std::vector<std::pair<double, double>>{
           {0.0, 0.0}, {0.5, 0.5}, {-0.7, 0.3}, {0.9, 0.9}}) {
    const double lap =
        (f.value(x + h, y) + f.value(x - h, y) + f.value(x, y + h) +
         f.value(x, y - h) - 4.0 * f.value(x, y)) /
        (h * h);
    // The function reaches ~1 near the corner; relative tolerance.
    EXPECT_NEAR(lap, 0.0, 1e-2 * std::max(1.0, std::abs(f.value(x, y)) * 100));
  }
}

TEST(Problems, Corner3dIsHarmonic) {
  const auto f = corner_problem_3d();
  const double h = 1e-4;
  const double x = 0.3, y = -0.2, z = 0.6;
  const double lap =
      (f.value(x + h, y, z) + f.value(x - h, y, z) + f.value(x, y + h, z) +
       f.value(x, y - h, z) + f.value(x, y, z + h) + f.value(x, y, z - h) -
       6.0 * f.value(x, y, z)) /
      (h * h);
  EXPECT_NEAR(lap, 0.0, 1e-2);
}

TEST(Problems, MovingPeakLaplacianMatchesFiniteDifferences) {
  const auto f = moving_peak(0.25);
  const double h = 1e-5;
  for (const auto& [x, y] : std::vector<std::pair<double, double>>{
           {-0.25, -0.25}, {-0.2, -0.3}, {0.1, 0.4}}) {
    const double lap_fd =
        (f.value(x + h, y) + f.value(x - h, y) + f.value(x, y + h) +
         f.value(x, y - h) - 4.0 * f.value(x, y)) /
        (h * h);
    EXPECT_NEAR(-f.neg_laplacian(x, y), lap_fd,
                1e-3 * std::max(1.0, std::abs(lap_fd)));
  }
}

TEST(Problems, MovingPeakPeaksAtMinusT) {
  const auto f = moving_peak(0.3);
  EXPECT_NEAR(f.value(-0.3, -0.3), 1.0, 1e-12);
  EXPECT_LT(f.value(0.5, 0.5), 0.02);
}

TEST(P1, SolvesLinearFieldExactly) {
  // u = x + 2y is harmonic and in the P1 space: error ~ solver tolerance.
  ScalarField2 field;
  field.value = [](double x, double y) { return x + 2.0 * y; };
  field.neg_laplacian = [](double, double) { return 0.0; };
  const auto mesh = mesh::structured_tri_mesh(6, 6, 0.2, 3);
  const auto r = solve_poisson(mesh, field, 1e-12);
  EXPECT_TRUE(r.cg.converged);
  EXPECT_LT(r.max_error, 1e-8);
}

TEST(P1, CornerProblemConverges) {
  // Halving h on the uniform mesh should shrink the L∞ error noticeably.
  const auto field = corner_problem_2d();
  const auto coarse = mesh::structured_tri_mesh(16, 16, 0.0, 1);
  const auto fine = mesh::structured_tri_mesh(32, 32, 0.0, 1);
  const auto ec = solve_poisson(coarse, field, 1e-11).max_error;
  const auto ef = solve_poisson(fine, field, 1e-11).max_error;
  EXPECT_LT(ef, ec * 0.5);
}

TEST(P1, MovingPeakPoissonConverges) {
  const auto field = moving_peak(0.0);
  const auto coarse = mesh::structured_tri_mesh(16, 16, 0.0, 1);
  const auto fine = mesh::structured_tri_mesh(32, 32, 0.0, 1);
  const auto ec = solve_poisson(coarse, field, 1e-11).max_error;
  const auto ef = solve_poisson(fine, field, 1e-11).max_error;
  EXPECT_LT(ef, ec * 0.6);
}

TEST(P1, AdaptedMeshBeatsUniformAtSimilarSize) {
  // Adaptive refinement toward the corner should beat the uniform mesh of
  // comparable element count on the corner problem.
  const auto field = corner_problem_2d();
  auto adapted = mesh::structured_tri_mesh(16, 16, 0.0, 1);
  for (int round = 0; round < 4; ++round) {
    MarkOptions mark;
    mark.refine_threshold = 0.02 * std::pow(0.5, round);
    mark.max_level = round + 3;
    adapted.refine(mark_for_refinement(adapted, field, mark));
  }
  int n = 16;
  while (2 * n * n < adapted.num_leaves()) ++n;
  const auto uniform = mesh::structured_tri_mesh(n, n, 0.0, 1);
  const auto ea = solve_poisson(adapted, field, 1e-11).max_error;
  const auto eu = solve_poisson(uniform, field, 1e-11).max_error;
  EXPECT_LT(ea, eu);
}

TEST(P1, Solves3DLinearFieldExactly) {
  ScalarField3 field;
  field.value = [](double x, double y, double z) { return x - y + 2.0 * z; };
  field.neg_laplacian = [](double, double, double) { return 0.0; };
  const auto mesh = mesh::structured_tet_mesh(4, 4, 4, 0.1, 3);
  const auto r = solve_poisson(mesh, field, 1e-12);
  EXPECT_TRUE(r.cg.converged);
  EXPECT_LT(r.max_error, 1e-8);
}

TEST(Estimator, IndicatorLargestNearTheCorner) {
  const auto field = corner_problem_2d();
  const auto mesh = mesh::structured_tri_mesh(10, 10, 0.0, 1);
  double corner_eta = 0.0, far_eta = 0.0;
  for (const mesh::ElemIdx e : mesh.leaf_elements()) {
    const auto c = mesh.centroid(e);
    const double eta = element_indicator(mesh, e, field);
    if (c.x > 0.7 && c.y > 0.7) corner_eta = std::max(corner_eta, eta);
    if (c.x < -0.5 && c.y < -0.5) far_eta = std::max(far_eta, eta);
  }
  EXPECT_GT(corner_eta, 100.0 * far_eta);
}

TEST(Estimator, MarkingRespectsThresholdAndLevelCap) {
  const auto field = corner_problem_2d();
  auto mesh = mesh::structured_tri_mesh(10, 10, 0.0, 1);
  MarkOptions mark;
  mark.refine_threshold = 1e-3;
  mark.max_level = 0;  // nothing may be refined
  EXPECT_TRUE(mark_for_refinement(mesh, field, mark).empty());
  mark.max_level = 5;
  const auto marked = mark_for_refinement(mesh, field, mark);
  EXPECT_FALSE(marked.empty());
  for (const mesh::ElemIdx e : marked)
    EXPECT_GT(element_indicator(mesh, e, field), mark.refine_threshold);
}

TEST(Estimator, CoarsenMarkingBelowThresholdOnly) {
  const auto field = moving_peak(-0.5);
  auto mesh = mesh::structured_tri_mesh(10, 10, 0.0, 1);
  MarkOptions mark;
  mark.coarsen_threshold = 1e-4;
  for (const mesh::ElemIdx e : mark_for_coarsening(mesh, field, mark))
    EXPECT_LT(element_indicator(mesh, e, field), mark.coarsen_threshold);
}

}  // namespace
}  // namespace pnr::fem
