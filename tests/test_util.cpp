// Unit tests for pnr::util — RNG determinism and distribution sanity,
// streaming statistics, table formatting and CLI parsing.

#include <gtest/gtest.h>

#include <set>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/assert.hpp"
#include "util/cli.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/timer.hpp"
#include "util/table.hpp"

namespace pnr::util {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next_u64() == b.next_u64();
  EXPECT_LT(same, 2);
}

TEST(Rng, NextBelowInRange) {
  Rng rng(7);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 17ull, 1000000007ull}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.next_below(bound), bound);
  }
}

TEST(Rng, NextBelowCoversSmallRange) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 200; ++i) seen.insert(rng.next_below(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 500; ++i) {
    const int v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NormalMoments) {
  Rng rng(13);
  RunningStat stat;
  for (int i = 0; i < 20000; ++i) stat.add(rng.normal());
  EXPECT_NEAR(stat.mean(), 0.0, 0.05);
  EXPECT_NEAR(stat.stddev(), 1.0, 0.05);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(5);
  std::vector<int> v{0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, ForkIndependent) {
  Rng a(21);
  Rng b = a.fork();
  EXPECT_NE(a.next_u64(), b.next_u64());
}

TEST(RunningStat, BasicMoments) {
  RunningStat s;
  for (double x : {1.0, 2.0, 3.0, 4.0}) s.add(x);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_DOUBLE_EQ(s.sum(), 10.0);
  EXPECT_NEAR(s.variance(), 5.0 / 3.0, 1e-12);
}

TEST(RunningStat, EmptyIsZero) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(Percentile, NearestRank) {
  std::vector<double> v{5, 1, 3, 2, 4};
  EXPECT_DOUBLE_EQ(percentile(v, 50), 3.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 5.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0), 1.0);
}

TEST(Table, AlignedPrint) {
  Table t({"a", "long_header"});
  t.row().cell(1).cell("x");
  t.row().cell(22).cell(3.5, 1);
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("long_header"), std::string::npos);
  EXPECT_NE(out.find("3.5"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, CsvRoundTrip) {
  Table t({"x", "y"});
  t.row().cell(1).cell(2);
  std::ostringstream os;
  t.write_csv(os);
  EXPECT_EQ(os.str(), "x,y\n1,2\n");
}

TEST(Log, LevelThresholdRoundTrip) {
  const auto prior = log_level();
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
  // Below-threshold messages are dropped (no crash, no output assertion
  // possible on stderr here — exercised for coverage).
  PNR_LOG_DEBUG << "dropped";
  PNR_LOG_ERROR << "emitted to stderr (expected in test logs)";
  set_log_level(prior);
}

TEST(Table, SaveCsvWritesFile) {
  Table t({"a", "b"});
  t.row().cell(1).cell(2);
  const std::string path = "/tmp/pnr_table_test.csv";
  ASSERT_TRUE(t.save_csv(path));
  std::ifstream f(path);
  std::string line;
  std::getline(f, line);
  EXPECT_EQ(line, "a,b");
  std::getline(f, line);
  EXPECT_EQ(line, "1,2");
  std::remove(path.c_str());
}

TEST(Table, LongAndSizeTCells) {
  Table t({"x"});
  t.row().cell(static_cast<long>(-5));
  t.row().cell(static_cast<std::size_t>(7));
  std::ostringstream os;
  t.write_csv(os);
  EXPECT_EQ(os.str(), "x\n-5\n7\n");
}

TEST(Cli, ParsesFlagsAndPositional) {
  const char* argv[] = {"prog", "--alpha=0.5", "--procs=4,8",
                        "--verbose", "input.txt"};
  Cli cli(5, const_cast<char**>(argv));
  EXPECT_DOUBLE_EQ(cli.get_double("alpha", 0.0), 0.5);
  EXPECT_TRUE(cli.get_bool("verbose"));
  EXPECT_FALSE(cli.get_bool("quiet"));
  EXPECT_EQ(cli.get_int("missing", 7), 7);
  const auto procs = cli.get_int_list("procs", {});
  ASSERT_EQ(procs.size(), 2u);
  EXPECT_EQ(procs[0], 4);
  EXPECT_EQ(procs[1], 8);
  ASSERT_EQ(cli.positional().size(), 1u);
  EXPECT_EQ(cli.positional()[0], "input.txt");
}

TEST(Cli, BareFlagIsBooleanValueIsPositional) {
  const char* argv[] = {"prog", "--n=3", "--m", "4"};
  Cli cli(4, const_cast<char**>(argv));
  EXPECT_EQ(cli.get_int("n", 0), 3);
  EXPECT_TRUE(cli.get_bool("m"));
  EXPECT_EQ(cli.get_int("m", -1), -1);  // bare flag carries no value
  ASSERT_EQ(cli.positional().size(), 1u);
  EXPECT_EQ(cli.positional()[0], "4");
}

TEST(Timer, MonotoneAndResettable) {
  Timer t;
  volatile double x = 0.0;
  for (int i = 0; i < 100000; ++i) x = x + i * 1e-9;
  const double a = t.seconds();
  const double b = t.seconds();
  EXPECT_GE(a, 0.0);
  EXPECT_GE(b, a);
  EXPECT_GE(t.millis(), 0.0);
  t.reset();
  EXPECT_LE(t.seconds(), b);  // reset rewinds the origin
}

using ContractDeath = ::testing::Test;

TEST(ContractDeath, RequireAbortsWithMessage) {
  EXPECT_DEATH(
      { PNR_REQUIRE_MSG(false, "intentional test failure"); },
      "intentional test failure");
}

TEST(ContractDeath, TableRejectsTooManyCells) {
  EXPECT_DEATH(
      {
        Table t({"only"});
        t.row().cell(1).cell(2);
      },
      "more cells than header");
}

TEST(ContractDeath, RngRejectsZeroBound) {
  EXPECT_DEATH(
      {
        Rng rng(1);
        rng.next_below(0);
      },
      "bound > 0");
}

}  // namespace
}  // namespace pnr::util
