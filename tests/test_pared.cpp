// Tests for the PARED driver layer: workload series (corner, transient) and
// the strategy sessions that the benches are built on.

#include <gtest/gtest.h>

#include <cmath>

#include "mesh/generate.hpp"
#include "pared/driver.hpp"
#include "pared/session.hpp"
#include "pared/workloads.hpp"

namespace pnr::pared {
namespace {

TEST(CornerSeries, GrowsMonotonically) {
  CornerSeries2D series(12);
  auto prev = series.mesh().num_leaves();
  EXPECT_EQ(series.level(), 0);
  for (int level = 1; level <= 4; ++level) {
    series.advance();
    EXPECT_EQ(series.level(), level);
    EXPECT_GE(series.mesh().num_leaves(), prev);
    prev = series.mesh().num_leaves();
    EXPECT_TRUE(series.mesh().check_invariants().empty());
  }
  EXPECT_GT(prev, 2 * 12 * 12);  // real growth happened
}

TEST(CornerSeries, RefinementConcentratesAtTheCorner) {
  CornerSeries2D series(12);
  for (int level = 0; level < 4; ++level) series.advance();
  const auto& mesh = series.mesh();
  std::int64_t corner = 0, far = 0;
  for (const mesh::ElemIdx e : mesh.leaf_elements()) {
    const auto c = mesh.centroid(e);
    if (c.x > 0.5 && c.y > 0.5) ++corner;
    if (c.x < -0.5 && c.y < -0.5) ++far;
  }
  EXPECT_GT(corner, 3 * far);
}

TEST(CornerSeries3D, GrowsAndStaysValid) {
  CornerSeries3D series(4);
  const auto initial = series.mesh().num_leaves();
  for (int level = 0; level < 3; ++level) series.advance();
  EXPECT_GT(series.mesh().num_leaves(), initial);
  EXPECT_TRUE(series.mesh().check_invariants().empty());
}

TEST(Transient, TracksThePeak) {
  TransientOptions opts;
  opts.steps = 10;
  opts.grid_n = 16;
  TransientRun run(opts);
  EXPECT_FALSE(run.done());

  auto refined_near_peak = [&](double t) {
    const auto& mesh = run.mesh();
    std::int64_t near = 0, far = 0;
    for (const mesh::ElemIdx e : mesh.leaf_elements()) {
      const auto c = mesh.centroid(e);
      const double dx = c.x + t, dy = c.y + t;
      if (dx * dx + dy * dy < 0.04) ++near;
      const double fx = c.x - t, fy = c.y - t;  // mirror point
      if (fx * fx + fy * fy < 0.04 && std::abs(t) > 0.2) ++far;
    }
    return std::make_pair(near, far);
  };

  while (!run.done()) {
    const auto info = run.advance();
    EXPECT_TRUE(run.mesh().check_invariants().empty());
    EXPECT_EQ(info.step, run.step());
  }
  EXPECT_NEAR(run.time(), 0.5, 1e-12);
  const auto [near, far] = refined_near_peak(0.5);
  EXPECT_GT(near, far);  // refinement follows the disturbance
}

TEST(Transient, CoarseningKeepsSizeBounded) {
  TransientOptions opts;
  opts.steps = 12;
  opts.grid_n = 16;
  TransientRun run(opts);
  const auto initial = run.mesh().num_leaves();
  std::int64_t max_leaves = initial;
  std::int64_t merges = 0;
  while (!run.done()) {
    const auto info = run.advance();
    merges += info.merges;
    max_leaves = std::max(max_leaves, run.mesh().num_leaves());
  }
  EXPECT_GT(merges, 0);  // the wake actually coarsens
  EXPECT_LT(max_leaves, 3 * initial);  // no runaway growth
}

TEST(Strategy, ParseAndNameRoundTrip) {
  for (const char* name : {"rsb", "rsb-remap", "mlkl", "mlkl-remap", "pnr",
                           "diffusion", "ml-diffusion"}) {
    const auto s = parse_strategy(name);
    ASSERT_TRUE(s.has_value()) << name;
    EXPECT_NE(std::string(strategy_name(*s)), "?");
  }
  EXPECT_FALSE(parse_strategy("bogus").has_value());
}

class SessionStrategies : public ::testing::TestWithParam<Strategy> {};

TEST_P(SessionStrategies, StepReportsSaneNumbers) {
  TransientOptions opts;
  opts.steps = 4;
  opts.grid_n = 12;
  TransientRun run(opts);
  Session2D session(GetParam(), 4, 3);

  auto first = session.step(run.mutable_mesh());
  EXPECT_GT(first.elements, 0);
  EXPECT_GT(first.shared_vertices, 0);
  EXPECT_EQ(first.migrated, 0);  // no previous assignment

  while (!run.done()) {
    run.advance();
    const auto report = session.step(run.mutable_mesh());
    EXPECT_EQ(report.elements, run.mesh().num_leaves());
    EXPECT_GE(report.migrated, 0);
    EXPECT_LE(report.migrated, report.elements);
    EXPECT_LE(report.migrated_remapped, report.migrated);
    EXPECT_GE(report.cut_new, 0);
    EXPECT_GE(report.imbalance, 0.0);
    EXPECT_LE(report.imbalance, 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(AllStrategies, SessionStrategies,
                         ::testing::Values(Strategy::kRSB, Strategy::kRsbRemap,
                                           Strategy::kMlkl,
                                           Strategy::kMlklRemap,
                                           Strategy::kPNR,
                                           Strategy::kDiffusion,
                                           Strategy::kMlDiffusion));

TEST(Session, PnrMovesLessThanRsb) {
  TransientOptions opts;
  opts.steps = 8;
  opts.grid_n = 20;
  TransientRun run_a(opts), run_b(opts);
  Session2D rsb(Strategy::kRSB, 4, 5);
  Session2D pnr(Strategy::kPNR, 4, 5);
  rsb.step(run_a.mutable_mesh());
  pnr.step(run_b.mutable_mesh());

  std::int64_t rsb_moved = 0, pnr_moved = 0;
  while (!run_a.done()) {
    run_a.advance();
    run_b.advance();
    rsb_moved += rsb.step(run_a.mutable_mesh()).migrated;
    pnr_moved += pnr.step(run_b.mutable_mesh()).migrated;
  }
  EXPECT_LT(pnr_moved, rsb_moved / 2);  // the paper's headline result
}

TEST(Driver, RunsFullRoundsWithTimingsAndSolve) {
  DriverOptions opts;
  opts.procs = 4;
  opts.strategy = Strategy::kPNR;
  opts.solve = true;
  opts.solve_tol = 1e-8;
  AdaptiveDriver2D driver(mesh::structured_tri_mesh(12, 12, 0.2, 5), opts);

  const auto field = fem::corner_problem_2d();
  double prev_error = 1e300;
  for (int round = 0; round < 3; ++round) {
    fem::MarkOptions mark;
    mark.refine_threshold = 0.02 * std::pow(0.5, round);
    mark.max_level = round + 3;
    const auto report = driver.step(field, mark);
    EXPECT_GE(report.bisections, 0);
    EXPECT_GT(report.partition.elements, 0);
    EXPECT_GE(report.adapt_seconds, 0.0);
    EXPECT_GT(report.solve_seconds, 0.0);
    EXPECT_GT(report.cg_iterations, 0);
    EXPECT_LT(report.solve_error, prev_error * 1.5);  // roughly improving
    prev_error = report.solve_error;
  }
  EXPECT_TRUE(driver.mesh().check_invariants().empty());
}

TEST(Driver, Works3D) {
  DriverOptions opts;
  opts.procs = 4;
  opts.strategy = Strategy::kMlkl;
  AdaptiveDriver3D driver(mesh::structured_tet_mesh(3, 3, 3, 0.1, 5), opts);
  const auto field = fem::corner_problem_3d();
  fem::MarkOptions mark;
  mark.refine_threshold = 0.01;
  mark.max_level = 3;
  const auto report = driver.step(field, mark);
  EXPECT_GT(report.partition.elements, 0);
  EXPECT_GT(report.partition.shared_vertices, 0);
}

TEST(MlDiffusion, RebalancesWithBoundedMigration) {
  // Unbalanced adapted mesh: multilevel diffusion must restore balance
  // moving roughly the excess weight, not the whole mesh.
  TransientOptions opts;
  opts.steps = 4;
  opts.grid_n = 20;
  TransientRun run(opts);
  const auto dual = mesh::fine_dual_graph(run.mesh());
  util::Rng rng(3);
  auto pi = part::multilevel_kl(dual.graph, 4, rng);
  run.advance();
  run.advance();
  const auto dual2 = mesh::fine_dual_graph(run.mesh());
  // Carry by tags is the session's job; here simply re-evaluate balance on
  // a fresh graph of the same size class via a synthetic skew.
  auto skewed = part::multilevel_kl(dual2.graph, 4, rng);
  for (std::size_t v = 0; v < skewed.assign.size() / 5; ++v)
    skewed.assign[v] = 0;  // overload part 0
  const auto before = part::imbalance(dual2.graph, skewed);
  const auto result = part::multilevel_diffusion(dual2.graph, skewed, rng);
  EXPECT_LT(part::imbalance(dual2.graph, skewed), before);
  EXPECT_LE(part::imbalance(dual2.graph, skewed), 0.06);
  EXPECT_GT(result.moves, 0);
  EXPECT_LT(result.moves,
            static_cast<std::int64_t>(skewed.assign.size()) / 2);
}

TEST(Session, TagsCarryAssignmentAcrossAdaptation) {
  TransientOptions opts;
  opts.steps = 3;
  opts.grid_n = 12;
  TransientRun run(opts);
  Session2D session(Strategy::kPNR, 4, 7);
  session.step(run.mutable_mesh());
  // After adopting, every leaf must carry a valid tag; after adaptation the
  // new leaves inherit their ancestors' tags.
  run.advance();
  for (const mesh::ElemIdx e : run.mesh().leaf_elements()) {
    EXPECT_GE(run.mesh().tag(e), 0);
    EXPECT_LT(run.mesh().tag(e), 4);
  }
}

}  // namespace
}  // namespace pnr::pared
