// Tests for pnr::engine — the pluggable repartitioner backends: name/wire
// round-trips, SFC key orders and weight-balanced curve splits, parallel
// RIB, the MLKL wrapper's bit-parity with core::Pnr, the subsystem's
// thread-count determinism contract, and engine selection through
// pared::Session.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <vector>

#include "core/pnr.hpp"
#include "engine/engine.hpp"
#include "engine/rib.hpp"
#include "engine/sfc.hpp"
#include "exec/pool.hpp"
#include "graph/builder.hpp"
#include "mesh/dual.hpp"
#include "pared/session.hpp"
#include "pared/workloads.hpp"
#include "util/rng.hpp"

namespace pnr::engine {
namespace {

/// Grid graph plus matching cell-center coordinates — the shape of a coarse
/// dual graph with centroids, but fully hand-controlled.
struct Geo {
  graph::Graph g;
  std::vector<double> coords;  // n×2
};

Geo grid(int nx, int ny, graph::Weight corner_weight = 1) {
  graph::GraphBuilder b(nx * ny);
  std::vector<double> coords;
  coords.reserve(static_cast<std::size_t>(nx) * ny * 2);
  auto id = [&](int i, int j) { return static_cast<graph::VertexId>(j * nx + i); };
  for (int j = 0; j < ny; ++j)
    for (int i = 0; i < nx; ++i) {
      if (i + 1 < nx) b.add_edge(id(i, j), id(i + 1, j));
      if (j + 1 < ny) b.add_edge(id(i, j), id(i, j + 1));
      if (i >= nx - 3 && j >= ny - 3) b.set_vertex_weight(id(i, j), corner_weight);
      coords.push_back(i + 0.5);
      coords.push_back(j + 0.5);
    }
  return {b.build(), std::move(coords)};
}

Input geometric_input(const Geo& geo, part::PartId parts,
                      const part::Partition* previous = nullptr) {
  Input in;
  in.graph = &geo.g;
  in.coords = geo.coords;
  in.dim = 2;
  in.previous = previous;
  in.parts = parts;
  return in;
}

/// Curve order implied by the keys: ids sorted by (key, id) — the order
/// sfc_split consumes.
std::vector<graph::VertexId> curve_order(const std::vector<std::uint64_t>& keys) {
  std::vector<graph::VertexId> order(keys.size());
  for (std::size_t i = 0; i < order.size(); ++i)
    order[i] = static_cast<graph::VertexId>(i);
  std::sort(order.begin(), order.end(),
            [&](graph::VertexId a, graph::VertexId b) {
              const auto ka = keys[static_cast<std::size_t>(a)];
              const auto kb = keys[static_cast<std::size_t>(b)];
              return ka != kb ? ka < kb : a < b;
            });
  return order;
}

// ---- names and wire encoding ------------------------------------------------

TEST(EngineKind, NameParseRoundTripsForEveryKind) {
  for (int i = 0; i < kNumKinds; ++i) {
    const auto k = static_cast<Kind>(i);
    Kind out = Kind::kMlkl;
    ASSERT_TRUE(parse_kind(kind_name(k), out)) << kind_name(k);
    EXPECT_EQ(out, k);
    EXPECT_EQ(repartitioner(k).kind(), k);
  }
  Kind out = Kind::kRib;
  EXPECT_FALSE(parse_kind("nope", out));
  EXPECT_EQ(out, Kind::kRib);  // untouched on failure
  EXPECT_FALSE(parse_kind("", out));
  EXPECT_FALSE(parse_kind("MLKL", out));  // tokens are case-sensitive
}

TEST(EngineKind, WireValidityMatchesTheRegisteredRange) {
  for (int i = 0; i < kNumKinds; ++i)
    EXPECT_TRUE(valid_kind(static_cast<std::uint8_t>(i)));
  EXPECT_FALSE(valid_kind(kNumKinds));
  EXPECT_FALSE(valid_kind(0xff));  // the "server default" sentinel
}

TEST(EngineKind, OnlyGeometricEnginesNeedCoords) {
  EXPECT_FALSE(repartitioner(Kind::kMlkl).needs_coords());
  EXPECT_TRUE(repartitioner(Kind::kSfcMorton).needs_coords());
  EXPECT_TRUE(repartitioner(Kind::kSfcHilbert).needs_coords());
  EXPECT_TRUE(repartitioner(Kind::kRib).needs_coords());
}

// ---- SFC keys ---------------------------------------------------------------

TEST(EngineSfc, MortonKeysAreMonotoneAlongOneAxis) {
  // Points on a degenerate (constant-y) line: quantization collapses y to
  // one cell, so the Morton order must reduce to the x order.
  std::vector<double> coords;
  for (int i = 0; i < 17; ++i) {
    coords.push_back(static_cast<double>(i));
    coords.push_back(3.0);
  }
  const auto keys = sfc_keys(coords, 17, 2, /*hilbert=*/false);
  ASSERT_EQ(keys.size(), 17u);
  for (std::size_t i = 1; i < keys.size(); ++i)
    EXPECT_LT(keys[i - 1], keys[i]) << "i=" << i;
}

TEST(EngineSfc, HilbertCurveVisitsGridNeighborsConsecutively) {
  // The defining locality property on a 2^k×2^k grid: consecutive curve
  // positions are grid neighbors (Manhattan distance exactly 1). Morton
  // violates this at every quadrant seam, Hilbert never does.
  const int n = 8;
  std::vector<double> coords;
  for (int j = 0; j < n; ++j)
    for (int i = 0; i < n; ++i) {
      coords.push_back(static_cast<double>(i));
      coords.push_back(static_cast<double>(j));
    }
  const auto keys = sfc_keys(coords, static_cast<std::size_t>(n) * n, 2,
                             /*hilbert=*/true);
  const auto order = curve_order(keys);
  for (std::size_t s = 1; s < order.size(); ++s) {
    const int a = order[s - 1], b = order[s];
    const int dist = std::abs(a % n - b % n) + std::abs(a / n - b / n);
    EXPECT_EQ(dist, 1) << "jump between curve positions " << s - 1 << " and "
                       << s;
  }
}

TEST(EngineSfc, KeysAreDistinctForDistinctCellsAndEqualForCoincidentPoints) {
  for (const bool hilbert : {false, true}) {
    const Geo geo = grid(9, 7);
    auto keys = sfc_keys(geo.coords, 63, 2, hilbert);
    std::sort(keys.begin(), keys.end());
    EXPECT_EQ(std::adjacent_find(keys.begin(), keys.end()), keys.end())
        << (hilbert ? "hilbert" : "morton");

    const std::vector<double> twice = {1.5, 2.5, 1.5, 2.5};
    const auto dup = sfc_keys(twice, 2, 2, hilbert);
    EXPECT_EQ(dup[0], dup[1]);
  }
}

TEST(EngineSfc, DegenerateBoxesAndThreeDimensionsAreHandled) {
  // All points coincident: every key identical, no division blowups.
  const std::vector<double> same = {2.0, 2.0, 2.0, 2.0, 2.0, 2.0};
  const auto k2 = sfc_keys(same, 3, 2, /*hilbert=*/true);
  EXPECT_EQ(k2[0], k2[1]);
  EXPECT_EQ(k2[1], k2[2]);

  // 3D line with two degenerate axes: Morton reduces to the 1D order;
  // Hilbert wanders (the curve has no monotone axis) but must still give
  // distinct cells distinct keys.
  std::vector<double> line;
  for (int i = 0; i < 9; ++i) {
    line.push_back(0.0);
    line.push_back(static_cast<double>(i));
    line.push_back(1.0);
  }
  const auto morton = sfc_keys(line, 9, 3, /*hilbert=*/false);
  for (std::size_t i = 1; i < morton.size(); ++i)
    EXPECT_LT(morton[i - 1], morton[i]);
  auto hilbert3 = sfc_keys(line, 9, 3, /*hilbert=*/true);
  std::sort(hilbert3.begin(), hilbert3.end());
  EXPECT_EQ(std::adjacent_find(hilbert3.begin(), hilbert3.end()),
            hilbert3.end());
}

// ---- SFC splits -------------------------------------------------------------

TEST(EngineSfc, SplitIsContiguousBalancedAndUsesAllParts) {
  const Geo geo = grid(12, 12);
  const auto keys = sfc_keys(geo.coords, 144, 2, /*hilbert=*/true);
  const auto pi = sfc_split(geo.g, keys, 8);
  ASSERT_TRUE(pi.valid_for(geo.g));
  EXPECT_TRUE(part::all_parts_used(geo.g, pi));
  EXPECT_LE(part::imbalance(geo.g, pi), 0.06);
  // Contiguity in curve order: parts appear as one run each.
  const auto order = curve_order(keys);
  for (std::size_t s = 1; s < order.size(); ++s) {
    const auto prev = pi.assign[static_cast<std::size_t>(order[s - 1])];
    const auto cur = pi.assign[static_cast<std::size_t>(order[s])];
    EXPECT_TRUE(cur == prev || cur == prev + 1)
        << "part sequence not contiguous at curve position " << s;
  }
}

TEST(EngineSfc, SplitLeavesOneVertexPerPartUnderHeavySkew) {
  // One huge vertex up front would swallow every quota; the split must
  // still hand one vertex to each remaining part.
  graph::GraphBuilder b(5);
  for (graph::VertexId v = 0; v + 1 < 5; ++v) b.add_edge(v, v + 1);
  b.set_vertex_weight(0, 1000);
  const graph::Graph g = b.build();
  const std::vector<std::uint64_t> keys = {0, 1, 2, 3, 4};
  const auto pi = sfc_split(g, keys, 5);
  ASSERT_TRUE(pi.valid_for(g));
  for (std::size_t v = 0; v < 5; ++v)
    EXPECT_EQ(pi.assign[v], static_cast<part::PartId>(v));
}

TEST(EngineSfc, BoundaryHysteresisAbsorbsSubToleranceWeightJitter) {
  // Uniform weight 10, then +40 on the curve's first vertex: the greedy
  // quota boundaries shift (migrating vertices), but with hysteresis the
  // previous boundaries are within slack and stay put.
  auto build = [](graph::Weight head_extra) {
    graph::GraphBuilder b(144);
    auto id = [](int i, int j) { return static_cast<graph::VertexId>(j * 12 + i); };
    for (int j = 0; j < 12; ++j)
      for (int i = 0; i < 12; ++i) {
        if (i + 1 < 12) b.add_edge(id(i, j), id(i + 1, j));
        if (j + 1 < 12) b.add_edge(id(i, j), id(i, j + 1));
        b.set_vertex_weight(id(i, j), 10);
      }
    b.set_vertex_weight(0, 10 + head_extra);
    return b.build();
  };
  const Geo geo = grid(12, 12);
  const auto keys = sfc_keys(geo.coords, 144, 2, /*hilbert=*/true);
  // Vertex 0 is a bbox corner, so it sits at one end of the Hilbert curve;
  // its extra weight shifts every downstream quota.
  const graph::Graph before = build(0);
  const graph::Graph after = build(40);
  const auto pi1 = sfc_split(before, keys, 4);

  const auto greedy = sfc_split(after, keys, 4, &pi1, /*tol=*/0.0);
  EXPECT_NE(greedy.assign, pi1.assign);  // quota boundaries moved

  const auto hyst = sfc_split(after, keys, 4, &pi1, /*tol=*/0.1);
  EXPECT_EQ(hyst.assign, pi1.assign);  // jitter absorbed: zero migration
  EXPECT_LE(part::imbalance(after, hyst), 0.2);
}

TEST(EngineSfc, RepeatedRunsOnAStableCurveMigrateNothing) {
  const Geo geo = grid(12, 12, 6);
  const auto& sfc = repartitioner(Kind::kSfcHilbert);
  core::RepartitionStats stats;
  const auto first = sfc.run(geometric_input(geo, 6), &stats);
  ASSERT_TRUE(first.valid_for(geo.g));
  EXPECT_TRUE(part::all_parts_used(geo.g, first));
  EXPECT_GT(stats.cut_after, 0);

  // Same weights, same curve, previous = the first answer: the remap must
  // relabel the fresh segments straight back onto Π^{t-1}.
  const auto second = sfc.run(geometric_input(geo, 6, &first), &stats);
  EXPECT_EQ(second.assign, first.assign);
  EXPECT_EQ(stats.migrate, 0);
  EXPECT_EQ(stats.cut_before, stats.cut_after);
}

// ---- RIB --------------------------------------------------------------------

TEST(EngineRib, BisectsIntoBalancedPartsIncludingNonPowersOfTwo) {
  const Geo geo = grid(12, 12);
  const auto& rib = repartitioner(Kind::kRib);
  for (const part::PartId parts : {2, 3, 4, 5, 8}) {
    core::RepartitionStats stats;
    const auto pi = rib.run(geometric_input(geo, parts), &stats);
    ASSERT_TRUE(pi.valid_for(geo.g));
    EXPECT_TRUE(part::all_parts_used(geo.g, pi)) << "parts=" << parts;
    EXPECT_LE(part::imbalance(geo.g, pi), 0.07) << "parts=" << parts;
    EXPECT_GT(stats.levels, 0);
  }
}

TEST(EngineRib, RemapsAgainstThePreviousPartition) {
  const Geo geo = grid(10, 10, 4);
  const auto& rib = repartitioner(Kind::kRib);
  core::RepartitionStats stats;
  const auto first = rib.run(geometric_input(geo, 4), &stats);
  const auto second = rib.run(geometric_input(geo, 4, &first), &stats);
  // Identical geometry and weights: the bisection tree is identical, so
  // after the remap nothing moves.
  EXPECT_EQ(second.assign, first.assign);
  EXPECT_EQ(stats.migrate, 0);
}

// ---- MLKL wrapper -----------------------------------------------------------

TEST(EngineMlkl, WrapperIsBitIdenticalToDrivingCorePnr) {
  const Geo geo = grid(12, 12, 12);
  const part::PartId parts = 4;

  util::Rng rng_direct(17);
  const core::Pnr pnr(parts);
  const auto direct0 = pnr.initial_partition(geo.g, rng_direct);
  core::RepartitionStats direct_stats;
  const auto direct1 =
      pnr.repartition(geo.g, direct0, rng_direct, &direct_stats);

  util::Rng rng_engine(17);
  Input in;
  in.graph = &geo.g;
  in.parts = parts;
  in.rng = &rng_engine;
  const auto& mlkl = repartitioner(Kind::kMlkl);
  core::RepartitionStats stats;
  const auto wrapped0 = mlkl.run(in, &stats);
  EXPECT_EQ(wrapped0.assign, direct0.assign);
  EXPECT_EQ(stats.cut_after, part::cut_size(geo.g, direct0));

  in.previous = &wrapped0;
  const auto wrapped1 = mlkl.run(in, &stats);
  EXPECT_EQ(wrapped1.assign, direct1.assign);
  EXPECT_EQ(stats.cut_after, direct_stats.cut_after);
  EXPECT_EQ(stats.migrate, direct_stats.migrate);
}

// ---- determinism contract ---------------------------------------------------

/// Restores the default pool width on scope exit (mirrors test_exec.cpp).
class DefaultThreadsGuard {
 public:
  DefaultThreadsGuard() : saved_(exec::default_pool().num_threads()) {}
  ~DefaultThreadsGuard() { exec::set_default_threads(saved_); }

 private:
  int saved_;
};

TEST(EngineDeterminism, EveryEngineIsByteIdenticalAcrossThreadCounts) {
  // A real coarse dual graph + centroids from an adapted transient mesh —
  // skewed leaf weights, not a synthetic grid.
  pared::TransientOptions opts;
  opts.steps = 8;
  opts.grid_n = 14;
  pared::TransientRun run(opts);
  for (int i = 0; i < 3; ++i) run.advance();
  const graph::Graph g = mesh::nested_dual_graph(run.mesh());
  const std::vector<double> coords = mesh::coarse_centroids(run.mesh());
  ASSERT_EQ(coords.size(), static_cast<std::size_t>(g.num_vertices()) * 2);

  DefaultThreadsGuard guard;
  for (int kind = 0; kind < kNumKinds; ++kind) {
    const auto& eng = repartitioner(static_cast<Kind>(kind));
    std::vector<part::Partition> first_pass, second_pass;
    for (const int threads : {1, 2, 4, 8}) {
      exec::set_default_threads(threads);
      util::Rng rng(23);
      Input in;
      in.graph = &g;
      in.coords = coords;
      in.dim = 2;
      in.parts = 6;
      in.rng = &rng;
      first_pass.push_back(eng.run(in, nullptr));
      in.previous = &first_pass.back();
      second_pass.push_back(eng.run(in, nullptr));
    }
    for (std::size_t i = 1; i < first_pass.size(); ++i) {
      EXPECT_EQ(first_pass[i].assign, first_pass[0].assign)
          << kind_name(static_cast<Kind>(kind)) << " initial, sweep " << i;
      EXPECT_EQ(second_pass[i].assign, second_pass[0].assign)
          << kind_name(static_cast<Kind>(kind)) << " repartition, sweep " << i;
    }
  }
}

// ---- Session integration ----------------------------------------------------

TEST(EngineSession, GeometricEnginesDriveAPnrSessionEndToEnd) {
  for (const Kind kind : {Kind::kSfcMorton, Kind::kSfcHilbert, Kind::kRib}) {
    pared::TransientOptions opts;
    opts.steps = 6;
    opts.grid_n = 12;
    pared::TransientRun run(opts);
    pared::Session2D session(pared::Strategy::kPNR, 4, 3, {}, kind);
    EXPECT_EQ(session.engine(), kind);

    pared::StepReport report = session.step(run.mutable_mesh());
    while (!run.done()) {
      run.advance();
      report = session.step(run.mutable_mesh());
    }
    EXPECT_GT(report.elements, 0);
    EXPECT_LE(report.imbalance, 0.35) << kind_name(kind);
    for (const mesh::ElemIdx e : run.mesh().leaf_elements()) {
      ASSERT_GE(run.mesh().tag(e), 0);
      ASSERT_LT(run.mesh().tag(e), 4);
    }
  }
}

TEST(EngineSession, SameEngineSessionsAreDeterministic) {
  pared::TransientOptions opts;
  opts.steps = 5;
  opts.grid_n = 12;
  pared::TransientRun run_a(opts), run_b(opts);
  pared::Session2D a(pared::Strategy::kPNR, 4, 11, {}, Kind::kSfcHilbert);
  pared::Session2D b(pared::Strategy::kPNR, 4, 11, {}, Kind::kSfcHilbert);
  while (!run_a.done()) {
    run_a.advance();
    run_b.advance();
    a.step(run_a.mutable_mesh());
    b.step(run_b.mutable_mesh());
    const auto leaves = run_a.mesh().leaf_elements();
    const auto leaves_b = run_b.mesh().leaf_elements();
    ASSERT_EQ(leaves.size(), leaves_b.size());
    for (std::size_t i = 0; i < leaves.size(); ++i)
      ASSERT_EQ(run_a.mesh().tag(leaves[i]), run_b.mesh().tag(leaves_b[i]));
  }
}

}  // namespace
}  // namespace pnr::engine
