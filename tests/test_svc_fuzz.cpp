// Robustness gate for pnr::svc (ISSUE acceptance): tens of thousands of
// random, truncated and bit-flipped frames — at the codec, registry and
// socket levels — must produce zero crashes and zero leaks (ASan/UBSan CI
// leg), with every input answered by a typed error frame, a valid reply, or
// a clean connection close.

#include <gtest/gtest.h>

#include "svc/codec.hpp"
#include "svc/loopback.hpp"
#include "svc/registry.hpp"
#include "svc/server.hpp"
#include "svc/wire.hpp"
#include "util/rng.hpp"

namespace pnr::svc {
namespace {

Bytes random_bytes(util::Rng& rng, std::size_t size) {
  Bytes b(size);
  for (auto& x : b) x = static_cast<std::uint8_t>(rng.next_u64());
  return b;
}

/// Small limits so the rare random payload that decodes cleanly cannot make
/// the fuzzer spend minutes building sessions.
Limits fuzz_limits() {
  Limits limits;
  limits.max_sessions = 4;
  limits.max_elements = 50'000;
  limits.max_frame_bytes = 1u << 20;
  limits.max_oplog_entries = 64;
  limits.max_workload_steps = 16;
  return limits;
}

TEST(SvcFuzz, CodecDecodersNeverAbortOnRandomBytes) {
  util::Rng rng(2026);
  const Limits limits = fuzz_limits();
  for (int i = 0; i < 4000; ++i) {
    const Bytes b = random_bytes(rng, rng.next_u64() % 256);
    {
      par::TryReader r(b);
      decode_mesh(r, limits);
    }
    {
      par::TryReader r(b);
      std::string why;
      decode_graph(r, limits, &why);
    }
    {
      par::TryReader r(b);
      decode_workload_spec(r, limits);
    }
    {
      par::TryReader r(b);
      decode_create_head(r, limits);
    }
    {
      par::TryReader r(b);
      decode_step_report(r);
    }
    {
      par::TryReader r(b);
      decode_assignment(r, 1024);
    }
    decode_error(b);
    if (b.size() >= kHeaderBytes) decode_header(b.data());
  }
}

TEST(SvcFuzz, RegistryHandlesRandomPayloadsForEveryOp) {
  Registry registry(fuzz_limits());
  util::Rng rng(777);
  int errors = 0, oks = 0;
  for (int i = 0; i < 4000; ++i) {
    // Bias toward real op codes so the per-op decoders get deep coverage,
    // but include arbitrary types too.
    const std::uint16_t op =
        (i % 4 == 0) ? static_cast<std::uint16_t>(rng.next_u64() % 0x10000)
                     : static_cast<std::uint16_t>(1 + rng.next_u64() % kOpMax);
    const Bytes payload = random_bytes(rng, rng.next_u64() % 128);
    const Reply reply = registry.handle(op, payload);
    if (reply.type == kTypeError) {
      // Every error frame must itself decode.
      ASSERT_TRUE(decode_error(reply.payload));
      ++errors;
    } else {
      ASSERT_EQ(reply.type, op | kReplyBit);
      ++oks;
    }
  }
  EXPECT_GT(errors, 0);
  EXPECT_GT(oks, 0);  // pings echo
}

TEST(SvcFuzz, BitFlippedCreateFramesNeverCrashTheRegistry) {
  Registry registry(fuzz_limits());
  util::Rng rng(31337);

  WorkloadSpec spec;
  spec.kind = WorkloadKind::kTransient2D;
  spec.parts = 2;
  spec.transient.steps = 4;
  spec.transient.grid_n = 6;
  spec.transient.max_level = 3;
  par::Writer w;
  encode_workload_spec(w, spec);
  const Bytes good = w.take();

  for (int i = 0; i < 1500; ++i) {
    Bytes mutated = good;
    const int flips = 1 + static_cast<int>(rng.next_u64() % 4);
    for (int f = 0; f < flips; ++f)
      mutated[rng.next_u64() % mutated.size()] ^=
          static_cast<std::uint8_t>(1u << (rng.next_u64() % 8));
    const Reply reply = registry.handle(kOpCreateWorkload, mutated);
    if (reply.type != kTypeError) {
      // The flip happened to stay within validated ranges — close the
      // session so the tiny max_sessions limit doesn't dominate outcomes.
      par::TryReader r(reply.payload);
      const auto id = r.get<std::uint32_t>();
      ASSERT_TRUE(id);
      par::Writer cw;
      cw.put(*id);
      registry.handle(kOpCloseSession, cw.take());
    }
  }

  // Truncations at every byte boundary.
  for (std::size_t cut = 0; cut < good.size(); ++cut) {
    const Bytes prefix(good.begin(),
                       good.begin() + static_cast<std::ptrdiff_t>(cut));
    const Reply reply = registry.handle(kOpCreateWorkload, prefix);
    EXPECT_EQ(reply.type, kTypeError);
  }
}

TEST(SvcFuzz, SocketLevelGarbageNeverKillsTheServer) {
  ServerOptions options;
  options.limits = fuzz_limits();
  Server server(options);
  util::Rng rng(424242);

  int fd = adopt_loopback_raw(server);
  ASSERT_GE(fd, 0);
  int reconnects = 0;
  Bytes drain;

  const auto reconnect = [&] {
    raw_close(fd);
    fd = adopt_loopback_raw(server);
    ASSERT_GE(fd, 0);
    ++reconnects;
    drain.clear();
  };

  for (int i = 0; i < 3000; ++i) {
    Bytes blob;
    switch (rng.next_u64() % 4) {
      case 0:  // pure garbage
        blob = random_bytes(rng, 1 + rng.next_u64() % 96);
        break;
      case 1: {  // valid header, random payload
        const Bytes payload = random_bytes(rng, rng.next_u64() % 64);
        blob = encode_frame(
            static_cast<std::uint16_t>(rng.next_u64() % 0x10000), payload);
        break;
      }
      case 2: {  // truncated valid frame
        const Bytes frame = encode_frame(kOpListSessions, Bytes{});
        const std::size_t cut = rng.next_u64() % frame.size();
        blob.assign(frame.begin(),
                    frame.begin() + static_cast<std::ptrdiff_t>(cut));
        break;
      }
      default: {  // bit-flipped valid frame
        blob = encode_frame(kOpPing, random_bytes(rng, 8));
        blob[rng.next_u64() % blob.size()] ^=
            static_cast<std::uint8_t>(1u << (rng.next_u64() % 8));
        break;
      }
    }
    if (!raw_send(fd, blob, server)) {
      reconnect();
      continue;
    }
    if (!raw_recv(fd, drain, server)) reconnect();
    if (drain.size() > (1u << 20)) drain.clear();
  }
  EXPECT_GT(reconnects, 0);  // garbage did close connections...

  // ...but the server survived it all: a fresh well-formed session works.
  raw_close(fd);
  Client client;
  ASSERT_TRUE(connect_loopback(server, client));
  EXPECT_TRUE(client.ping());
  WorkloadSpec spec;
  spec.kind = WorkloadKind::kTransient2D;
  spec.parts = 2;
  spec.transient.steps = 4;
  spec.transient.grid_n = 6;
  spec.transient.max_level = 3;
  const auto created = client.create_workload(spec);
  ASSERT_TRUE(created);
  ASSERT_TRUE(client.advance(created->session));
  EXPECT_TRUE(client.step(created->session));
}

// ---- federation ops (docs/FEDERATION.md) ------------------------------------

TEST(SvcFuzz, FedDecodersNeverAbortOnRandomBytes) {
  util::Rng rng(90210);
  const Limits limits = fuzz_limits();
  for (int i = 0; i < 4000; ++i) {
    const Bytes b = random_bytes(rng, rng.next_u64() % 256);
    {
      par::TryReader r(b);
      std::string why;
      decode_fed_attach(r, limits, &why);
    }
    {
      par::TryReader r(b);
      decode_fed_report(r, limits);
    }
    {
      par::TryReader r(b);
      decode_fed_plan_reply(r, limits);
    }
    {
      par::TryReader r(b);
      decode_fed_exchange(r, limits);
    }
  }
}

TEST(SvcFuzz, BitFlippedFedAttachFramesNeverCrashTheRegistry) {
  Registry registry(fuzz_limits());
  util::Rng rng(161616);

  FedAttach att;
  att.spec.kind = WorkloadKind::kTransient2D;
  att.spec.parts = 2;
  att.spec.transient.steps = 4;
  att.spec.transient.grid_n = 6;
  att.spec.transient.max_level = 3;
  att.rank = 0;
  att.count = 2;
  par::Writer w;
  encode_fed_attach(w, att);
  const Bytes good = w.take();

  for (int i = 0; i < 1200; ++i) {
    Bytes mutated = good;
    const int flips = 1 + static_cast<int>(rng.next_u64() % 4);
    for (int f = 0; f < flips; ++f)
      mutated[rng.next_u64() % mutated.size()] ^=
          static_cast<std::uint8_t>(1u << (rng.next_u64() % 8));
    const Reply reply = registry.handle(kOpFedAttach, mutated);
    if (reply.type != kTypeError) {
      par::TryReader r(reply.payload);
      const auto id = r.get<std::uint32_t>();
      ASSERT_TRUE(id);
      par::Writer cw;
      cw.put(*id);
      registry.handle(kOpCloseSession, cw.take());
    } else {
      ASSERT_TRUE(decode_error(reply.payload));
    }
  }

  // Truncations at every byte boundary.
  for (std::size_t cut = 0; cut < good.size(); ++cut) {
    const Bytes prefix(good.begin(),
                       good.begin() + static_cast<std::ptrdiff_t>(cut));
    EXPECT_EQ(registry.handle(kOpFedAttach, prefix).type, kTypeError);
  }
}

TEST(SvcFuzz, HostileFedExchangeTreeCountsAreRejectedBeforeAllocation) {
  Registry registry(fuzz_limits());
  const Limits limits = fuzz_limits();

  // A count far past max_graph_vertices.
  par::Writer w1;
  w1.put(std::uint32_t{1});             // session (never reached)
  w1.put(std::int32_t{0});              // src
  w1.put(std::uint64_t{1} << 40);       // hostile tree count
  const Reply r1 = registry.handle(kOpFedExchange, w1.take());
  ASSERT_EQ(r1.type, kTypeError);
  const auto e1 = decode_error(r1.payload);
  ASSERT_TRUE(e1);
  EXPECT_EQ(e1->code, Err::kBadPayload);

  // A count within the structural ceiling but impossible for the frame's
  // remaining bytes: must be rejected before any proportional allocation.
  par::Writer w2;
  w2.put(std::uint32_t{1});
  w2.put(std::int32_t{0});
  w2.put(static_cast<std::uint64_t>(limits.max_graph_vertices));
  const Reply r2 = registry.handle(kOpFedExchange, w2.take());
  ASSERT_EQ(r2.type, kTypeError);
  const auto e2 = decode_error(r2.payload);
  ASSERT_TRUE(e2);
  EXPECT_EQ(e2->code, Err::kBadPayload);
  EXPECT_EQ(registry.num_sessions(), 0u);
}

TEST(SvcFuzz, ExplosiveFedAttachSpecsAreRejectedBeforeConstruction) {
  // Same pre-construction growth bound as kOpCreateWorkload: a spec whose
  // full refinement would blow past max_elements must die on the spec
  // alone, since a TransientRun refines inside its constructor.
  Registry registry(fuzz_limits());
  FedAttach att;
  att.spec.kind = WorkloadKind::kTransient2D;
  att.spec.parts = 2;
  att.spec.transient.steps = 4;
  att.spec.transient.grid_n = 128;
  att.spec.transient.max_level = 16;
  att.spec.transient.refine_threshold = 1e-9;
  att.rank = 1;
  att.count = 2;
  par::Writer w;
  encode_fed_attach(w, att);
  const Reply reply = registry.handle(kOpFedAttach, w.take());
  ASSERT_EQ(reply.type, kTypeError);
  const auto e = decode_error(reply.payload);
  ASSERT_TRUE(e);
  EXPECT_EQ(e->code, Err::kLimitExceeded);
  EXPECT_EQ(registry.num_sessions(), 0u);
}

TEST(SvcFuzz, RandomCheckpointsAreRejectedCleanly) {
  Registry registry(fuzz_limits());
  util::Rng rng(55);
  for (int i = 0; i < 1500; ++i) {
    const Reply reply =
        registry.handle(kOpRestore, random_bytes(rng, rng.next_u64() % 200));
    EXPECT_EQ(reply.type, kTypeError);
  }
  EXPECT_EQ(registry.num_sessions(), 0u);
}

}  // namespace
}  // namespace pnr::svc
