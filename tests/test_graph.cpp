// Unit tests for the CSR graph, builder, traversals, Laplacian operations
// and induced subgraphs.

#include <gtest/gtest.h>

#include "graph/algorithms.hpp"
#include "graph/builder.hpp"
#include "graph/csr.hpp"
#include "graph/laplacian.hpp"
#include "graph/subgraph.hpp"

namespace pnr::graph {
namespace {

Graph path_graph(VertexId n) {
  GraphBuilder b(n);
  for (VertexId v = 0; v + 1 < n; ++v) b.add_edge(v, v + 1);
  return b.build();
}

Graph grid_graph(int nx, int ny) {
  GraphBuilder b(nx * ny);
  auto id = [&](int i, int j) { return static_cast<VertexId>(j * nx + i); };
  for (int j = 0; j < ny; ++j)
    for (int i = 0; i < nx; ++i) {
      if (i + 1 < nx) b.add_edge(id(i, j), id(i + 1, j));
      if (j + 1 < ny) b.add_edge(id(i, j), id(i, j + 1));
    }
  return b.build();
}

TEST(Builder, AccumulatesDuplicateEdges) {
  GraphBuilder b(3);
  b.add_edge(0, 1, 2);
  b.add_edge(1, 0, 3);  // same undirected edge
  const Graph g = b.build();
  EXPECT_EQ(g.num_edges(), 1);
  EXPECT_EQ(g.edge_weight(0, 1), 5);
  EXPECT_EQ(g.edge_weight(1, 0), 5);
  EXPECT_TRUE(g.validate().empty()) << g.validate();
}

TEST(Builder, VertexWeightsDefaultToOne) {
  GraphBuilder b(2);
  b.add_edge(0, 1);
  const Graph g = b.build();
  EXPECT_EQ(g.vertex_weight(0), 1);
  EXPECT_EQ(g.total_vertex_weight(), 2);
}

TEST(Builder, SortedNeighborLists) {
  GraphBuilder b(4);
  b.add_edge(3, 0);
  b.add_edge(1, 0);
  b.add_edge(0, 2);
  const Graph g = b.build();
  const auto nbrs = g.neighbors(0);
  ASSERT_EQ(nbrs.size(), 3u);
  EXPECT_TRUE(nbrs[0] < nbrs[1] && nbrs[1] < nbrs[2]);
}

TEST(Graph, ValidateCatchesNothingOnGoodGraph) {
  EXPECT_TRUE(grid_graph(5, 4).validate().empty());
}

TEST(Graph, WeightedDegree) {
  GraphBuilder b(3);
  b.add_edge(0, 1, 2);
  b.add_edge(0, 2, 5);
  const Graph g = b.build();
  EXPECT_EQ(g.weighted_degree(0), 7);
  EXPECT_EQ(g.weighted_degree(1), 2);
}

TEST(Graph, SetEdgeWeightBothDirections) {
  GraphBuilder b(2);
  b.add_edge(0, 1, 1);
  Graph g = b.build();
  EXPECT_TRUE(g.set_edge_weight(0, 1, 9));
  EXPECT_EQ(g.edge_weight(1, 0), 9);
  EXPECT_FALSE(g.set_edge_weight(0, 0 + 1 - 1, 3));  // self edge absent
}

TEST(Bfs, DistancesOnPath) {
  const Graph g = path_graph(5);
  const auto d = bfs_distances(g, 0);
  for (int v = 0; v < 5; ++v) EXPECT_EQ(d[static_cast<std::size_t>(v)], v);
}

TEST(Bfs, UnreachableIsMinusOne) {
  GraphBuilder b(3);
  b.add_edge(0, 1);
  const Graph g = b.build();
  const auto d = bfs_distances(g, 0);
  EXPECT_EQ(d[2], -1);
}

TEST(Components, CountsAndLabels) {
  GraphBuilder b(5);
  b.add_edge(0, 1);
  b.add_edge(2, 3);
  const Graph g = b.build();
  const auto c = connected_components(g);
  EXPECT_EQ(c.count, 3);
  EXPECT_EQ(c.label[0], c.label[1]);
  EXPECT_EQ(c.label[2], c.label[3]);
  EXPECT_NE(c.label[0], c.label[2]);
  EXPECT_NE(c.label[4], c.label[0]);
  EXPECT_FALSE(is_connected(g));
  EXPECT_TRUE(is_connected(path_graph(4)));
}

TEST(AllPairs, HopsOnPath) {
  const Graph g = path_graph(4);
  const auto d = all_pairs_hops(g);
  EXPECT_EQ(d[0 * 4 + 3], 3);
  EXPECT_EQ(d[3 * 4 + 0], 3);
  EXPECT_EQ(d[1 * 4 + 1], 0);
}

TEST(PartComponents, RestrictedToOnePart) {
  const Graph g = path_graph(6);
  // Parts: 0 0 1 0 0 1 — part 0 splits into {0,1} and {3,4}.
  std::vector<std::int32_t> part{0, 0, 1, 0, 0, 1};
  std::vector<std::int32_t> label;
  EXPECT_EQ(part_components(g, part, 0, label), 2);
  EXPECT_EQ(label[0], label[1]);
  EXPECT_NE(label[0], label[3]);
  EXPECT_EQ(label[2], -1);
}

TEST(Laplacian, ApplyOnConstantIsZero) {
  const Graph g = grid_graph(4, 4);
  std::vector<double> x(16, 3.0), y(16, -1.0);
  laplacian_apply(g, x, y);
  for (double v : y) EXPECT_NEAR(v, 0.0, 1e-12);
}

TEST(Laplacian, QuadraticFormEqualsCutForIndicator) {
  // xᵀLx = Σ_{(u,v)∈E} w(u,v)(x_u − x_v)² — for a ±1 indicator that is 4·cut.
  GraphBuilder b(4);
  b.add_edge(0, 1, 2);
  b.add_edge(1, 2, 3);
  b.add_edge(2, 3, 4);
  const Graph g = b.build();
  std::vector<double> x{1, 1, -1, -1}, y(4);
  laplacian_apply(g, x, y);
  EXPECT_NEAR(dot(x, y), 4.0 * 3.0, 1e-12);
}

TEST(Laplacian, CgSolvesBalancedSystem) {
  const Graph g = grid_graph(5, 5);
  std::vector<double> b(25, -1.0);
  b[0] = 24.0;  // net zero
  std::vector<double> x(25, 0.0);
  const int iters = laplacian_solve_cg(g, b, x);
  ASSERT_GT(iters, 0);
  std::vector<double> lx(25);
  laplacian_apply(g, x, lx);
  for (std::size_t i = 0; i < 25; ++i) EXPECT_NEAR(lx[i], b[i], 1e-6);
}

TEST(Subgraph, PreservesWeightsAndDropsOutside) {
  GraphBuilder b(5);
  b.add_edge(0, 1, 7);
  b.add_edge(1, 2, 3);
  b.add_edge(2, 3, 1);
  b.set_vertex_weight(1, 10);
  const Graph g = b.build();
  const auto sub = induced_subgraph(g, {0, 1, 2});
  EXPECT_EQ(sub.graph.num_vertices(), 3);
  EXPECT_EQ(sub.graph.num_edges(), 2);
  EXPECT_EQ(sub.graph.vertex_weight(1), 10);
  EXPECT_EQ(sub.graph.edge_weight(0, 1), 7);
  EXPECT_TRUE(sub.graph.validate().empty());
  EXPECT_EQ(sub.to_parent[2], 2);
}

TEST(Deflate, RemovesMean) {
  std::vector<double> x{1, 2, 3, 6};
  deflate_constant(x);
  double sum = 0;
  for (double v : x) sum += v;
  EXPECT_NEAR(sum, 0.0, 1e-12);
}

TEST(Normalize, UnitNorm) {
  std::vector<double> x{3, 4};
  EXPECT_NEAR(normalize(x), 5.0, 1e-12);
  EXPECT_NEAR(x[0] * x[0] + x[1] * x[1], 1.0, 1e-12);
}

}  // namespace
}  // namespace pnr::graph
