// Tests for graph contraction (heavy-edge matching) — the engine under both
// multilevel partitioners and PNR's partition-respecting coarsening.

#include <gtest/gtest.h>

#include "graph/builder.hpp"
#include "graph/coarsen.hpp"

namespace pnr::graph {
namespace {

Graph grid_graph(int nx, int ny) {
  GraphBuilder b(nx * ny);
  auto id = [&](int i, int j) { return static_cast<VertexId>(j * nx + i); };
  for (int j = 0; j < ny; ++j)
    for (int i = 0; i < nx; ++i) {
      if (i + 1 < nx) b.add_edge(id(i, j), id(i + 1, j));
      if (j + 1 < ny) b.add_edge(id(i, j), id(i, j + 1));
    }
  return b.build();
}

TEST(Coarsen, PreservesTotalVertexWeight) {
  const Graph g = grid_graph(8, 8);
  util::Rng rng(1);
  const auto level = coarsen_once(g, rng, {});
  EXPECT_EQ(level.graph.total_vertex_weight(), g.total_vertex_weight());
}

TEST(Coarsen, ShrinksAndStaysValid) {
  const Graph g = grid_graph(10, 10);
  util::Rng rng(2);
  const auto level = coarsen_once(g, rng, {});
  EXPECT_LT(level.graph.num_vertices(), g.num_vertices());
  EXPECT_GE(level.graph.num_vertices(), g.num_vertices() / 2);
  EXPECT_TRUE(level.graph.validate().empty()) << level.graph.validate();
}

TEST(Coarsen, MapCoversEveryFineVertex) {
  const Graph g = grid_graph(7, 5);
  util::Rng rng(3);
  const auto level = coarsen_once(g, rng, {});
  ASSERT_EQ(level.fine_to_coarse.size(),
            static_cast<std::size_t>(g.num_vertices()));
  for (const VertexId c : level.fine_to_coarse) {
    EXPECT_GE(c, 0);
    EXPECT_LT(c, level.graph.num_vertices());
  }
}

TEST(Coarsen, EdgeWeightConservation) {
  // Total edge weight minus intra-pair edge weight must equal coarse total.
  const Graph g = grid_graph(6, 6);
  util::Rng rng(4);
  const auto level = coarsen_once(g, rng, {});
  Weight fine_total = 0, intra = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const auto nbrs = g.neighbors(v);
    const auto wgts = g.edge_weights(v);
    for (std::size_t k = 0; k < nbrs.size(); ++k)
      if (nbrs[k] > v) {
        fine_total += wgts[k];
        if (level.fine_to_coarse[static_cast<std::size_t>(v)] ==
            level.fine_to_coarse[static_cast<std::size_t>(nbrs[k])])
          intra += wgts[k];
      }
  }
  Weight coarse_total = 0;
  for (VertexId v = 0; v < level.graph.num_vertices(); ++v) {
    const auto wgts = level.graph.edge_weights(v);
    const auto nbrs = level.graph.neighbors(v);
    for (std::size_t k = 0; k < nbrs.size(); ++k)
      if (nbrs[k] > v) coarse_total += wgts[k];
  }
  EXPECT_EQ(coarse_total, fine_total - intra);
}

TEST(Coarsen, RespectsPartitionConstraint) {
  const Graph g = grid_graph(8, 8);
  std::vector<std::int32_t> part(64);
  for (int v = 0; v < 64; ++v) part[static_cast<std::size_t>(v)] = v % 2;
  CoarsenOptions opt;
  opt.partition = &part;
  util::Rng rng(5);
  const auto level = coarsen_once(g, rng, opt);
  // No coarse vertex may mix the two parts.
  std::vector<std::int32_t> coarse_part(
      static_cast<std::size_t>(level.graph.num_vertices()), -1);
  for (std::size_t v = 0; v < 64; ++v) {
    auto& cp = coarse_part[static_cast<std::size_t>(level.fine_to_coarse[v])];
    if (cp == -1) cp = part[v];
    EXPECT_EQ(cp, part[v]);
  }
}

TEST(Coarsen, RespectsMaxVertexWeight) {
  const Graph g = grid_graph(8, 8);
  CoarsenOptions opt;
  opt.max_vertex_weight = 1;  // nothing may match
  util::Rng rng(6);
  const auto level = coarsen_once(g, rng, opt);
  EXPECT_EQ(level.graph.num_vertices(), g.num_vertices());
}

TEST(Hierarchy, ReachesTargetOrStalls) {
  const Graph g = grid_graph(16, 16);
  util::Rng rng(7);
  const auto levels = build_hierarchy(g, rng, 20, {});
  ASSERT_FALSE(levels.empty());
  for (std::size_t k = 1; k < levels.size(); ++k)
    EXPECT_LT(levels[k].graph.num_vertices(),
              levels[k - 1].graph.num_vertices());
  EXPECT_LE(levels.back().graph.num_vertices(), 40);
}

TEST(Projection, RoundTripsThroughMap) {
  const Graph g = grid_graph(6, 6);
  util::Rng rng(8);
  const auto level = coarsen_once(g, rng, {});
  std::vector<std::int32_t> coarse_part(
      static_cast<std::size_t>(level.graph.num_vertices()));
  for (std::size_t c = 0; c < coarse_part.size(); ++c)
    coarse_part[c] = static_cast<std::int32_t>(c % 3);
  const auto fine = project_partition(level.fine_to_coarse, coarse_part);
  for (std::size_t v = 0; v < fine.size(); ++v)
    EXPECT_EQ(fine[v],
              coarse_part[static_cast<std::size_t>(level.fine_to_coarse[v])]);
}

TEST(Coarsen, RandomMatchingAlsoValid) {
  const Graph g = grid_graph(9, 9);
  CoarsenOptions opt;
  opt.random_matching = true;
  util::Rng rng(9);
  const auto level = coarsen_once(g, rng, opt);
  EXPECT_TRUE(level.graph.validate().empty());
  EXPECT_LT(level.graph.num_vertices(), g.num_vertices());
}

}  // namespace
}  // namespace pnr::graph
