// Tests for METIS graph-file I/O: round trips with both weight kinds,
// format variants, comment handling, and malformed-input rejection.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <unistd.h>

#include "graph/builder.hpp"
#include "graph/io.hpp"

namespace pnr::graph {
namespace {

class MetisIo : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("pnr_metis_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }
  std::filesystem::path dir_;
};

Graph sample_graph() {
  GraphBuilder b(5);
  b.add_edge(0, 1, 3);
  b.add_edge(1, 2, 1);
  b.add_edge(2, 3, 7);
  b.add_edge(3, 4, 2);
  b.add_edge(4, 0, 5);
  b.set_vertex_weight(0, 10);
  b.set_vertex_weight(3, 4);
  return b.build();
}

TEST_F(MetisIo, RoundTripPreservesEverything) {
  const Graph g = sample_graph();
  ASSERT_TRUE(write_metis(g, path("g.metis")));
  const auto loaded = read_metis(path("g.metis"));
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->num_vertices(), g.num_vertices());
  EXPECT_EQ(loaded->num_edges(), g.num_edges());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(loaded->vertex_weight(v), g.vertex_weight(v));
    for (const VertexId u : g.neighbors(v))
      EXPECT_EQ(loaded->edge_weight(v, u), g.edge_weight(v, u));
  }
  EXPECT_TRUE(loaded->validate().empty());
}

TEST_F(MetisIo, ReadsUnweightedFormat) {
  {
    std::ofstream f(path("plain.metis"));
    f << "% a triangle plus a tail\n4 4\n2 3\n1 3 4\n1 2\n2\n";
  }
  const auto g = read_metis(path("plain.metis"));
  ASSERT_TRUE(g.has_value());
  EXPECT_EQ(g->num_vertices(), 4);
  EXPECT_EQ(g->num_edges(), 4);
  EXPECT_EQ(g->vertex_weight(0), 1);
  EXPECT_EQ(g->edge_weight(0, 1), 1);
}

TEST_F(MetisIo, ReadsEdgeWeightOnlyFormat) {
  {
    std::ofstream f(path("ew.metis"));
    f << "3 2 001\n2 9\n1 9 3 4\n2 4\n";
  }
  const auto g = read_metis(path("ew.metis"));
  ASSERT_TRUE(g.has_value());
  EXPECT_EQ(g->edge_weight(0, 1), 9);
  EXPECT_EQ(g->edge_weight(1, 2), 4);
}

TEST_F(MetisIo, RejectsEdgeCountMismatch) {
  {
    std::ofstream f(path("bad.metis"));
    f << "3 5 000\n2\n1 3\n2\n";  // header claims 5 edges, file has 2
  }
  EXPECT_FALSE(read_metis(path("bad.metis")).has_value());
}

TEST_F(MetisIo, RejectsOneSidedEdge) {
  {
    std::ofstream f(path("asym.metis"));
    f << "3 2 000\n2 3\n1\n1\n";  // 0-2 listed from 0 and 2, 0-1 only from 0... arcs=4 though
  }
  // 4 arcs match 2 edges but vertex 1's line omits the back-arc of 0-1
  // while vertex 2 lists 0-2 twice — the builder/num_edges check trips.
  const auto g = read_metis(path("asym.metis"));
  if (g.has_value()) {
    // If counts happen to line up, the graph must still be valid.
    EXPECT_TRUE(g->validate().empty());
  }
}

TEST_F(MetisIo, RejectsOutOfRangeNeighbor) {
  {
    std::ofstream f(path("oob.metis"));
    f << "2 1 000\n2\n3\n";  // neighbor 3 in a 2-vertex graph
  }
  EXPECT_FALSE(read_metis(path("oob.metis")).has_value());
}

TEST_F(MetisIo, MissingFileIsNullopt) {
  EXPECT_FALSE(read_metis(path("nope.metis")).has_value());
}

}  // namespace
}  // namespace pnr::graph
