// Parameterized sweeps over (p, seed) exercising the end-to-end PNR
// contract on randomized adapted meshes: every repartition keeps all
// subsets populated, restores balance, moves at most the mesh, and is
// deterministic for a fixed seed. Plus the 3D determinism twin of the 2D
// replication-invariant test.

#include <gtest/gtest.h>

#include "core/pnr.hpp"
#include "mesh/dual.hpp"
#include "mesh/generate.hpp"
#include "partition/rebalance.hpp"
#include "util/rng.hpp"

namespace pnr {
namespace {

struct SweepCase {
  part::PartId p;
  std::uint64_t seed;
};

void randomly_adapt(mesh::TriMesh& mesh, util::Rng& rng, int rounds) {
  for (int round = 0; round < rounds; ++round) {
    std::vector<mesh::ElemIdx> marked;
    for (const mesh::ElemIdx e : mesh.leaf_elements())
      if (rng.next_below(4) == 0) marked.push_back(e);
    mesh.refine(marked);
    std::vector<mesh::ElemIdx> to_coarsen;
    for (const mesh::ElemIdx e : mesh.leaf_elements())
      if (rng.next_below(6) == 0) to_coarsen.push_back(e);
    mesh.coarsen(to_coarsen);
  }
}

class PnrSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(PnrSweep, RepartitionContractHolds) {
  const auto c = GetParam();
  auto mesh = mesh::structured_tri_mesh(10, 10, 0.2, c.seed);
  util::Rng adapt_rng(c.seed * 31 + 1);
  core::Pnr pnr(c.p);
  util::Rng rng(c.seed);

  auto g = mesh::nested_dual_graph(mesh);
  auto pi = pnr.initial_partition(g, rng);
  EXPECT_TRUE(part::all_parts_used(g, pi));

  for (int round = 0; round < 3; ++round) {
    randomly_adapt(mesh, adapt_rng, 1);
    g = mesh::nested_dual_graph(mesh);
    core::RepartitionStats stats;
    pi = pnr.repartition(g, pi, rng, &stats);
    ASSERT_TRUE(pi.valid_for(g));
    EXPECT_TRUE(part::all_parts_used(g, pi));
    EXPECT_LE(stats.imbalance_after, 0.08)
        << "p=" << c.p << " seed=" << c.seed << " round=" << round;
    EXPECT_LE(stats.migrate, g.total_vertex_weight());
    EXPECT_GE(stats.migrate, 0);
  }
}

TEST_P(PnrSweep, DeterministicForFixedSeed) {
  const auto c = GetParam();
  auto run = [&] {
    auto mesh = mesh::structured_tri_mesh(8, 8, 0.2, c.seed);
    util::Rng adapt_rng(c.seed + 5);
    core::Pnr pnr(c.p);
    util::Rng rng(c.seed);
    auto g = mesh::nested_dual_graph(mesh);
    auto pi = pnr.initial_partition(g, rng);
    randomly_adapt(mesh, adapt_rng, 2);
    g = mesh::nested_dual_graph(mesh);
    return pnr.repartition(g, pi, rng).assign;
  };
  EXPECT_EQ(run(), run());
}

INSTANTIATE_TEST_SUITE_P(
    PSeedGrid, PnrSweep,
    ::testing::Values(SweepCase{2, 1}, SweepCase{3, 2}, SweepCase{4, 3},
                      SweepCase{6, 4}, SweepCase{8, 5}, SweepCase{12, 6},
                      SweepCase{16, 7}, SweepCase{4, 1000},
                      SweepCase{8, 424242}));

class RebalanceSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RebalanceSweep, RandomSkewAlwaysImproves) {
  auto mesh = mesh::structured_tri_mesh(9, 9, 0.2, GetParam());
  util::Rng rng(GetParam());
  randomly_adapt(mesh, rng, 2);
  const auto dual = mesh::fine_dual_graph(mesh);

  // Random geometric skew: everything left of a random line goes to part 0.
  const double split = rng.uniform(-0.6, 0.6);
  part::Partition pi(3, std::vector<part::PartId>(
                            static_cast<std::size_t>(dual.graph.num_vertices())));
  for (std::size_t i = 0; i < dual.elems.size(); ++i) {
    const auto cen = mesh.centroid(dual.elems[i]);
    pi.assign[i] = cen.x < split ? 0 : (cen.y < 0 ? 1 : 2);
  }
  const double before = part::imbalance(dual.graph, pi);
  part::RebalanceOptions opt;
  opt.tol = 0.02;
  part::rebalance_greedy(dual.graph, pi, opt);
  const double after = part::imbalance(dual.graph, pi);
  EXPECT_LE(after, std::max(0.05, before));
  EXPECT_TRUE(part::all_parts_used(dual.graph, pi));
}

INSTANTIATE_TEST_SUITE_P(Seeds, RebalanceSweep,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u));

TEST(TetDeterminism, SameAdaptationSameMesh) {
  auto build = [] {
    auto mesh = mesh::structured_tet_mesh(3, 3, 3, 0.1, 11);
    util::Rng rng(77);
    for (int round = 0; round < 3; ++round) {
      std::vector<mesh::ElemIdx> marked;
      for (const mesh::ElemIdx e : mesh.leaf_elements())
        if (rng.next_below(4) == 0) marked.push_back(e);
      mesh.refine(marked);
      std::vector<mesh::ElemIdx> to_coarsen;
      for (const mesh::ElemIdx e : mesh.leaf_elements())
        if (rng.next_below(6) == 0) to_coarsen.push_back(e);
      mesh.coarsen(to_coarsen);
    }
    return mesh;
  };
  const auto a = build();
  const auto b = build();
  ASSERT_EQ(a.num_leaves(), b.num_leaves());
  ASSERT_EQ(a.leaf_elements(), b.leaf_elements());
  for (const mesh::ElemIdx e : a.leaf_elements()) {
    EXPECT_EQ(a.tet(e).v, b.tet(e).v);
    EXPECT_EQ(a.tet(e).level, b.tet(e).level);
  }
}

}  // namespace
}  // namespace pnr
