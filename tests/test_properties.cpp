// Property-based suites over seeds and sizes: refinement determinism (the
// replication invariant the Figure 2 protocol relies on), bisection
// geometry, spectral quality of the Fiedler solver, CSR validation
// rejection cases, and the Theorem 6.1 bounds under uniform refinement.

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "core/snap.hpp"
#include "graph/builder.hpp"
#include "graph/csr.hpp"
#include "graph/laplacian.hpp"
#include "mesh/dual.hpp"
#include "mesh/generate.hpp"
#include "mesh/metrics.hpp"
#include "partition/rsb.hpp"
#include "util/rng.hpp"

namespace pnr {
namespace {

// ---- refinement determinism --------------------------------------------------

class RefineDeterminism : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RefineDeterminism, SameMarksSameMesh) {
  const std::uint64_t seed = GetParam();
  auto build = [&] {
    auto mesh = mesh::structured_tri_mesh(9, 9, 0.25, seed);
    util::Rng rng(seed ^ 0xabcdef);
    for (int round = 0; round < 4; ++round) {
      std::vector<mesh::ElemIdx> marked;
      for (const mesh::ElemIdx e : mesh.leaf_elements())
        if (rng.next_below(3) == 0) marked.push_back(e);
      mesh.refine(marked);
      std::vector<mesh::ElemIdx> to_coarsen;
      for (const mesh::ElemIdx e : mesh.leaf_elements())
        if (rng.next_below(5) == 0) to_coarsen.push_back(e);
      mesh.coarsen(to_coarsen);
    }
    return mesh;
  };
  const auto a = build();
  const auto b = build();
  ASSERT_EQ(a.element_slots(), b.element_slots());
  ASSERT_EQ(a.num_leaves(), b.num_leaves());
  ASSERT_EQ(a.num_vertices_alive(), b.num_vertices_alive());
  const auto la = a.leaf_elements();
  const auto lb = b.leaf_elements();
  ASSERT_EQ(la, lb);
  for (const mesh::ElemIdx e : la) {
    EXPECT_EQ(a.tri(e).v, b.tri(e).v);
    for (const mesh::VertIdx v : a.tri(e).v) {
      EXPECT_EQ(a.vertex(v).x, b.vertex(v).x);
      EXPECT_EQ(a.vertex(v).y, b.vertex(v).y);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RefineDeterminism,
                         ::testing::Values(1u, 7u, 42u, 1234u, 99991u));

// ---- bisection geometry -------------------------------------------------------

class BisectionGeometry : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BisectionGeometry, ChildrenHalveTheParent) {
  auto mesh = mesh::structured_tri_mesh(6, 6, 0.25, GetParam());
  mesh.refine(mesh.leaf_elements());
  for (std::size_t e = 0; e < mesh.element_slots(); ++e) {
    const auto& t = mesh.tri(static_cast<mesh::ElemIdx>(e));
    if (!t.alive || t.leaf) continue;
    const double pa = mesh.signed_area(static_cast<mesh::ElemIdx>(e));
    const double c0 = mesh.signed_area(t.child[0]);
    const double c1 = mesh.signed_area(t.child[1]);
    EXPECT_NEAR(c0 + c1, pa, 1e-12 * std::abs(pa) + 1e-300);
    // A midpoint bisection gives exactly equal halves.
    EXPECT_NEAR(c0, c1, 1e-12 * std::abs(pa) + 1e-300);
  }
}

TEST_P(BisectionGeometry, MinAngleBoundedUnderDeepRefinement) {
  // Rivara's guarantee: the minimum angle never drops below half the
  // initial minimum angle, no matter how deep the refinement.
  auto mesh = mesh::structured_tri_mesh(6, 6, 0.2, GetParam());
  const auto q0 = mesh::mesh_quality(mesh);
  for (int round = 0; round < 6; ++round) {
    std::vector<mesh::ElemIdx> marked;
    for (const mesh::ElemIdx e : mesh.leaf_elements()) {
      const auto c = mesh.centroid(e);
      if (c.x > 0.4 && c.y > 0.4) marked.push_back(e);
    }
    mesh.refine(marked);
  }
  const auto q = mesh::mesh_quality(mesh);
  EXPECT_GE(q.min_angle_deg, q0.min_angle_deg / 2.0 - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BisectionGeometry,
                         ::testing::Values(2u, 17u, 333u));

// ---- Fiedler quality ----------------------------------------------------------

TEST(FiedlerQuality, RayleighQuotientNearLambda2OnPath) {
  // λ2 of the n-path is 2(1 − cos(π/n)).
  const int n = 64;
  graph::GraphBuilder b(n);
  for (graph::VertexId v = 0; v + 1 < n; ++v) b.add_edge(v, v + 1);
  const auto g = b.build();
  util::Rng rng(5);
  const auto x = part::fiedler_vector(g, rng);
  std::vector<double> y(static_cast<std::size_t>(n));
  graph::laplacian_apply(g, x, y);
  const double rho = graph::dot(x, y);
  const double lambda2 = 2.0 * (1.0 - std::cos(std::numbers::pi / n));
  EXPECT_GE(rho, lambda2 * 0.999);
  EXPECT_LE(rho, lambda2 * 3.0);  // approximate vector, generous factor
}

TEST(FiedlerQuality, DisconnectedGraphSeparatesComponents) {
  graph::GraphBuilder b(8);
  for (graph::VertexId v = 0; v < 3; ++v) b.add_edge(v, v + 1);
  for (graph::VertexId v = 4; v < 7; ++v) b.add_edge(v, v + 1);
  const auto g = b.build();
  util::Rng rng(6);
  const auto x = part::fiedler_vector(g, rng);
  // λ2 = 0: the vector is (near-)constant per component with opposite signs.
  for (int v = 1; v < 4; ++v)
    EXPECT_NEAR(x[static_cast<std::size_t>(v)], x[0], 1e-4);
  EXPECT_LT(x[0] * x[4], 0.0);
}

// ---- CSR validation rejects broken graphs -------------------------------------

TEST(Validate, DetectsAsymmetricWeights) {
  // Hand-build an asymmetric CSR: edge 0->1 weight 2, 1->0 weight 3.
  graph::Graph g({0, 1, 2}, {1, 0}, {2, 3}, {1, 1});
  EXPECT_FALSE(g.validate().empty());
}

TEST(Validate, DetectsSelfLoop) {
  graph::Graph g({0, 1, 1}, {0}, {1}, {1, 1});
  EXPECT_FALSE(g.validate().empty());
}

TEST(Validate, DetectsDanglingNeighbor) {
  graph::Graph g({0, 1, 2}, {5, 0}, {1, 1}, {1, 1});
  EXPECT_FALSE(g.validate().empty());
}

TEST(Validate, DetectsNegativeWeights) {
  graph::Graph g({0, 1, 2}, {1, 0}, {-1, -1}, {1, 1});
  EXPECT_FALSE(g.validate().empty());
  graph::Graph h({0, 1, 2}, {1, 0}, {1, 1}, {-2, 1});
  EXPECT_FALSE(h.validate().empty());
}

// ---- Theorem 6.1 under uniform refinement -------------------------------------

TEST(Competitive, SnapBoundsHoldUnderUniformRefinement) {
  // Refine every element to uniform depth d = 3, partition the fine mesh,
  // snap to coarse boundaries, and check the theorem's claims: the cut
  // grows by at most a small constant factor (bound: 9) and the balance
  // deteriorates by at most an additive (p-1)d² elements.
  const int d = 3;
  auto mesh = mesh::structured_tri_mesh(6, 6, 0.15, 4);
  for (int round = 0; round < d; ++round) mesh.refine(mesh.leaf_elements());

  const auto elems = mesh.leaf_elements();
  const auto dual = mesh::fine_dual_graph(mesh);
  const part::PartId p = 4;
  util::Rng rng(7);
  const auto pi = part::rsb(dual.graph, p, rng);
  const auto snap = core::snap_to_coarse(mesh, elems, pi.assign, p);

  const auto cut_before = part::cut_size(dual.graph, pi);
  const auto cut_after =
      part::cut_size(dual.graph, part::Partition(p, snap.fine_assign));
  EXPECT_LE(cut_after, 9 * cut_before);

  const auto weights = part::part_weights(
      dual.graph, part::Partition(p, snap.fine_assign));
  const auto before = part::part_weights(dual.graph, pi);
  graph::Weight max_before = 0, max_after = 0;
  for (const auto w : before) max_before = std::max(max_before, w);
  for (const auto w : weights) max_after = std::max(max_after, w);
  // Additive slack (p-1)d²·(leaves per coarse element at depth d) — the
  // theorem counts coarse-level displacement; translate to fine elements.
  const auto slack = static_cast<graph::Weight>((p - 1) * d * d * (1 << d));
  EXPECT_LE(max_after, max_before + slack);
}

// ---- dual-graph/partition interplay -------------------------------------------

class NestedConsistency : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(NestedConsistency, CoarseCutEqualsFineCutForNestedPartitions) {
  // For any partition that respects coarse boundaries, the cut of the
  // nested graph equals the cut of the fine dual graph.
  auto mesh = mesh::structured_tri_mesh(5, 5, 0.2, GetParam());
  util::Rng rng(GetParam());
  for (int round = 0; round < 3; ++round) {
    std::vector<mesh::ElemIdx> marked;
    for (const mesh::ElemIdx e : mesh.leaf_elements())
      if (rng.next_below(4) == 0) marked.push_back(e);
    mesh.refine(marked);
  }
  const auto coarse = mesh::nested_dual_graph(mesh);
  std::vector<part::PartId> coarse_assign(
      static_cast<std::size_t>(mesh.num_initial_elements()));
  for (auto& a : coarse_assign)
    a = static_cast<part::PartId>(rng.next_below(4));
  const auto elems = mesh.leaf_elements();
  const auto fine_assign =
      mesh::project_coarse_assignment(mesh, elems, coarse_assign);
  const auto fine = mesh::fine_dual_graph(mesh);

  EXPECT_EQ(part::cut_size(coarse, part::Partition(4, coarse_assign)),
            part::cut_size(fine.graph, part::Partition(4, fine_assign)));
  // Vertex weights mirror leaf ownership: total weight per part matches.
  const auto wc =
      part::part_weights(coarse, part::Partition(4, coarse_assign));
  const auto wf =
      part::part_weights(fine.graph, part::Partition(4, fine_assign));
  EXPECT_EQ(wc, wf);
}

INSTANTIATE_TEST_SUITE_P(Seeds, NestedConsistency,
                         ::testing::Values(3u, 11u, 29u, 101u));

}  // namespace
}  // namespace pnr
