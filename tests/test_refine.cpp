// Tests for the *incremental* machinery of the KL/FM refinement engine:
// the persistent conn(v, part) rows, the boundary-seeded pass queue, the
// deferred-move retry logic, and the determinism of the whole pipeline.
// The gain-model semantics themselves are covered by test_partition.cpp.

#include <gtest/gtest.h>

#include <vector>

#include "graph/builder.hpp"
#include "partition/partition.hpp"
#include "partition/refine.hpp"
#include "util/rng.hpp"

namespace pnr::part {
namespace {

Graph grid_graph(int nx, int ny) {
  graph::GraphBuilder b(nx * ny);
  auto id = [&](int i, int j) { return static_cast<graph::VertexId>(j * nx + i); };
  for (int j = 0; j < ny; ++j)
    for (int i = 0; i < nx; ++i) {
      if (i + 1 < nx) b.add_edge(id(i, j), id(i + 1, j));
      if (j + 1 < ny) b.add_edge(id(i, j), id(i, j + 1));
    }
  return b.build();
}

Partition random_partition(const Graph& g, PartId p, util::Rng& rng) {
  std::vector<PartId> assign(static_cast<std::size_t>(g.num_vertices()));
  for (auto& a : assign)
    a = static_cast<PartId>(rng.next_below(static_cast<std::uint64_t>(p)));
  return Partition(p, std::move(assign));
}

std::vector<PartId> stripes_home(int nx, int ny, PartId p) {
  std::vector<PartId> home(static_cast<std::size_t>(nx) * ny);
  for (int j = 0; j < ny; ++j)
    for (int i = 0; i < nx; ++i)
      home[static_cast<std::size_t>(j * nx + i)] =
          static_cast<PartId>(i * p / nx);
  return home;
}

// The check_invariants hook cross-checks the incrementally maintained conn
// rows, boundary set, and subset weights against a from-scratch recompute
// after *every applied move* (including rollbacks' net effect), aborting on
// divergence. Running it over random partitions of grid graphs for several
// seeds, part counts, and gain-model configurations is the main defense
// against delta-update bugs in the incremental engine.
TEST(RefineIncremental, InvariantsHoldAcrossRandomizedRuns) {
  const Graph g = grid_graph(8, 8);
  const std::vector<PartId> home = stripes_home(8, 8, 4);
  for (const PartId p : {2, 3, 4}) {
    for (const std::uint64_t seed : {1u, 7u, 42u}) {
      for (const int config : {0, 1, 2}) {
        util::Rng rng(seed);
        Partition pi = random_partition(g, p, rng);
        RefineOptions opt;
        opt.check_invariants = true;
        opt.max_passes = 4;
        std::vector<PartId> clipped_home(home.size());
        for (std::size_t v = 0; v < home.size(); ++v)
          clipped_home[v] = static_cast<PartId>(home[v] % p);
        if (config >= 1) {
          opt.alpha = 0.1;
          opt.home = &clipped_home;
        }
        if (config == 2) {
          opt.hard_balance = false;
          opt.beta = 0.8;
        }
        const Weight cut0 = cut_size(g, pi);
        const RefineResult r = refine_partition(g, pi, opt);
        EXPECT_LE(cut_size(g, pi), cut0)
            << "p=" << p << " seed=" << seed << " config=" << config;
        EXPECT_GT(r.passes, 0);
      }
    }
  }
}

TEST(RefineIncremental, SameSeedGivesIdenticalAssignment) {
  const Graph g = grid_graph(10, 6);
  for (const int config : {0, 1}) {
    util::Rng rng_a(11), rng_b(11);
    Partition a = random_partition(g, 4, rng_a);
    Partition b = random_partition(g, 4, rng_b);
    ASSERT_EQ(a.assign, b.assign);
    const std::vector<PartId> home = stripes_home(10, 6, 4);
    RefineOptions opt;
    opt.max_passes = 6;
    if (config == 1) {
      opt.alpha = 0.1;
      opt.home = &home;
    }
    refine_partition(g, a, opt);
    refine_partition(g, b, opt);
    EXPECT_EQ(a.assign, b.assign) << "config=" << config;
  }
}

// Regression for the deferred-move path: two heavy vertices on full subsets
// want to swap homes, but each move alone violates the hard balance cap at
// pop time. The first is deferred; the second (the reverse direction) is
// legal and drains the first one's destination, which must re-arm the
// deferred entry so the swap completes *within the same pass*.
TEST(RefineDeferred, BlockedMoveRetriesAfterUnblock) {
  graph::GraphBuilder b(4);
  b.set_vertex_weight(0, 4);  // x: in 0, home 1
  b.set_vertex_weight(1, 4);  // y: in 1, home 0
  b.set_vertex_weight(2, 1);  // filler in 0, at home
  b.set_vertex_weight(3, 5);  // filler in 1, at home
  const Graph g = b.build();

  Partition pi(2, {0, 1, 0, 1});
  const std::vector<PartId> home{1, 0, 0, 1};
  RefineOptions opt;
  opt.alpha = 0.5;
  opt.home = &home;
  opt.hard_balance = true;
  opt.imbalance_tol = 0.0;  // caps = targets = 7; neither 4-move fits first
  opt.max_passes = 1;

  const RefineResult r = refine_partition(g, pi, opt);
  EXPECT_EQ(pi.assign, home);  // both returns applied despite mutual blocking
  EXPECT_EQ(r.moves, 2);
  EXPECT_GT(r.total_gain, 0.0);
}

// A deferred move whose subsets never change must not spin the pass: the
// queue drains and the pass (and the refine call) terminates with no moves.
TEST(RefineDeferred, TerminatesWhenNeverUnblocked) {
  graph::GraphBuilder b(3);
  b.set_vertex_weight(0, 4);  // x: in 0, home 1, can never fit into 1
  b.set_vertex_weight(1, 1);  // filler in 0, at home
  b.set_vertex_weight(2, 9);  // part 1 is permanently over target
  const Graph g = b.build();

  Partition pi(2, {0, 0, 1});
  const std::vector<PartId> home{1, 0, 1};
  RefineOptions opt;
  opt.alpha = 0.5;
  opt.home = &home;
  opt.hard_balance = true;
  opt.imbalance_tol = 0.0;
  opt.max_passes = 4;

  const Partition before = pi;
  const RefineResult r = refine_partition(g, pi, opt);
  EXPECT_EQ(pi.assign, before.assign);
  EXPECT_EQ(r.moves, 0);
  EXPECT_EQ(r.passes, 1);  // no gain in the first pass, so no second one
}

// Counter contracts of the incremental engine: with β = 0 every filed gain
// is exact, so the engine must never recompute or re-key on pop, and pass
// seeding must stay restricted to the (small) boundary.
TEST(RefineCounters, HardModePaysNoRecomputes) {
  const Graph g = grid_graph(12, 12);
  util::Rng rng(3);
  Partition pi = random_partition(g, 4, rng);
  RefineOptions opt;
  opt.max_passes = 8;
  const RefineResult r = refine_partition(g, pi, opt);
  EXPECT_EQ(r.gain_recomputes, 0);
  EXPECT_EQ(r.stale_pops, 0);
  EXPECT_GT(r.queue_pushes, 0);
  EXPECT_GT(r.boundary_seeded, 0);
  // Each pass seeds at most every vertex once (in practice far fewer).
  EXPECT_LE(r.boundary_seeded,
            static_cast<std::int64_t>(r.passes) * g.num_vertices());
}

TEST(RefineCounters, SoftModeVerifiesGainsOnPop) {
  const Graph g = grid_graph(12, 12);
  util::Rng rng(3);
  Partition pi = random_partition(g, 4, rng);
  RefineOptions opt;
  opt.hard_balance = false;
  opt.alpha = 0.1;
  opt.beta = 0.8;
  const std::vector<PartId> home = stripes_home(12, 12, 4);
  opt.home = &home;
  const RefineResult r = refine_partition(g, pi, opt);
  // The β term couples gains to global weights: every pop re-checks.
  EXPECT_GT(r.gain_recomputes, 0);
  EXPECT_GE(r.gain_recomputes, r.stale_pops);
}

}  // namespace
}  // namespace pnr::part
