// Unit tests for the SVG renderer and the p×p gain-priority-queue table.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <unistd.h>

#include "mesh/generate.hpp"
#include "mesh/svg.hpp"
#include "partition/pairqueue.hpp"

namespace pnr {
namespace {

TEST(Svg, WritesPolygonsForEveryLeaf) {
  auto mesh = mesh::structured_tri_mesh(4, 4, 0.0, 1);
  mesh.refine({0, 1});
  const auto elems = mesh.leaf_elements();
  std::vector<part::PartId> assign(elems.size());
  for (std::size_t i = 0; i < elems.size(); ++i)
    assign[i] = static_cast<part::PartId>(i % 3);

  const auto path = std::filesystem::temp_directory_path() /
                    ("pnr_svg_" + std::to_string(::getpid()) + ".svg");
  ASSERT_TRUE(mesh::write_partition_svg(mesh, elems, assign, path.string()));

  std::ifstream f(path);
  std::stringstream buffer;
  buffer << f.rdbuf();
  const std::string content = buffer.str();
  std::filesystem::remove(path);

  std::size_t polygons = 0, pos = 0;
  while ((pos = content.find("<polygon", pos)) != std::string::npos) {
    ++polygons;
    pos += 8;
  }
  EXPECT_EQ(polygons, elems.size());
  EXPECT_NE(content.find("<svg"), std::string::npos);
  EXPECT_NE(content.find("</svg>"), std::string::npos);
}

TEST(Svg, BareMeshUsesNeutralFill) {
  auto mesh = mesh::structured_tri_mesh(2, 2, 0.0, 1);
  const auto path = std::filesystem::temp_directory_path() /
                    ("pnr_svg_bare_" + std::to_string(::getpid()) + ".svg");
  ASSERT_TRUE(mesh::write_partition_svg(mesh, mesh.leaf_elements(), {},
                                        path.string()));
  std::ifstream f(path);
  std::stringstream buffer;
  buffer << f.rdbuf();
  std::filesystem::remove(path);
  EXPECT_NE(buffer.str().find("#f2f2f2"), std::string::npos);
}

TEST(PairQueue, PopsInGainOrderAcrossPairs) {
  part::PairQueueTable table(3, 10);
  table.push_or_update(0, 0, 1, 5.0);
  table.push_or_update(1, 1, 2, 9.0);
  table.push_or_update(2, 2, 0, 7.0);

  auto a = table.pop_best();
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->v, 1);
  EXPECT_DOUBLE_EQ(a->gain, 9.0);
  EXPECT_EQ(a->from, 1);
  EXPECT_EQ(a->to, 2);

  auto b = table.pop_best();
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(b->v, 2);
  auto c = table.pop_best();
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(c->v, 0);
  EXPECT_FALSE(table.pop_best().has_value());
}

TEST(PairQueue, UpdateReKeysInPlace) {
  part::PairQueueTable table(2, 4);
  table.push_or_update(0, 0, 1, 10.0);
  table.push_or_update(1, 0, 1, 3.0);
  EXPECT_EQ(table.size(), 2u);
  table.push_or_update(0, 0, 1, 1.0);  // demote: no duplicate entry
  EXPECT_EQ(table.size(), 2u);
  EXPECT_EQ(table.pop_best()->v, 1);
  auto e = table.pop_best();
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->v, 0);
  EXPECT_DOUBLE_EQ(e->gain, 1.0);
  EXPECT_FALSE(table.pop_best().has_value());
}

TEST(PairQueue, RemoveDropsAllCandidatesOfAVertex) {
  part::PairQueueTable table(3, 4);
  table.push_or_update(0, 0, 1, 10.0);
  table.push_or_update(0, 0, 2, 8.0);
  table.push_or_update(1, 0, 1, 3.0);
  EXPECT_TRUE(table.contains(0, 1));
  table.remove_all(0, 0);
  EXPECT_FALSE(table.contains(0, 1));
  EXPECT_FALSE(table.contains(0, 2));
  EXPECT_EQ(table.size(), 1u);
  EXPECT_EQ(table.pop_best()->v, 1);
  EXPECT_FALSE(table.pop_best().has_value());
}

TEST(PairQueue, FifoTieBreakIsDeterministic) {
  part::PairQueueTable table(2, 4);
  table.push_or_update(2, 0, 1, 4.0);
  table.push_or_update(3, 0, 1, 4.0);  // same gain, pushed later
  // Re-keying to the same gain must not demote entry 2 behind entry 3.
  table.push_or_update(2, 0, 1, 4.0);
  EXPECT_EQ(table.pop_best()->v, 2);
  EXPECT_EQ(table.pop_best()->v, 3);
}

TEST(PairQueue, ClearEmptiesEverything) {
  part::PairQueueTable table(2, 4);
  table.push_or_update(0, 0, 1, 1.0);
  table.clear();
  EXPECT_FALSE(table.pop_best().has_value());
  // Cleared slots must be reusable.
  table.push_or_update(0, 0, 1, 2.0);
  EXPECT_EQ(table.pop_best()->v, 0);
}

}  // namespace
}  // namespace pnr
