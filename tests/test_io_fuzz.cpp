// Hostile-input battery for the file readers (ISSUE satellite: harden
// graph::read_metis and mesh::read_triangle_files / read_tetgen_files).
// Every case must come back nullopt — no aborts, no partial state, no
// gigabyte allocations from a 20-byte header — and the handcrafted set is
// topped up with seeded-random and bit-flipped bytes. The binary runs in
// the ASan/UBSan CI leg, so a latent overflow or overread fails loudly.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "graph/io.hpp"
#include "mesh/build.hpp"
#include "mesh/generate.hpp"
#include "mesh/io.hpp"
#include "util/rng.hpp"

namespace pnr {
namespace {

class IoFuzzTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("pnr_io_fuzz_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }

  /// Write `basename`.node/.ele with the given bodies and return basename.
  std::string tri_files(const std::string& node, const std::string& ele) {
    write(path("m.node"), node);
    write(path("m.ele"), ele);
    return path("m");
  }

  void write(const std::string& p, const std::string& content) {
    std::ofstream f(p, std::ios::binary);
    f << content;
  }

  std::filesystem::path dir_;
};

/// A well-formed unit square (4 nodes, 2 triangles) — the positive control
/// every rejection test is diffed against: hardening must not reject it.
const char* kGoodNode = "4 2 0 0\n1 0 0\n2 1 0\n3 1 1\n4 0 1\n";
const char* kGoodEle = "2 3 0\n1 1 2 3\n2 1 3 4\n";

TEST_F(IoFuzzTest, WellFormedTriangleFilesStillParse) {
  const auto mesh = mesh::read_triangle_files(tri_files(kGoodNode, kGoodEle));
  ASSERT_TRUE(mesh.has_value());
  EXPECT_EQ(mesh->num_leaves(), 2);
  EXPECT_EQ(mesh->num_vertices_alive(), 4);
}

TEST_F(IoFuzzTest, HostileNodeHeadersAreRejected) {
  // Absurd counts must be rejected BEFORE any allocation keyed on them.
  const char* headers[] = {
      "999999999999999 2 0 0\n1 0 0\n",     // count * dim would overflow
      "99999999 2 0 0\n1 0 0\n",            // count far beyond file size
      "-3 2 0 0\n1 0 0\n",                  // negative count
      "0 2 0 0\n",                          // zero count
      "4 4 0 0\n1 0 0 0 0\n",               // unsupported dimension
      "4 -2 0 0\n1 0 0\n",                  // negative dimension
      "nonsense\n1 0 0\n",                  // unparsable header
      "\n",                                 // blank file
      "# only a comment\n",                 // comment-only file
      "",                                   // empty file
  };
  for (const char* node : headers) {
    EXPECT_FALSE(mesh::read_triangle_files(tri_files(node, kGoodEle)))
        << "accepted node header: " << node;
  }
}

TEST_F(IoFuzzTest, HostileNodeBodiesAreRejected) {
  const char* bodies[] = {
      "4 2 0 0\n1 0 0\n2 1 0\n",                       // truncated body
      "4 2 0 0\n1 0 0\n2 1 0\n3 1 1\n4 0\n",           // missing coordinate
      "4 2 0 0\n1 0 0\n2 1 0\n3 1 1\nx 0 1\n",         // unparsable id
      "4 2 0 0\n1 0 0\n2 1 0\n3 1 1\n9 0 1\n",         // id out of range
      "4 2 0 0\n1 0 0\n2 1 0\n3 1 1\n3 0 1\n",         // duplicate id
      "4 2 0 0\n1 0 0\n2 1 0\n3 1 1\n4 zero one\n",    // unparsable coords
      "4 2 0 0\n1 0 0\n2 1 0\n3 1 1\n4 0 1e300\n",     // absurd magnitude
  };
  for (const char* node : bodies) {
    EXPECT_FALSE(mesh::read_triangle_files(tri_files(node, kGoodEle)))
        << "accepted node body: " << node;
  }
}

TEST_F(IoFuzzTest, HostileElementFilesAreRejected) {
  const char* eles[] = {
      "999999999999999 3 0\n1 1 2 3\n",   // absurd count
      "99999999 3 0\n1 1 2 3\n",          // count beyond file size
      "-1 3 0\n1 1 2 3\n",                // negative count
      "2 5 0\n1 1 2 3 4 1\n",             // unsupported arity
      "2 3 0\n1 1 2 3\n",                 // truncated body
      "2 3 0\n1 1 2 3\nx 1 3 4\n",        // unparsable id
      "2 3 0\n1 1 2 3\n2 1 3 9\n",        // vertex out of range
      "2 3 0\n1 1 2 3\n2 1 3 0\n",        // below 1-based range
      "2 3 0\n1 1 2 3\n2 1 3 3\n",        // repeated corner
      "",                                 // missing elements
  };
  for (const char* ele : eles) {
    EXPECT_FALSE(mesh::read_triangle_files(tri_files(kGoodNode, ele)))
        << "accepted element body: " << ele;
  }
}

TEST_F(IoFuzzTest, DegenerateGeometryIsRejectedNotAborted) {
  // Collinear corners: zero signed area used to trip finalize's REQUIRE.
  EXPECT_FALSE(mesh::read_triangle_files(tri_files(
      "3 2 0 0\n1 0 0\n2 1 1\n3 2 2\n", "1 3 0\n1 1 2 3\n")));
  // Three triangles on one edge: non-manifold.
  EXPECT_FALSE(mesh::read_triangle_files(tri_files(
      "5 2 0 0\n1 0 0\n2 1 0\n3 0 1\n4 1 1\n5 -1 -1\n",
      "3 3 0\n1 1 2 3\n2 1 2 4\n3 1 2 5\n")));
  // Dimension mismatch: 3D nodes through the triangle reader.
  EXPECT_FALSE(mesh::read_triangle_files(tri_files(
      "3 3 0 0\n1 0 0 0\n2 1 0 0\n3 0 1 0\n", kGoodEle)));
}

TEST_F(IoFuzzTest, HostileTetgenFilesAreRejected) {
  const char* node4 =
      "4 3 0 0\n1 0 0 0\n2 1 0 0\n3 0 1 0\n4 0 0 1\n";
  // Positive control first.
  write(path("t.node"), node4);
  write(path("t.ele"), "1 4 0\n1 1 2 3 4\n");
  ASSERT_TRUE(mesh::read_tetgen_files(path("t")));

  // Coplanar corners: zero volume.
  write(path("t.node"), "4 3 0 0\n1 0 0 0\n2 1 0 0\n3 0 1 0\n4 1 1 0\n");
  write(path("t.ele"), "1 4 0\n1 1 2 3 4\n");
  EXPECT_FALSE(mesh::read_tetgen_files(path("t")));

  // Three tets on one face: non-manifold.
  write(path("t.node"),
        "6 3 0 0\n1 0 0 0\n2 1 0 0\n3 0 1 0\n4 0 0 1\n5 0 0 -1\n"
        "6 1 1 1\n");
  write(path("t.ele"), "3 4 0\n1 1 2 3 4\n2 1 2 3 5\n3 1 2 3 6\n");
  EXPECT_FALSE(mesh::read_tetgen_files(path("t")));

  // Truncated .ele, repeated corner, absurd header.
  write(path("t.node"), node4);
  write(path("t.ele"), "2 4 0\n1 1 2 3 4\n");
  EXPECT_FALSE(mesh::read_tetgen_files(path("t")));
  write(path("t.ele"), "1 4 0\n1 1 2 3 3\n");
  EXPECT_FALSE(mesh::read_tetgen_files(path("t")));
  write(path("t.ele"), "888888888888 4 0\n1 1 2 3 4\n");
  EXPECT_FALSE(mesh::read_tetgen_files(path("t")));
}

TEST_F(IoFuzzTest, HostileMetisFilesAreRejected) {
  // Positive control: a 3-path with vertex and edge weights.
  write(path("g.graph"),
        "3 2 011\n2 2 5\n1 1 5 3 4\n3 2 4\n");
  ASSERT_TRUE(graph::read_metis(path("g.graph")));

  const char* graphs[] = {
      "999999999999999 1\n2\n",            // absurd vertex count
      "99999999 1\n2\n",                   // count beyond file size
      "3 99999999\n2\n1 3\n2\n",           // absurd edge count
      "-1 0\n",                            // negative n
      "3 -2\n2\n1 3\n2\n",                 // negative m
      "3 2 011\n2 2 5\n1 1 5 3 4\n",       // truncated (2 of 3 lines)
      "3 2 011\n-1 2 5\n1 1 5 3 4\n3 2 4\n",    // negative vertex weight
      "3 2 011\n2 2 -5\n1 1 -5 3 4\n3 2 4\n",   // negative edge weight
      "3 2 011\n2 2 9999999999999\n1 1 9999999999999 3 4\n3 2 4\n",
      "3 1\n2 3\n1 3\n2 1\n",              // more arcs than header claims
      "3 2\n2\n1\n2\n",                    // fewer arcs than claimed
      "3 1\n2\n1\n\n",                     // blank adjacency line
      "3 1\n4\n\n\n",                      // neighbor out of range
      "3 1\n0\n\n\n",                      // neighbor below 1-based range
      "2 1 1111\n1 1 1 2 1\n1 1 1 1 1\n",  // vsize flag unsupported
      "2 1 011 2\n1 2 1\n1 1 1\n",         // multi-constraint rejected
  };
  for (const char* g : graphs) {
    write(path("g.graph"), g);
    EXPECT_FALSE(graph::read_metis(path("g.graph")))
        << "accepted graph: " << g;
  }
}

TEST_F(IoFuzzTest, RandomBytesNeverCrashAnyReader) {
  util::Rng rng(20260807);
  for (int i = 0; i < 150; ++i) {
    std::string blob(rng.next_below(512), '\0');
    for (auto& c : blob) {
      // Mix printable digits/spaces (so headers sometimes parse) with raw
      // binary, newline-rich so the line readers make progress.
      const auto roll = rng.next_below(4);
      if (roll == 0) c = static_cast<char>('0' + rng.next_below(10));
      else if (roll == 1) c = (rng.next_below(2) != 0u) ? ' ' : '\n';
      else c = static_cast<char>(rng.next_below(256));
    }
    write(path("f.node"), blob);
    write(path("f.ele"), blob);
    write(path("f.graph"), blob);
    mesh::read_triangle_files(path("f"));
    mesh::read_tetgen_files(path("f"));
    graph::read_metis(path("f.graph"));
  }
}

TEST_F(IoFuzzTest, BitFlippedValidFilesNeverCrash) {
  // Start from real writer output so flips explore the accepted grammar's
  // immediate neighborhood, where partial-state bugs would live.
  auto tri = mesh::structured_tri_mesh(4, 4, 0.2, 5);
  ASSERT_TRUE(mesh::write_triangle_files(tri, path("v")));
  std::ifstream nf(path("v.node"), std::ios::binary);
  std::string node((std::istreambuf_iterator<char>(nf)), {});
  std::ifstream ef(path("v.ele"), std::ios::binary);
  std::string ele((std::istreambuf_iterator<char>(ef)), {});

  util::Rng rng(99);
  int accepted = 0;
  for (int i = 0; i < 300; ++i) {
    std::string n = node, e = ele;
    std::string& target = (rng.next_below(2) != 0u) ? n : e;
    const auto flips = 1 + rng.next_below(4);
    for (std::uint64_t f = 0; f < flips; ++f)
      target[rng.next_below(target.size())] =
          static_cast<char>(rng.next_below(256));
    write(path("v.node"), n);
    write(path("v.ele"), e);
    if (mesh::read_triangle_files(path("v"))) ++accepted;
  }
  // Some flips are benign (whitespace, comments) — but a reader that still
  // accepts most mutations is not validating anything.
  EXPECT_LT(accepted, 300);
}

TEST_F(IoFuzzTest, TryBuildersMatchReaderVerdicts) {
  // The readers now route through mesh::try_build_*; spot-check the
  // builders directly so a future reader bypass shows up here.
  const double coords[] = {0, 0, 1, 0, 0, 1};
  const mesh::VertIdx good[] = {0, 1, 2};
  EXPECT_TRUE(mesh::try_build_tri_mesh(coords, good));
  const mesh::VertIdx repeated[] = {0, 1, 1};
  std::string why;
  EXPECT_FALSE(mesh::try_build_tri_mesh(coords, repeated, &why));
  EXPECT_NE(why.find("corner"), std::string::npos);
  const mesh::VertIdx out_of_range[] = {0, 1, 7};
  EXPECT_FALSE(mesh::try_build_tri_mesh(coords, out_of_range, &why));
  EXPECT_FALSE(mesh::try_build_tri_mesh({}, good, &why));
  EXPECT_FALSE(mesh::try_build_tet_mesh(coords, good, &why));
}

}  // namespace
}  // namespace pnr
