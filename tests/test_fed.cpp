// pnr::fed tests (docs/FEDERATION.md): the shard state machine's lifecycle
// guards, coordinator equivalence against the fed-free single-process
// session over real loopback servers, hostile migration payloads answered
// with typed errors on live sessions, checkpoint/restore of federated
// shard sessions, and the quiesce-before-shutdown teardown ordering.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "engine/engine.hpp"
#include "fed/coordinator.hpp"
#include "fed/migrate.hpp"
#include "fed/shard.hpp"
#include "svc/loopback.hpp"
#include "svc/server.hpp"
#include "util/fnv.hpp"

namespace pnr::fed {
namespace {

constexpr engine::Kind kEngine = engine::Kind::kMlkl;

svc::WorkloadSpec small_spec2d(int parts) {
  svc::WorkloadSpec spec;
  spec.kind = svc::WorkloadKind::kTransient2D;
  spec.strategy = pared::Strategy::kPNR;
  spec.parts = parts;
  spec.session_seed = 1;
  spec.transient.steps = 5;
  spec.transient.grid_n = 6;
  spec.transient.max_level = 3;
  spec.engine = static_cast<std::uint8_t>(kEngine);
  return spec;
}

svc::WorkloadSpec small_spec3d(int parts) {
  svc::WorkloadSpec spec;
  spec.kind = svc::WorkloadKind::kTransient3D;
  spec.strategy = pared::Strategy::kPNR;
  spec.parts = parts;
  spec.session_seed = 1;
  spec.transient = pared::TransientRun3D::default_options();
  spec.transient.steps = 3;
  spec.engine = static_cast<std::uint8_t>(kEngine);
  return spec;
}

/// The fed-free baseline: the identical run and session stepped directly,
/// chaining the same (assign_fp, mesh_fp) digest the coordinator chains.
template <typename Run>
std::uint64_t reference_fp(const svc::WorkloadSpec& spec, int rounds) {
  using Mesh = typename CoordinatorT<Run>::Mesh;
  Run run(spec.transient);
  core::PnrOptions popt;
  popt.alpha = spec.alpha;
  popt.beta = spec.beta;
  pared::Session<Mesh> session(spec.strategy, spec.parts, spec.session_seed,
                               popt, kEngine);
  std::uint64_t fp = util::kFnvSeed;
  for (int i = 0; i < rounds && !run.done(); ++i) {
    run.advance();
    session.step(run.mutable_mesh());
    fp = util::fnv1a_value(assignment_fingerprint(session.coarse_assignment()),
                           fp);
    fp = util::fnv1a_value(mesh_fingerprint(run.mesh()), fp);
  }
  return fp;
}

/// N loopback server/client pairs, owned together so tests stay terse.
struct Fleet {
  std::vector<std::unique_ptr<svc::Server>> servers;
  std::vector<std::unique_ptr<svc::Client>> clients;
  std::vector<svc::Client*> daemons;

  explicit Fleet(int n) {
    for (int i = 0; i < n; ++i) {
      servers.push_back(std::make_unique<svc::Server>());
      clients.push_back(std::make_unique<svc::Client>());
      EXPECT_TRUE(svc::connect_loopback(*servers.back(), *clients.back()));
      daemons.push_back(clients.back().get());
    }
  }
};

template <typename Run>
void expect_equivalence(svc::WorkloadSpec spec, int shards, int rounds) {
  spec.parts = shards;
  const std::uint64_t ref = reference_fp<Run>(spec, rounds);

  Fleet fleet(shards);
  CoordinatorT<Run> coord(spec, kEngine, fleet.daemons, {});
  std::string why;
  ASSERT_TRUE(coord.attach(&why)) << why;
  for (int i = 0; i < rounds && !coord.finished(); ++i) {
    const RoundResult r = coord.round();
    ASSERT_TRUE(r.ok) << "round " << (i + 1) << ": " << r.why;
  }
  EXPECT_EQ(coord.rounds(), rounds);
  EXPECT_EQ(coord.trajectory_fingerprint(), ref);
  ASSERT_TRUE(coord.finish(/*shutdown_daemons=*/true, &why)) << why;
}

TEST(FedShard, LifecycleGuardsRejectOutOfOrderCalls) {
  const svc::WorkloadSpec spec = small_spec2d(2);
  Shard2D shard(pared::TransientRun(spec.transient), 0, 2);
  std::string why;
  EXPECT_FALSE(shard.commit(&why).has_value());  // nothing staged
  ASSERT_TRUE(shard.advance(&why).has_value()) << why;

  // The identity plan (every tree stays with its initial owner): stages
  // cleanly, moves nothing, and unblocks the next advance after commit.
  const auto n = static_cast<std::size_t>(2 * spec.transient.grid_n *
                                          spec.transient.grid_n);
  std::vector<part::PartId> same(n);
  for (std::size_t c = 0; c < n; ++c)
    same[c] = static_cast<part::PartId>(c % 2);
  const auto plan = shard.apply_plan(same, &why);
  ASSERT_TRUE(plan.has_value()) << why;
  EXPECT_EQ(plan->elements_out, 0);
  EXPECT_TRUE(plan->outgoing.empty());

  EXPECT_FALSE(shard.advance(&why).has_value());  // staged blocks advance
  EXPECT_FALSE(shard.apply_plan(same, &why).has_value());  // double stage
  ASSERT_TRUE(shard.commit(&why).has_value()) << why;
  EXPECT_TRUE(shard.advance(&why).has_value());  // commit unblocked it

  // A plan of the wrong length cannot stage.
  std::vector<part::PartId> wrong(n + 1, 0);
  EXPECT_FALSE(shard.apply_plan(wrong, &why).has_value());
}

TEST(FedCoordinator, TwoShards2DMatchTheSingleProcessSession) {
  expect_equivalence<pared::TransientRun>(small_spec2d(2), 2, 4);
}

TEST(FedCoordinator, ThreeShards2DMatchTheSingleProcessSession) {
  expect_equivalence<pared::TransientRun>(small_spec2d(3), 3, 4);
}

TEST(FedCoordinator, TwoShards3DMatchTheSingleProcessSession) {
  expect_equivalence<pared::TransientRun3D>(small_spec3d(2), 2, 2);
}

TEST(FedCoordinator, AttachRefusalsAreExplained) {
  std::string why;
  {
    // The server-default engine byte is ambiguous across daemons.
    Fleet fleet(1);
    svc::WorkloadSpec spec = small_spec2d(1);
    spec.engine = svc::kEngineDefault;
    Coordinator2D coord(spec, kEngine, fleet.daemons, {});
    EXPECT_FALSE(coord.attach(&why));
    EXPECT_NE(why.find("engine"), std::string::npos) << why;
  }
  {
    // parts must equal the daemon count (shards are the parts).
    Fleet fleet(1);
    Coordinator2D coord(small_spec2d(3), kEngine, fleet.daemons, {});
    EXPECT_FALSE(coord.attach(&why));
  }
  {
    Fleet fleet(1);
    svc::WorkloadSpec spec = small_spec2d(1);
    spec.strategy = pared::Strategy::kMlklRemap;
    Coordinator2D coord(spec, kEngine, fleet.daemons, {});
    EXPECT_FALSE(coord.attach(&why));
  }
}

TEST(FedRegistry, RejectedSubtreeIsATypedErrorAndTheSessionStaysLive) {
  svc::Server server;
  svc::Client client;
  ASSERT_TRUE(svc::connect_loopback(server, client));
  const svc::WorkloadSpec spec = small_spec2d(2);

  const auto s0 = client.fed_attach(svc::FedAttach{spec, 0, 2});
  const auto s1 = client.fed_attach(svc::FedAttach{spec, 1, 2});
  ASSERT_TRUE(s0);
  ASSERT_TRUE(s1);
  EXPECT_EQ(s0->mesh_fp, s1->mesh_fp);

  ASSERT_TRUE(client.fed_advance(s0->session));
  ASSERT_TRUE(client.fed_advance(s1->session));

  // Move tree 0 (initially owned by shard 0) to shard 1.
  const auto n = static_cast<std::size_t>(2 * spec.transient.grid_n *
                                          spec.transient.grid_n);
  std::vector<part::PartId> next(n);
  for (std::size_t c = 0; c < n; ++c)
    next[c] = static_cast<part::PartId>(c % 2);
  next[0] = 1;
  const auto plan0 = client.fed_plan(s0->session, next);
  ASSERT_TRUE(plan0);
  ASSERT_FALSE(plan0->outgoing.empty());
  const auto plan1 = client.fed_plan(s1->session, next);
  ASSERT_TRUE(plan1);
  EXPECT_TRUE(plan1->outgoing.empty());

  // A corrupted subtree must be refused with kAuditFailed — and because
  // exchange is pure validation, the session survives untouched.
  std::vector<svc::FedTree> bad = plan0->outgoing;
  bad[0].payload[bad[0].payload.size() / 2] ^= 0x01;
  EXPECT_FALSE(client.fed_exchange(s1->session, 0, bad));
  EXPECT_EQ(client.last_error().code, svc::Err::kAuditFailed);

  // The pristine payload is accepted by the same, still-live session.
  const auto accepted = client.fed_exchange(s1->session, 0, plan0->outgoing);
  ASSERT_TRUE(accepted);
  EXPECT_EQ(accepted->accepted,
            static_cast<std::int64_t>(plan0->outgoing.size()));
  EXPECT_GT(accepted->leaves_in, 0);

  const auto c0 = client.fed_commit(s0->session);
  const auto c1 = client.fed_commit(s1->session);
  ASSERT_TRUE(c0);
  ASSERT_TRUE(c1);
  EXPECT_EQ(c0->assign_fp, c1->assign_fp);
  EXPECT_EQ(c0->mesh_fp, c1->mesh_fp);
  EXPECT_EQ(c0->elements, c1->elements);
  EXPECT_EQ(c0->owned_leaves + c1->owned_leaves, c0->elements);
}

TEST(FedCheckpoint, RestoreReplaysAFederatedShard) {
  svc::Server server;
  svc::Client client;
  ASSERT_TRUE(svc::connect_loopback(server, client));

  const auto created =
      client.fed_attach(svc::FedAttach{small_spec2d(2), 0, 2});
  ASSERT_TRUE(created);
  ASSERT_TRUE(client.fed_advance(created->session));
  ASSERT_TRUE(client.fed_advance(created->session));

  const auto ckpt = client.checkpoint(created->session);
  ASSERT_TRUE(ckpt);
  const auto restored = client.restore(*ckpt);
  ASSERT_TRUE(restored);
  EXPECT_NE(restored->session, created->session);
  EXPECT_EQ(restored->replayed, 2u);  // the two fed advances

  // Both sessions now step in lockstep: identical replicas, bit for bit.
  const auto a = client.fed_advance(created->session);
  const auto b = client.fed_advance(restored->session);
  ASSERT_TRUE(a);
  ASSERT_TRUE(b);
  EXPECT_EQ(a->step, b->step);
  EXPECT_EQ(a->elements, b->elements);
  EXPECT_EQ(a->mesh_fp, b->mesh_fp);
}

TEST(FedCoordinator, FinishClosesShardSessionsBeforeAnyShutdown) {
  svc::WorkloadSpec spec = small_spec2d(2);
  Fleet fleet(2);
  Coordinator2D coord(spec, kEngine, fleet.daemons, {});
  std::string why;
  ASSERT_TRUE(coord.attach(&why)) << why;
  ASSERT_TRUE(coord.round().ok);

  // finish(false): sessions are quiesced and closed, daemons stay up.
  ASSERT_TRUE(coord.finish(/*shutdown_daemons=*/false, &why)) << why;
  for (svc::Client* c : fleet.daemons) {
    const auto sessions = c->list_sessions();
    ASSERT_TRUE(sessions);
    EXPECT_TRUE(sessions->empty());
    EXPECT_TRUE(c->ping());  // still serving — shutdown was not requested
  }
}

}  // namespace
}  // namespace pnr::fed
