// pnr::svc tests: wire framing, payload codecs, registry semantics, and the
// parity gates — a client driving a real Server through a socketpair must
// produce bit-identical StepReports to an in-process pared::Session, and a
// checkpoint restored mid-run must resume to identical reports.

#include <gtest/gtest.h>

#include <cstring>

#include "engine/engine.hpp"
#include "mesh/dual.hpp"
#include "mesh/generate.hpp"
#include "svc/codec.hpp"
#include "svc/loopback.hpp"
#include "svc/registry.hpp"
#include "svc/server.hpp"
#include "svc/wire.hpp"

namespace pnr::svc {
namespace {

void expect_report_eq(const pared::StepReport& a, const pared::StepReport& b) {
  EXPECT_EQ(a.elements, b.elements);
  EXPECT_EQ(a.cut_prev, b.cut_prev);
  EXPECT_EQ(a.cut_new, b.cut_new);
  EXPECT_EQ(a.shared_vertices, b.shared_vertices);
  EXPECT_EQ(a.migrated, b.migrated);
  EXPECT_EQ(a.migrated_remapped, b.migrated_remapped);
  // Bitwise: the service runs the identical deterministic code path.
  EXPECT_EQ(std::memcmp(&a.imbalance, &b.imbalance, sizeof(double)), 0);
}

std::optional<ErrorInfo> error_of(const Reply& reply) {
  if (reply.type != kTypeError) return std::nullopt;
  return decode_error(reply.payload);
}

// ---- wire -------------------------------------------------------------------

TEST(SvcWire, Crc32MatchesTheIeeeCheckValue) {
  const char* check = "123456789";
  EXPECT_EQ(crc32(reinterpret_cast<const std::uint8_t*>(check), 9),
            0xCBF43926u);
  EXPECT_EQ(crc32(nullptr, 0), 0u);
}

TEST(SvcWire, FrameRoundTrips) {
  const Bytes payload{1, 2, 3, 4, 5};
  const Bytes frame = encode_frame(kOpStep, payload);
  ASSERT_EQ(frame.size(), kHeaderBytes + payload.size());
  const auto h = decode_header(frame.data());
  ASSERT_TRUE(h);
  EXPECT_EQ(h->version, kWireVersion);
  EXPECT_EQ(h->type, kOpStep);
  EXPECT_EQ(h->payload_len, payload.size());
  EXPECT_EQ(h->payload_crc, crc32(payload));
}

TEST(SvcWire, BadMagicIsRejected) {
  Bytes frame = encode_frame(kOpPing, Bytes{});
  frame[0] ^= 0xff;
  EXPECT_FALSE(decode_header(frame.data()));
}

TEST(SvcWire, ErrorPayloadRoundTrips) {
  const Bytes payload = encode_error(Err::kUnknownSession, "no session 7");
  const auto info = decode_error(payload);
  ASSERT_TRUE(info);
  EXPECT_EQ(info->code, Err::kUnknownSession);
  EXPECT_EQ(info->detail, "no session 7");
  EXPECT_STREQ(err_name(info->code), "unknown_session");
}

// ---- codec ------------------------------------------------------------------

TEST(SvcCodec, MeshRoundTripsThroughFlattening) {
  const auto mesh = mesh::structured_tri_mesh(4, 4, 0.25, 3);
  const FlatMesh flat = flatten_mesh(mesh);
  par::Writer w;
  encode_mesh(w, flat);
  const Bytes bytes = w.take();
  par::TryReader r(bytes);
  const auto decoded = decode_mesh(r, Limits{});
  ASSERT_TRUE(decoded);
  EXPECT_TRUE(r.done());
  EXPECT_EQ(decoded->dim, 2);
  EXPECT_EQ(decoded->coords, flat.coords);
  EXPECT_EQ(decoded->elems, flat.elems);
  const auto rebuilt = build_tri_mesh(*decoded);
  ASSERT_TRUE(rebuilt);
  EXPECT_EQ(rebuilt->num_leaves(), mesh.num_leaves());
}

TEST(SvcCodec, TetMeshRoundTrips) {
  const auto mesh = mesh::structured_tet_mesh(2, 2, 2, 0.2, 5);
  const FlatMesh flat = flatten_mesh(mesh);
  const auto rebuilt = build_tet_mesh(flat);
  ASSERT_TRUE(rebuilt);
  EXPECT_EQ(rebuilt->num_leaves(), mesh.num_leaves());
}

TEST(SvcCodec, HostileMeshesAreRejectedWithoutAborting) {
  std::string why;
  {  // repeated corner
    FlatMesh m{2, {0, 0, 1, 0, 0, 1}, {0, 0, 1}};
    EXPECT_FALSE(build_tri_mesh(m, &why));
  }
  {  // zero area
    FlatMesh m{2, {0, 0, 1, 0, 2, 0}, {0, 1, 2}};
    EXPECT_FALSE(build_tri_mesh(m, &why));
  }
  {  // index out of range
    FlatMesh m{2, {0, 0, 1, 0, 0, 1}, {0, 1, 7}};
    EXPECT_FALSE(build_tri_mesh(m, &why));
  }
  {  // non-finite coordinate
    FlatMesh m{2, {0, 0, 1, 0, 0, 1e301}, {0, 1, 2}};
    m.coords[5] = m.coords[5] * 1e10;  // inf
    EXPECT_FALSE(build_tri_mesh(m, &why));
  }
  {  // non-manifold edge: three triangles on edge {0,1}
    FlatMesh m{2,
               {0, 0, 1, 0, 0, 1, 1, 1, -1, -1},
               {0, 1, 2, 0, 1, 3, 0, 1, 4}};
    EXPECT_FALSE(build_tri_mesh(m, &why));
    EXPECT_NE(why.find("manifold"), std::string::npos);
  }
  {  // degenerate tet
    FlatMesh m{3, {0, 0, 0, 1, 0, 0, 0, 1, 0, 1, 1, 0}, {0, 1, 2, 3}};
    EXPECT_FALSE(build_tet_mesh(m, &why));
  }
}

TEST(SvcCodec, GraphRoundTripsAndHostileCsrIsRejected) {
  const auto mesh = mesh::structured_tri_mesh(4, 4, 0.25, 1);
  const graph::Graph g = mesh::fine_dual_graph(mesh).graph;
  par::Writer w;
  encode_graph(w, g);
  const Bytes bytes = w.take();
  par::TryReader r(bytes);
  std::string why;
  const auto decoded = decode_graph(r, Limits{}, &why);
  ASSERT_TRUE(decoded) << why;
  EXPECT_TRUE(r.done());
  EXPECT_EQ(decoded->num_vertices(), g.num_vertices());
  EXPECT_EQ(decoded->adjncy(), g.adjncy());

  {  // asymmetric: claims edge 0->1 but not 1->0
    par::Writer bad;
    bad.put_vector(std::vector<std::int64_t>{0, 1, 1, 1});
    bad.put_vector(std::vector<graph::VertexId>{1});
    bad.put_vector(std::vector<graph::Weight>{1});
    bad.put_vector(std::vector<graph::Weight>{1, 1, 1});
    const Bytes b = bad.take();
    par::TryReader br(b);
    EXPECT_FALSE(decode_graph(br, Limits{}, &why));
  }
  {  // non-monotone xadj
    par::Writer bad;
    bad.put_vector(std::vector<std::int64_t>{0, 2, 1, 2});
    bad.put_vector(std::vector<graph::VertexId>{1, 0});
    bad.put_vector(std::vector<graph::Weight>{1, 1});
    bad.put_vector(std::vector<graph::Weight>{1, 1, 1});
    const Bytes b = bad.take();
    par::TryReader br(b);
    EXPECT_FALSE(decode_graph(br, Limits{}, &why));
  }
  {  // neighbor id out of range
    par::Writer bad;
    bad.put_vector(std::vector<std::int64_t>{0, 1, 2});
    bad.put_vector(std::vector<graph::VertexId>{9, 0});
    bad.put_vector(std::vector<graph::Weight>{1, 1});
    bad.put_vector(std::vector<graph::Weight>{1, 1});
    const Bytes b = bad.take();
    par::TryReader br(b);
    EXPECT_FALSE(decode_graph(br, Limits{}, &why));
  }
}

TEST(SvcCodec, WorkloadSpecRoundTripsAndValidates) {
  WorkloadSpec spec;
  spec.kind = WorkloadKind::kTransient3D;
  spec.strategy = pared::Strategy::kMlklRemap;
  spec.parts = 12;
  spec.session_seed = 99;
  spec.transient.steps = 17;
  spec.transient.grid_n = 9;
  spec.alpha = 0.25;
  par::Writer w;
  encode_workload_spec(w, spec);
  const Bytes bytes = w.take();
  par::TryReader r(bytes);
  const auto decoded = decode_workload_spec(r, Limits{});
  ASSERT_TRUE(decoded);
  EXPECT_TRUE(r.done());
  EXPECT_EQ(decoded->kind, spec.kind);
  EXPECT_EQ(decoded->strategy, spec.strategy);
  EXPECT_EQ(decoded->parts, spec.parts);
  EXPECT_EQ(decoded->session_seed, spec.session_seed);
  EXPECT_EQ(decoded->transient.steps, spec.transient.steps);
  EXPECT_EQ(decoded->transient.grid_n, spec.transient.grid_n);
  EXPECT_EQ(decoded->alpha, spec.alpha);

  // Hostile knobs that would explode the server are rejected.
  auto reject = [](WorkloadSpec s) {
    par::Writer bw;
    encode_workload_spec(bw, s);
    const Bytes b = bw.take();
    par::TryReader br(b);
    return !decode_workload_spec(br, Limits{});
  };
  WorkloadSpec s = spec;
  s.transient.refine_threshold = 0.0;  // refine-everything forever
  EXPECT_TRUE(reject(s));
  s = spec;
  s.transient.max_level = 60;
  EXPECT_TRUE(reject(s));
  s = spec;
  s.parts = 0;
  EXPECT_TRUE(reject(s));
  s = spec;
  s.transient.t_end = s.transient.t_begin - 1;
  EXPECT_TRUE(reject(s));
}

TEST(SvcCodec, StepReportRoundTrips) {
  pared::StepReport report;
  report.elements = 123;
  report.cut_prev = 45;
  report.cut_new = 44;
  report.shared_vertices = 46;
  report.migrated = 7;
  report.migrated_remapped = 5;
  report.imbalance = 0.0123;
  par::Writer w;
  encode_step_report(w, report);
  const Bytes bytes = w.take();
  par::TryReader r(bytes);
  const auto decoded = decode_step_report(r);
  ASSERT_TRUE(decoded);
  EXPECT_TRUE(r.done());
  expect_report_eq(*decoded, report);
}

// ---- registry ---------------------------------------------------------------

Bytes id_payload(std::uint32_t id) {
  par::Writer w;
  w.put(id);
  return w.take();
}

TEST(SvcRegistry, PingEchoes) {
  Registry registry;
  const Bytes payload{9, 8, 7};
  const Reply reply = registry.handle(kOpPing, payload);
  EXPECT_EQ(reply.type, kOpPing | kReplyBit);
  EXPECT_EQ(reply.payload, payload);
}

TEST(SvcRegistry, UnknownOpAndSessionsAreTypedErrors) {
  Registry registry;
  auto e = error_of(registry.handle(700, Bytes{}));
  ASSERT_TRUE(e);
  EXPECT_EQ(e->code, Err::kBadOp);

  e = error_of(registry.handle(kOpStep, id_payload(42)));
  ASSERT_TRUE(e);
  EXPECT_EQ(e->code, Err::kUnknownSession);

  e = error_of(registry.handle(kOpStep, Bytes{1, 2}));  // truncated id
  ASSERT_TRUE(e);
  EXPECT_EQ(e->code, Err::kBadPayload);

  e = error_of(registry.handle(kOpCreateWorkload, Bytes{0xff, 0xff}));
  ASSERT_TRUE(e);
  EXPECT_EQ(e->code, Err::kBadPayload);
  EXPECT_EQ(registry.num_sessions(), 0u);
}

WorkloadSpec small_transient2d() {
  WorkloadSpec spec;
  spec.kind = WorkloadKind::kTransient2D;
  spec.strategy = pared::Strategy::kPNR;
  spec.parts = 4;
  spec.session_seed = 7;
  spec.transient.steps = 8;
  spec.transient.grid_n = 10;
  spec.transient.max_level = 4;
  return spec;
}

std::uint32_t must_create(Registry& registry, const WorkloadSpec& spec) {
  par::Writer w;
  encode_workload_spec(w, spec);
  const Reply reply = registry.handle(kOpCreateWorkload, w.take());
  EXPECT_EQ(reply.type, kOpCreateWorkload | kReplyBit);
  par::TryReader r(reply.payload);
  const auto id = r.get<std::uint32_t>();
  EXPECT_TRUE(id);
  return id ? *id : 0;
}

TEST(SvcRegistry, SessionLimitIsEnforced) {
  Limits limits;
  limits.max_sessions = 1;
  Registry registry(limits);
  must_create(registry, small_transient2d());
  par::Writer w;
  encode_workload_spec(w, small_transient2d());
  const auto e = error_of(registry.handle(kOpCreateWorkload, w.take()));
  ASSERT_TRUE(e);
  EXPECT_EQ(e->code, Err::kLimitExceeded);
}

TEST(SvcRegistry, AdaptIsRefusedOnWorkloadSessions) {
  Registry registry;
  const auto id = must_create(registry, small_transient2d());
  par::Writer w;
  w.put(id);
  w.put(std::uint8_t{0});
  w.put_vector(std::vector<mesh::ElemIdx>{0, 1});
  const auto e = error_of(registry.handle(kOpAdapt, w.take()));
  ASSERT_TRUE(e);
  EXPECT_EQ(e->code, Err::kBadState);
}

TEST(SvcRegistry, ExplosiveTransientSpecsAreRejectedBeforeConstruction) {
  // These specs pass the codec's generic range checks, but full refinement
  // to the depth cap would blow far past max_elements — and a TransientRun
  // refines inside its constructor, before any post-construction check can
  // run. The registry must reject them from the spec alone.
  Registry registry;
  const auto reject = [&](WorkloadSpec spec) {
    spec.parts = 2;
    spec.transient.refine_threshold = 1e-9;  // marks essentially every leaf
    par::Writer w;
    encode_workload_spec(w, spec);
    const auto e = error_of(registry.handle(kOpCreateWorkload, w.take()));
    ASSERT_TRUE(e);
    EXPECT_EQ(e->code, Err::kLimitExceeded);
  };
  WorkloadSpec spec2d;
  spec2d.kind = WorkloadKind::kTransient2D;
  spec2d.transient.grid_n = 128;
  spec2d.transient.max_level = 16;
  reject(spec2d);
  WorkloadSpec spec3d;
  spec3d.kind = WorkloadKind::kTransient3D;
  spec3d.transient.grid_n = 24;
  spec3d.transient.max_level = 8;
  reject(spec3d);
  EXPECT_EQ(registry.num_sessions(), 0u);
}

TEST(SvcRegistry, ShutdownStopsFurtherWork) {
  Registry registry;
  EXPECT_EQ(registry.handle(kOpShutdown, Bytes{}).type,
            kOpShutdown | kReplyBit);
  EXPECT_TRUE(registry.shutting_down());
  const auto e = error_of(registry.handle(kOpListSessions, Bytes{}));
  ASSERT_TRUE(e);
  EXPECT_EQ(e->code, Err::kShuttingDown);
}

TEST(SvcRegistry, OplogOverflowDisablesCheckpointing) {
  Limits limits;
  limits.max_oplog_entries = 2;
  Registry registry(limits);
  const auto id = must_create(registry, small_transient2d());
  for (int i = 0; i < 3; ++i) {
    const Reply r = registry.handle(kOpAdvance, id_payload(id));
    ASSERT_EQ(r.type, kOpAdvance | kReplyBit);
  }
  const auto e = error_of(registry.handle(kOpCheckpoint, id_payload(id)));
  ASSERT_TRUE(e);
  EXPECT_EQ(e->code, Err::kBadState);
  // The session itself is still perfectly usable.
  EXPECT_EQ(registry.handle(kOpStep, id_payload(id)).type,
            kOpStep | kReplyBit);
}

// ---- loopback server + parity gates ----------------------------------------

TEST(SvcServer, ErrorGradingOverTheWire) {
  Server server;
  const int fd = adopt_loopback_raw(server);
  ASSERT_GE(fd, 0);

  // Bad CRC: typed error, connection stays up.
  Bytes frame = encode_frame(kOpListSessions, Bytes{});
  frame[12] ^= 0xff;
  ASSERT_TRUE(raw_send(fd, frame, server));
  Bytes in;
  ASSERT_TRUE(raw_recv(fd, in, server));
  ASSERT_GE(in.size(), kHeaderBytes);
  auto h = decode_header(in.data());
  ASSERT_TRUE(h);
  EXPECT_EQ(h->type, kTypeError);
  {
    const Bytes body(in.begin() + kHeaderBytes,
                     in.begin() + kHeaderBytes + h->payload_len);
    const auto info = decode_error(body);
    ASSERT_TRUE(info);
    EXPECT_EQ(info->code, Err::kBadCrc);
  }

  // Bad version: typed error, connection stays up.
  in.clear();
  frame = encode_frame(kOpListSessions, Bytes{});
  frame[4] = 0x7f;
  ASSERT_TRUE(raw_send(fd, frame, server));
  ASSERT_TRUE(raw_recv(fd, in, server));
  ASSERT_GE(in.size(), kHeaderBytes);
  h = decode_header(in.data());
  ASSERT_TRUE(h);
  EXPECT_EQ(h->type, kTypeError);

  // A good frame still works on the same connection.
  in.clear();
  ASSERT_TRUE(raw_send(fd, encode_frame(kOpPing, Bytes{1}), server));
  ASSERT_TRUE(raw_recv(fd, in, server));
  ASSERT_GE(in.size(), kHeaderBytes);
  h = decode_header(in.data());
  ASSERT_TRUE(h);
  EXPECT_EQ(h->type, kOpPing | kReplyBit);

  // Bad magic: the stream is not speaking the protocol — connection closed.
  in.clear();
  Bytes junk{'G', 'E', 'T', ' ', '/', '\r', '\n'};
  junk.resize(64, 0);
  raw_send(fd, junk, server);
  bool open = true;
  for (int i = 0; i < 10 && open; ++i) open = raw_recv(fd, in, server);
  EXPECT_FALSE(open);
  EXPECT_EQ(server.num_connections(), 0u);
  raw_close(fd);
}

TEST(SvcServer, ClientRoundTripsOverSocketpair) {
  Server server;
  Client client;
  ASSERT_TRUE(connect_loopback(server, client));
  EXPECT_TRUE(client.ping());

  const auto created = client.create_workload(small_transient2d());
  ASSERT_TRUE(created);
  EXPECT_GT(created->elements, 0);

  const auto sessions = client.list_sessions();
  ASSERT_TRUE(sessions);
  ASSERT_EQ(sessions->size(), 1u);
  EXPECT_EQ((*sessions)[0].session, created->session);
  EXPECT_EQ((*sessions)[0].kind, "transient2d");

  const auto metrics = client.get_metrics(created->session);
  ASSERT_TRUE(metrics);
  EXPECT_EQ(metrics->kind, "transient2d");
  EXPECT_EQ(metrics->parts, 4);
  EXPECT_FALSE(metrics->last_report);

  ASSERT_TRUE(client.close_session(created->session));
  EXPECT_FALSE(client.get_metrics(created->session));
  EXPECT_EQ(client.last_error().code, Err::kUnknownSession);

  EXPECT_TRUE(client.shutdown_server());
}

TEST(SvcServer, UnreadReplyBacklogThrottlesWithoutLosingReplies) {
  // A client that pipelines many requests but reads nothing must not grow
  // conn.out without bound: past max_output_backlog the server parks the
  // remaining requests and stops reading. Once the client drains, every
  // parked request must still be answered, in order.
  ServerOptions options;
  options.max_output_backlog = 256u << 10;
  Server server(options);
  const int fd = adopt_loopback_raw(server);
  ASSERT_GE(fd, 0);

  // A session whose assignment reply (~80 KiB) dwarfs its 20-byte request:
  // a small pipelined burst — which always fits the socket buffer — makes
  // replies pile up far past the cap.
  WorkloadSpec spec;
  spec.kind = WorkloadKind::kTransient2D;
  spec.parts = 2;
  spec.transient.grid_n = 100;
  spec.transient.max_level = 1;
  par::Writer sw;
  encode_workload_spec(sw, spec);
  ASSERT_TRUE(
      raw_send(fd, encode_frame(kOpCreateWorkload, sw.take()), server));
  Bytes in;
  while (in.size() < kHeaderBytes + 12)
    ASSERT_TRUE(raw_recv(fd, in, server));
  auto h = decode_header(in.data());
  ASSERT_TRUE(h);
  ASSERT_EQ(h->type, kOpCreateWorkload | kReplyBit);
  par::TryReader cr(in.data() + kHeaderBytes, h->payload_len);
  const auto session = cr.get<std::uint32_t>();
  ASSERT_TRUE(session);
  in.clear();

  constexpr int kRequests = 50;
  par::Writer rw;
  rw.put(*session);
  const Bytes request = encode_frame(kOpGetAssignment, rw.take());
  Bytes burst;
  for (int i = 0; i < kRequests; ++i)
    burst.insert(burst.end(), request.begin(), request.end());
  ASSERT_TRUE(raw_send(fd, burst, server));
  for (int i = 0; i < 4; ++i) server.poll_once(0);
  EXPECT_EQ(server.num_connections(), 1u);  // throttled, not closed

  while (in.size() < kHeaderBytes) ASSERT_TRUE(raw_recv(fd, in, server));
  h = decode_header(in.data());
  ASSERT_TRUE(h);
  ASSERT_EQ(h->type, kOpGetAssignment | kReplyBit);
  const std::size_t reply_size = kHeaderBytes + h->payload_len;
  const std::size_t want = kRequests * reply_size;
  for (int spin = 0; spin < 100000 && in.size() < want; ++spin)
    ASSERT_TRUE(raw_recv(fd, in, server));
  ASSERT_EQ(in.size(), want);
  for (int i = 0; i < kRequests; ++i) {
    const auto rh = decode_header(in.data() + i * reply_size);
    ASSERT_TRUE(rh);
    EXPECT_EQ(rh->type, kOpGetAssignment | kReplyBit);
    EXPECT_EQ(rh->payload_len, reply_size - kHeaderBytes);
  }
  EXPECT_EQ(server.num_connections(), 1u);
  raw_close(fd);
}

TEST(SvcClient, ShortReplyBodiesAreRejectedNotDereferenced) {
  // TryReader::get() does not consume bytes on failure, so a truncated
  // reply can fail its wide fields while a narrower later field still
  // decodes. The client must reject such bodies instead of dereferencing
  // the failed optionals (historically UB on a hostile/corrupted server).
  Client client;
  const int fd = adopt_client_raw(client);
  ASSERT_GE(fd, 0);

  // repartition reply of 4 bytes: all five i64/f64 fields fail, the
  // trailing i32 `levels` succeeds.
  {
    par::Writer w;
    w.put(std::int32_t{3});
    ASSERT_TRUE(
        raw_write(fd, encode_frame(kOpRepartition | kReplyBit, w.take())));
    EXPECT_FALSE(client.repartition(7));
  }
  // restore reply of 8 bytes: id and replayed decode, elements does not,
  // and the reader still reports done().
  {
    par::Writer w;
    w.put(std::uint32_t{1});
    w.put(std::uint32_t{2});
    ASSERT_TRUE(raw_write(fd, encode_frame(kOpRestore | kReplyBit, w.take())));
    EXPECT_FALSE(client.restore(Bytes{}));
  }
  // created reply of 11 bytes: id decodes, elements does not, and a stray
  // trailing i32 would satisfy neither done() nor the field checks.
  {
    par::Writer w;
    w.put(std::uint32_t{1});
    w.put(std::int32_t{0});
    ASSERT_TRUE(
        raw_write(fd, encode_frame(kOpCreateWorkload | kReplyBit, w.take())));
    EXPECT_FALSE(client.create_workload(WorkloadSpec{}));
  }
  raw_close(fd);
}

TEST(SvcParity, Transient2DOverTheWireIsBitIdentical) {
  const WorkloadSpec spec = small_transient2d();
  constexpr int kSteps = 3;

  // In-process reference, mirroring the registry's deferred-metrics setup:
  // step reports carry only the cheap fields; metrics() settles the rest.
  std::vector<pared::StepReport> expected;
  pared::StepReport expected_full;
  {
    pared::TransientRun run(spec.transient);
    pared::Session2D session(spec.strategy, spec.parts, spec.session_seed);
    session.set_defer_metrics(true);
    for (int i = 0; i < kSteps; ++i) {
      run.advance();
      expected.push_back(session.step(run.mutable_mesh()));
    }
    expected_full = session.metrics(run.mesh());
  }

  Server server;
  Client client;
  ASSERT_TRUE(connect_loopback(server, client));
  const auto created = client.create_workload(spec);
  ASSERT_TRUE(created);
  for (int i = 0; i < kSteps; ++i) {
    ASSERT_TRUE(client.advance(created->session));
    const auto report = client.step(created->session);
    ASSERT_TRUE(report);
    expect_report_eq(*report, expected[static_cast<std::size_t>(i)]);
  }

  // And the exported assignment matches the element tags the in-process
  // session would carry: same length as leaves, all parts within range.
  const auto assign = client.get_assignment(created->session);
  ASSERT_TRUE(assign);
  const auto metrics = client.get_metrics(created->session);
  ASSERT_TRUE(metrics);
  EXPECT_EQ(static_cast<std::int64_t>(assign->size()), metrics->elements);
  // get_metrics settles the deferred quantities — bit-identical to the
  // in-process session's metrics().
  ASSERT_TRUE(metrics->last_report);
  expect_report_eq(*metrics->last_report, expected_full);
  for (const auto p : *assign) {
    EXPECT_GE(p, 0);
    EXPECT_LT(p, spec.parts);
  }
}

TEST(SvcParity, Transient3DOverTheWireIsBitIdentical) {
  WorkloadSpec spec;
  spec.kind = WorkloadKind::kTransient3D;
  spec.strategy = pared::Strategy::kPNR;
  spec.parts = 4;
  spec.session_seed = 11;
  spec.transient = pared::TransientRun3D::default_options();
  spec.transient.steps = 8;
  spec.transient.grid_n = 5;
  constexpr int kSteps = 2;

  std::vector<pared::StepReport> expected;
  {
    pared::TransientRun3D run(spec.transient);
    pared::Session3D session(spec.strategy, spec.parts, spec.session_seed);
    session.set_defer_metrics(true);
    for (int i = 0; i < kSteps; ++i) {
      run.advance();
      expected.push_back(session.step(run.mutable_mesh()));
    }
  }

  Server server;
  Client client;
  ASSERT_TRUE(connect_loopback(server, client));
  const auto created = client.create_workload(spec);
  ASSERT_TRUE(created);
  for (int i = 0; i < kSteps; ++i) {
    ASSERT_TRUE(client.advance(created->session));
    const auto report = client.step(created->session);
    ASSERT_TRUE(report);
    expect_report_eq(*report, expected[static_cast<std::size_t>(i)]);
  }
}

TEST(SvcParity, MlklRemapStrategyAlsoMatches) {
  WorkloadSpec spec = small_transient2d();
  spec.strategy = pared::Strategy::kMlklRemap;
  constexpr int kSteps = 2;

  std::vector<pared::StepReport> expected;
  {
    pared::TransientRun run(spec.transient);
    pared::Session2D session(spec.strategy, spec.parts, spec.session_seed);
    session.set_defer_metrics(true);
    for (int i = 0; i < kSteps; ++i) {
      run.advance();
      expected.push_back(session.step(run.mutable_mesh()));
    }
  }

  Server server;
  Client client;
  ASSERT_TRUE(connect_loopback(server, client));
  const auto created = client.create_workload(spec);
  ASSERT_TRUE(created);
  for (int i = 0; i < kSteps; ++i) {
    ASSERT_TRUE(client.advance(created->session));
    const auto report = client.step(created->session);
    ASSERT_TRUE(report);
    expect_report_eq(*report, expected[static_cast<std::size_t>(i)]);
  }
}

TEST(SvcCheckpoint, RestoreMidRunResumesToIdenticalReports) {
  Server server;
  Client client;
  ASSERT_TRUE(connect_loopback(server, client));
  const auto created = client.create_workload(small_transient2d());
  ASSERT_TRUE(created);

  // Two steps in, take a checkpoint.
  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE(client.advance(created->session));
    ASSERT_TRUE(client.step(created->session));
  }
  const auto ckpt = client.checkpoint(created->session);
  ASSERT_TRUE(ckpt);

  // Continue the original for two more steps.
  std::vector<pared::StepReport> expected;
  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE(client.advance(created->session));
    const auto report = client.step(created->session);
    ASSERT_TRUE(report);
    expected.push_back(*report);
  }

  // Restore the checkpoint: replay must land exactly where the original was.
  const auto restored = client.restore(*ckpt);
  ASSERT_TRUE(restored);
  EXPECT_NE(restored->session, created->session);
  EXPECT_EQ(restored->replayed, 4u);  // 2 advances + 2 steps

  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE(client.advance(restored->session));
    const auto report = client.step(restored->session);
    ASSERT_TRUE(report);
    expect_report_eq(*report, expected[static_cast<std::size_t>(i)]);
  }

  // The restored session can itself be checkpointed.
  EXPECT_TRUE(client.checkpoint(restored->session));
}

TEST(SvcCheckpoint, HostileCheckpointsAreRejected) {
  Registry registry;
  auto e = error_of(registry.handle(kOpRestore, Bytes{1, 2, 3}));
  ASSERT_TRUE(e);
  EXPECT_EQ(e->code, Err::kBadPayload);

  // A checkpoint replaying a non-mutating op is refused outright.
  par::Writer w;
  w.put(std::uint16_t{kOpCreateWorkload});
  par::Writer inner;
  encode_workload_spec(inner, small_transient2d());
  w.put_vector(inner.take());
  w.put(std::uint32_t{1});
  w.put(std::uint16_t{kOpShutdown});
  w.put_vector(Bytes{});
  e = error_of(registry.handle(kOpRestore, w.take()));
  ASSERT_TRUE(e);
  EXPECT_EQ(e->code, Err::kBadPayload);
  EXPECT_EQ(registry.num_sessions(), 0u);
}

// ---- uploaded meshes and graphs --------------------------------------------

TEST(SvcUpload, MeshSessionSupportsAdaptAndStep) {
  Server server;
  Client client;
  ASSERT_TRUE(connect_loopback(server, client));

  const auto mesh = mesh::structured_tri_mesh(6, 6, 0.25, 2);
  CreateHead head;
  head.strategy = pared::Strategy::kMlkl;
  head.parts = 4;
  const auto created = client.create_mesh(head, flatten_mesh(mesh));
  ASSERT_TRUE(created);
  EXPECT_EQ(created->elements, mesh.num_leaves());

  const auto first = client.step(created->session);
  ASSERT_TRUE(first);
  EXPECT_EQ(first->elements, mesh.num_leaves());

  const auto adapted =
      client.adapt(created->session, 0, std::vector<mesh::ElemIdx>{0, 1, 2});
  ASSERT_TRUE(adapted);
  EXPECT_GT(adapted->changed, 0);
  EXPECT_GT(adapted->elements, created->elements);

  const auto second = client.step(created->session);
  ASSERT_TRUE(second);
  EXPECT_EQ(second->elements, adapted->elements);
  EXPECT_GT(second->migrated, -1);

  // Out-of-range marks are a typed error, not an abort.
  EXPECT_FALSE(client.adapt(created->session, 0,
                            std::vector<mesh::ElemIdx>{1 << 30}));
  EXPECT_EQ(client.last_error().code, Err::kBadPayload);
}

TEST(SvcUpload, GraphSessionRepartitions) {
  Server server;
  Client client;
  ASSERT_TRUE(connect_loopback(server, client));

  const auto mesh = mesh::structured_tri_mesh(8, 8, 0.25, 4);
  const graph::Graph g = mesh::fine_dual_graph(mesh).graph;
  CreateHead head;
  head.parts = 4;
  const auto created = client.create_graph(head, g);
  ASSERT_TRUE(created);
  EXPECT_EQ(created->elements, g.num_vertices());

  const auto assign = client.get_assignment(created->session);
  ASSERT_TRUE(assign);
  EXPECT_EQ(assign->size(), static_cast<std::size_t>(g.num_vertices()));

  const auto info = client.repartition(created->session);
  ASSERT_TRUE(info);
  EXPECT_GE(info->cut_before, 0);
  EXPECT_GE(info->cut_after, 0);

  const auto metrics = client.get_metrics(created->session);
  ASSERT_TRUE(metrics);
  EXPECT_EQ(metrics->kind, "graph");
  ASSERT_TRUE(metrics->last_repartition);
  EXPECT_EQ(metrics->last_repartition->cut_after, info->cut_after);

  // A non-PNR strategy on a graph session is refused.
  CreateHead bad = head;
  bad.strategy = pared::Strategy::kRSB;
  EXPECT_FALSE(client.create_graph(bad, g));
  EXPECT_EQ(client.last_error().code, Err::kBadPayload);
}

TEST(SvcUpload, DisconnectedGraphIsRefused) {
  Server server;
  Client client;
  ASSERT_TRUE(connect_loopback(server, client));
  // Two disjoint edges: {0,1} and {2,3}.
  graph::Graph g({0, 1, 2, 3, 4}, {1, 0, 3, 2}, {1, 1, 1, 1}, {1, 1, 1, 1});
  CreateHead head;
  head.parts = 2;
  EXPECT_FALSE(client.create_graph(head, g));
  EXPECT_EQ(client.last_error().code, Err::kBadPayload);
}

// ---- engines ----------------------------------------------------------------

std::uint8_t wire_engine(engine::Kind k) { return static_cast<std::uint8_t>(k); }

TEST(SvcEngine, WorkloadSessionRunsTheRequestedEngineBitIdentically) {
  WorkloadSpec spec = small_transient2d();
  spec.engine = wire_engine(engine::Kind::kSfcHilbert);
  constexpr int kSteps = 3;

  // In-process reference on the same engine.
  std::vector<pared::StepReport> expected;
  {
    pared::TransientRun run(spec.transient);
    pared::Session2D session(spec.strategy, spec.parts, spec.session_seed, {},
                             engine::Kind::kSfcHilbert);
    session.set_defer_metrics(true);
    for (int i = 0; i < kSteps; ++i) {
      run.advance();
      expected.push_back(session.step(run.mutable_mesh()));
    }
  }

  Server server;
  Client client;
  ASSERT_TRUE(connect_loopback(server, client));
  const auto created = client.create_workload(spec);
  ASSERT_TRUE(created);
  for (int i = 0; i < kSteps; ++i) {
    ASSERT_TRUE(client.advance(created->session));
    const auto report = client.step(created->session);
    ASSERT_TRUE(report);
    expect_report_eq(*report, expected[static_cast<std::size_t>(i)]);
  }
  const auto metrics = client.get_metrics(created->session);
  ASSERT_TRUE(metrics);
  EXPECT_EQ(metrics->engine, spec.engine);
}

TEST(SvcEngine, ServerDefaultSubstitutionSurvivesCheckpointRestore) {
  // A spec carrying the "server default" sentinel must be resolved at
  // create time and canonicalized into the stored create payload, so a
  // checkpoint restored on a server with a *different* default keeps the
  // engine that actually ran.
  ServerOptions morton_opts;
  morton_opts.limits.default_engine = wire_engine(engine::Kind::kSfcMorton);
  Server morton_server(morton_opts);
  Client morton_client;
  ASSERT_TRUE(connect_loopback(morton_server, morton_client));

  WorkloadSpec spec = small_transient2d();
  spec.engine = kEngineDefault;
  const auto created = morton_client.create_workload(spec);
  ASSERT_TRUE(created);
  const auto metrics = morton_client.get_metrics(created->session);
  ASSERT_TRUE(metrics);
  EXPECT_EQ(metrics->engine, wire_engine(engine::Kind::kSfcMorton));

  ASSERT_TRUE(morton_client.advance(created->session));
  const auto before = morton_client.step(created->session);
  ASSERT_TRUE(before);
  const auto ckpt = morton_client.checkpoint(created->session);
  ASSERT_TRUE(ckpt);
  ASSERT_TRUE(morton_client.advance(created->session));
  const auto after = morton_client.step(created->session);
  ASSERT_TRUE(after);

  ServerOptions rib_opts;
  rib_opts.limits.default_engine = wire_engine(engine::Kind::kRib);
  Server rib_server(rib_opts);
  Client rib_client;
  ASSERT_TRUE(connect_loopback(rib_server, rib_client));
  const auto restored = rib_client.restore(*ckpt);
  ASSERT_TRUE(restored);
  const auto restored_metrics = rib_client.get_metrics(restored->session);
  ASSERT_TRUE(restored_metrics);
  EXPECT_EQ(restored_metrics->engine, wire_engine(engine::Kind::kSfcMorton));
  ASSERT_TRUE(rib_client.advance(restored->session));
  const auto replayed = rib_client.step(restored->session);
  ASSERT_TRUE(replayed);
  expect_report_eq(*replayed, *after);
}

TEST(SvcEngine, GraphSessionTakesCoordsAndPerRequestEngineOverrides) {
  Server server;
  Client client;
  ASSERT_TRUE(connect_loopback(server, client));

  const auto mesh = mesh::structured_tri_mesh(8, 8, 0.25, 4);
  const auto dual = mesh::fine_dual_graph(mesh);
  const auto coords = mesh::leaf_centroids(mesh, dual.elems);
  CreateHead head;
  head.parts = 4;
  head.engine = wire_engine(engine::Kind::kRib);
  const auto created = client.create_graph(head, dual.graph, coords, 2);
  ASSERT_TRUE(created);

  // No override: the session's engine runs, and the reply says which.
  const auto info = client.repartition(created->session);
  ASSERT_TRUE(info);
  EXPECT_EQ(info->engine, wire_engine(engine::Kind::kRib));
  EXPECT_GE(info->cut_after, 0);

  // Per-request overrides round-trip on the wire, geometric and MLKL both.
  const auto hilbert =
      client.repartition(created->session, wire_engine(engine::Kind::kSfcHilbert));
  ASSERT_TRUE(hilbert);
  EXPECT_EQ(hilbert->engine, wire_engine(engine::Kind::kSfcHilbert));
  const auto mlkl =
      client.repartition(created->session, wire_engine(engine::Kind::kMlkl));
  ASSERT_TRUE(mlkl);
  EXPECT_EQ(mlkl->engine, wire_engine(engine::Kind::kMlkl));

  // The session default is unchanged by overrides.
  const auto metrics = client.get_metrics(created->session);
  ASSERT_TRUE(metrics);
  EXPECT_EQ(metrics->engine, wire_engine(engine::Kind::kRib));

  // An unregistered engine byte is a typed error, not an abort.
  EXPECT_FALSE(client.repartition(created->session, 77));
  EXPECT_EQ(client.last_error().code, Err::kBadPayload);
}

TEST(SvcEngine, GeometricEnginesWithoutCoordsAreRefused) {
  Server server;
  Client client;
  ASSERT_TRUE(connect_loopback(server, client));

  const auto mesh = mesh::structured_tri_mesh(8, 8, 0.25, 4);
  const graph::Graph g = mesh::fine_dual_graph(mesh).graph;
  CreateHead head;
  head.parts = 4;

  // Creating a geometric-engine session without a coordinate block fails.
  head.engine = wire_engine(engine::Kind::kSfcMorton);
  EXPECT_FALSE(client.create_graph(head, g));
  EXPECT_EQ(client.last_error().code, Err::kBadPayload);

  // An MLKL session without coords exists happily — until a repartition
  // asks it to run a geometric engine.
  head.engine = wire_engine(engine::Kind::kMlkl);
  const auto created = client.create_graph(head, g);
  ASSERT_TRUE(created);
  EXPECT_FALSE(
      client.repartition(created->session, wire_engine(engine::Kind::kRib)));
  EXPECT_EQ(client.last_error().code, Err::kBadState);
  // The session still works on its own engine afterwards.
  const auto info = client.repartition(created->session);
  ASSERT_TRUE(info);
  EXPECT_EQ(info->engine, wire_engine(engine::Kind::kMlkl));
}

// ---- sharded server ---------------------------------------------------------

std::size_t complete_frames(const Bytes& buf) {
  std::size_t n = 0;
  std::size_t off = 0;
  while (buf.size() - off >= kHeaderBytes) {
    const auto h = decode_header(buf.data() + off);
    if (!h || buf.size() - off - kHeaderBytes < h->payload_len) break;
    off += kHeaderBytes + h->payload_len;
    ++n;
  }
  return n;
}

/// Pump the server and read until `buf` holds `want` complete frames. The
/// spin bound only matters on failure: a healthy sharded server finishes a
/// tiny-mesh request in far fewer scheduler round trips.
bool recv_until(int fd, Server& server, Bytes& buf, std::size_t want) {
  for (int spin = 0; spin < 500000; ++spin) {
    if (complete_frames(buf) >= want) return true;
    if (!raw_recv(fd, buf, server)) return false;
  }
  return complete_frames(buf) >= want;
}

Bytes frame_id(std::uint16_t op, std::uint32_t id) {
  par::Writer w;
  w.put(id);
  return encode_frame(op, w.take());
}

/// A synchronous mixed control/session script: every request kind the
/// server grades differently, each awaited before the next is sent, so the
/// reply byte stream is fully ordered on any server configuration.
std::vector<Bytes> parity_script() {
  std::vector<Bytes> frames;
  frames.push_back(encode_frame(kOpPing, Bytes{9, 9}));
  par::Writer w;
  encode_workload_spec(w, small_transient2d());
  frames.push_back(encode_frame(kOpCreateWorkload, w.take()));  // id 1
  for (int i = 0; i < 2; ++i) {
    frames.push_back(frame_id(kOpAdvance, 1));
    frames.push_back(frame_id(kOpStep, 1));
  }
  frames.push_back(frame_id(kOpGetMetrics, 1));
  frames.push_back(frame_id(kOpCheckpoint, 1));
  frames.push_back(frame_id(kOpGetAssignment, 1));
  frames.push_back(encode_frame(kOpListSessions, Bytes{}));
  // An intact frame with a corrupted payload byte: typed kBadCrc error.
  Bytes bad = encode_frame(kOpPing, Bytes{1, 2, 3});
  bad[kHeaderBytes] ^= 0xff;
  frames.push_back(bad);
  frames.push_back(frame_id(kOpGetMetrics, 77));  // unknown session
  frames.push_back(frame_id(kOpCloseSession, 1));
  par::Writer w2;
  encode_workload_spec(w2, small_transient2d());
  frames.push_back(encode_frame(kOpCreateWorkload, w2.take()));  // id 2
  frames.push_back(frame_id(kOpCloseSession, 2));
  // A non-default engine session: the sharded gate must also hold for the
  // geometric path (engine byte on create, engine echo in metrics).
  WorkloadSpec sfc = small_transient2d();
  sfc.engine = static_cast<std::uint8_t>(engine::Kind::kSfcHilbert);
  par::Writer w3;
  encode_workload_spec(w3, sfc);
  frames.push_back(encode_frame(kOpCreateWorkload, w3.take()));  // id 3
  frames.push_back(frame_id(kOpAdvance, 3));
  frames.push_back(frame_id(kOpStep, 3));
  frames.push_back(frame_id(kOpGetMetrics, 3));
  frames.push_back(frame_id(kOpGetAssignment, 3));
  frames.push_back(frame_id(kOpCloseSession, 3));
  return frames;
}

Bytes run_script_sync(Server& server, const std::vector<Bytes>& frames) {
  const int fd = adopt_loopback_raw(server);
  EXPECT_GE(fd, 0);
  Bytes in;
  std::size_t expect = 0;
  for (const Bytes& f : frames) {
    EXPECT_TRUE(raw_send(fd, f, server));
    ++expect;
    EXPECT_TRUE(recv_until(fd, server, in, expect));
  }
  raw_close(fd);
  return in;
}

TEST(SvcSharded, AnyShardCountIsByteIdenticalToTheSerialPath) {
  // The regression gate for the sharding refactor: the same request script
  // against the pre-shard serial server (threads = 0) and sharded servers
  // must produce identical reply bytes — including session ids, error
  // details, checkpoints and assignments.
  const std::vector<Bytes> script = parity_script();
  Server serial;
  const Bytes reference = run_script_sync(serial, script);
  ASSERT_EQ(complete_frames(reference), script.size());
  for (const int threads : {1, 2, 4}) {
    ServerOptions opt;
    opt.threads = threads;
    Server sharded(opt);
    ASSERT_EQ(sharded.num_threads(), threads);
    const Bytes stream = run_script_sync(sharded, script);
    EXPECT_TRUE(stream == reference) << "threads=" << threads;
  }
}

TEST(SvcSharded, PipelinedCreatesKeepFrameOrderAtAnyShardCount) {
  // Creates (and fed attaches) are serialized on the control FIFO in
  // frame-arrival order, so session-id allocation — and therefore every
  // reply byte — must be independent of the shard count even when the
  // creates are pipelined with no await between them.
  std::vector<Bytes> burst;
  for (int i = 0; i < 6; ++i) {
    par::Writer w;
    if (i % 2 == 0) {
      encode_workload_spec(w, small_transient2d());
      burst.push_back(encode_frame(kOpCreateWorkload, w.take()));
    } else {
      FedAttach att;
      att.spec = small_transient2d();
      att.spec.parts = 2;
      att.rank = static_cast<std::uint16_t>(i % 4 == 1 ? 0 : 1);
      att.count = 2;
      encode_fed_attach(w, att);
      burst.push_back(encode_frame(kOpFedAttach, w.take()));
    }
  }
  const auto run = [&](int threads) {
    ServerOptions opt;
    opt.threads = threads;
    Server server(opt);
    const int fd = adopt_loopback_raw(server);
    EXPECT_GE(fd, 0);
    Bytes in;
    for (const Bytes& f : burst) EXPECT_TRUE(raw_send(fd, f, server));
    EXPECT_TRUE(recv_until(fd, server, in, burst.size()));
    // Close synchronously: session ops ride per-shard queues whose reply
    // interleaving across sessions is not part of the ordering contract.
    std::size_t expect = burst.size();
    for (std::uint32_t id = 1; id <= 6; ++id) {
      EXPECT_TRUE(raw_send(fd, frame_id(kOpCloseSession, id), server));
      EXPECT_TRUE(recv_until(fd, server, in, ++expect));
    }
    raw_close(fd);
    return in;
  };
  const Bytes reference = run(0);
  ASSERT_EQ(complete_frames(reference), burst.size() + 6);
  for (const int threads : {1, 2, 4})
    EXPECT_TRUE(run(threads) == reference) << "threads=" << threads;
}

TEST(SvcSharded, ManyPipelinedClientsKeepPerSessionOrderAndContent) {
  // Hundreds of concurrent loopback clients, each pipelining advance/step
  // bursts against its own session on a 4-shard server. Every connection
  // must get exactly its replies, in request order; and because the
  // post-create reply stream carries no session ids, all connections
  // running the same workload spec must read byte-identical streams — any
  // lost, reordered, cross-wired or nondeterministic reply breaks it.
  constexpr int kConns = 200;
  constexpr int kRounds = 3;
  constexpr int kSpecs = 8;

  ServerOptions opt;
  opt.threads = 4;
  opt.max_connections = kConns + 4;
  opt.limits.max_sessions = kConns + 4;
  Server server(opt);

  const auto spec_for = [](int group) {
    WorkloadSpec spec;
    spec.kind = WorkloadKind::kTransient2D;
    spec.parts = 2;
    spec.session_seed = 100 + static_cast<std::uint64_t>(group);
    spec.transient.steps = 16;
    spec.transient.grid_n = 4;
    spec.transient.max_level = 2;
    return spec;
  };

  struct ConnState {
    int fd = -1;
    std::uint32_t session = 0;
    Bytes in;
  };
  std::vector<ConnState> conns(kConns);
  for (auto& c : conns) {
    c.fd = adopt_loopback_raw(server);
    ASSERT_GE(c.fd, 0);
  }
  ASSERT_EQ(server.num_connections(), static_cast<std::size_t>(kConns));

  // Pipeline every create, then collect each session id and drop the
  // id-bearing create reply from the stream.
  for (int i = 0; i < kConns; ++i) {
    par::Writer w;
    encode_workload_spec(w, spec_for(i % kSpecs));
    ASSERT_TRUE(
        raw_send(conns[i].fd, encode_frame(kOpCreateWorkload, w.take()),
                 server));
  }
  for (auto& c : conns) {
    ASSERT_TRUE(recv_until(c.fd, server, c.in, 1));
    const auto h = decode_header(c.in.data());
    ASSERT_TRUE(h);
    ASSERT_EQ(h->type, kOpCreateWorkload | kReplyBit);
    par::TryReader r(c.in.data() + kHeaderBytes, h->payload_len);
    const auto id = r.get<std::uint32_t>();
    ASSERT_TRUE(id);
    c.session = *id;
    c.in.erase(c.in.begin(),
               c.in.begin() +
                   static_cast<std::ptrdiff_t>(kHeaderBytes + h->payload_len));
  }

  // Round-robin pipelined bursts: every shard sees interleaved traffic
  // from many sessions at once.
  for (int round = 0; round < kRounds; ++round) {
    for (auto& c : conns) {
      Bytes burst = frame_id(kOpAdvance, c.session);
      const Bytes step = frame_id(kOpStep, c.session);
      burst.insert(burst.end(), step.begin(), step.end());
      ASSERT_TRUE(raw_send(c.fd, burst, server));
    }
  }
  const std::size_t want = 2 * kRounds;
  for (auto& c : conns) ASSERT_TRUE(recv_until(c.fd, server, c.in, want));

  for (auto& c : conns) {
    ASSERT_EQ(complete_frames(c.in), want);  // nothing lost, nothing extra
    std::size_t off = 0;
    for (int round = 0; round < kRounds; ++round) {
      for (const int op : {kOpAdvance, kOpStep}) {
        const auto h = decode_header(c.in.data() + off);
        ASSERT_TRUE(h);
        EXPECT_EQ(h->type, static_cast<std::uint16_t>(op) | kReplyBit);
        off += kHeaderBytes + h->payload_len;
      }
    }
  }
  for (int i = 0; i < kConns; ++i)
    EXPECT_TRUE(conns[i].in == conns[i % kSpecs].in) << "conn " << i;
  for (auto& c : conns) raw_close(c.fd);
}

TEST(SvcSharded, PipelinedAdaptStepOnUploadedMeshesStaysConsistent) {
  // The uploaded-mesh flavor of the stress test: concurrent clients
  // pipeline explicit adapt marks plus repartition steps. Identical uploads
  // must yield byte-identical post-create reply streams.
  constexpr int kConns = 64;
  constexpr int kRounds = 4;

  ServerOptions opt;
  opt.threads = 4;
  opt.max_connections = kConns + 4;
  opt.limits.max_sessions = kConns + 4;
  Server server(opt);

  const auto mesh = mesh::structured_tri_mesh(4, 4, 0.25, 3);
  const FlatMesh flat = flatten_mesh(mesh);
  par::Writer cw;
  CreateHead head;
  head.parts = 2;
  head.session_seed = 5;
  encode_create_head(cw, head);
  encode_mesh(cw, flat);
  const Bytes create = encode_frame(kOpCreateMesh, cw.take());

  struct ConnState {
    int fd = -1;
    std::uint32_t session = 0;
    Bytes in;
  };
  std::vector<ConnState> conns(kConns);
  for (auto& c : conns) {
    c.fd = adopt_loopback_raw(server);
    ASSERT_GE(c.fd, 0);
    ASSERT_TRUE(raw_send(c.fd, create, server));
  }
  for (auto& c : conns) {
    ASSERT_TRUE(recv_until(c.fd, server, c.in, 1));
    const auto h = decode_header(c.in.data());
    ASSERT_TRUE(h);
    ASSERT_EQ(h->type, kOpCreateMesh | kReplyBit);
    par::TryReader r(c.in.data() + kHeaderBytes, h->payload_len);
    const auto id = r.get<std::uint32_t>();
    ASSERT_TRUE(id);
    c.session = *id;
    c.in.erase(c.in.begin(),
               c.in.begin() +
                   static_cast<std::ptrdiff_t>(kHeaderBytes + h->payload_len));
  }

  for (int round = 0; round < kRounds; ++round) {
    for (auto& c : conns) {
      par::Writer aw;
      aw.put(c.session);
      aw.put(std::uint8_t{0});  // refine
      aw.put_vector(std::vector<mesh::ElemIdx>{round, round + 1});
      Bytes burst = encode_frame(kOpAdapt, aw.take());
      const Bytes step = frame_id(kOpStep, c.session);
      burst.insert(burst.end(), step.begin(), step.end());
      ASSERT_TRUE(raw_send(c.fd, burst, server));
    }
  }
  const std::size_t want = 2 * kRounds;
  for (auto& c : conns) ASSERT_TRUE(recv_until(c.fd, server, c.in, want));

  for (auto& c : conns) {
    ASSERT_EQ(complete_frames(c.in), want);
    std::size_t off = 0;
    for (int round = 0; round < kRounds; ++round) {
      for (const int op : {kOpAdapt, kOpStep}) {
        const auto h = decode_header(c.in.data() + off);
        ASSERT_TRUE(h);
        EXPECT_EQ(h->type, static_cast<std::uint16_t>(op) | kReplyBit);
        off += kHeaderBytes + h->payload_len;
      }
    }
    EXPECT_TRUE(c.in == conns[0].in);
  }
  for (auto& c : conns) raw_close(c.fd);
}

TEST(SvcSharded, ShutdownDrainsInFlightRepliesBeforeTheAck) {
  // A pipelined burst ending in shutdown: the server must quiesce the
  // shards and deliver every accepted reply before the shutdown ack — no
  // accepted request may be answered kShuttingDown, and no reply may
  // arrive after the ack.
  ServerOptions opt;
  opt.threads = 2;
  Server server(opt);
  const int fd = adopt_loopback_raw(server);
  ASSERT_GE(fd, 0);

  par::Writer w;
  encode_workload_spec(w, small_transient2d());
  ASSERT_TRUE(raw_send(fd, encode_frame(kOpCreateWorkload, w.take()), server));
  Bytes in;
  ASSERT_TRUE(recv_until(fd, server, in, 1));
  in.clear();

  Bytes burst;
  for (int i = 0; i < 4; ++i) {
    const Bytes adv = frame_id(kOpAdvance, 1);
    burst.insert(burst.end(), adv.begin(), adv.end());
  }
  const Bytes bye = encode_frame(kOpShutdown, Bytes{});
  burst.insert(burst.end(), bye.begin(), bye.end());
  ASSERT_TRUE(raw_send(fd, burst, server));

  // 4 advances + the shutdown ack, in exactly that order.
  for (int spin = 0; spin < 500000 && complete_frames(in) < 5; ++spin)
    if (!raw_recv(fd, in, server)) break;
  ASSERT_EQ(complete_frames(in), 5u);
  std::size_t off = 0;
  for (int i = 0; i < 4; ++i) {
    const auto h = decode_header(in.data() + off);
    ASSERT_TRUE(h);
    EXPECT_EQ(h->type, kOpAdvance | kReplyBit);
    off += kHeaderBytes + h->payload_len;
  }
  const auto h = decode_header(in.data() + off);
  ASSERT_TRUE(h);
  EXPECT_EQ(h->type, kOpShutdown | kReplyBit);

  // The server closes the flushed connection and reports done.
  for (int spin = 0; spin < 500000 && !server.done(); ++spin)
    server.poll_once(0);
  EXPECT_TRUE(server.done());
  raw_close(fd);
}

}  // namespace
}  // namespace pnr::svc
