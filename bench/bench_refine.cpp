// Microbenchmark for the incremental KL/FM refinement engine — the dominant
// hot path of the repartitioning pipeline. Isolates refine_partition on the
// paper's workload graphs (fine dual graphs of the Section 6/7 mesh series)
// so queue/connectivity changes can be measured without the rest of the
// pipeline, and emits the machine-readable trajectory BENCH_refine.json
// (schema "pnr.bench_refine.v1", documented in docs/OBSERVABILITY.md).
//
// Each case partitions a workload graph with Multilevel-KL (the "home"
// assignment Π^{t-1}), perturbs ~1/8 of the vertices to random other subsets
// (standing in for the carried assignment after an adaptation step), and
// refines back. Hard mode (hard balance, α = 0.1, β = 0) is the PNR
// uncoarsening configuration; soft mode (β = 0.8, no hard constraint)
// exercises the verify-on-pop path of the β term.
//
//   --quick      reduced sizes for CI (~1 s total)
//   --procs=8    subset count
//   --reps=5     repetitions per case (min and mean are reported)
//   --out=<path> output JSON (default BENCH_refine.json)

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "partition/mlkl.hpp"
#include "partition/refine.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"

using namespace pnr;

namespace {

struct CaseResult {
  std::string name;
  std::string mode;  // "hard" | "soft"
  graph::VertexId vertices = 0;
  std::int64_t edges = 0;
  graph::Weight cut_before = 0;
  graph::Weight cut_after = 0;
  double min_ms = 0.0;
  double mean_ms = 0.0;
  part::RefineResult stats;  // from the min-time rep (all reps identical)
};

/// Move ~1/8 of the vertices to a random other subset. Deterministic in the
/// seed, so every rep (and every run) refines the same starting point.
void perturb(const graph::Graph& g, part::Partition& pi, util::Rng& rng) {
  for (graph::VertexId v = 0; v < g.num_vertices(); ++v) {
    if (rng.next_below(8) != 0) continue;
    const auto sv = static_cast<std::size_t>(v);
    const auto shift =
        1 + static_cast<part::PartId>(rng.next_below(
                static_cast<std::uint64_t>(pi.num_parts - 1)));
    pi.assign[sv] =
        static_cast<part::PartId>((pi.assign[sv] + shift) % pi.num_parts);
  }
}

CaseResult run_case(const std::string& name, const graph::Graph& g,
                    part::PartId p, bool soft, int reps, std::uint64_t seed) {
  CaseResult r;
  r.name = name;
  r.mode = soft ? "soft" : "hard";
  r.vertices = g.num_vertices();
  r.edges = g.num_edges();

  util::Rng rng(seed);
  const part::Partition home = part::multilevel_kl(g, p, rng);
  part::Partition start = home;
  perturb(g, start, rng);
  r.cut_before = part::cut_size(g, start);

  part::RefineOptions opt;
  opt.alpha = 0.1;
  opt.home = &home.assign;
  if (soft) {
    opt.hard_balance = false;
    opt.beta = 0.8;
  } else {
    opt.hard_balance = true;
    opt.imbalance_tol = 0.05;
  }

  r.min_ms = 1e30;
  double sum_ms = 0.0;
  for (int rep = 0; rep < reps; ++rep) {
    part::Partition pi = start;
    util::Timer timer;
    const part::RefineResult stats = part::refine_partition(g, pi, opt);
    const double ms = timer.seconds() * 1e3;
    sum_ms += ms;
    if (ms < r.min_ms) {
      r.min_ms = ms;
      r.stats = stats;
      r.cut_after = part::cut_size(g, pi);
    }
  }
  r.mean_ms = sum_ms / reps;
  return r;
}

util::Json to_json(const CaseResult& r, part::PartId procs, int reps) {
  util::Json doc = util::Json::object();
  doc["name"] = r.name;
  doc["mode"] = r.mode;
  doc["procs"] = static_cast<std::int64_t>(procs);
  doc["reps"] = static_cast<std::int64_t>(reps);
  doc["vertices"] = static_cast<std::int64_t>(r.vertices);
  doc["edges"] = r.edges;
  doc["cut_before"] = static_cast<std::int64_t>(r.cut_before);
  doc["cut_after"] = static_cast<std::int64_t>(r.cut_after);
  doc["min_ms"] = r.min_ms;
  doc["mean_ms"] = r.mean_ms;
  util::Json counters = util::Json::object();
  counters["kl.passes"] = static_cast<std::int64_t>(r.stats.passes);
  counters["kl.moves"] = r.stats.moves;
  counters["kl.boundary_seeded"] = r.stats.boundary_seeded;
  counters["kl.queue_pushes"] = r.stats.queue_pushes;
  counters["kl.stale_pops"] = r.stats.stale_pops;
  counters["kl.gain_recomputes"] = r.stats.gain_recomputes;
  doc["counters"] = std::move(counters);
  return doc;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const bool quick = cli.get_bool("quick");
  const auto p = static_cast<part::PartId>(cli.get_int("procs", 8));
  const int reps = cli.get_int("reps", quick ? 3 : 5);
  const std::uint64_t seed = 1;
  const std::string out = cli.get("out", "BENCH_refine.json");
  bench::apply_threads_flag(cli);

  bench::banner("KL refinement micro",
                "refine_partition on the paper's dual graphs; writes "
                "BENCH_refine.json");

  std::vector<CaseResult> results;
  {
    pared::CornerSeries2D series(quick ? 32 : 40);
    const int levels = quick ? 3 : 6;
    for (int l = 0; l < levels; ++l) series.advance();
    const auto dual = mesh::fine_dual_graph(series.mesh());
    results.push_back(run_case("corner2d", dual.graph, p, false, reps, seed));
    results.push_back(
        run_case("corner2d_soft", dual.graph, p, true, reps, seed));
  }
  {
    pared::TransientOptions topts;
    topts.grid_n = quick ? 32 : 40;
    topts.steps = quick ? 5 : 15;
    pared::TransientRun run(topts);
    while (!run.done()) run.advance();
    const auto dual = mesh::fine_dual_graph(run.mesh());
    results.push_back(
        run_case("transient2d", dual.graph, p, false, reps, seed));
  }
  if (!quick) {
    pared::CornerSeries3D series(8);
    for (int l = 0; l < 3; ++l) series.advance();
    const auto dual = mesh::fine_dual_graph(series.mesh());
    results.push_back(run_case("corner3d", dual.graph, p, false, reps, seed));
  }

  util::Table table({"case", "mode", "n", "cut before", "cut after", "min ms",
                     "mean ms", "moves", "pushes"});
  for (const CaseResult& r : results) {
    table.row()
        .cell(r.name)
        .cell(r.mode)
        .cell(static_cast<std::int64_t>(r.vertices))
        .cell(static_cast<std::int64_t>(r.cut_before))
        .cell(static_cast<std::int64_t>(r.cut_after))
        .cell(r.min_ms, 2)
        .cell(r.mean_ms, 2)
        .cell(r.stats.moves)
        .cell(r.stats.queue_pushes);
  }
  table.print(std::cout);

  util::Json doc = util::Json::object();
  doc["schema"] = "pnr.bench_refine.v1";
  doc["binary"] = "bench_refine";
  doc["mode"] = quick ? "quick" : "default";
  doc["procs"] = static_cast<std::int64_t>(p);
  util::Json cases = util::Json::array();
  for (const CaseResult& r : results) cases.push_back(to_json(r, p, reps));
  doc["cases"] = std::move(cases);

  std::ofstream file(out);
  if (!file) {
    std::fprintf(stderr, "cannot write %s\n", out.c_str());
    return 1;
  }
  file << doc.dump(2) << "\n";
  std::printf("wrote %s (%d cases)\n", out.c_str(),
              static_cast<int>(results.size()));
  return 0;
}
