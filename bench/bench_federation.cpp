// Federation equivalence benchmark + hard gate (docs/FEDERATION.md). For
// each transient workload and each shard count N in --shard-sweep, N real
// in-process Servers (socketpair loopback — the same poll loop, codec and
// registry a pnr_serve daemon runs) are driven by one fed::Coordinator
// through full federated repartition rounds: lockstep adaptation,
// interface gather + audit, migration-plan push, subtree exchange,
// commit barrier. A fed-free reference loop (pared::TransientRun +
// pared::Session, no svc anywhere) runs the identical workload and the
// chained trajectory fingerprints must match bit for bit at every shard
// count — the federation equivalence gate; any mismatch exits 2.
//
// Emits BENCH_federation.json (schema "pnr.bench_federation.v1",
// documented in docs/OBSERVABILITY.md); the committed copy at the repo
// root is the baseline scripts/fed_gate.py hard-gates on the CI release
// leg.
//
//   --quick          reduced rounds/grid for CI smoke runs
//   --rounds=N       federated rounds per run (default 24; quick 10)
//   --grid=N         2D transient grid (default 16; 3D uses its default)
//   --shard-sweep=L  comma-separated shard counts (default 2,4)
//   --check-level=N  coordinator conformity checks (default 1)
//   --out=<path>     output JSON (default BENCH_federation.json)

#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "fed/coordinator.hpp"
#include "svc/loopback.hpp"
#include "svc/server.hpp"
#include "util/fnv.hpp"
#include "util/json.hpp"

using namespace pnr;

namespace {

struct RunPoint {
  int shards = 0;
  int rounds = 0;
  std::uint64_t trajectory_fp = 0;
  std::int64_t trees_moved = 0;
  std::int64_t elements_moved = 0;
  std::int64_t payload_bytes = 0;
  std::int64_t elements_final = 0;
  double seconds = 0.0;
  bool ok = false;
  std::string why;
};

/// The fed-free reference: the identical transient run and session stepped
/// directly, chaining the same (assign_fp, mesh_fp) digest the coordinator
/// chains. No fed:: or svc:: state influences the trajectory — this is the
/// single-process baseline the federation must reproduce bitwise.
template <typename Run>
std::uint64_t reference_trajectory(const svc::WorkloadSpec& spec,
                                   engine::Kind engine, int rounds,
                                   std::int64_t* elements_final) {
  using Mesh = typename fed::CoordinatorT<Run>::Mesh;
  Run run(spec.transient);
  core::PnrOptions popt;
  popt.alpha = spec.alpha;
  popt.beta = spec.beta;
  pared::Session<Mesh> session(spec.strategy, spec.parts, spec.session_seed,
                               popt, engine);
  std::uint64_t fp = util::kFnvSeed;
  for (int i = 0; i < rounds && !run.done(); ++i) {
    run.advance();
    session.step(run.mutable_mesh());
    fp = util::fnv1a_value(
        fed::assignment_fingerprint(session.coarse_assignment()), fp);
    fp = util::fnv1a_value(fed::mesh_fingerprint(run.mesh()), fp);
  }
  if (elements_final) *elements_final = run.mesh().num_leaves();
  return fp;
}

/// One federated run: `shards` loopback servers, one coordinator.
template <typename Run>
RunPoint federated_run(const svc::WorkloadSpec& spec, engine::Kind engine,
                       int shards, int rounds, int check_level) {
  RunPoint point;
  point.shards = shards;

  std::vector<std::unique_ptr<svc::Server>> servers;
  std::vector<std::unique_ptr<svc::Client>> clients;
  std::vector<svc::Client*> daemons;
  for (int i = 0; i < shards; ++i) {
    svc::ServerOptions options;
    servers.push_back(std::make_unique<svc::Server>(options));
    clients.push_back(std::make_unique<svc::Client>());
    if (!svc::connect_loopback(*servers.back(), *clients.back())) {
      point.why = "loopback connect failed";
      return point;
    }
    daemons.push_back(clients.back().get());
  }

  fed::CoordinatorOptions fopt;
  fopt.check_level = check_level;
  fed::CoordinatorT<Run> coord(spec, engine, std::move(daemons), fopt);

  util::Timer timer;
  std::string why;
  if (!coord.attach(&why)) {
    point.why = "attach: " + why;
    return point;
  }
  for (int i = 0; i < rounds && !coord.finished(); ++i) {
    const fed::RoundResult r = coord.round();
    if (!r.ok) {
      point.why = "round " + std::to_string(i + 1) + ": " + r.why;
      return point;
    }
    point.trees_moved += r.trees_moved;
    point.elements_moved += r.elements_moved;
    point.payload_bytes += r.payload_bytes;
    point.elements_final = r.elements;
  }
  point.rounds = coord.rounds();
  point.trajectory_fp = coord.trajectory_fingerprint();
  if (!coord.finish(/*shutdown_daemons=*/true, &why)) {
    point.why = "teardown: " + why;
    return point;
  }
  point.seconds = timer.seconds();
  point.ok = true;
  return point;
}

std::vector<int> parse_sweep(const std::string& list) {
  std::vector<int> out;
  std::size_t pos = 0;
  while (pos < list.size()) {
    const std::size_t comma = list.find(',', pos);
    const std::string tok =
        list.substr(pos, comma == std::string::npos ? comma : comma - pos);
    if (!tok.empty()) out.push_back(std::atoi(tok.c_str()));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const bool quick = cli.get_bool("quick");
  const int rounds = cli.get_int("rounds", quick ? 10 : 24);
  const int grid = cli.get_int("grid", 16);
  const int check_level = cli.get_int("check-level", 1);
  const std::string out = cli.get("out", "BENCH_federation.json");
  const std::vector<int> sweep = parse_sweep(cli.get("shard-sweep", "2,4"));

  bench::banner("Socket federation",
                "N live servers, one coordinator; trajectory must equal the "
                "fed-free single-process session bit for bit");

  const engine::Kind engine = engine::Kind::kMlkl;
  bool all_equivalent = true;

  util::Json doc = util::Json::object();
  doc["schema"] = "pnr.bench_federation.v1";
  doc["binary"] = "bench_federation";
  doc["mode"] = quick ? "quick" : "default";
  doc["rounds"] = static_cast<std::int64_t>(rounds);
  doc["check_level"] = static_cast<std::int64_t>(check_level);
  util::Json workloads = util::Json::array();

  const auto run_workload = [&](const char* name, auto* run_tag,
                                svc::WorkloadSpec spec) {
    using Run = std::remove_pointer_t<decltype(run_tag)>;
    util::Table table({"shards", "rounds", "trees", "elements", "payload B",
                       "seconds", "reference", "trajectory", "equal"});
    util::Json runs = util::Json::array();
    char fp_str[32];
    char ref_str[32];

    util::Json wl = util::Json::object();
    wl["kind"] = name;

    for (const int shards : sweep) {
      // The equivalence claim is per shard count: an N-shard federation
      // must match the single-process session partitioning into N parts.
      spec.parts = shards;
      std::int64_t ref_elements = 0;
      const std::uint64_t ref_fp = reference_trajectory<Run>(
          spec, engine, rounds, &ref_elements);
      const RunPoint p = federated_run<Run>(spec, engine, shards, rounds,
                                            check_level);
      if (!p.ok) {
        std::fprintf(stderr, "FATAL: [%s] shards=%d: %s\n", name, shards,
                     p.why.c_str());
        std::exit(1);
      }
      const bool equal = p.trajectory_fp == ref_fp &&
                         p.elements_final == ref_elements;
      all_equivalent = all_equivalent && equal;
      std::snprintf(ref_str, sizeof(ref_str), "%016llx",
                    static_cast<unsigned long long>(ref_fp));
      std::snprintf(fp_str, sizeof(fp_str), "%016llx",
                    static_cast<unsigned long long>(p.trajectory_fp));
      table.row()
          .cell(p.shards)
          .cell(p.rounds)
          .cell(p.trees_moved)
          .cell(p.elements_moved)
          .cell(p.payload_bytes)
          .cell(p.seconds, 3)
          .cell(ref_str)
          .cell(fp_str)
          .cell(equal ? "yes" : "NO");
      util::Json row = util::Json::object();
      row["shards"] = static_cast<std::int64_t>(p.shards);
      row["rounds"] = static_cast<std::int64_t>(p.rounds);
      row["trees_moved"] = p.trees_moved;
      row["elements_moved"] = p.elements_moved;
      row["payload_bytes"] = p.payload_bytes;
      row["total_seconds"] = p.seconds;
      row["reference_fp"] = std::string(ref_str);
      row["reference_elements"] = ref_elements;
      row["trajectory_fp"] = std::string(fp_str);
      row["equivalent"] = equal;
      runs.push_back(std::move(row));
    }
    table.print(std::cout);
    wl["runs"] = std::move(runs);
    workloads.push_back(std::move(wl));
  };

  {
    svc::WorkloadSpec spec;
    spec.kind = svc::WorkloadKind::kTransient2D;
    spec.strategy = pared::Strategy::kPNR;
    spec.session_seed = 1;
    spec.transient.grid_n = quick ? 12 : grid;
    spec.transient.max_level = 4;
    spec.transient.steps = rounds + 1;
    spec.engine = static_cast<std::uint8_t>(engine);
    run_workload("transient2d", static_cast<pared::TransientRun*>(nullptr),
                 spec);
  }
  {
    svc::WorkloadSpec spec;
    spec.kind = svc::WorkloadKind::kTransient3D;
    spec.strategy = pared::Strategy::kPNR;
    spec.session_seed = 1;
    spec.transient = pared::TransientRun3D::default_options();
    spec.transient.steps = rounds + 1;
    spec.engine = static_cast<std::uint8_t>(engine);
    run_workload("transient3d", static_cast<pared::TransientRun3D*>(nullptr),
                 spec);
  }

  doc["workloads"] = std::move(workloads);
  doc["equivalent"] = all_equivalent;

  std::ofstream file(out);
  if (!file) {
    std::fprintf(stderr, "cannot write %s\n", out.c_str());
    return 1;
  }
  file << doc.dump(2) << "\n";
  std::printf("wrote %s\n", out.c_str());
  if (!all_equivalent) {
    std::fprintf(stderr,
                 "FATAL: a federated trajectory diverged from the "
                 "single-process session\n");
    return 2;
  }
  return 0;
}
