// End-to-end pipeline benchmark: the full adapt → repartition → migrate
// loop on the paper's workloads, instrumented with pnr::prof, emitting the
// machine-readable perf trajectory BENCH_pipeline.json (schema
// "pnr.bench_pipeline.v2", documented in docs/OBSERVABILITY.md). This file
// is the baseline every PR's performance is diffed against
// (scripts/bench_diff.py old.json new.json).
//
// Sessions run with deferred metrics (the service default): each step's
// cost is the partitioning work alone, and the final quality numbers are
// settled once at the end via Session::metrics(). v2 splits the cold
// first step (builds G and the contraction hierarchy) from the mean
// steady-state step (rounds 2+, where the persistent state is reused).
//
//   --quick            reduced sizes for CI (~1 s total)
//   --threads=N        exec pool width (default 1 = legacy serial behaviour)
//   --procs=8          processor count per workload
//   --out=<path>       output JSON (default BENCH_pipeline.json; run from
//                      the repo root so the trajectory lands there)
//   --levels/--steps   override the adaptation counts

#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "util/json.hpp"
#include "util/prof.hpp"

using namespace pnr;

namespace {

struct WorkloadResult {
  std::string name;
  int steps = 0;
  std::int64_t elements_final = 0;
  graph::Weight cut_final = 0;
  double imbalance_final = 0.0;
  double migration_fraction_mean = 0.0;
  double migration_fraction_max = 0.0;
  double first_step_seconds = 0.0;   ///< round 1: cold caches
  double steady_step_seconds = 0.0;  ///< mean of rounds 2+
  double total_seconds = 0.0;
  std::int64_t peak_rss_bytes = 0;
  prof::Report profile;
};

/// Accumulates per-step migration fractions and finishes the result from
/// the profiler registry (which the caller reset before the run).
class Recorder {
 public:
  explicit Recorder(std::string name) {
    result_.name = std::move(name);
    prof::reset();
    prof::set_enabled(true);
  }

  void record(const pared::StepReport& report, double step_seconds,
              bool first) {
    result_.elements_final = report.elements;
    if (first) {  // no previous assignment, nothing migrated
      result_.first_step_seconds = step_seconds;
      return;
    }
    ++result_.steps;
    steady_seconds_sum_ += step_seconds;
    const double fraction =
        report.elements > 0 ? static_cast<double>(report.migrated) /
                                  static_cast<double>(report.elements)
                            : 0.0;
    fraction_sum_ += fraction;
    result_.migration_fraction_max =
        std::max(result_.migration_fraction_max, fraction);
  }

  /// Final quality from the settled (full) report of the last step.
  void record_final(const pared::StepReport& full) {
    result_.cut_final = full.cut_new;
    result_.imbalance_final = full.imbalance;
  }

  WorkloadResult finish() {
    prof::sample_peak_rss();
    result_.total_seconds = timer_.seconds();
    result_.peak_rss_bytes = prof::peak_rss_bytes();
    result_.migration_fraction_mean =
        result_.steps > 0 ? fraction_sum_ / result_.steps : 0.0;
    result_.steady_step_seconds =
        result_.steps > 0 ? steady_seconds_sum_ / result_.steps : 0.0;
    result_.profile = prof::snapshot();
    prof::set_enabled(false);
    return result_;
  }

 private:
  WorkloadResult result_;
  double fraction_sum_ = 0.0;
  double steady_seconds_sum_ = 0.0;
  util::Timer timer_;
};

WorkloadResult run_corner2d(part::PartId p, int grid, int levels,
                            std::uint64_t seed) {
  Recorder recorder("corner2d");
  pared::CornerSeries2D series(grid);
  pared::Session2D session(pared::Strategy::kPNR, p, seed);
  session.set_defer_metrics(true);
  {
    util::Timer t;
    const auto report = session.step(series.mutable_mesh());
    recorder.record(report, t.seconds(), true);
  }
  for (int l = 0; l < levels; ++l) {
    {
      PNR_PROF_SPAN("pipeline.adapt");
      series.advance();
    }
    PNR_PROF_SPAN("pipeline.repartition");
    util::Timer t;
    const auto report = session.step(series.mutable_mesh());
    recorder.record(report, t.seconds(), false);
  }
  recorder.record_final(session.metrics(series.mesh()));
  return recorder.finish();
}

WorkloadResult run_corner3d(part::PartId p, int grid, int levels,
                            std::uint64_t seed) {
  Recorder recorder("corner3d");
  pared::CornerSeries3D series(grid);
  pared::Session3D session(pared::Strategy::kPNR, p, seed);
  session.set_defer_metrics(true);
  {
    util::Timer t;
    const auto report = session.step(series.mutable_mesh());
    recorder.record(report, t.seconds(), true);
  }
  for (int l = 0; l < levels; ++l) {
    {
      PNR_PROF_SPAN("pipeline.adapt");
      series.advance();
    }
    PNR_PROF_SPAN("pipeline.repartition");
    util::Timer t;
    const auto report = session.step(series.mutable_mesh());
    recorder.record(report, t.seconds(), false);
  }
  recorder.record_final(session.metrics(series.mesh()));
  return recorder.finish();
}

WorkloadResult run_transient2d(part::PartId p, int grid, int steps,
                               std::uint64_t seed) {
  Recorder recorder("transient2d");
  pared::TransientOptions topts;
  topts.grid_n = grid;
  topts.steps = steps;
  pared::TransientRun run(topts);
  pared::Session2D session(pared::Strategy::kPNR, p, seed);
  session.set_defer_metrics(true);
  {
    util::Timer t;
    const auto report = session.step(run.mutable_mesh());
    recorder.record(report, t.seconds(), true);
  }
  while (!run.done()) {
    {
      PNR_PROF_SPAN("pipeline.adapt");
      run.advance();
    }
    PNR_PROF_SPAN("pipeline.repartition");
    util::Timer t;
    const auto report = session.step(run.mutable_mesh());
    recorder.record(report, t.seconds(), false);
  }
  recorder.record_final(session.metrics(run.mesh()));
  return recorder.finish();
}

util::Json to_json(const WorkloadResult& w, part::PartId procs) {
  util::Json doc = util::Json::object();
  doc["name"] = w.name;
  doc["strategy"] = "PNR";
  doc["procs"] = static_cast<std::int64_t>(procs);
  doc["steps"] = static_cast<std::int64_t>(w.steps);
  doc["elements_final"] = w.elements_final;
  doc["cut_final"] = static_cast<std::int64_t>(w.cut_final);
  doc["imbalance_final"] = w.imbalance_final;
  doc["migration_fraction_mean"] = w.migration_fraction_mean;
  doc["migration_fraction_max"] = w.migration_fraction_max;
  doc["first_step_seconds"] = w.first_step_seconds;
  doc["steady_step_seconds"] = w.steady_step_seconds;
  doc["total_seconds"] = w.total_seconds;
  doc["peak_rss_bytes"] = w.peak_rss_bytes;
  util::Json phases = util::Json::array();
  for (const prof::SpanRow& s : w.profile.spans) {
    util::Json row = util::Json::object();
    row["path"] = s.path;
    row["calls"] = s.calls;
    row["seconds"] = s.seconds;
    phases.push_back(std::move(row));
  }
  doc["phases"] = std::move(phases);
  util::Json counters = util::Json::object();
  for (const prof::CounterRow& c : w.profile.counters)
    counters[c.name] = c.value;
  doc["counters"] = std::move(counters);
  return doc;
}

void print_phase_table(const WorkloadResult& w) {
  std::printf("-- %s: %lld elements, cut %lld, migration %.2f%%/step, "
              "%.0f MiB peak, %.2f s (first step %.1f ms, steady %.1f ms)\n",
              w.name.c_str(), static_cast<long long>(w.elements_final),
              static_cast<long long>(w.cut_final),
              100.0 * w.migration_fraction_mean,
              static_cast<double>(w.peak_rss_bytes) / (1024.0 * 1024.0),
              w.total_seconds, w.first_step_seconds * 1e3,
              w.steady_step_seconds * 1e3);
  util::Table table({"phase", "calls", "total ms", "% of run"});
  for (const prof::SpanRow& s : w.profile.spans) {
    // Top two nesting levels keep the printed table readable; the JSON
    // carries the full tree.
    if (std::count(s.path.begin(), s.path.end(), '/') > 1) continue;
    table.row()
        .cell(s.path)
        .cell(s.calls)
        .cell(s.seconds * 1e3, 2)
        .cell(w.total_seconds > 0.0 ? 100.0 * s.seconds / w.total_seconds
                                    : 0.0,
              1);
  }
  table.print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const bool quick = cli.get_bool("quick");
  const auto p = static_cast<part::PartId>(cli.get_int("procs", 8));
  const int grid2d = cli.get_int("grid", quick ? 32 : 40);
  const int levels2d = cli.get_int("levels", quick ? 3 : 6);
  const int steps = cli.get_int("steps", quick ? 5 : 15);
  const std::uint64_t seed = 1;
  const std::string out = cli.get("out", "BENCH_pipeline.json");
  const int threads = bench::apply_threads_flag(cli);

  bench::banner("Pipeline e2e",
                "adapt -> repartition -> migrate on the paper's workloads; "
                "writes the perf trajectory BENCH_pipeline.json");

  std::vector<WorkloadResult> results;
  results.push_back(run_corner2d(p, grid2d, levels2d, seed));
  results.push_back(run_transient2d(p, grid2d, steps, seed));
  if (!quick)
    results.push_back(run_corner3d(p, cli.get_int("grid3d", 8),
                                   cli.get_int("levels3d", 3), seed));

  util::Json doc = util::Json::object();
  doc["schema"] = "pnr.bench_pipeline.v2";
  doc["binary"] = "bench_pipeline_e2e";
  doc["mode"] = quick ? "quick" : "default";
  doc["procs"] = static_cast<std::int64_t>(p);
  doc["threads"] = static_cast<std::int64_t>(threads);
  util::Json workloads = util::Json::array();
  double total = 0.0;
  for (const WorkloadResult& w : results) {
    print_phase_table(w);
    workloads.push_back(to_json(w, p));
    total += w.total_seconds;
  }
  doc["workloads"] = std::move(workloads);
  doc["total_seconds"] = total;

  std::ofstream file(out);
  if (!file) {
    std::fprintf(stderr, "cannot write %s\n", out.c_str());
    return 1;
  }
  file << doc.dump(2) << "\n";
  std::printf("wrote %s (%d workloads, %.2f s total)\n", out.c_str(),
              static_cast<int>(results.size()), total);
  return 0;
}
