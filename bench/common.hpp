#pragma once
// Shared machinery for the paper-table benches: growing the Section 6/7 mesh
// series to target sizes, performing the "small refinement step" of Figures
// 4/5 (a few hundred extra elements on a large mesh), and carrying element
// assignments across adaptation via the mesh tags.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "exec/pool.hpp"
#include "fem/estimator.hpp"
#include "fem/problems.hpp"
#include "mesh/dual.hpp"
#include "mesh/metrics.hpp"
#include "pared/session.hpp"
#include "pared/workloads.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace pnr::bench {

std::int64_t small_refinement(mesh::TriMesh& mesh,
                              const fem::ScalarField2& field,
                              std::int64_t count, int max_level);

/// Apply the shared --threads flag to the process-wide exec pool. Absent
/// the flag, the pool keeps its startup width (PNR_THREADS env var or 1, so
/// default runs reproduce the serial legacy behaviour exactly). Returns the
/// resulting width for banners/JSON.
inline int apply_threads_flag(const util::Cli& cli) {
  const int threads =
      cli.get_int("threads", exec::default_pool().num_threads());
  exec::set_default_threads(threads);
  return exec::default_pool().num_threads();
}

/// Grow a corner series until the mesh has roughly `target` leaves: whole
/// levels while far away, then top-indicator refinement batches to land
/// within a few percent of the target (so the Figure 4/5 rows use the same
/// sizes the paper's do).
inline int grow_to(pared::CornerSeries2D& series, std::int64_t target,
                   int max_rounds = 64) {
  int rounds = 0;
  while (series.mesh().num_leaves() < target && rounds < max_rounds) {
    const std::int64_t gap = target - series.mesh().num_leaves();
    if (gap > series.mesh().num_leaves() / 3) {
      series.advance();
    } else {
      // Each marked leaf yields ~2.4 bisections with propagation. Cap the
      // depth near the level the whole-level schedule would have reached so
      // no single refinement tree grows heavier than a processor's share.
      const auto marks = std::max<std::int64_t>(8, gap * 10 / 24);
      if (small_refinement(series.mutable_mesh(), series.field(), marks,
                           series.level() + 6) == 0)
        break;
    }
    ++rounds;
  }
  return rounds;
}

/// The Figure 4/5 refinement step: bisect roughly the `count` leaves with the
/// largest L∞ indicator (plus conformity propagation), mimicking the paper's
/// +150..+300-element adaptations. Returns the number of bisections.
inline std::int64_t small_refinement(mesh::TriMesh& mesh,
                                     const fem::ScalarField2& field,
                                     std::int64_t count,
                                     int max_level = 1 << 14) {
  struct Scored {
    double eta;
    mesh::ElemIdx e;
  };
  std::vector<Scored> scored;
  for (const mesh::ElemIdx e : mesh.leaf_elements())
    if (mesh.tri(e).level < max_level)
      scored.push_back({fem::element_indicator(mesh, e, field), e});
  std::sort(scored.begin(), scored.end(), [](const Scored& a, const Scored& b) {
    if (a.eta != b.eta) return a.eta > b.eta;
    return a.e < b.e;
  });
  std::vector<mesh::ElemIdx> marked;
  for (std::int64_t k = 0;
       k < count && k < static_cast<std::int64_t>(scored.size()); ++k)
    marked.push_back(scored[static_cast<std::size_t>(k)].e);
  return mesh.refine(marked);
}

/// Read the carried (tag) assignment of the current leaves; all tags must be
/// set (i.e. a session already adopted a partition on this mesh).
inline std::vector<part::PartId> carried(const mesh::TriMesh& mesh,
                                         const std::vector<mesh::ElemIdx>& elems) {
  std::vector<part::PartId> out(elems.size());
  for (std::size_t i = 0; i < elems.size(); ++i) {
    out[i] = mesh.tag(elems[i]);
  }
  return out;
}

/// Standard bench banner: what this binary reproduces.
inline void banner(const char* figure, const char* description) {
  std::printf("== %s — %s\n", figure, description);
}

/// The Figure 4 / Figure 5 experiment: a series of meshes of increasing
/// size; each is partitioned (Π^{t-1}), slightly refined (M^t, assignment
/// carried onto the new leaves), and repartitioned (Π̂^t). Reported columns
/// mirror the paper's tables: element counts, cut before/after, migration,
/// and migration after the optimal subset relabeling Π̃.
struct MigrationRow {
  std::int64_t elems_before = 0;
  graph::Weight cut_before = 0;
  std::int64_t elems_after = 0;
  graph::Weight cut_after = 0;
  std::int64_t migrate = 0;
  std::int64_t migrate_remapped = 0;
};

inline MigrationRow migration_experiment(const mesh::TriMesh& base_mesh,
                                         const fem::ScalarField2& field,
                                         pared::Strategy strategy,
                                         part::PartId p, std::int64_t marks,
                                         std::uint64_t seed) {
  mesh::TriMesh mesh = base_mesh;  // private copy: tags carry the assignment
  pared::Session2D session(strategy, p, seed);
  MigrationRow row;
  row.elems_before = mesh.num_leaves();
  row.cut_before = session.step(mesh).cut_new;
  small_refinement(mesh, field, marks);
  const auto report = session.step(mesh);
  row.elems_after = report.elements;
  row.cut_after = report.cut_new;
  row.migrate = report.migrated;
  row.migrate_remapped = report.migrated_remapped;
  return row;
}

}  // namespace pnr::bench
