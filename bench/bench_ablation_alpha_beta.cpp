// Ablation: the α/β parameters of the repartitioning objective (Eq. 1) and
// the two balance treatments PNR can run with:
//   * hard  — the default two-phase scheme (flow rebalance + hard-cap KL),
//   * soft  — the literal Eq. 1 objective (β·Σ(w_i − avg)² in the gain).
// The soft variant reproduces the paper's formula exactly but the quadratic
// penalty freezes heavy refinement trees and the cut decays level after
// level — the measured justification for the two-phase default (DESIGN.md).
//
//   --procs=8 --levels=5 --grid=40

#include <iostream>

#include "bench/common.hpp"
#include "core/pnr.hpp"

using namespace pnr;

namespace {

struct Variant {
  const char* name;
  core::PnrOptions options;
};

void run_variant(const Variant& variant, int levels, int grid,
                 part::PartId p, util::Table& table) {
  pared::CornerSeries2D series(grid);
  core::Pnr pnr(p, variant.options);
  util::Rng rng(3);
  std::vector<part::PartId> cur;
  std::int64_t total_migrate = 0;
  std::int64_t final_sv = 0;
  double worst_eps = 0.0;
  for (int level = 0; level <= levels; ++level) {
    if (level) series.advance();
    const auto& mesh = series.mesh();
    const auto coarse = mesh::nested_dual_graph(mesh);
    core::RepartitionStats st{};
    if (cur.empty()) {
      cur = pnr.initial_partition(coarse, rng).assign;
    } else {
      cur = pnr.repartition(coarse, part::Partition(p, cur), rng, &st).assign;
      total_migrate += st.migrate;
    }
    worst_eps = std::max(
        worst_eps, part::imbalance(coarse, part::Partition(p, cur)));
    if (level == levels) {
      const auto elems = mesh.leaf_elements();
      const auto fine = mesh::project_coarse_assignment(mesh, elems, cur);
      final_sv = mesh::shared_vertices(mesh, elems, fine);
    }
  }
  table.row()
      .cell(variant.name)
      .cell(variant.options.alpha, 2)
      .cell(variant.options.hard_balance ? std::string("hard")
                                         : std::string("soft"))
      .cell(static_cast<long long>(final_sv))
      .cell(static_cast<long long>(total_migrate))
      .cell(worst_eps, 3);
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const auto p = static_cast<part::PartId>(cli.get_int("procs", 8));
  const int levels = cli.get_int("levels", 5);
  const int grid = cli.get_int("grid", 40);

  bench::banner("Ablation",
                "alpha sweep and hard vs soft (literal Eq. 1) balance over "
                "the corner series");
  util::Timer timer;

  util::Table table(
      {"Variant", "alpha", "balance", "SharedV(final)", "TotalMigrate",
       "WorstEps"});

  std::vector<Variant> variants;
  for (const double alpha : {0.0, 0.05, 0.1, 0.5, 1.0}) {
    core::PnrOptions o;
    o.alpha = alpha;
    variants.push_back({"alpha-sweep", o});
  }
  {
    core::PnrOptions o;  // literal Eq. 1, paper constants
    o.hard_balance = false;
    o.alpha = 0.1;
    o.beta = 0.8;
    variants.push_back({"eq1-literal", o});
  }
  {
    core::PnrOptions o;
    o.hard_balance = false;
    o.alpha = 0.1;
    o.beta = 0.05;
    variants.push_back({"eq1-beta.05", o});
  }

  for (const auto& v : variants) run_variant(v, levels, grid, p, table);
  table.print(std::cout);
  std::printf("\nexpected shape: larger alpha trades cut for less migration; "
              "the soft Eq. 1 variants show the cut decay that motivates the "
              "two-phase default.\n[%.1fs]\n", timer.seconds());
  return 0;
}
