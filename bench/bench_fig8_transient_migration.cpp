// Figure 8: elements migrated between time steps of the moving-peak problem
// for (a) RSB, (b) RSB followed by the optimal subset relabeling Π̃, and
// (c) PNR. The paper: RSB moves 50–100% of the mesh per step; permuted RSB
// still averages ~21% with 46% peaks at p = 32; PNR averages 1.2% (p=4) to
// 5.5% (p=32) and is smooth.
//
//   --procs=4,8,16,32 --steps=30 --grid=40 --every=5
//   --paper (steps=100, grid=79) --csv=fig8.csv

#include <iostream>

#include "bench/common.hpp"
#include "util/stats.hpp"

using namespace pnr;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const bool paper = cli.get_bool("paper");
  const auto procs =
      cli.get_int_list("procs", paper ? std::vector<int>{4, 8, 16, 32}
                                      : std::vector<int>{4, 8, 16});
  const int every = cli.get_int("every", paper ? 1 : 2);

  pared::TransientOptions topts;
  topts.steps = cli.get_int("steps", paper ? 100 : 30);
  topts.grid_n = cli.get_int("grid", paper ? 79 : 40);

  bench::banner("Figure 8",
                "elements moved per transient step: RSB, permuted RSB, PNR");
  util::Timer timer;

  struct Lane {
    pared::TransientRun run;
    pared::Session2D session;
    util::RunningStat moved_pct;
  };
  // The RSB lane reports both raw and relabeled migration in one pass.
  std::vector<Lane> rsb_lanes, pnr_lanes;
  std::vector<util::RunningStat> remap_pct(procs.size());
  for (const int p : procs) {
    rsb_lanes.push_back({pared::TransientRun(topts),
                         pared::Session2D(pared::Strategy::kRsbRemap,
                                          static_cast<part::PartId>(p), 5),
                         {}});
    pnr_lanes.push_back({pared::TransientRun(topts),
                         pared::Session2D(pared::Strategy::kPNR,
                                          static_cast<part::PartId>(p), 5),
                         {}});
  }

  std::vector<std::string> header{"Step", "Elems"};
  for (const int p : procs) header.push_back("RSB/" + std::to_string(p));
  for (const int p : procs) header.push_back("RSB~/" + std::to_string(p));
  for (const int p : procs) header.push_back("PNR/" + std::to_string(p));
  util::Table table(header);

  for (auto& lane : rsb_lanes) lane.session.step(lane.run.mutable_mesh());
  for (auto& lane : pnr_lanes) lane.session.step(lane.run.mutable_mesh());

  while (!rsb_lanes.front().run.done()) {
    std::vector<std::int64_t> rsb_moved, remap_moved, pnr_moved;
    int step = 0;
    std::int64_t elems = 0;
    for (std::size_t k = 0; k < rsb_lanes.size(); ++k) {
      auto& lane = rsb_lanes[k];
      const auto info = lane.run.advance();
      step = info.step;
      const auto report = lane.session.step(lane.run.mutable_mesh());
      elems = report.elements;
      rsb_moved.push_back(report.migrated);
      remap_moved.push_back(report.migrated_remapped);
      lane.moved_pct.add(100.0 * static_cast<double>(report.migrated) /
                         static_cast<double>(report.elements));
      remap_pct[k].add(100.0 *
                       static_cast<double>(report.migrated_remapped) /
                       static_cast<double>(report.elements));
    }
    for (auto& lane : pnr_lanes) {
      lane.run.advance();
      const auto report = lane.session.step(lane.run.mutable_mesh());
      pnr_moved.push_back(report.migrated);
      lane.moved_pct.add(100.0 * static_cast<double>(report.migrated) /
                         static_cast<double>(report.elements));
    }
    if (step % every == 0 || rsb_lanes.front().run.done()) {
      table.row().cell(step).cell(static_cast<long long>(elems));
      for (const auto v : rsb_moved) table.cell(static_cast<long long>(v));
      for (const auto v : remap_moved) table.cell(static_cast<long long>(v));
      for (const auto v : pnr_moved) table.cell(static_cast<long long>(v));
    }
  }

  table.print(std::cout);
  const std::string csv = cli.get("csv", "");
  if (!csv.empty()) table.save_csv(csv);

  std::printf("\naverage %% of elements moved per step:\n");
  std::printf("%6s %12s %12s %12s\n", "p", "RSB", "RSB+remap", "PNR");
  for (std::size_t k = 0; k < procs.size(); ++k)
    std::printf("%6d %11.1f%% %11.1f%% %11.1f%%  (PNR peak %.1f%%)\n",
                procs[k], rsb_lanes[k].moved_pct.mean(), remap_pct[k].mean(),
                pnr_lanes[k].moved_pct.mean(), pnr_lanes[k].moved_pct.max());
  std::printf("\nexpected shape: RSB ≈ 50-100%%, permuted RSB tens of %% with "
              "sharp peaks, PNR a few %% and smooth.\n[%.1fs]\n",
              timer.seconds());
  return 0;
}
