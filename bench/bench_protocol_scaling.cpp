// Protocol scaling: run the Figure 2 coordinator protocol (P0–P3) over the
// message-passing simulator for increasing rank counts and report the
// traffic it generates — weight messages to the coordinator (P2), the
// broadcast assignment (P3), and the serialized tree payloads of the actual
// migration. The point of PNR's design is that P2/P3 scale with the *coarse*
// graph and the payload with the (small) migration, never with the fine
// mesh.
//
//   --procs=2,4,8 --steps=8 --grid=24 --dim=2|3

#include <cstdio>
#include <mutex>

#include "bench/common.hpp"
#include "mesh/generate.hpp"
#include "parallel/comm.hpp"
#include "parallel/protocol.hpp"

using namespace pnr;

namespace {

struct Totals {
  std::int64_t moved = 0;
  std::int64_t payload = 0;
  std::int64_t bytes = 0;
  std::int64_t messages = 0;
  std::int64_t final_leaves = 0;
  double worst_imbalance = 0.0;
};

template <typename Rank, typename MeshFactory, typename FieldFactory>
Totals run_protocol(int procs, int steps, MeshFactory&& make_mesh,
                    FieldFactory&& make_field) {
  par::World world(procs);
  Totals totals;
  std::mutex mutex;
  world.run([&](par::Comm& comm) {
    core::PnrOptions options;
    Rank rank(comm, make_mesh(), options, /*seed=*/17);
    rank.initialize();
    for (int step = 0; step < steps; ++step) {
      const auto field = make_field(step, steps);
      fem::MarkOptions mark;
      mark.refine_threshold = 0.03;
      mark.coarsen_threshold = 0.006;
      mark.max_level = 4;
      const auto stats = rank.step(field, mark);
      if (comm.rank() == 0) {
        std::lock_guard<std::mutex> lock(mutex);
        totals.moved += stats.elements_moved;
        totals.payload += stats.payload_bytes;
        totals.worst_imbalance =
            std::max(totals.worst_imbalance, stats.imbalance_after);
        totals.final_leaves = rank.local_mesh().num_leaves();
      }
      comm.barrier();
    }
  });
  totals.bytes = world.total_bytes();
  totals.messages = world.total_messages();
  return totals;
}

}  // namespace

#include <iostream>

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const auto procs = cli.get_int_list("procs", std::vector<int>{2, 4, 8});
  const int steps = cli.get_int("steps", 8);
  const int grid = cli.get_int("grid", 24);
  const int dim = cli.get_int("dim", 2);

  bench::banner("Protocol scaling",
                "Figure 2's P0-P3 over the message-passing runtime: traffic "
                "vs rank count (2D moving peak / 3D corner)");
  util::Timer timer;

  util::Table table({"Ranks", "Leaves", "Moved", "PayloadKB", "TotalKB",
                     "Msgs", "WorstEps"});
  for (const int p : procs) {
    Totals t;
    if (dim == 3) {
      t = run_protocol<par::ParedRank3D>(
          p, steps,
          [&] { return mesh::structured_tet_mesh(grid / 4, grid / 4,
                                                 grid / 4, 0.1, 2); },
          [&](int step, int) {
            auto f = fem::corner_problem_3d();
            (void)step;
            return f;
          });
    } else {
      t = run_protocol<par::ParedRank>(
          p, steps,
          [&] { return mesh::structured_tri_mesh(grid, grid, 0.25, 2); },
          [&](int step, int total) {
            return fem::moving_peak(-0.5 + 1.0 * step / total);
          });
    }
    table.row()
        .cell(p)
        .cell(static_cast<long long>(t.final_leaves))
        .cell(static_cast<long long>(t.moved))
        .cell(static_cast<double>(t.payload) / 1024.0, 1)
        .cell(static_cast<double>(t.bytes) / 1024.0, 1)
        .cell(static_cast<long long>(t.messages))
        .cell(t.worst_imbalance, 3);
  }
  table.print(std::cout);
  std::printf("\nexpected shape: payload tracks the migration (not the mesh "
              "size); total traffic grows mildly with ranks (P2 gathers + "
              "P3 broadcast).\n[%.1fs]\n", timer.seconds());
  return 0;
}
