// pnr::exec thread sweep: times the pool-threaded kernels (mesh.dual,
// graph.build, coarsen, fem.cg, partition.metrics) at 1/2/4/8 threads on
// the paper's workloads and verifies the determinism contract — every
// kernel must produce a bitwise-identical result at every width. Emits
// BENCH_exec.json (schema "pnr.bench_exec.v1", documented in
// docs/OBSERVABILITY.md).
//
// Exit code is nonzero ONLY on a determinism violation: speedups depend on
// the host's core count (this is a single-core-safe bench), fingerprints do
// not.
//
//   --quick               reduced sizes for CI
//   --threads=1,2,4,8     widths to sweep
//   --reps=3              repetitions per cell (minimum is reported)
//   --out=<path>          output JSON (default BENCH_exec.json)

#include <bit>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "fem/cg.hpp"
#include "fem/sparse.hpp"
#include "graph/builder.hpp"
#include "graph/coarsen.hpp"
#include "partition/partition.hpp"
#include "util/json.hpp"

using namespace pnr;

namespace {

/// FNV-1a over arbitrary word streams; doubles hash by bit pattern so the
/// fingerprint detects any bit-level divergence between thread counts.
class Fingerprint {
 public:
  void mix(std::uint64_t x) {
    for (int b = 0; b < 8; ++b) {
      h_ ^= (x >> (8 * b)) & 0xff;
      h_ *= 0x100000001b3ull;
    }
  }
  void mix(std::int64_t x) { mix(static_cast<std::uint64_t>(x)); }
  void mix(std::int32_t x) {
    mix(static_cast<std::uint64_t>(static_cast<std::uint32_t>(x)));
  }
  void mix(double x) { mix(std::bit_cast<std::uint64_t>(x)); }
  template <typename T>
  void mix_all(const std::vector<T>& v) {
    mix(static_cast<std::uint64_t>(v.size()));
    for (const T& x : v) mix(x);
  }
  std::uint64_t value() const { return h_; }

 private:
  std::uint64_t h_ = 0xcbf29ce484222325ull;
};

std::uint64_t graph_fingerprint(const graph::Graph& g) {
  Fingerprint fp;
  fp.mix_all(g.xadj());
  fp.mix_all(g.adjncy());
  fp.mix_all(g.adjwgt());
  fp.mix_all(g.vwgt());
  return fp.value();
}

struct Cell {
  int threads = 0;
  double seconds = 0.0;
};

struct KernelResult {
  std::string name;
  std::int64_t items = 0;  ///< problem size the kernel iterates over
  std::vector<Cell> cells;
  std::uint64_t fingerprint = 0;
  bool deterministic = true;
};

/// Time `kernel` (returning a fingerprint) at each width; the fingerprint
/// must not depend on the width.
template <typename Kernel>
KernelResult sweep_kernel(const std::string& name, std::int64_t items,
                          const std::vector<int>& widths, int reps,
                          Kernel&& kernel) {
  KernelResult r;
  r.name = name;
  r.items = items;
  for (const int t : widths) {
    exec::set_default_threads(t);
    double best = 0.0;
    std::uint64_t fp = 0;
    for (int rep = 0; rep < reps; ++rep) {
      util::Timer timer;
      fp = kernel();
      const double s = timer.seconds();
      if (rep == 0 || s < best) best = s;
    }
    r.cells.push_back({t, best});
    if (r.cells.size() == 1) {
      r.fingerprint = fp;
    } else if (fp != r.fingerprint) {
      r.deterministic = false;
      std::fprintf(stderr,
                   "DETERMINISM VIOLATION: %s at %d threads: fingerprint "
                   "%016llx != %016llx at %d threads\n",
                   name.c_str(), t, static_cast<unsigned long long>(fp),
                   static_cast<unsigned long long>(r.fingerprint),
                   r.cells.front().threads);
    }
  }
  exec::set_default_threads(1);
  return r;
}

template <typename Mesh>
std::vector<KernelResult> sweep_workload(const Mesh& mesh,
                                         const std::vector<int>& widths,
                                         int reps, part::PartId procs) {
  std::vector<KernelResult> out;
  const auto dual = mesh::fine_dual_graph(mesh);
  const graph::Graph& g = dual.graph;
  const std::int64_t n = g.num_vertices();

  out.push_back(sweep_kernel("mesh.dual", mesh.num_leaves(), widths, reps,
                             [&] {
                               const auto d = mesh::fine_dual_graph(mesh);
                               return graph_fingerprint(d.graph);
                             }));

  // graph.build: re-assemble the dual CSR from its flat upper-arc batch.
  std::vector<graph::WeightedEdge> edges;
  for (graph::VertexId v = 0; v < g.num_vertices(); ++v) {
    const auto nbrs = g.neighbors(v);
    const auto wgts = g.edge_weights(v);
    for (std::size_t k = 0; k < nbrs.size(); ++k)
      if (nbrs[k] > v) edges.push_back({v, nbrs[k], wgts[k]});
  }
  out.push_back(sweep_kernel(
      "graph.build", static_cast<std::int64_t>(edges.size()), widths, reps,
      [&] {
        const auto built = graph::build_csr_from_edges(
            g.num_vertices(), edges, {});
        return graph_fingerprint(built);
      }));

  out.push_back(sweep_kernel("coarsen", n, widths, reps, [&] {
    util::Rng rng(1);
    const auto level = graph::coarsen_once(g, rng, {});
    Fingerprint fp;
    fp.mix_all(level.fine_to_coarse);
    fp.mix(graph_fingerprint(level.graph));
    return fp.value();
  }));

  // fem.cg on the dual graph's Laplacian (+I, so it is SPD even with the
  // unit-weight dual edges).
  {
    std::vector<std::int32_t> rows, cols;
    std::vector<double> vals;
    for (graph::VertexId v = 0; v < g.num_vertices(); ++v) {
      const auto nbrs = g.neighbors(v);
      const auto wgts = g.edge_weights(v);
      double diag = 1.0;
      for (std::size_t k = 0; k < nbrs.size(); ++k) {
        rows.push_back(v);
        cols.push_back(nbrs[k]);
        vals.push_back(-static_cast<double>(wgts[k]));
        diag += static_cast<double>(wgts[k]);
      }
      rows.push_back(v);
      cols.push_back(v);
      vals.push_back(diag);
    }
    const auto m =
        fem::CsrMatrix::from_triplets(static_cast<std::int32_t>(n), rows,
                                      cols, vals);
    std::vector<double> b(static_cast<std::size_t>(n));
    util::Rng rng(2);
    for (auto& x : b) x = rng.next_double() * 2.0 - 1.0;
    out.push_back(sweep_kernel("fem.cg", n, widths, reps, [&] {
      std::vector<double> x(static_cast<std::size_t>(n), 0.0);
      const auto cg = fem::conjugate_gradient(m, b, x, 1e-10, 50);
      Fingerprint fp;
      fp.mix(static_cast<std::int64_t>(cg.iterations));
      fp.mix_all(cg.residuals);
      fp.mix_all(x);
      return fp.value();
    }));
  }

  // partition.metrics over a synthetic (but fixed) assignment.
  {
    part::Partition pi;
    pi.num_parts = procs;
    pi.assign.resize(static_cast<std::size_t>(n));
    for (std::int64_t v = 0; v < n; ++v)
      pi.assign[static_cast<std::size_t>(v)] = static_cast<part::PartId>(
          (static_cast<std::uint64_t>(v) * 2654435761ull >> 8) %
          static_cast<std::uint64_t>(procs));
    out.push_back(sweep_kernel("partition.metrics", n, widths, reps, [&] {
      Fingerprint fp;
      fp.mix(part::cut_size(g, pi));
      fp.mix_all(part::part_weights(g, pi));
      fp.mix(part::imbalance(g, pi));
      return fp.value();
    }));
  }
  return out;
}

util::Json to_json(const std::string& workload, std::int64_t elements,
                   const std::vector<KernelResult>& kernels) {
  util::Json doc = util::Json::object();
  doc["name"] = workload;
  doc["elements"] = elements;
  util::Json rows = util::Json::array();
  for (const KernelResult& k : kernels) {
    util::Json row = util::Json::object();
    row["name"] = k.name;
    row["items"] = k.items;
    row["deterministic"] = k.deterministic;
    char fp[32];
    std::snprintf(fp, sizeof fp, "%016llx",
                  static_cast<unsigned long long>(k.fingerprint));
    row["fingerprint"] = std::string(fp);
    util::Json cells = util::Json::array();
    const double t1 = k.cells.empty() ? 0.0 : k.cells.front().seconds;
    for (const Cell& c : k.cells) {
      util::Json cell = util::Json::object();
      cell["threads"] = static_cast<std::int64_t>(c.threads);
      cell["seconds"] = c.seconds;
      cell["speedup"] = c.seconds > 0.0 ? t1 / c.seconds : 0.0;
      cells.push_back(std::move(cell));
    }
    row["cells"] = std::move(cells);
    rows.push_back(std::move(row));
  }
  doc["kernels"] = std::move(rows);
  return doc;
}

void print_table(const std::string& workload,
                 const std::vector<KernelResult>& kernels) {
  std::printf("-- %s\n", workload.c_str());
  util::Table table({"kernel", "items", "t=1 ms", "t=2", "t=4", "t=8",
                     "speedup@4", "deterministic"});
  for (const KernelResult& k : kernels) {
    table.row().cell(k.name).cell(static_cast<long long>(k.items));
    double t1 = 0.0, t4 = 0.0;
    for (const Cell& c : k.cells) {
      if (c.threads == 1) t1 = c.seconds;
      if (c.threads == 4) t4 = c.seconds;
      table.cell(c.seconds * 1e3, 2);
    }
    for (std::size_t i = k.cells.size(); i < 4; ++i) table.cell("-");
    table.cell(t4 > 0.0 ? t1 / t4 : 0.0, 2)
        .cell(k.deterministic ? "yes" : "NO");
  }
  table.print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const bool quick = cli.get_bool("quick");
  const auto widths = cli.get_int_list("threads", {1, 2, 4, 8});
  const int reps = cli.get_int("reps", quick ? 2 : 3);
  const auto procs = static_cast<part::PartId>(cli.get_int("procs", 8));
  const std::string out = cli.get("out", "BENCH_exec.json");

  bench::banner("exec thread sweep",
                "pool-threaded kernels at 1/2/4/8 threads; fails only on a "
                "cross-thread determinism violation");

  util::Json doc = util::Json::object();
  doc["schema"] = "pnr.bench_exec.v1";
  doc["binary"] = "bench_exec";
  doc["mode"] = quick ? "quick" : "default";
  util::Json width_list = util::Json::array();
  for (const int t : widths) width_list.push_back(static_cast<std::int64_t>(t));
  doc["threads"] = std::move(width_list);
  util::Json workloads = util::Json::array();

  bool deterministic = true;
  {
    pared::TransientOptions topts;
    topts.grid_n = quick ? 28 : 40;
    topts.steps = quick ? 4 : 12;
    pared::TransientRun run(topts);
    while (!run.done()) run.advance();
    const auto kernels = sweep_workload(run.mesh(), widths, reps, procs);
    print_table("transient2d", kernels);
    workloads.push_back(
        to_json("transient2d", run.mesh().num_leaves(), kernels));
    for (const auto& k : kernels) deterministic &= k.deterministic;
  }
  {
    pared::CornerSeries3D series(quick ? 6 : 8);
    const int levels = quick ? 2 : 3;
    for (int l = 0; l < levels; ++l) series.advance();
    const auto kernels = sweep_workload(series.mesh(), widths, reps, procs);
    print_table("corner3d", kernels);
    workloads.push_back(
        to_json("corner3d", series.mesh().num_leaves(), kernels));
    for (const auto& k : kernels) deterministic &= k.deterministic;
  }

  doc["workloads"] = std::move(workloads);
  doc["deterministic"] = deterministic;

  std::ofstream file(out);
  if (!file) {
    std::fprintf(stderr, "cannot write %s\n", out.c_str());
    return 1;
  }
  file << doc.dump(2) << "\n";
  std::printf("wrote %s (deterministic: %s)\n", out.c_str(),
              deterministic ? "yes" : "NO");
  return deterministic ? 0 : 2;
}
