// Figure 3: partition quality (number of shared vertices) of Multilevel-KL
// vs PNR across the corner-problem refinement levels, 2D and 3D, for a sweep
// of processor counts. Multilevel-KL partitions the fine dual graph from
// scratch; PNR repartitions the nested coarse graph with α = 0.1 (and the
// previous level's assignment as home), exactly as Section 6 describes.
//
//   --procs=4,8,16,32[,64,128]  --levels2d=5 --levels3d=3 --grid2d=40
//   --grid3d=8 --paper (full scale: grid2d=79, grid3d=12, levels 8/5,
//   procs up to 128) --csv=fig3.csv

#include <iostream>

#include "bench/common.hpp"
#include "partition/mlkl.hpp"

using namespace pnr;

namespace {

struct LevelRow {
  int level;
  std::int64_t elements;
  std::vector<std::int64_t> mlkl_sv;
  std::vector<std::int64_t> pnr_sv;
};

void print_rows(const char* title, const std::vector<int>& procs,
                const std::vector<LevelRow>& rows, const std::string& csv) {
  std::vector<std::string> header{"Level", "Elems"};
  for (int p : procs) header.push_back("MLKL/" + std::to_string(p));
  for (int p : procs) header.push_back("PNR/" + std::to_string(p));
  util::Table table(header);
  for (const auto& row : rows) {
    table.row().cell(row.level).cell(row.elements);
    for (const auto v : row.mlkl_sv) table.cell(static_cast<long long>(v));
    for (const auto v : row.pnr_sv) table.cell(static_cast<long long>(v));
  }
  std::printf("\n%s\n", title);
  table.print(std::cout);
  if (!csv.empty()) table.save_csv(csv);
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const bool paper = cli.get_bool("paper");
  const auto procs = cli.get_int_list(
      "procs", paper ? std::vector<int>{4, 8, 16, 32, 64, 128}
                     : std::vector<int>{4, 8, 16, 32});
  const int levels2d = cli.get_int("levels2d", paper ? 8 : 5);
  const int levels3d = cli.get_int("levels3d", paper ? 5 : 3);
  const int grid2d = cli.get_int("grid2d", paper ? 79 : 40);
  const int grid3d = cli.get_int("grid3d", paper ? 12 : 8);

  bench::banner("Figure 3",
                "shared vertices: Multilevel-KL (fine graph, from scratch) vs "
                "PNR (nested graph, alpha=0.1)");
  util::Timer timer;

  // ---- 2D ----
  {
    std::vector<pared::Session2D> mlkl_sessions, pnr_sessions;
    std::vector<mesh::TriMesh> mlkl_meshes, pnr_meshes;
    for (const int p : procs) {
      mlkl_sessions.emplace_back(pared::Strategy::kMlkl,
                                 static_cast<part::PartId>(p), 7);
      pnr_sessions.emplace_back(pared::Strategy::kPNR,
                                static_cast<part::PartId>(p), 7);
    }

    pared::CornerSeries2D series(grid2d);
    std::vector<LevelRow> rows;
    for (int level = 0; level <= levels2d; ++level) {
      if (level > 0) series.advance();
      LevelRow row;
      row.level = level;
      row.elements = series.mesh().num_leaves();
      for (std::size_t k = 0; k < procs.size(); ++k) {
        // Each session needs its own mesh copy (assignments live in tags).
        auto mesh_a = series.mesh();
        auto mesh_b = series.mesh();
        // Replay the carried tags: copies share tag state with the series
        // mesh, which carries no partition; sessions re-adopt each level via
        // their own copies below.
        row.mlkl_sv.push_back(mlkl_sessions[k].step(mesh_a).shared_vertices);
        row.pnr_sv.push_back(pnr_sessions[k].step(mesh_b).shared_vertices);
      }
      rows.push_back(std::move(row));
    }
    print_rows("2D mesh (corner Laplace series)", procs, rows,
               cli.get("csv", ""));
  }

  // ---- 3D ----
  {
    std::vector<pared::Session3D> mlkl_sessions, pnr_sessions;
    for (const int p : procs) {
      mlkl_sessions.emplace_back(pared::Strategy::kMlkl,
                                 static_cast<part::PartId>(p), 7);
      pnr_sessions.emplace_back(pared::Strategy::kPNR,
                                static_cast<part::PartId>(p), 7);
    }
    pared::CornerSeries3D series(grid3d);
    std::vector<LevelRow> rows;
    for (int level = 0; level <= levels3d; ++level) {
      if (level > 0) series.advance();
      LevelRow row;
      row.level = level;
      row.elements = series.mesh().num_leaves();
      for (std::size_t k = 0; k < procs.size(); ++k) {
        auto mesh_a = series.mesh();
        auto mesh_b = series.mesh();
        row.mlkl_sv.push_back(mlkl_sessions[k].step(mesh_a).shared_vertices);
        row.pnr_sv.push_back(pnr_sessions[k].step(mesh_b).shared_vertices);
      }
      rows.push_back(std::move(row));
    }
    print_rows("3D mesh (corner Laplace series)", procs, rows, "");
  }

  std::printf("\nexpected shape: PNR within ~±30%% of Multilevel-KL at every "
              "level and p (paper: near parity).\n[%.1fs]\n", timer.seconds());
  return 0;
}
