// bench_engines: the repartitioner-engine matrix. MLKL, SFC-Morton,
// SFC-Hilbert and RIB each replay the same transient adaptation sequences
// (the Figure 7/8 workloads) on the persistent coarse dual graph, carrying
// their own partition across steps, and the bench records planning latency,
// cut, migration and imbalance per engine plus a cross-thread determinism
// fingerprint. Emits BENCH_engines.json (schema "pnr.bench_engines.v1",
// documented in docs/OBSERVABILITY.md); scripts/engine_gate.py grades the
// result against the MLKL baseline.
//
// Exit code is nonzero ONLY on a determinism violation: latencies and the
// SFC-vs-MLKL speedup depend on the host, fingerprints do not.
//
//   --quick               reduced sizes for CI
//   --threads=1,2,4,8     exec-pool widths to sweep
//   --reps=3              replays per cell (minimum planning time reported)
//   --parts=8             target partition count
//   --out=<path>          output JSON (default BENCH_engines.json)

#include <bit>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "core/hierarchy_cache.hpp"
#include "engine/engine.hpp"
#include "mesh/dual.hpp"
#include "partition/partition.hpp"
#include "util/json.hpp"

using namespace pnr;

namespace {

/// FNV-1a over the per-step assignments; detects any cross-thread
/// divergence in an engine's whole trajectory, not just the final step.
class Fingerprint {
 public:
  void mix(std::uint64_t x) {
    for (int b = 0; b < 8; ++b) {
      h_ ^= (x >> (8 * b)) & 0xff;
      h_ *= 0x100000001b3ull;
    }
  }
  void mix(std::int32_t x) {
    mix(static_cast<std::uint64_t>(static_cast<std::uint32_t>(x)));
  }
  template <typename T>
  void mix_all(const std::vector<T>& v) {
    mix(static_cast<std::uint64_t>(v.size()));
    for (const T& x : v) mix(x);
  }
  std::uint64_t value() const { return h_; }

 private:
  std::uint64_t h_ = 0xcbf29ce484222325ull;
};

/// One full transient replay under one engine at the current pool width.
struct Replay {
  double planning_seconds = 0.0;  ///< summed over the steps
  std::uint64_t fingerprint = 0;
  double cut_mean = 0.0;
  std::int64_t migrate_total = 0;
  double imbalance_max = 0.0;
  int steps = 0;
  std::int64_t coarse_vertices = 0;
};

template <typename Run, typename Opts>
Replay replay(engine::Kind kind, const Opts& opts, part::PartId parts,
              std::uint64_t seed) {
  Replay r;
  Run run(opts);
  util::Rng rng(seed);
  core::HierarchyCache cache;
  const auto& eng = engine::repartitioner(kind);
  // M^0 never changes: centroids once per replay, like a session would.
  const std::vector<double> coords = mesh::coarse_centroids(run.mesh());
  const int dim = static_cast<int>(
      coords.size() / static_cast<std::size_t>(
                          run.mesh().num_initial_elements()));

  part::Partition prev;
  bool have_prev = false;
  Fingerprint fp;
  double cut_sum = 0.0;
  while (!run.done()) {
    run.advance();
    const graph::Graph g = mesh::nested_dual_graph(run.mesh());
    engine::Input in;
    in.graph = &g;
    in.coords = coords;
    in.dim = dim;
    in.previous = have_prev ? &prev : nullptr;
    in.parts = parts;
    in.rng = &rng;
    in.cache = &cache;
    core::RepartitionStats stats;
    util::Timer timer;
    part::Partition pi = eng.run(in, &stats);
    r.planning_seconds += timer.seconds();
    fp.mix_all(pi.assign);
    cut_sum += static_cast<double>(stats.cut_after);
    r.migrate_total += stats.migrate;
    r.imbalance_max = std::max(r.imbalance_max, stats.imbalance_after);
    r.coarse_vertices = g.num_vertices();
    prev = std::move(pi);
    have_prev = true;
    ++r.steps;
  }
  r.cut_mean = r.steps > 0 ? cut_sum / r.steps : 0.0;
  r.fingerprint = fp.value();
  return r;
}

struct Cell {
  int threads = 0;
  double seconds = 0.0;  ///< best total planning time over the reps
};

struct EngineResult {
  std::string engine;
  std::vector<Cell> cells;
  std::uint64_t fingerprint = 0;
  bool deterministic = true;
  double cut_mean = 0.0;
  std::int64_t migrate_total = 0;
  double imbalance_max = 0.0;
  int steps = 0;
  std::int64_t coarse_vertices = 0;
};

template <typename Run, typename Opts>
EngineResult sweep_engine(engine::Kind kind, const Opts& opts,
                          part::PartId parts, const std::vector<int>& widths,
                          int reps, std::uint64_t seed) {
  EngineResult er;
  er.engine = engine::kind_name(kind);
  for (const int t : widths) {
    exec::set_default_threads(t);
    double best = 0.0;
    Replay last;
    for (int rep = 0; rep < reps; ++rep) {
      last = replay<Run>(kind, opts, parts, seed);
      if (rep == 0 || last.planning_seconds < best)
        best = last.planning_seconds;
    }
    er.cells.push_back({t, best});
    if (er.cells.size() == 1) {
      er.fingerprint = last.fingerprint;
      er.cut_mean = last.cut_mean;
      er.migrate_total = last.migrate_total;
      er.imbalance_max = last.imbalance_max;
      er.steps = last.steps;
      er.coarse_vertices = last.coarse_vertices;
    } else if (last.fingerprint != er.fingerprint) {
      er.deterministic = false;
      std::fprintf(stderr,
                   "DETERMINISM VIOLATION: %s at %d threads: fingerprint "
                   "%016llx != %016llx at %d threads\n",
                   er.engine.c_str(), t,
                   static_cast<unsigned long long>(last.fingerprint),
                   static_cast<unsigned long long>(er.fingerprint),
                   er.cells.front().threads);
    }
  }
  exec::set_default_threads(1);
  return er;
}

constexpr engine::Kind kAllKinds[] = {
    engine::Kind::kMlkl, engine::Kind::kSfcMorton, engine::Kind::kSfcHilbert,
    engine::Kind::kRib};

util::Json to_json(const std::string& workload, part::PartId parts,
                   const std::vector<EngineResult>& engines) {
  util::Json doc = util::Json::object();
  doc["name"] = workload;
  doc["parts"] = static_cast<std::int64_t>(parts);
  util::Json rows = util::Json::array();
  for (const EngineResult& e : engines) {
    util::Json row = util::Json::object();
    row["engine"] = e.engine;
    row["steps"] = static_cast<std::int64_t>(e.steps);
    row["coarse_vertices"] = e.coarse_vertices;
    row["cut_mean"] = e.cut_mean;
    row["migrate_total"] = e.migrate_total;
    row["imbalance_max"] = e.imbalance_max;
    row["deterministic"] = e.deterministic;
    char fp[32];
    std::snprintf(fp, sizeof fp, "%016llx",
                  static_cast<unsigned long long>(e.fingerprint));
    row["fingerprint"] = std::string(fp);
    util::Json cells = util::Json::array();
    for (const Cell& c : e.cells) {
      util::Json cell = util::Json::object();
      cell["threads"] = static_cast<std::int64_t>(c.threads);
      cell["planning_seconds"] = c.seconds;
      cells.push_back(std::move(cell));
    }
    row["cells"] = std::move(cells);
    rows.push_back(std::move(row));
  }
  doc["engines"] = std::move(rows);
  return doc;
}

void print_table(const std::string& workload,
                 const std::vector<EngineResult>& engines) {
  std::printf("-- %s\n", workload.c_str());
  double mlkl_t1 = 0.0;
  for (const EngineResult& e : engines)
    if (e.engine == "mlkl" && !e.cells.empty()) mlkl_t1 = e.cells[0].seconds;
  util::Table table({"engine", "coarse n", "steps", "plan ms", "vs mlkl",
                     "cut mean", "migrated", "imb max", "deterministic"});
  for (const EngineResult& e : engines) {
    const double t1 = e.cells.empty() ? 0.0 : e.cells[0].seconds;
    table.row()
        .cell(e.engine)
        .cell(static_cast<long long>(e.coarse_vertices))
        .cell(static_cast<long long>(e.steps))
        .cell(t1 * 1e3, 2)
        .cell(t1 > 0.0 ? mlkl_t1 / t1 : 0.0, 1)
        .cell(e.cut_mean, 1)
        .cell(static_cast<long long>(e.migrate_total))
        .cell(e.imbalance_max, 3)
        .cell(e.deterministic ? "yes" : "NO");
  }
  table.print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const bool quick = cli.get_bool("quick");
  const auto widths = cli.get_int_list("threads", {1, 2, 4, 8});
  const int reps = cli.get_int("reps", quick ? 2 : 3);
  const auto parts = static_cast<part::PartId>(cli.get_int("parts", 8));
  const std::string out = cli.get("out", "BENCH_engines.json");

  bench::banner("engine matrix",
                "MLKL / SFC-Morton / SFC-Hilbert / RIB over the transient "
                "workloads; fails only on a cross-thread determinism "
                "violation");

  util::Json doc = util::Json::object();
  doc["schema"] = "pnr.bench_engines.v1";
  doc["binary"] = "bench_engines";
  doc["mode"] = quick ? "quick" : "default";
  doc["parts"] = static_cast<std::int64_t>(parts);
  util::Json width_list = util::Json::array();
  for (const int t : widths) width_list.push_back(static_cast<std::int64_t>(t));
  doc["threads"] = std::move(width_list);
  util::Json workloads = util::Json::array();

  bool deterministic = true;
  {
    pared::TransientOptions topts;
    topts.grid_n = quick ? 20 : 32;
    topts.steps = quick ? 6 : 12;
    std::vector<EngineResult> engines;
    for (const engine::Kind kind : kAllKinds)
      engines.push_back(sweep_engine<pared::TransientRun>(
          kind, topts, parts, widths, reps, /*seed=*/7));
    print_table("transient2d", engines);
    workloads.push_back(to_json("transient2d", parts, engines));
    for (const auto& e : engines) deterministic &= e.deterministic;
  }
  {
    auto topts = pared::TransientRun3D::default_options();
    topts.grid_n = quick ? 5 : 7;
    topts.steps = quick ? 4 : 8;
    std::vector<EngineResult> engines;
    for (const engine::Kind kind : kAllKinds)
      engines.push_back(sweep_engine<pared::TransientRun3D>(
          kind, topts, parts, widths, reps, /*seed=*/11));
    print_table("transient3d", engines);
    workloads.push_back(to_json("transient3d", parts, engines));
    for (const auto& e : engines) deterministic &= e.deterministic;
  }

  doc["workloads"] = std::move(workloads);
  doc["deterministic"] = deterministic;

  std::ofstream file(out);
  if (!file) {
    std::fprintf(stderr, "cannot write %s\n", out.c_str());
    return 1;
  }
  file << doc.dump(2) << "\n";
  std::printf("wrote %s (deterministic: %s)\n", out.c_str(),
              deterministic ? "yes" : "NO");
  return deterministic ? 0 : 2;
}
