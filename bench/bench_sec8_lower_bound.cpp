// Section 8: the lower estimate of the migration cost. When refinement
// creates m new elements inside one processor P_o and balance is restored by
// moving elements only between adjacent processors, the cost is
//   C_migrate = Σ_{j≠o} d_{o,j}·m/p ≤ 2√p·m (corner of a processor mesh).
// We build a balanced partition, refine m elements inside one subset,
// compute the model cost over the measured processor connectivity graph
// H^t, and compare with the migration PNR actually performs.
//
//   --procs=4,8,16,32,64 --grid=40 --rounds=2

#include <iostream>

#include "bench/common.hpp"
#include "parallel/model.hpp"
#include "partition/diffusion.hpp"

using namespace pnr;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const auto procs =
      cli.get_int_list("procs", std::vector<int>{4, 8, 16, 32, 64});
  const int grid = cli.get_int("grid", 40);
  const int rounds = cli.get_int("rounds", 2);

  bench::banner("Section 8",
                "migration lower estimate vs PNR's measured migration when "
                "one processor's region is refined");
  util::Timer timer;

  util::Table out({"Proc", "m_new", "Model", "CornerBound", "PNR_migrate",
                   "PNR/Model"});

  const auto field = fem::corner_problem_2d();
  for (const int p : procs) {
    // Balanced PNR partition of the base mesh.
    pared::CornerSeries2D series(grid);
    mesh::TriMesh mesh = series.mesh();
    pared::Session2D session(pared::Strategy::kPNR,
                             static_cast<part::PartId>(p), 9);
    session.step(mesh);

    // Refine only inside the subset owning the corner (where the indicator
    // is largest): all marks land on one processor, as Section 8 assumes.
    const auto leaves0 = mesh.leaf_elements();
    part::PartId owner = 0;
    double best = -1.0;
    for (std::size_t i = 0; i < leaves0.size(); ++i) {
      const double eta = fem::element_indicator(mesh, leaves0[i], field);
      if (eta > best) {
        best = eta;
        owner = mesh.tag(leaves0[i]);
      }
    }
    const std::int64_t before = mesh.num_leaves();
    for (int r = 0; r < rounds; ++r) {
      std::vector<mesh::ElemIdx> marked;
      for (const mesh::ElemIdx e : mesh.leaf_elements())
        if (mesh.tag(e) == owner &&
            fem::element_indicator(mesh, e, field) > best * 0.01)
          marked.push_back(e);
      mesh.refine(marked);
    }
    const std::int64_t m = mesh.num_leaves() - before;

    // Model cost on the measured H^t of the carried partition.
    const auto elems = mesh.leaf_elements();
    const auto carried = bench::carried(mesh, elems);
    const auto dual = mesh::fine_dual_graph(mesh);
    const auto h = part::processor_graph(
        dual.graph, part::Partition(static_cast<part::PartId>(p), carried));
    const double model = par::migration_cost_model(h, owner, m);
    const double bound = par::corner_mesh_bound(p, m);

    const auto report = session.step(mesh);
    out.row()
        .cell(p)
        .cell(static_cast<long long>(m))
        .cell(model, 0)
        .cell(bound, 0)
        .cell(static_cast<long long>(report.migrated))
        .cell(model > 0 ? static_cast<double>(report.migrated) / model : 0.0,
              2);
  }
  out.print(std::cout);
  std::printf("\nexpected shape: PNR's migration is within a small factor of "
              "the Σ d_oj·m/p model and both respect the 2√p·m bound's "
              "scaling (independent of total mesh size).\n[%.1fs]\n",
              timer.seconds());
  return 0;
}
