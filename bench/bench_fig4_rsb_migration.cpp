// Figure 4: the migration cost of repartitioning with RSB. A series of 2D
// corner meshes of increasing size is each partitioned with RSB, slightly
// refined (a few hundred bisections, as in the paper), and repartitioned
// from scratch with RSB. Columns are the paper's: element counts, the cut
// before and after, C_migrate(Π^t, Π̂^t), and C_migrate(Π^t, Π̃^t) after the
// optimal Biswas–Oliker relabeling.
//
//   --sizes=5000,11000,24000 --procs=4,8,16,32,64 --marks=120
//   --paper (adds 50000 and 103000) --csv=fig4.csv

#include <iostream>

#include "bench/common.hpp"

using namespace pnr;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const bool paper = cli.get_bool("paper");
  const auto sizes = cli.get_int_list(
      "sizes", paper ? std::vector<int>{12500, 24000, 50000, 103000}
                     : std::vector<int>{5000, 11000, 24000});
  const auto procs =
      cli.get_int_list("procs", std::vector<int>{4, 8, 16, 32, 64});
  const auto marks = static_cast<std::int64_t>(cli.get_int("marks", 120));

  bench::banner("Figure 4",
                "migration cost of repartitioning a growing 2D mesh series "
                "with RSB (expected: ~half the mesh moves even after the "
                "optimal relabeling)");
  util::Timer timer;

  util::Table table({"Proc", "Elem(t-1)", "Cut(t-1)", "Elem(t)", "Cut(t)",
                     "Migrate", "Migrate~"});
  const auto field = fem::corner_problem_2d();
  for (const int size : sizes) {
    pared::CornerSeries2D series(paper ? 79 : 40);
    bench::grow_to(series, size);
    for (const int p : procs) {
      const auto row = bench::migration_experiment(
          series.mesh(), field, pared::Strategy::kRSB,
          static_cast<part::PartId>(p), marks, /*seed=*/5);
      table.row()
          .cell(p)
          .cell(static_cast<long long>(row.elems_before))
          .cell(static_cast<long long>(row.cut_before))
          .cell(static_cast<long long>(row.elems_after))
          .cell(static_cast<long long>(row.cut_after))
          .cell(static_cast<long long>(row.migrate))
          .cell(static_cast<long long>(row.migrate_remapped));
    }
  }
  table.print(std::cout);
  const std::string csv = cli.get("csv", "");
  if (!csv.empty()) table.save_csv(csv);
  std::printf("\nexpected shape: Migrate ~ O(mesh size); Migrate~ still a "
              "large fraction (the paper sees ≥40%% at the largest sizes).\n"
              "[%.1fs]\n", timer.seconds());
  return 0;
}
