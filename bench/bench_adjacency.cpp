// Section 3 notes that on high-latency networks the communication cost also
// depends on the *number of adjacent subdomains* per processor (each
// neighbor costs a message). This bench compares the adjacency statistics
// (mean and max neighbors per subset) of the partitions PNR and the
// baselines produce on the adapted corner mesh — nested partitions could in
// principle have worse adjacency (coarse elements are larger), so we
// measure it.
//
//   --procs=8,16,32 --levels=5 --grid=40 --seeds=3

#include <iostream>

#include "bench/common.hpp"
#include "util/stats.hpp"

using namespace pnr;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const auto procs = cli.get_int_list("procs", std::vector<int>{8, 16, 32});
  const int levels = cli.get_int("levels", 5);
  const int grid = cli.get_int("grid", 40);
  const int seeds = cli.get_int("seeds", 3);

  bench::banner("Adjacency",
                "adjacent subdomains per processor (mean/max) for PNR vs "
                "fine-graph partitioners on the adapted corner mesh");
  util::Timer timer;

  pared::CornerSeries2D series(grid);
  for (int l = 0; l < levels; ++l) series.advance();

  util::Table table({"Method", "Proc", "SharedV", "AdjMean", "AdjMax"});
  for (const pared::Strategy strategy :
       {pared::Strategy::kPNR, pared::Strategy::kMlkl,
        pared::Strategy::kRSB}) {
    for (const int p : procs) {
      util::RunningStat shared, adj_mean, adj_max;
      for (int seed = 1; seed <= seeds; ++seed) {
        auto mesh = series.mesh();
        pared::Session2D session(strategy, static_cast<part::PartId>(p),
                                 static_cast<std::uint64_t>(seed));
        const auto report = session.step(mesh);
        shared.add(static_cast<double>(report.shared_vertices));

        const auto elems = mesh.leaf_elements();
        std::vector<part::PartId> assign(elems.size());
        for (std::size_t i = 0; i < elems.size(); ++i)
          assign[i] = mesh.tag(elems[i]);
        const auto dual = mesh::fine_dual_graph(mesh);
        const auto counts = mesh::adjacent_subdomains(
            dual.graph, assign, static_cast<part::PartId>(p));
        double sum = 0.0, mx = 0.0;
        for (const auto c : counts) {
          sum += c;
          mx = std::max(mx, static_cast<double>(c));
        }
        adj_mean.add(sum / static_cast<double>(p));
        adj_max.add(mx);
      }
      table.row()
          .cell(pared::strategy_name(strategy))
          .cell(p)
          .cell(shared.mean(), 0)
          .cell(adj_mean.mean(), 2)
          .cell(adj_max.mean(), 1);
    }
  }
  table.print(std::cout);
  std::printf("\nexpected shape: PNR's adjacency statistics are comparable "
              "to the fine-graph partitioners' — respecting coarse element "
              "boundaries does not inflate the neighbor count.\n[%.1fs]\n",
              timer.seconds());
  return 0;
}
