// Ablation of PNR's structural choices:
//   (a) "don't repartition the coarsest graph" (Section 9 modification (a))
//       vs partitioning it from scratch — the latter is exactly the standard
//       multilevel behavior that triggers the huge migrations of Section 7;
//   (b) heavy-edge vs random matching in the contraction;
//   (c) Theorem 6.1 in practice: snapping an RSB fine-mesh partition to the
//       coarse-element boundaries — measures the cut expansion factor and
//       the balance penalty of nested partitions.
//
//   --procs=8 --levels=5 --grid=40

#include <iostream>

#include "bench/common.hpp"
#include "core/pnr.hpp"
#include "core/snap.hpp"
#include "partition/rsb.hpp"

using namespace pnr;

namespace {

void run_pnr_variant(const char* name, const core::PnrOptions& options,
                     int levels, int grid, part::PartId p,
                     util::Table& table) {
  pared::CornerSeries2D series(grid);
  core::Pnr pnr(p, options);
  util::Rng rng(3);
  std::vector<part::PartId> cur;
  std::int64_t total_migrate = 0;
  std::int64_t final_sv = 0;
  for (int level = 0; level <= levels; ++level) {
    if (level) series.advance();
    const auto coarse = mesh::nested_dual_graph(series.mesh());
    core::RepartitionStats st{};
    if (cur.empty()) {
      cur = pnr.initial_partition(coarse, rng).assign;
    } else {
      cur = pnr.repartition(coarse, part::Partition(p, cur), rng, &st).assign;
      total_migrate += st.migrate;
    }
    if (level == levels) {
      const auto elems = series.mesh().leaf_elements();
      const auto fine =
          mesh::project_coarse_assignment(series.mesh(), elems, cur);
      final_sv = mesh::shared_vertices(series.mesh(), elems, fine);
    }
  }
  table.row()
      .cell(name)
      .cell(static_cast<long long>(final_sv))
      .cell(static_cast<long long>(total_migrate));
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const auto p = static_cast<part::PartId>(cli.get_int("procs", 8));
  const int levels = cli.get_int("levels", 5);
  const int grid = cli.get_int("grid", 40);

  bench::banner("Ablation", "PNR structural choices (coarsest handling, "
                            "matching) and the Theorem 6.1 snap");
  util::Timer timer;

  {
    util::Table table({"Variant", "SharedV(final)", "TotalMigrate"});
    core::PnrOptions keep;  // default: keep the current coarsest assignment
    run_pnr_variant("keep-coarsest (PNR)", keep, levels, grid, p, table);
    core::PnrOptions scratch = keep;
    scratch.repartition_coarsest = true;
    run_pnr_variant("repartition-coarsest", scratch, levels, grid, p, table);
    core::PnrOptions random = keep;
    random.random_matching = true;
    run_pnr_variant("random-matching", random, levels, grid, p, table);
    table.print(std::cout);
    std::printf("\nexpected: repartition-coarsest migrates more for similar "
                "cut; the migration-aware uncoarsening recovers much of the "
                "damage, so the full Section 7 failure (half the mesh "
                "moving) only appears with the plain partitioners of "
                "Figure 4.\n");
  }

  // ---- Theorem 6.1 snap ----
  {
    util::Table table({"Level", "Elems", "RSB-cut", "Snap-cut", "Expansion",
                       "RSB-eps", "Snap-eps"});
    pared::CornerSeries2D series(grid);
    util::Rng rng(7);
    for (int level = 0; level <= levels; ++level) {
      if (level) series.advance();
      const auto& mesh = series.mesh();
      const auto elems = mesh.leaf_elements();
      const auto dual = mesh::fine_dual_graph(mesh);
      const auto pi = part::rsb(dual.graph, p, rng);
      const auto snap = core::snap_to_coarse(mesh, elems, pi.assign, p);
      const auto cut_rsb = part::cut_size(dual.graph, pi);
      const auto cut_snap = part::cut_size(
          dual.graph, part::Partition(p, snap.fine_assign));
      table.row()
          .cell(level)
          .cell(static_cast<long long>(elems.size()))
          .cell(static_cast<long long>(cut_rsb))
          .cell(static_cast<long long>(cut_snap))
          .cell(static_cast<double>(cut_snap) /
                    std::max<double>(1.0, static_cast<double>(cut_rsb)),
                2)
          .cell(part::imbalance(dual.graph, pi), 3)
          .cell(part::imbalance(dual.graph,
                                part::Partition(p, snap.fine_assign)),
                3);
    }
    std::printf("\nTheorem 6.1: cut expansion of snapping a fine partition "
                "to coarse-element boundaries (bound: 9x)\n");
    table.print(std::cout);
  }

  std::printf("\n[%.1fs]\n", timer.seconds());
  return 0;
}
