// Figure 7: partition quality (shared vertices) per time step of the
// Section 10 moving-peak problem, RSB vs PNR, for several processor counts.
// Even though PNR is an incremental local heuristic, its cut must not
// deteriorate over the 100 steps.
//
//   --procs=4,8,16,32 --steps=30 --grid=40 --every=5
//   --paper (steps=100, grid=79) --csv=fig7.csv

#include <iostream>

#include "bench/common.hpp"

using namespace pnr;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const bool paper = cli.get_bool("paper");
  const auto procs =
      cli.get_int_list("procs", paper ? std::vector<int>{4, 8, 16, 32}
                                      : std::vector<int>{4, 8, 16});
  const int every = cli.get_int("every", paper ? 1 : 2);

  pared::TransientOptions topts;
  topts.steps = cli.get_int("steps", paper ? 100 : 30);
  topts.grid_n = cli.get_int("grid", paper ? 79 : 40);

  bench::banner("Figure 7",
                "shared vertices per transient time step, RSB vs PNR "
                "(expected: PNR tracks RSB without degrading over time)");
  util::Timer timer;

  // One independent run+session per (strategy, p): tags carry assignments.
  struct Lane {
    pared::TransientRun run;
    pared::Session2D session;
  };
  std::vector<Lane> rsb_lanes, pnr_lanes;
  for (const int p : procs) {
    rsb_lanes.push_back({pared::TransientRun(topts),
                         pared::Session2D(pared::Strategy::kRSB,
                                          static_cast<part::PartId>(p), 5)});
    pnr_lanes.push_back({pared::TransientRun(topts),
                         pared::Session2D(pared::Strategy::kPNR,
                                          static_cast<part::PartId>(p), 5)});
  }

  std::vector<std::string> header{"Step", "t", "Elems"};
  for (const int p : procs) header.push_back("RSB/" + std::to_string(p));
  for (const int p : procs) header.push_back("PNR/" + std::to_string(p));
  util::Table table(header);

  // Step 0 partitions.
  for (auto& lane : rsb_lanes) lane.session.step(lane.run.mutable_mesh());
  for (auto& lane : pnr_lanes) lane.session.step(lane.run.mutable_mesh());

  while (!rsb_lanes.front().run.done()) {
    std::vector<std::int64_t> rsb_sv, pnr_sv;
    int step = 0;
    double t = 0.0;
    std::int64_t elems = 0;
    for (auto& lane : rsb_lanes) {
      const auto info = lane.run.advance();
      step = info.step;
      t = info.t;
      const auto report = lane.session.step(lane.run.mutable_mesh());
      elems = report.elements;
      rsb_sv.push_back(report.shared_vertices);
    }
    for (auto& lane : pnr_lanes) {
      lane.run.advance();
      pnr_sv.push_back(lane.session.step(lane.run.mutable_mesh()).shared_vertices);
    }
    if (step % every == 0 || rsb_lanes.front().run.done()) {
      table.row().cell(step).cell(t, 3).cell(static_cast<long long>(elems));
      for (const auto v : rsb_sv) table.cell(static_cast<long long>(v));
      for (const auto v : pnr_sv) table.cell(static_cast<long long>(v));
    }
  }

  table.print(std::cout);
  const std::string csv = cli.get("csv", "");
  if (!csv.empty()) table.save_csv(csv);
  std::printf("\nexpected shape: PNR's series stays flat and within a small "
              "factor of RSB's at every p.\n[%.1fs]\n", timer.seconds());
  return 0;
}
