// google-benchmark microbenchmarks of the partitioning kernels: how long do
// Multilevel-KL, RSB, the inertial bisection, PNR's repartition and the
// supporting pieces (dual graph extraction, refinement, Hungarian remap)
// take at realistic sizes? These timings back the paper's claim that PNR's
// coordinator step is cheap relative to fine-mesh partitioning.

#include <benchmark/benchmark.h>

#include "core/pnr.hpp"
#include "fem/estimator.hpp"
#include "mesh/dual.hpp"
#include "mesh/generate.hpp"
#include "pared/workloads.hpp"
#include "partition/inertial.hpp"
#include "partition/mlkl.hpp"
#include "partition/remap.hpp"
#include "partition/rsb.hpp"

using namespace pnr;

namespace {

/// Shared adapted mesh per grid size (built once; benches only read it).
const mesh::TriMesh& adapted_mesh(int grid) {
  static std::map<int, mesh::TriMesh> cache;
  auto it = cache.find(grid);
  if (it == cache.end()) {
    pared::CornerSeries2D series(grid);
    for (int l = 0; l < 4; ++l) series.advance();
    it = cache.emplace(grid, series.mesh()).first;
  }
  return it->second;
}

void BM_FineDualGraph(benchmark::State& state) {
  const auto& mesh = adapted_mesh(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto dual = mesh::fine_dual_graph(mesh);
    benchmark::DoNotOptimize(dual.graph.num_edges());
  }
  state.SetLabel(std::to_string(mesh.num_leaves()) + " elems");
}
BENCHMARK(BM_FineDualGraph)->Arg(24)->Arg(40);

void BM_NestedDualGraph(benchmark::State& state) {
  const auto& mesh = adapted_mesh(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto g = mesh::nested_dual_graph(mesh);
    benchmark::DoNotOptimize(g.num_edges());
  }
  state.SetLabel(std::to_string(mesh.num_leaves()) + " elems");
}
BENCHMARK(BM_NestedDualGraph)->Arg(24)->Arg(40);

void BM_MultilevelKL(benchmark::State& state) {
  const auto& mesh = adapted_mesh(40);
  const auto dual = mesh::fine_dual_graph(mesh);
  const auto p = static_cast<part::PartId>(state.range(0));
  util::Rng rng(1);
  for (auto _ : state) {
    auto pi = part::multilevel_kl(dual.graph, p, rng);
    benchmark::DoNotOptimize(pi.assign.data());
  }
}
BENCHMARK(BM_MultilevelKL)->Arg(4)->Arg(16)->Unit(benchmark::kMillisecond);

void BM_RSB(benchmark::State& state) {
  const auto& mesh = adapted_mesh(40);
  const auto dual = mesh::fine_dual_graph(mesh);
  const auto p = static_cast<part::PartId>(state.range(0));
  util::Rng rng(1);
  for (auto _ : state) {
    auto pi = part::rsb(dual.graph, p, rng);
    benchmark::DoNotOptimize(pi.assign.data());
  }
}
BENCHMARK(BM_RSB)->Arg(4)->Arg(16)->Unit(benchmark::kMillisecond);

void BM_Inertial(benchmark::State& state) {
  const auto& mesh = adapted_mesh(40);
  const auto dual = mesh::fine_dual_graph(mesh);
  const auto coords = mesh::leaf_centroids(mesh, dual.elems);
  util::Rng rng(1);
  for (auto _ : state) {
    auto pi = part::inertial_partition(dual.graph, coords, 2, 16, rng);
    benchmark::DoNotOptimize(pi.assign.data());
  }
}
BENCHMARK(BM_Inertial)->Unit(benchmark::kMillisecond);

void BM_PnrRepartition(benchmark::State& state) {
  const auto p = static_cast<part::PartId>(state.range(0));
  pared::CornerSeries2D series(40);
  for (int l = 0; l < 4; ++l) series.advance();
  const auto before = mesh::nested_dual_graph(series.mesh());
  core::Pnr pnr(p);
  util::Rng rng(1);
  const auto current = pnr.initial_partition(before, rng);
  series.advance();
  const auto after = mesh::nested_dual_graph(series.mesh());
  for (auto _ : state) {
    auto pi = pnr.repartition(after, current, rng);
    benchmark::DoNotOptimize(pi.assign.data());
  }
}
BENCHMARK(BM_PnrRepartition)->Arg(4)->Arg(16)->Unit(benchmark::kMillisecond);

void BM_HungarianRemap(benchmark::State& state) {
  const auto p = static_cast<part::PartId>(state.range(0));
  std::vector<graph::Weight> cost(static_cast<std::size_t>(p) * p);
  util::Rng rng(2);
  for (auto& c : cost) c = static_cast<graph::Weight>(rng.next_below(1000));
  for (auto _ : state) {
    auto sigma = part::hungarian_min_cost(cost, p);
    benchmark::DoNotOptimize(sigma.data());
  }
}
BENCHMARK(BM_HungarianRemap)->Arg(32)->Arg(128);

void BM_RivaraRefine(benchmark::State& state) {
  const auto field = fem::corner_problem_2d();
  for (auto _ : state) {
    state.PauseTiming();
    auto mesh = mesh::structured_tri_mesh(40, 40, 0.25, 1);
    fem::MarkOptions mark;
    mark.refine_threshold = 0.01;
    mark.max_level = 4;
    const auto marked = fem::mark_for_refinement(mesh, field, mark);
    state.ResumeTiming();
    benchmark::DoNotOptimize(mesh.refine(marked));
  }
}
BENCHMARK(BM_RivaraRefine)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
