// Figures 1 and 6 are pictures of adapted meshes; this bench reproduces
// them as level-by-level mesh statistics plus SVG renderings:
//   * Figure 1 — the 2D and 3D corner-problem meshes after L∞-driven
//     refinement (paper: 12,498 → 135,371 triangles over 8 levels and
//     9,540 → 70,185 tets over 5 levels);
//   * Figure 6 — the transient meshes at t = −0.5 and t = +0.5.
//
//   --levels2d=5 --levels3d=3 --grid2d=40 --grid3d=8 --steps=30
//   --paper (full scale) --outdir=.

#include <iostream>
#include <string>

#include "bench/common.hpp"
#include "mesh/svg.hpp"

using namespace pnr;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const bool paper = cli.get_bool("paper");
  const int levels2d = cli.get_int("levels2d", paper ? 8 : 5);
  const int levels3d = cli.get_int("levels3d", paper ? 5 : 3);
  const int grid2d = cli.get_int("grid2d", paper ? 79 : 40);
  const int grid3d = cli.get_int("grid3d", paper ? 12 : 8);
  const std::string outdir = cli.get("outdir", ".");

  bench::banner("Figures 1 & 6",
                "adapted mesh statistics and SVG renderings of the corner "
                "and moving-peak meshes");
  util::Timer timer;

  // ---- Figure 1, 2D ----
  {
    util::Table table({"Level", "Triangles", "Vertices", "MinAngle",
                       "MaxAngle", "MinArea/MaxArea"});
    pared::CornerSeries2D series(grid2d);
    for (int level = 0; level <= levels2d; ++level) {
      if (level) series.advance();
      const auto& mesh = series.mesh();
      const auto q = mesh::mesh_quality(mesh);
      table.row()
          .cell(level)
          .cell(static_cast<long long>(mesh.num_leaves()))
          .cell(static_cast<long long>(mesh.num_vertices_alive()))
          .cell(q.min_angle_deg, 1)
          .cell(q.max_angle_deg, 1)
          .cell(q.min_volume / q.max_volume, 6);
    }
    std::printf("\nFigure 1 (2D corner mesh series)\n");
    table.print(std::cout);

    const auto elems = series.mesh().leaf_elements();
    const std::string path = outdir + "/fig1_corner_mesh.svg";
    if (mesh::write_partition_svg(series.mesh(), elems, {}, path))
      std::printf("wrote %s\n", path.c_str());
  }

  // ---- Figure 1, 3D ----
  {
    util::Table table({"Level", "Tets", "Vertices", "MinVol/MaxVol"});
    pared::CornerSeries3D series(grid3d);
    for (int level = 0; level <= levels3d; ++level) {
      if (level) series.advance();
      const auto& mesh = series.mesh();
      const auto q = mesh::mesh_quality(mesh);
      table.row()
          .cell(level)
          .cell(static_cast<long long>(mesh.num_leaves()))
          .cell(static_cast<long long>(mesh.num_vertices_alive()))
          .cell(q.min_volume / q.max_volume, 6);
    }
    std::printf("\nFigure 1 (3D corner mesh series)\n");
    table.print(std::cout);
  }

  // ---- Figure 6 ----
  {
    pared::TransientOptions topts;
    topts.steps = cli.get_int("steps", paper ? 100 : 30);
    topts.grid_n = grid2d;
    pared::TransientRun run(topts);

    const std::string begin_path = outdir + "/fig6a_peak_begin.svg";
    if (mesh::write_partition_svg(run.mesh(), run.mesh().leaf_elements(), {},
                                  begin_path))
      std::printf("\nFigure 6(a): t=%.2f, %lld elements — wrote %s\n",
                  run.time(), static_cast<long long>(run.mesh().num_leaves()),
                  begin_path.c_str());

    while (!run.done()) run.advance();

    const std::string end_path = outdir + "/fig6b_peak_end.svg";
    if (mesh::write_partition_svg(run.mesh(), run.mesh().leaf_elements(), {},
                                  end_path))
      std::printf("Figure 6(b): t=%.2f, %lld elements — wrote %s\n",
                  run.time(), static_cast<long long>(run.mesh().num_leaves()),
                  end_path.c_str());
  }

  std::printf("\n[%.1fs]\n", timer.seconds());
  return 0;
}
