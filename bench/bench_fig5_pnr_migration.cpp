// Figure 5: the same experiment as Figure 4 but repartitioning with PNR
// (α = 0.1). The migration column collapses to O(hundreds) of elements,
// roughly independent of the mesh size, and the optimal relabeling Π̃ is the
// identity (Migrate == Migrate~) because PNR already keeps subsets on their
// processors.
//
//   --sizes=5000,11000,24000 --procs=4,8,16,32,64 --marks=120
//   --paper (adds 50000 and 103000) --csv=fig5.csv

#include <iostream>

#include "bench/common.hpp"

using namespace pnr;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const bool paper = cli.get_bool("paper");
  const auto sizes = cli.get_int_list(
      "sizes", paper ? std::vector<int>{12500, 24000, 50000, 103000}
                     : std::vector<int>{5000, 11000, 24000});
  const auto procs =
      cli.get_int_list("procs", std::vector<int>{4, 8, 16, 32, 64});
  const auto marks = static_cast<std::int64_t>(cli.get_int("marks", 120));

  bench::banner("Figure 5",
                "migration cost of repartitioning the same mesh series with "
                "PNR (alpha=0.1): small, size-independent movement");
  util::Timer timer;

  util::Table table({"Proc", "Elem(t-1)", "Cut(t-1)", "Elem(t)", "Cut(t)",
                     "Migrate", "Migrate~"});
  const auto field = fem::corner_problem_2d();
  for (const int size : sizes) {
    pared::CornerSeries2D series(paper ? 79 : 40);
    bench::grow_to(series, size);
    for (const int p : procs) {
      const auto row = bench::migration_experiment(
          series.mesh(), field, pared::Strategy::kPNR,
          static_cast<part::PartId>(p), marks, /*seed=*/5);
      table.row()
          .cell(p)
          .cell(static_cast<long long>(row.elems_before))
          .cell(static_cast<long long>(row.cut_before))
          .cell(static_cast<long long>(row.elems_after))
          .cell(static_cast<long long>(row.cut_after))
          .cell(static_cast<long long>(row.migrate))
          .cell(static_cast<long long>(row.migrate_remapped));
    }
  }
  table.print(std::cout);
  const std::string csv = cli.get("csv", "");
  if (!csv.empty()) table.save_csv(csv);
  std::printf("\nexpected shape: Migrate stays O(10^2..10^3) and does not "
              "grow with the mesh; Migrate~ == Migrate (identity "
              "relabeling).\n[%.1fs]\n", timer.seconds());
  return 0;
}
