// Service throughput/latency benchmark: N concurrent sessions driven
// through the pnr::svc socketpair loopback (the same poll loop, codec and
// registry a real pnr_serve daemon runs — minus the kernel socket between
// two processes). Two phases:
//
//   1. per-op latency: synchronous clients, requests/s and p50/p99 per
//      wire operation on the serial server;
//   2. shard sweep: pipelined raw connections against the sharded server
//      at each shard count in --shard-sweep, recording throughput and an
//      FNV-1a fingerprint of every connection's reply byte stream. The
//      fingerprints must be identical at every shard count — the sharding
//      determinism gate; a mismatch exits 2.
//
// Emits the machine-readable trajectory BENCH_svc.json (schema
// "pnr.bench_svc.v2", documented in docs/OBSERVABILITY.md); the committed
// copy at the repo root is the baseline CI regenerates on the release leg
// and gates with scripts/svc_gate.py.
//
//   --quick            reduced session/round counts for CI smoke runs
//   --sessions=N       concurrent sessions (default 8)
//   --rounds=N         advance+step rounds per session (default 40)
//   --grid=N           transient workload grid (default 12)
//   --procs=4          parts per session
//   --threads=N        exec pool width for the server-side kernels
//   --shard-sweep=L    comma-separated shard counts (default 0,1,2,4,8;
//                      0 = the serial poll-thread server)
//   --out=<path>       output JSON (default BENCH_svc.json)

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "parallel/serialize.hpp"
#include "svc/client.hpp"
#include "svc/codec.hpp"
#include "svc/loopback.hpp"
#include "svc/server.hpp"
#include "util/json.hpp"

using namespace pnr;

namespace {

/// Latencies for one wire operation, accumulated across all sessions.
struct OpStats {
  std::vector<double> seconds;

  void add(double s) { seconds.push_back(s); }

  double total() const {
    double sum = 0.0;
    for (const double s : seconds) sum += s;
    return sum;
  }

  /// Nearest-rank percentile; the vector is sorted in place.
  double percentile(double q) {
    if (seconds.empty()) return 0.0;
    std::sort(seconds.begin(), seconds.end());
    const auto idx = static_cast<std::size_t>(
        q * static_cast<double>(seconds.size() - 1) + 0.5);
    return seconds[std::min(idx, seconds.size() - 1)];
  }
};

/// Run `fn` once, require success, and record the wall time under `op`.
template <typename Fn>
void timed(std::map<std::string, OpStats>& stats, const char* op, Fn&& fn) {
  util::Timer timer;
  if (!fn()) {
    std::fprintf(stderr, "FATAL: op %s failed\n", op);
    std::exit(1);
  }
  stats[op].add(timer.seconds());
}

// ---- shard sweep ------------------------------------------------------------

std::uint64_t fnv1a(const svc::Bytes& bytes, std::uint64_t h) {
  for (const std::uint8_t b : bytes) {
    h ^= b;
    h *= 1099511628211ull;
  }
  return h;
}
constexpr std::uint64_t kFnvSeed = 1469598103934665603ull;

std::size_t complete_frames(const svc::Bytes& buf) {
  std::size_t n = 0, off = 0;
  while (buf.size() - off >= svc::kHeaderBytes) {
    const auto h = svc::decode_header(buf.data() + off);
    if (!h || buf.size() - off - svc::kHeaderBytes < h->payload_len) break;
    off += svc::kHeaderBytes + h->payload_len;
    ++n;
  }
  return n;
}

bool recv_until(int fd, svc::Server& server, svc::Bytes& buf,
                std::size_t want) {
  for (long spin = 0; spin < 2000000; ++spin) {
    if (complete_frames(buf) >= want) return true;
    if (!svc::raw_recv(fd, buf, server)) return false;
  }
  return complete_frames(buf) >= want;
}

svc::Bytes session_frame(std::uint16_t op, std::uint32_t id) {
  par::Writer w;
  w.put(id);
  return svc::encode_frame(op, w.take());
}

struct SweepPoint {
  int shards = 0;
  std::int64_t requests = 0;
  double seconds = 0.0;
  std::uint64_t fingerprint = 0;
};

/// Drive `sessions` pipelined raw connections (create, then `rounds` bursts
/// of advance+step, then close) against a server with `shards` shard
/// workers, and fingerprint every connection's complete reply byte stream.
SweepPoint run_sweep_point(int shards, int sessions, int rounds, int grid,
                           std::int32_t parts) {
  svc::ServerOptions options;
  options.threads = shards;
  options.max_connections = sessions + 1;
  options.limits.max_sessions = static_cast<std::uint32_t>(sessions) + 4;
  svc::Server server(options);

  struct RawConn {
    int fd = -1;
    std::uint32_t session = 0;
    svc::Bytes in;
  };
  std::vector<RawConn> conns(static_cast<std::size_t>(sessions));

  util::Timer timer;
  for (auto& c : conns) {
    c.fd = svc::adopt_loopback_raw(server);
    if (c.fd < 0) {
      std::fprintf(stderr, "FATAL: loopback adopt failed\n");
      std::exit(1);
    }
  }
  // Synchronous creates so session ids are assigned in connection order at
  // every shard count — the sweep's reply streams stay comparable.
  for (int s = 0; s < sessions; ++s) {
    auto& c = conns[static_cast<std::size_t>(s)];
    svc::WorkloadSpec spec;
    spec.kind = svc::WorkloadKind::kTransient2D;
    spec.parts = parts;
    spec.session_seed = static_cast<std::uint64_t>(s) + 1;
    spec.transient.grid_n = grid;
    spec.transient.max_level = 4;
    spec.transient.steps = rounds + 1;
    par::Writer w;
    svc::encode_workload_spec(w, spec);
    if (!svc::raw_send(c.fd, svc::encode_frame(svc::kOpCreateWorkload,
                                               w.take()),
                       server) ||
        !recv_until(c.fd, server, c.in, 1)) {
      std::fprintf(stderr, "FATAL: sweep create failed\n");
      std::exit(1);
    }
    const auto h = svc::decode_header(c.in.data());
    par::TryReader r(c.in.data() + svc::kHeaderBytes, h->payload_len);
    const auto id = r.get<std::uint32_t>();
    if (!h || h->type != (svc::kOpCreateWorkload | svc::kReplyBit) || !id) {
      std::fprintf(stderr, "FATAL: sweep create reply malformed\n");
      std::exit(1);
    }
    c.session = *id;
  }
  // Pipelined rounds: every connection sends its advance+step burst before
  // anyone waits, so the shard queues see genuinely interleaved traffic.
  for (int r = 0; r < rounds; ++r) {
    for (auto& c : conns) {
      svc::Bytes burst = session_frame(svc::kOpAdvance, c.session);
      const svc::Bytes step = session_frame(svc::kOpStep, c.session);
      burst.insert(burst.end(), step.begin(), step.end());
      if (!svc::raw_send(c.fd, burst, server)) {
        std::fprintf(stderr, "FATAL: sweep send failed\n");
        std::exit(1);
      }
    }
  }
  for (auto& c : conns) {
    if (!svc::raw_send(c.fd, session_frame(svc::kOpCloseSession, c.session),
                       server) ||
        !recv_until(c.fd, server, c.in,
                    2 + 2 * static_cast<std::size_t>(rounds))) {
      std::fprintf(stderr, "FATAL: sweep drain failed\n");
      std::exit(1);
    }
  }
  SweepPoint point;
  point.shards = shards;
  point.seconds = timer.seconds();
  point.requests =
      static_cast<std::int64_t>(sessions) * (2 + 2 * rounds);
  point.fingerprint = kFnvSeed;
  for (auto& c : conns) {
    point.fingerprint = fnv1a(c.in, point.fingerprint);
    svc::raw_close(c.fd);
  }
  return point;
}

std::vector<int> parse_sweep(const std::string& list) {
  std::vector<int> shards;
  std::size_t pos = 0;
  while (pos < list.size()) {
    const std::size_t comma = list.find(',', pos);
    const std::string tok =
        list.substr(pos, comma == std::string::npos ? comma : comma - pos);
    if (!tok.empty()) shards.push_back(std::atoi(tok.c_str()));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return shards;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const bool quick = cli.get_bool("quick");
  const int sessions = cli.get_int("sessions", quick ? 4 : 8);
  const int rounds = cli.get_int("rounds", quick ? 8 : 40);
  const int grid = cli.get_int("grid", 12);
  const auto parts = static_cast<std::int32_t>(cli.get_int("procs", 4));
  const std::string out = cli.get("out", "BENCH_svc.json");
  const int threads = bench::apply_threads_flag(cli);
  const std::vector<int> sweep_shards =
      parse_sweep(cli.get("shard-sweep", quick ? "0,2" : "0,1,2,4,8"));

  bench::banner("Service loopback",
                "N adaptive sessions over the svc wire protocol; "
                "requests/s and p50/p99 latency per operation");

  svc::ServerOptions options;
  options.max_connections = sessions + 1;
  svc::Server server(options);

  // One client connection per session, like independent daemon users.
  std::vector<std::unique_ptr<svc::Client>> clients;
  std::vector<std::uint32_t> ids(static_cast<std::size_t>(sessions), 0);
  for (int s = 0; s < sessions; ++s) {
    clients.push_back(std::make_unique<svc::Client>());
    if (!svc::connect_loopback(server, *clients.back())) {
      std::fprintf(stderr, "FATAL: loopback connect failed\n");
      return 1;
    }
  }

  std::map<std::string, OpStats> stats;
  util::Timer wall;

  for (int s = 0; s < sessions; ++s) {
    svc::Client& client = *clients[static_cast<std::size_t>(s)];
    timed(stats, "ping", [&] { return client.ping(); });
    svc::WorkloadSpec spec;
    spec.kind = svc::WorkloadKind::kTransient2D;
    spec.parts = parts;
    spec.session_seed = static_cast<std::uint64_t>(s) + 1;
    spec.transient.grid_n = grid;
    spec.transient.max_level = 4;
    spec.transient.steps = rounds + 1;  // never exhaust the run
    timed(stats, "create_workload", [&] {
      const auto created = client.create_workload(spec);
      if (created) ids[static_cast<std::size_t>(s)] = created->session;
      return created.has_value();
    });
  }

  for (int r = 0; r < rounds; ++r) {
    for (int s = 0; s < sessions; ++s) {
      svc::Client& client = *clients[static_cast<std::size_t>(s)];
      const std::uint32_t id = ids[static_cast<std::size_t>(s)];
      timed(stats, "advance", [&] { return client.advance(id).has_value(); });
      timed(stats, "step", [&] { return client.step(id).has_value(); });
      timed(stats, "get_metrics",
            [&] { return client.get_metrics(id).has_value(); });
    }
    // Bulkier ops once per round on a rotating session, so their cost
    // shows up without dominating the steady-state request mix.
    svc::Client& client = *clients[static_cast<std::size_t>(r % sessions)];
    const std::uint32_t id = ids[static_cast<std::size_t>(r % sessions)];
    timed(stats, "get_assignment",
          [&] { return client.get_assignment(id).has_value(); });
    timed(stats, "checkpoint",
          [&] { return client.checkpoint(id).has_value(); });
    timed(stats, "list_sessions",
          [&] { return client.list_sessions().has_value(); });
  }

  for (int s = 0; s < sessions; ++s)
    timed(stats, "close_session", [&] {
      return clients[static_cast<std::size_t>(s)]->close_session(
          ids[static_cast<std::size_t>(s)]);
    });
  const double total_seconds = wall.seconds();

  // Phase 2: the shard sweep + determinism gate.
  std::vector<SweepPoint> sweep;
  for (const int shards : sweep_shards)
    sweep.push_back(run_sweep_point(shards, sessions, rounds, grid, parts));
  bool deterministic = true;
  for (const SweepPoint& p : sweep)
    deterministic = deterministic && p.fingerprint == sweep.front().fingerprint;

  util::Json doc = util::Json::object();
  doc["schema"] = "pnr.bench_svc.v2";
  doc["binary"] = "bench_svc";
  doc["mode"] = quick ? "quick" : "default";
  doc["sessions"] = static_cast<std::int64_t>(sessions);
  doc["rounds"] = static_cast<std::int64_t>(rounds);
  doc["parts"] = static_cast<std::int64_t>(parts);
  doc["threads"] = static_cast<std::int64_t>(threads);

  util::Table table({"op", "requests", "req/s", "p50 ms", "p99 ms"});
  util::Json ops = util::Json::array();
  std::int64_t requests = 0;
  for (auto& [op, st] : stats) {
    const auto count = static_cast<std::int64_t>(st.seconds.size());
    const double total = st.total();
    const double rate = total > 0.0 ? static_cast<double>(count) / total : 0.0;
    const double p50 = st.percentile(0.50), p99 = st.percentile(0.99);
    requests += count;
    table.row().cell(op).cell(count).cell(rate, 0).cell(p50 * 1e3, 3).cell(
        p99 * 1e3, 3);
    util::Json row = util::Json::object();
    row["op"] = op;
    row["requests"] = count;
    row["total_seconds"] = total;
    row["requests_per_second"] = rate;
    row["p50_ms"] = p50 * 1e3;
    row["p99_ms"] = p99 * 1e3;
    ops.push_back(std::move(row));
  }
  table.print(std::cout);
  doc["ops"] = std::move(ops);
  doc["requests"] = requests;
  doc["total_seconds"] = total_seconds;

  util::Table sweep_table(
      {"shards", "requests", "req/s", "seconds", "fingerprint"});
  util::Json sweep_json = util::Json::array();
  for (const SweepPoint& p : sweep) {
    const double rate = p.seconds > 0.0
                            ? static_cast<double>(p.requests) / p.seconds
                            : 0.0;
    char fp[32];
    std::snprintf(fp, sizeof(fp), "%016llx",
                  static_cast<unsigned long long>(p.fingerprint));
    sweep_table.row()
        .cell(p.shards)
        .cell(p.requests)
        .cell(rate, 0)
        .cell(p.seconds, 3)
        .cell(fp);
    util::Json row = util::Json::object();
    row["shards"] = static_cast<std::int64_t>(p.shards);
    row["requests"] = p.requests;
    row["total_seconds"] = p.seconds;
    row["requests_per_second"] = rate;
    row["fingerprint"] = std::string(fp);
    sweep_json.push_back(std::move(row));
  }
  sweep_table.print(std::cout);
  doc["sweep"] = std::move(sweep_json);
  doc["deterministic"] = deterministic;

  std::ofstream file(out);
  if (!file) {
    std::fprintf(stderr, "cannot write %s\n", out.c_str());
    return 1;
  }
  file << doc.dump(2) << "\n";
  std::printf("wrote %s (%lld requests over %d sessions, %.2f s)\n",
              out.c_str(), static_cast<long long>(requests), sessions,
              total_seconds);
  if (!deterministic) {
    std::fprintf(stderr,
                 "FATAL: reply-stream fingerprints differ across shard "
                 "counts — sharding broke determinism\n");
    return 2;
  }
  return 0;
}
