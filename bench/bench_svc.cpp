// Service throughput/latency benchmark: N concurrent sessions driven
// through the pnr::svc socketpair loopback (the same poll loop, codec and
// registry a real pnr_serve daemon runs — minus the kernel socket between
// two processes), measuring requests/s and p50/p99 latency per operation.
// Emits the machine-readable trajectory BENCH_svc.json (schema
// "pnr.bench_svc.v1", documented in docs/SERVICE.md); the committed copy
// at the repo root is the baseline CI regenerates on the release leg.
//
//   --quick            reduced session/round counts for CI smoke runs
//   --sessions=N       concurrent sessions (default 8)
//   --rounds=N         advance+step rounds per session (default 40)
//   --grid=N           transient workload grid (default 12)
//   --procs=4          parts per session
//   --threads=N        exec pool width for the server-side kernels
//   --out=<path>       output JSON (default BENCH_svc.json)

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "svc/client.hpp"
#include "svc/loopback.hpp"
#include "svc/server.hpp"
#include "util/json.hpp"

using namespace pnr;

namespace {

/// Latencies for one wire operation, accumulated across all sessions.
struct OpStats {
  std::vector<double> seconds;

  void add(double s) { seconds.push_back(s); }

  double total() const {
    double sum = 0.0;
    for (const double s : seconds) sum += s;
    return sum;
  }

  /// Nearest-rank percentile; the vector is sorted in place.
  double percentile(double q) {
    if (seconds.empty()) return 0.0;
    std::sort(seconds.begin(), seconds.end());
    const auto idx = static_cast<std::size_t>(
        q * static_cast<double>(seconds.size() - 1) + 0.5);
    return seconds[std::min(idx, seconds.size() - 1)];
  }
};

/// Run `fn` once, require success, and record the wall time under `op`.
template <typename Fn>
void timed(std::map<std::string, OpStats>& stats, const char* op, Fn&& fn) {
  util::Timer timer;
  if (!fn()) {
    std::fprintf(stderr, "FATAL: op %s failed\n", op);
    std::exit(1);
  }
  stats[op].add(timer.seconds());
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const bool quick = cli.get_bool("quick");
  const int sessions = cli.get_int("sessions", quick ? 4 : 8);
  const int rounds = cli.get_int("rounds", quick ? 8 : 40);
  const int grid = cli.get_int("grid", 12);
  const auto parts = static_cast<std::int32_t>(cli.get_int("procs", 4));
  const std::string out = cli.get("out", "BENCH_svc.json");
  const int threads = bench::apply_threads_flag(cli);

  bench::banner("Service loopback",
                "N adaptive sessions over the svc wire protocol; "
                "requests/s and p50/p99 latency per operation");

  svc::ServerOptions options;
  options.max_connections = sessions + 1;
  svc::Server server(options);

  // One client connection per session, like independent daemon users.
  std::vector<std::unique_ptr<svc::Client>> clients;
  std::vector<std::uint32_t> ids(static_cast<std::size_t>(sessions), 0);
  for (int s = 0; s < sessions; ++s) {
    clients.push_back(std::make_unique<svc::Client>());
    if (!svc::connect_loopback(server, *clients.back())) {
      std::fprintf(stderr, "FATAL: loopback connect failed\n");
      return 1;
    }
  }

  std::map<std::string, OpStats> stats;
  util::Timer wall;

  for (int s = 0; s < sessions; ++s) {
    svc::Client& client = *clients[static_cast<std::size_t>(s)];
    timed(stats, "ping", [&] { return client.ping(); });
    svc::WorkloadSpec spec;
    spec.kind = svc::WorkloadKind::kTransient2D;
    spec.parts = parts;
    spec.session_seed = static_cast<std::uint64_t>(s) + 1;
    spec.transient.grid_n = grid;
    spec.transient.max_level = 4;
    spec.transient.steps = rounds + 1;  // never exhaust the run
    timed(stats, "create_workload", [&] {
      const auto created = client.create_workload(spec);
      if (created) ids[static_cast<std::size_t>(s)] = created->session;
      return created.has_value();
    });
  }

  for (int r = 0; r < rounds; ++r) {
    for (int s = 0; s < sessions; ++s) {
      svc::Client& client = *clients[static_cast<std::size_t>(s)];
      const std::uint32_t id = ids[static_cast<std::size_t>(s)];
      timed(stats, "advance", [&] { return client.advance(id).has_value(); });
      timed(stats, "step", [&] { return client.step(id).has_value(); });
      timed(stats, "get_metrics",
            [&] { return client.get_metrics(id).has_value(); });
    }
    // Bulkier ops once per round on a rotating session, so their cost
    // shows up without dominating the steady-state request mix.
    svc::Client& client = *clients[static_cast<std::size_t>(r % sessions)];
    const std::uint32_t id = ids[static_cast<std::size_t>(r % sessions)];
    timed(stats, "get_assignment",
          [&] { return client.get_assignment(id).has_value(); });
    timed(stats, "checkpoint",
          [&] { return client.checkpoint(id).has_value(); });
    timed(stats, "list_sessions",
          [&] { return client.list_sessions().has_value(); });
  }

  for (int s = 0; s < sessions; ++s)
    timed(stats, "close_session", [&] {
      return clients[static_cast<std::size_t>(s)]->close_session(
          ids[static_cast<std::size_t>(s)]);
    });
  const double total_seconds = wall.seconds();

  util::Json doc = util::Json::object();
  doc["schema"] = "pnr.bench_svc.v1";
  doc["binary"] = "bench_svc";
  doc["mode"] = quick ? "quick" : "default";
  doc["sessions"] = static_cast<std::int64_t>(sessions);
  doc["rounds"] = static_cast<std::int64_t>(rounds);
  doc["parts"] = static_cast<std::int64_t>(parts);
  doc["threads"] = static_cast<std::int64_t>(threads);

  util::Table table({"op", "requests", "req/s", "p50 ms", "p99 ms"});
  util::Json ops = util::Json::array();
  std::int64_t requests = 0;
  for (auto& [op, st] : stats) {
    const auto count = static_cast<std::int64_t>(st.seconds.size());
    const double total = st.total();
    const double rate = total > 0.0 ? static_cast<double>(count) / total : 0.0;
    const double p50 = st.percentile(0.50), p99 = st.percentile(0.99);
    requests += count;
    table.row().cell(op).cell(count).cell(rate, 0).cell(p50 * 1e3, 3).cell(
        p99 * 1e3, 3);
    util::Json row = util::Json::object();
    row["op"] = op;
    row["requests"] = count;
    row["total_seconds"] = total;
    row["requests_per_second"] = rate;
    row["p50_ms"] = p50 * 1e3;
    row["p99_ms"] = p99 * 1e3;
    ops.push_back(std::move(row));
  }
  table.print(std::cout);
  doc["ops"] = std::move(ops);
  doc["requests"] = requests;
  doc["total_seconds"] = total_seconds;

  std::ofstream file(out);
  if (!file) {
    std::fprintf(stderr, "cannot write %s\n", out.c_str());
    return 1;
  }
  file << doc.dump(2) << "\n";
  std::printf("wrote %s (%lld requests over %d sessions, %.2f s)\n",
              out.c_str(), static_cast<long long>(requests), sessions,
              total_seconds);
  return 0;
}
