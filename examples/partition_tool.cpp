// Standalone partitioner in the spirit of the Chaco/METIS command-line
// tools: read a mesh (.node/.ele, 2D or 3D) or a METIS graph file,
// partition it with any of the library's methods, and write the result as
// a partition file (one subset id per line), plus optional VTK/SVG views
// for meshes.
//
//   ./partition_tool --mesh=path/basename --dim=2 --procs=16 --method=mlkl
//   ./partition_tool --graph=graph.metis --procs=8 --method=rsb
//   options: --out=partition.txt --vtk=out.vtk --svg=out.svg --seed=1
//            --threads=N (exec pool width; default 1 = serial)
//
// Exit code 0 on success; prints cut size, shared vertices (meshes) and
// imbalance.

#include <cstdio>
#include <fstream>
#include <optional>
#include <string>

#include "exec/pool.hpp"
#include "graph/io.hpp"
#include "mesh/dual.hpp"
#include "mesh/io.hpp"
#include "mesh/metrics.hpp"
#include "mesh/svg.hpp"
#include "partition/partitioner.hpp"
#include "util/cli.hpp"

using namespace pnr;

namespace {

bool write_partition_file(const std::string& path,
                          const std::vector<part::PartId>& assign) {
  std::ofstream f(path);
  if (!f) return false;
  for (const part::PartId p : assign) f << p << '\n';
  return static_cast<bool>(f);
}

int partition_graph(const graph::Graph& g, const util::Cli& cli,
                    part::Method method,
                    std::span<const double> coords, int dim,
                    std::vector<part::PartId>& out_assign) {
  const auto p = static_cast<part::PartId>(cli.get_int("procs", 8));
  util::Rng rng(static_cast<std::uint64_t>(cli.get_int("seed", 1)));
  part::PartitionerOptions opt;
  opt.method = method;
  opt.coords = coords;
  opt.dim = dim;
  const auto pi = part::make_partition(g, p, rng, opt);
  std::printf("%s into %d parts: cut=%lld imbalance=%.3f%%\n",
              part::method_name(method), static_cast<int>(p),
              static_cast<long long>(part::cut_size(g, pi)),
              100.0 * part::imbalance(g, pi));
  out_assign = pi.assign;
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  exec::set_default_threads(
      cli.get_int("threads", exec::default_pool().num_threads()));
  const std::string mesh_base = cli.get("mesh", "");
  const std::string graph_path = cli.get("graph", "");
  const std::string out = cli.get("out", "partition.txt");
  const auto method = part::parse_method(cli.get("method", "mlkl"));
  if (!method) {
    std::fprintf(stderr, "unknown method; try mlkl|rsb|inertial|rcb|random\n");
    return 1;
  }
  if (mesh_base.empty() == graph_path.empty()) {
    std::fprintf(stderr, "pass exactly one of --mesh=<basename> (.node/.ele) "
                         "or --graph=<file> (METIS)\n");
    return 1;
  }

  std::vector<part::PartId> assign;

  if (!graph_path.empty()) {
    const auto g = graph::read_metis(graph_path);
    if (!g) {
      std::fprintf(stderr, "failed to read METIS graph %s\n",
                   graph_path.c_str());
      return 1;
    }
    std::printf("graph: %d vertices, %lld edges\n",
                static_cast<int>(g->num_vertices()),
                static_cast<long long>(g->num_edges()));
    if (partition_graph(*g, cli, *method, {}, 2, assign)) return 1;
  } else {
    const int dim = cli.get_int("dim", 2);
    if (dim == 2) {
      const auto mesh = mesh::read_triangle_files(mesh_base);
      if (!mesh) {
        std::fprintf(stderr, "failed to read %s.node/.ele\n",
                     mesh_base.c_str());
        return 1;
      }
      const auto dual = mesh::fine_dual_graph(*mesh);
      const auto coords = mesh::leaf_centroids(*mesh, dual.elems);
      std::printf("mesh: %lld triangles, %lld vertices\n",
                  static_cast<long long>(mesh->num_leaves()),
                  static_cast<long long>(mesh->num_vertices_alive()));
      if (partition_graph(dual.graph, cli, *method, coords, 2, assign))
        return 1;
      std::printf("shared vertices: %lld\n",
                  static_cast<long long>(
                      mesh::shared_vertices(*mesh, dual.elems, assign)));
      const std::string vtk = cli.get("vtk", "");
      if (!vtk.empty() && mesh::write_vtk(*mesh, dual.elems, assign, vtk))
        std::printf("wrote %s\n", vtk.c_str());
      const std::string svg = cli.get("svg", "");
      if (!svg.empty() &&
          mesh::write_partition_svg(*mesh, dual.elems, assign, svg))
        std::printf("wrote %s\n", svg.c_str());
    } else {
      const auto mesh = mesh::read_tetgen_files(mesh_base);
      if (!mesh) {
        std::fprintf(stderr, "failed to read %s.node/.ele\n",
                     mesh_base.c_str());
        return 1;
      }
      const auto dual = mesh::fine_dual_graph(*mesh);
      const auto coords = mesh::leaf_centroids(*mesh, dual.elems);
      std::printf("mesh: %lld tets, %lld vertices\n",
                  static_cast<long long>(mesh->num_leaves()),
                  static_cast<long long>(mesh->num_vertices_alive()));
      if (partition_graph(dual.graph, cli, *method, coords, 3, assign))
        return 1;
      std::printf("shared vertices: %lld\n",
                  static_cast<long long>(
                      mesh::shared_vertices(*mesh, dual.elems, assign)));
      const std::string vtk = cli.get("vtk", "");
      if (!vtk.empty() && mesh::write_vtk(*mesh, dual.elems, assign, vtk))
        std::printf("wrote %s\n", vtk.c_str());
    }
  }

  if (!write_partition_file(out, assign)) {
    std::fprintf(stderr, "failed to write %s\n", out.c_str());
    return 1;
  }
  std::printf("wrote %s\n", out.c_str());
  return 0;
}
