// pnr_fed: federation coordinator for pnr_serve daemons
// (docs/FEDERATION.md). Connects to N daemons — each becomes one shard of
// a replicated transient workload — and drives federated repartition
// rounds: lockstep adaptation, interface gather + audit, one PNR step on
// the coordinator's replica, migration-plan push, subtree exchange, commit
// barrier. The resulting assignment trajectory is bitwise identical to a
// single-process pared::Session run; the final line prints the chained
// trajectory fingerprint the equivalence gate compares.
//
//   pnr_fed --sockets=/tmp/a.sock,/tmp/b.sock [flags]
//   pnr_fed --endpoints=127.0.0.1:7000,127.0.0.1:7001 [flags]
//
// Flags: --kind=transient2d|transient3d --steps=N --seed=N --grid-n=N
//        --max-level=N --refine-threshold=X --coarsen-threshold=X
//        --alpha=X --beta=X --engine=mlkl --check-level=1
//        --connect-retry-ms=N --connect-backoff-ms=N --shutdown
//
// --shutdown also stops the daemons after the run (sessions are always
// closed first — the graceful teardown ordering). --connect-retry-ms lets
// the coordinator race daemon startup in scripts.

#include <cstdio>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "engine/engine.hpp"
#include "fed/coordinator.hpp"
#include "svc/client.hpp"
#include "util/cli.hpp"

namespace {

using namespace pnr;

std::vector<std::string> split_list(const std::string& csv) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= csv.size()) {
    const std::size_t comma = csv.find(',', start);
    const std::size_t end = comma == std::string::npos ? csv.size() : comma;
    if (end > start) out.push_back(csv.substr(start, end - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

std::optional<svc::WorkloadSpec> spec_from_flags(const util::Cli& cli,
                                                 int parts) {
  svc::WorkloadSpec spec;
  const std::string kind = cli.get("kind", "transient2d");
  if (kind == "transient2d") {
    spec.kind = svc::WorkloadKind::kTransient2D;
  } else if (kind == "transient3d") {
    spec.kind = svc::WorkloadKind::kTransient3D;
    spec.transient = pared::TransientRun3D::default_options();
  } else {
    std::fprintf(stderr,
                 "pnr_fed: only the transient workloads federate, not '%s'\n",
                 kind.c_str());
    return std::nullopt;
  }
  spec.strategy = pared::Strategy::kPNR;
  spec.parts = parts;
  spec.session_seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  spec.transient.steps = cli.get_int("steps", spec.transient.steps);
  spec.transient.grid_n = cli.get_int("grid-n", spec.transient.grid_n);
  spec.transient.max_level =
      cli.get_int("max-level", spec.transient.max_level);
  spec.transient.refine_threshold =
      cli.get_double("refine-threshold", spec.transient.refine_threshold);
  spec.transient.coarsen_threshold =
      cli.get_double("coarsen-threshold", spec.transient.coarsen_threshold);
  spec.alpha = cli.get_double("alpha", spec.alpha);
  spec.beta = cli.get_double("beta", spec.beta);
  return spec;
}

template <typename Coordinator>
int run_fed(svc::WorkloadSpec spec, engine::Kind engine,
            std::vector<svc::Client*> daemons, fed::CoordinatorOptions fopt,
            bool shutdown) {
  Coordinator coord(std::move(spec), engine, std::move(daemons), fopt);
  std::string why;
  if (!coord.attach(&why)) {
    std::fprintf(stderr, "pnr_fed: attach failed: %s\n", why.c_str());
    return 1;
  }
  while (!coord.finished()) {
    const fed::RoundResult r = coord.round();
    if (!r.ok) {
      std::fprintf(stderr, "pnr_fed: round failed: %s\n", r.why.c_str());
      for (const auto& v : r.violations)
        std::fprintf(stderr, "pnr_fed:   %s: %s\n", v.code.c_str(),
                     v.message.c_str());
      coord.finish(shutdown, nullptr);
      return 1;
    }
    std::printf(
        "step=%d t=%.4f elements=%lld refined=%lld coarsened=%lld "
        "trees_moved=%lld elements_moved=%lld payload_bytes=%lld "
        "cut=%lld migrated=%lld assign_fp=%016llx\n",
        r.step, r.t, static_cast<long long>(r.elements),
        static_cast<long long>(r.refined),
        static_cast<long long>(r.coarsened),
        static_cast<long long>(r.trees_moved),
        static_cast<long long>(r.elements_moved),
        static_cast<long long>(r.payload_bytes),
        static_cast<long long>(r.report.cut_new),
        static_cast<long long>(r.report.migrated),
        static_cast<unsigned long long>(r.assign_fp));
  }
  const std::uint64_t fp = coord.trajectory_fingerprint();
  if (!coord.finish(shutdown, &why)) {
    std::fprintf(stderr, "pnr_fed: teardown failed: %s\n", why.c_str());
    return 1;
  }
  std::printf("rounds=%d trajectory_fp=%016llx\n", coord.rounds(),
              static_cast<unsigned long long>(fp));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  const auto sockets = split_list(cli.get("sockets", ""));
  const auto endpoints = split_list(cli.get("endpoints", ""));
  if (sockets.empty() == endpoints.empty()) {
    std::fprintf(stderr,
                 "usage: pnr_fed --sockets=PATH,PATH,... | "
                 "--endpoints=HOST:PORT,... [flags] "
                 "(see the header of examples/pnr_fed.cpp)\n");
    return 2;
  }

  svc::ConnectOptions retry;
  retry.retry_ms = cli.get_int("connect-retry-ms", 0);
  retry.backoff_ms = cli.get_int("connect-backoff-ms", 10);

  std::vector<std::unique_ptr<svc::Client>> owned;
  std::vector<svc::Client*> daemons;
  std::string error;
  for (const auto& path : sockets) {
    auto client = std::make_unique<svc::Client>();
    if (!client->connect_unix(path, &error, retry)) {
      std::fprintf(stderr, "pnr_fed: cannot connect to %s: %s\n",
                   path.c_str(), error.c_str());
      return 1;
    }
    daemons.push_back(client.get());
    owned.push_back(std::move(client));
  }
  for (const auto& ep : endpoints) {
    const std::size_t colon = ep.rfind(':');
    const int port =
        colon == std::string::npos ? -1 : std::atoi(ep.c_str() + colon + 1);
    if (port < 0 || port > 65535) {
      std::fprintf(stderr, "pnr_fed: bad endpoint '%s'\n", ep.c_str());
      return 2;
    }
    auto client = std::make_unique<svc::Client>();
    if (!client->connect_tcp(ep.substr(0, colon),
                             static_cast<std::uint16_t>(port), &error,
                             retry)) {
      std::fprintf(stderr, "pnr_fed: cannot connect to %s: %s\n", ep.c_str(),
                   error.c_str());
      return 1;
    }
    daemons.push_back(client.get());
    owned.push_back(std::move(client));
  }

  const auto spec = spec_from_flags(cli, static_cast<int>(daemons.size()));
  if (!spec) return 2;
  engine::Kind engine;
  if (!engine::parse_kind(cli.get("engine", "mlkl"), engine)) {
    std::fprintf(stderr, "pnr_fed: unknown engine\n");
    return 2;
  }
  svc::WorkloadSpec wire_spec = *spec;
  wire_spec.engine = static_cast<std::uint8_t>(engine);

  fed::CoordinatorOptions fopt;
  fopt.check_level = cli.get_int("check-level", 1);
  const bool shutdown = cli.get_bool("shutdown");
  if (wire_spec.kind == svc::WorkloadKind::kTransient2D)
    return run_fed<fed::Coordinator2D>(std::move(wire_spec), engine,
                                       std::move(daemons), fopt, shutdown);
  return run_fed<fed::Coordinator3D>(std::move(wire_spec), engine,
                                     std::move(daemons), fopt, shutdown);
}
