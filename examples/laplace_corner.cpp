// The Section 6 experiment end to end, including the finite element solve:
// adapt the mesh toward the corner boundary layer of Laplace's equation,
// solve −Δu = 0 with the exact Dirichlet data at every level, and watch the
// L∞ error fall while PNR keeps the partitions balanced and cheap to update.
// Built on pared::AdaptiveDriver, which runs the full PARED round (adapt →
// repartition → solve) with per-phase timings.
//
//   ./laplace_corner [--procs=16] [--levels=6] [--grid=40]
//                    [--method=pnr|rsb|mlkl|...] [--svg=out.svg] [--vtk=out.vtk]

#include <cmath>
#include <cstdio>

#include "mesh/generate.hpp"
#include "mesh/io.hpp"
#include "mesh/svg.hpp"
#include "pared/driver.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace pnr;
  const util::Cli cli(argc, argv);
  const std::string method = cli.get("method", "pnr");
  const auto strategy = pared::parse_strategy(method);
  if (!strategy) {
    std::fprintf(stderr, "unknown method '%s'\n", method.c_str());
    return 1;
  }

  pared::DriverOptions opts;
  opts.procs = static_cast<part::PartId>(cli.get_int("procs", 16));
  opts.strategy = *strategy;
  opts.solve = true;
  opts.solve_tol = 1e-10;
  const int levels = cli.get_int("levels", 6);
  const int grid = cli.get_int("grid", 40);

  pared::AdaptiveDriver2D driver(
      mesh::structured_tri_mesh(grid, grid, 0.25, /*seed=*/3), opts);
  const auto field = fem::corner_problem_2d();

  std::printf("strategy: %s, %d subdomains\n\n",
              pared::strategy_name(*strategy), static_cast<int>(opts.procs));
  std::printf("%5s %9s %10s %9s %8s %8s %7s %9s %9s\n", "level", "elems",
              "L∞ error", "CG iters", "shared", "moved", "imbal", "part[s]",
              "solve[s]");

  for (int level = 0; level <= levels; ++level) {
    fem::MarkOptions mark;
    // Level 0 partitions the initial mesh (threshold too high to refine).
    mark.refine_threshold =
        level == 0 ? 1e9 : 0.02 * std::pow(0.55, level - 1);
    mark.max_level = level + 3;
    const auto r = driver.step(field, mark);
    std::printf("%5d %9lld %10.2e %9d %8lld %8lld %6.2f%% %9.3f %9.3f\n",
                level, static_cast<long long>(r.partition.elements),
                r.solve_error, r.cg_iterations,
                static_cast<long long>(r.partition.shared_vertices),
                static_cast<long long>(r.partition.migrated),
                100.0 * r.partition.imbalance, r.partition_seconds,
                r.solve_seconds);
  }

  // Figure 1 rendition: the adapted mesh, colored by the final partition.
  const auto& mesh = driver.mesh();
  const auto elems = mesh.leaf_elements();
  std::vector<part::PartId> assign(elems.size());
  for (std::size_t i = 0; i < elems.size(); ++i)
    assign[i] = mesh.tag(elems[i]);

  const std::string svg = cli.get("svg", "laplace_corner.svg");
  if (mesh::write_partition_svg(mesh, elems, assign, svg))
    std::printf("\nwrote %s\n", svg.c_str());
  const std::string vtk = cli.get("vtk", "");
  if (!vtk.empty() && mesh::write_vtk(mesh, elems, assign, vtk))
    std::printf("wrote %s\n", vtk.c_str());
  return 0;
}
