// The Section 10 transient experiment: a sharp peak sweeps the diagonal of
// (-1,1)² over 100 time steps; the mesh refines ahead of it and coarsens in
// its wake; RSB and PNR repartition after every step. RSB rebuilds good
// partitions but moves most of the mesh; PNR tracks the disturbance with a
// few percent data movement.
//
//   ./moving_peak [--procs=8] [--steps=40] [--grid=32] [--solve]
//                 [--svg-begin=peak_begin.svg] [--svg-end=peak_end.svg]

#include <cstdio>
#include <string>
#include <vector>

#include "fem/p1.hpp"
#include "mesh/svg.hpp"
#include "pared/session.hpp"
#include "pared/workloads.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"

namespace {

void dump_svg(const pnr::mesh::TriMesh& mesh, const std::string& path) {
  const auto elems = mesh.leaf_elements();
  std::vector<pnr::part::PartId> assign(elems.size());
  for (std::size_t i = 0; i < elems.size(); ++i)
    assign[i] = std::max(0, mesh.tag(elems[i]));
  if (pnr::mesh::write_partition_svg(mesh, elems, assign, path))
    std::printf("wrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pnr;
  const util::Cli cli(argc, argv);
  const auto p = static_cast<part::PartId>(cli.get_int("procs", 8));
  const bool do_solve = cli.get_bool("solve");

  pared::TransientOptions topts;
  topts.steps = cli.get_int("steps", 40);
  topts.grid_n = cli.get_int("grid", 32);

  // Two identical mesh evolutions — each session carries its assignment in
  // the element tags, so they need separate meshes.
  pared::TransientRun run_rsb(topts);
  pared::TransientRun run_pnr(topts);
  pared::Session2D rsb(pared::Strategy::kRsbRemap, p, /*seed=*/5);
  pared::Session2D pnr_s(pared::Strategy::kPNR, p, /*seed=*/5);

  // Seed the initial partitions (step 0, no migration yet).
  rsb.step(run_rsb.mutable_mesh());
  pnr_s.step(run_pnr.mutable_mesh());
  dump_svg(run_pnr.mesh(), cli.get("svg-begin", "peak_begin.svg"));

  util::RunningStat rsb_moved_pct, pnr_moved_pct;
  std::printf("%5s %7s %8s | %-20s | %-20s %s\n", "", "", "", "   RSB+remap",
              "      PNR", do_solve ? "L∞ err" : "");
  std::printf("%5s %7s %8s | %8s %11s | %8s %11s\n", "step", "t", "elems",
              "shared", "moved", "shared", "moved");

  while (!run_pnr.done()) {
    run_rsb.advance();
    const auto info = run_pnr.advance();
    const auto ra = rsb.step(run_rsb.mutable_mesh());
    const auto rp = pnr_s.step(run_pnr.mutable_mesh());

    rsb_moved_pct.add(100.0 * static_cast<double>(ra.migrated_remapped) /
                      static_cast<double>(ra.elements));
    pnr_moved_pct.add(100.0 * static_cast<double>(rp.migrated) /
                      static_cast<double>(rp.elements));

    double err = 0.0;
    if (do_solve)
      err = fem::solve_poisson(run_pnr.mesh(), run_pnr.current_field(), 1e-8)
                .max_error;

    if (info.step % 5 == 0 || run_pnr.done()) {
      std::printf("%5d %7.3f %8lld | %8lld %10lld%% | %8lld %10lld%%", info.step,
                  info.t, static_cast<long long>(rp.elements),
                  static_cast<long long>(ra.shared_vertices),
                  static_cast<long long>(
                      100 * ra.migrated_remapped /
                      std::max<std::int64_t>(1, ra.elements)),
                  static_cast<long long>(rp.shared_vertices),
                  static_cast<long long>(100 * rp.migrated /
                                         std::max<std::int64_t>(1, rp.elements)));
      if (do_solve) std::printf("  %8.2e", err);
      std::printf("\n");
    }
  }

  dump_svg(run_pnr.mesh(), cli.get("svg-end", "peak_end.svg"));
  std::printf(
      "\naverage moved: RSB+remap %.1f%% of elements/step, PNR %.1f%%\n",
      rsb_moved_pct.mean(), pnr_moved_pct.mean());
  return 0;
}
