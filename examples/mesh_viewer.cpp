// Render adapted, partitioned meshes as SVG — the tool behind our versions
// of the paper's Figures 1 and 6.
//
//   ./mesh_viewer [--workload=corner|peak] [--procs=16] [--levels=6]
//                 [--grid=48] [--t=0.5] [--out=mesh.svg] [--vtk=mesh.vtk]
//                 [--method=pnr|rsb|mlkl|inertial]

#include <cstdio>
#include <string>
#include <vector>

#include "mesh/dual.hpp"
#include "mesh/metrics.hpp"
#include "mesh/io.hpp"
#include "mesh/svg.hpp"
#include "pared/session.hpp"
#include "pared/workloads.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace pnr;
  const util::Cli cli(argc, argv);
  const auto p = static_cast<part::PartId>(cli.get_int("procs", 16));
  const std::string workload = cli.get("workload", "corner");
  const std::string out = cli.get("out", "mesh.svg");
  const std::string method = cli.get("method", "pnr");

  const auto strategy = pared::parse_strategy(method);
  if (!strategy) {
    std::fprintf(stderr, "unknown method '%s'\n", method.c_str());
    return 1;
  }

  mesh::TriMesh mesh = [&] {
    if (workload == "peak") {
      pared::TransientOptions topts;
      topts.grid_n = cli.get_int("grid", 48);
      const double target_t = cli.get_double("t", 0.5);
      topts.steps = 100;
      pared::TransientRun run(topts);
      while (!run.done() && run.time() < target_t) run.advance();
      return run.mesh();
    }
    pared::CornerOptions copts;
    pared::CornerSeries2D series(cli.get_int("grid", 48), copts);
    for (int l = 0; l < cli.get_int("levels", 6); ++l) series.advance();
    return series.mesh();
  }();

  pared::Session2D session(*strategy, p, /*seed=*/1);
  const auto report = session.step(mesh);

  const auto elems = mesh.leaf_elements();
  std::vector<part::PartId> assign(elems.size());
  for (std::size_t i = 0; i < elems.size(); ++i) assign[i] = mesh.tag(elems[i]);

  if (!mesh::write_partition_svg(mesh, elems, assign, out)) {
    std::fprintf(stderr, "failed to write %s\n", out.c_str());
    return 1;
  }
  const std::string vtk = cli.get("vtk", "");
  if (!vtk.empty() && mesh::write_vtk(mesh, elems, assign, vtk))
    std::printf("wrote %s\n", vtk.c_str());
  const auto quality = mesh::mesh_quality(mesh);
  std::printf("%s: %lld elements, %d subdomains (%s), %lld shared vertices,\n"
              "angles [%.1f°, %.1f°] — wrote %s\n",
              workload.c_str(), static_cast<long long>(report.elements),
              static_cast<int>(p), pared::strategy_name(*strategy),
              static_cast<long long>(report.shared_vertices),
              quality.min_angle_deg, quality.max_angle_deg, out.c_str());
  return 0;
}
