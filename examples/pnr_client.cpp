// pnr_client: command-line client for pnr_serve (docs/SERVICE.md).
//
//   pnr_client --socket=PATH COMMAND [flags]
//   pnr_client --tcp=PORT [--host=127.0.0.1] COMMAND [flags]
//
// Either form accepts --connect-retry-ms=N (keep retrying a refused or
// missing endpoint for up to N ms, exponential backoff from
// --connect-backoff-ms, default 10) — useful when racing a daemon's
// startup from a script.
//
// Commands:
//   ping
//   create-workload  --kind=transient2d|transient3d|corner2d|corner3d
//                    [--strategy=pnr] [--parts=8] [--seed=1] [--steps=100]
//                    [--grid-n=N] [--max-level=N] [--refine-threshold=X]
//                    [--coarsen-threshold=X] [--tau=X] [--decay=X]
//                    [--alpha=0.1] [--beta=0.8] [--engine=NAME]
//   create-mesh      --mesh=BASENAME [--dim=2|3] [--strategy=..] [--parts=..]
//                    [--engine=NAME]
//                    (reads BASENAME.node/.ele — Triangle or TetGen format)
//   create-graph     --graph=FILE [--parts=..] [--engine=NAME]
//                    (METIS format, PNR strategy)
//   advance          --session=N [--count=1]
//   step             --session=N [--count=1]
//   run              --session=N --steps=K   (advance+step per time step,
//                    printing one StepReport line per step)
//   repartition      --session=N [--engine=NAME]
//   metrics          --session=N
//
// --engine selects the repartitioner backend per request: mlkl, sfc-morton,
// sfc-hilbert, rib, or default (the server's --default-engine). The
// geometric engines on graph sessions need a mesh-derived coordinate block,
// which the METIS reader cannot supply — use workload/mesh sessions there.
//   assignment       --session=N [--out=FILE]
//   checkpoint       --session=N --out=FILE
//   restore          --in=FILE
//   close            --session=N
//   list
//   shutdown

#include <cstdio>
#include <fstream>
#include <optional>
#include <string>

#include "engine/engine.hpp"
#include "graph/io.hpp"
#include "mesh/io.hpp"
#include "svc/client.hpp"
#include "util/cli.hpp"

namespace {

using namespace pnr;

void print_report(std::int64_t index, const pared::StepReport& r) {
  std::printf(
      "step=%lld elements=%lld cut_prev=%lld cut_new=%lld shared=%lld "
      "migrated=%lld remapped=%lld imbalance=%.6f\n",
      static_cast<long long>(index), static_cast<long long>(r.elements),
      static_cast<long long>(r.cut_prev), static_cast<long long>(r.cut_new),
      static_cast<long long>(r.shared_vertices),
      static_cast<long long>(r.migrated),
      static_cast<long long>(r.migrated_remapped), r.imbalance);
}

int fail(const svc::Client& client, const char* what) {
  const auto& e = client.last_error();
  if (!e.transport.empty())
    std::fprintf(stderr, "pnr_client: %s: transport: %s\n", what,
                 e.transport.c_str());
  else
    std::fprintf(stderr, "pnr_client: %s: %s: %s\n", what,
                 svc::err_name(e.code), e.detail.c_str());
  return 1;
}

/// --engine flag -> wire byte ("default" = let the server choose).
std::optional<std::uint8_t> engine_from_flags(const util::Cli& cli) {
  const std::string name = cli.get("engine", "default");
  if (name == "default") return svc::kEngineDefault;
  engine::Kind kind;
  if (!engine::parse_kind(name, kind)) {
    std::fprintf(stderr, "pnr_client: unknown engine '%s'\n", name.c_str());
    return std::nullopt;
  }
  return static_cast<std::uint8_t>(kind);
}

const char* engine_label(std::uint8_t wire) {
  return wire == svc::kEngineDefault
             ? "default"
             : engine::kind_name(static_cast<engine::Kind>(wire));
}

std::optional<svc::WorkloadSpec> spec_from_flags(const util::Cli& cli) {
  svc::WorkloadSpec spec;
  const std::string kind = cli.get("kind", "transient2d");
  if (kind == "transient2d") {
    spec.kind = svc::WorkloadKind::kTransient2D;
  } else if (kind == "transient3d") {
    spec.kind = svc::WorkloadKind::kTransient3D;
    spec.transient = pared::TransientRun3D::default_options();
  } else if (kind == "corner2d") {
    spec.kind = svc::WorkloadKind::kCorner2D;
  } else if (kind == "corner3d") {
    spec.kind = svc::WorkloadKind::kCorner3D;
  } else {
    std::fprintf(stderr, "pnr_client: unknown workload kind '%s'\n",
                 kind.c_str());
    return std::nullopt;
  }
  const auto strategy = pared::parse_strategy(cli.get("strategy", "pnr"));
  if (!strategy) {
    std::fprintf(stderr, "pnr_client: unknown strategy\n");
    return std::nullopt;
  }
  spec.strategy = *strategy;
  spec.parts = cli.get_int("parts", 8);
  spec.session_seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  spec.transient.steps = cli.get_int("steps", spec.transient.steps);
  spec.transient.grid_n = cli.get_int("grid-n", spec.transient.grid_n);
  spec.transient.max_level = cli.get_int("max-level", spec.transient.max_level);
  spec.transient.refine_threshold =
      cli.get_double("refine-threshold", spec.transient.refine_threshold);
  spec.transient.coarsen_threshold =
      cli.get_double("coarsen-threshold", spec.transient.coarsen_threshold);
  spec.corner.tau = cli.get_double("tau", spec.corner.tau);
  spec.corner.decay = cli.get_double("decay", spec.corner.decay);
  spec.corner_grid_n = cli.get_int("grid-n", 0);
  spec.alpha = cli.get_double("alpha", spec.alpha);
  spec.beta = cli.get_double("beta", spec.beta);
  const auto eng = engine_from_flags(cli);
  if (!eng) return std::nullopt;
  spec.engine = *eng;
  return spec;
}

std::optional<svc::CreateHead> head_from_flags(const util::Cli& cli) {
  svc::CreateHead head;
  const auto strategy = pared::parse_strategy(cli.get("strategy", "pnr"));
  if (!strategy) {
    std::fprintf(stderr, "pnr_client: unknown strategy\n");
    return std::nullopt;
  }
  head.strategy = *strategy;
  head.parts = cli.get_int("parts", 8);
  head.session_seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  head.alpha = cli.get_double("alpha", head.alpha);
  head.beta = cli.get_double("beta", head.beta);
  const auto eng = engine_from_flags(cli);
  if (!eng) return std::nullopt;
  head.engine = *eng;
  return head;
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  const std::string socket = cli.get("socket", "");
  const int tcp_port = cli.get_int("tcp", -1);
  if (socket.empty() == (tcp_port < 0) || cli.positional().empty()) {
    std::fprintf(stderr,
                 "usage: pnr_client --socket=PATH | --tcp=PORT [--host=ADDR] "
                 "COMMAND [flags] "
                 "(see the header of examples/pnr_client.cpp)\n");
    return 2;
  }
  const std::string cmd = cli.positional()[0];
  const auto session =
      static_cast<std::uint32_t>(cli.get_int("session", 0));

  svc::ConnectOptions retry;
  retry.retry_ms = cli.get_int("connect-retry-ms", 0);
  retry.backoff_ms = cli.get_int("connect-backoff-ms", 10);

  svc::Client client;
  std::string error;
  if (tcp_port >= 0) {
    const std::string host = cli.get("host", "127.0.0.1");
    if (tcp_port > 65535 ||
        !client.connect_tcp(host, static_cast<std::uint16_t>(tcp_port),
                            &error, retry)) {
      std::fprintf(stderr, "pnr_client: cannot connect to %s:%d: %s\n",
                   host.c_str(), tcp_port, error.c_str());
      return 1;
    }
  } else if (!client.connect_unix(socket, &error, retry)) {
    std::fprintf(stderr, "pnr_client: cannot connect to %s: %s\n",
                 socket.c_str(), error.c_str());
    return 1;
  }

  if (cmd == "ping") {
    if (!client.ping()) return fail(client, "ping");
    std::printf("pong\n");
    return 0;
  }
  if (cmd == "create-workload") {
    const auto spec = spec_from_flags(cli);
    if (!spec) return 2;
    const auto created = client.create_workload(*spec);
    if (!created) return fail(client, "create-workload");
    std::printf("session=%u elements=%lld\n", created->session,
                static_cast<long long>(created->elements));
    return 0;
  }
  if (cmd == "create-mesh") {
    const auto head = head_from_flags(cli);
    if (!head) return 2;
    const std::string base = cli.get("mesh", "");
    const int dim = cli.get_int("dim", 2);
    svc::FlatMesh flat;
    if (dim == 2) {
      const auto mesh = mesh::read_triangle_files(base);
      if (!mesh) {
        std::fprintf(stderr, "pnr_client: cannot read %s.node/.ele\n",
                     base.c_str());
        return 1;
      }
      flat = svc::flatten_mesh(*mesh);
    } else {
      const auto mesh = mesh::read_tetgen_files(base);
      if (!mesh) {
        std::fprintf(stderr, "pnr_client: cannot read %s.node/.ele\n",
                     base.c_str());
        return 1;
      }
      flat = svc::flatten_mesh(*mesh);
    }
    const auto created = client.create_mesh(*head, flat);
    if (!created) return fail(client, "create-mesh");
    std::printf("session=%u elements=%lld\n", created->session,
                static_cast<long long>(created->elements));
    return 0;
  }
  if (cmd == "create-graph") {
    const auto head = head_from_flags(cli);
    if (!head) return 2;
    const auto g = graph::read_metis(cli.get("graph", ""));
    if (!g) {
      std::fprintf(stderr, "pnr_client: cannot read METIS graph\n");
      return 1;
    }
    const auto created = client.create_graph(*head, *g);
    if (!created) return fail(client, "create-graph");
    std::printf("session=%u vertices=%lld\n", created->session,
                static_cast<long long>(created->elements));
    return 0;
  }
  if (cmd == "advance") {
    for (int i = 0; i < cli.get_int("count", 1); ++i) {
      const auto info = client.advance(session);
      if (!info) return fail(client, "advance");
      std::printf("elements=%lld refined=%lld coarsened=%lld position=%.6f\n",
                  static_cast<long long>(info->elements),
                  static_cast<long long>(info->refined),
                  static_cast<long long>(info->coarsened), info->position);
    }
    return 0;
  }
  // The server defers the expensive step metrics; a get_metrics round trip
  // settles them so each printed line carries the full report.
  const auto settled_report = [&](std::int64_t index) {
    const auto m = client.get_metrics(session);
    if (!m || !m->last_report) return false;
    print_report(index, *m->last_report);
    return true;
  };
  if (cmd == "step") {
    for (int i = 0; i < cli.get_int("count", 1); ++i) {
      const auto report = client.step(session);
      if (!report) return fail(client, "step");
      if (!settled_report(i)) print_report(i, *report);
    }
    return 0;
  }
  if (cmd == "run") {
    const int steps = cli.get_int("steps", 1);
    for (int i = 0; i < steps; ++i) {
      if (!client.advance(session)) return fail(client, "run/advance");
      const auto report = client.step(session);
      if (!report) return fail(client, "run/step");
      if (!settled_report(i + 1)) print_report(i + 1, *report);
    }
    return 0;
  }
  if (cmd == "repartition") {
    const auto eng = engine_from_flags(cli);
    if (!eng) return 2;
    const auto info = client.repartition(session, *eng);
    if (!info) return fail(client, "repartition");
    std::printf(
        "cut_before=%lld cut_after=%lld migrate=%lld imbalance_before=%.6f "
        "imbalance_after=%.6f levels=%d engine=%s\n",
        static_cast<long long>(info->cut_before),
        static_cast<long long>(info->cut_after),
        static_cast<long long>(info->migrate), info->imbalance_before,
        info->imbalance_after, info->levels, engine_label(info->engine));
    return 0;
  }
  if (cmd == "metrics") {
    const auto m = client.get_metrics(session);
    if (!m) return fail(client, "metrics");
    std::printf(
        "kind=%s strategy=%s engine=%s parts=%d elements=%lld ops=%lld\n",
        m->kind.c_str(), pared::strategy_name(m->strategy),
        engine_label(m->engine), m->parts,
        static_cast<long long>(m->elements),
        static_cast<long long>(m->ops_applied));
    if (m->last_report) print_report(m->ops_applied, *m->last_report);
    return 0;
  }
  if (cmd == "assignment") {
    const auto assign = client.get_assignment(session);
    if (!assign) return fail(client, "assignment");
    const std::string out = cli.get("out", "");
    if (out.empty()) {
      for (const auto p : *assign) std::printf("%d\n", p);
    } else {
      std::ofstream os(out);
      for (const auto p : *assign) os << p << "\n";
      if (!os) {
        std::fprintf(stderr, "pnr_client: cannot write %s\n", out.c_str());
        return 1;
      }
    }
    return 0;
  }
  if (cmd == "checkpoint") {
    const auto bytes = client.checkpoint(session);
    if (!bytes) return fail(client, "checkpoint");
    const std::string out = cli.get("out", "");
    std::ofstream os(out, std::ios::binary);
    os.write(reinterpret_cast<const char*>(bytes->data()),
             static_cast<std::streamsize>(bytes->size()));
    if (out.empty() || !os) {
      std::fprintf(stderr, "pnr_client: cannot write checkpoint file\n");
      return 1;
    }
    std::printf("checkpoint bytes=%zu\n", bytes->size());
    return 0;
  }
  if (cmd == "restore") {
    std::ifstream is(cli.get("in", ""), std::ios::binary);
    if (!is) {
      std::fprintf(stderr, "pnr_client: cannot read checkpoint file\n");
      return 1;
    }
    svc::Bytes bytes((std::istreambuf_iterator<char>(is)),
                     std::istreambuf_iterator<char>());
    const auto restored = client.restore(bytes);
    if (!restored) return fail(client, "restore");
    std::printf("session=%u elements=%lld replayed=%u\n", restored->session,
                static_cast<long long>(restored->elements),
                restored->replayed);
    return 0;
  }
  if (cmd == "close") {
    if (!client.close_session(session)) return fail(client, "close");
    std::printf("closed\n");
    return 0;
  }
  if (cmd == "list") {
    const auto sessions = client.list_sessions();
    if (!sessions) return fail(client, "list");
    for (const auto& s : *sessions)
      std::printf("session=%u kind=%s strategy=%s parts=%d elements=%lld\n",
                  s.session, s.kind.c_str(), pared::strategy_name(s.strategy),
                  s.parts, static_cast<long long>(s.elements));
    return 0;
  }
  if (cmd == "shutdown") {
    if (!client.shutdown_server()) return fail(client, "shutdown");
    std::printf("server shutting down\n");
    return 0;
  }
  std::fprintf(stderr, "pnr_client: unknown command '%s'\n", cmd.c_str());
  return 2;
}
