// pnr_serve: the repartitioning service daemon. Binds a Unix-domain socket,
// then serves framed requests (docs/SERVICE.md) until a client sends
// shutdown. All session work runs through pnr::svc::Registry — the same
// validated, limit-checked path the hermetic tests use.
//
//   pnr_serve --socket=/tmp/pnr.sock [--max-sessions=64] [--max-elements=N]
//             [--max-frame-mb=64] [--max-parts=1024] [--shards=N]
//             [--threads=N] [--default-engine=mlkl] [--prof]
//   pnr_serve --tcp=PORT [--host=127.0.0.1] [same flags]
//
// --tcp listens on TCP instead of a Unix socket — how a federation
// coordinator (pnr_fed, docs/FEDERATION.md) reaches daemons on other
// hosts. Port 0 lets the kernel pick; the chosen port is printed on the
// "listening" line so harnesses can parse it.
// --shards=N runs the sharded server: N session shards drained by N worker
// threads (docs/SERVICE.md, "Sharding"); 0 (the default) is the serial
// poll-thread server. --threads=N sizes the default pnr::exec pool used by
// the kernels inside each request, independent of --shards.
// --default-engine names the repartitioner backend (mlkl, sfc-morton,
// sfc-hilbert, rib) substituted when a create or repartition request
// carries the "server default" engine byte (docs/SERVICE.md, "Engines").

#include <cstdio>
#include <iostream>

#include "engine/engine.hpp"
#include "exec/pool.hpp"
#include "svc/server.hpp"
#include "util/cli.hpp"
#include "util/prof.hpp"

int main(int argc, char** argv) {
  using namespace pnr;
  util::Cli cli(argc, argv);
  const std::string socket = cli.get("socket", "");
  const int tcp_port = cli.get_int("tcp", -1);
  if (socket.empty() == (tcp_port < 0)) {
    std::fprintf(stderr,
                 "usage: pnr_serve --socket=PATH | --tcp=PORT "
                 "[--host=ADDR] [--max-sessions=N] "
                 "[--max-elements=N] [--max-frame-mb=N] [--max-parts=N] "
                 "[--shards=N] [--threads=N] [--default-engine=NAME] "
                 "[--prof]\n");
    return 2;
  }
  if (const int threads = cli.get_int("threads", 0); threads > 0)
    exec::set_default_threads(threads);
  if (cli.get_bool("prof")) prof::set_enabled(true);

  svc::ServerOptions options;
  options.limits.max_sessions =
      static_cast<std::uint32_t>(cli.get_int("max-sessions", 64));
  options.limits.max_frame_bytes =
      static_cast<std::uint32_t>(cli.get_int("max-frame-mb", 64)) << 20;
  options.limits.max_elements =
      cli.get_int("max-elements",
                  static_cast<int>(options.limits.max_elements));
  options.limits.max_parts = cli.get_int("max-parts", 1024);
  if (const std::string name = cli.get("default-engine", "mlkl");
      !name.empty()) {
    engine::Kind kind;
    if (!engine::parse_kind(name, kind)) {
      std::fprintf(stderr, "pnr_serve: unknown engine '%s'\n", name.c_str());
      return 2;
    }
    options.limits.default_engine = static_cast<std::uint8_t>(kind);
  }
  options.threads = cli.get_int("shards", 0);

  svc::Server server(options);
  std::string error;
  if (tcp_port >= 0) {
    const std::string host = cli.get("host", "127.0.0.1");
    if (tcp_port > 65535 ||
        !server.listen_tcp(static_cast<std::uint16_t>(tcp_port), &error,
                           host)) {
      std::fprintf(stderr, "pnr_serve: cannot listen on %s:%d: %s\n",
                   host.c_str(), tcp_port, error.c_str());
      return 1;
    }
    // The port is parsed by harnesses (scripts/fed_smoke.py) when --tcp=0
    // lets the kernel pick; keep the "port=N" token stable.
    std::fprintf(stderr, "pnr_serve: listening on %s port=%u\n", host.c_str(),
                 server.bound_port());
  } else {
    if (!server.listen_unix(socket, &error)) {
      std::fprintf(stderr, "pnr_serve: cannot listen on %s: %s\n",
                   socket.c_str(), error.c_str());
      return 1;
    }
    std::fprintf(stderr, "pnr_serve: listening on %s\n", socket.c_str());
  }
  server.run();
  std::fprintf(stderr, "pnr_serve: shut down cleanly\n");
  if (cli.get_bool("prof")) prof::write_summary(std::cerr);
  return 0;
}
