// The Figure 2 protocol running on the message-passing simulator: p ranks
// hold replicated meshes, each refinement-history tree has one owner, and
// every step executes P0 (adapt) → P1 (weigh) → P2 (ship weights to the
// coordinator) → P3 (PNR repartition + tree migration with payload
// validation). Reported bytes are real serialized traffic.
//
//   ./distributed_demo [--procs=4] [--steps=12] [--grid=24] [--dim=2|3]

#include <cmath>
#include <cstdio>
#include <mutex>

#include "parallel/comm.hpp"
#include "parallel/protocol.hpp"
#include "pared/workloads.hpp"
#include "mesh/generate.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace pnr;
  const util::Cli cli(argc, argv);
  const int procs = cli.get_int("procs", 4);
  const int steps = cli.get_int("steps", 12);
  const int grid = cli.get_int("grid", 24);

  const int dim = cli.get_int("dim", 2);
  par::World world(procs);
  std::mutex print_mutex;

  std::printf("%4s %8s %8s %8s %9s %10s %8s %8s\n", "step", "leaves",
              "bisect", "merged", "moved", "bytes", "cut", "imbal");

  auto print_step = [&](int step, std::int64_t leaves,
                        const par::StepStats& stats) {
    std::lock_guard<std::mutex> lock(print_mutex);
    std::printf("%4d %8lld %8lld %8lld %9lld %10lld %8lld %7.3f%%\n", step,
                static_cast<long long>(leaves),
                static_cast<long long>(stats.bisections),
                static_cast<long long>(stats.merges),
                static_cast<long long>(stats.elements_moved),
                static_cast<long long>(stats.payload_bytes),
                static_cast<long long>(stats.cut_after),
                100.0 * stats.imbalance_after);
  };

  world.run([&](par::Comm& comm) {
    core::PnrOptions options;  // paper defaults α=0.1

    if (dim == 3) {
      // 3D: deepen toward the corner of the cube, level by level.
      par::ParedRank3D rank(
          comm, mesh::structured_tet_mesh(grid / 3, grid / 3, grid / 3, 0.1, 2),
          options, /*seed=*/17);
      rank.initialize();
      const auto field = fem::corner_problem_3d();
      for (int step = 0; step < steps; ++step) {
        fem::MarkOptions mark;
        mark.refine_threshold = 0.02 * std::pow(0.6, step);
        mark.max_level = step + 2;
        const auto stats = rank.step(field, mark);
        comm.barrier();
        if (comm.rank() == par::ParedRank3D::kCoordinator)
          print_step(step, rank.local_mesh().num_leaves(), stats);
        comm.barrier();
      }
      return;
    }

    // 2D: drive the moving peak across the domain.
    par::ParedRank rank(comm,
                        mesh::structured_tri_mesh(grid, grid, 0.25, /*seed=*/2),
                        options, /*seed=*/17);
    rank.initialize();
    for (int step = 0; step < steps; ++step) {
      const double t = -0.5 + 1.0 * step / steps;
      const auto field = fem::moving_peak(t);
      fem::MarkOptions mark;
      mark.refine_threshold = 0.03;
      mark.coarsen_threshold = 0.006;
      mark.max_level = 5;
      const auto stats = rank.step(field, mark);
      comm.barrier();
      if (comm.rank() == par::ParedRank::kCoordinator)
        print_step(step, rank.local_mesh().num_leaves(), stats);
      comm.barrier();
    }
  });

  std::printf("\ntotal traffic: %lld bytes in %lld messages across %d ranks\n",
              static_cast<long long>(world.total_bytes()),
              static_cast<long long>(world.total_messages()), procs);
  return 0;
}
