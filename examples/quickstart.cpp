// Quickstart: build an adaptive mesh, refine it toward a corner, and
// repartition it with PNR, comparing against a from-scratch Multilevel-KL.
//
//   ./quickstart [--procs=8] [--levels=4] [--grid=24]
//
// This walks exactly the pipeline the paper describes: mesh → refinement
// history trees → weighted coarse dual graph → nested repartitioning.

#include <cmath>
#include <cstdio>

#include "core/pnr.hpp"
#include "fem/estimator.hpp"
#include "fem/problems.hpp"
#include "mesh/dual.hpp"
#include "mesh/generate.hpp"
#include "mesh/metrics.hpp"
#include "partition/mlkl.hpp"
#include "pared/session.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace pnr;
  const util::Cli cli(argc, argv);
  const auto p = static_cast<part::PartId>(cli.get_int("procs", 8));
  const int levels = cli.get_int("levels", 4);
  const int grid = cli.get_int("grid", 24);

  // 1. A quasi-uniform unstructured mesh of (-1,1)².
  auto mesh = mesh::structured_tri_mesh(grid, grid, 0.25, /*seed=*/1);
  std::printf("initial mesh: %d triangles\n",
              static_cast<int>(mesh.num_leaves()));

  // 2. Two sessions sharing the same mesh sequence: PNR repartitions the
  //    nested coarse graph; Multilevel-KL partitions the fine mesh from
  //    scratch every time. (Each session carries its own copy of the mesh
  //    so the carried element tags don't collide.)
  auto mesh_mlkl = mesh;
  pared::Session2D pnr_session(pared::Strategy::kPNR, p, /*seed=*/7);
  pared::Session2D mlkl_session(pared::Strategy::kMlkl, p, /*seed=*/7);

  const auto field = fem::corner_problem_2d();
  std::printf("\n%-6s %-9s | %-28s | %-28s\n", "", "", "PNR", "Multilevel-KL");
  std::printf("%-6s %-9s | %8s %8s %9s | %8s %8s %9s\n", "level", "elems",
              "shared", "moved", "imbal", "shared", "moved", "imbal");

  for (int level = 0; level <= levels; ++level) {
    if (level > 0) {
      // 3. Adapt: refine where the corner solution still changes fast.
      fem::MarkOptions mark;
      mark.refine_threshold = 0.02 * std::pow(0.55, level - 1);
      mark.max_level = level + 3;
      mesh.refine(fem::mark_for_refinement(mesh, field, mark));
      mesh_mlkl.refine(fem::mark_for_refinement(mesh_mlkl, field, mark));
    }
    // 4. Repartition and report.
    const auto a = pnr_session.step(mesh);
    const auto b = mlkl_session.step(mesh_mlkl);
    std::printf("%-6d %-9lld | %8lld %8lld %8.3f%% | %8lld %8lld %8.3f%%\n",
                level, static_cast<long long>(a.elements),
                static_cast<long long>(a.shared_vertices),
                static_cast<long long>(a.migrated),
                100.0 * a.imbalance,
                static_cast<long long>(b.shared_vertices),
                static_cast<long long>(b.migrated),
                100.0 * b.imbalance);
  }
  std::printf(
      "\nPNR keeps the moved-element count small at comparable quality —\n"
      "the paper's headline result.\n");
  return 0;
}
