# Empty compiler generated dependencies file for laplace_corner.
# This may be replaced when dependencies are built.
