file(REMOVE_RECURSE
  "CMakeFiles/laplace_corner.dir/laplace_corner.cpp.o"
  "CMakeFiles/laplace_corner.dir/laplace_corner.cpp.o.d"
  "laplace_corner"
  "laplace_corner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/laplace_corner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
