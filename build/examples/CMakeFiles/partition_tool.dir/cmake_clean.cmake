file(REMOVE_RECURSE
  "CMakeFiles/partition_tool.dir/partition_tool.cpp.o"
  "CMakeFiles/partition_tool.dir/partition_tool.cpp.o.d"
  "partition_tool"
  "partition_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/partition_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
