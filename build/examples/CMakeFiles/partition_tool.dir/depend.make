# Empty dependencies file for partition_tool.
# This may be replaced when dependencies are built.
