
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/partition_tool.cpp" "examples/CMakeFiles/partition_tool.dir/partition_tool.cpp.o" "gcc" "examples/CMakeFiles/partition_tool.dir/partition_tool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/pared/CMakeFiles/pnr_pared.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/pnr_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/pnr_core.dir/DependInfo.cmake"
  "/root/repo/build/src/fem/CMakeFiles/pnr_fem.dir/DependInfo.cmake"
  "/root/repo/build/src/mesh/CMakeFiles/pnr_mesh.dir/DependInfo.cmake"
  "/root/repo/build/src/partition/CMakeFiles/pnr_partition.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/pnr_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pnr_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
