file(REMOVE_RECURSE
  "CMakeFiles/mesh_viewer.dir/mesh_viewer.cpp.o"
  "CMakeFiles/mesh_viewer.dir/mesh_viewer.cpp.o.d"
  "mesh_viewer"
  "mesh_viewer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mesh_viewer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
