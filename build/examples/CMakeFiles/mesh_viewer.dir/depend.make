# Empty dependencies file for mesh_viewer.
# This may be replaced when dependencies are built.
