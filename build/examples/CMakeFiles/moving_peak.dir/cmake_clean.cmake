file(REMOVE_RECURSE
  "CMakeFiles/moving_peak.dir/moving_peak.cpp.o"
  "CMakeFiles/moving_peak.dir/moving_peak.cpp.o.d"
  "moving_peak"
  "moving_peak.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/moving_peak.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
