# Empty dependencies file for moving_peak.
# This may be replaced when dependencies are built.
