file(REMOVE_RECURSE
  "CMakeFiles/pnr_parallel.dir/comm.cpp.o"
  "CMakeFiles/pnr_parallel.dir/comm.cpp.o.d"
  "CMakeFiles/pnr_parallel.dir/model.cpp.o"
  "CMakeFiles/pnr_parallel.dir/model.cpp.o.d"
  "CMakeFiles/pnr_parallel.dir/protocol.cpp.o"
  "CMakeFiles/pnr_parallel.dir/protocol.cpp.o.d"
  "libpnr_parallel.a"
  "libpnr_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pnr_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
