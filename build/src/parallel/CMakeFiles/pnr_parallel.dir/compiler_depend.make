# Empty compiler generated dependencies file for pnr_parallel.
# This may be replaced when dependencies are built.
