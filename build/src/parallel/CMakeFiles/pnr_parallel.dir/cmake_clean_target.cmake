file(REMOVE_RECURSE
  "libpnr_parallel.a"
)
