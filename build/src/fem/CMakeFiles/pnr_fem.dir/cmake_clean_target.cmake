file(REMOVE_RECURSE
  "libpnr_fem.a"
)
