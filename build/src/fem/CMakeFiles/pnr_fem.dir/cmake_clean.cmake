file(REMOVE_RECURSE
  "CMakeFiles/pnr_fem.dir/cg.cpp.o"
  "CMakeFiles/pnr_fem.dir/cg.cpp.o.d"
  "CMakeFiles/pnr_fem.dir/estimator.cpp.o"
  "CMakeFiles/pnr_fem.dir/estimator.cpp.o.d"
  "CMakeFiles/pnr_fem.dir/p1.cpp.o"
  "CMakeFiles/pnr_fem.dir/p1.cpp.o.d"
  "CMakeFiles/pnr_fem.dir/problems.cpp.o"
  "CMakeFiles/pnr_fem.dir/problems.cpp.o.d"
  "CMakeFiles/pnr_fem.dir/sparse.cpp.o"
  "CMakeFiles/pnr_fem.dir/sparse.cpp.o.d"
  "libpnr_fem.a"
  "libpnr_fem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pnr_fem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
