
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fem/cg.cpp" "src/fem/CMakeFiles/pnr_fem.dir/cg.cpp.o" "gcc" "src/fem/CMakeFiles/pnr_fem.dir/cg.cpp.o.d"
  "/root/repo/src/fem/estimator.cpp" "src/fem/CMakeFiles/pnr_fem.dir/estimator.cpp.o" "gcc" "src/fem/CMakeFiles/pnr_fem.dir/estimator.cpp.o.d"
  "/root/repo/src/fem/p1.cpp" "src/fem/CMakeFiles/pnr_fem.dir/p1.cpp.o" "gcc" "src/fem/CMakeFiles/pnr_fem.dir/p1.cpp.o.d"
  "/root/repo/src/fem/problems.cpp" "src/fem/CMakeFiles/pnr_fem.dir/problems.cpp.o" "gcc" "src/fem/CMakeFiles/pnr_fem.dir/problems.cpp.o.d"
  "/root/repo/src/fem/sparse.cpp" "src/fem/CMakeFiles/pnr_fem.dir/sparse.cpp.o" "gcc" "src/fem/CMakeFiles/pnr_fem.dir/sparse.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mesh/CMakeFiles/pnr_mesh.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pnr_util.dir/DependInfo.cmake"
  "/root/repo/build/src/partition/CMakeFiles/pnr_partition.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/pnr_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
