# Empty compiler generated dependencies file for pnr_fem.
# This may be replaced when dependencies are built.
