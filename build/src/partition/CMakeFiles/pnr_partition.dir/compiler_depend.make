# Empty compiler generated dependencies file for pnr_partition.
# This may be replaced when dependencies are built.
