file(REMOVE_RECURSE
  "CMakeFiles/pnr_partition.dir/dense_eig.cpp.o"
  "CMakeFiles/pnr_partition.dir/dense_eig.cpp.o.d"
  "CMakeFiles/pnr_partition.dir/diffusion.cpp.o"
  "CMakeFiles/pnr_partition.dir/diffusion.cpp.o.d"
  "CMakeFiles/pnr_partition.dir/ggg.cpp.o"
  "CMakeFiles/pnr_partition.dir/ggg.cpp.o.d"
  "CMakeFiles/pnr_partition.dir/inertial.cpp.o"
  "CMakeFiles/pnr_partition.dir/inertial.cpp.o.d"
  "CMakeFiles/pnr_partition.dir/mldiffusion.cpp.o"
  "CMakeFiles/pnr_partition.dir/mldiffusion.cpp.o.d"
  "CMakeFiles/pnr_partition.dir/mlkl.cpp.o"
  "CMakeFiles/pnr_partition.dir/mlkl.cpp.o.d"
  "CMakeFiles/pnr_partition.dir/pairqueue.cpp.o"
  "CMakeFiles/pnr_partition.dir/pairqueue.cpp.o.d"
  "CMakeFiles/pnr_partition.dir/partition.cpp.o"
  "CMakeFiles/pnr_partition.dir/partition.cpp.o.d"
  "CMakeFiles/pnr_partition.dir/partitioner.cpp.o"
  "CMakeFiles/pnr_partition.dir/partitioner.cpp.o.d"
  "CMakeFiles/pnr_partition.dir/rcb.cpp.o"
  "CMakeFiles/pnr_partition.dir/rcb.cpp.o.d"
  "CMakeFiles/pnr_partition.dir/rebalance.cpp.o"
  "CMakeFiles/pnr_partition.dir/rebalance.cpp.o.d"
  "CMakeFiles/pnr_partition.dir/recursive.cpp.o"
  "CMakeFiles/pnr_partition.dir/recursive.cpp.o.d"
  "CMakeFiles/pnr_partition.dir/refine.cpp.o"
  "CMakeFiles/pnr_partition.dir/refine.cpp.o.d"
  "CMakeFiles/pnr_partition.dir/remap.cpp.o"
  "CMakeFiles/pnr_partition.dir/remap.cpp.o.d"
  "CMakeFiles/pnr_partition.dir/rsb.cpp.o"
  "CMakeFiles/pnr_partition.dir/rsb.cpp.o.d"
  "libpnr_partition.a"
  "libpnr_partition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pnr_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
