
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/partition/dense_eig.cpp" "src/partition/CMakeFiles/pnr_partition.dir/dense_eig.cpp.o" "gcc" "src/partition/CMakeFiles/pnr_partition.dir/dense_eig.cpp.o.d"
  "/root/repo/src/partition/diffusion.cpp" "src/partition/CMakeFiles/pnr_partition.dir/diffusion.cpp.o" "gcc" "src/partition/CMakeFiles/pnr_partition.dir/diffusion.cpp.o.d"
  "/root/repo/src/partition/ggg.cpp" "src/partition/CMakeFiles/pnr_partition.dir/ggg.cpp.o" "gcc" "src/partition/CMakeFiles/pnr_partition.dir/ggg.cpp.o.d"
  "/root/repo/src/partition/inertial.cpp" "src/partition/CMakeFiles/pnr_partition.dir/inertial.cpp.o" "gcc" "src/partition/CMakeFiles/pnr_partition.dir/inertial.cpp.o.d"
  "/root/repo/src/partition/mldiffusion.cpp" "src/partition/CMakeFiles/pnr_partition.dir/mldiffusion.cpp.o" "gcc" "src/partition/CMakeFiles/pnr_partition.dir/mldiffusion.cpp.o.d"
  "/root/repo/src/partition/mlkl.cpp" "src/partition/CMakeFiles/pnr_partition.dir/mlkl.cpp.o" "gcc" "src/partition/CMakeFiles/pnr_partition.dir/mlkl.cpp.o.d"
  "/root/repo/src/partition/pairqueue.cpp" "src/partition/CMakeFiles/pnr_partition.dir/pairqueue.cpp.o" "gcc" "src/partition/CMakeFiles/pnr_partition.dir/pairqueue.cpp.o.d"
  "/root/repo/src/partition/partition.cpp" "src/partition/CMakeFiles/pnr_partition.dir/partition.cpp.o" "gcc" "src/partition/CMakeFiles/pnr_partition.dir/partition.cpp.o.d"
  "/root/repo/src/partition/partitioner.cpp" "src/partition/CMakeFiles/pnr_partition.dir/partitioner.cpp.o" "gcc" "src/partition/CMakeFiles/pnr_partition.dir/partitioner.cpp.o.d"
  "/root/repo/src/partition/rcb.cpp" "src/partition/CMakeFiles/pnr_partition.dir/rcb.cpp.o" "gcc" "src/partition/CMakeFiles/pnr_partition.dir/rcb.cpp.o.d"
  "/root/repo/src/partition/rebalance.cpp" "src/partition/CMakeFiles/pnr_partition.dir/rebalance.cpp.o" "gcc" "src/partition/CMakeFiles/pnr_partition.dir/rebalance.cpp.o.d"
  "/root/repo/src/partition/recursive.cpp" "src/partition/CMakeFiles/pnr_partition.dir/recursive.cpp.o" "gcc" "src/partition/CMakeFiles/pnr_partition.dir/recursive.cpp.o.d"
  "/root/repo/src/partition/refine.cpp" "src/partition/CMakeFiles/pnr_partition.dir/refine.cpp.o" "gcc" "src/partition/CMakeFiles/pnr_partition.dir/refine.cpp.o.d"
  "/root/repo/src/partition/remap.cpp" "src/partition/CMakeFiles/pnr_partition.dir/remap.cpp.o" "gcc" "src/partition/CMakeFiles/pnr_partition.dir/remap.cpp.o.d"
  "/root/repo/src/partition/rsb.cpp" "src/partition/CMakeFiles/pnr_partition.dir/rsb.cpp.o" "gcc" "src/partition/CMakeFiles/pnr_partition.dir/rsb.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/pnr_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pnr_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
