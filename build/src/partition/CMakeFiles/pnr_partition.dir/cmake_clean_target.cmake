file(REMOVE_RECURSE
  "libpnr_partition.a"
)
