file(REMOVE_RECURSE
  "libpnr_mesh.a"
)
