file(REMOVE_RECURSE
  "CMakeFiles/pnr_mesh.dir/dual.cpp.o"
  "CMakeFiles/pnr_mesh.dir/dual.cpp.o.d"
  "CMakeFiles/pnr_mesh.dir/generate.cpp.o"
  "CMakeFiles/pnr_mesh.dir/generate.cpp.o.d"
  "CMakeFiles/pnr_mesh.dir/io.cpp.o"
  "CMakeFiles/pnr_mesh.dir/io.cpp.o.d"
  "CMakeFiles/pnr_mesh.dir/metrics.cpp.o"
  "CMakeFiles/pnr_mesh.dir/metrics.cpp.o.d"
  "CMakeFiles/pnr_mesh.dir/svg.cpp.o"
  "CMakeFiles/pnr_mesh.dir/svg.cpp.o.d"
  "CMakeFiles/pnr_mesh.dir/tet_mesh.cpp.o"
  "CMakeFiles/pnr_mesh.dir/tet_mesh.cpp.o.d"
  "CMakeFiles/pnr_mesh.dir/tri_mesh.cpp.o"
  "CMakeFiles/pnr_mesh.dir/tri_mesh.cpp.o.d"
  "libpnr_mesh.a"
  "libpnr_mesh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pnr_mesh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
