# Empty compiler generated dependencies file for pnr_mesh.
# This may be replaced when dependencies are built.
