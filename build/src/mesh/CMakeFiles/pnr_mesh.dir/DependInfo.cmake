
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mesh/dual.cpp" "src/mesh/CMakeFiles/pnr_mesh.dir/dual.cpp.o" "gcc" "src/mesh/CMakeFiles/pnr_mesh.dir/dual.cpp.o.d"
  "/root/repo/src/mesh/generate.cpp" "src/mesh/CMakeFiles/pnr_mesh.dir/generate.cpp.o" "gcc" "src/mesh/CMakeFiles/pnr_mesh.dir/generate.cpp.o.d"
  "/root/repo/src/mesh/io.cpp" "src/mesh/CMakeFiles/pnr_mesh.dir/io.cpp.o" "gcc" "src/mesh/CMakeFiles/pnr_mesh.dir/io.cpp.o.d"
  "/root/repo/src/mesh/metrics.cpp" "src/mesh/CMakeFiles/pnr_mesh.dir/metrics.cpp.o" "gcc" "src/mesh/CMakeFiles/pnr_mesh.dir/metrics.cpp.o.d"
  "/root/repo/src/mesh/svg.cpp" "src/mesh/CMakeFiles/pnr_mesh.dir/svg.cpp.o" "gcc" "src/mesh/CMakeFiles/pnr_mesh.dir/svg.cpp.o.d"
  "/root/repo/src/mesh/tet_mesh.cpp" "src/mesh/CMakeFiles/pnr_mesh.dir/tet_mesh.cpp.o" "gcc" "src/mesh/CMakeFiles/pnr_mesh.dir/tet_mesh.cpp.o.d"
  "/root/repo/src/mesh/tri_mesh.cpp" "src/mesh/CMakeFiles/pnr_mesh.dir/tri_mesh.cpp.o" "gcc" "src/mesh/CMakeFiles/pnr_mesh.dir/tri_mesh.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/pnr_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/partition/CMakeFiles/pnr_partition.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pnr_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
