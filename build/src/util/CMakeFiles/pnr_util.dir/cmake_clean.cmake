file(REMOVE_RECURSE
  "CMakeFiles/pnr_util.dir/cli.cpp.o"
  "CMakeFiles/pnr_util.dir/cli.cpp.o.d"
  "CMakeFiles/pnr_util.dir/log.cpp.o"
  "CMakeFiles/pnr_util.dir/log.cpp.o.d"
  "CMakeFiles/pnr_util.dir/rng.cpp.o"
  "CMakeFiles/pnr_util.dir/rng.cpp.o.d"
  "CMakeFiles/pnr_util.dir/stats.cpp.o"
  "CMakeFiles/pnr_util.dir/stats.cpp.o.d"
  "CMakeFiles/pnr_util.dir/table.cpp.o"
  "CMakeFiles/pnr_util.dir/table.cpp.o.d"
  "libpnr_util.a"
  "libpnr_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pnr_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
