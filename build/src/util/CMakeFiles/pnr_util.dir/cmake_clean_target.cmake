file(REMOVE_RECURSE
  "libpnr_util.a"
)
