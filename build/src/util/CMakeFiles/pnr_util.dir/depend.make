# Empty dependencies file for pnr_util.
# This may be replaced when dependencies are built.
