# Empty compiler generated dependencies file for pnr_pared.
# This may be replaced when dependencies are built.
