file(REMOVE_RECURSE
  "CMakeFiles/pnr_pared.dir/driver.cpp.o"
  "CMakeFiles/pnr_pared.dir/driver.cpp.o.d"
  "CMakeFiles/pnr_pared.dir/session.cpp.o"
  "CMakeFiles/pnr_pared.dir/session.cpp.o.d"
  "CMakeFiles/pnr_pared.dir/workloads.cpp.o"
  "CMakeFiles/pnr_pared.dir/workloads.cpp.o.d"
  "libpnr_pared.a"
  "libpnr_pared.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pnr_pared.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
