file(REMOVE_RECURSE
  "libpnr_pared.a"
)
