file(REMOVE_RECURSE
  "libpnr_core.a"
)
