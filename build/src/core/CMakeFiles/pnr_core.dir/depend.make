# Empty dependencies file for pnr_core.
# This may be replaced when dependencies are built.
