file(REMOVE_RECURSE
  "CMakeFiles/pnr_core.dir/pnr.cpp.o"
  "CMakeFiles/pnr_core.dir/pnr.cpp.o.d"
  "CMakeFiles/pnr_core.dir/snap.cpp.o"
  "CMakeFiles/pnr_core.dir/snap.cpp.o.d"
  "libpnr_core.a"
  "libpnr_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pnr_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
