file(REMOVE_RECURSE
  "libpnr_graph.a"
)
