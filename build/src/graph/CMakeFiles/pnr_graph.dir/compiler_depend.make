# Empty compiler generated dependencies file for pnr_graph.
# This may be replaced when dependencies are built.
