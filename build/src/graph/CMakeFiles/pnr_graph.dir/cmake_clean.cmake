file(REMOVE_RECURSE
  "CMakeFiles/pnr_graph.dir/algorithms.cpp.o"
  "CMakeFiles/pnr_graph.dir/algorithms.cpp.o.d"
  "CMakeFiles/pnr_graph.dir/builder.cpp.o"
  "CMakeFiles/pnr_graph.dir/builder.cpp.o.d"
  "CMakeFiles/pnr_graph.dir/coarsen.cpp.o"
  "CMakeFiles/pnr_graph.dir/coarsen.cpp.o.d"
  "CMakeFiles/pnr_graph.dir/csr.cpp.o"
  "CMakeFiles/pnr_graph.dir/csr.cpp.o.d"
  "CMakeFiles/pnr_graph.dir/io.cpp.o"
  "CMakeFiles/pnr_graph.dir/io.cpp.o.d"
  "CMakeFiles/pnr_graph.dir/laplacian.cpp.o"
  "CMakeFiles/pnr_graph.dir/laplacian.cpp.o.d"
  "CMakeFiles/pnr_graph.dir/subgraph.cpp.o"
  "CMakeFiles/pnr_graph.dir/subgraph.cpp.o.d"
  "libpnr_graph.a"
  "libpnr_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pnr_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
