file(REMOVE_RECURSE
  "CMakeFiles/bench_adjacency.dir/bench_adjacency.cpp.o"
  "CMakeFiles/bench_adjacency.dir/bench_adjacency.cpp.o.d"
  "bench_adjacency"
  "bench_adjacency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_adjacency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
