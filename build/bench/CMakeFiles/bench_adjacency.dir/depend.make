# Empty dependencies file for bench_adjacency.
# This may be replaced when dependencies are built.
