# Empty dependencies file for bench_fig8_transient_migration.
# This may be replaced when dependencies are built.
