# Empty dependencies file for bench_fig7_transient_quality.
# This may be replaced when dependencies are built.
