file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_quality.dir/bench_fig3_quality.cpp.o"
  "CMakeFiles/bench_fig3_quality.dir/bench_fig3_quality.cpp.o.d"
  "bench_fig3_quality"
  "bench_fig3_quality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
