file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_nested.dir/bench_ablation_nested.cpp.o"
  "CMakeFiles/bench_ablation_nested.dir/bench_ablation_nested.cpp.o.d"
  "bench_ablation_nested"
  "bench_ablation_nested.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_nested.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
