# Empty compiler generated dependencies file for bench_ablation_nested.
# This may be replaced when dependencies are built.
