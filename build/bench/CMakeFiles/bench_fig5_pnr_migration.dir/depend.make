# Empty dependencies file for bench_fig5_pnr_migration.
# This may be replaced when dependencies are built.
