file(REMOVE_RECURSE
  "CMakeFiles/bench_protocol_scaling.dir/bench_protocol_scaling.cpp.o"
  "CMakeFiles/bench_protocol_scaling.dir/bench_protocol_scaling.cpp.o.d"
  "bench_protocol_scaling"
  "bench_protocol_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_protocol_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
