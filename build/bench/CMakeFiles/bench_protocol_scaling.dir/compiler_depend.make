# Empty compiler generated dependencies file for bench_protocol_scaling.
# This may be replaced when dependencies are built.
