file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_fig6_meshes.dir/bench_fig1_fig6_meshes.cpp.o"
  "CMakeFiles/bench_fig1_fig6_meshes.dir/bench_fig1_fig6_meshes.cpp.o.d"
  "bench_fig1_fig6_meshes"
  "bench_fig1_fig6_meshes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_fig6_meshes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
