# Empty compiler generated dependencies file for bench_fig1_fig6_meshes.
# This may be replaced when dependencies are built.
