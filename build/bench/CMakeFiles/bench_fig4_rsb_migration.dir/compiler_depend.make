# Empty compiler generated dependencies file for bench_fig4_rsb_migration.
# This may be replaced when dependencies are built.
