file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_rsb_migration.dir/bench_fig4_rsb_migration.cpp.o"
  "CMakeFiles/bench_fig4_rsb_migration.dir/bench_fig4_rsb_migration.cpp.o.d"
  "bench_fig4_rsb_migration"
  "bench_fig4_rsb_migration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_rsb_migration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
