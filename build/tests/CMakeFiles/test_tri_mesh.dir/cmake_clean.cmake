file(REMOVE_RECURSE
  "CMakeFiles/test_tri_mesh.dir/test_tri_mesh.cpp.o"
  "CMakeFiles/test_tri_mesh.dir/test_tri_mesh.cpp.o.d"
  "test_tri_mesh"
  "test_tri_mesh.pdb"
  "test_tri_mesh[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tri_mesh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
