# Empty dependencies file for test_tri_mesh.
# This may be replaced when dependencies are built.
