file(REMOVE_RECURSE
  "CMakeFiles/test_svg_pairqueue.dir/test_svg_pairqueue.cpp.o"
  "CMakeFiles/test_svg_pairqueue.dir/test_svg_pairqueue.cpp.o.d"
  "test_svg_pairqueue"
  "test_svg_pairqueue.pdb"
  "test_svg_pairqueue[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_svg_pairqueue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
