# Empty compiler generated dependencies file for test_svg_pairqueue.
# This may be replaced when dependencies are built.
