# Empty dependencies file for test_pared.
# This may be replaced when dependencies are built.
