file(REMOVE_RECURSE
  "CMakeFiles/test_pared.dir/test_pared.cpp.o"
  "CMakeFiles/test_pared.dir/test_pared.cpp.o.d"
  "test_pared"
  "test_pared.pdb"
  "test_pared[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pared.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
