file(REMOVE_RECURSE
  "CMakeFiles/test_remap_diffusion.dir/test_remap_diffusion.cpp.o"
  "CMakeFiles/test_remap_diffusion.dir/test_remap_diffusion.cpp.o.d"
  "test_remap_diffusion"
  "test_remap_diffusion.pdb"
  "test_remap_diffusion[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_remap_diffusion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
