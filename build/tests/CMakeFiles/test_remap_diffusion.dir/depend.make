# Empty dependencies file for test_remap_diffusion.
# This may be replaced when dependencies are built.
