# Empty compiler generated dependencies file for test_pnr.
# This may be replaced when dependencies are built.
