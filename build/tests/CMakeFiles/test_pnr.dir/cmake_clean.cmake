file(REMOVE_RECURSE
  "CMakeFiles/test_pnr.dir/test_pnr.cpp.o"
  "CMakeFiles/test_pnr.dir/test_pnr.cpp.o.d"
  "test_pnr"
  "test_pnr.pdb"
  "test_pnr[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pnr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
