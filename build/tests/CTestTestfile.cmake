# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_graph[1]_include.cmake")
include("/root/repo/build/tests/test_coarsen[1]_include.cmake")
include("/root/repo/build/tests/test_tri_mesh[1]_include.cmake")
include("/root/repo/build/tests/test_tet_mesh[1]_include.cmake")
include("/root/repo/build/tests/test_partition[1]_include.cmake")
include("/root/repo/build/tests/test_partitioners[1]_include.cmake")
include("/root/repo/build/tests/test_remap_diffusion[1]_include.cmake")
include("/root/repo/build/tests/test_pnr[1]_include.cmake")
include("/root/repo/build/tests/test_fem[1]_include.cmake")
include("/root/repo/build/tests/test_rebalance[1]_include.cmake")
include("/root/repo/build/tests/test_pared[1]_include.cmake")
include("/root/repo/build/tests/test_parallel[1]_include.cmake")
include("/root/repo/build/tests/test_io[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_graph_io[1]_include.cmake")
include("/root/repo/build/tests/test_svg_pairqueue[1]_include.cmake")
include("/root/repo/build/tests/test_sweeps[1]_include.cmake")
