#!/usr/bin/env python3
"""Self-checks for scripts/lint.py: every rule must fire on a seeded
violation and stay quiet on the conforming version. The angled-include
cases pin the regression where the subsystem list was hardcoded and new
directories (exec/, svc/) silently slipped through — the list is now
derived from src/, so these cases cover subsystems from every era.

    python3 scripts/test_lint.py
"""

import os
import subprocess
import sys
import tempfile

SCRIPT = os.path.join(os.path.dirname(os.path.abspath(__file__)), "lint.py")

CASES = [
    # (name, filename, source, expected rule tag or None)
    ("angled include of an original subsystem fires", "a.cpp",
     '#include <graph/csr.hpp>\n', "include-hygiene"),
    ("angled include of exec/ fires (was missed by the hardcoded list)",
     "b.cpp", '#include <exec/pool.hpp>\n', "include-hygiene"),
    ("angled include of svc/ fires (was missed by the hardcoded list)",
     "c.cpp", '#include <svc/wire.hpp>\n', "include-hygiene"),
    ("quoted project include is clean", "d.cpp",
     '#include "exec/pool.hpp"\n', None),
    ("angled system include is clean", "e.cpp",
     '#include <vector>\n', None),
    ("parent-relative include fires", "f.cpp",
     '#include "../util/rng.hpp"\n', "include-hygiene"),
    ("naked assert fires", "g.cpp",
     '#include <cassert>\nvoid f(int x) { assert(x > 0); }\n',
     "naked-assert"),
    ("PNR_ASSERT is clean", "h.cpp",
     'void f(int x) { PNR_ASSERT(x > 0); }\n', None),
    ("std::rand fires", "i.cpp",
     'int f() { return std::rand(); }\n', "banned-rand"),
    ("bad prof name fires", "j.cpp",
     'void f() { prof::count("BadName.X"); }\n', "prof-name"),
    ("dotted lower_snake prof name is clean", "k.cpp",
     'void f() { prof::count("kl.refine"); }\n', None),
    ("header without pragma once fires", "l.hpp",
     'int f();\n', "include-hygiene"),
    ("header with pragma once is clean", "m.hpp",
     '#pragma once\nint f();\n', None),
    ("using namespace std fires", "n.cpp",
     'using namespace std;\n', "using-namespace-std"),
    ("std::thread outside src/exec and src/parallel fires", "o.cpp",
     '#include <thread>\nvoid f() { std::thread t; }\n', "raw-thread"),
    ("raw socket syscall outside src/svc fires", "p.cpp",
     'int f() { return ::socket(1, 2, 3); }\n', "raw-socket"),
    ("commented-out violation is clean", "q.cpp",
     '// assert(x); std::rand(); #include <exec/pool.hpp>\nint f();\n',
     None),
]


def run_lint(filename: str, source: str):
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, filename)
        with open(path, "w") as f:
            f.write(source)
        return subprocess.run([sys.executable, SCRIPT, path],
                              capture_output=True, text=True)


def check(name, ok, detail=""):
    if not ok:
        print(f"FAIL: {name}\n{detail}")
        return 1
    print(f"ok: {name}")
    return 0


def main():
    failures = 0
    for name, filename, source, rule in CASES:
        r = run_lint(filename, source)
        if rule is None:
            failures += check(name, r.returncode == 0,
                              r.stdout + r.stderr)
        else:
            failures += check(name, r.returncode == 1 and rule in r.stdout,
                              r.stdout + r.stderr)

    # The checked-in tree must stay clean.
    r = subprocess.run([sys.executable, SCRIPT], capture_output=True,
                       text=True)
    failures += check("live tree is clean", r.returncode == 0,
                      r.stdout + r.stderr)

    if failures:
        print(f"{failures} lint check(s) failed")
        return 1
    print("all lint checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
