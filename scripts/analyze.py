#!/usr/bin/env python3
"""pnr-lint stage 2: semantic checks over declarations and function bodies.

Where scripts/lint.py greps single lines for conventions, this analyzer
understands just enough structure — record members, function bodies, token
streams — to enforce rules that need context:

  unchecked-tryreader     an std::optional produced by a par::TryReader (a
                          `r.get<T>()` call, or a decode helper taking the
                          reader) is dereferenced with `*x` / `x->` before
                          any null check. This is the hostile-reply bug
                          class: TryReader exists precisely so truncated
                          input yields nullopt instead of UB, and an
                          unchecked deref reintroduces the UB.
  unguarded-mutex-member  a record declares a raw std::mutex member (which
                          cannot carry thread-safety annotations — use
                          util::Mutex), or a util::Mutex member that no
                          sibling field names in PNR_GUARDED_BY /
                          PNR_PT_GUARDED_BY. A mutex that guards nothing
                          visible is either dead weight or missing
                          annotations.
  ref-capture-in-submit   a lambda passed to a detached-task submit() has a
                          by-reference capture (`[&]`, `[&x]`). Detached
                          tasks outlive the enqueuing scope; references to
                          locals or to non-atomic state dangle or race.
                          Capture by value (or `this` plus lock-guarded
                          state) instead.

Two interchangeable frontends feed one rule engine:

  * libclang (preferred): functions and records are discovered from the
    AST via python3-clang + compile_commands.json (pass --compile-commands;
    CMAKE_EXPORT_COMPILE_COMMANDS=ON writes it), so macros, templates and
    odd formatting cannot fool the chunker. Token streams still come from
    the raw lexer, so PNR_* annotation macros are visible pre-expansion.
  * textual (fallback): a self-contained tokenizer + brace-matching
    chunker. Used automatically when libclang is unavailable (the local
    toolchain is GCC-only); CI runs the clang frontend.

Both frontends produce the same IR, so scripts/test_analyze.py exercises
the rules identically under either. A finding can be waived with a comment
on the same or the preceding line, naming the rule:

    std::mutex legacy_;  // pnr-analyze: allow(unguarded-mutex-member) why...

Exit status: 0 clean, 1 findings, 2 usage/frontend failure. Default file
set is src/ only (tests may legitimately ref-capture and join).
"""

from __future__ import annotations

import argparse
import glob as globmod
import pathlib
import re
import sys
from typing import NamedTuple

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))
from lint import strip_comments_and_strings  # noqa: E402  (stage-1 stripper)

ROOT = pathlib.Path(__file__).resolve().parent.parent
EXTS = {".hpp", ".cpp"}

RULES = ("unchecked-tryreader", "unguarded-mutex-member",
         "ref-capture-in-submit")

WAIVER = re.compile(r"pnr-analyze:\s*allow\(([^)]*)\)")

TOKEN = re.compile(
    r"[A-Za-z_]\w*"          # identifier / keyword
    r"|\d[\w.]*"             # number (good enough: never rule-relevant)
    r"|::|->|\+\+|--|&&|\|\||==|!=|<=|>=|<<|>>"
    r"|[-{}()\[\];:,<>.*&=!+/%^|~?#]")


class Tok(NamedTuple):
    text: str
    line: int


class Member(NamedTuple):
    """One record field: its declaration tokens plus derived facts."""
    tokens: tuple[Tok, ...]
    name: str
    line: int


class Record(NamedTuple):
    name: str
    line: int
    members: tuple[Member, ...]


class Function(NamedTuple):
    name: str
    line: int
    tokens: tuple[Tok, ...]  # body tokens, nested blocks flattened in order


class FileIR(NamedTuple):
    path: pathlib.Path
    rel: str
    tokens: tuple[Tok, ...]          # whole file (comments/strings stripped)
    records: tuple[Record, ...]
    functions: tuple[Function, ...]
    waivers: dict[int, set[str]]     # line -> waived rule names


class Finding(NamedTuple):
    rel: str
    line: int
    rule: str
    message: str


# ---- tokenizing -------------------------------------------------------------


def scan_waivers(lines: list[str]) -> dict[int, set[str]]:
    waivers: dict[int, set[str]] = {}
    for lineno, raw in enumerate(lines, start=1):
        m = WAIVER.search(raw)
        if m:
            waivers[lineno] = {r.strip() for r in m.group(1).split(",")}
    return waivers


def tokenize(text: str) -> list[Tok]:
    tokens: list[Tok] = []
    in_block = False
    for lineno, raw in enumerate(text.splitlines(), start=1):
        code, in_block = strip_comments_and_strings(raw, in_block)
        for m in TOKEN.finditer(code):
            tokens.append(Tok(m.group(0), lineno))
    return tokens


def match_brace(tokens: list[Tok], open_idx: int) -> int:
    """Index of the `}` matching tokens[open_idx] == `{` (len() if unclosed)."""
    depth = 0
    for i in range(open_idx, len(tokens)):
        if tokens[i].text == "{":
            depth += 1
        elif tokens[i].text == "}":
            depth -= 1
            if depth == 0:
                return i
    return len(tokens)


def skip_template_args(tokens: list[Tok], i: int) -> int:
    """With tokens[i] == `<`, return the index just past the matching close.
    `>>` closes two levels (C++11). Gives up (returns i) on `;`/`{` — then it
    was a comparison, not template args."""
    depth = 0
    j = i
    while j < len(tokens):
        t = tokens[j].text
        if t == "<":
            depth += 1
        elif t == ">":
            depth -= 1
            if depth == 0:
                return j + 1
        elif t == ">>":
            depth -= 2
            if depth <= 0:
                return j + 1
        elif t in (";", "{"):
            return i
        j += 1
    return i


# ---- textual frontend -------------------------------------------------------

#: Tokens allowed between a function's `)` and its `{`: qualifiers, the
#: ctor-init `:` (handled by paren skipping), trailing-return arrows, and
#: annotation macros like PNR_EXCLUDES(...).
_FN_TAIL_OK = {"const", "noexcept", "override", "final", "mutable", "try",
               ":", "->", "::", "&", "&&", "*", "<", ">", ">>", ",", "="}


def _find_function_bodies(tokens: list[Tok]) -> list[Function]:
    """Heuristic chunker: IDENT (args) [tail] { body }. Nested bodies (and
    lambdas) stay inside the enclosing chunk, which is what the rules want:
    a lambda shares its enclosing function's locals."""
    functions: list[Function] = []
    i = 0
    n = len(tokens)
    while i < n:
        if tokens[i].text == "(" and i > 0 and re.fullmatch(
                r"[A-Za-z_]\w*", tokens[i - 1].text):
            name_tok = tokens[i - 1]
            if name_tok.text in ("if", "while", "for", "switch", "return",
                                 "catch", "sizeof", "alignof", "decltype"):
                i += 1
                continue
            # Skip the parameter list.
            depth = 0
            j = i
            while j < n:
                if tokens[j].text == "(":
                    depth += 1
                elif tokens[j].text == ")":
                    depth -= 1
                    if depth == 0:
                        break
                j += 1
            j += 1
            # Walk the tail: qualifiers / macros / ctor-init until `{` or a
            # token that proves this was not a function definition.
            while j < n:
                t = tokens[j].text
                if t == "{":
                    end = match_brace(tokens, j)
                    functions.append(Function(
                        name_tok.text, name_tok.line,
                        tuple(tokens[j + 1:end])))
                    i = end
                    break
                if t == "(":  # macro args / ctor-init initializer
                    d = 0
                    while j < n:
                        if tokens[j].text == "(":
                            d += 1
                        elif tokens[j].text == ")":
                            d -= 1
                            if d == 0:
                                break
                        j += 1
                    j += 1
                    continue
                if t in _FN_TAIL_OK or re.fullmatch(r"[A-Za-z_]\w*", t):
                    j += 1
                    continue
                break  # `;`, `,`, ... — a declaration or an expression
        i += 1
    return functions


def _parse_members(body: list[Tok]) -> list[Member]:
    """Split a record body into member declarations. Nested records and
    member-function bodies are skipped (brace groups not followed by `;`);
    brace initializers (`{0}` followed by `;`) stay in the declaration."""
    members: list[Member] = []
    stmt: list[Tok] = []
    i = 0
    n = len(body)
    while i < n:
        t = body[i]
        if t.text == "{":
            end = match_brace(body, i)
            if end + 1 < n and body[end + 1].text == ";":
                members.append(_make_member(stmt, t.line))
                stmt = []
                i = end + 2
            else:  # nested record / inline method body: not a data member
                stmt = []
                i = end + 1
            continue
        if t.text == ";":
            if stmt:
                members.append(_make_member(stmt, t.line))
            stmt = []
            i += 1
            continue
        stmt.append(t)
        i += 1
    return [m for m in members if m.tokens]


def _make_member(stmt: list[Tok], endline: int) -> Member:
    # The member name: the last identifier at paren/angle depth 0 that is
    # not inside an annotation macro's argument list and not a type keyword.
    name = ""
    depth = 0
    for i, t in enumerate(stmt):
        if t.text in ("(", "[", "<"):
            depth += 1
        elif t.text in (")", "]", ">"):
            depth -= 1
        elif t.text == ">>":
            depth -= 2
        elif depth <= 0 and re.fullmatch(r"[A-Za-z_]\w*", t.text):
            nxt = stmt[i + 1].text if i + 1 < len(stmt) else ";"
            if t.text.startswith("PNR_"):
                break  # annotations trail the declarator
            if nxt in (";", "=", "{", "[") or (
                    i + 1 == len(stmt)) or nxt.startswith("PNR_"):
                name = t.text
    line = stmt[0].line if stmt else endline
    return Member(tuple(stmt), name, line)


def _find_records(tokens: list[Tok]) -> list[Record]:
    records: list[Record] = []
    i = 0
    n = len(tokens)
    while i < n:
        if tokens[i].text in ("struct", "class"):
            j = i + 1
            name_parts: list[str] = []
            while j < n and tokens[j].text not in ("{", ";", ":", "("):
                name_parts.append(tokens[j].text)
                j += 1
            if j < n and tokens[j].text == ":":  # base clause
                while j < n and tokens[j].text != "{":
                    j += 1
            if j < n and tokens[j].text == "{" and name_parts:
                end = match_brace(tokens, j)
                body = tokens[j + 1:end]
                # Class-head attribute macros (PNR_CAPABILITY("x")) precede
                # the name; the name is the last plain identifier.
                idents = [p for p in name_parts
                          if IDENT.match(p) and not p.startswith("PNR_")]
                name = idents[-1] if idents else "".join(name_parts)
                records.append(Record(name, tokens[i].line,
                                      tuple(_parse_members(body))))
                # Do not skip the body: nested records are found by the
                # same scan.
        i += 1
    return records


def build_ir_textual(path: pathlib.Path) -> FileIR:
    text = path.read_text(encoding="utf-8")
    lines = text.splitlines()
    tokens = tokenize(text)
    rel = _rel(path)
    return FileIR(path, rel, tuple(tokens), tuple(_find_records(tokens)),
                  tuple(_find_function_bodies(tokens)), scan_waivers(lines))


# ---- libclang frontend ------------------------------------------------------


def load_libclang():
    """Import clang.cindex and make sure the shared library resolves.
    Returns the module or None."""
    try:
        import clang.cindex as ci
    except ImportError:
        return None
    try:
        ci.Index.create()
        return ci
    except Exception:
        pass
    candidates = sorted(
        globmod.glob("/usr/lib/llvm-*/lib/libclang*.so*")
        + globmod.glob("/usr/lib/*/libclang*.so*"), reverse=True)
    for lib in candidates:
        try:
            ci.Config.loaded = False
            ci.Config.set_library_file(lib)
            ci.Index.create()
            return ci
        except Exception:
            continue
    return None


def _compile_args(ci, cc_path: pathlib.Path | None, path: pathlib.Path):
    fallback = ["-std=c++20", "-xc++", f"-I{ROOT / 'src'}"]
    if cc_path is None:
        return fallback
    try:
        cdb = ci.CompilationDatabase.fromDirectory(str(cc_path.parent))
        cmds = cdb.getCompileCommands(str(path))
    except Exception:
        return fallback
    if not cmds:
        return fallback
    args = list(cmds[0].arguments)[1:]  # drop the compiler
    out, skip = [], False
    for a in args:
        if skip:
            skip = False
            continue
        if a in ("-c", str(path)) or a == path.name:
            continue
        if a == "-o":
            skip = True
            continue
        out.append(a)
    return out


_FN_KINDS = ("FUNCTION_DECL", "CXX_METHOD", "CONSTRUCTOR", "DESTRUCTOR",
             "FUNCTION_TEMPLATE", "CONVERSION_FUNCTION")
_REC_KINDS = ("STRUCT_DECL", "CLASS_DECL", "CLASS_TEMPLATE")


def build_ir_clang(path: pathlib.Path, ci,
                   cc_path: pathlib.Path | None) -> FileIR:
    index = ci.Index.create()
    tu = index.parse(str(path), args=_compile_args(ci, cc_path, path))
    text = path.read_text(encoding="utf-8")
    lines = text.splitlines()
    functions: list[Function] = []
    records: list[Record] = []

    def toks(cursor) -> list[Tok]:
        return [Tok(t.spelling, t.location.line)
                for t in cursor.get_tokens()]

    def walk(cursor):
        for child in cursor.get_children():
            loc = child.location
            if loc.file is None or loc.file.name != str(path):
                # Still descend: namespaces spanning includes etc.
                if child.kind.name in ("NAMESPACE", "TRANSLATION_UNIT"):
                    walk(child)
                continue
            kind = child.kind.name
            if kind in _FN_KINDS and child.is_definition():
                body = toks(child)
                # Trim to the braces so parameters do not look like locals.
                opens = [i for i, t in enumerate(body) if t.text == "{"]
                if opens:
                    body = body[opens[0] + 1:]
                functions.append(Function(child.spelling, loc.line, tuple(body)))
            elif kind in _REC_KINDS and child.is_definition():
                body = toks(child)
                opens = [i for i, t in enumerate(body) if t.text == "{"]
                inner = body[opens[0] + 1:-1] if opens else []
                records.append(Record(child.spelling, loc.line,
                                      tuple(_parse_members(inner))))
                walk(child)  # nested records and methods
            else:
                walk(child)

    walk(tu.cursor)
    return FileIR(path, _rel(path), tuple(tokenize(text)), tuple(records),
                  tuple(functions), scan_waivers(lines))


# ---- rules ------------------------------------------------------------------

IDENT = re.compile(r"[A-Za-z_]\w*\Z")

#: Tokens that may directly precede a unary `*` (deref) rather than a
#: binary `*` (multiply).
_DEREF_PRECEDERS = {"(", "=", ",", "return", "{", ";", "&&", "||", "!",
                    "==", "!=", "<", ">", "<=", ">=", "+", "-", "[", ":",
                    "?", "co_return"}

_CHECK_MACROS = {"if", "while", "PNR_REQUIRE", "PNR_ASSERT", "PNR_CHECK"}


def _is_checked_use(tokens: list[Tok], i: int) -> bool:
    """tokens[i] is an optional-holding var: does this use test it?"""
    prev = tokens[i - 1].text if i > 0 else ""
    nxt = tokens[i + 1].text if i + 1 < len(tokens) else ""
    nxt2 = tokens[i + 2].text if i + 2 < len(tokens) else ""
    if prev == "!":
        return True
    if nxt in ("==", "!="):
        return True
    if nxt == "." and nxt2 in ("has_value", "value_or"):
        return True
    if nxt in ("&&", "||", "?"):
        return True
    if prev == "(" and i >= 2 and tokens[i - 2].text in _CHECK_MACROS \
            and nxt in (")", "&&", "||"):
        return True
    return False


def rule_unchecked_tryreader(ir: FileIR) -> list[Finding]:
    findings: list[Finding] = []
    for fn in ir.functions:
        toks = list(fn.tokens)
        readers: set[str] = set()
        # TryReader declarations (locals and reference parameters are both
        # introduced as `TryReader [&] name`; parameters live in the token
        # stream of call sites inside the body only for locals, so also
        # accept any `name.get<` where name was seen as a reader).
        for i, t in enumerate(toks):
            if t.text == "TryReader":
                j = i + 1
                while j < len(toks) and toks[j].text in ("&", "&&", "*",
                                                         "const"):
                    j += 1
                if j < len(toks) and IDENT.match(toks[j].text):
                    readers.add(toks[j].text)
        pending: dict[str, int] = {}  # optional var -> decl line
        checked: set[str] = set()
        i = 0
        while i < len(toks):
            t = toks[i]
            # Direct deref of a fresh reader call: `*r.get<T>()`.
            if (t.text == "*" and i + 2 < len(toks)
                    and toks[i + 1].text in readers
                    and toks[i + 2].text == "."
                    and (i == 0
                         or toks[i - 1].text in _DEREF_PRECEDERS)):
                findings.append(Finding(
                    ir.rel, t.line, "unchecked-tryreader",
                    "result of a TryReader accessor dereferenced directly; "
                    "bind it and test for nullopt first"))
                i += 3
                continue
            # New optional-producing declaration:
            #   [const] auto NAME = r.get<...>(   or   NAME = helper(..r..)
            if (IDENT.match(t.text) and i + 1 < len(toks)
                    and toks[i + 1].text == "="
                    and i >= 1 and toks[i - 1].text in ("auto", "&")
                    or (IDENT.match(t.text) and i + 1 < len(toks)
                        and toks[i + 1].text == "=" and i >= 2
                        and toks[i - 1].text == ">"  # optional<T> name =
                        )):
                rhs_reads_reader = _rhs_uses_reader(toks, i + 2, readers)
                if rhs_reads_reader:
                    pending[t.text] = t.line
                    checked.discard(t.text)
            name = t.text
            if name in pending:
                prev = toks[i - 1].text if i > 0 else ""
                nxt = toks[i + 1].text if i + 1 < len(toks) else ""
                deref = (nxt == "->"
                         or (prev == "*" and (i < 2 or toks[i - 2].text
                                              in _DEREF_PRECEDERS)))
                if deref and name not in checked:
                    findings.append(Finding(
                        ir.rel, t.line, "unchecked-tryreader",
                        f"optional '{name}' from a TryReader is "
                        "dereferenced before any nullopt check"))
                    checked.add(name)  # report once per variable
                elif _is_checked_use(toks, i):
                    checked.add(name)
            i += 1
    return findings


def _rhs_uses_reader(toks: list[Tok], start: int, readers: set[str]) -> bool:
    """True when the initializer starting at `start` calls into a reader:
    `r.get<...>(...)` or `helper(r, ...)` up to the terminating `;`."""
    depth = 0
    j = start
    while j < len(toks):
        t = toks[j].text
        if t == ";" and depth == 0:
            return False
        if t in ("(", "[", "{"):
            depth += 1
        elif t in (")", "]", "}"):
            depth -= 1
        elif t in readers:
            nxt = toks[j + 1].text if j + 1 < len(toks) else ""
            if nxt == "." or (depth > 0 and nxt in (",", ")")):
                return True
        j += 1
    return False


_MUTEX_TYPES = {("std", "::", "mutex"): "raw",
                ("util", "::", "Mutex"): "annotated",
                ("Mutex",): "annotated"}


def _member_mutex_kind(member: Member) -> str | None:
    texts = [t.text for t in member.tokens]
    for pattern, kind in _MUTEX_TYPES.items():
        for i in range(len(texts) - len(pattern) + 1):
            if tuple(texts[i:i + len(pattern)]) == pattern:
                nxt = texts[i + len(pattern)] if i + len(pattern) < len(
                    texts) else ""
                if nxt in ("&", "&&", "*"):
                    return None  # reference/pointer: not an owned mutex
                return kind
    return None


def _guard_targets(member: Member) -> set[str]:
    targets: set[str] = set()
    texts = [t.text for t in member.tokens]
    for i, t in enumerate(texts):
        if t in ("PNR_GUARDED_BY", "PNR_PT_GUARDED_BY") \
                and i + 2 < len(texts) and texts[i + 1] == "(":
            targets.add(texts[i + 2])
    return targets


def rule_unguarded_mutex_member(ir: FileIR) -> list[Finding]:
    findings: list[Finding] = []
    for record in ir.records:
        guarded_by: set[str] = set()
        for member in record.members:
            guarded_by |= _guard_targets(member)
        for member in record.members:
            kind = _member_mutex_kind(member)
            if kind == "raw":
                findings.append(Finding(
                    ir.rel, member.line, "unguarded-mutex-member",
                    f"'{record.name}::{member.name}' is a raw std::mutex, "
                    "which cannot carry thread-safety annotations; use "
                    "util::Mutex (util/mutex.hpp)"))
            elif kind == "annotated" and member.name not in guarded_by:
                findings.append(Finding(
                    ir.rel, member.line, "unguarded-mutex-member",
                    f"mutex '{record.name}::{member.name}' guards no "
                    "sibling field — annotate the data it protects with "
                    f"PNR_GUARDED_BY({member.name}) or waive with a "
                    "justification"))
    return findings


def rule_ref_capture_in_submit(ir: FileIR) -> list[Finding]:
    findings: list[Finding] = []
    toks = ir.tokens
    for i, t in enumerate(toks):
        if t.text != "submit":
            continue
        if i + 2 >= len(toks) or toks[i + 1].text != "(" \
                or toks[i + 2].text != "[":
            continue
        j = i + 3
        bad = None
        while j < len(toks) and toks[j].text != "]":
            if toks[j].text in ("&", "&&"):
                nxt = toks[j + 1].text if j + 1 < len(toks) else "]"
                bad = "&" + (nxt if IDENT.match(nxt) else "")
                break
            j += 1
        if bad:
            findings.append(Finding(
                ir.rel, toks[i + 2].line, "ref-capture-in-submit",
                f"detached-task lambda captures by reference ([{bad}...]); "
                "the task outlives the enqueuing scope — capture by value "
                "(or `this` and touch only lock-guarded/atomic state)"))
    return findings


def run_rules(ir: FileIR) -> list[Finding]:
    findings = (rule_unchecked_tryreader(ir)
                + rule_unguarded_mutex_member(ir)
                + rule_ref_capture_in_submit(ir))
    kept = []
    for f in findings:
        waived = (ir.waivers.get(f.line, set())
                  | ir.waivers.get(f.line - 1, set()))
        if f.rule in waived or "*" in waived:
            continue
        kept.append(f)
    return kept


# ---- driver -----------------------------------------------------------------


def _rel(path: pathlib.Path) -> str:
    try:
        return str(path.relative_to(ROOT))
    except ValueError:
        return str(path)


def analyze_file(path: pathlib.Path, ci, cc_path) -> list[Finding]:
    if ci is not None:
        ir = build_ir_clang(path, ci, cc_path)
    else:
        ir = build_ir_textual(path)
    return run_rules(ir)


def main(argv: list[str]) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("files", nargs="*", help="files to analyze "
                    "(default: all of src/)")
    ap.add_argument("--compile-commands", type=pathlib.Path, default=None,
                    help="path to compile_commands.json (libclang frontend)")
    ap.add_argument("--frontend", choices=("auto", "clang", "textual"),
                    default="auto")
    args = ap.parse_args(argv)

    ci = None
    if args.frontend in ("auto", "clang"):
        ci = load_libclang()
        if ci is None and args.frontend == "clang":
            print("analyze: libclang requested but not available", file=sys.stderr)
            return 2
    if args.frontend == "textual":
        ci = None

    if args.files:
        files = [pathlib.Path(f).resolve() for f in args.files]
    else:
        files = sorted(p for p in (ROOT / "src").rglob("*")
                       if p.suffix in EXTS)

    cc = args.compile_commands
    if cc is None and (ROOT / "build" / "compile_commands.json").exists():
        cc = ROOT / "build" / "compile_commands.json"

    all_findings: list[Finding] = []
    for path in files:
        try:
            all_findings.extend(analyze_file(path, ci, cc))
        except UnicodeDecodeError:
            all_findings.append(Finding(_rel(path), 1, "encoding",
                                        "not valid UTF-8"))
    for f in all_findings:
        print(f"{f.rel}:{f.line}: {f.rule}: {f.message}")
    frontend = "clang" if ci is not None else "textual"
    print(f"analyze: {len(files)} files ({frontend} frontend), "
          f"{len(all_findings)} finding(s)")
    return 1 if all_findings else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
