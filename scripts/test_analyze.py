#!/usr/bin/env python3
"""Self-checks for scripts/analyze.py: every rule must fire on a seeded
negative snippet and stay quiet on the matching clean version, and waiver
comments must suppress exactly the named rule. The suite runs once per
available frontend — always the textual fallback, plus the libclang
frontend when python3-clang can load a libclang (the CI clang-analysis leg
proves that path; GCC-only dev boxes prove the fallback).

    python3 scripts/test_analyze.py
"""

import os
import subprocess
import sys
import tempfile

SCRIPTS = os.path.dirname(os.path.abspath(__file__))
SCRIPT = os.path.join(SCRIPTS, "analyze.py")

# Each snippet is a standalone translation unit: the libclang frontend
# really parses them, so they must be valid C++ on their own.
PRELUDE = """\
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <functional>

#define PNR_GUARDED_BY(x)
#define PNR_PT_GUARDED_BY(x)
namespace util { using Mutex = std::mutex; }
namespace par {
struct TryReader {
  explicit TryReader(int) {}
  template <typename T> std::optional<T> get() { return T{}; }
};
}
"""

UNCHECKED_DEREF = PRELUDE + """
std::uint32_t broken(int payload) {
  par::TryReader r(payload);
  const auto id = r.get<std::uint32_t>();
  return *id;  // seeded bug: no nullopt check
}
"""

CHECKED_DEREF = PRELUDE + """
std::uint32_t fine(int payload) {
  par::TryReader r(payload);
  const auto id = r.get<std::uint32_t>();
  if (!id) return 0;
  return *id;
}
"""

DIRECT_DEREF = PRELUDE + """
std::uint32_t broken(int payload) {
  par::TryReader r(payload);
  return *r.get<std::uint32_t>();  // seeded bug: deref of the temporary
}
"""

HELPER_DEREF = PRELUDE + """
std::optional<int> decode_thing(par::TryReader& r) { return r.get<int>(); }
int broken(int payload) {
  par::TryReader r(payload);
  const auto thing = decode_thing(r);
  return thing->operator int();  // seeded bug: -> before any check
}
"""

ARROW_CHECKED = PRELUDE + """
std::optional<int> decode_thing(par::TryReader& r) { return r.get<int>(); }
int fine(int payload) {
  par::TryReader r(payload);
  const auto thing = decode_thing(r);
  if (!thing) return 0;
  return *thing;
}
"""

RAW_MUTEX_MEMBER = PRELUDE + """
struct Queue {
  std::mutex mutex;  // seeded bug: raw std::mutex member
  std::deque<int> items PNR_GUARDED_BY(mutex);
};
"""

UNGUARDED_MUTEX = PRELUDE + """
struct Queue {
  util::Mutex mutex;  // seeded bug: guards no sibling
  std::deque<int> items;
};
"""

GUARDED_MUTEX = PRELUDE + """
struct Queue {
  util::Mutex mutex;
  std::deque<int> items PNR_GUARDED_BY(mutex);
};
"""

WAIVED_MUTEX = PRELUDE + """
struct Rendezvous {
  // The guarded condition lives behind other locks.
  // pnr-analyze: allow(unguarded-mutex-member)
  util::Mutex mutex;
};
"""

WAIVER_WRONG_RULE = PRELUDE + """
struct Rendezvous {
  // pnr-analyze: allow(ref-capture-in-submit)
  util::Mutex mutex;  // waiver names another rule: must still fire
};
"""

REF_CAPTURE = PRELUDE + """
struct Pool { void submit(std::function<void()>) {} };
void broken(Pool& pool) {
  int local = 3;
  pool.submit([&local] { (void)local; });  // seeded bug: dangling capture
}
"""

DEFAULT_REF_CAPTURE = PRELUDE + """
struct Pool { void submit(std::function<void()>) {} };
void broken(Pool& pool) {
  int local = 3;
  pool.submit([&] { (void)local; });  // seeded bug: default ref capture
}
"""

VALUE_CAPTURE = PRELUDE + """
struct Pool { void submit(std::function<void()>) {} };
struct Server {
  Pool pool;
  void kick(int s) { pool.submit([this, s] { (void)s; (void)this; }); }
};
"""

CASES = [
    # (name, source, rule expected to fire or None)
    ("unchecked deref fires", UNCHECKED_DEREF, "unchecked-tryreader"),
    ("checked deref is clean", CHECKED_DEREF, None),
    ("direct temporary deref fires", DIRECT_DEREF, "unchecked-tryreader"),
    ("helper-returned optional -> fires", HELPER_DEREF,
     "unchecked-tryreader"),
    ("helper-returned optional checked is clean", ARROW_CHECKED, None),
    ("raw std::mutex member fires", RAW_MUTEX_MEMBER,
     "unguarded-mutex-member"),
    ("mutex guarding nothing fires", UNGUARDED_MUTEX,
     "unguarded-mutex-member"),
    ("guarded mutex is clean", GUARDED_MUTEX, None),
    ("waiver comment suppresses", WAIVED_MUTEX, None),
    ("waiver for another rule does not suppress", WAIVER_WRONG_RULE,
     "unguarded-mutex-member"),
    ("named ref capture in submit fires", REF_CAPTURE,
     "ref-capture-in-submit"),
    ("default ref capture in submit fires", DEFAULT_REF_CAPTURE,
     "ref-capture-in-submit"),
    ("value/this capture is clean", VALUE_CAPTURE, None),
]


def run_analyze(source: str, frontend: str):
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "snippet.cpp")
        with open(path, "w") as f:
            f.write(source)
        return subprocess.run(
            [sys.executable, SCRIPT, "--frontend", frontend, path],
            capture_output=True, text=True)


def check(name, ok, detail=""):
    if not ok:
        print(f"FAIL: {name}\n{detail}")
        return 1
    print(f"ok: {name}")
    return 0


def clang_available() -> bool:
    sys.path.insert(0, SCRIPTS)
    import analyze
    return analyze.load_libclang() is not None


def run_suite(frontend: str) -> int:
    failures = 0
    for name, source, rule in CASES:
        r = run_analyze(source, frontend)
        label = f"[{frontend}] {name}"
        if rule is None:
            failures += check(label, r.returncode == 0,
                              r.stdout + r.stderr)
        else:
            failures += check(
                label, r.returncode == 1 and rule in r.stdout,
                r.stdout + r.stderr)
    return failures


def main():
    failures = run_suite("textual")

    if clang_available():
        failures += run_suite("clang")
    elif os.environ.get("PNR_REQUIRE_CLANG"):
        print("FAIL: PNR_REQUIRE_CLANG is set but libclang is unavailable")
        failures += 1
    else:
        print("note: libclang unavailable — clang frontend suite skipped "
              "(CI's clang-analysis leg runs it)")

    # The live tree must be clean: a rule that fires on checked-in code is
    # either a real bug (fix it) or a bad rule (fix that).
    r = subprocess.run([sys.executable, SCRIPT], capture_output=True,
                       text=True)
    failures += check("live src/ tree is clean", r.returncode == 0,
                      r.stdout + r.stderr)

    if failures:
        print(f"{failures} analyze check(s) failed")
        return 1
    print("all analyze checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
