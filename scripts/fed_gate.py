#!/usr/bin/env python3
"""Gate a freshly-run BENCH_federation.json (schema pnr.bench_federation.v1).

    python3 scripts/fed_gate.py CURRENT.json

One hard check: every federated run must be bitwise-equivalent to its
fed-free single-process reference — the per-run "equivalent" flag and the
document-level "equivalent" flag must all be true, and each run's
trajectory_fp string must literally equal its reference_fp. There is no
tolerance and no baseline diff: the federation either reproduces the
single-process pared::Session trajectory exactly or the gate fails.

A secondary sanity check rejects degenerate runs (zero rounds, empty
sweep, missing workloads) so a benchmark that silently did nothing cannot
pass. Exit 0 = pass, 1 = gate tripped, 2 = bad input.
"""

import json
import sys


def load(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"{path}: {e}")
    if doc.get("schema") != "pnr.bench_federation.v1":
        sys.exit(f"{path}: unexpected schema {doc.get('schema')!r}")
    return doc


def main():
    if len(sys.argv) != 2:
        sys.exit(__doc__.strip().splitlines()[2].strip())
    path = sys.argv[1]
    doc = load(path)

    workloads = doc.get("workloads", [])
    if not workloads:
        sys.exit(f"{path}: no workloads")

    failed = 0
    total = 0
    for wl in workloads:
        kind = wl.get("kind", "?")
        runs = wl.get("runs", [])
        if not runs:
            sys.exit(f"{path}: workload {kind!r} has no runs")
        for run in runs:
            total += 1
            shards = run.get("shards", "?")
            ref = run.get("reference_fp", "")
            got = run.get("trajectory_fp", "")
            rounds = int(run.get("rounds", 0))
            equivalent = bool(run.get("equivalent", False))
            ok = equivalent and ref and ref == got and rounds > 0
            mark = "ok " if ok else "FAIL"
            print(f"  {mark} {kind:<12} shards={shards:>2} rounds={rounds:>3} "
                  f"reference={ref} trajectory={got}")
            if not ok:
                failed += 1

    if not doc.get("equivalent", False):
        print("FAIL: document-level equivalent flag is false",
              file=sys.stderr)
        failed += 1

    if failed:
        print(f"FAIL: {failed} federated run(s) diverged from the "
              f"single-process session", file=sys.stderr)
        return 1
    print(f"fed gate: {total} runs, all bitwise-equivalent")
    return 0


if __name__ == "__main__":
    sys.exit(main())
