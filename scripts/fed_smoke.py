#!/usr/bin/env python3
"""Multi-daemon federation smoke test (docs/FEDERATION.md).

    python3 scripts/fed_smoke.py --build=build [--shards=2] [--tcp]

Launches N real pnr_serve daemon processes — Unix-domain sockets by
default, loopback TCP with --tcp (each daemon binds --tcp=0 and the
kernel-chosen port is parsed from the stable "port=N" token on its
"listening" line) — then runs the pnr_fed coordinator against them with
--shutdown. The test passes when the coordinator exits 0, prints a final
"trajectory_fp=" line, and every daemon exits 0 after the coordinated
shutdown (sessions closed before daemons stop: the graceful teardown
ordering). Any daemon needing SIGKILL, a nonzero exit, or a missing
trajectory line fails the smoke.

Run once with --tcp and once without in CI to cover both transports.
Exit 0 = pass, 1 = fail, 2 = bad usage / missing binaries.
"""

import argparse
import os
import re
import subprocess
import sys
import tempfile
import time


def wait_for(predicate, timeout_s, what):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.05)
    sys.exit(f"timed out waiting for {what}")


def parse_port(stderr_path):
    """The daemon prints 'pnr_serve: listening on HOST port=N' once bound."""
    try:
        with open(stderr_path) as f:
            match = re.search(r"port=(\d+)", f.read())
            return int(match.group(1)) if match else None
    except OSError:
        return None


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--build", default="build",
                        help="CMake build directory")
    parser.add_argument("--shards", type=int, default=2,
                        help="daemon count (2-4)")
    parser.add_argument("--tcp", action="store_true",
                        help="use loopback TCP instead of Unix sockets")
    parser.add_argument("--steps", type=int, default=6)
    parser.add_argument("--grid-n", type=int, default=12)
    args = parser.parse_args()
    if not 2 <= args.shards <= 4:
        sys.exit("--shards must be 2-4")

    serve = os.path.join(args.build, "examples", "pnr_serve")
    fed = os.path.join(args.build, "examples", "pnr_fed")
    for binary in (serve, fed):
        if not os.access(binary, os.X_OK):
            sys.exit(f"missing binary {binary} (build the repo first)")

    daemons = []
    status = 1
    with tempfile.TemporaryDirectory(prefix="pnr_fed_smoke.") as tmp:
        try:
            targets = []
            for i in range(args.shards):
                log = open(os.path.join(tmp, f"daemon{i}.log"), "w+")
                if args.tcp:
                    cmd = [serve, "--tcp=0", "--host=127.0.0.1"]
                else:
                    sock = os.path.join(tmp, f"shard{i}.sock")
                    cmd = [serve, f"--socket={sock}"]
                    targets.append(sock)
                proc = subprocess.Popen(cmd, stdout=log, stderr=log)
                daemons.append((proc, log))

            if args.tcp:
                for i, (proc, log) in enumerate(daemons):
                    wait_for(lambda: parse_port(log.name) is not None, 10,
                             f"daemon {i} to print its port")
                    targets.append(f"127.0.0.1:{parse_port(log.name)}")
            else:
                for sock in targets:
                    wait_for(lambda s=sock: os.path.exists(s), 10,
                             f"socket {sock}")

            flag = ("--endpoints=" if args.tcp else "--sockets=") \
                + ",".join(targets)
            cmd = [fed, flag, "--kind=transient2d",
                   f"--steps={args.steps}", f"--grid-n={args.grid_n}",
                   "--connect-retry-ms=5000", "--shutdown"]
            print("+", " ".join(cmd))
            result = subprocess.run(cmd, capture_output=True, text=True,
                                    timeout=120)
            sys.stdout.write(result.stdout)
            sys.stderr.write(result.stderr)
            if result.returncode != 0:
                print(f"FAIL: pnr_fed exited {result.returncode}",
                      file=sys.stderr)
                return 1
            if "trajectory_fp=" not in result.stdout:
                print("FAIL: no trajectory_fp line in coordinator output",
                      file=sys.stderr)
                return 1

            # --shutdown stopped the daemons; they must exit 0 on their own.
            for i, (proc, _log) in enumerate(daemons):
                try:
                    code = proc.wait(timeout=15)
                except subprocess.TimeoutExpired:
                    print(f"FAIL: daemon {i} did not exit after shutdown",
                          file=sys.stderr)
                    return 1
                if code != 0:
                    print(f"FAIL: daemon {i} exited {code}", file=sys.stderr)
                    return 1
            fp = re.search(r"trajectory_fp=([0-9a-f]+)", result.stdout)
            print(f"fed smoke: {args.shards} daemons "
                  f"({'tcp' if args.tcp else 'unix'}), trajectory_fp="
                  f"{fp.group(1)}")
            status = 0
        finally:
            for proc, log in daemons:
                if proc.poll() is None:
                    proc.kill()
                    proc.wait()
                log.close()
    return status


if __name__ == "__main__":
    sys.exit(main())
