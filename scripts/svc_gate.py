#!/usr/bin/env python3
"""Gate a freshly-run BENCH_svc.json (schema pnr.bench_svc.v2) in CI.

    python3 scripts/svc_gate.py BASELINE.json CURRENT.json [--fail-under=PCT]

Two checks, in severity order:

  1. Determinism (hard): CURRENT's "deterministic" flag must be true — the
     benchmark sets it false (and exits 2 itself) when the per-connection
     reply-stream fingerprints differ across shard counts, i.e. the sharded
     server changed reply bytes somewhere.
  2. Serial throughput tripwire (coarse): the shards=0 sweep point's
     requests_per_second must not drop more than PCT percent (default 60)
     below BASELINE's. The committed baseline was recorded on a different
     machine, so the bound is deliberately coarse: only an algorithmic
     regression on the serial path — not runner noise — can trip it.

The cross-shard speedups are informational (runner-dependent) and are
printed, not gated. Exit 0 = pass, 1 = gate tripped, 2 = bad input.
"""

import argparse
import json
import sys


def load(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"{path}: {e}")
    schema = doc.get("schema", "")
    if not schema.startswith("pnr.bench_svc."):
        sys.exit(f"{path}: unexpected schema {schema!r}")
    return doc


def serial_rate(doc, path):
    for point in doc.get("sweep", []):
        if point.get("shards") == 0:
            return float(point.get("requests_per_second", 0.0))
    sys.exit(f"{path}: no shards=0 sweep point")


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--fail-under", type=float, default=60.0,
                        help="max tolerated serial req/s drop, percent")
    args = parser.parse_args()

    baseline = load(args.baseline)
    current = load(args.current)

    if current.get("schema") != "pnr.bench_svc.v2":
        sys.exit(f"{args.current}: expected schema pnr.bench_svc.v2")
    if not current.get("deterministic", False):
        print("FAIL: reply-stream fingerprints differ across shard counts",
              file=sys.stderr)
        return 1

    for point in current.get("sweep", []):
        print(f"  shards={point['shards']:>2}  "
              f"{point['requests_per_second']:>10.0f} req/s  "
              f"fingerprint {point.get('fingerprint', '?')}")

    # The baseline may predate the v2 sweep (v1 has no sweep array): then
    # there is nothing to diff and determinism alone gates.
    if baseline.get("schema") == "pnr.bench_svc.v2":
        old = serial_rate(baseline, args.baseline)
        new = serial_rate(current, args.current)
        change = 100.0 * (new - old) / old if old > 0 else 0.0
        print(f"serial throughput: {old:.0f} -> {new:.0f} req/s "
              f"({change:+.1f}%)")
        if old > 0 and new < old * (1.0 - args.fail_under / 100.0):
            print(f"FAIL: serial req/s dropped more than "
                  f"{args.fail_under:.0f}% below baseline", file=sys.stderr)
            return 1
    else:
        print("baseline has no sweep (pre-v2); throughput tripwire skipped")

    print("svc gate: OK (deterministic, serial throughput within bound)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
