#!/usr/bin/env python3
"""Unit checks for scripts/bench_diff.py, exercised in CI before the real
tripwire runs: the --fail-phase gate must fire on regressions, stay quiet
when times hold, and refuse to run (clear error, exit 2) when the named
phase is absent from either trajectory — a renamed span must not silently
disarm the gate.

    python3 scripts/test_bench_diff.py
"""

import json
import os
import subprocess
import sys
import tempfile

SCRIPT = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                      "bench_diff.py")


def trajectory(phase_seconds):
    return {
        "schema": "pnr.bench_pipeline.v1",
        "binary": "bench_pipeline_e2e",
        "mode": "quick",
        "procs": 8,
        "workloads": [{
            "name": "corner2d",
            "total_seconds": sum(phase_seconds.values()),
            "cut_final": 100,
            "elements_final": 1000,
            "migration_fraction_mean": 0.1,
            "migration_fraction_max": 0.2,
            "peak_rss_bytes": 1 << 20,
            "phases": [{"path": p, "calls": 1, "seconds": s}
                       for p, s in phase_seconds.items()],
            "counters": {},
        }],
        "total_seconds": sum(phase_seconds.values()),
    }


def run_diff(before, after, *extra):
    with tempfile.TemporaryDirectory() as tmp:
        b = os.path.join(tmp, "before.json")
        a = os.path.join(tmp, "after.json")
        with open(b, "w") as f:
            json.dump(before, f)
        with open(a, "w") as f:
            json.dump(after, f)
        return subprocess.run(
            [sys.executable, SCRIPT, b, a, *extra],
            capture_output=True, text=True)


def check(name, ok, detail=""):
    if not ok:
        print(f"FAIL: {name}\n{detail}")
        return 1
    print(f"ok: {name}")
    return 0


def main():
    base = trajectory({"session.step": 1.0, "session.step/kl.refine": 0.4})
    slow = trajectory({"session.step": 1.0, "session.step/kl.refine": 1.4})
    renamed = trajectory({"session.step": 1.0, "session.step/kl.sweep": 0.4})

    failures = 0

    r = run_diff(base, slow, "--fail-over=150", "--fail-phase=kl.refine")
    failures += check("regression above --fail-over exits 1",
                      r.returncode == 1, r.stdout + r.stderr)

    r = run_diff(base, base, "--fail-over=150", "--fail-phase=kl.refine")
    failures += check("steady phase passes", r.returncode == 0,
                      r.stdout + r.stderr)

    r = run_diff(base, renamed, "--fail-over=150", "--fail-phase=kl.refine")
    failures += check("phase missing from after exits 2 with a clear error",
                      r.returncode == 2 and "matched no phase" in r.stderr
                      and "after" in r.stderr, r.stdout + r.stderr)

    r = run_diff(renamed, renamed, "--fail-over=150", "--fail-phase=kl.refine")
    failures += check("phase missing from both sides exits 2",
                      r.returncode == 2 and "matched no phase" in r.stderr,
                      r.stdout + r.stderr)

    r = run_diff(base, renamed, "--fail-phase=kl.refine")
    failures += check("missing phase still errors without --fail-over",
                      r.returncode == 2, r.stdout + r.stderr)

    r = run_diff(base, slow)
    failures += check("no gate flags: informational diff exits 0",
                      r.returncode == 0, r.stdout + r.stderr)

    r = run_diff(base, renamed, "--list-phases")
    failures += check(
        "--list-phases prints span names per file",
        r.returncode == 0 and "kl.refine" in r.stdout
        and "kl.sweep" in r.stdout and "2 distinct phases" in r.stdout,
        r.stdout + r.stderr)

    with tempfile.TemporaryDirectory() as tmp:
        single = os.path.join(tmp, "single.json")
        with open(single, "w") as f:
            json.dump(base, f)
        r = subprocess.run([sys.executable, SCRIPT, single, "--list-phases"],
                           capture_output=True, text=True)
        failures += check(
            "--list-phases works on a single file",
            r.returncode == 0 and "session.step/kl.refine" in r.stdout,
            r.stdout + r.stderr)
        r = subprocess.run([sys.executable, SCRIPT, single],
                           capture_output=True, text=True)
        failures += check(
            "a single file without --list-phases is a usage error",
            r.returncode == 2 and "required" in r.stderr,
            r.stdout + r.stderr)

    if failures:
        print(f"{failures} bench_diff check(s) failed")
        return 1
    print("all bench_diff checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
