#!/usr/bin/env python3
"""Gate a freshly-run BENCH_engines.json (schema pnr.bench_engines.v1) in CI.

    python3 scripts/engine_gate.py BASELINE.json CURRENT.json
        [--cut-factor=2.5] [--migrate-factor=3.0]
        [--min-sfc-speedup=5.0] [--max-imbalance=0.15]

Checks, in severity order:

  1. Determinism (hard): CURRENT's "deterministic" flag must be true — the
     benchmark sets it false (and exits 2 itself) when any engine's
     assignment-trajectory fingerprint differs across exec thread counts.
  2. Quality bounds vs the MLKL baseline engine, per workload (hard, but
     intra-run so machine-independent): every engine's mean cut must stay
     within --cut-factor of MLKL's, its total migration within
     --migrate-factor of MLKL's, and its worst imbalance under
     --max-imbalance. The factors are deliberately loose: the geometric
     engines trade cut/migration quality for planning speed, and only a
     real regression — a broken curve order, a lost remap — can trip them.
  3. SFC planning speed (hard, intra-run): both SFC engines must plan at
     least --min-sfc-speedup times faster than MLKL at the first sweep
     width. Near-free planning is the entire reason the SFC backends exist.

The per-engine fingerprints are diffed against BASELINE when both runs used
the same mode; a mismatch is printed as information (compilers may contract
floating point differently across machines), never gated. Exit 0 = pass,
1 = gate tripped, 2 = bad input.
"""

import argparse
import json
import sys


def load(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"{path}: {e}")
    schema = doc.get("schema", "")
    if not schema.startswith("pnr.bench_engines."):
        sys.exit(f"{path}: unexpected schema {schema!r}")
    return doc


def engines_of(workload):
    return {e.get("engine", "?"): e for e in workload.get("engines", [])}


def first_width_seconds(entry):
    cells = entry.get("cells", [])
    if not cells:
        return 0.0
    return float(cells[0].get("planning_seconds", 0.0))


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--cut-factor", type=float, default=2.5,
                        help="max mean cut relative to MLKL")
    parser.add_argument("--migrate-factor", type=float, default=3.0,
                        help="max total migration relative to MLKL")
    parser.add_argument("--min-sfc-speedup", type=float, default=5.0,
                        help="min SFC planning speedup over MLKL")
    parser.add_argument("--max-imbalance", type=float, default=0.15,
                        help="max per-engine worst-step imbalance")
    args = parser.parse_args()

    baseline = load(args.baseline)
    current = load(args.current)

    if current.get("schema") != "pnr.bench_engines.v1":
        sys.exit(f"{args.current}: expected schema pnr.bench_engines.v1")
    failed = False
    if not current.get("deterministic", False):
        print("FAIL: engine fingerprints differ across thread counts",
              file=sys.stderr)
        return 1

    baseline_workloads = {w.get("name"): w
                          for w in baseline.get("workloads", [])}
    same_mode = baseline.get("mode") == current.get("mode")

    for workload in current.get("workloads", []):
        name = workload.get("name", "?")
        engines = engines_of(workload)
        mlkl = engines.get("mlkl")
        if mlkl is None:
            print(f"FAIL: {name}: no mlkl baseline engine", file=sys.stderr)
            failed = True
            continue
        mlkl_cut = float(mlkl.get("cut_mean", 0.0))
        mlkl_migrate = float(mlkl.get("migrate_total", 0))
        mlkl_plan = first_width_seconds(mlkl)
        print(f"-- {name}")
        for engine, entry in engines.items():
            cut = float(entry.get("cut_mean", 0.0))
            migrate = float(entry.get("migrate_total", 0))
            imbalance = float(entry.get("imbalance_max", 0.0))
            plan = first_width_seconds(entry)
            speedup = mlkl_plan / plan if plan > 0 else 0.0
            print(f"  {engine:>12}  plan {plan * 1e3:8.2f} ms "
                  f"({speedup:5.1f}x mlkl)  cut {cut:8.1f}  "
                  f"migrated {migrate:10.0f}  imb {imbalance:.3f}")
            if mlkl_cut > 0 and cut > mlkl_cut * args.cut_factor:
                print(f"FAIL: {name}/{engine}: mean cut {cut:.1f} exceeds "
                      f"{args.cut_factor}x mlkl ({mlkl_cut:.1f})",
                      file=sys.stderr)
                failed = True
            if mlkl_migrate > 0 and migrate > mlkl_migrate * args.migrate_factor:
                print(f"FAIL: {name}/{engine}: migration {migrate:.0f} "
                      f"exceeds {args.migrate_factor}x mlkl "
                      f"({mlkl_migrate:.0f})", file=sys.stderr)
                failed = True
            if imbalance > args.max_imbalance:
                print(f"FAIL: {name}/{engine}: imbalance {imbalance:.3f} "
                      f"over {args.max_imbalance}", file=sys.stderr)
                failed = True
            if engine.startswith("sfc-") and speedup < args.min_sfc_speedup:
                print(f"FAIL: {name}/{engine}: planning only {speedup:.1f}x "
                      f"faster than mlkl (need "
                      f">= {args.min_sfc_speedup:.1f}x)", file=sys.stderr)
                failed = True
            if same_mode and name in baseline_workloads:
                old = engines_of(baseline_workloads[name]).get(engine, {})
                if old.get("fingerprint") not in (None,
                                                  entry.get("fingerprint")):
                    print(f"  note: {name}/{engine} fingerprint differs from "
                          f"baseline ({old.get('fingerprint')} -> "
                          f"{entry.get('fingerprint')}); informational only")

    if failed:
        return 1
    print("engine gate: OK (deterministic, quality within bounds, "
          "SFC planning fast)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
