#!/usr/bin/env bash
# Reproduce everything: build, run the test suite, regenerate every paper
# table/figure at default scale, and (optionally) at the paper's full scale.
#
#   scripts/reproduce.sh [--paper] [--asan]
#
# Outputs land in results/ (tables as .txt, mesh renderings as .svg).
set -euo pipefail
cd "$(dirname "$0")/.."

PAPER=0
ASAN=0
for arg in "$@"; do
  case "$arg" in
    --paper) PAPER=1 ;;
    --asan) ASAN=1 ;;
    *) echo "unknown option: $arg" >&2; exit 1 ;;
  esac
done

# Canonical Tier-1 invocation (see ROADMAP.md); default generator on purpose.
cmake -B build -S .
cmake --build build -j
ctest --test-dir build --output-on-failure -j

mkdir -p results
for b in build/bench/bench_*; do
  name=$(basename "$b")
  echo "== $name"
  "$b" --outdir=results | tee "results/$name.txt"
done

if [ "$PAPER" = 1 ]; then
  echo "== paper-scale runs (this takes tens of minutes)"
  build/bench/bench_fig3_quality  --paper | tee results/bench_fig3_paper.txt
  build/bench/bench_fig4_rsb_migration --paper | tee results/bench_fig4_paper.txt
  build/bench/bench_fig5_pnr_migration --paper | tee results/bench_fig5_paper.txt
  build/bench/bench_fig7_transient_quality --paper | tee results/bench_fig7_paper.txt
  build/bench/bench_fig8_transient_migration --paper | tee results/bench_fig8_paper.txt
  build/bench/bench_fig1_fig6_meshes --paper --outdir=results | tee results/bench_fig1_fig6_paper.txt
fi

if [ "$ASAN" = 1 ]; then
  cmake -B build-asan -S . -DCMAKE_BUILD_TYPE=Debug \
        -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-omit-frame-pointer"
  cmake --build build-asan -j
  ctest --test-dir build-asan --output-on-failure -j
fi

echo "done — see results/ and EXPERIMENTS.md"
