#!/usr/bin/env python3
"""Self-check for the -Wthread-safety gate: prove the analysis actually
fires on this repo's annotated lock types before trusting a clean build.

A CI leg that compiles with -Wthread-safety -Werror proves nothing if the
annotations never took effect (wrong macro guard, wrong flags, GCC
silently accepting the attributes as no-ops). This script compiles two
snippets against the real src/util/mutex.hpp with the same flags the
clang-analysis leg uses:

  * a seeded negative — a PNR_GUARDED_BY field written without its lock —
    which MUST fail to compile with a thread-safety diagnostic;
  * the locked version, which MUST compile clean.

Needs clang++; on GCC-only machines it reports a skip and exits 0 (the CI
clang-analysis leg is the enforcing run — set PNR_REQUIRE_CLANG=1 there so
a missing compiler fails loudly instead of skipping).

    python3 scripts/test_thread_safety.py
"""

import glob
import os
import shutil
import subprocess
import sys
import tempfile

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

NEGATIVE = """\
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

struct Account {
  pnr::util::Mutex mutex;
  int balance PNR_GUARDED_BY(mutex) = 0;

  void deposit(int amount) {
    balance += amount;  // seeded bug: guarded field, lock not held
  }
};
"""

POSITIVE = """\
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

struct Account {
  pnr::util::Mutex mutex;
  int balance PNR_GUARDED_BY(mutex) = 0;

  void deposit(int amount) {
    pnr::util::MutexLock lock(mutex);
    balance += amount;
  }
};
"""

FLAGS = ["-std=c++20", "-fsyntax-only", f"-I{ROOT}/src",
         "-Wthread-safety", "-Wthread-safety-beta", "-Werror"]


def find_clang():
    for name in ["clang++"] + sorted(
            (os.path.basename(p) for p in glob.glob("/usr/bin/clang++-*")),
            reverse=True):
        path = shutil.which(name)
        if path:
            return path
    return None


def compile_snippet(clang, source):
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "snippet.cpp")
        with open(path, "w") as f:
            f.write(source)
        return subprocess.run([clang, *FLAGS, path],
                              capture_output=True, text=True)


def check(name, ok, detail=""):
    if not ok:
        print(f"FAIL: {name}\n{detail}")
        return 1
    print(f"ok: {name}")
    return 0


def main():
    clang = find_clang()
    if clang is None:
        if os.environ.get("PNR_REQUIRE_CLANG"):
            print("FAIL: PNR_REQUIRE_CLANG is set but no clang++ was found")
            return 1
        print("note: no clang++ on this machine — thread-safety self-test "
              "skipped (the CI clang-analysis leg runs it)")
        return 0

    failures = 0
    r = compile_snippet(clang, NEGATIVE)
    failures += check(
        "unlocked write to a guarded field fails to compile",
        r.returncode != 0 and "-Wthread-safety" in r.stderr,
        r.stderr)
    r = compile_snippet(clang, POSITIVE)
    failures += check("locked write compiles clean", r.returncode == 0,
                      r.stderr)

    if failures:
        print(f"{failures} thread-safety check(s) failed")
        return 1
    print("all thread-safety checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
