#!/usr/bin/env python3
"""Diff two BENCH_pipeline.json perf trajectories (schema pnr.bench_pipeline.v1).

    python3 scripts/bench_diff.py BENCH_before.json BENCH_after.json
        [--threshold=0.05]   relative phase-time change worth printing
        [--all]              print every phase regardless of threshold
        [--fail-over=PCT]    exit 1 if any workload's total time regressed
                             by more than PCT percent
        [--fail-phase=SUBSTR]
                             apply --fail-over to the phases whose path
                             contains SUBSTR (e.g. kl.refine) instead of to
                             the workload totals
        [--list-phases]      print the span names recorded in each input
                             file (grouped per file, deduplicated across
                             workloads) and exit; the second file is
                             optional in this mode. Use it to find the
                             exact name to pass to --fail-phase.

Workloads and phases are matched by name/path; entries present on only
one side are reported as added/removed. See docs/OBSERVABILITY.md for the
schema.
"""

import argparse
import json
import sys


def load(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"{path}: {e}")
    schema = doc.get("schema", "")
    if not schema.startswith("pnr.bench_pipeline."):
        sys.exit(f"{path}: unexpected schema {schema!r}")
    return doc


def pct(old, new):
    if old == 0:
        return "     n/a" if new == 0 else "    +inf"
    return f"{100.0 * (new - old) / old:+7.1f}%"


def diff_scalar(label, old, new, fmt="{:.4g}"):
    print(f"  {label:<28} {fmt.format(old):>12} -> {fmt.format(new):>12}  {pct(old, new)}")


def diff_workload(old, new, args, phase_hits):
    diff_scalar("total_seconds", old["total_seconds"], new["total_seconds"])
    diff_scalar("cut_final", old["cut_final"], new["cut_final"], "{:d}")
    diff_scalar("elements_final", old["elements_final"], new["elements_final"], "{:d}")
    diff_scalar("migration_fraction_mean", old["migration_fraction_mean"],
                new["migration_fraction_mean"])
    diff_scalar("peak_rss_bytes", old["peak_rss_bytes"], new["peak_rss_bytes"], "{:d}")
    regression = 0.0
    if not args.fail_phase and old["total_seconds"] > 0:
        regression = (new["total_seconds"] - old["total_seconds"]) / old["total_seconds"]

    old_phases = {p["path"]: p for p in old.get("phases", [])}
    new_phases = {p["path"]: p for p in new.get("phases", [])}
    if args.fail_phase:
        phase_hits["before"] += sum(args.fail_phase in p for p in old_phases)
        phase_hits["after"] += sum(args.fail_phase in p for p in new_phases)
    rows = []
    for path in sorted(old_phases.keys() | new_phases.keys()):
        a, b = old_phases.get(path), new_phases.get(path)
        if a is None:
            rows.append((path, f"(added)      {b['seconds'] * 1e3:10.2f} ms"))
        elif b is None:
            rows.append((path, f"(removed)    {a['seconds'] * 1e3:10.2f} ms was"))
        else:
            rel = abs(b["seconds"] - a["seconds"]) / a["seconds"] if a["seconds"] else 0.0
            if args.all or rel >= args.threshold:
                rows.append((path, f"{a['seconds'] * 1e3:10.2f} -> {b['seconds'] * 1e3:10.2f} ms"
                                   f"  {pct(a['seconds'], b['seconds'])}"))
            if args.fail_phase and args.fail_phase in path and a["seconds"] > 0:
                regression = max(regression,
                                 (b["seconds"] - a["seconds"]) / a["seconds"])
    if rows:
        print("  phases (>= {:.0%} change):".format(args.threshold)
              if not args.all else "  phases:")
        for path, text in rows:
            print(f"    {path:<56} {text}")
    return regression


def list_phases(paths):
    for path in paths:
        doc = load(path)
        phases = sorted({p["path"]
                         for w in doc.get("workloads", [])
                         for p in w.get("phases", [])})
        print(f"== {path}: {len(phases)} distinct phases")
        for p in phases:
            print(f"  {p}")
    return 0


def main():
    ap = argparse.ArgumentParser(description=__doc__,
                                 formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("before")
    ap.add_argument("after", nargs="?")
    ap.add_argument("--threshold", type=float, default=0.05)
    ap.add_argument("--all", action="store_true")
    ap.add_argument("--fail-over", type=float, default=None,
                    help="exit 1 on a total-time regression above this percent")
    ap.add_argument("--fail-phase", default=None,
                    help="apply --fail-over to phases matching this substring "
                         "instead of to workload totals")
    ap.add_argument("--list-phases", action="store_true",
                    help="print the span names per input file and exit")
    args = ap.parse_args()

    if args.list_phases:
        return list_phases([p for p in (args.before, args.after) if p])
    if args.after is None:
        ap.error("the 'after' trajectory is required unless --list-phases")

    before, after = load(args.before), load(args.after)
    if before.get("mode") != after.get("mode"):
        print(f"warning: comparing mode={before.get('mode')} against "
              f"mode={after.get('mode')} — timings are not like-for-like")

    old_w = {w["name"]: w for w in before["workloads"]}
    new_w = {w["name"]: w for w in after["workloads"]}
    worst = 0.0
    phase_hits = {"before": 0, "after": 0}
    for name in sorted(old_w.keys() | new_w.keys()):
        print(f"== {name}")
        if name not in old_w:
            print("  (new workload)")
        elif name not in new_w:
            print("  (workload removed)")
        else:
            worst = max(worst, diff_workload(old_w[name], new_w[name], args,
                                             phase_hits))

    if args.fail_phase:
        # A tripwire that matches nothing would silently always pass; that is
        # exactly how a renamed span disarms a regression gate unnoticed.
        missing = [f"{args.__dict__[side]} ({side})"
                   for side in ("before", "after") if phase_hits[side] == 0]
        if missing:
            print(f"ERROR: --fail-phase='{args.fail_phase}' matched no phase "
                  f"in {' or '.join(missing)}; the regression tripwire "
                  "cannot fire. Check the span name against the trajectory "
                  "or regenerate it.", file=sys.stderr)
            return 2

    if args.fail_over is not None and worst * 100.0 > args.fail_over:
        what = (f"phase '{args.fail_phase}'" if args.fail_phase
                else "total-time")
        print(f"FAIL: worst {what} regression {worst:+.1%} exceeds "
              f"--fail-over={args.fail_over}%")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
