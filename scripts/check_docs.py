#!/usr/bin/env python3
"""Docs gate: fail CI when the documentation drifts from the tree.

    python3 scripts/check_docs.py

Three checks over every committed *.md file:

  1. Relative markdown links ([text](path), path without a scheme) must
     resolve to a committed file or directory (anchors are stripped).
  2. Repo paths quoted in backticks (`src/...`, `docs/...`, `scripts/...`,
     `tests/...`, `bench/...`, `examples/...`) must exist. Globs and
     placeholders (*, <, {) are exempt; a trailing :line is stripped.
  3. Every committed BENCH_*.json at the repo root must have its "schema"
     string documented in docs/OBSERVABILITY.md, so a bench can't change
     its output format without the schema reference following.
  4. Every committed script under scripts/ must be referenced from at
     least one *.md file outside scripts/ (by its scripts/<name> path), so
     tooling cannot be added without documenting what it is for and how to
     run it.

Run from anywhere inside the repo; paths resolve against the git root.
Exit 0 = docs consistent, 1 = stale references (each printed), 2 = cannot
inspect the repo.
"""

import json
import os
import re
import subprocess
import sys

# Backticked repo paths must start with one of these top-level dirs to be
# checked; bare words like `advance` or `threads` are never path-checked.
PATH_DIRS = ("src", "docs", "scripts", "tests", "bench", "examples")

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
CODE_RE = re.compile(r"`([^`\n]+)`")
PATH_RE = re.compile(
    r"^(?:%s)/[A-Za-z0-9_./-]+$" % "|".join(PATH_DIRS))


def git_root():
    try:
        out = subprocess.run(["git", "rev-parse", "--show-toplevel"],
                             capture_output=True, text=True, check=True)
    except (OSError, subprocess.CalledProcessError) as e:
        sys.exit(f"cannot locate git root: {e}")
    return out.stdout.strip()


def committed_files(root):
    out = subprocess.run(["git", "ls-files"], cwd=root,
                         capture_output=True, text=True, check=True)
    # Entries deleted from the worktree (a pending `git rm`) are neither
    # checkable nor valid link targets.
    return [line for line in out.stdout.splitlines()
            if line and os.path.exists(os.path.join(root, line))]


def strip_fences(text):
    """Drop fenced code blocks: their contents are examples, not claims
    about the tree (inline `backticks` are still checked)."""
    out, in_fence = [], False
    for line in text.splitlines():
        if line.lstrip().startswith("```"):
            in_fence = not in_fence
            continue
        if not in_fence:
            out.append(line)
    return "\n".join(out)


def check_markdown(root, md, files, errors):
    text = open(os.path.join(root, md), encoding="utf-8").read()
    body = strip_fences(text)
    base = os.path.dirname(md)

    for m in LINK_RE.finditer(body):
        target = m.group(1)
        if "://" in target or target.startswith(("#", "mailto:")):
            continue
        target = target.split("#", 1)[0]
        if not target:
            continue
        resolved = os.path.normpath(os.path.join(base, target))
        if resolved not in files and not os.path.isdir(
                os.path.join(root, resolved)):
            errors.append(f"{md}: broken link -> {m.group(1)}")

    for m in CODE_RE.finditer(body):
        token = m.group(1).strip()
        token = re.sub(r":\d+(?:-\d+)?$", "", token)  # src/f.cpp:123
        if any(ch in token for ch in "*<{$ "):
            continue
        if not PATH_RE.match(token):
            continue
        if token not in files and not os.path.isdir(
                os.path.join(root, token)):
            errors.append(f"{md}: stale path reference `{token}`")


def check_bench_schemas(root, files, errors):
    obs_path = "docs/OBSERVABILITY.md"
    if obs_path not in files:
        errors.append(f"{obs_path}: missing (bench schemas undocumented)")
        return
    obs = open(os.path.join(root, obs_path), encoding="utf-8").read()
    for f in files:
        if not (f.startswith("BENCH_") and f.endswith(".json")):
            continue
        try:
            with open(os.path.join(root, f), encoding="utf-8") as fh:
                schema = json.load(fh).get("schema", "")
        except (OSError, json.JSONDecodeError) as e:
            errors.append(f"{f}: unreadable bench trajectory ({e})")
            continue
        if not schema:
            errors.append(f"{f}: no \"schema\" field")
        elif schema not in obs:
            errors.append(
                f"{f}: schema {schema!r} not documented in {obs_path}")


def check_scripts_documented(root, files, errors):
    docs = [f for f in files
            if f.endswith(".md") and not f.startswith("scripts/")
            and f != "ISSUE.md"]
    corpus = "\n".join(
        open(os.path.join(root, d), encoding="utf-8").read() for d in docs)
    for f in sorted(files):
        if not f.startswith("scripts/"):
            continue
        if f not in corpus:
            errors.append(
                f"{f}: not referenced from any doc — every script needs a "
                "home in the documentation (what it checks, how to run it)")


def main():
    root = git_root()
    files = set(committed_files(root))
    errors = []
    # ISSUE.md is the transient per-session task spec: it legitimately
    # names files that do not exist yet.
    for md in sorted(f for f in files
                     if f.endswith(".md") and f != "ISSUE.md"):
        check_markdown(root, md, files, errors)
    check_bench_schemas(root, files, errors)
    check_scripts_documented(root, files, errors)
    if errors:
        for e in errors:
            print(e, file=sys.stderr)
        print(f"check_docs: {len(errors)} stale reference(s)",
              file=sys.stderr)
        return 1
    print(f"check_docs: OK ({sum(1 for f in files if f.endswith('.md'))} "
          f"markdown files checked)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
