#!/usr/bin/env python3
"""Repo-convention lint for the pnr codebase (fast first-stage CI job).

Checks every C++ file under src/, tests/, bench/ and examples/ for the
conventions the compiler cannot enforce:

  naked-assert     no <cassert>/assert(): invariants use PNR_ASSERT (compiled
                   out in Release) or PNR_REQUIRE (always on) so contract
                   failures print a location and the check level is uniform
  banned-rand      no std::rand/srand/random_shuffle: all randomness flows
                   through util::Rng so runs stay seeded and reproducible
  prof-name        PNR_PROF_SPAN / prof::count / prof::gauge_max names follow
                   the dotted lower_snake scheme ("kl.refine", "check.audits")
                   documented in docs/OBSERVABILITY.md
  include-hygiene  no parent-relative includes (#include "../..."), project
                   headers included with quotes, system headers with angle
                   brackets, and every header starts with #pragma once
  raw-thread       no std::thread/std::jthread/std::async outside src/exec/
                   (the deterministic pool runtime) and src/parallel/ (the
                   in-process MPI stand-in): shared-memory parallelism flows
                   through pnr::exec so results stay thread-count-invariant
  raw-socket       no socket/poll/fd syscalls (::socket, ::bind, ::poll,
                   ::send, <sys/socket.h>, ...) outside src/svc/: all wire
                   I/O flows through svc::Server / svc::Client so framing,
                   limits and error handling stay in one audited place

Exit status is the number of violating files (0 = clean). Pass file paths to
lint a subset; default lints the whole tree.
"""

from __future__ import annotations

import pathlib
import re
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent
DIRS = ("src", "tests", "bench", "examples")
EXTS = {".hpp", ".cpp"}

# The dotted lower_snake naming scheme for spans/counters/gauges.
PROF_NAME = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z0-9_]+)*$")
PROF_USE = re.compile(
    r'(?:PNR_PROF_SPAN|prof::count|prof::gauge_max)\s*\(\s*"([^"]*)"')
NAKED_ASSERT = re.compile(r'(?<![A-Za-z0-9_])assert\s*\(')
CASSERT = re.compile(r'#\s*include\s*<c?assert(?:\.h)?>')
BANNED_RAND = re.compile(
    r'(?<![A-Za-z0-9_])(?:std::)?(?:rand|srand|random_shuffle)\s*\(')
PARENT_INCLUDE = re.compile(r'#\s*include\s*"\.\./')
# Project include roots are whatever directories exist under src/ — derived,
# not hardcoded, so a new subsystem (exec/, svc/, ...) is covered the day it
# appears instead of silently slipping through a stale list.
SRC_SUBDIRS = sorted(p.name for p in (ROOT / "src").iterdir() if p.is_dir())
ANGLED_PROJECT = re.compile(
    r'#\s*include\s*<(?:' + "|".join(map(re.escape, SRC_SUBDIRS)) + r')/')
USING_NAMESPACE_STD = re.compile(r'using\s+namespace\s+std\s*;')
RAW_THREAD = re.compile(r'(?<![A-Za-z0-9_])std::(?:thread|jthread|async)\b')
# Only these subtrees may spawn raw threads: the pool implementation itself
# and the in-process message-passing simulator that models MPI ranks.
RAW_THREAD_ALLOWED = ("src/exec/", "src/parallel/")
# Global-scope socket/poll/fd syscalls and their headers. The `(?<!\w)::`
# anchor matches `::recv(...)` but not member calls like `Comm::recv(...)`.
RAW_SOCKET = re.compile(
    r'(?:#\s*include\s*<(?:sys/socket\.h|sys/un\.h|poll\.h|fcntl\.h|'
    r'netinet/[^>]*)>'
    r'|(?<![A-Za-z0-9_])::(?:socket|socketpair|bind|listen|accept|connect|'
    r'poll|recv|recvmsg|send|sendmsg|fcntl)\s*\()')
RAW_SOCKET_ALLOWED = ("src/svc/",)


def strip_comments_and_strings(line: str, in_block: bool) -> tuple[str, bool]:
    """Blank out string literals, // and /* */ comments (line-local
    approximation: block comments are tracked across lines, strings are not).
    """
    out = []
    i = 0
    n = len(line)
    in_string = None
    while i < n:
        c = line[i]
        if in_block:
            if line.startswith("*/", i):
                in_block = False
                i += 2
            else:
                i += 1
            continue
        if in_string:
            if c == "\\":
                i += 2
                continue
            if c == in_string:
                in_string = None
            i += 1
            continue
        if c in "\"'":
            in_string = c
            i += 1
            continue
        if line.startswith("//", i):
            break
        if line.startswith("/*", i):
            in_block = True
            i += 2
            continue
        out.append(c)
        i += 1
    return "".join(out), in_block


def lint_file(path: pathlib.Path) -> list[str]:
    try:
        rel = path.relative_to(ROOT)
    except ValueError:
        rel = path  # out-of-tree file (self-test snippets): report as given
    problems: list[str] = []
    try:
        text = path.read_text(encoding="utf-8")
    except UnicodeDecodeError:
        return [f"{rel}:1: encoding: not valid UTF-8"]

    lines = text.splitlines()
    in_block = False
    saw_pragma_once = False
    saw_directive = False
    for lineno, raw in enumerate(lines, start=1):
        code, in_block = strip_comments_and_strings(raw, in_block)

        if path.suffix == ".hpp" and not saw_directive:
            stripped = code.strip()
            if stripped.startswith("#"):
                saw_directive = True
                saw_pragma_once = re.match(r"#\s*pragma\s+once", stripped) is not None

        if CASSERT.search(code) or NAKED_ASSERT.search(code):
            problems.append(
                f"{rel}:{lineno}: naked-assert: use PNR_ASSERT / PNR_REQUIRE "
                "from util/assert.hpp")
        if BANNED_RAND.search(code):
            problems.append(
                f"{rel}:{lineno}: banned-rand: use util::Rng for seeded, "
                "reproducible randomness")
        # The quoted path is a string literal, which the stripper blanks —
        # match the raw line, gated on the stripped line really being an
        # include directive (not a commented-out one).
        if re.search(r"#\s*include", code) and PARENT_INCLUDE.search(raw):
            problems.append(
                f"{rel}:{lineno}: include-hygiene: no parent-relative "
                "includes; include from the src root")
        if ANGLED_PROJECT.search(code):
            problems.append(
                f"{rel}:{lineno}: include-hygiene: project headers are "
                'included with quotes ("graph/csr.hpp"), not angle brackets')
        if USING_NAMESPACE_STD.search(code):
            problems.append(
                f"{rel}:{lineno}: using-namespace-std: qualify std:: names")
        if (RAW_THREAD.search(code)
                and not str(rel).startswith(RAW_THREAD_ALLOWED)):
            problems.append(
                f"{rel}:{lineno}: raw-thread: std::thread/jthread/async is "
                "reserved for src/exec/ and src/parallel/; run on the "
                "pnr::exec pool to keep results deterministic")
        if (RAW_SOCKET.search(code)
                and not str(rel).startswith(RAW_SOCKET_ALLOWED)):
            problems.append(
                f"{rel}:{lineno}: raw-socket: socket/poll/fd syscalls are "
                "reserved for src/svc/; go through svc::Server and "
                "svc::Client (or the loopback helpers) instead")

        # Prof names live inside string literals, so match the raw line.
        for m in PROF_USE.finditer(raw):
            name = m.group(1)
            if not PROF_NAME.match(name):
                problems.append(
                    f"{rel}:{lineno}: prof-name: '{name}' does not match the "
                    "dotted lower_snake scheme (e.g. kl.refine)")

    if path.suffix == ".hpp" and not saw_pragma_once:
        problems.append(
            f"{rel}:1: include-hygiene: header must start with #pragma once")
    return problems


def main(argv: list[str]) -> int:
    if argv:
        files = [pathlib.Path(a).resolve() for a in argv]
    else:
        files = sorted(
            p for d in DIRS for p in (ROOT / d).rglob("*") if p.suffix in EXTS)
    all_problems: list[str] = []
    bad_files = 0
    for path in files:
        problems = lint_file(path)
        if problems:
            bad_files += 1
            all_problems.extend(problems)
    for p in all_problems:
        print(p)
    print(f"lint: {len(files)} files, {len(all_problems)} problem(s) in "
          f"{bad_files} file(s)")
    return 1 if bad_files else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
