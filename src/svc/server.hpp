#pragma once
// pnr::svc transport: a poll(2)-based event loop that speaks the framed
// wire protocol over Unix-domain stream sockets. The loop is
// single-threaded and fd-driven — parallelism lives below it, in the
// pnr::exec pool that the codec's bulk validation and the partitioners
// already run on — so request handling stays deterministic while large
// payload scans still use every core.
//
// Two ways to get clients:
//   * listen_unix(path): bind + listen for pnr_client over a filesystem
//     socket;
//   * adopt(fd): take ownership of an already-connected stream fd (one end
//     of a socketpair) — this is how the hermetic tests and bench drive a
//     real server without touching the filesystem or spawning threads.
//
// Trust grading per connection: a byte stream that breaks framing (bad
// magic, oversized declared length) is closed outright; a well-framed
// request with a bad CRC/version/op gets a typed error frame and the
// connection lives on. This file is the only place in the tree allowed to
// make raw socket/poll syscalls (scripts/lint.py, rule raw-socket).

#include <cstdint>
#include <map>
#include <string>

#include "svc/registry.hpp"

namespace pnr::svc {

struct ServerOptions {
  Limits limits;
  int max_connections = 32;
  /// Per-connection pending-reply ceiling. A client that pipelines requests
  /// with large replies but never reads them is throttled, not served: once
  /// a connection's output buffer exceeds this, the server parks further
  /// requests and stops reading from it until the backlog flushes, so an
  /// unread reply backlog cannot grow server memory without bound.
  std::size_t max_output_backlog = 128u << 20;
};

class Server {
 public:
  explicit Server(ServerOptions options = {});
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind + listen on a fresh Unix-domain socket at `path` (unlinked on
  /// destruction). False with *error set on any syscall failure.
  bool listen_unix(const std::string& path, std::string* error = nullptr);

  /// Take ownership of a connected stream fd (e.g. one end of a
  /// socketpair). The fd is switched to non-blocking.
  void adopt(int fd);

  /// One poll(2) iteration: wait up to timeout_ms (0 = don't block, -1 =
  /// forever), then service every ready fd. Returns the number of fds
  /// serviced; 0 when there is nothing left to poll.
  int poll_once(int timeout_ms);

  /// Drive poll_once until done(): a shutdown request has been served and
  /// flushed, or every connection (and the listener) is gone.
  void run();

  /// True when the loop has nothing left to do: no listener and no
  /// connections, or shutdown requested and all replies flushed.
  bool done() const;

  Registry& registry() { return registry_; }
  std::size_t num_connections() const { return conns_.size(); }

 private:
  struct Conn {
    Bytes in;
    Bytes out;
    bool close_after_flush = false;
  };

  void accept_ready();
  /// True when conn.out exceeds max_output_backlog: stop reading and stop
  /// consuming parked requests until write_ready flushes the backlog.
  bool backlogged(const Conn& conn) const {
    return conn.out.size() > options_.max_output_backlog;
  }
  /// Returns false if the connection must be dropped.
  bool read_ready(int fd, Conn& conn);
  bool write_ready(int fd, Conn& conn);
  /// Alternate drain_frames/write_ready until the connection is backlogged
  /// (POLLOUT resumes it later) or no complete frame remains; false = close.
  bool service_frames(int fd, Conn& conn);
  /// Consume complete frames in conn.in until the output backlog cap parks
  /// the rest; false = close connection.
  bool drain_frames(Conn& conn);
  void close_conn(int fd);
  void close_listener();
  void begin_shutdown();

  ServerOptions options_;
  Registry registry_;
  int listen_fd_ = -1;
  std::string socket_path_;
  std::map<int, Conn> conns_;
  bool shutdown_flagged_ = false;
};

}  // namespace pnr::svc
