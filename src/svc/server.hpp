#pragma once
// pnr::svc transport: a poll(2)-based event loop that speaks the framed
// wire protocol over Unix-domain stream sockets. The poll loop is a pure
// I/O front-end: it decodes frames, answers framing-level errors inline,
// and — when sharding is enabled (ServerOptions::threads > 0) — enqueues
// session requests onto per-shard MPSC work queues drained by detached
// tasks on a pnr::exec pool. Completed replies flow back through a wakeup
// pipe to the poll loop, which serializes them onto connections. With
// threads == 0 every request is handled inline on the poll thread — the
// exact pre-sharding serial server.
//
// Sharding model (docs/SERVICE.md, "Sharding"):
//   * sessions are pinned to shards by id (Registry::shard_of), so all
//     requests for one session execute on one FIFO queue — a session's
//     reply stream is byte-identical at any shard count;
//   * heavy control-plane ops (the creates, restore, fed attach —
//     Registry::is_queued_control_op) run on one dedicated control FIFO at
//     index `threads` so workload-mesh construction never blocks the poll
//     thread; the single FIFO still assigns session ids in frame-arrival
//     order, so create replies are shard-count-invariant;
//   * light control ops (ping, list, shutdown, unknown) stay inline on the
//     poll thread;
//   * backpressure reuses the max_output_backlog parking plumbing and adds
//     a per-connection in-flight cap so a pipelining client cannot flood
//     the shard queues.
//
// Three ways to get clients:
//   * listen_unix(path): bind + listen for pnr_client over a filesystem
//     socket;
//   * listen_tcp(port): same over loopback/LAN TCP — how a federation
//     coordinator reaches daemons on other hosts;
//   * adopt(fd): take ownership of an already-connected stream fd (one end
//     of a socketpair) — this is how the hermetic tests and bench drive a
//     real server without touching the filesystem.
//
// Trust grading per connection: a byte stream that breaks framing (bad
// magic, oversized declared length) is closed outright; a well-framed
// request with a bad CRC/version/op gets a typed error frame and the
// connection lives on. This file is the only place in the tree allowed to
// make raw socket/poll syscalls (scripts/lint.py, rule raw-socket).

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "exec/pool.hpp"
#include "svc/registry.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace pnr::svc {

struct ServerOptions {
  Limits limits;
  int max_connections = 32;
  /// Per-connection pending-reply ceiling. A client that pipelines requests
  /// with large replies but never reads them is throttled, not served: once
  /// a connection's output buffer exceeds this, the server parks further
  /// requests and stops reading from it until the backlog flushes, so an
  /// unread reply backlog cannot grow server memory without bound.
  std::size_t max_output_backlog = 128u << 20;
  /// Shard workers. 0 = the serial poll-thread server (exact legacy
  /// behavior); N > 0 = N session shards drained by detached tasks on an
  /// N-thread pnr::exec pool owned by the server.
  int threads = 0;
  /// Sharded mode only: requests a single connection may have in flight on
  /// the shard queues before the server parks its input. Bounds queue
  /// memory per connection the same way max_output_backlog bounds replies.
  int max_inflight_per_conn = 64;
};

class Server {
 public:
  explicit Server(ServerOptions options = {});
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind + listen on a fresh Unix-domain socket at `path` (unlinked on
  /// destruction). False with *error set on any syscall failure.
  bool listen_unix(const std::string& path, std::string* error = nullptr);

  /// Bind + listen on TCP `host:port` (host defaults to loopback; port 0
  /// lets the kernel pick — read it back with bound_port()). False with
  /// *error set on any syscall failure.
  bool listen_tcp(std::uint16_t port, std::string* error = nullptr,
                  const std::string& host = "127.0.0.1");

  /// Port the TCP listener is bound to (0 when listening on Unix/none).
  std::uint16_t bound_port() const { return bound_port_; }

  /// Take ownership of a connected stream fd (e.g. one end of a
  /// socketpair). The fd is switched to non-blocking.
  void adopt(int fd);

  /// One poll(2) iteration: wait up to timeout_ms (0 = don't block, -1 =
  /// forever), then service every ready fd and deliver any completed
  /// shard replies. Returns the number of fds serviced plus replies
  /// delivered; 0 when there is nothing left to poll.
  int poll_once(int timeout_ms);

  /// Drive poll_once until done(): a shutdown request has been served and
  /// flushed, or every connection (and the listener) is gone.
  void run();

  /// True when the loop has nothing left to do: no listener and no
  /// connections, or shutdown requested and all replies flushed.
  bool done() const;

  Registry& registry() { return registry_; }
  std::size_t num_connections() const { return conns_.size(); }
  int num_threads() const { return threads_; }

 private:
  struct Conn {
    std::uint64_t id = 0;  ///< stable handle; survives fd reuse
    Bytes in;
    Bytes out;
    int inflight = 0;  ///< requests on shard queues / awaiting delivery
    bool close_after_flush = false;
  };
  /// One decoded session request bound for a shard queue.
  struct Request {
    std::uint64_t conn = 0;
    std::uint16_t op = 0;
    Bytes payload;
  };
  /// One encoded reply frame coming back from a shard worker.
  struct Completion {
    std::uint64_t conn = 0;
    Bytes frame;
  };
  /// MPSC work queue for one shard. `scheduled` is true while a drain task
  /// is pending or running for this shard; at most one runs at a time, so
  /// the per-session FIFO order is preserved.
  struct Shard {
    util::Mutex mutex;
    std::deque<Request> queue PNR_GUARDED_BY(mutex);
    bool scheduled PNR_GUARDED_BY(mutex) = false;
  };

  void accept_ready();
  /// True when conn.out exceeds max_output_backlog: stop reading and stop
  /// consuming parked requests until write_ready flushes the backlog.
  bool backlogged(const Conn& conn) const {
    return conn.out.size() > options_.max_output_backlog;
  }
  /// Backlogged, or (sharded) at the in-flight cap: park further input.
  bool parked(const Conn& conn) const {
    return backlogged(conn) ||
           (threads_ > 0 && conn.inflight >= options_.max_inflight_per_conn);
  }
  /// Returns false if the connection must be dropped.
  bool read_ready(int fd, Conn& conn);
  bool write_ready(int fd, Conn& conn);
  /// Alternate drain_frames/write_ready until the connection is parked
  /// (POLLOUT or a completion resumes it later) or no complete frame
  /// remains; false = close.
  bool service_frames(int fd, Conn& conn);
  /// Consume complete frames in conn.in until the output backlog cap or the
  /// in-flight cap parks the rest; false = close connection.
  bool drain_frames(Conn& conn);
  void close_conn(int fd);
  void close_listener();
  void begin_shutdown();

  // ---- sharded mode ---------------------------------------------------------
  /// Queue one validated session request onto shard `s` and schedule a
  /// drain task if none is pending.
  void enqueue_request(Conn& conn, int s, std::uint16_t op, Bytes payload);
  /// Detached-task body: drain shard `s` FIFO until its queue is empty.
  void drain_shard(int s);
  /// Worker side: queue an encoded reply frame and wake the poll loop.
  void post_completion(std::uint64_t conn_id, Bytes frame)
      PNR_EXCLUDES(completions_mutex_);
  /// Poll side: move queued completions onto their connections' output
  /// buffers (dropping those whose connection is gone). Returns the fds
  /// that received replies.
  std::vector<int> deliver_completions() PNR_EXCLUDES(completions_mutex_);
  /// deliver_completions + flush/resume each touched connection. Returns
  /// the number of replies delivered.
  int drain_completions_and_service();
  /// Block until every shard queue is empty and no drain task is running.
  /// Poll thread only (nothing enqueues while it blocks here).
  void quiesce_shards() PNR_EXCLUDES(quiesce_mutex_);

  // Poll-thread-only state: the poll loop owns connections, fd bookkeeping
  // and session-id allocation outright, so none of it needs a lock — shard
  // workers communicate with it exclusively through the completions_ queue
  // and the self-pipe below.
  ServerOptions options_;
  int threads_ = 0;
  Registry registry_;
  int listen_fd_ = -1;
  std::string socket_path_;
  std::uint16_t bound_port_ = 0;
  std::map<int, Conn> conns_;
  std::map<std::uint64_t, int> conn_fd_by_id_;
  std::uint64_t next_conn_id_ = 1;
  bool shutdown_flagged_ = false;

  std::unique_ptr<exec::Pool> task_pool_;  ///< drain-task workers (sharded)
  /// The shard vector itself is immutable after the constructor (only the
  /// Shards' guarded contents change); each Shard's queue has its own lock.
  /// Sized threads_ + 1: indices [0, threads_) are the session shards
  /// (Registry::shard_of pins ids there) and index threads_ is the control
  /// FIFO for the queued control ops (creates, restore, fed attach).
  std::vector<std::unique_ptr<Shard>> shards_;
  /// Completion path: shard workers push encoded reply frames under
  /// completions_mutex_, then poke the self-pipe; the poll thread swaps the
  /// batch out under the same lock in deliver_completions().
  util::Mutex completions_mutex_;
  std::vector<Completion> completions_ PNR_GUARDED_BY(completions_mutex_);
  int wake_fds_[2] = {-1, -1};  ///< self-pipe: [0] polled, [1] worker side
  /// Shard-idle rendezvous for quiesce_shards(): drain tasks notify under
  /// quiesce_mutex_ when their shard empties; the waiting poll thread
  /// re-checks every shard queue (under the shard locks) on each wake. The
  /// condition it guards is "all shard queues empty" — state owned by the
  /// Shards' own locks, so no sibling field can name it.
  util::Mutex quiesce_mutex_;  // pnr-analyze: allow(unguarded-mutex-member)
  util::CondVar quiesce_cv_;
};

}  // namespace pnr::svc
