#pragma once
// pnr::svc wire protocol: framing for the embeddable repartitioning service
// (docs/SERVICE.md). Every message — request, success reply, error reply —
// is one frame:
//
//   offset  size  field
//        0     4  magic "PNRS"
//        4     2  version (little-endian u16, kWireVersion)
//        6     2  type    (request op, or op|kReplyBit, or kTypeError)
//        8     4  payload length in bytes (little-endian u32)
//       12     4  CRC-32 of the payload (IEEE 802.3, little-endian u32)
//       16     …  payload (par::Writer layout, little-endian)
//
// Framing errors are graded by how much of the channel can still be
// trusted: a bad magic or an oversized length means the byte stream is not
// speaking this protocol (the connection is closed); a bad CRC, version or
// op arrives in an intact frame, so the server answers with a typed error
// frame and keeps the connection. Payload decoding never aborts — all
// decode paths run on par::TryReader and surface kErrBadPayload.

#include <cstdint>
#include <optional>
#include <string>

#include "parallel/serialize.hpp"

namespace pnr::svc {

using par::Bytes;

inline constexpr std::uint32_t kMagic = 0x53524e50u;  // "PNRS" little-endian
// v2: engine byte appended to WorkloadSpec / CreateHead, repartition
// request became {u32 session, u8 engine} with the ran-engine byte echoed
// in the reply, get_metrics reply carries the session engine after the
// strategy byte (docs/SERVICE.md, "Engines").
// v3: federation ops 16-21 (docs/FEDERATION.md) — shard-role attach,
// replicated advance, interface/weight gather, migration-plan push with
// packed refinement-history subtrees, alltoall tree exchange, and the
// ownership-commit barrier. Fed sessions checkpoint like any other
// session; the attach payload's engine byte is canonicalized in the
// stored create record exactly like the v2 creates.
inline constexpr std::uint16_t kWireVersion = 3;
inline constexpr std::size_t kHeaderBytes = 16;

/// Request operations. A success reply echoes the op with kReplyBit set.
enum Op : std::uint16_t {
  kOpPing = 1,             ///< echo the payload back
  kOpCreateWorkload = 2,   ///< server-side workload session (WorkloadSpec)
  kOpCreateMesh = 3,       ///< session from an uploaded flat mesh
  kOpCreateGraph = 4,      ///< partition-only session from an uploaded graph
  kOpAdvance = 5,          ///< advance a workload session's adaptation
  kOpStep = 6,             ///< repartition + StepReport (mesh sessions)
  kOpAdapt = 7,            ///< explicit refine/coarsen marks (mesh uploads)
  kOpRepartition = 8,      ///< graph sessions: PNR repartition + stats
  kOpGetMetrics = 9,       ///< session summary + last StepReport
  kOpGetAssignment = 10,   ///< current assignment in leaf/vertex order
  kOpCheckpoint = 11,      ///< session state as opaque bytes
  kOpRestore = 12,         ///< new session from checkpoint bytes
  kOpCloseSession = 13,    ///< destroy one session
  kOpListSessions = 14,    ///< ids + kinds + sizes of live sessions
  kOpShutdown = 15,        ///< acknowledge, then stop the server loop
  // ---- federation (docs/FEDERATION.md) --------------------------------------
  kOpFedAttach = 16,    ///< create a federated shard session (spec+rank+count)
  kOpFedAdvance = 17,   ///< replicated P0 adaptation of the shard's workload
  kOpFedInterface = 18, ///< P1/P2: owned weights + interface edges (+echoes)
  kOpFedPlan = 19,      ///< P3: push next assignment; reply packs out-trees
  kOpFedExchange = 20,  ///< deliver migrated subtrees from one source shard
  kOpFedCommit = 21,    ///< barrier: flip ownership, report conformity digest
};
inline constexpr std::uint16_t kOpMax = kOpFedCommit;

inline constexpr std::uint16_t kReplyBit = 0x8000;
inline constexpr std::uint16_t kTypeError = 0xffff;

/// Error codes carried by kTypeError replies ({u16 code, string detail}).
enum class Err : std::uint16_t {
  kBadCrc = 1,          ///< frame CRC mismatch (payload dropped)
  kBadVersion = 2,      ///< protocol version not supported
  kBadOp = 3,           ///< unknown request type
  kBadPayload = 4,      ///< payload failed to decode or validate
  kAuditFailed = 5,     ///< decoded structure rejected by pnr::check
  kUnknownSession = 6,  ///< no live session with that id
  kBadState = 7,        ///< op not applicable to this session kind/state
  kLimitExceeded = 8,   ///< server limit (sessions, elements, oplog) hit
  kShuttingDown = 9,    ///< server no longer accepts work
  kInternal = 10,       ///< server-side failure (never a crash)
};

const char* err_name(Err e);

/// Per-server resource ceilings, enforced before any payload touches a
/// session. Defaults suit the paper's workloads; the daemon exposes flags.
struct Limits {
  std::uint32_t max_sessions = 64;
  std::uint32_t max_frame_bytes = 64u << 20;  ///< header excluded
  std::int64_t max_elements = 2'000'000;      ///< uploaded mesh elements
  std::int64_t max_vertices = 2'000'000;      ///< fits mesh::face_key packing
  std::int64_t max_graph_vertices = 4'000'000;
  std::int64_t max_graph_edges = 32'000'000;
  std::int32_t max_parts = 1024;
  std::uint32_t max_oplog_entries = 65536;  ///< checkpoint replay-log cap
  std::int32_t max_workload_steps = 4096;
  /// engine::Kind (as its u8 wire value) substituted when a create payload
  /// carries kEngineDefault. Raw u8 so the wire layer stays engine-free.
  std::uint8_t default_engine = 0;  ///< Kind::kMlkl
};

/// Wire value meaning "use the server's default engine" on create /
/// repartition ops; any other value must be a registered engine::Kind.
inline constexpr std::uint8_t kEngineDefault = 255;

/// CRC-32 (IEEE 802.3, reflected 0xEDB88320) of `size` bytes.
std::uint32_t crc32(const std::uint8_t* data, std::size_t size);
inline std::uint32_t crc32(const Bytes& b) { return crc32(b.data(), b.size()); }

struct FrameHeader {
  std::uint16_t version = kWireVersion;
  std::uint16_t type = 0;
  std::uint32_t payload_len = 0;
  std::uint32_t payload_crc = 0;
};

/// Serialize header + payload into one wire-ready buffer.
Bytes encode_frame(std::uint16_t type, const Bytes& payload);

/// Parse the 16 leading bytes of `data`. nullopt only on a magic mismatch —
/// version/CRC are validated by the caller so it can answer with a typed
/// error instead of dropping the connection.
std::optional<FrameHeader> decode_header(const std::uint8_t* data);

/// Build the standard error payload {u16 code, string detail}.
Bytes encode_error(Err code, const std::string& detail);

/// Decode an error payload (client side).
struct ErrorInfo {
  Err code;
  std::string detail;
};
std::optional<ErrorInfo> decode_error(const Bytes& payload);

}  // namespace pnr::svc
