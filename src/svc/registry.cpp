#include "svc/registry.hpp"

#include <algorithm>
#include <cmath>
#include <utility>
#include <variant>

#include "check/check.hpp"
#include "core/hierarchy_cache.hpp"
#include "fed/shard.hpp"
#include "engine/engine.hpp"
#include "graph/algorithms.hpp"
#include "mesh/dual.hpp"
#include "util/mutex.hpp"
#include "util/prof.hpp"

namespace pnr::svc {

namespace {

/// Uploaded-mesh session: the service owns the mesh and drives it only
/// through validated kOpAdapt / kOpStep requests.
struct Mesh2DState {
  mesh::TriMesh mesh;
  pared::Session2D session;
};
struct Mesh3DState {
  mesh::TetMesh mesh;
  pared::Session3D session;
};

/// Server-side paper workloads: the workload object owns the mesh and the
/// adaptation policy; the client only sequences advance/step.
struct Transient2DState {
  pared::TransientRun run;
  pared::Session2D session;
};
struct Transient3DState {
  pared::TransientRun3D run;
  pared::Session3D session;
};
struct Corner2DState {
  pared::CornerSeries2D run;
  pared::Session2D session;
};
struct Corner3DState {
  pared::CornerSeries3D run;
  pared::Session3D session;
};

/// Federated shard session (docs/FEDERATION.md): one daemon's slice of a
/// socket federation. The shard owns its replicated workload run and the
/// tree-ownership vector; a remote coordinator sequences the round ops.
struct Fed2DState {
  fed::Shard2D shard;
};
struct Fed3DState {
  fed::Shard3D shard;
};

/// Partition-only session over an uploaded weighted graph (the PNR coarse
/// graph of some external mesh).
struct GraphState {
  graph::Graph g;
  core::Pnr pnr;
  part::Partition partition;
  util::Rng rng;
  core::RepartitionStats last_stats;
  bool has_stats = false;
  /// Contraction hierarchy carried across repartition calls (the uploaded
  /// graph's topology is fixed, so the cache stays warm for the session).
  core::HierarchyCache cache;
  /// Session-default backend; per-request override via the repartition op.
  engine::Kind engine = engine::Kind::kMlkl;
  /// Optional vertex coordinates uploaded with the graph (n×dim, row
  /// major); empty with dim == 0 when the client sent none, in which case
  /// the geometric engines are unavailable for this session.
  std::vector<double> coords;
  int dim = 0;
};

using Body = std::variant<Transient2DState, Transient3DState, Corner2DState,
                          Corner3DState, Mesh2DState, Mesh3DState, GraphState,
                          Fed2DState, Fed3DState>;

/// True for the federated shard states — the ones whose lifecycle is the
/// fed round protocol rather than the advance/step session loop.
template <typename T>
inline constexpr bool kIsFedState =
    std::is_same_v<T, Fed2DState> || std::is_same_v<T, Fed3DState>;

const char* kind_name(const Body& body) {
  struct V {
    const char* operator()(const Transient2DState&) { return "transient2d"; }
    const char* operator()(const Transient3DState&) { return "transient3d"; }
    const char* operator()(const Corner2DState&) { return "corner2d"; }
    const char* operator()(const Corner3DState&) { return "corner3d"; }
    const char* operator()(const Mesh2DState&) { return "mesh2d"; }
    const char* operator()(const Mesh3DState&) { return "mesh3d"; }
    const char* operator()(const GraphState&) { return "graph"; }
    const char* operator()(const Fed2DState&) { return "fed2d"; }
    const char* operator()(const Fed3DState&) { return "fed3d"; }
  };
  return std::visit(V{}, body);
}

/// Session size: mesh leaves, or graph vertices.
std::int64_t body_elements(const Body& body) {
  struct V {
    std::int64_t operator()(const Transient2DState& s) {
      return s.run.mesh().num_leaves();
    }
    std::int64_t operator()(const Transient3DState& s) {
      return s.run.mesh().num_leaves();
    }
    std::int64_t operator()(const Corner2DState& s) {
      return s.run.mesh().num_leaves();
    }
    std::int64_t operator()(const Corner3DState& s) {
      return s.run.mesh().num_leaves();
    }
    std::int64_t operator()(const Mesh2DState& s) {
      return s.mesh.num_leaves();
    }
    std::int64_t operator()(const Mesh3DState& s) {
      return s.mesh.num_leaves();
    }
    std::int64_t operator()(const GraphState& s) {
      return s.g.num_vertices();
    }
    std::int64_t operator()(const Fed2DState& s) { return s.shard.elements(); }
    std::int64_t operator()(const Fed3DState& s) { return s.shard.elements(); }
  };
  return std::visit(V{}, body);
}

const mesh::TriMesh::Tri& element_of(const mesh::TriMesh& m, mesh::ElemIdx e) {
  return m.tri(e);
}
const mesh::TetMesh::Tet& element_of(const mesh::TetMesh& m, mesh::ElemIdx e) {
  return m.tet(e);
}

/// Level-0 elements never disappear (coarsening stops at the roots), so
/// parts <= roots guarantees check_partition's "no empty subset" invariant
/// for the whole session lifetime.
template <typename Mesh>
std::int64_t count_roots(const Mesh& mesh) {
  std::int64_t roots = 0;
  for (std::size_t e = 0; e < mesh.element_slots(); ++e)
    roots += element_of(mesh, static_cast<mesh::ElemIdx>(e)).level == 0;
  return roots;
}

template <typename Mesh>
std::vector<part::PartId> leaf_assignment(const Mesh& mesh) {
  std::vector<part::PartId> assign;
  assign.reserve(static_cast<std::size_t>(mesh.num_leaves()));
  for (const mesh::ElemIdx e : mesh.leaf_elements())
    assign.push_back(mesh.tag(e));
  return assign;
}

/// Registry sessions defer the fine-dual metrics tail of step(): the step
/// reply carries the cheap fields (elements, migrated), and kOpGetMetrics
/// computes the rest on demand. get_metrics is not logged, so deferral is
/// replay-neutral for checkpoints.
template <typename S>
S deferred(S session) {
  session.set_defer_metrics(true);
  return session;
}

bool is_mutating_op(std::uint16_t op) {
  // kOpFedExchange is deliberately absent: ingest is pure validation (the
  // replica already holds every element), so it never enters the oplog and
  // a checkpoint replay of advance/plan/commit reconstructs the shard.
  return op == kOpAdvance || op == kOpStep || op == kOpAdapt ||
         op == kOpRepartition || op == kOpFedAdvance || op == kOpFedPlan ||
         op == kOpFedCommit;
}

Reply make_error(Err code, std::string detail) {
  prof::count("svc.errors");
  return Reply{kTypeError, encode_error(code, std::move(detail))};
}

Reply make_ok(std::uint16_t op, Bytes payload) {
  return Reply{static_cast<std::uint16_t>(op | kReplyBit),
               std::move(payload)};
}

/// Substitute the server default for kEngineDefault. The wire byte is
/// validated by the codecs, so the cast is safe.
engine::Kind resolve_engine(std::uint8_t wire, const Limits& limits) {
  return static_cast<engine::Kind>(wire == kEngineDefault
                                       ? limits.default_engine
                                       : wire);
}

bool geometric_engine(engine::Kind k) {
  return engine::repartitioner(k).needs_coords();
}

}  // namespace

struct Registry::SessionState {
  std::uint32_t id = 0;
  pared::Strategy strategy = pared::Strategy::kPNR;
  /// Resolved session-default engine (never kEngineDefault), reported by
  /// kOpGetMetrics.
  engine::Kind engine = engine::Kind::kMlkl;
  std::int32_t parts = 1;
  Body body;
  std::int64_t ops_applied = 0;
  std::optional<pared::StepReport> last_report;

  /// Mid-restore marker: the session exists (its id is allocated, it counts
  /// toward max_sessions) but find() pretends it does not — except for the
  /// restore replay itself — until the replay completes. Guarded by the
  /// owning Shard's mutex (a cross-object guard PNR_GUARDED_BY cannot
  /// express); every read/write happens inside a shard-locked section.
  bool hidden = false;
  /// body_elements(body), maintained by every element-changing op so
  /// list_sessions can report sizes without touching a body that a shard
  /// worker may be mutating.
  std::atomic<std::int64_t> cached_elements{0};

  // Event-sourced checkpoint: the create request plus every mutating op's
  // argument bytes (session id stripped). Deterministic replay rebuilds the
  // session bit-for-bit.
  std::uint16_t create_op = 0;
  Bytes create_payload;
  std::vector<std::pair<std::uint16_t, Bytes>> oplog;
  bool checkpoint_ok = true;

  explicit SessionState(Body b) : body(std::move(b)) {}
};

/// One shard: a mutex-guarded slice of the session map. The mutex guards
/// only the map structure and the hidden flags — a session's body is owned
/// by whichever single request is operating on it.
struct Registry::Shard {
  mutable util::Mutex mutex;
  std::map<std::uint32_t, std::unique_ptr<SessionState>> sessions
      PNR_GUARDED_BY(mutex);
};

const char* op_span_name(std::uint16_t op) {
  switch (op) {
    case kOpPing: return "svc.op.ping";
    case kOpCreateWorkload: return "svc.op.create_workload";
    case kOpCreateMesh: return "svc.op.create_mesh";
    case kOpCreateGraph: return "svc.op.create_graph";
    case kOpAdvance: return "svc.op.advance";
    case kOpStep: return "svc.op.step";
    case kOpAdapt: return "svc.op.adapt";
    case kOpRepartition: return "svc.op.repartition";
    case kOpGetMetrics: return "svc.op.get_metrics";
    case kOpGetAssignment: return "svc.op.get_assignment";
    case kOpCheckpoint: return "svc.op.checkpoint";
    case kOpRestore: return "svc.op.restore";
    case kOpCloseSession: return "svc.op.close_session";
    case kOpListSessions: return "svc.op.list_sessions";
    case kOpShutdown: return "svc.op.shutdown";
    case kOpFedAttach: return "svc.op.fed_attach";
    case kOpFedAdvance: return "svc.op.fed_advance";
    case kOpFedInterface: return "svc.op.fed_interface";
    case kOpFedPlan: return "svc.op.fed_plan";
    case kOpFedExchange: return "svc.op.fed_exchange";
    case kOpFedCommit: return "svc.op.fed_commit";
    default: return "svc.op.unknown";
  }
}

Registry::Registry(Limits limits, int shards) : limits_(limits) {
  // A misconfigured default must never make resolve_engine cast garbage.
  if (!engine::valid_kind(limits_.default_engine))
    limits_.default_engine = static_cast<std::uint8_t>(engine::Kind::kMlkl);
  shards_.reserve(static_cast<std::size_t>(std::max(1, shards)));
  for (int s = 0; s < std::max(1, shards); ++s)
    shards_.push_back(std::make_unique<Shard>());
}
Registry::~Registry() = default;

bool Registry::is_session_op(std::uint16_t op) {
  switch (op) {
    case kOpAdvance:
    case kOpStep:
    case kOpAdapt:
    case kOpRepartition:
    case kOpGetMetrics:
    case kOpGetAssignment:
    case kOpCheckpoint:
    case kOpCloseSession:
    case kOpFedAdvance:
    case kOpFedInterface:
    case kOpFedPlan:
    case kOpFedExchange:
    case kOpFedCommit:
      return true;
    default:
      return false;
  }
}

bool Registry::is_queued_control_op(std::uint16_t op) {
  switch (op) {
    case kOpCreateWorkload:
    case kOpCreateMesh:
    case kOpCreateGraph:
    case kOpRestore:
    case kOpFedAttach:
      return true;
    default:
      return false;
  }
}

std::optional<std::uint32_t> Registry::peek_session(const Bytes& payload) {
  if (payload.size() < 4) return std::nullopt;
  return static_cast<std::uint32_t>(payload[0]) |
         (static_cast<std::uint32_t>(payload[1]) << 8) |
         (static_cast<std::uint32_t>(payload[2]) << 16) |
         (static_cast<std::uint32_t>(payload[3]) << 24);
}

Reply Registry::handle(std::uint16_t op, const Bytes& payload) {
  prof::count("svc.requests");
  prof::Span span(op_span_name(op));
  if (shutting_down() && op != kOpPing)
    return make_error(Err::kShuttingDown, "server is shutting down");
  return dispatch(op, payload);
}

Reply Registry::dispatch(std::uint16_t op, const Bytes& payload) {
  switch (op) {
    case kOpPing: return op_ping(payload);
    case kOpCreateWorkload: return op_create_workload(payload);
    case kOpCreateMesh: return op_create_mesh(payload);
    case kOpCreateGraph: return op_create_graph(payload);
    case kOpAdvance: return op_advance(payload);
    case kOpStep: return op_step(payload);
    case kOpAdapt: return op_adapt(payload);
    case kOpRepartition: return op_repartition(payload);
    case kOpGetMetrics: return op_get_metrics(payload);
    case kOpGetAssignment: return op_get_assignment(payload);
    case kOpCheckpoint: return op_checkpoint(payload);
    case kOpRestore: return op_restore(payload);
    case kOpCloseSession: return op_close_session(payload);
    case kOpListSessions: return op_list_sessions(payload);
    case kOpShutdown: return op_shutdown(payload);
    case kOpFedAttach: return op_fed_attach(payload);
    case kOpFedAdvance: return op_fed_advance(payload);
    case kOpFedInterface: return op_fed_interface(payload);
    case kOpFedPlan: return op_fed_plan(payload);
    case kOpFedExchange: return op_fed_exchange(payload);
    case kOpFedCommit: return op_fed_commit(payload);
    default:
      return make_error(Err::kBadOp,
                        "unknown op " + std::to_string(op));
  }
}

Registry::SessionState* Registry::find(std::uint32_t id) {
  // The returned pointer stays valid without the shard lock: the only
  // erasers of a visible session are ops on that same session (close, the
  // advance/adapt overflow path), and the concurrency contract allows at
  // most one in-flight request per session.
  Shard& sh = *shards_[static_cast<std::size_t>(shard_of(id))];
  util::MutexLock lock(sh.mutex);
  const auto it = sh.sessions.find(id);
  if (it == sh.sessions.end()) return nullptr;
  SessionState* st = it->second.get();
  if (st->hidden && id != restoring_id_.load(std::memory_order_relaxed))
    return nullptr;
  return st;
}

bool Registry::erase_session(std::uint32_t id, bool even_hidden) {
  Shard& sh = *shards_[static_cast<std::size_t>(shard_of(id))];
  util::MutexLock lock(sh.mutex);
  const auto it = sh.sessions.find(id);
  if (it == sh.sessions.end()) return false;
  if (it->second->hidden && !even_hidden) return false;
  sh.sessions.erase(it);
  num_sessions_.fetch_sub(1, std::memory_order_relaxed);
  return true;
}

void Registry::log_op(SessionState& st, std::uint16_t op,
                      const Bytes& payload) {
  ++st.ops_applied;
  if (!st.checkpoint_ok) return;
  if (st.oplog.size() >= limits_.max_oplog_entries) {
    st.checkpoint_ok = false;
    st.oplog.clear();
    st.oplog.shrink_to_fit();
    return;
  }
  // Every mutating payload starts with the u32 session id; the log keeps
  // only the arguments so a restore can re-target them at the new id.
  Bytes args(payload.begin() + 4, payload.end());
  st.oplog.emplace_back(op, std::move(args));
}

std::uint32_t Registry::register_session(std::unique_ptr<SessionState> st) {
  const std::uint32_t id = next_id_++;
  st->id = id;
  st->hidden = hide_next_create_;
  st->cached_elements.store(body_elements(st->body),
                            std::memory_order_relaxed);
  Shard& sh = *shards_[static_cast<std::size_t>(shard_of(id))];
  util::MutexLock lock(sh.mutex);
  sh.sessions.emplace(id, std::move(st));
  num_sessions_.fetch_add(1, std::memory_order_relaxed);
  return id;
}

// ---- ops --------------------------------------------------------------------

Reply Registry::op_ping(const Bytes& payload) {
  return make_ok(kOpPing, payload);
}

Reply Registry::op_create_workload(const Bytes& payload) {
  par::TryReader r(payload);
  const auto spec = decode_workload_spec(r, limits_);
  if (!spec || !r.done())
    return make_error(Err::kBadPayload, "malformed workload spec");
  if (num_sessions() >= limits_.max_sessions)
    return make_error(Err::kLimitExceeded, "session limit reached");

  core::PnrOptions popt;
  popt.alpha = spec->alpha;
  popt.beta = spec->beta;
  const engine::Kind eng = resolve_engine(spec->engine, limits_);
  const auto session2d = [&] {
    return deferred(pared::Session2D(spec->strategy, spec->parts,
                                     spec->session_seed, popt, eng));
  };
  const auto session3d = [&] {
    return deferred(pared::Session3D(spec->strategy, spec->parts,
                                     spec->session_seed, popt, eng));
  };

  // A TransientRun refines toward its depth cap *inside its constructor*,
  // before the post-construction max_elements check below can run, so the
  // worst case must be bounded from the spec alone. Bisection doubles the
  // leaf count per level, so full refinement of every root is bounded by
  // roots << max_level; Rivara conformity closure can overshoot the mark
  // cap by about one level, hence the +1 slack. Keeping that supremum
  // under max_elements bounds both the memory and the constructor CPU
  // (each pre-adaptation round visits at most that many leaves). The
  // codec's clamps (grid_n <= 128, max_level <= 16) keep the shift far
  // from 64-bit overflow.
  const auto transient_fits = [&](std::int64_t roots) {
    return (roots << (spec->transient.max_level + 1)) <= limits_.max_elements;
  };

  std::optional<Body> body;
  switch (spec->kind) {
    case WorkloadKind::kTransient2D: {
      const std::int64_t n = spec->transient.grid_n;
      if (!transient_fits(2 * n * n))
        return make_error(
            Err::kLimitExceeded,
            "transient2d: fully refined mesh would exceed max_elements");
      body.emplace(Transient2DState{pared::TransientRun(spec->transient),
                                    session2d()});
      break;
    }
    case WorkloadKind::kTransient3D: {
      const std::int64_t n = spec->transient.grid_n;
      if (!transient_fits(6 * n * n * n))
        return make_error(
            Err::kLimitExceeded,
            "transient3d: fully refined mesh would exceed max_elements");
      body.emplace(Transient3DState{pared::TransientRun3D(spec->transient),
                                    session3d()});
      break;
    }
    case WorkloadKind::kCorner2D: {
      const int grid = spec->corner_grid_n ? spec->corner_grid_n : 79;
      body.emplace(
          Corner2DState{pared::CornerSeries2D(grid, spec->corner),
                        session2d()});
      break;
    }
    case WorkloadKind::kCorner3D: {
      const int grid = spec->corner_grid_n ? spec->corner_grid_n : 12;
      if (grid > 24)
        return make_error(Err::kLimitExceeded, "corner3d: grid_n <= 24");
      body.emplace(
          Corner3DState{pared::CornerSeries3D(grid, spec->corner),
                        session3d()});
      break;
    }
  }

  const std::int64_t elements = body_elements(*body);
  if (elements > limits_.max_elements)
    return make_error(Err::kLimitExceeded,
                      "workload mesh exceeds max_elements");
  const std::int64_t roots = std::visit(
      [](const auto& s) -> std::int64_t {
        using T = std::decay_t<decltype(s)>;
        if constexpr (std::is_same_v<T, GraphState> ||
                      std::is_same_v<T, Mesh2DState> ||
                      std::is_same_v<T, Mesh3DState>)
          return 0;
        else if constexpr (kIsFedState<T>)
          return count_roots(s.shard.run().mesh());
        else
          return count_roots(s.run.mesh());
      },
      *body);
  if (spec->parts > roots)
    return make_error(Err::kBadPayload,
                      "parts exceeds the workload's level-0 elements");

  auto st = std::make_unique<SessionState>(std::move(*body));
  st->strategy = spec->strategy;
  st->engine = eng;
  st->parts = spec->parts;
  st->create_op = kOpCreateWorkload;
  st->create_payload = payload;
  // Canonicalize the stored engine byte so a checkpoint replays to the
  // same backend on a server with a different --default-engine.
  st->create_payload[kWorkloadSpecEngineOffset] =
      static_cast<std::uint8_t>(eng);
  const std::uint32_t id = register_session(std::move(st));

  par::Writer w;
  w.put(id);
  w.put(elements);
  return make_ok(kOpCreateWorkload, w.take());
}

Reply Registry::op_create_mesh(const Bytes& payload) {
  par::TryReader r(payload);
  const auto head = decode_create_head(r, limits_);
  if (!head) return make_error(Err::kBadPayload, "malformed create head");
  const auto flat = decode_mesh(r, limits_);
  if (!flat || !r.done())
    return make_error(Err::kBadPayload, "malformed mesh payload");
  if (num_sessions() >= limits_.max_sessions)
    return make_error(Err::kLimitExceeded, "session limit reached");

  core::PnrOptions popt;
  popt.alpha = head->alpha;
  popt.beta = head->beta;
  const engine::Kind eng = resolve_engine(head->engine, limits_);

  std::optional<Body> body;
  std::string why;
  std::int64_t elements = 0;
  if (flat->dim == 2) {
    auto mesh = build_tri_mesh(*flat, &why);
    if (!mesh) {
      const bool audit = why == "mesh audit failed";
      return make_error(audit ? Err::kAuditFailed : Err::kBadPayload, why);
    }
    if (!graph::is_connected(mesh::fine_dual_graph(*mesh).graph))
      return make_error(Err::kBadPayload, "mesh dual graph is disconnected");
    elements = mesh->num_leaves();
    if (head->parts > elements)
      return make_error(Err::kBadPayload, "parts exceeds element count");
    body.emplace(Mesh2DState{
        std::move(*mesh),
        deferred(pared::Session2D(head->strategy, head->parts,
                                  head->session_seed, popt, eng))});
  } else {
    auto mesh = build_tet_mesh(*flat, &why);
    if (!mesh) {
      const bool audit = why == "mesh audit failed";
      return make_error(audit ? Err::kAuditFailed : Err::kBadPayload, why);
    }
    if (!graph::is_connected(mesh::fine_dual_graph(*mesh).graph))
      return make_error(Err::kBadPayload, "mesh dual graph is disconnected");
    elements = mesh->num_leaves();
    if (head->parts > elements)
      return make_error(Err::kBadPayload, "parts exceeds element count");
    body.emplace(Mesh3DState{
        std::move(*mesh),
        deferred(pared::Session3D(head->strategy, head->parts,
                                  head->session_seed, popt, eng))});
  }

  auto st = std::make_unique<SessionState>(std::move(*body));
  st->strategy = head->strategy;
  st->engine = eng;
  st->parts = head->parts;
  st->create_op = kOpCreateMesh;
  st->create_payload = payload;
  st->create_payload[kCreateHeadEngineOffset] = static_cast<std::uint8_t>(eng);
  const std::uint32_t id = register_session(std::move(st));

  par::Writer w;
  w.put(id);
  w.put(elements);
  return make_ok(kOpCreateMesh, w.take());
}

Reply Registry::op_create_graph(const Bytes& payload) {
  par::TryReader r(payload);
  const auto head = decode_create_head(r, limits_);
  if (!head) return make_error(Err::kBadPayload, "malformed create head");
  std::string why;
  auto g = decode_graph(r, limits_, &why);
  if (!g) {
    const bool audit = why == "graph audit failed";
    return make_error(audit ? Err::kAuditFailed : Err::kBadPayload,
                      why.empty() ? "malformed graph payload" : why);
  }
  // Optional coordinate block for the geometric engines: u8 dim (0 = none)
  // followed by the n×dim centroid vector.
  const auto cdim = r.get<std::uint8_t>();
  auto coords = r.get_vector<double>(
      static_cast<std::uint64_t>(limits_.max_graph_vertices) * 3);
  if (!cdim || !coords || !r.done() ||
      (*cdim != 0 && *cdim != 2 && *cdim != 3))
    return make_error(Err::kBadPayload, "malformed graph payload");
  if (coords->size() != static_cast<std::size_t>(g->num_vertices()) * *cdim)
    return make_error(Err::kBadPayload,
                      "coordinate block does not match vertex count");
  for (const double c : *coords)
    if (!std::isfinite(c))
      return make_error(Err::kBadPayload, "non-finite vertex coordinate");
  if (num_sessions() >= limits_.max_sessions)
    return make_error(Err::kLimitExceeded, "session limit reached");
  if (head->strategy != pared::Strategy::kPNR)
    return make_error(Err::kBadPayload,
                      "graph sessions support strategy pnr only");
  if (head->parts > g->num_vertices())
    return make_error(Err::kBadPayload, "parts exceeds vertex count");
  if (!graph::is_connected(*g))
    return make_error(Err::kBadPayload, "uploaded graph is disconnected");
  // PNR's weights are counts; zero-weight vertices or edges would let a
  // hostile upload fake balance.
  check::GraphCheckOptions gopt;
  gopt.require_positive_vertex_weights = true;
  gopt.require_positive_edge_weights = true;
  if (const auto report = check::check_graph(*g, gopt); !report.ok())
    return make_error(Err::kAuditFailed, "graph audit failed");

  core::PnrOptions popt;
  popt.alpha = head->alpha;
  popt.beta = head->beta;
  const engine::Kind eng = resolve_engine(head->engine, limits_);
  if (geometric_engine(eng) && *cdim == 0)
    return make_error(Err::kBadPayload,
                      "geometric engine requires a coordinate block");
  core::Pnr pnr(head->parts, popt);
  util::Rng rng(head->session_seed);
  engine::Input in;
  in.graph = &*g;
  in.coords = *coords;
  in.dim = *cdim;
  in.previous = nullptr;
  in.parts = head->parts;
  in.options = popt;
  in.rng = &rng;
  part::Partition partition =
      engine::repartitioner(eng).run(in, /*stats=*/nullptr);
  const std::int64_t n = g->num_vertices();

  GraphState graph_state{std::move(*g),  std::move(pnr),
                         std::move(partition), std::move(rng),
                         core::RepartitionStats{}, false,
                         core::HierarchyCache{}, eng,
                         std::move(*coords), *cdim};
  auto st = std::make_unique<SessionState>(Body(std::move(graph_state)));
  st->strategy = head->strategy;
  st->engine = eng;
  st->parts = head->parts;
  st->create_op = kOpCreateGraph;
  st->create_payload = payload;
  st->create_payload[kCreateHeadEngineOffset] = static_cast<std::uint8_t>(eng);
  const std::uint32_t id = register_session(std::move(st));

  par::Writer w;
  w.put(id);
  w.put(n);
  return make_ok(kOpCreateGraph, w.take());
}

Reply Registry::op_advance(const Bytes& payload) {
  par::TryReader r(payload);
  const auto id = r.get<std::uint32_t>();
  if (!id || !r.done())
    return make_error(Err::kBadPayload, "advance expects {u32 session}");
  SessionState* st = find(*id);
  if (!st) return make_error(Err::kUnknownSession, "no such session");

  struct Out {
    std::int64_t refined = 0;
    std::int64_t coarsened = 0;
    double position = 0.0;  ///< time (transient) or level (corner)
  };
  std::optional<Out> out;
  std::optional<Err> failed;
  std::string detail;
  const auto run_transient = [&](auto& s) {
    if (s.run.done()) {
      failed = Err::kBadState;
      detail = "workload already finished";
      return;
    }
    const auto info = s.run.advance();
    out = Out{info.bisections, info.merges, info.t};
  };
  const auto run_corner = [&](auto& s) {
    const auto refined = s.run.advance();
    out = Out{refined, 0, static_cast<double>(s.run.level())};
  };
  std::visit(
      [&](auto& s) {
        using T = std::decay_t<decltype(s)>;
        if constexpr (std::is_same_v<T, Transient2DState> ||
                      std::is_same_v<T, Transient3DState>)
          run_transient(s);
        else if constexpr (std::is_same_v<T, Corner2DState> ||
                           std::is_same_v<T, Corner3DState>)
          run_corner(s);
        else {
          failed = Err::kBadState;
          detail = "session has no server-side workload";
        }
      },
      st->body);
  if (failed) return make_error(*failed, detail);

  const std::int64_t elements = body_elements(st->body);
  if (elements > limits_.max_elements) {
    // The mesh has outgrown the server; the session cannot be rolled back,
    // so it is destroyed rather than left over-limit. (A hidden mid-restore
    // session survives here; the restore replay erases it on this error.)
    erase_session(*id, /*even_hidden=*/false);
    return make_error(Err::kLimitExceeded,
                      "adapted mesh exceeds max_elements; session closed");
  }
  st->cached_elements.store(elements, std::memory_order_relaxed);
  log_op(*st, kOpAdvance, payload);

  par::Writer w;
  w.put(elements);
  w.put(out->refined);
  w.put(out->coarsened);
  w.put(out->position);
  return make_ok(kOpAdvance, w.take());
}

Reply Registry::op_step(const Bytes& payload) {
  par::TryReader r(payload);
  const auto id = r.get<std::uint32_t>();
  if (!id || !r.done())
    return make_error(Err::kBadPayload, "step expects {u32 session}");
  SessionState* st = find(*id);
  if (!st) return make_error(Err::kUnknownSession, "no such session");

  std::optional<pared::StepReport> report;
  std::visit(
      [&](auto& s) {
        using T = std::decay_t<decltype(s)>;
        if constexpr (std::is_same_v<T, Mesh2DState> ||
                      std::is_same_v<T, Mesh3DState>)
          report = s.session.step(s.mesh);
        else if constexpr (!std::is_same_v<T, GraphState> && !kIsFedState<T>)
          report = s.session.step(s.run.mutable_mesh());
      },
      st->body);
  if (!report)
    return make_error(Err::kBadState, "graph sessions use repartition");
  st->last_report = *report;
  log_op(*st, kOpStep, payload);

  par::Writer w;
  encode_step_report(w, *report);
  return make_ok(kOpStep, w.take());
}

Reply Registry::op_adapt(const Bytes& payload) {
  par::TryReader r(payload);
  const auto id = r.get<std::uint32_t>();
  const auto mode = r.get<std::uint8_t>();
  if (!id || !mode)
    return make_error(Err::kBadPayload,
                      "adapt expects {u32 session, u8 mode, i32[] marks}");
  auto marks = r.get_vector<mesh::ElemIdx>(
      static_cast<std::uint64_t>(limits_.max_elements) * 2);
  if (!marks || !r.done() || *mode > 1)
    return make_error(Err::kBadPayload,
                      "adapt expects {u32 session, u8 mode, i32[] marks}");
  SessionState* st = find(*id);
  if (!st) return make_error(Err::kUnknownSession, "no such session");

  struct Out {
    std::int64_t changed = 0;
  };
  std::optional<Out> out;
  bool bad_marks = false;
  std::visit(
      [&](auto& s) {
        using T = std::decay_t<decltype(s)>;
        if constexpr (std::is_same_v<T, Mesh2DState> ||
                      std::is_same_v<T, Mesh3DState>) {
          // is_leaf() (used by refine/coarsen to filter marks) indexes the
          // element array unchecked, so range-check against current slots.
          const auto slots =
              static_cast<mesh::ElemIdx>(s.mesh.element_slots());
          for (const mesh::ElemIdx m : *marks)
            if (m < 0 || m >= slots) {
              bad_marks = true;
              return;
            }
          // Canonicalize (sorted, unique) so the oplog replays an identical
          // adaptation regardless of how the client ordered its marks.
          std::sort(marks->begin(), marks->end());
          marks->erase(std::unique(marks->begin(), marks->end()),
                       marks->end());
          out = Out{*mode == 0 ? s.mesh.refine(*marks)
                               : s.mesh.coarsen(*marks)};
        }
      },
      st->body);
  if (bad_marks)
    return make_error(Err::kBadPayload, "adapt mark out of range");
  if (!out)
    return make_error(Err::kBadState,
                      "adapt applies to uploaded-mesh sessions only");

  const std::int64_t elements = body_elements(st->body);
  if (elements > limits_.max_elements) {
    erase_session(*id, /*even_hidden=*/false);
    return make_error(Err::kLimitExceeded,
                      "adapted mesh exceeds max_elements; session closed");
  }
  st->cached_elements.store(elements, std::memory_order_relaxed);
  log_op(*st, kOpAdapt, payload);

  par::Writer w;
  w.put(out->changed);
  w.put(elements);
  return make_ok(kOpAdapt, w.take());
}

Reply Registry::op_repartition(const Bytes& payload) {
  par::TryReader r(payload);
  const auto id = r.get<std::uint32_t>();
  const auto eng_byte = r.get<std::uint8_t>();
  if (!id || !eng_byte || !r.done())
    return make_error(Err::kBadPayload,
                      "repartition expects {u32 session, u8 engine}");
  if (*eng_byte != kEngineDefault && !engine::valid_kind(*eng_byte))
    return make_error(Err::kBadPayload, "unknown engine");
  SessionState* st = find(*id);
  if (!st) return make_error(Err::kUnknownSession, "no such session");
  auto* s = std::get_if<GraphState>(&st->body);
  if (!s)
    return make_error(Err::kBadState,
                      "repartition applies to graph sessions only");

  const engine::Kind eng = *eng_byte == kEngineDefault
                               ? s->engine
                               : static_cast<engine::Kind>(*eng_byte);
  core::RepartitionStats stats;
  if (eng == engine::Kind::kMlkl) {
    // Drive core::Pnr directly so the session's hierarchy cache stays warm
    // and the reply bytes match pre-engine servers.
    s->partition =
        s->pnr.repartition(s->g, s->partition, s->rng, &stats, &s->cache);
  } else {
    if (geometric_engine(eng) && s->dim == 0)
      return make_error(Err::kBadState,
                        "session was created without coordinates; "
                        "geometric engines unavailable");
    engine::Input in;
    in.graph = &s->g;
    in.coords = s->coords;
    in.dim = s->dim;
    in.previous = &s->partition;
    in.parts = st->parts;
    in.options = s->pnr.options();
    in.rng = &s->rng;
    s->partition = engine::repartitioner(eng).run(in, &stats);
  }
  s->last_stats = stats;
  s->has_stats = true;
  log_op(*st, kOpRepartition, payload);

  par::Writer w;
  w.put(stats.cut_before);
  w.put(stats.cut_after);
  w.put(stats.migrate);
  w.put(stats.imbalance_before);
  w.put(stats.imbalance_after);
  w.put(static_cast<std::int32_t>(stats.levels));
  // Echo the backend that actually ran, proving the selection round-trips.
  w.put(static_cast<std::uint8_t>(eng));
  return make_ok(kOpRepartition, w.take());
}

Reply Registry::op_get_metrics(const Bytes& payload) {
  par::TryReader r(payload);
  const auto id = r.get<std::uint32_t>();
  if (!id || !r.done())
    return make_error(Err::kBadPayload, "get_metrics expects {u32 session}");
  SessionState* st = find(*id);
  if (!st) return make_error(Err::kUnknownSession, "no such session");

  // Settle any deferred step metrics now (and cache them in the session).
  // After a post-step adaptation the deferred quantities are unrecoverable;
  // the reply then carries the partial report unchanged.
  std::visit(
      [&](auto& s) {
        using T = std::decay_t<decltype(s)>;
        if constexpr (std::is_same_v<T, Mesh2DState> ||
                      std::is_same_v<T, Mesh3DState>) {
          if (s.session.metrics_current(s.mesh))
            st->last_report = s.session.metrics(s.mesh);
        } else if constexpr (!std::is_same_v<T, GraphState> &&
                             !kIsFedState<T>) {
          if (s.session.metrics_current(s.run.mesh()))
            st->last_report = s.session.metrics(s.run.mesh());
        }
      },
      st->body);

  par::Writer w;
  par::put_string(w, kind_name(st->body));
  w.put(static_cast<std::uint8_t>(st->strategy));
  w.put(static_cast<std::uint8_t>(st->engine));
  w.put(st->parts);
  w.put(body_elements(st->body));
  w.put(st->ops_applied);
  w.put(static_cast<std::uint8_t>(st->last_report.has_value()));
  if (st->last_report) encode_step_report(w, *st->last_report);
  const auto* s = std::get_if<GraphState>(&st->body);
  w.put(static_cast<std::uint8_t>(s && s->has_stats));
  if (s && s->has_stats) {
    w.put(s->last_stats.cut_before);
    w.put(s->last_stats.cut_after);
    w.put(s->last_stats.migrate);
    w.put(s->last_stats.imbalance_before);
    w.put(s->last_stats.imbalance_after);
    w.put(static_cast<std::int32_t>(s->last_stats.levels));
  }
  return make_ok(kOpGetMetrics, w.take());
}

Reply Registry::op_get_assignment(const Bytes& payload) {
  par::TryReader r(payload);
  const auto id = r.get<std::uint32_t>();
  if (!id || !r.done())
    return make_error(Err::kBadPayload,
                      "get_assignment expects {u32 session}");
  SessionState* st = find(*id);
  if (!st) return make_error(Err::kUnknownSession, "no such session");

  const std::vector<part::PartId> assign = std::visit(
      [](const auto& s) -> std::vector<part::PartId> {
        using T = std::decay_t<decltype(s)>;
        if constexpr (std::is_same_v<T, GraphState>)
          return s.partition.assign;
        else if constexpr (std::is_same_v<T, Mesh2DState> ||
                           std::is_same_v<T, Mesh3DState>)
          return leaf_assignment(s.mesh);
        else if constexpr (kIsFedState<T>)
          // Leaf tags mirror the committed tree ownership, so this is the
          // shard's adopted partition in dense leaf order.
          return leaf_assignment(s.shard.run().mesh());
        else
          return leaf_assignment(s.run.mesh());
      },
      st->body);

  par::Writer w;
  encode_assignment(w, assign);
  return make_ok(kOpGetAssignment, w.take());
}

Reply Registry::op_checkpoint(const Bytes& payload) {
  par::TryReader r(payload);
  const auto id = r.get<std::uint32_t>();
  if (!id || !r.done())
    return make_error(Err::kBadPayload, "checkpoint expects {u32 session}");
  SessionState* st = find(*id);
  if (!st) return make_error(Err::kUnknownSession, "no such session");
  if (!st->checkpoint_ok)
    return make_error(Err::kBadState,
                      "replay log overflowed; checkpoint unavailable");

  par::Writer w;
  w.put(st->create_op);
  w.put_vector(st->create_payload);
  w.put(static_cast<std::uint32_t>(st->oplog.size()));
  for (const auto& [op, args] : st->oplog) {
    w.put(op);
    w.put_vector(args);
  }
  return make_ok(kOpCheckpoint, w.take());
}

Reply Registry::op_restore(const Bytes& payload) {
  par::TryReader r(payload);
  const auto create_op = r.get<std::uint16_t>();
  if (!create_op ||
      (*create_op != kOpCreateWorkload && *create_op != kOpCreateMesh &&
       *create_op != kOpCreateGraph && *create_op != kOpFedAttach))
    return make_error(Err::kBadPayload, "checkpoint has no create record");
  auto create_payload = r.get_vector<std::uint8_t>(limits_.max_frame_bytes);
  const auto count = r.get<std::uint32_t>();
  if (!create_payload || !count || *count > limits_.max_oplog_entries)
    return make_error(Err::kBadPayload, "malformed checkpoint");
  std::vector<std::pair<std::uint16_t, Bytes>> ops;
  ops.reserve(*count);
  for (std::uint32_t i = 0; i < *count; ++i) {
    const auto op = r.get<std::uint16_t>();
    if (!op || !is_mutating_op(*op))
      return make_error(Err::kBadPayload, "checkpoint replays a non-mutating op");
    auto args = r.get_vector<std::uint8_t>(limits_.max_frame_bytes);
    if (!args) return make_error(Err::kBadPayload, "malformed checkpoint");
    ops.emplace_back(*op, std::move(*args));
  }
  if (!r.done()) return make_error(Err::kBadPayload, "malformed checkpoint");

  // Replay the create and every logged op through the normal validated
  // handlers; the restored session accumulates its own (identical) oplog,
  // so it is itself checkpointable. The session stays hidden from shard
  // workers until the replay completes, so a concurrent request aimed at a
  // guessed id cannot observe (or close) a half-restored session.
  hide_next_create_ = true;
  const Reply created = dispatch(*create_op, *create_payload);
  hide_next_create_ = false;
  if (created.type == kTypeError) return created;
  par::TryReader cr(created.payload);
  const auto new_id = cr.get<std::uint32_t>();
  if (!new_id)
    return make_error(Err::kInternal, "create replay returned no session id");
  restoring_id_.store(*new_id, std::memory_order_relaxed);

  std::uint32_t replayed = 0;
  for (const auto& [op, args] : ops) {
    par::Writer w;
    w.put(*new_id);
    Bytes op_payload = w.take();
    op_payload.insert(op_payload.end(), args.begin(), args.end());
    const Reply rr = dispatch(op, op_payload);
    if (rr.type == kTypeError) {
      restoring_id_.store(0, std::memory_order_relaxed);
      erase_session(*new_id, /*even_hidden=*/true);
      return make_error(Err::kBadPayload,
                        "checkpoint replay failed at op " +
                            std::to_string(replayed));
    }
    ++replayed;
  }

  const std::int64_t elements = body_elements(find(*new_id)->body);
  // Reveal: from here on every shard worker can reach the session.
  {
    Shard& sh = *shards_[static_cast<std::size_t>(shard_of(*new_id))];
    util::MutexLock lock(sh.mutex);
    sh.sessions.find(*new_id)->second->hidden = false;
  }
  restoring_id_.store(0, std::memory_order_relaxed);

  par::Writer w;
  w.put(*new_id);
  w.put(elements);
  w.put(replayed);
  return make_ok(kOpRestore, w.take());
}

// ---- federation ops (docs/FEDERATION.md) ------------------------------------

namespace {

/// Visit the Fed shard of a session body; f is called with fed::Shard2D& or
/// fed::Shard3D&. Returns false (without calling f) for non-fed sessions.
template <typename F>
bool with_fed_shard(Body& body, F&& f) {
  return std::visit(
      [&](auto& s) {
        using T = std::decay_t<decltype(s)>;
        if constexpr (kIsFedState<T>) {
          f(s.shard);
          return true;
        } else {
          return false;
        }
      },
      body);
}

}  // namespace

Reply Registry::op_fed_attach(const Bytes& payload) {
  par::TryReader r(payload);
  std::string why;
  const auto att = decode_fed_attach(r, limits_, &why);
  if (!att || !r.done())
    return make_error(Err::kBadPayload,
                      why.empty() ? "malformed fed attach" : why);
  if (num_sessions() >= limits_.max_sessions)
    return make_error(Err::kLimitExceeded, "session limit reached");

  // Same pre-construction growth bound as op_create_workload: the run
  // refines toward its depth cap inside its constructor, so the worst case
  // must be bounded from the spec alone.
  const auto transient_fits = [&](std::int64_t roots) {
    return (roots << (att->spec.transient.max_level + 1)) <=
           limits_.max_elements;
  };
  const std::int64_t n = att->spec.transient.grid_n;
  const bool is3d = att->spec.kind == WorkloadKind::kTransient3D;
  if (!transient_fits(is3d ? 6 * n * n * n : 2 * n * n))
    return make_error(Err::kLimitExceeded,
                      "fed attach: fully refined mesh would exceed "
                      "max_elements");

  const engine::Kind eng = resolve_engine(att->spec.engine, limits_);
  std::optional<Body> body;
  if (is3d)
    body.emplace(Fed3DState{
        fed::Shard3D(pared::TransientRun3D(att->spec.transient),
                     att->rank, att->count)});
  else
    body.emplace(Fed2DState{
        fed::Shard2D(pared::TransientRun(att->spec.transient),
                     att->rank, att->count)});

  const std::int64_t elements = body_elements(*body);
  if (elements > limits_.max_elements)
    return make_error(Err::kLimitExceeded,
                      "workload mesh exceeds max_elements");
  const std::int64_t roots = std::visit(
      [](const auto& s) -> std::int64_t {
        using T = std::decay_t<decltype(s)>;
        if constexpr (kIsFedState<T>)
          return count_roots(s.shard.run().mesh());
        else
          return 0;
      },
      *body);
  if (att->count > roots)
    return make_error(Err::kBadPayload,
                      "shard count exceeds the workload's level-0 elements");

  std::uint64_t mesh_fp = 0;
  with_fed_shard(*body, [&](auto& shard) { mesh_fp = shard.mesh_fp(); });

  auto st = std::make_unique<SessionState>(std::move(*body));
  st->strategy = att->spec.strategy;
  st->engine = eng;
  st->parts = att->spec.parts;
  st->create_op = kOpFedAttach;
  st->create_payload = payload;
  // The spec leads the attach payload, so the canonical engine byte sits at
  // the same offset as in a kOpCreateWorkload record.
  st->create_payload[kWorkloadSpecEngineOffset] =
      static_cast<std::uint8_t>(eng);
  const std::uint32_t id = register_session(std::move(st));

  par::Writer w;
  w.put(id);
  w.put(elements);
  w.put(mesh_fp);
  return make_ok(kOpFedAttach, w.take());
}

Reply Registry::op_fed_advance(const Bytes& payload) {
  par::TryReader r(payload);
  const auto id = r.get<std::uint32_t>();
  if (!id || !r.done())
    return make_error(Err::kBadPayload, "fed_advance expects {u32 session}");
  SessionState* st = find(*id);
  if (!st) return make_error(Err::kUnknownSession, "no such session");

  std::string why;
  std::optional<fed::Shard2D::AdvanceResult> out;
  const bool is_fed = with_fed_shard(st->body, [&](auto& shard) {
    if (auto res = shard.advance(&why))
      out = {res->step, res->t, res->bisections, res->merges, res->elements,
             res->mesh_fp};
  });
  if (!is_fed)
    return make_error(Err::kBadState, "not a federated shard session");
  if (!out) return make_error(Err::kBadState, why);

  const std::int64_t elements = out->elements;
  if (elements > limits_.max_elements) {
    erase_session(*id, /*even_hidden=*/false);
    return make_error(Err::kLimitExceeded,
                      "adapted mesh exceeds max_elements; session closed");
  }
  st->cached_elements.store(elements, std::memory_order_relaxed);
  log_op(*st, kOpFedAdvance, payload);

  par::Writer w;
  w.put(elements);
  w.put(out->bisections);
  w.put(out->merges);
  w.put(out->t);
  w.put(static_cast<std::int32_t>(out->step));
  w.put(out->mesh_fp);
  return make_ok(kOpFedAdvance, w.take());
}

Reply Registry::op_fed_interface(const Bytes& payload) {
  par::TryReader r(payload);
  const auto id = r.get<std::uint32_t>();
  if (!id || !r.done())
    return make_error(Err::kBadPayload,
                      "fed_interface expects {u32 session}");
  SessionState* st = find(*id);
  if (!st) return make_error(Err::kUnknownSession, "no such session");

  std::optional<check::FedShardReport> rep;
  const bool is_fed = with_fed_shard(
      st->body, [&](auto& shard) { rep = shard.interface_report(); });
  if (!is_fed)
    return make_error(Err::kBadState, "not a federated shard session");

  // Read-only gather: not logged, invisible to checkpoints.
  par::Writer w;
  encode_fed_report(w, *rep);
  return make_ok(kOpFedInterface, w.take());
}

Reply Registry::op_fed_plan(const Bytes& payload) {
  par::TryReader r(payload);
  const auto id = r.get<std::uint32_t>();
  if (!id)
    return make_error(Err::kBadPayload,
                      "fed_plan expects {u32 session, i32[] assignment}");
  auto next = decode_assignment(
      r, static_cast<std::uint64_t>(limits_.max_graph_vertices));
  if (!next || !r.done())
    return make_error(Err::kBadPayload,
                      "fed_plan expects {u32 session, i32[] assignment}");
  SessionState* st = find(*id);
  if (!st) return make_error(Err::kUnknownSession, "no such session");

  std::string why;
  std::optional<FedPlanReply> rep;
  bool staged = false;
  const bool is_fed = with_fed_shard(st->body, [&](auto& shard) {
    staged = shard.plan_staged();
    if (staged) return;
    if (auto res = shard.apply_plan(*next, &why)) {
      FedPlanReply out;
      out.elements_out = res->elements_out;
      out.outgoing.reserve(res->outgoing.size());
      for (auto& o : res->outgoing)
        out.outgoing.push_back(
            FedTree{o.dest, o.root, std::move(o.payload)});
      rep = std::move(out);
    }
  });
  if (!is_fed)
    return make_error(Err::kBadState, "not a federated shard session");
  if (staged)
    return make_error(Err::kBadState, "a migration plan is already staged");
  if (!rep) return make_error(Err::kBadPayload, why);
  log_op(*st, kOpFedPlan, payload);

  par::Writer w;
  encode_fed_plan_reply(w, *rep);
  return make_ok(kOpFedPlan, w.take());
}

Reply Registry::op_fed_exchange(const Bytes& payload) {
  par::TryReader r(payload);
  const auto id = r.get<std::uint32_t>();
  if (!id)
    return make_error(Err::kBadPayload,
                      "fed_exchange expects {u32 session, exchange body}");
  const auto ex = decode_fed_exchange(r, limits_);
  if (!ex || !r.done())
    return make_error(Err::kBadPayload, "malformed fed exchange");
  SessionState* st = find(*id);
  if (!st) return make_error(Err::kUnknownSession, "no such session");

  // Pure validation: the replica already holds every element, so a hostile
  // payload is rejected with a typed error and the session stays live with
  // no state change (ownership flips only at commit).
  std::string why;
  bool staged = true;
  std::int64_t accepted = 0;
  std::int64_t leaves_in = 0;
  bool rejected = false;
  const bool is_fed = with_fed_shard(st->body, [&](auto& shard) {
    if (!shard.plan_staged()) {
      staged = false;
      return;
    }
    for (const FedTree& t : ex->trees) {
      const auto info = shard.ingest(ex->src, t.root, t.payload.data(),
                                     t.payload.size(), &why);
      if (!info) {
        rejected = true;
        return;
      }
      ++accepted;
      leaves_in += info->leaves;
    }
  });
  if (!is_fed)
    return make_error(Err::kBadState, "not a federated shard session");
  if (!staged)
    return make_error(Err::kBadState, "no migration plan staged");
  if (rejected) return make_error(Err::kAuditFailed, why);

  par::Writer w;
  w.put(accepted);
  w.put(leaves_in);
  return make_ok(kOpFedExchange, w.take());
}

Reply Registry::op_fed_commit(const Bytes& payload) {
  par::TryReader r(payload);
  const auto id = r.get<std::uint32_t>();
  if (!id || !r.done())
    return make_error(Err::kBadPayload, "fed_commit expects {u32 session}");
  SessionState* st = find(*id);
  if (!st) return make_error(Err::kUnknownSession, "no such session");

  std::string why;
  std::optional<fed::Shard2D::CommitResult> out;
  const bool is_fed = with_fed_shard(st->body, [&](auto& shard) {
    if (auto res = shard.commit(&why))
      out = {res->elements, res->owned_leaves, res->assign_fp, res->mesh_fp};
  });
  if (!is_fed)
    return make_error(Err::kBadState, "not a federated shard session");
  if (!out) return make_error(Err::kBadState, why);
  log_op(*st, kOpFedCommit, payload);

  par::Writer w;
  w.put(out->elements);
  w.put(out->owned_leaves);
  w.put(out->assign_fp);
  w.put(out->mesh_fp);
  return make_ok(kOpFedCommit, w.take());
}

Reply Registry::op_close_session(const Bytes& payload) {
  par::TryReader r(payload);
  const auto id = r.get<std::uint32_t>();
  if (!id || !r.done())
    return make_error(Err::kBadPayload, "close expects {u32 session}");
  if (!erase_session(*id, /*even_hidden=*/false))
    return make_error(Err::kUnknownSession, "no such session");
  return make_ok(kOpCloseSession, Bytes{});
}

Reply Registry::op_list_sessions(const Bytes& payload) {
  if (!payload.empty())
    return make_error(Err::kBadPayload, "list takes no payload");
  // Snapshot each shard under its lock, then merge by id so the wire order
  // matches the serial single-map iteration exactly. Only immutable fields
  // (strategy, parts, the variant's discriminator) and the atomic element
  // cache are read — a shard worker may be mid-step on any listed session.
  struct Row {
    std::uint32_t id;
    const char* kind;
    std::uint8_t strategy;
    std::int32_t parts;
    std::int64_t elements;
  };
  std::vector<Row> rows;
  rows.reserve(num_sessions());
  for (const auto& shard : shards_) {
    util::MutexLock lock(shard->mutex);
    for (const auto& [id, st] : shard->sessions) {
      if (st->hidden) continue;
      rows.push_back({id, kind_name(st->body),
                      static_cast<std::uint8_t>(st->strategy), st->parts,
                      st->cached_elements.load(std::memory_order_relaxed)});
    }
  }
  std::sort(rows.begin(), rows.end(),
            [](const Row& a, const Row& b) { return a.id < b.id; });
  par::Writer w;
  w.put(static_cast<std::uint32_t>(rows.size()));
  for (const Row& row : rows) {
    w.put(row.id);
    par::put_string(w, row.kind);
    w.put(row.strategy);
    w.put(row.parts);
    w.put(row.elements);
  }
  return make_ok(kOpListSessions, w.take());
}

Reply Registry::op_shutdown(const Bytes& payload) {
  if (!payload.empty())
    return make_error(Err::kBadPayload, "shutdown takes no payload");
  shutting_down_.store(true, std::memory_order_relaxed);
  return make_ok(kOpShutdown, Bytes{});
}

}  // namespace pnr::svc
