#pragma once
// pnr::svc payload codecs: the typed bodies carried inside wire frames.
// Encoding extends par::Writer (the message-passing serializer) so the
// service and the rank simulator share one byte layout; decoding runs on
// par::TryReader and NEVER aborts — malformed, truncated or
// limit-exceeding input comes back as nullopt with no partial state.
// Structures that feed a session (meshes, graphs, assignments) are
// validated here down to what the downstream constructors PNR_REQUIRE,
// then audited again with pnr::check; bulk range scans run on the
// pnr::exec pool (deterministic at any width).

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "check/check_fed.hpp"
#include "graph/csr.hpp"
#include "mesh/tet_mesh.hpp"
#include "mesh/tri_mesh.hpp"
#include "pared/session.hpp"
#include "pared/workloads.hpp"
#include "parallel/serialize.hpp"
#include "partition/partition.hpp"
#include "svc/wire.hpp"

namespace pnr::svc {

// ---- meshes -----------------------------------------------------------------

/// A mesh as it crosses the wire: flat vertex coordinates plus element
/// connectivity (the .node/.ele content), no refinement history.
struct FlatMesh {
  std::int32_t dim = 2;               ///< 2 (triangles) or 3 (tets)
  std::vector<double> coords;         ///< n × dim, row-major
  std::vector<std::int32_t> elems;    ///< m × (dim+1), 0-based
};

void encode_mesh(par::Writer& w, const FlatMesh& m);
std::optional<FlatMesh> decode_mesh(par::TryReader& r, const Limits& limits);

/// Current leaves of an adapted mesh as a FlatMesh (alive vertices densely
/// renumbered) — the export/upload counterpart of mesh::write_triangle_files.
FlatMesh flatten_mesh(const mesh::TriMesh& mesh);
FlatMesh flatten_mesh(const mesh::TetMesh& mesh);

/// Build a finalized 0-level mesh. Everything TriMesh/TetMesh construction
/// PNR_REQUIREs (index ranges, distinct corners, nonzero measure, manifold
/// edges/faces) is pre-validated; failure returns nullopt with `why` set.
std::optional<mesh::TriMesh> build_tri_mesh(const FlatMesh& m,
                                            std::string* why = nullptr);
std::optional<mesh::TetMesh> build_tet_mesh(const FlatMesh& m,
                                            std::string* why = nullptr);

// ---- graphs -----------------------------------------------------------------

void encode_graph(par::Writer& w, const graph::Graph& g);

/// Decode + fully validate a CSR graph (shape, ranges, symmetry via
/// check_graph, nonnegative weights). nullopt on any violation.
std::optional<graph::Graph> decode_graph(par::TryReader& r,
                                         const Limits& limits,
                                         std::string* why = nullptr);

// ---- assignments and reports ------------------------------------------------

void encode_assignment(par::Writer& w, const std::vector<part::PartId>& a);
std::optional<std::vector<part::PartId>> decode_assignment(
    par::TryReader& r, std::uint64_t max_size);

void encode_step_report(par::Writer& w, const pared::StepReport& report);
std::optional<pared::StepReport> decode_step_report(par::TryReader& r);

// ---- session specs ----------------------------------------------------------

enum class WorkloadKind : std::uint8_t {
  kTransient2D = 0,
  kCorner2D = 1,
  kCorner3D = 2,
  kTransient3D = 3,
};

/// kOpCreateWorkload payload: which paper workload to instantiate
/// server-side, the repartitioning strategy driving it, and the knobs that
/// make the run bit-reproducible against an in-process session.
struct WorkloadSpec {
  WorkloadKind kind = WorkloadKind::kTransient2D;
  pared::Strategy strategy = pared::Strategy::kPNR;
  std::int32_t parts = 8;
  std::uint64_t session_seed = 1;
  pared::TransientOptions transient;  ///< transient kinds (incl. mesh seed)
  pared::CornerOptions corner;        ///< corner kinds
  std::int32_t corner_grid_n = 0;     ///< 0 = the kind's default
  double alpha = 0.1;                 ///< core::PnrOptions for kPNR
  double beta = 0.8;
  /// engine::Kind wire value for the kPNR strategy; kEngineDefault asks the
  /// server to substitute its configured default.
  std::uint8_t engine = kEngineDefault;
};

void encode_workload_spec(par::Writer& w, const WorkloadSpec& spec);
std::optional<WorkloadSpec> decode_workload_spec(par::TryReader& r,
                                                 const Limits& limits);

/// Fixed byte offset of WorkloadSpec::engine inside an encoded spec (every
/// earlier field is fixed width; the engine byte is encoded last).
inline constexpr std::size_t kWorkloadSpecEngineOffset =
    1 + 1 + 4 + 8 +              // kind, strategy, parts, session_seed
    4 + 8 + 8 + 8 + 8 + 4 + 4 + 8 +  // transient
    8 + 8 + 4 + 8 +              // corner
    4 + 8 + 8;                   // corner_grid_n, alpha, beta

/// Shared head of kOpCreateMesh / kOpCreateGraph payloads.
struct CreateHead {
  pared::Strategy strategy = pared::Strategy::kPNR;
  std::int32_t parts = 8;
  std::uint64_t session_seed = 1;
  double alpha = 0.1;
  double beta = 0.8;
  /// engine::Kind wire value (kEngineDefault = server default). Encoded
  /// last, at byte offset kCreateHeadEngineOffset of the payload.
  std::uint8_t engine = kEngineDefault;
};

/// Fixed byte offset of CreateHead::engine inside an encoded create
/// payload: u8 strategy + i32 parts + u64 seed + f64 alpha + f64 beta.
inline constexpr std::size_t kCreateHeadEngineOffset = 1 + 4 + 8 + 8 + 8;

void encode_create_head(par::Writer& w, const CreateHead& head);
std::optional<CreateHead> decode_create_head(par::TryReader& r,
                                             const Limits& limits);

// ---- federation (docs/FEDERATION.md) ----------------------------------------

/// kOpFedAttach payload: the replicated workload spec plus this daemon's
/// shard slot. Only the transient kinds federate — replication needs a
/// deterministic server-side workload, so uploaded meshes/graphs cannot.
/// The spec is encoded first, so its engine byte sits at the same
/// kWorkloadSpecEngineOffset the checkpoint canonicalizer expects.
struct FedAttach {
  WorkloadSpec spec;
  std::uint16_t rank = 0;
  std::uint16_t count = 1;
};

void encode_fed_attach(par::Writer& w, const FedAttach& a);
/// Decode + validate: full WorkloadSpec bounds (as kOpCreateWorkload),
/// transient kind only, count in [1, max_parts], rank < count, and
/// spec.parts == count (shards are the parts).
std::optional<FedAttach> decode_fed_attach(par::TryReader& r,
                                           const Limits& limits,
                                           std::string* why = nullptr);

/// kOpFedInterface success reply: one shard's coarse-graph slice.
void encode_fed_report(par::Writer& w, const check::FedShardReport& rep);
std::optional<check::FedShardReport> decode_fed_report(par::TryReader& r,
                                                       const Limits& limits);

/// One migrating refinement-history subtree on the wire.
struct FedTree {
  std::int32_t dest = 0;   ///< destination shard (kOpFedPlan replies only)
  mesh::ElemIdx root = 0;  ///< initial element rooting the subtree
  std::vector<std::uint8_t> payload;  ///< fed::pack_subtree bytes
};

/// kOpFedPlan success reply: the leaves this plan moves off the shard and
/// the packed subtrees, ready to be relayed to their destinations.
struct FedPlanReply {
  std::int64_t elements_out = 0;
  std::vector<FedTree> outgoing;
};

void encode_fed_plan_reply(par::Writer& w, const FedPlanReply& rep);
std::optional<FedPlanReply> decode_fed_plan_reply(par::TryReader& r,
                                                  const Limits& limits);

/// kOpFedExchange request body (after the u32 session id): the source
/// shard and the subtrees it shipped here (dest fields unused).
struct FedExchange {
  std::int32_t src = 0;
  std::vector<FedTree> trees;
};

void encode_fed_exchange(par::Writer& w, const FedExchange& ex);
std::optional<FedExchange> decode_fed_exchange(par::TryReader& r,
                                               const Limits& limits);

}  // namespace pnr::svc
