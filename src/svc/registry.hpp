#pragma once
// pnr::svc session registry: the transport-free core of the service. It
// maps numeric session ids to live adaptive-repartitioning state (paper
// workloads, uploaded meshes, uploaded graphs) and dispatches decoded
// request payloads against them. Registry::handle is the single entry
// point for every op — servers, tests and fuzzers feed it (op, payload)
// pairs directly, so the entire request surface is exercisable without a
// socket. It never aborts on input: every malformed, limit-exceeding or
// misdirected request comes back as a typed error Reply.
//
// Checkpointing is event-sourced: every session records its create payload
// plus the argument bytes of each mutating op (advance/step/adapt/
// repartition). Because workloads, meshes and partitioners are
// deterministic (seeded util::Rng, deterministic pnr::exec reductions), a
// checkpoint replayed through the same validated handlers reconstructs a
// bit-identical session — including its RNG stream — on any server.
//
// Threading (docs/SERVICE.md, "Sharding"): sessions live in `shards`
// fixed-size shards, pinned by id (shard_of). The contract mirrors the
// sharded server's routing:
//   * control-plane ops — ping, the three creates, fed attach, restore,
//     list_sessions, shutdown, unknown ops — must all be issued from one
//     *logical stream*: one caller at a time, each call fully ordered
//     against the others (the server guarantees this by running the queued
//     control ops — is_queued_control_op — on a single dedicated FIFO, and
//     everything else control-plane on the poll thread, which also feeds
//     that FIFO; id allocation therefore still happens in frame-arrival
//     order);
//   * session ops (is_session_op) may run concurrently from any threads
//     provided at most one request per session id is in flight at a time —
//     the server guarantees this by pinning each id to one shard queue and
//     draining each queue with a single task.
// With shards == 1 and a single caller the behavior (including the wire
// bytes of every reply) is identical to the pre-sharding registry.

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "svc/codec.hpp"
#include "svc/wire.hpp"
#include "util/thread_annotations.hpp"

namespace pnr::svc {

/// One decoded response: a frame type (op|kReplyBit or kTypeError) plus the
/// payload to put on the wire.
struct Reply {
  std::uint16_t type = 0;
  Bytes payload;
};

class Registry {
 public:
  explicit Registry(Limits limits = {}, int shards = 1);
  ~Registry();
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Dispatch one request. `op` is the frame type of a request frame whose
  /// CRC/version already checked out; `payload` is its body. Never throws,
  /// never aborts — all failures are typed error replies. Callable
  /// concurrently only under the contract above (one in-flight request per
  /// session, control plane single-threaded).
  Reply handle(std::uint16_t op, const Bytes& payload);

  /// True once a kOpShutdown has been accepted; the transport should stop
  /// accepting new connections and drain.
  bool shutting_down() const {
    return shutting_down_.load(std::memory_order_relaxed);
  }

  std::size_t num_sessions() const {
    return num_sessions_.load(std::memory_order_relaxed);
  }
  const Limits& limits() const { return limits_; }

  int num_shards() const { return static_cast<int>(shards_.size()); }

  /// Shard pinning rule: sessions are pinned by id, round-robin. The
  /// server's router and the registry's own find() must agree on this.
  int shard_of(std::uint32_t id) const {
    return static_cast<int>(id % shards_.size());
  }

  /// Ops that target one existing session ({u32 id, ...} payloads) and may
  /// therefore run on that session's shard worker. Everything else is
  /// control plane.
  static bool is_session_op(std::uint16_t op);

  /// Control-plane ops heavy enough to leave the poll thread (workload mesh
  /// construction, checkpoint replay): the three creates, restore, and the
  /// federation attach. The server runs these on one dedicated FIFO so the
  /// poll thread stays pure I/O while id allocation keeps frame-arrival
  /// order (create replies are shard-count-invariant).
  static bool is_queued_control_op(std::uint16_t op);

  /// The leading u32 session id of a session-op payload, if present. A
  /// too-short payload yields nullopt (the op will fail validation wherever
  /// it runs, so routing it anywhere is fine).
  static std::optional<std::uint32_t> peek_session(const Bytes& payload);

 private:
  struct SessionState;
  struct Shard;

  Reply dispatch(std::uint16_t op, const Bytes& payload);

  Reply op_ping(const Bytes& payload);
  Reply op_create_workload(const Bytes& payload);
  Reply op_create_mesh(const Bytes& payload);
  Reply op_create_graph(const Bytes& payload);
  Reply op_advance(const Bytes& payload);
  Reply op_step(const Bytes& payload);
  Reply op_adapt(const Bytes& payload);
  Reply op_repartition(const Bytes& payload);
  Reply op_get_metrics(const Bytes& payload);
  Reply op_get_assignment(const Bytes& payload);
  Reply op_checkpoint(const Bytes& payload);
  Reply op_restore(const Bytes& payload);
  Reply op_close_session(const Bytes& payload);
  Reply op_list_sessions(const Bytes& payload);
  Reply op_shutdown(const Bytes& payload);
  Reply op_fed_attach(const Bytes& payload);
  Reply op_fed_advance(const Bytes& payload);
  Reply op_fed_interface(const Bytes& payload);
  Reply op_fed_plan(const Bytes& payload);
  Reply op_fed_exchange(const Bytes& payload);
  Reply op_fed_commit(const Bytes& payload);

  SessionState* find(std::uint32_t id);
  /// Remove a session (shard-locked). Hidden sessions — mid-restore — are
  /// untouchable unless `even_hidden`, so a guessed id cannot close a
  /// half-replayed restore. Returns whether a session was removed.
  bool erase_session(std::uint32_t id, bool even_hidden);
  /// Record a mutating op (its args, minus the leading session id) into the
  /// session's replay log; on overflow the session stays live but loses
  /// checkpointability.
  void log_op(SessionState& st, std::uint16_t op, const Bytes& payload);
  std::uint32_t register_session(std::unique_ptr<SessionState> st);

  Limits limits_;
  /// Immutable after the constructor (only the Shards' mutex-guarded
  /// contents change); each Shard carries its own annotated lock.
  std::vector<std::unique_ptr<Shard>> shards_;
  /// Touched only by the serialized control stream (the server's dedicated
  /// control FIFO; a single task drains it, and the queue mutex handoff
  /// orders successive tasks across pool workers).
  std::uint32_t next_id_ = 1;
  bool hide_next_create_ = false;  ///< restore replay marker
  /// Session id a restore replay is targeting: its own dispatches must see
  /// the hidden session, shard workers must not.
  std::atomic<std::uint32_t> restoring_id_{0};
  std::atomic<std::size_t> num_sessions_{0};
  std::atomic<bool> shutting_down_{false};
};

/// Dotted prof span name for an op ("svc.op.step"); "svc.op.unknown" for
/// types outside the table.
const char* op_span_name(std::uint16_t op);

}  // namespace pnr::svc
