#pragma once
// pnr::svc session registry: the transport-free core of the service. It
// maps numeric session ids to live adaptive-repartitioning state (paper
// workloads, uploaded meshes, uploaded graphs) and dispatches decoded
// request payloads against them. Registry::handle is the single entry
// point for every op — servers, tests and fuzzers feed it (op, payload)
// pairs directly, so the entire request surface is exercisable without a
// socket. It never aborts on input: every malformed, limit-exceeding or
// misdirected request comes back as a typed error Reply.
//
// Checkpointing is event-sourced: every session records its create payload
// plus the argument bytes of each mutating op (advance/step/adapt/
// repartition). Because workloads, meshes and partitioners are
// deterministic (seeded util::Rng, deterministic pnr::exec reductions), a
// checkpoint replayed through the same validated handlers reconstructs a
// bit-identical session — including its RNG stream — on any server.

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "svc/codec.hpp"
#include "svc/wire.hpp"

namespace pnr::svc {

/// One decoded response: a frame type (op|kReplyBit or kTypeError) plus the
/// payload to put on the wire.
struct Reply {
  std::uint16_t type = 0;
  Bytes payload;
};

class Registry {
 public:
  explicit Registry(Limits limits = {});
  ~Registry();
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Dispatch one request. `op` is the frame type of a request frame whose
  /// CRC/version already checked out; `payload` is its body. Never throws,
  /// never aborts — all failures are typed error replies.
  Reply handle(std::uint16_t op, const Bytes& payload);

  /// True once a kOpShutdown has been accepted; the transport should stop
  /// accepting new connections and drain.
  bool shutting_down() const { return shutting_down_; }

  std::size_t num_sessions() const { return sessions_.size(); }
  const Limits& limits() const { return limits_; }

 private:
  struct SessionState;

  Reply dispatch(std::uint16_t op, const Bytes& payload);

  Reply op_ping(const Bytes& payload);
  Reply op_create_workload(const Bytes& payload);
  Reply op_create_mesh(const Bytes& payload);
  Reply op_create_graph(const Bytes& payload);
  Reply op_advance(const Bytes& payload);
  Reply op_step(const Bytes& payload);
  Reply op_adapt(const Bytes& payload);
  Reply op_repartition(const Bytes& payload);
  Reply op_get_metrics(const Bytes& payload);
  Reply op_get_assignment(const Bytes& payload);
  Reply op_checkpoint(const Bytes& payload);
  Reply op_restore(const Bytes& payload);
  Reply op_close_session(const Bytes& payload);
  Reply op_list_sessions(const Bytes& payload);
  Reply op_shutdown(const Bytes& payload);

  SessionState* find(std::uint32_t id);
  /// Record a mutating op (its args, minus the leading session id) into the
  /// session's replay log; on overflow the session stays live but loses
  /// checkpointability.
  void log_op(SessionState& st, std::uint16_t op, const Bytes& payload);
  std::uint32_t register_session(std::unique_ptr<SessionState> st);

  Limits limits_;
  std::map<std::uint32_t, std::unique_ptr<SessionState>> sessions_;
  std::uint32_t next_id_ = 1;
  bool shutting_down_ = false;
};

/// Dotted prof span name for an op ("svc.op.step"); "svc.op.unknown" for
/// types outside the table.
const char* op_span_name(std::uint16_t op);

}  // namespace pnr::svc
