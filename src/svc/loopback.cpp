#include "svc/loopback.hpp"

#include <fcntl.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>

namespace pnr::svc {

namespace {

bool make_pair(int fds[2]) {
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) < 0) return false;
  for (int i = 0; i < 2; ++i) {
    const int flags = ::fcntl(fds[i], F_GETFL, 0);
    if (flags < 0 || ::fcntl(fds[i], F_SETFL, flags | O_NONBLOCK) < 0) {
      ::close(fds[0]);
      ::close(fds[1]);
      return false;
    }
  }
  return true;
}

}  // namespace

bool connect_loopback(Server& server, Client& client) {
  int fds[2];
  if (!make_pair(fds)) return false;
  server.adopt(fds[0]);
  client.adopt(fds[1]);
  client.set_pump([&server] { server.poll_once(0); });
  return true;
}

int adopt_loopback_raw(Server& server) {
  int fds[2];
  if (!make_pair(fds)) return -1;
  server.adopt(fds[0]);
  return fds[1];
}

int adopt_client_raw(Client& client) {
  int fds[2];
  if (!make_pair(fds)) return -1;
  client.adopt(fds[0]);
  return fds[1];
}

bool raw_write(int fd, const Bytes& bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n =
        ::send(fd, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) return false;
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

bool raw_send(int fd, const Bytes& bytes, Server& server) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n =
        ::send(fd, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR)) {
      server.poll_once(0);
      continue;
    }
    return false;
  }
  server.poll_once(0);
  return true;
}

bool raw_recv(int fd, Bytes& out, Server& server) {
  server.poll_once(0);
  std::uint8_t buf[65536];
  while (true) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n > 0) {
      out.insert(out.end(), buf, buf + n);
      continue;
    }
    if (n == 0) return false;  // peer closed
    return true;               // EAGAIN: nothing more right now
  }
}

void raw_close(int fd) {
  if (fd >= 0) ::close(fd);
}

}  // namespace pnr::svc
