#pragma once
// In-process loopback plumbing for hermetic tests and benches: a real
// Server and a real Client joined by a socketpair, no filesystem socket and
// no extra thread. The client's pump callback runs the server's poll loop
// whenever a call would block, so a full request/reply round trip happens
// on one thread, deterministically.
//
// The raw_* helpers expose one unframed end of such a pair for byte-level
// robustness tests (truncated/bit-flipped/garbage frames). They live here —
// not in the tests — so raw socket syscalls stay confined to src/svc/
// (scripts/lint.py, rule raw-socket).

#include "svc/client.hpp"
#include "svc/server.hpp"

namespace pnr::svc {

/// Join client and server through a socketpair and install a pump that
/// services the server whenever the client blocks. False on syscall failure.
bool connect_loopback(Server& server, Client& client);

/// Create a socketpair, hand one end to the server, return the other
/// (non-blocking; caller must raw_close it).
int adopt_loopback_raw(Server& server);

/// Join `client` to a socketpair with no server behind it; the caller plays
/// the server by raw_write()ing reply frames to the returned end before the
/// client call reads them. For malformed-reply robustness tests. Returns -1
/// on syscall failure; caller must raw_close the fd.
int adopt_client_raw(Client& client);

/// Write all of `bytes` to a raw loopback end with nothing pumping the
/// peer. False if the socket buffer fills or the peer closed.
bool raw_write(int fd, const Bytes& bytes);

/// Write all of `bytes` to a raw loopback end, running `server`'s loop when
/// the send buffer fills. False if the peer closed the connection.
bool raw_send(int fd, const Bytes& bytes, Server& server);

/// Drain whatever is currently readable (after servicing `server`).
/// Appends to `out`; returns false once the peer has closed.
bool raw_recv(int fd, Bytes& out, Server& server);

void raw_close(int fd);

}  // namespace pnr::svc
