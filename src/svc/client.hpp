#pragma once
// pnr::svc client: framed request/reply over a connected stream fd. One
// class serves both deployment shapes:
//   * pnr_client connects to a daemon's Unix socket (connect_unix) and
//     blocks in poll(2) while waiting;
//   * hermetic tests/benches adopt one end of a socketpair and install a
//     pump callback — invoked whenever a call would block — that runs the
//     in-process Server's poll_once. Request handling stays single-threaded
//     and deterministic; no background thread is ever spawned.
//
// Every RPC returns std::optional; on failure last_error() carries either
// the server's typed error frame or a local transport error.

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "svc/codec.hpp"
#include "svc/wire.hpp"

namespace pnr::svc {

/// Connection retry policy. A federation coordinator races its daemons'
/// startup, so connect may keep retrying refused/missing endpoints for up
/// to retry_ms, sleeping backoff_ms between attempts (doubling up to
/// 32× so a long deadline does not spin). 0 = one attempt (legacy).
struct ConnectOptions {
  int retry_ms = 0;
  int backoff_ms = 10;
};

class Client {
 public:
  Client() = default;
  ~Client();
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Connect to a daemon's Unix-domain socket.
  bool connect_unix(const std::string& path, std::string* error = nullptr,
                    ConnectOptions retry = {});

  /// Connect to a daemon's TCP listener (Server::listen_tcp).
  bool connect_tcp(const std::string& host, std::uint16_t port,
                   std::string* error = nullptr, ConnectOptions retry = {});

  /// Take ownership of a connected stream fd (socketpair end).
  void adopt(int fd);

  /// Called whenever an I/O step would block (single-threaded in-process
  /// setups run the server loop here). Without a pump, the client blocks
  /// in poll(2) instead.
  void set_pump(std::function<void()> pump) { pump_ = std::move(pump); }

  bool connected() const { return fd_ >= 0; }
  void close();

  /// Last failure: a typed server error (code + detail) or a transport
  /// error (empty detail, transport() set).
  struct Failure {
    Err code = Err::kInternal;
    std::string detail;
    std::string transport;
  };
  const Failure& last_error() const { return error_; }

  /// One framed round trip. nullopt on transport failure or a kTypeError
  /// reply (details in last_error()).
  std::optional<Bytes> call(std::uint16_t op, const Bytes& payload);

  // ---- typed RPCs -----------------------------------------------------------

  struct Created {
    std::uint32_t session = 0;
    std::int64_t elements = 0;
  };
  struct AdvanceInfo {
    std::int64_t elements = 0;
    std::int64_t refined = 0;
    std::int64_t coarsened = 0;
    double position = 0.0;  ///< time (transient) or level (corner)
  };
  struct AdaptInfo {
    std::int64_t changed = 0;
    std::int64_t elements = 0;
  };
  struct RepartitionInfo {
    std::int64_t cut_before = 0;
    std::int64_t cut_after = 0;
    std::int64_t migrate = 0;
    double imbalance_before = 0.0;
    double imbalance_after = 0.0;
    std::int32_t levels = 0;
    /// Wire value of the engine that actually ran (repartition replies
    /// only; kEngineDefault inside Metrics::last_repartition, where the
    /// stats block carries no engine echo).
    std::uint8_t engine = kEngineDefault;
  };
  struct Metrics {
    std::string kind;
    pared::Strategy strategy = pared::Strategy::kPNR;
    std::uint8_t engine = 0;  ///< session-default engine wire value
    std::int32_t parts = 0;
    std::int64_t elements = 0;
    std::int64_t ops_applied = 0;
    std::optional<pared::StepReport> last_report;
    std::optional<RepartitionInfo> last_repartition;
  };
  struct SessionInfo {
    std::uint32_t session = 0;
    std::string kind;
    pared::Strategy strategy = pared::Strategy::kPNR;
    std::int32_t parts = 0;
    std::int64_t elements = 0;
  };
  struct Restored {
    std::uint32_t session = 0;
    std::int64_t elements = 0;
    std::uint32_t replayed = 0;
  };
  // ---- federation (docs/FEDERATION.md) --------------------------------------
  struct FedAttached {
    std::uint32_t session = 0;
    std::int64_t elements = 0;
    std::uint64_t mesh_fp = 0;  ///< replica fingerprint for cross-shard audit
  };
  struct FedAdvanceInfo {
    std::int64_t elements = 0;
    std::int64_t refined = 0;
    std::int64_t coarsened = 0;
    double t = 0.0;
    std::int32_t step = 0;
    std::uint64_t mesh_fp = 0;
  };
  struct FedExchangeInfo {
    std::int64_t accepted = 0;   ///< subtrees verified against the replica
    std::int64_t leaves_in = 0;  ///< leaves whose ownership arrives on commit
  };
  struct FedCommitInfo {
    std::int64_t elements = 0;
    std::int64_t owned_leaves = 0;
    std::uint64_t assign_fp = 0;  ///< fingerprint of the committed ownership
    std::uint64_t mesh_fp = 0;
  };

  bool ping();
  std::optional<Created> create_workload(const WorkloadSpec& spec);
  std::optional<Created> create_mesh(const CreateHead& head,
                                     const FlatMesh& mesh);
  /// `coords`/`dim` attach the optional coordinate block the geometric
  /// engines need (dim 0 = none; else coords must be n×dim centroids).
  std::optional<Created> create_graph(const CreateHead& head,
                                      const graph::Graph& g,
                                      const std::vector<double>& coords = {},
                                      int dim = 0);
  std::optional<AdvanceInfo> advance(std::uint32_t session);
  std::optional<pared::StepReport> step(std::uint32_t session);
  /// mode 0 = refine, 1 = coarsen.
  std::optional<AdaptInfo> adapt(std::uint32_t session, std::uint8_t mode,
                                 const std::vector<mesh::ElemIdx>& marks);
  /// `engine` is an engine::Kind wire value; kEngineDefault keeps the
  /// session's default backend.
  std::optional<RepartitionInfo> repartition(
      std::uint32_t session, std::uint8_t engine = kEngineDefault);
  std::optional<Metrics> get_metrics(std::uint32_t session);
  std::optional<std::vector<part::PartId>> get_assignment(
      std::uint32_t session);
  std::optional<Bytes> checkpoint(std::uint32_t session);
  std::optional<Restored> restore(const Bytes& checkpoint);
  bool close_session(std::uint32_t session);
  std::optional<std::vector<SessionInfo>> list_sessions();
  bool shutdown_server();

  /// Attach this daemon as shard `rank` of `count` for a federated transient
  /// workload. spec.parts must equal `count`.
  std::optional<FedAttached> fed_attach(const FedAttach& attach);
  std::optional<FedAdvanceInfo> fed_advance(std::uint32_t session);
  /// The shard's view of the federated coarse graph: owned vertices plus
  /// primary/echo interface edges (read-only, never logged).
  std::optional<check::FedShardReport> fed_interface(std::uint32_t session);
  /// Stage a migration plan (`next[c]` = destination shard for coarse root
  /// c); the reply carries the serialized subtrees this shard must ship.
  std::optional<FedPlanReply> fed_plan(std::uint32_t session,
                                       const std::vector<part::PartId>& next);
  /// Deliver subtrees shipped by shard `src`; the shard verifies each one
  /// bit-for-bit against its replica before accepting.
  std::optional<FedExchangeInfo> fed_exchange(std::uint32_t session,
                                              std::int32_t src,
                                              const std::vector<FedTree>& trees);
  std::optional<FedCommitInfo> fed_commit(std::uint32_t session);

 private:
  bool send_all(const Bytes& frame);
  bool recv_frame(std::uint16_t* type, Bytes* payload);
  void wait_io(bool for_write);
  bool transport_fail(const std::string& what);
  /// Round trip + session-id payload helper for the {u32 id} ops.
  std::optional<Bytes> call_id(std::uint16_t op, std::uint32_t session);

  int fd_ = -1;
  Bytes in_;
  std::function<void()> pump_;
  Failure error_;
};

}  // namespace pnr::svc
