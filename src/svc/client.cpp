#include "svc/client.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

namespace pnr::svc {

namespace {

bool set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) >= 0;
}

/// Run one-shot `attempt` until it yields an fd or the retry budget is
/// spent. Sleeps via poll(2) with exponential backoff (capped at 32× the
/// base) so a coordinator racing daemon startup neither spins nor waits a
/// whole backoff past the deadline.
template <typename Fn>
int connect_with_retry(Fn&& attempt, ConnectOptions retry,
                       std::string* error) {
  const int base = std::max(retry.backoff_ms, 1);
  int backoff = base;
  int waited = 0;
  while (true) {
    const int fd = attempt(error);
    if (fd >= 0) return fd;
    if (waited >= retry.retry_ms) return -1;
    const int nap = std::min(backoff, retry.retry_ms - waited);
    ::poll(nullptr, 0, nap);
    waited += nap;
    backoff = std::min(backoff * 2, base * 32);
  }
}

}  // namespace

Client::~Client() { close(); }

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  in_.clear();
}

bool Client::connect_unix(const std::string& path, std::string* error,
                          ConnectOptions retry) {
  sockaddr_un addr{};
  if (path.empty() || path.size() >= sizeof(addr.sun_path)) {
    if (error) *error = "socket path empty or too long";
    return false;
  }
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  const auto attempt = [&addr](std::string* why) {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
      // Single-threaded setup path (no syscall between errno and here).
      // NOLINTNEXTLINE(concurrency-mt-unsafe)
      if (why) *why = std::strerror(errno);
      return -1;
    }
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
        0) {
      // Single-threaded setup path (no syscall between errno and here).
      // NOLINTNEXTLINE(concurrency-mt-unsafe)
      if (why) *why = std::strerror(errno);
      ::close(fd);
      return -1;
    }
    return fd;
  };
  const int fd = connect_with_retry(attempt, retry, error);
  if (fd < 0) return false;
  set_nonblocking(fd);
  close();
  fd_ = fd;
  return true;
}

bool Client::connect_tcp(const std::string& host, std::uint16_t port,
                         std::string* error, ConnectOptions retry) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    if (error) *error = "host must be an IPv4 address";
    return false;
  }
  const auto attempt = [&addr](std::string* why) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
      // Single-threaded setup path (no syscall between errno and here).
      // NOLINTNEXTLINE(concurrency-mt-unsafe)
      if (why) *why = std::strerror(errno);
      return -1;
    }
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
        0) {
      // Single-threaded setup path (no syscall between errno and here).
      // NOLINTNEXTLINE(concurrency-mt-unsafe)
      if (why) *why = std::strerror(errno);
      ::close(fd);
      return -1;
    }
    return fd;
  };
  const int fd = connect_with_retry(attempt, retry, error);
  if (fd < 0) return false;
  set_nonblocking(fd);
  close();
  fd_ = fd;
  return true;
}

void Client::adopt(int fd) {
  close();
  set_nonblocking(fd);
  fd_ = fd;
}

void Client::wait_io(bool for_write) {
  if (pump_) {
    pump_();
    return;
  }
  pollfd p{fd_, static_cast<short>(for_write ? POLLOUT : POLLIN), 0};
  ::poll(&p, 1, -1);
}

bool Client::transport_fail(const std::string& what) {
  error_ = Failure{};
  error_.transport = what;
  close();
  return false;
}

bool Client::send_all(const Bytes& frame) {
  std::size_t sent = 0;
  while (sent < frame.size()) {
    const ssize_t n = ::send(fd_, frame.data() + sent, frame.size() - sent,
                             MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR)) {
      wait_io(/*for_write=*/true);
      continue;
    }
    return transport_fail("send failed");
  }
  return true;
}

bool Client::recv_frame(std::uint16_t* type, Bytes* payload) {
  std::uint8_t buf[65536];
  while (true) {
    if (in_.size() >= kHeaderBytes) {
      const auto h = decode_header(in_.data());
      if (!h) return transport_fail("bad magic in reply");
      if (h->version != kWireVersion)
        return transport_fail("unsupported version in reply");
      if (in_.size() >= kHeaderBytes + h->payload_len) {
        Bytes body(in_.begin() + kHeaderBytes,
                   in_.begin() + kHeaderBytes + h->payload_len);
        in_.erase(in_.begin(),
                  in_.begin() + kHeaderBytes + h->payload_len);
        if (crc32(body) != h->payload_crc)
          return transport_fail("bad crc in reply");
        *type = h->type;
        *payload = std::move(body);
        return true;
      }
    }
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n > 0) {
      in_.insert(in_.end(), buf, buf + n);
      continue;
    }
    if (n == 0) return transport_fail("server closed the connection");
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) {
      wait_io(/*for_write=*/false);
      continue;
    }
    return transport_fail("recv failed");
  }
}

std::optional<Bytes> Client::call(std::uint16_t op, const Bytes& payload) {
  if (fd_ < 0) {
    transport_fail("not connected");
    return std::nullopt;
  }
  if (!send_all(encode_frame(op, payload))) return std::nullopt;
  std::uint16_t type = 0;
  Bytes body;
  if (!recv_frame(&type, &body)) return std::nullopt;
  if (type == kTypeError) {
    error_ = Failure{};
    if (const auto info = decode_error(body)) {
      error_.code = info->code;
      error_.detail = info->detail;
    } else {
      error_.detail = "undecodable error frame";
    }
    return std::nullopt;
  }
  if (type != (op | kReplyBit)) {
    transport_fail("reply type does not match request");
    return std::nullopt;
  }
  return body;
}

std::optional<Bytes> Client::call_id(std::uint16_t op, std::uint32_t session) {
  par::Writer w;
  w.put(session);
  return call(op, w.take());
}

// ---- typed RPCs -------------------------------------------------------------

namespace {

std::optional<Client::Created> parse_created(const Bytes& body) {
  par::TryReader r(body);
  const auto id = r.get<std::uint32_t>();
  const auto elements = r.get<std::int64_t>();
  if (!id || !elements || !r.done()) return std::nullopt;
  return Client::Created{*id, *elements};
}

std::optional<Client::RepartitionInfo> parse_repartition(par::TryReader& r) {
  Client::RepartitionInfo info;
  const auto cb = r.get<std::int64_t>();
  const auto ca = r.get<std::int64_t>();
  const auto mig = r.get<std::int64_t>();
  const auto ib = r.get<double>();
  const auto ia = r.get<double>();
  const auto levels = r.get<std::int32_t>();
  // A failed get() does not consume bytes, so a later (smaller) field can
  // succeed even though an earlier one failed — check every field.
  if (!cb || !ca || !mig || !ib || !ia || !levels) return std::nullopt;
  info.cut_before = *cb;
  info.cut_after = *ca;
  info.migrate = *mig;
  info.imbalance_before = *ib;
  info.imbalance_after = *ia;
  info.levels = *levels;
  return info;
}

}  // namespace

bool Client::ping() {
  const Bytes probe{0x70, 0x6e, 0x72};
  const auto body = call(kOpPing, probe);
  return body && *body == probe;
}

std::optional<Client::Created> Client::create_workload(
    const WorkloadSpec& spec) {
  par::Writer w;
  encode_workload_spec(w, spec);
  const auto body = call(kOpCreateWorkload, w.take());
  if (!body) return std::nullopt;
  return parse_created(*body);
}

std::optional<Client::Created> Client::create_mesh(const CreateHead& head,
                                                   const FlatMesh& mesh) {
  par::Writer w;
  encode_create_head(w, head);
  encode_mesh(w, mesh);
  const auto body = call(kOpCreateMesh, w.take());
  if (!body) return std::nullopt;
  return parse_created(*body);
}

std::optional<Client::Created> Client::create_graph(
    const CreateHead& head, const graph::Graph& g,
    const std::vector<double>& coords, int dim) {
  par::Writer w;
  encode_create_head(w, head);
  encode_graph(w, g);
  w.put(static_cast<std::uint8_t>(dim));
  w.put_vector(coords);
  const auto body = call(kOpCreateGraph, w.take());
  if (!body) return std::nullopt;
  return parse_created(*body);
}

std::optional<Client::AdvanceInfo> Client::advance(std::uint32_t session) {
  const auto body = call_id(kOpAdvance, session);
  if (!body) return std::nullopt;
  par::TryReader r(*body);
  AdvanceInfo info;
  const auto elements = r.get<std::int64_t>();
  const auto refined = r.get<std::int64_t>();
  const auto coarsened = r.get<std::int64_t>();
  const auto position = r.get<double>();
  if (!elements || !refined || !coarsened || !position || !r.done())
    return std::nullopt;
  info.elements = *elements;
  info.refined = *refined;
  info.coarsened = *coarsened;
  info.position = *position;
  return info;
}

std::optional<pared::StepReport> Client::step(std::uint32_t session) {
  const auto body = call_id(kOpStep, session);
  if (!body) return std::nullopt;
  par::TryReader r(*body);
  auto report = decode_step_report(r);
  if (!report || !r.done()) return std::nullopt;
  return report;
}

std::optional<Client::AdaptInfo> Client::adapt(
    std::uint32_t session, std::uint8_t mode,
    const std::vector<mesh::ElemIdx>& marks) {
  par::Writer w;
  w.put(session);
  w.put(mode);
  w.put_vector(marks);
  const auto body = call(kOpAdapt, w.take());
  if (!body) return std::nullopt;
  par::TryReader r(*body);
  AdaptInfo info;
  const auto changed = r.get<std::int64_t>();
  const auto elements = r.get<std::int64_t>();
  if (!changed || !elements || !r.done()) return std::nullopt;
  info.changed = *changed;
  info.elements = *elements;
  return info;
}

std::optional<Client::RepartitionInfo> Client::repartition(
    std::uint32_t session, std::uint8_t engine) {
  par::Writer w;
  w.put(session);
  w.put(engine);
  const auto body = call(kOpRepartition, w.take());
  if (!body) return std::nullopt;
  par::TryReader r(*body);
  auto info = parse_repartition(r);
  if (!info) return std::nullopt;
  const auto eng = r.get<std::uint8_t>();
  if (!eng || !r.done()) return std::nullopt;
  info->engine = *eng;
  return info;
}

std::optional<Client::Metrics> Client::get_metrics(std::uint32_t session) {
  const auto body = call_id(kOpGetMetrics, session);
  if (!body) return std::nullopt;
  par::TryReader r(*body);
  Metrics m;
  auto kind = r.get_string(64);
  const auto strategy = r.get<std::uint8_t>();
  const auto eng = r.get<std::uint8_t>();
  const auto parts = r.get<std::int32_t>();
  const auto elements = r.get<std::int64_t>();
  const auto ops = r.get<std::int64_t>();
  const auto has_report = r.get<std::uint8_t>();
  if (!kind || !strategy || !eng || !parts || !elements || !ops ||
      !has_report)
    return std::nullopt;
  m.kind = std::move(*kind);
  m.strategy = static_cast<pared::Strategy>(*strategy);
  m.engine = *eng;
  m.parts = *parts;
  m.elements = *elements;
  m.ops_applied = *ops;
  if (*has_report) {
    auto report = decode_step_report(r);
    if (!report) return std::nullopt;
    m.last_report = *report;
  }
  const auto has_stats = r.get<std::uint8_t>();
  if (!has_stats) return std::nullopt;
  if (*has_stats) {
    auto info = parse_repartition(r);
    if (!info) return std::nullopt;
    m.last_repartition = *info;
  }
  if (!r.done()) return std::nullopt;
  return m;
}

std::optional<std::vector<part::PartId>> Client::get_assignment(
    std::uint32_t session) {
  const auto body = call_id(kOpGetAssignment, session);
  if (!body) return std::nullopt;
  par::TryReader r(*body);
  auto assign = decode_assignment(
      r, static_cast<std::uint64_t>(body->size()) / sizeof(part::PartId) + 1);
  if (!assign || !r.done()) return std::nullopt;
  return assign;
}

std::optional<Bytes> Client::checkpoint(std::uint32_t session) {
  return call_id(kOpCheckpoint, session);
}

std::optional<Client::Restored> Client::restore(const Bytes& checkpoint) {
  const auto body = call(kOpRestore, checkpoint);
  if (!body) return std::nullopt;
  par::TryReader r(*body);
  Restored out;
  const auto id = r.get<std::uint32_t>();
  const auto elements = r.get<std::int64_t>();
  const auto replayed = r.get<std::uint32_t>();
  if (!id || !elements || !replayed || !r.done()) return std::nullopt;
  out.session = *id;
  out.elements = *elements;
  out.replayed = *replayed;
  return out;
}

bool Client::close_session(std::uint32_t session) {
  return call_id(kOpCloseSession, session).has_value();
}

std::optional<std::vector<Client::SessionInfo>> Client::list_sessions() {
  const auto body = call(kOpListSessions, Bytes{});
  if (!body) return std::nullopt;
  par::TryReader r(*body);
  const auto count = r.get<std::uint32_t>();
  if (!count) return std::nullopt;
  std::vector<SessionInfo> sessions;
  for (std::uint32_t i = 0; i < *count; ++i) {
    SessionInfo info;
    const auto id = r.get<std::uint32_t>();
    auto kind = r.get_string(64);
    const auto strategy = r.get<std::uint8_t>();
    const auto parts = r.get<std::int32_t>();
    const auto elements = r.get<std::int64_t>();
    if (!id || !kind || !strategy || !parts || !elements) return std::nullopt;
    info.session = *id;
    info.kind = std::move(*kind);
    info.strategy = static_cast<pared::Strategy>(*strategy);
    info.parts = *parts;
    info.elements = *elements;
    sessions.push_back(std::move(info));
  }
  if (!r.done()) return std::nullopt;
  return sessions;
}

bool Client::shutdown_server() {
  return call(kOpShutdown, Bytes{}).has_value();
}

// ---- federation RPCs --------------------------------------------------------

std::optional<Client::FedAttached> Client::fed_attach(const FedAttach& attach) {
  par::Writer w;
  encode_fed_attach(w, attach);
  const auto body = call(kOpFedAttach, w.take());
  if (!body) return std::nullopt;
  par::TryReader r(*body);
  FedAttached out;
  const auto id = r.get<std::uint32_t>();
  const auto elements = r.get<std::int64_t>();
  const auto fp = r.get<std::uint64_t>();
  if (!id || !elements || !fp || !r.done()) return std::nullopt;
  out.session = *id;
  out.elements = *elements;
  out.mesh_fp = *fp;
  return out;
}

std::optional<Client::FedAdvanceInfo> Client::fed_advance(
    std::uint32_t session) {
  const auto body = call_id(kOpFedAdvance, session);
  if (!body) return std::nullopt;
  par::TryReader r(*body);
  FedAdvanceInfo info;
  const auto elements = r.get<std::int64_t>();
  const auto refined = r.get<std::int64_t>();
  const auto coarsened = r.get<std::int64_t>();
  const auto t = r.get<double>();
  const auto step = r.get<std::int32_t>();
  const auto fp = r.get<std::uint64_t>();
  if (!elements || !refined || !coarsened || !t || !step || !fp || !r.done())
    return std::nullopt;
  info.elements = *elements;
  info.refined = *refined;
  info.coarsened = *coarsened;
  info.t = *t;
  info.step = *step;
  info.mesh_fp = *fp;
  return info;
}

std::optional<check::FedShardReport> Client::fed_interface(
    std::uint32_t session) {
  const auto body = call_id(kOpFedInterface, session);
  if (!body) return std::nullopt;
  par::TryReader r(*body);
  // Client-side decodes bound allocations with the default limits; a report
  // larger than that would have been refused by the server anyway.
  auto report = decode_fed_report(r, Limits{});
  if (!report || !r.done()) return std::nullopt;
  return report;
}

std::optional<FedPlanReply> Client::fed_plan(
    std::uint32_t session, const std::vector<part::PartId>& next) {
  par::Writer w;
  w.put(session);
  w.put_vector(next);
  const auto body = call(kOpFedPlan, w.take());
  if (!body) return std::nullopt;
  par::TryReader r(*body);
  auto reply = decode_fed_plan_reply(r, Limits{});
  if (!reply || !r.done()) return std::nullopt;
  return reply;
}

std::optional<Client::FedExchangeInfo> Client::fed_exchange(
    std::uint32_t session, std::int32_t src, const std::vector<FedTree>& trees) {
  par::Writer w;
  w.put(session);
  FedExchange ex;
  ex.src = src;
  ex.trees = trees;
  encode_fed_exchange(w, ex);
  const auto body = call(kOpFedExchange, w.take());
  if (!body) return std::nullopt;
  par::TryReader r(*body);
  FedExchangeInfo info;
  const auto accepted = r.get<std::int64_t>();
  const auto leaves = r.get<std::int64_t>();
  if (!accepted || !leaves || !r.done()) return std::nullopt;
  info.accepted = *accepted;
  info.leaves_in = *leaves;
  return info;
}

std::optional<Client::FedCommitInfo> Client::fed_commit(std::uint32_t session) {
  const auto body = call_id(kOpFedCommit, session);
  if (!body) return std::nullopt;
  par::TryReader r(*body);
  FedCommitInfo info;
  const auto elements = r.get<std::int64_t>();
  const auto owned = r.get<std::int64_t>();
  const auto assign_fp = r.get<std::uint64_t>();
  const auto mesh_fp = r.get<std::uint64_t>();
  if (!elements || !owned || !assign_fp || !mesh_fp || !r.done())
    return std::nullopt;
  info.elements = *elements;
  info.owned_leaves = *owned;
  info.assign_fp = *assign_fp;
  info.mesh_fp = *mesh_fp;
  return info;
}

}  // namespace pnr::svc
