#include "svc/codec.hpp"

#include <cmath>

#include "check/check.hpp"
#include "engine/engine.hpp"
#include "exec/pool.hpp"
#include "mesh/build.hpp"
#include "mesh/types.hpp"

namespace pnr::svc {

namespace {

/// Count of entries outside [lo, hi] — a deterministic pool reduction (sum
/// of per-chunk counts; integer addition commutes, so any --threads width
/// gives the same verdict).
template <typename T>
std::int64_t count_out_of_range(const std::vector<T>& v, T lo, T hi) {
  return exec::default_pool().parallel_reduce<std::int64_t>(
      static_cast<std::int64_t>(v.size()), 0,
      [&](std::int64_t b, std::int64_t e) {
        std::int64_t bad = 0;
        for (std::int64_t i = b; i < e; ++i) {
          const T x = v[static_cast<std::size_t>(i)];
          bad += (x < lo) | (x > hi);
        }
        return bad;
      },
      [](std::int64_t a, std::int64_t b) { return a + b; });
}

/// Count of non-finite or absurdly large coordinates. The magnitude cap
/// keeps every downstream area/volume determinant finite (no inf − inf
/// NaN), which is what the mesh constructors' REQUIREs assume.
std::int64_t count_bad_coords(const std::vector<double>& v) {
  constexpr double kCoordCap = 1e100;
  return exec::default_pool().parallel_reduce<std::int64_t>(
      static_cast<std::int64_t>(v.size()), 0,
      [&](std::int64_t b, std::int64_t e) {
        std::int64_t bad = 0;
        for (std::int64_t i = b; i < e; ++i) {
          const double x = v[static_cast<std::size_t>(i)];
          bad += !std::isfinite(x) || std::fabs(x) > kCoordCap;
        }
        return bad;
      },
      [](std::int64_t a, std::int64_t b) { return a + b; });
}

bool finite_in(double x, double lo, double hi) {
  return std::isfinite(x) && x >= lo && x <= hi;
}

void fail(std::string* why, const char* reason) {
  if (why) *why = reason;
}

}  // namespace

// ---- meshes -----------------------------------------------------------------

void encode_mesh(par::Writer& w, const FlatMesh& m) {
  w.put(m.dim);
  w.put_vector(m.coords);
  w.put_vector(m.elems);
}

std::optional<FlatMesh> decode_mesh(par::TryReader& r, const Limits& limits) {
  FlatMesh m;
  const auto dim = r.get<std::int32_t>();
  if (!dim || (*dim != 2 && *dim != 3)) return std::nullopt;
  m.dim = *dim;
  const auto per = static_cast<std::uint64_t>(*dim + 1);
  auto coords = r.get_vector<double>(
      static_cast<std::uint64_t>(limits.max_vertices) * 3);
  if (!coords) return std::nullopt;
  auto elems = r.get_vector<std::int32_t>(
      static_cast<std::uint64_t>(limits.max_elements) * per);
  if (!elems) return std::nullopt;
  m.coords = std::move(*coords);
  m.elems = std::move(*elems);
  if (m.coords.empty() || m.coords.size() % static_cast<std::size_t>(m.dim))
    return std::nullopt;
  if (m.elems.empty() || m.elems.size() % per) return std::nullopt;
  const auto n =
      static_cast<std::int64_t>(m.coords.size()) / m.dim;
  if (n > limits.max_vertices) return std::nullopt;
  if (static_cast<std::int64_t>(m.elems.size() / per) > limits.max_elements)
    return std::nullopt;
  if (count_bad_coords(m.coords)) return std::nullopt;
  if (count_out_of_range<std::int32_t>(m.elems, 0,
                                       static_cast<std::int32_t>(n - 1)))
    return std::nullopt;
  return m;
}

namespace {

template <typename Mesh, typename Corners>
FlatMesh flatten_impl(const Mesh& mesh, int dim, Corners&& corners) {
  FlatMesh flat;
  flat.dim = dim;
  std::vector<std::int32_t> dense(mesh.vertex_slots(), -1);
  std::int32_t next = 0;
  for (std::size_t v = 0; v < mesh.vertex_slots(); ++v)
    if (mesh.vertex_alive(static_cast<mesh::VertIdx>(v))) {
      dense[v] = next++;
      const auto& p = mesh.vertex(static_cast<mesh::VertIdx>(v));
      flat.coords.push_back(p.x);
      flat.coords.push_back(p.y);
      if constexpr (std::is_same_v<Mesh, mesh::TetMesh>)
        flat.coords.push_back(p.z);
    }
  for (const mesh::ElemIdx e : mesh.leaf_elements())
    for (const mesh::VertIdx v : corners(e))
      flat.elems.push_back(dense[static_cast<std::size_t>(v)]);
  return flat;
}

}  // namespace

FlatMesh flatten_mesh(const mesh::TriMesh& mesh) {
  return flatten_impl(mesh, 2,
                      [&](mesh::ElemIdx e) { return mesh.tri(e).v; });
}

FlatMesh flatten_mesh(const mesh::TetMesh& mesh) {
  return flatten_impl(mesh, 3,
                      [&](mesh::ElemIdx e) { return mesh.tet(e).v; });
}

std::optional<mesh::TriMesh> build_tri_mesh(const FlatMesh& m,
                                            std::string* why) {
  if (m.dim != 2) {
    fail(why, "flat mesh shape is not 2D");
    return std::nullopt;
  }
  // Everything TriMesh::finalize PNR_REQUIREs is pre-validated by the mesh
  // layer, so hostile input gets a typed error instead of aborting the
  // server.
  auto built = mesh::try_build_tri_mesh(m.coords, m.elems, why);
  if (!built) return std::nullopt;
  if (const auto report = check::check_mesh(*built); !report.ok()) {
    fail(why, "mesh audit failed");
    return std::nullopt;
  }
  return built;
}

std::optional<mesh::TetMesh> build_tet_mesh(const FlatMesh& m,
                                            std::string* why) {
  if (m.dim != 3) {
    fail(why, "flat mesh shape is not 3D");
    return std::nullopt;
  }
  auto built = mesh::try_build_tet_mesh(m.coords, m.elems, why);
  if (!built) return std::nullopt;
  if (const auto report = check::check_mesh(*built); !report.ok()) {
    fail(why, "mesh audit failed");
    return std::nullopt;
  }
  return built;
}

// ---- graphs -----------------------------------------------------------------

void encode_graph(par::Writer& w, const graph::Graph& g) {
  w.put_vector(g.xadj());
  w.put_vector(g.adjncy());
  w.put_vector(g.adjwgt());
  w.put_vector(g.vwgt());
}

std::optional<graph::Graph> decode_graph(par::TryReader& r,
                                         const Limits& limits,
                                         std::string* why) {
  const auto max_arcs = static_cast<std::uint64_t>(limits.max_graph_edges) * 2;
  auto xadj = r.get_vector<std::int64_t>(
      static_cast<std::uint64_t>(limits.max_graph_vertices) + 1);
  if (!xadj) return std::nullopt;
  auto adjncy = r.get_vector<graph::VertexId>(max_arcs);
  if (!adjncy) return std::nullopt;
  auto adjwgt = r.get_vector<graph::Weight>(max_arcs);
  if (!adjwgt) return std::nullopt;
  auto vwgt = r.get_vector<graph::Weight>(
      static_cast<std::uint64_t>(limits.max_graph_vertices));
  if (!vwgt) return std::nullopt;

  // Everything Graph's constructor PNR_REQUIREs, plus monotonicity and
  // neighbor ranges, validated before construction so hostile CSR cannot
  // abort the server.
  const auto n = static_cast<std::int64_t>(vwgt->size());
  if (n < 1 || xadj->size() != vwgt->size() + 1 ||
      adjncy->size() != adjwgt->size()) {
    fail(why, "CSR array shapes disagree");
    return std::nullopt;
  }
  if (xadj->front() != 0 ||
      xadj->back() != static_cast<std::int64_t>(adjncy->size())) {
    fail(why, "CSR xadj endpoints are wrong");
    return std::nullopt;
  }
  for (std::size_t i = 0; i + 1 < xadj->size(); ++i)
    if ((*xadj)[i] > (*xadj)[i + 1]) {
      fail(why, "CSR xadj is not monotone");
      return std::nullopt;
    }
  if (count_out_of_range<graph::VertexId>(
          *adjncy, 0, static_cast<graph::VertexId>(n - 1)) ||
      count_out_of_range<graph::Weight>(*adjwgt, 0,
                                        std::int64_t{1} << 40) ||
      count_out_of_range<graph::Weight>(*vwgt, 0, std::int64_t{1} << 40)) {
    fail(why, "CSR neighbor ids or weights out of range");
    return std::nullopt;
  }
  graph::Graph g(std::move(*xadj), std::move(*adjncy), std::move(*adjwgt),
                 std::move(*vwgt));
  // Deep audit (symmetry, duplicate arcs, self loops) — the full
  // check_graph battery, run unconditionally on uploads.
  if (const auto report = check::check_graph(g); !report.ok()) {
    fail(why, "graph audit failed");
    return std::nullopt;
  }
  return g;
}

// ---- assignments and reports ------------------------------------------------

void encode_assignment(par::Writer& w, const std::vector<part::PartId>& a) {
  w.put_vector(a);
}

std::optional<std::vector<part::PartId>> decode_assignment(
    par::TryReader& r, std::uint64_t max_size) {
  return r.get_vector<part::PartId>(max_size);
}

void encode_step_report(par::Writer& w, const pared::StepReport& report) {
  w.put(report.elements);
  w.put(report.cut_prev);
  w.put(report.cut_new);
  w.put(report.shared_vertices);
  w.put(report.migrated);
  w.put(report.migrated_remapped);
  w.put(report.imbalance);
}

std::optional<pared::StepReport> decode_step_report(par::TryReader& r) {
  pared::StepReport report;
  const auto elements = r.get<std::int64_t>();
  const auto cut_prev = r.get<graph::Weight>();
  const auto cut_new = r.get<graph::Weight>();
  const auto shared = r.get<std::int64_t>();
  const auto migrated = r.get<std::int64_t>();
  const auto migrated_remapped = r.get<std::int64_t>();
  const auto imbalance = r.get<double>();
  if (!imbalance) return std::nullopt;  // later fields imply earlier ones
  report.elements = *elements;
  report.cut_prev = *cut_prev;
  report.cut_new = *cut_new;
  report.shared_vertices = *shared;
  report.migrated = *migrated;
  report.migrated_remapped = *migrated_remapped;
  report.imbalance = *imbalance;
  return report;
}

// ---- session specs ----------------------------------------------------------

void encode_workload_spec(par::Writer& w, const WorkloadSpec& spec) {
  w.put(static_cast<std::uint8_t>(spec.kind));
  w.put(static_cast<std::uint8_t>(spec.strategy));
  w.put(spec.parts);
  w.put(spec.session_seed);
  w.put(spec.transient.steps);
  w.put(spec.transient.t_begin);
  w.put(spec.transient.t_end);
  w.put(spec.transient.refine_threshold);
  w.put(spec.transient.coarsen_threshold);
  w.put(spec.transient.max_level);
  w.put(spec.transient.grid_n);
  w.put(spec.transient.seed);
  w.put(spec.corner.tau);
  w.put(spec.corner.decay);
  w.put(spec.corner.max_level_slack);
  w.put(spec.corner.seed);
  w.put(spec.corner_grid_n);
  w.put(spec.alpha);
  w.put(spec.beta);
  w.put(spec.engine);
}

std::optional<WorkloadSpec> decode_workload_spec(par::TryReader& r,
                                                 const Limits& limits) {
  WorkloadSpec spec;
  const auto kind = r.get<std::uint8_t>();
  const auto strategy = r.get<std::uint8_t>();
  if (!kind || !strategy) return std::nullopt;
  if (*kind > static_cast<std::uint8_t>(WorkloadKind::kTransient3D) ||
      *strategy > static_cast<std::uint8_t>(pared::Strategy::kMlDiffusion))
    return std::nullopt;
  spec.kind = static_cast<WorkloadKind>(*kind);
  spec.strategy = static_cast<pared::Strategy>(*strategy);
  const auto parts = r.get<std::int32_t>();
  const auto seed = r.get<std::uint64_t>();
  if (!parts || !seed) return std::nullopt;
  spec.parts = *parts;
  spec.session_seed = *seed;

  const auto steps = r.get<std::int32_t>();
  const auto t_begin = r.get<double>();
  const auto t_end = r.get<double>();
  const auto refine = r.get<double>();
  const auto coarsen = r.get<double>();
  const auto max_level = r.get<std::int32_t>();
  const auto grid_n = r.get<std::int32_t>();
  const auto tseed = r.get<std::uint64_t>();
  const auto tau = r.get<double>();
  const auto decay = r.get<double>();
  const auto slack = r.get<std::int32_t>();
  const auto cseed = r.get<std::uint64_t>();
  const auto corner_grid = r.get<std::int32_t>();
  const auto alpha = r.get<double>();
  const auto beta = r.get<double>();
  const auto eng = r.get<std::uint8_t>();
  // Every optional is checked: a failed TryReader read does not advance
  // the cursor, so after a mid-payload truncation a *narrower* later
  // field (the u8 engine) can still read successfully — checking only
  // the last field would let truncated specs through.
  if (!steps || !t_begin || !t_end || !refine || !coarsen || !max_level ||
      !grid_n || !tseed || !tau || !decay || !slack || !cseed ||
      !corner_grid || !alpha || !beta || !eng)
    return std::nullopt;

  // Bounds that keep a hostile spec from exploding the server: positive
  // refine threshold and a modest depth cap bound mesh growth; step counts
  // bound replay time.
  if (spec.parts < 1 || spec.parts > limits.max_parts) return std::nullopt;
  if (*steps < 1 || *steps > limits.max_workload_steps) return std::nullopt;
  if (!std::isfinite(*t_begin) || !std::isfinite(*t_end) ||
      *t_end < *t_begin)
    return std::nullopt;
  if (!finite_in(*refine, 1e-9, 1e9) || !finite_in(*coarsen, 0.0, 1e9))
    return std::nullopt;
  if (*max_level < 1 || *max_level > 16) return std::nullopt;
  if (*grid_n < 2 || *grid_n > 128) return std::nullopt;
  if (!finite_in(*tau, 1e-9, 1e9)) return std::nullopt;
  if (!finite_in(*decay, 1e-6, 1.0)) return std::nullopt;
  if (*slack < 0 || *slack > 16) return std::nullopt;
  if (*corner_grid < 0 || *corner_grid > 128) return std::nullopt;
  if (!finite_in(*alpha, 0.0, 100.0) || !finite_in(*beta, 0.0, 100.0))
    return std::nullopt;
  if (*eng != kEngineDefault && !engine::valid_kind(*eng)) return std::nullopt;

  spec.transient.steps = *steps;
  spec.transient.t_begin = *t_begin;
  spec.transient.t_end = *t_end;
  spec.transient.refine_threshold = *refine;
  spec.transient.coarsen_threshold = *coarsen;
  spec.transient.max_level = *max_level;
  spec.transient.grid_n = *grid_n;
  spec.transient.seed = *tseed;
  spec.corner.tau = *tau;
  spec.corner.decay = *decay;
  spec.corner.max_level_slack = *slack;
  spec.corner.seed = *cseed;
  spec.corner_grid_n = *corner_grid;
  spec.alpha = *alpha;
  spec.beta = *beta;
  spec.engine = *eng;
  return spec;
}

void encode_create_head(par::Writer& w, const CreateHead& head) {
  w.put(static_cast<std::uint8_t>(head.strategy));
  w.put(head.parts);
  w.put(head.session_seed);
  w.put(head.alpha);
  w.put(head.beta);
  w.put(head.engine);
}

std::optional<CreateHead> decode_create_head(par::TryReader& r,
                                             const Limits& limits) {
  CreateHead head;
  const auto strategy = r.get<std::uint8_t>();
  const auto parts = r.get<std::int32_t>();
  const auto seed = r.get<std::uint64_t>();
  const auto alpha = r.get<double>();
  const auto beta = r.get<double>();
  const auto eng = r.get<std::uint8_t>();
  // All optionals checked for the same truncation reason as
  // decode_workload_spec above.
  if (!strategy || !parts || !seed || !alpha || !beta || !eng)
    return std::nullopt;
  if (*strategy > static_cast<std::uint8_t>(pared::Strategy::kMlDiffusion))
    return std::nullopt;
  if (*parts < 1 || *parts > limits.max_parts) return std::nullopt;
  if (!finite_in(*alpha, 0.0, 100.0) || !finite_in(*beta, 0.0, 100.0))
    return std::nullopt;
  if (*eng != kEngineDefault && !engine::valid_kind(*eng)) return std::nullopt;
  head.strategy = static_cast<pared::Strategy>(*strategy);
  head.parts = *parts;
  head.session_seed = *seed;
  head.alpha = *alpha;
  head.beta = *beta;
  head.engine = *eng;
  return head;
}

// ---- federation (docs/FEDERATION.md) ----------------------------------------

void encode_fed_attach(par::Writer& w, const FedAttach& a) {
  encode_workload_spec(w, a.spec);
  w.put(a.rank);
  w.put(a.count);
}

std::optional<FedAttach> decode_fed_attach(par::TryReader& r,
                                           const Limits& limits,
                                           std::string* why) {
  auto spec = decode_workload_spec(r, limits);
  if (!spec) {
    fail(why, "bad workload spec");
    return std::nullopt;
  }
  const auto rank = r.get<std::uint16_t>();
  const auto count = r.get<std::uint16_t>();
  if (!rank || !count) {
    fail(why, "truncated shard slot");
    return std::nullopt;
  }
  if (spec->kind != WorkloadKind::kTransient2D &&
      spec->kind != WorkloadKind::kTransient3D) {
    fail(why, "only transient workloads can federate");
    return std::nullopt;
  }
  if (*count < 1 ||
      static_cast<std::int64_t>(*count) > limits.max_parts) {
    fail(why, "shard count out of range");
    return std::nullopt;
  }
  if (*rank >= *count) {
    fail(why, "shard rank outside [0, count)");
    return std::nullopt;
  }
  if (spec->parts != static_cast<std::int32_t>(*count)) {
    fail(why, "spec parts must equal the shard count");
    return std::nullopt;
  }
  FedAttach a;
  a.spec = *spec;
  a.rank = *rank;
  a.count = *count;
  return a;
}

void encode_fed_report(par::Writer& w, const check::FedShardReport& rep) {
  w.put_vector(rep.owned);
  w.put_vector(rep.owned_weights);
  w.put_vector(rep.primary);
  w.put_vector(rep.echo);
}

std::optional<check::FedShardReport> decode_fed_report(par::TryReader& r,
                                                       const Limits& limits) {
  const auto max_v = static_cast<std::uint64_t>(limits.max_graph_vertices);
  const auto max_e = static_cast<std::uint64_t>(limits.max_graph_edges);
  auto owned = r.get_vector<mesh::ElemIdx>(max_v);
  if (!owned) return std::nullopt;
  auto weights = r.get_vector<graph::Weight>(max_v);
  if (!weights) return std::nullopt;
  auto primary = r.get_vector<check::FedEdge>(max_e);
  if (!primary) return std::nullopt;
  auto echo = r.get_vector<check::FedEdge>(max_e);
  if (!echo) return std::nullopt;
  if (owned->size() != weights->size()) return std::nullopt;
  check::FedShardReport rep;
  rep.owned = std::move(*owned);
  rep.owned_weights = std::move(*weights);
  rep.primary = std::move(*primary);
  rep.echo = std::move(*echo);
  return rep;
  // Deep semantics (ownership, ordering, echo agreement) are audited by
  // check::check_fed_reports at the coordinator, not per decode.
}

namespace {

std::optional<std::vector<FedTree>> decode_fed_trees(par::TryReader& r,
                                                     const Limits& limits,
                                                     bool with_dest) {
  // One subtree per coarse vertex is the structural ceiling; each payload
  // count is validated against the remaining frame bytes before any
  // allocation, so a hostile count cannot balloon memory.
  const auto n = r.get<std::uint64_t>();
  if (!n || *n > static_cast<std::uint64_t>(limits.max_graph_vertices))
    return std::nullopt;
  // Every tree costs at least a root id and a payload length (+ dest), so
  // a count the remaining bytes cannot possibly hold is hostile — reject
  // it before reserve() turns an 8-byte claim into a huge allocation.
  const std::size_t min_tree_bytes = sizeof(mesh::ElemIdx) +
                                     sizeof(std::uint64_t) +
                                     (with_dest ? sizeof(std::int32_t) : 0);
  if (*n > r.remaining() / min_tree_bytes) return std::nullopt;
  std::vector<FedTree> trees;
  trees.reserve(static_cast<std::size_t>(*n));
  for (std::uint64_t i = 0; i < *n; ++i) {
    FedTree t;
    if (with_dest) {
      const auto dest = r.get<std::int32_t>();
      if (!dest) return std::nullopt;
      t.dest = *dest;
    }
    const auto root = r.get<mesh::ElemIdx>();
    if (!root) return std::nullopt;
    t.root = *root;
    auto payload = r.get_vector<std::uint8_t>(limits.max_frame_bytes);
    if (!payload) return std::nullopt;
    t.payload = std::move(*payload);
    trees.push_back(std::move(t));
  }
  return trees;
}

}  // namespace

void encode_fed_plan_reply(par::Writer& w, const FedPlanReply& rep) {
  w.put(rep.elements_out);
  w.put(static_cast<std::uint64_t>(rep.outgoing.size()));
  for (const FedTree& t : rep.outgoing) {
    w.put(t.dest);
    w.put(t.root);
    w.put_vector(t.payload);
  }
}

std::optional<FedPlanReply> decode_fed_plan_reply(par::TryReader& r,
                                                  const Limits& limits) {
  const auto elements_out = r.get<std::int64_t>();
  if (!elements_out || *elements_out < 0) return std::nullopt;
  auto trees = decode_fed_trees(r, limits, /*with_dest=*/true);
  if (!trees) return std::nullopt;
  FedPlanReply rep;
  rep.elements_out = *elements_out;
  rep.outgoing = std::move(*trees);
  return rep;
}

void encode_fed_exchange(par::Writer& w, const FedExchange& ex) {
  w.put(ex.src);
  w.put(static_cast<std::uint64_t>(ex.trees.size()));
  for (const FedTree& t : ex.trees) {
    w.put(t.root);
    w.put_vector(t.payload);
  }
}

std::optional<FedExchange> decode_fed_exchange(par::TryReader& r,
                                               const Limits& limits) {
  const auto src = r.get<std::int32_t>();
  if (!src || *src < 0 || *src >= limits.max_parts) return std::nullopt;
  auto trees = decode_fed_trees(r, limits, /*with_dest=*/false);
  if (!trees) return std::nullopt;
  FedExchange ex;
  ex.src = *src;
  ex.trees = std::move(*trees);
  return ex;
}

}  // namespace pnr::svc
