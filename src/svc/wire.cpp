#include "svc/wire.hpp"

#include <array>

namespace pnr::svc {

const char* err_name(Err e) {
  switch (e) {
    case Err::kBadCrc: return "bad_crc";
    case Err::kBadVersion: return "bad_version";
    case Err::kBadOp: return "bad_op";
    case Err::kBadPayload: return "bad_payload";
    case Err::kAuditFailed: return "audit_failed";
    case Err::kUnknownSession: return "unknown_session";
    case Err::kBadState: return "bad_state";
    case Err::kLimitExceeded: return "limit_exceeded";
    case Err::kShuttingDown: return "shutting_down";
    case Err::kInternal: return "internal";
  }
  return "?";
}

namespace {

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k)
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    table[i] = c;
  }
  return table;
}

void put_u16(Bytes& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v & 0xff));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put_u32(Bytes& out, std::uint32_t v) {
  for (int b = 0; b < 4; ++b)
    out.push_back(static_cast<std::uint8_t>((v >> (8 * b)) & 0xff));
}

std::uint16_t read_u16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}

std::uint32_t read_u32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

}  // namespace

std::uint32_t crc32(const std::uint8_t* data, std::size_t size) {
  static const auto table = make_crc_table();
  std::uint32_t c = 0xffffffffu;
  for (std::size_t i = 0; i < size; ++i)
    c = table[(c ^ data[i]) & 0xffu] ^ (c >> 8);
  return c ^ 0xffffffffu;
}

Bytes encode_frame(std::uint16_t type, const Bytes& payload) {
  Bytes out;
  out.reserve(kHeaderBytes + payload.size());
  put_u32(out, kMagic);
  put_u16(out, kWireVersion);
  put_u16(out, type);
  put_u32(out, static_cast<std::uint32_t>(payload.size()));
  put_u32(out, crc32(payload));
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

std::optional<FrameHeader> decode_header(const std::uint8_t* data) {
  if (read_u32(data) != kMagic) return std::nullopt;
  FrameHeader h;
  h.version = read_u16(data + 4);
  h.type = read_u16(data + 6);
  h.payload_len = read_u32(data + 8);
  h.payload_crc = read_u32(data + 12);
  return h;
}

Bytes encode_error(Err code, const std::string& detail) {
  par::Writer w;
  w.put(static_cast<std::uint16_t>(code));
  par::put_string(w, detail);
  return w.take();
}

std::optional<ErrorInfo> decode_error(const Bytes& payload) {
  par::TryReader r(payload);
  const auto code = r.get<std::uint16_t>();
  if (!code || *code == 0 ||
      *code > static_cast<std::uint16_t>(Err::kInternal))
    return std::nullopt;
  auto detail = r.get_string(4096);
  if (!detail || !r.done()) return std::nullopt;
  return ErrorInfo{static_cast<Err>(*code), std::move(*detail)};
}

}  // namespace pnr::svc
