#include "svc/server.hpp"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <vector>

#include "util/prof.hpp"

namespace pnr::svc {

namespace {

bool set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) >= 0;
}

}  // namespace

Server::Server(ServerOptions options) : options_(options),
                                        registry_(options.limits) {}

Server::~Server() {
  for (const auto& [fd, conn] : conns_) ::close(fd);
  close_listener();
}

void Server::close_listener() {
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (!socket_path_.empty()) {
    ::unlink(socket_path_.c_str());
    socket_path_.clear();
  }
}

bool Server::listen_unix(const std::string& path, std::string* error) {
  sockaddr_un addr{};
  if (path.empty() || path.size() >= sizeof(addr.sun_path)) {
    if (error) *error = "socket path empty or too long";
    return false;
  }
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    if (error) *error = std::strerror(errno);
    return false;
  }
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  ::unlink(path.c_str());
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(fd, 16) < 0 || !set_nonblocking(fd)) {
    if (error) *error = std::strerror(errno);
    ::close(fd);
    return false;
  }
  close_listener();
  listen_fd_ = fd;
  socket_path_ = path;
  return true;
}

void Server::adopt(int fd) {
  set_nonblocking(fd);
  conns_.emplace(fd, Conn{});
}

bool Server::done() const {
  if (shutdown_flagged_ && conns_.empty()) return true;
  return listen_fd_ < 0 && conns_.empty();
}

void Server::begin_shutdown() {
  shutdown_flagged_ = true;
  close_listener();
  for (auto& [fd, conn] : conns_) conn.close_after_flush = true;
}

int Server::poll_once(int timeout_ms) {
  if (done()) return 0;
  std::vector<pollfd> fds;
  fds.reserve(conns_.size() + 1);
  if (listen_fd_ >= 0)
    fds.push_back(pollfd{listen_fd_, POLLIN, 0});
  for (const auto& [fd, conn] : conns_) {
    // A backlogged connection is write-only until its replies flush; the
    // flush path re-drains any requests parked in conn.in.
    short events = backlogged(conn) ? 0 : POLLIN;
    if (!conn.out.empty()) events |= POLLOUT;
    fds.push_back(pollfd{fd, events, 0});
  }
  if (fds.empty()) return 0;

  const int ready = ::poll(fds.data(), fds.size(), timeout_ms);
  if (ready <= 0) return 0;

  int serviced = 0;
  for (const pollfd& p : fds) {
    if (p.revents == 0) continue;
    ++serviced;
    if (p.fd == listen_fd_) {
      accept_ready();
      continue;
    }
    const auto it = conns_.find(p.fd);
    if (it == conns_.end()) continue;
    bool alive = true;
    if (p.revents & (POLLERR | POLLNVAL)) alive = false;
    if (alive && (p.revents & (POLLIN | POLLHUP)))
      alive = read_ready(p.fd, it->second);
    if (alive && (p.revents & POLLOUT)) {
      // Flushing may clear a backlog; serve any parked requests too.
      alive = write_ready(p.fd, it->second) &&
              service_frames(p.fd, it->second);
    }
    if (alive && it->second.close_after_flush && it->second.out.empty())
      alive = false;
    if (!alive) close_conn(p.fd);
  }
  // A shutdown handled this iteration flags every connection for
  // close-after-flush and stops accepting.
  if (registry_.shutting_down() && !shutdown_flagged_) begin_shutdown();
  return serviced;
}

void Server::run() {
  while (!done()) {
    if (poll_once(-1) == 0 && done()) break;
  }
}

void Server::accept_ready() {
  while (true) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) return;  // EAGAIN or transient error: back to poll
    if (shutdown_flagged_ ||
        conns_.size() >= static_cast<std::size_t>(options_.max_connections)) {
      ::close(fd);
      continue;
    }
    set_nonblocking(fd);
    conns_.emplace(fd, Conn{});
  }
}

bool Server::read_ready(int fd, Conn& conn) {
  std::uint8_t buf[65536];
  while (!backlogged(conn)) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n > 0) {
      prof::count("svc.bytes_in", n);
      conn.in.insert(conn.in.end(), buf, buf + n);
      // Serve eagerly so single-threaded (pump-driven) clients see replies
      // on their next read without an extra poll round.
      if (!service_frames(fd, conn)) return false;
      continue;
    }
    if (n == 0) return false;  // peer closed
    return errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR;
  }
  return true;  // backlogged: leave the rest in the socket buffer
}

bool Server::service_frames(int fd, Conn& conn) {
  while (true) {
    const std::size_t before = conn.in.size();
    if (!drain_frames(conn)) return false;
    if (!write_ready(fd, conn)) return false;
    // Still over the cap after flushing: the kernel buffer is full too, so
    // leave the rest parked — POLLOUT is armed while conn.out is non-empty
    // and resumes service once the client reads.
    if (backlogged(conn)) return true;
    if (conn.in.size() == before) return true;  // no complete frame left
  }
}

bool Server::drain_frames(Conn& conn) {
  std::size_t consumed = 0;
  bool parked = false;
  while (conn.in.size() - consumed >= kHeaderBytes) {
    if (backlogged(conn)) {
      // Replies are piling up faster than the client reads them: park the
      // remaining requests until write_ready flushes the backlog.
      parked = true;
      break;
    }
    const std::uint8_t* head = conn.in.data() + consumed;
    const auto h = decode_header(head);
    // Framing-level violations mean the stream is not speaking this
    // protocol at all — close instead of guessing at resync.
    if (!h) return false;
    if (h->payload_len > registry_.limits().max_frame_bytes) return false;
    if (conn.in.size() - consumed - kHeaderBytes < h->payload_len) break;
    const Bytes payload(head + kHeaderBytes,
                        head + kHeaderBytes + h->payload_len);
    consumed += kHeaderBytes + h->payload_len;

    Reply reply;
    if (h->version != kWireVersion) {
      prof::count("svc.errors");
      reply = Reply{kTypeError,
                    encode_error(Err::kBadVersion, "unsupported version")};
    } else if (crc32(payload) != h->payload_crc) {
      prof::count("svc.errors");
      reply = Reply{kTypeError, encode_error(Err::kBadCrc, "crc mismatch")};
    } else if (h->type == 0 || (h->type & kReplyBit) != 0) {
      prof::count("svc.errors");
      reply = Reply{kTypeError,
                    encode_error(Err::kBadOp, "not a request frame")};
    } else {
      reply = registry_.handle(h->type, payload);
    }
    const Bytes frame = encode_frame(reply.type, reply.payload);
    prof::count("svc.bytes_out", static_cast<std::int64_t>(frame.size()));
    conn.out.insert(conn.out.end(), frame.begin(), frame.end());
  }
  if (consumed > 0)
    conn.in.erase(conn.in.begin(),
                  conn.in.begin() + static_cast<std::ptrdiff_t>(consumed));
  // Anything buffered beyond a sane frame without completing one means the
  // declared length can never be satisfied within limits. Parked input is
  // exempt: it holds complete, valid frames awaiting backlog flush, and is
  // bounded because reading stops while the connection is backlogged.
  return parked || conn.in.size() <=
                       kHeaderBytes + static_cast<std::size_t>(
                                          registry_.limits().max_frame_bytes);
}

bool Server::write_ready(int fd, Conn& conn) {
  while (!conn.out.empty()) {
    const ssize_t n =
        ::send(fd, conn.out.data(), conn.out.size(), MSG_NOSIGNAL);
    if (n > 0) {
      conn.out.erase(conn.out.begin(), conn.out.begin() + n);
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) return true;
    return false;
  }
  return true;
}

void Server::close_conn(int fd) {
  ::close(fd);
  conns_.erase(fd);
}

}  // namespace pnr::svc
