#include "svc/server.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

#include "util/prof.hpp"

namespace pnr::svc {

namespace {

bool set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) >= 0;
}

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

Server::Server(ServerOptions options)
    : options_(options),
      threads_(std::clamp(options.threads, 0, 256)),
      registry_(options.limits, std::max(1, std::clamp(options.threads, 0,
                                                       256))) {
  if (threads_ > 0) {
    // Self-pipe: shard workers write one byte to wake a poll(2) that is
    // blocked with no client activity. If the pipe cannot be created the
    // server falls back to the serial inline path rather than risking a
    // poll that never learns about finished work.
    if (::pipe(wake_fds_) == 0 && set_nonblocking(wake_fds_[0]) &&
        set_nonblocking(wake_fds_[1])) {
      task_pool_ = std::make_unique<exec::Pool>(threads_);
      // threads_ session shards plus one control FIFO at index threads_
      // (creates/restore/fed attach off the poll thread, satellite of
      // docs/FEDERATION.md).
      shards_.reserve(static_cast<std::size_t>(threads_) + 1);
      for (int s = 0; s < threads_ + 1; ++s)
        shards_.push_back(std::make_unique<Shard>());
    } else {
      if (wake_fds_[0] >= 0) ::close(wake_fds_[0]);
      if (wake_fds_[1] >= 0) ::close(wake_fds_[1]);
      wake_fds_[0] = wake_fds_[1] = -1;
      threads_ = 0;
    }
  }
}

Server::~Server() {
  // Drain-task lambdas capture `this`: let every queued task finish and
  // join the workers before any member is torn down. Undelivered
  // completions are dropped with the connections.
  if (task_pool_) task_pool_->shutdown();
  for (const auto& [fd, conn] : conns_) ::close(fd);
  close_listener();
  if (wake_fds_[0] >= 0) ::close(wake_fds_[0]);
  if (wake_fds_[1] >= 0) ::close(wake_fds_[1]);
}

void Server::close_listener() {
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  bound_port_ = 0;
  if (!socket_path_.empty()) {
    ::unlink(socket_path_.c_str());
    socket_path_.clear();
  }
}

bool Server::listen_unix(const std::string& path, std::string* error) {
  sockaddr_un addr{};
  if (path.empty() || path.size() >= sizeof(addr.sun_path)) {
    if (error) *error = "socket path empty or too long";
    return false;
  }
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    // Single-threaded setup path (no syscall between errno and here).
    // NOLINTNEXTLINE(concurrency-mt-unsafe)
    if (error) *error = std::strerror(errno);
    return false;
  }
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  ::unlink(path.c_str());
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(fd, 16) < 0 || !set_nonblocking(fd)) {
    // Single-threaded setup path (no syscall between errno and here).
    // NOLINTNEXTLINE(concurrency-mt-unsafe)
    if (error) *error = std::strerror(errno);
    ::close(fd);
    return false;
  }
  close_listener();
  listen_fd_ = fd;
  socket_path_ = path;
  bound_port_ = 0;
  return true;
}

bool Server::listen_tcp(std::uint16_t port, std::string* error,
                        const std::string& host) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    if (error) *error = "bad listen address " + host;
    return false;
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    // Single-threaded setup path (no syscall between errno and here).
    // NOLINTNEXTLINE(concurrency-mt-unsafe)
    if (error) *error = std::strerror(errno);
    return false;
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in bound{};
  socklen_t blen = sizeof(bound);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(fd, 16) < 0 || !set_nonblocking(fd) ||
      ::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &blen) < 0) {
    // Single-threaded setup path (no syscall between errno and here).
    // NOLINTNEXTLINE(concurrency-mt-unsafe)
    if (error) *error = std::strerror(errno);
    ::close(fd);
    return false;
  }
  close_listener();
  listen_fd_ = fd;
  bound_port_ = ntohs(bound.sin_port);
  return true;
}

void Server::adopt(int fd) {
  set_nonblocking(fd);
  Conn conn;
  conn.id = next_conn_id_++;
  conn_fd_by_id_.emplace(conn.id, fd);
  conns_.emplace(fd, std::move(conn));
}

bool Server::done() const {
  if (shutdown_flagged_ && conns_.empty()) return true;
  return listen_fd_ < 0 && conns_.empty();
}

void Server::begin_shutdown() {
  shutdown_flagged_ = true;
  close_listener();
  for (auto& [fd, conn] : conns_) conn.close_after_flush = true;
}

int Server::poll_once(int timeout_ms) {
  if (done()) return 0;
  std::vector<pollfd> fds;
  fds.reserve(conns_.size() + 2);
  if (wake_fds_[0] >= 0) fds.push_back(pollfd{wake_fds_[0], POLLIN, 0});
  if (listen_fd_ >= 0) fds.push_back(pollfd{listen_fd_, POLLIN, 0});
  for (const auto& [fd, conn] : conns_) {
    // A parked connection (output backlog or in-flight cap) is not read
    // until it unparks; the flush/completion paths re-drain any requests
    // parked in conn.in.
    short events = parked(conn) ? 0 : POLLIN;
    if (!conn.out.empty()) events |= POLLOUT;
    fds.push_back(pollfd{fd, events, 0});
  }
  if (fds.empty()) return 0;

  const int ready = ::poll(fds.data(), fds.size(), timeout_ms);
  int serviced = 0;
  if (ready > 0) {
    for (const pollfd& p : fds) {
      if (p.revents == 0) continue;
      ++serviced;
      if (p.fd == wake_fds_[0] && wake_fds_[0] >= 0) {
        // Drain the self-pipe; the completions themselves are processed
        // below, whether or not a wakeup byte made it into the pipe.
        std::uint8_t buf[256];
        while (::read(wake_fds_[0], buf, sizeof(buf)) > 0) {
        }
        continue;
      }
      if (p.fd == listen_fd_) {
        accept_ready();
        continue;
      }
      const auto it = conns_.find(p.fd);
      if (it == conns_.end()) continue;
      bool alive = true;
      if (p.revents & (POLLERR | POLLNVAL)) alive = false;
      if (alive && (p.revents & (POLLIN | POLLHUP)))
        alive = read_ready(p.fd, it->second);
      if (alive && (p.revents & POLLOUT)) {
        // Flushing may clear a backlog; serve any parked requests too.
        alive = write_ready(p.fd, it->second) &&
                service_frames(p.fd, it->second);
      }
      if (alive && it->second.close_after_flush && it->second.out.empty() &&
          it->second.inflight == 0)
        alive = false;
      if (!alive) close_conn(p.fd);
    }
  }
  if (threads_ > 0) serviced += drain_completions_and_service();
  // A shutdown handled this iteration flags every connection for
  // close-after-flush and stops accepting.
  if (registry_.shutting_down() && !shutdown_flagged_) begin_shutdown();
  // A connection whose replies were all flushed before the shutdown flag
  // landed will never see another poll event — sweep those here so run()
  // terminates without waiting for every peer to hang up.
  if (shutdown_flagged_) {
    std::vector<int> idle;
    for (const auto& [fd, conn] : conns_)
      if (conn.out.empty() && conn.inflight == 0) idle.push_back(fd);
    for (const int fd : idle) close_conn(fd);
  }
  return serviced;
}

void Server::run() {
  while (!done()) {
    if (poll_once(-1) == 0 && done()) break;
  }
}

void Server::accept_ready() {
  while (true) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) return;  // EAGAIN or transient error: back to poll
    if (shutdown_flagged_ ||
        conns_.size() >= static_cast<std::size_t>(options_.max_connections)) {
      ::close(fd);
      continue;
    }
    set_nonblocking(fd);
    Conn conn;
    conn.id = next_conn_id_++;
    conn_fd_by_id_.emplace(conn.id, fd);
    conns_.emplace(fd, std::move(conn));
  }
}

bool Server::read_ready(int fd, Conn& conn) {
  std::uint8_t buf[65536];
  while (!parked(conn)) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n > 0) {
      prof::count("svc.bytes_in", n);
      conn.in.insert(conn.in.end(), buf, buf + n);
      // Serve eagerly so single-threaded (pump-driven) clients see replies
      // on their next read without an extra poll round.
      if (!service_frames(fd, conn)) return false;
      continue;
    }
    if (n == 0) return false;  // peer closed
    return errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR;
  }
  return true;  // parked: leave the rest in the socket buffer
}

bool Server::service_frames(int fd, Conn& conn) {
  while (true) {
    const std::size_t before = conn.in.size();
    if (!drain_frames(conn)) return false;
    if (!write_ready(fd, conn)) return false;
    // Still parked after flushing: leave the rest where it is — POLLOUT is
    // armed while conn.out is non-empty, and completion delivery re-runs
    // this loop when in-flight requests finish.
    if (parked(conn)) return true;
    if (conn.in.size() == before) return true;  // no complete frame left
  }
}

bool Server::drain_frames(Conn& conn) {
  std::size_t consumed = 0;
  bool parked_input = false;
  while (conn.in.size() - consumed >= kHeaderBytes) {
    if (parked(conn)) {
      // Replies or in-flight work are piling up faster than the client
      // drains them: park the remaining requests until the connection
      // unparks.
      parked_input = true;
      prof::count("svc.shard.park_events");
      break;
    }
    const std::uint8_t* head = conn.in.data() + consumed;
    const auto h = decode_header(head);
    // Framing-level violations mean the stream is not speaking this
    // protocol at all — close instead of guessing at resync.
    if (!h) return false;
    if (h->payload_len > registry_.limits().max_frame_bytes) return false;
    if (conn.in.size() - consumed - kHeaderBytes < h->payload_len) break;
    Bytes payload(head + kHeaderBytes, head + kHeaderBytes + h->payload_len);
    consumed += kHeaderBytes + h->payload_len;

    Reply reply;
    if (h->version != kWireVersion) {
      prof::count("svc.errors");
      reply = Reply{kTypeError,
                    encode_error(Err::kBadVersion, "unsupported version")};
    } else if (crc32(payload) != h->payload_crc) {
      prof::count("svc.errors");
      reply = Reply{kTypeError, encode_error(Err::kBadCrc, "crc mismatch")};
    } else if (h->type == 0 || (h->type & kReplyBit) != 0) {
      prof::count("svc.errors");
      reply = Reply{kTypeError,
                    encode_error(Err::kBadOp, "not a request frame")};
    } else if (threads_ > 0 && Registry::is_session_op(h->type)) {
      // Data plane: pin to the session's shard and answer asynchronously.
      // A payload too short to carry an id fails validation identically on
      // every shard, so shard 0 is as good as any.
      int s = 0;
      if (const auto sid = Registry::peek_session(payload))
        s = registry_.shard_of(*sid);
      enqueue_request(conn, s, h->type, std::move(payload));
      continue;
    } else if (threads_ > 0 && Registry::is_queued_control_op(h->type)) {
      // Heavy control plane: workload-mesh construction and checkpoint
      // replay leave the poll thread for the single control FIFO. One
      // FIFO means session ids are still allocated in frame-arrival
      // order, so create replies are shard-count-invariant.
      enqueue_request(conn, threads_, h->type, std::move(payload));
      continue;
    } else {
      // Light control plane (and the serial server): handled inline on the
      // poll thread. A shutdown first waits for every shard — including
      // the control FIFO — to drain and delivers the finished replies, so
      // no accepted request is answered kShuttingDown, no reply is
      // reordered behind the shutdown ack, and an in-flight federated
      // migration round always quiesces before the daemon acks shutdown.
      if (threads_ > 0 && h->type == kOpShutdown) {
        quiesce_shards();
        deliver_completions();
      }
      reply = registry_.handle(h->type, payload);
    }
    const Bytes frame = encode_frame(reply.type, reply.payload);
    prof::count("svc.bytes_out", static_cast<std::int64_t>(frame.size()));
    conn.out.insert(conn.out.end(), frame.begin(), frame.end());
  }
  if (consumed > 0)
    conn.in.erase(conn.in.begin(),
                  conn.in.begin() + static_cast<std::ptrdiff_t>(consumed));
  // Anything buffered beyond a sane frame without completing one means the
  // declared length can never be satisfied within limits. Parked input is
  // exempt: it holds complete, valid frames awaiting unpark, and is bounded
  // because reading stops while the connection is parked.
  return parked_input ||
         conn.in.size() <=
             kHeaderBytes +
                 static_cast<std::size_t>(registry_.limits().max_frame_bytes);
}

bool Server::write_ready(int fd, Conn& conn) {
  while (!conn.out.empty()) {
    const ssize_t n =
        ::send(fd, conn.out.data(), conn.out.size(), MSG_NOSIGNAL);
    if (n > 0) {
      conn.out.erase(conn.out.begin(), conn.out.begin() + n);
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) return true;
    return false;
  }
  return true;
}

void Server::close_conn(int fd) {
  const auto it = conns_.find(fd);
  if (it != conns_.end()) {
    conn_fd_by_id_.erase(it->second.id);
    conns_.erase(it);
  }
  ::close(fd);
}

// ---- sharded mode -----------------------------------------------------------

void Server::enqueue_request(Conn& conn, int s, std::uint16_t op,
                             Bytes payload) {
  ++conn.inflight;
  Shard& shard = *shards_[static_cast<std::size_t>(s)];
  bool submit = false;
  std::size_t depth = 0;
  {
    util::MutexLock lock(shard.mutex);
    shard.queue.push_back(Request{conn.id, op, std::move(payload)});
    depth = shard.queue.size();
    if (!shard.scheduled) {
      shard.scheduled = true;
      submit = true;
    }
  }
  prof::count("svc.shard.enqueued");
  prof::gauge_max("svc.shard.queue_depth",
                  static_cast<std::int64_t>(depth));
  if (submit) task_pool_->submit([this, s] { drain_shard(s); });
}

void Server::drain_shard(int s) {
  Shard& shard = *shards_[static_cast<std::size_t>(s)];
  prof::count("svc.shard.drain_tasks");
  for (;;) {
    Request req;
    {
      util::MutexLock lock(shard.mutex);
      if (shard.queue.empty()) {
        // Clear-and-exit under the same lock as the enqueue check, so a
        // request arriving now either sees scheduled == true (this loop
        // picks it up) or schedules a fresh drain — never neither.
        shard.scheduled = false;
        break;
      }
      req = std::move(shard.queue.front());
      shard.queue.pop_front();
    }
    const bool measure = prof::enabled();
    const std::uint64_t t0 = measure ? now_ns() : 0;
    Reply reply = registry_.handle(req.op, req.payload);
    if (measure)
      prof::count("svc.shard.worker_busy_ns",
                  static_cast<std::int64_t>(now_ns() - t0));
    post_completion(req.conn, encode_frame(reply.type, reply.payload));
  }
  // Tell a quiescing poll thread this shard went idle. Locking the mutex
  // (without holding any shard lock) pairs with the wait's re-check so the
  // notification cannot slip between check and sleep.
  util::MutexLock lock(quiesce_mutex_);
  quiesce_cv_.notify_all();
}

void Server::post_completion(std::uint64_t conn_id, Bytes frame) {
  {
    util::MutexLock lock(completions_mutex_);
    completions_.push_back(Completion{conn_id, std::move(frame)});
  }
  // One byte wakes a blocked poll; EAGAIN means a wakeup is already
  // pending, which is just as good.
  const std::uint8_t b = 0;
  if (::write(wake_fds_[1], &b, 1) == 1) prof::count("svc.shard.wakeups");
}

std::vector<int> Server::deliver_completions() {
  std::vector<Completion> batch;
  {
    util::MutexLock lock(completions_mutex_);
    batch.swap(completions_);
  }
  std::vector<int> touched;
  for (Completion& c : batch) {
    const auto idit = conn_fd_by_id_.find(c.conn);
    if (idit == conn_fd_by_id_.end()) continue;  // connection is gone
    const int fd = idit->second;
    Conn& conn = conns_.find(fd)->second;
    prof::count("svc.bytes_out", static_cast<std::int64_t>(c.frame.size()));
    conn.out.insert(conn.out.end(), c.frame.begin(), c.frame.end());
    --conn.inflight;
    touched.push_back(fd);
  }
  std::sort(touched.begin(), touched.end());
  touched.erase(std::unique(touched.begin(), touched.end()), touched.end());
  return touched;
}

int Server::drain_completions_and_service() {
  const std::vector<int> touched = deliver_completions();
  int delivered = 0;
  for (const int fd : touched) {
    const auto it = conns_.find(fd);
    if (it == conns_.end()) continue;
    ++delivered;
    Conn& conn = it->second;
    bool alive = write_ready(fd, conn) && service_frames(fd, conn);
    if (alive && conn.close_after_flush && conn.out.empty() &&
        conn.inflight == 0)
      alive = false;
    if (!alive) close_conn(fd);
  }
  return delivered;
}

void Server::quiesce_shards() {
  if (threads_ == 0) return;
  util::MutexLock lock(quiesce_mutex_);
  for (;;) {
    bool idle = true;
    for (const auto& shard : shards_) {
      util::MutexLock g(shard->mutex);
      if (shard->scheduled || !shard->queue.empty()) {
        idle = false;
        break;
      }
    }
    if (idle) return;
    quiesce_cv_.wait(quiesce_mutex_);
  }
}

}  // namespace pnr::svc
