#pragma once
// Compile-time gating for the pnr::check validation subsystem. The audit
// depth is fixed at build time by -DPNR_CHECK_LEVEL=<n> (a CMake cache
// variable of the same name):
//   0  everything compiled out — the production/benchmark configuration;
//   1  cheap O(1)/O(n) pre- and postconditions at subsystem entry points;
//   2  level 1 plus full deep audits (pnr::check validators and the
//      structures' own self checks) at phase boundaries — the CI sanitizer
//      configuration. Expect whole-pipeline slowdowns of an order of
//      magnitude; never ship benchmarks built at level 2.
//
// This header is dependency-free beyond pnr::util so every layer (graph,
// mesh, partition, ...) can gate its own self-audits without linking the
// pnr_check library; the cross-structure validators in check/check.hpp are
// for call sites above the structures they inspect.

#include <string>

#include "util/assert.hpp"
#include "util/prof.hpp"

#ifndef PNR_CHECK_LEVEL
#define PNR_CHECK_LEVEL 0
#endif

namespace pnr::check {

inline constexpr int kLevel = PNR_CHECK_LEVEL;

/// Bridge for the string-returning self validators of the lower layers
/// (Graph::validate, TriMesh::check_invariants, PairQueueTable::self_check):
/// bump the check.* counters and abort with the violation text when
/// non-empty. `site` names the phase boundary for the failure message.
inline void enforce_empty(const std::string& violation, const char* site) {
  prof::count("check.audits");
  if (!violation.empty()) {
    prof::count("check.violations");
    util::contract_fail("deep invariant", violation.c_str(), site, 0, nullptr);
  }
}

}  // namespace pnr::check

// Level-1 pre/postcondition: evaluated when PNR_CHECK_LEVEL >= 1; still
// *compiled* (unevaluated sizeof) below that, so the condition cannot
// bit-rot or hide side effects in production builds.
#if PNR_CHECK_LEVEL >= 1
#define PNR_CHECK1(cond, msg)                                              \
  do {                                                                     \
    if (!(cond))                                                           \
      ::pnr::util::contract_fail("check[1]", #cond, __FILE__, __LINE__,    \
                                 msg);                                     \
  } while (0)
#else
#define PNR_CHECK1(cond, msg) ((void)sizeof(!(cond)))
#endif

// Level-2 deep audit of a string-returning validator at a phase boundary.
// The expression is not evaluated below level 2.
#if PNR_CHECK_LEVEL >= 2
#define PNR_CHECK2_AUDIT(site, string_expr) \
  ::pnr::check::enforce_empty((string_expr), site)
#else
#define PNR_CHECK2_AUDIT(site, string_expr) ((void)0)
#endif
