#pragma once
// Structured result of a pnr::check deep audit. Validators never abort on
// their own: they collect (code, message) violations into a CheckReport so
// tests can assert the *precise* defect and phase-boundary audits can print
// every finding before failing. Codes are stable machine-checkable ids
// ("csr.asymmetric", "conn.phantom", ...); messages carry the indices and
// values a human needs to localise the corruption.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace pnr::check {

struct Violation {
  std::string code;     ///< stable id, e.g. "csr.asymmetric"
  std::string message;  ///< diagnosis with offending indices/values
};

class CheckReport {
 public:
  explicit CheckReport(std::string subject) : subject_(std::move(subject)) {}

  const std::string& subject() const { return subject_; }
  bool ok() const { return violations_.empty(); }
  const std::vector<Violation>& violations() const { return violations_; }

  /// Record a violation. A badly corrupted structure can trip thousands of
  /// individual checks; only the first kMaxViolations are kept verbatim and
  /// the rest are counted, so reports stay readable and audits stay linear.
  void fail(std::string code, std::string message);

  /// True iff some recorded violation carries exactly this code.
  bool has(std::string_view code) const;

  /// Fold another report's findings into this one: its violations append
  /// after those already recorded (still subject to kMaxViolations, excess
  /// counted as dropped) and its dropped count carries over. Chunked
  /// parallel audits build one report per chunk and merge them in chunk
  /// order, which reproduces the serial walk's surviving violation set.
  void merge(CheckReport&& other);

  std::int64_t dropped() const { return dropped_; }

  /// "<subject>: ok" or one "<code>: <message>" line per violation.
  std::string to_string() const;

  static constexpr std::size_t kMaxViolations = 32;

 private:
  std::string subject_;
  std::vector<Violation> violations_;
  std::int64_t dropped_ = 0;
};

}  // namespace pnr::check
