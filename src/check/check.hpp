#pragma once
// pnr::check — deep structural validators for the core data structures. One
// audit per structure, each returning a structured CheckReport (never
// aborting on its own), unified behind the compile-time PNR_CHECK_LEVEL of
// check/level.hpp:
//
//   check_graph            CSR shape, symmetry, weight consistency, loops
//   check_mesh             tri/tet conformity, orientation, forest links
//   check_forest           refinement forest vs. the nested dual graph G
//                          (leaf counts = vertex weights, interface counts =
//                          edge weights — the contract PNR rests on)
//   check_partition        assignment shape, range, no empty subsets
//   check_partition_state  conn(v, part) rows, boundary set and subset
//                          weights vs. a from-scratch recompute
//   check_pairqueue        heap property + position-index consistency
//
// The validators are always compiled and callable (tests use them directly
// at every build level); only the *inline* audits at subsystem entry points
// are gated by PNR_CHECK_LEVEL. Phase-boundary call sites run a validator
// through enforce(), which bumps the check.audits / check.violations prof
// counters and aborts with the full report on any violation.

#include <vector>

#include "check/level.hpp"
#include "check/report.hpp"
#include "graph/csr.hpp"
#include "mesh/tet_mesh.hpp"
#include "mesh/tri_mesh.hpp"
#include "partition/conn.hpp"
#include "partition/pairqueue.hpp"
#include "partition/partition.hpp"

namespace pnr::check {

struct GraphCheckOptions {
  /// Most pnr graphs forbid self loops (dual graphs, contraction output);
  /// set to true for graphs where they are meaningful.
  bool allow_self_loops = false;
  /// Require each adjacency list sorted by neighbor id (holds for
  /// GraphBuilder output; contraction does not guarantee it).
  bool require_sorted_adjacency = false;
  /// Require strictly positive vertex weights (leaf counts are >= 1).
  bool require_positive_vertex_weights = false;
  /// Require strictly positive edge weights (adjacent-leaf-pair counts).
  bool require_positive_edge_weights = false;
};

/// Full CSR audit: shape, monotone xadj, neighbor range, duplicate arcs,
/// arc-level symmetry (weight equal in both directions), weight signs.
CheckReport check_graph(const graph::Graph& g,
                        const GraphCheckOptions& options = {});

/// Deep mesh audit: wraps the mesh's own check_invariants (conformity,
/// orientation, forest parent/child links, incidence maps, interface
/// counts) into a report.
CheckReport check_mesh(const mesh::TriMesh& mesh);
CheckReport check_mesh(const mesh::TetMesh& mesh);

/// Cross-structure audit of the refinement forest against the nested dual
/// graph G built from it: one vertex per initial element, vertex weight =
/// leaf count of its refinement tree, edge weight = adjacent leaf pairs
/// across the interface, total weight = |leaves|.
CheckReport check_forest(const mesh::TriMesh& mesh,
                         const graph::Graph& nested_dual);
CheckReport check_forest(const mesh::TetMesh& mesh,
                         const graph::Graph& nested_dual);

/// Assignment audit: size matches the graph, every subset id in range,
/// every subset non-empty (the processor count is fixed).
CheckReport check_partition(const graph::Graph& g, const part::Partition& pi);

/// Incremental-state audit: every conn(v, part) row equals a from-scratch
/// rebuild (no wrong weights, no phantom or missing slots); when given, the
/// boundary set holds exactly the vertices with a cross-partition edge and
/// the cached subset weights match a recompute.
CheckReport check_partition_state(
    const graph::Graph& g, const part::Partition& pi,
    const part::ConnTable& conn, const part::VertexSet* boundary = nullptr,
    const std::vector<graph::Weight>* weights = nullptr);

/// Indexed-heap audit of the KL candidate table.
CheckReport check_pairqueue(const part::PairQueueTable& queue);

/// Phase-boundary enforcement: bump check.audits (and check.violations when
/// the report is bad), then abort printing the full report. Level gating is
/// the caller's: `if constexpr (pnr::check::kLevel >= 2) enforce(...)`.
void enforce(const CheckReport& report, const char* site);

}  // namespace pnr::check
