#pragma once
// Cross-shard conformity validators for the socket federation
// (docs/FEDERATION.md). Each federated repartition round, every shard
// reports the coarse-graph weights of the trees it owns; the coordinator
// audits the union before any partitioner sees it:
//
//   check_fed_reports   every coarse vertex owned exactly once with a
//                       positive leaf count, interface edges well-formed,
//                       and every cross-shard edge reported identically by
//                       both endpoint owners (the primary/echo agreement);
//   check_fed_commit    after the ownership flip: no leaf lost or counted
//                       twice across shards, and every shard adopted the
//                       same assignment digest the coordinator computed.
//
// Like every pnr::check validator these never abort — the coordinator
// decides whether a violation kills the round or just the report.

#include <cstdint>
#include <span>
#include <vector>

#include "check/report.hpp"
#include "graph/csr.hpp"
#include "mesh/types.hpp"

namespace pnr::check {

/// One interface edge of the coarse graph as a shard reports it:
/// a < b, w = adjacent leaf pairs across the {a, b} interface.
struct FedEdge {
  mesh::ElemIdx a = 0;
  mesh::ElemIdx b = 0;
  graph::Weight w = 0;
};
static_assert(sizeof(FedEdge) == 16, "FedEdge must be packed for the wire");

/// One shard's P1/P2 report: the coarse vertices it owns with their leaf
/// counts, the interface edges it is primary for (it owns min(a, b)), and
/// an echo of every edge whose max(a, b) endpoint it owns but whose
/// min(a, b) endpoint it does not — the redundancy that lets the
/// coordinator prove two shards agree on every cross-shard interface.
struct FedShardReport {
  std::vector<mesh::ElemIdx> owned;
  std::vector<graph::Weight> owned_weights;
  std::vector<FedEdge> primary;
  std::vector<FedEdge> echo;
};

/// Audit the union of all shards' reports against a coarse graph with
/// `coarse` vertices. Codes: fed.vertex.range, fed.vertex.shape,
/// fed.vertex.duplicate, fed.vertex.missing, fed.vertex.weight,
/// fed.edge.range, fed.edge.order, fed.edge.duplicate, fed.edge.weight,
/// fed.edge.owner, fed.edge.unmatched.
CheckReport check_fed_reports(mesh::ElemIdx coarse,
                              std::span<const FedShardReport> reports);

/// Audit the post-commit barrier: `owned_leaves[i]` is shard i's owned leaf
/// total (must sum to `total_leaves` — no lost or duplicated leaves) and
/// `assign_fps[i]` its adopted-assignment digest (must all equal
/// `expect_fp`, the coordinator's own). Codes: fed.leaves.sum,
/// fed.assign.divergent.
CheckReport check_fed_commit(std::int64_t total_leaves,
                             std::span<const std::int64_t> owned_leaves,
                             std::span<const std::uint64_t> assign_fps,
                             std::uint64_t expect_fp);

}  // namespace pnr::check
