#include <string>
#include <vector>

#include "check/check.hpp"
#include "util/prof.hpp"

namespace pnr::check {

CheckReport check_partition(const graph::Graph& g, const part::Partition& pi) {
  prof::count("check.partition");
  CheckReport report("partition");
  const auto n = static_cast<std::size_t>(g.num_vertices());
  if (pi.num_parts <= 0) {
    report.fail("part.num_parts",
                "num_parts = " + std::to_string(pi.num_parts));
    return report;
  }
  if (pi.assign.size() != n) {
    report.fail("part.size", "assignment has " +
                                 std::to_string(pi.assign.size()) +
                                 " entries for " + std::to_string(n) +
                                 " vertices");
    return report;
  }
  std::vector<std::int64_t> count(static_cast<std::size_t>(pi.num_parts), 0);
  for (std::size_t v = 0; v < n; ++v) {
    const part::PartId s = pi.assign[v];
    if (s < 0 || s >= pi.num_parts) {
      report.fail("part.range", "vertex " + std::to_string(v) +
                                    " assigned to subset " +
                                    std::to_string(s));
      continue;
    }
    ++count[static_cast<std::size_t>(s)];
  }
  // The subsets model a fixed set of processors: none may go idle.
  if (n >= static_cast<std::size_t>(pi.num_parts))
    for (part::PartId s = 0; s < pi.num_parts; ++s)
      if (count[static_cast<std::size_t>(s)] == 0)
        report.fail("part.empty_subset",
                    "subset " + std::to_string(s) + " is empty");
  return report;
}

CheckReport check_partition_state(const graph::Graph& g,
                                  const part::Partition& pi,
                                  const part::ConnTable& conn,
                                  const part::VertexSet* boundary,
                                  const std::vector<graph::Weight>* weights) {
  prof::count("check.partition_state");
  CheckReport report("partition_state");
  {
    const CheckReport base = check_partition(g, pi);
    for (const Violation& v : base.violations())
      report.fail(v.code, v.message);
    if (!report.ok()) return report;  // rows are indexed by the assignment
  }

  // Rebuild the connectivity rows from scratch and require exact agreement
  // in both directions: no wrong weights, no missing or phantom slots.
  part::ConnTable fresh;
  fresh.build(g, pi.assign, pi.num_parts);
  for (graph::VertexId v = 0; v < g.num_vertices(); ++v) {
    for (const part::ConnTable::Slot& s : fresh.entries(v))
      if (conn.get(v, s.part) != s.weight)
        report.fail("conn.weight",
                    "conn(" + std::to_string(v) + ", " +
                        std::to_string(s.part) + ") = " +
                        std::to_string(conn.get(v, s.part)) +
                        " but adjacency recompute gives " +
                        std::to_string(s.weight));
    for (const part::ConnTable::Slot& s : conn.entries(v))
      if (fresh.get(v, s.part) == 0)
        report.fail("conn.phantom",
                    "conn(" + std::to_string(v) + ", " +
                        std::to_string(s.part) + ") holds phantom weight " +
                        std::to_string(s.weight));

    if (boundary != nullptr) {
      const bool expect =
          fresh.is_boundary(v, pi.assign[static_cast<std::size_t>(v)]);
      const bool have = boundary->contains(v);
      if (expect && !have)
        report.fail("boundary.missing", "vertex " + std::to_string(v) +
                                            " has a cross edge but is not "
                                            "in the boundary set");
      if (!expect && have)
        report.fail("boundary.phantom", "vertex " + std::to_string(v) +
                                            " is interior but sits in the "
                                            "boundary set");
    }
  }

  // Balance accounting: cached subset weights against a recompute.
  if (weights != nullptr) {
    const std::vector<graph::Weight> fresh_weights = part_weights(g, pi);
    if (weights->size() != fresh_weights.size()) {
      report.fail("weights.size", "cached weights have " +
                                      std::to_string(weights->size()) +
                                      " entries for " +
                                      std::to_string(fresh_weights.size()) +
                                      " subsets");
    } else {
      for (std::size_t s = 0; s < fresh_weights.size(); ++s)
        if ((*weights)[s] != fresh_weights[s])
          report.fail("weights.mismatch",
                      "subset " + std::to_string(s) + " cached weight " +
                          std::to_string((*weights)[s]) + " vs recomputed " +
                          std::to_string(fresh_weights[s]));
    }
  }
  return report;
}

CheckReport check_pairqueue(const part::PairQueueTable& queue) {
  prof::count("check.pairqueue");
  CheckReport report("pairqueue");
  const std::string violation = queue.self_check();
  if (!violation.empty()) report.fail("pairqueue.invariant", violation);
  return report;
}

}  // namespace pnr::check
