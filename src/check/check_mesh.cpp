#include <string>

#include "check/check.hpp"
#include "util/prof.hpp"

namespace pnr::check {

namespace {

/// Shared forest-vs-nested-dual audit. The mesh type only contributes its
/// leaf counters and interface iteration, which TriMesh and TetMesh expose
/// identically.
template <typename Mesh>
CheckReport check_forest_impl(const Mesh& mesh,
                              const graph::Graph& nested_dual) {
  prof::count("check.forest");
  CheckReport report("forest");

  const auto initial = mesh.num_initial_elements();
  if (nested_dual.num_vertices() != initial) {
    report.fail("forest.vertex_count",
                "nested dual has " +
                    std::to_string(nested_dual.num_vertices()) +
                    " vertices for " + std::to_string(initial) +
                    " initial elements");
    return report;
  }

  // Vertex weights are the leaf counts of each refinement tree, and they
  // must add up to the current leaf mesh size.
  graph::Weight total = 0;
  for (mesh::ElemIdx c = 0; c < initial; ++c) {
    const auto leaves = mesh.leaf_count(c);
    total += leaves;
    if (leaves <= 0)
      report.fail("forest.empty_tree", "initial element " + std::to_string(c) +
                                           " has leaf count " +
                                           std::to_string(leaves));
    if (nested_dual.vertex_weight(c) != leaves)
      report.fail("forest.leaf_weight",
                  "initial element " + std::to_string(c) + " has " +
                      std::to_string(leaves) + " leaves but dual weight " +
                      std::to_string(nested_dual.vertex_weight(c)));
  }
  if (total != mesh.num_leaves())
    report.fail("forest.total_leaves",
                "leaf counters sum to " + std::to_string(total) + " but " +
                    std::to_string(mesh.num_leaves()) + " leaves are alive");

  // Edge weights are the adjacent-leaf-pair counts across each interface;
  // the dual must carry exactly the nonzero interfaces, no extras.
  std::int64_t interfaces = 0;
  mesh.for_each_coarse_interface(
      [&](mesh::ElemIdx c1, mesh::ElemIdx c2, std::int64_t w) {
        ++interfaces;
        const graph::Weight dual_w = nested_dual.edge_weight(c1, c2);
        if (dual_w != w)
          report.fail("forest.interface_weight",
                      "interface {" + std::to_string(c1) + "," +
                          std::to_string(c2) + "} has " + std::to_string(w) +
                          " adjacent leaf pairs but dual edge weight " +
                          std::to_string(dual_w));
      });
  if (nested_dual.num_edges() != interfaces)
    report.fail("forest.edge_count",
                "nested dual has " + std::to_string(nested_dual.num_edges()) +
                    " edges for " + std::to_string(interfaces) +
                    " live interfaces");
  return report;
}

}  // namespace

CheckReport check_mesh(const mesh::TriMesh& mesh) {
  prof::count("check.mesh");
  CheckReport report("tri_mesh");
  const std::string violation = mesh.check_invariants();
  if (!violation.empty()) report.fail("mesh.invariant", violation);
  return report;
}

CheckReport check_mesh(const mesh::TetMesh& mesh) {
  prof::count("check.mesh");
  CheckReport report("tet_mesh");
  const std::string violation = mesh.check_invariants();
  if (!violation.empty()) report.fail("mesh.invariant", violation);
  return report;
}

CheckReport check_forest(const mesh::TriMesh& mesh,
                         const graph::Graph& nested_dual) {
  return check_forest_impl(mesh, nested_dual);
}

CheckReport check_forest(const mesh::TetMesh& mesh,
                         const graph::Graph& nested_dual) {
  return check_forest_impl(mesh, nested_dual);
}

}  // namespace pnr::check
