#include "check/report.hpp"

#include "util/assert.hpp"
#include "util/prof.hpp"

namespace pnr::check {

void CheckReport::fail(std::string code, std::string message) {
  if (violations_.size() >= kMaxViolations) {
    ++dropped_;
    return;
  }
  violations_.push_back({std::move(code), std::move(message)});
}

void CheckReport::merge(CheckReport&& other) {
  for (Violation& v : other.violations_) {
    if (violations_.size() >= kMaxViolations) {
      ++dropped_;
      continue;
    }
    violations_.push_back(std::move(v));
  }
  dropped_ += other.dropped_;
  other.violations_.clear();
  other.dropped_ = 0;
}

bool CheckReport::has(std::string_view code) const {
  for (const Violation& v : violations_)
    if (v.code == code) return true;
  return false;
}

std::string CheckReport::to_string() const {
  if (ok()) return subject_ + ": ok";
  std::string out = subject_ + ": " + std::to_string(violations_.size()) +
                    " violation(s)";
  if (dropped_ > 0)
    out += " (+" + std::to_string(dropped_) + " more dropped)";
  for (const Violation& v : violations_)
    out += "\n  " + v.code + ": " + v.message;
  return out;
}

void enforce(const CheckReport& report, const char* site) {
  prof::count("check.audits");
  if (report.ok()) return;
  prof::count("check.violations",
              static_cast<std::int64_t>(report.violations().size()));
  util::contract_fail("deep audit", report.to_string().c_str(), site, 0,
                      nullptr);
}

}  // namespace pnr::check
