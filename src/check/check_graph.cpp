#include <string>
#include <unordered_set>

#include "check/check.hpp"
#include "exec/pool.hpp"
#include "util/prof.hpp"

namespace pnr::check {

namespace {

std::string at_vertex(graph::VertexId v) {
  return "vertex " + std::to_string(v);
}

}  // namespace

CheckReport check_graph(const graph::Graph& g,
                        const GraphCheckOptions& options) {
  prof::count("check.graph");
  CheckReport report("graph");
  const graph::VertexId n = g.num_vertices();
  const auto& xadj = g.xadj();
  const auto& adjncy = g.adjncy();
  const auto& adjwgt = g.adjwgt();
  const auto& vwgt = g.vwgt();

  // Shape: the CSR arrays must agree before any per-vertex walk is safe.
  if (xadj.size() != static_cast<std::size_t>(n) + 1) {
    report.fail("csr.shape", "xadj has " + std::to_string(xadj.size()) +
                                 " entries for " + std::to_string(n) +
                                 " vertices");
    return report;
  }
  if (xadj.front() != 0)
    report.fail("csr.shape", "xadj[0] = " + std::to_string(xadj.front()));
  for (graph::VertexId v = 0; v < n; ++v)
    if (xadj[static_cast<std::size_t>(v)] >
        xadj[static_cast<std::size_t>(v) + 1]) {
      report.fail("csr.monotone", "xadj decreases at " + at_vertex(v));
      return report;
    }
  if (xadj.back() != static_cast<std::int64_t>(adjncy.size())) {
    report.fail("csr.shape",
                "xadj ends at " + std::to_string(xadj.back()) + " but " +
                    std::to_string(adjncy.size()) + " arcs are stored");
    return report;
  }
  if (adjncy.size() != adjwgt.size()) {
    report.fail("csr.shape", "adjncy/adjwgt size mismatch: " +
                                 std::to_string(adjncy.size()) + " vs " +
                                 std::to_string(adjwgt.size()));
    return report;
  }

  // Arc-level audit: range, self loops, duplicates, sortedness, weights.
  // Vertices are audited independently, so chunks run on the pool; merging
  // the per-chunk reports in chunk (== vertex) order reproduces exactly the
  // violation set the serial walk would keep.
  CheckReport arcs = exec::default_pool().parallel_reduce(
      static_cast<std::int64_t>(n), CheckReport("graph"),
      [&](std::int64_t cb, std::int64_t ce) {
        CheckReport local("graph");
        std::unordered_set<graph::VertexId> seen;
        for (std::int64_t i = cb; i < ce; ++i) {
          const auto v = static_cast<graph::VertexId>(i);
          seen.clear();
          graph::VertexId prev = graph::kInvalidVertex;
          for (std::int64_t e = xadj[static_cast<std::size_t>(v)];
               e < xadj[static_cast<std::size_t>(v) + 1]; ++e) {
            const graph::VertexId u = adjncy[static_cast<std::size_t>(e)];
            if (u < 0 || u >= n) {
              local.fail("csr.range", at_vertex(v) + " has neighbor " +
                                          std::to_string(u) + " outside [0, " +
                                          std::to_string(n) + ")");
              continue;
            }
            if (u == v && !options.allow_self_loops)
              local.fail("csr.self_loop", at_vertex(v) + " has a self loop");
            if (!seen.insert(u).second)
              local.fail("csr.duplicate", at_vertex(v) + " lists neighbor " +
                                              std::to_string(u) + " twice");
            if (options.require_sorted_adjacency &&
                prev != graph::kInvalidVertex && u <= prev)
              local.fail("csr.unsorted",
                         at_vertex(v) + " adjacency not sorted (" +
                             std::to_string(prev) + " before " +
                             std::to_string(u) + ")");
            prev = u;
            const graph::Weight w = adjwgt[static_cast<std::size_t>(e)];
            if (w < 0 || (options.require_positive_edge_weights && w == 0))
              local.fail("weight.edge", "edge {" + std::to_string(v) + "," +
                                            std::to_string(u) +
                                            "} has weight " +
                                            std::to_string(w));
            // Symmetry: the reverse arc must exist with equal weight.
            if (u != v && g.edge_weight(u, v) != w)
              local.fail("csr.asymmetric",
                         "edge {" + std::to_string(v) + "," +
                             std::to_string(u) + "} stored with weight " +
                             std::to_string(w) + " forward but " +
                             std::to_string(g.edge_weight(u, v)) +
                             " backward");
          }
        }
        return local;
      },
      [](CheckReport a, CheckReport b) {
        a.merge(std::move(b));
        return a;
      },
      exec::Chunking{1024, 4096});
  report.merge(std::move(arcs));

  for (graph::VertexId v = 0; v < n; ++v) {
    const graph::Weight w = vwgt[static_cast<std::size_t>(v)];
    if (w < 0 || (options.require_positive_vertex_weights && w == 0))
      report.fail("weight.vertex",
                  at_vertex(v) + " has weight " + std::to_string(w));
  }
  return report;
}

}  // namespace pnr::check
