#include "check/check_fed.hpp"

#include <algorithm>
#include <string>
#include <unordered_map>
#include <vector>

namespace pnr::check {

namespace {

std::string edge_str(const FedEdge& e) {
  return "{" + std::to_string(e.a) + "," + std::to_string(e.b) +
         "} w=" + std::to_string(e.w);
}

std::uint64_t edge_key(const FedEdge& e) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(e.b)) << 32) |
         static_cast<std::uint32_t>(e.a);
}

}  // namespace

CheckReport check_fed_reports(mesh::ElemIdx coarse,
                              std::span<const FedShardReport> reports) {
  CheckReport report("fed interface reports");
  const auto n = static_cast<std::size_t>(coarse);

  // Vertex coverage: every coarse vertex owned by exactly one shard, with a
  // positive leaf count.
  std::vector<std::int32_t> owner(n, -1);
  for (std::size_t s = 0; s < reports.size(); ++s) {
    const FedShardReport& r = reports[s];
    if (r.owned.size() != r.owned_weights.size()) {
      report.fail("fed.vertex.shape",
                  "shard " + std::to_string(s) + " reports " +
                      std::to_string(r.owned.size()) + " vertices but " +
                      std::to_string(r.owned_weights.size()) + " weights");
      continue;
    }
    for (std::size_t i = 0; i < r.owned.size(); ++i) {
      const mesh::ElemIdx v = r.owned[i];
      if (v < 0 || v >= coarse) {
        report.fail("fed.vertex.range",
                    "shard " + std::to_string(s) + " owns vertex " +
                        std::to_string(v) + " outside [0," +
                        std::to_string(coarse) + ")");
        continue;
      }
      if (owner[static_cast<std::size_t>(v)] >= 0)
        report.fail("fed.vertex.duplicate",
                    "vertex " + std::to_string(v) + " owned by shards " +
                        std::to_string(owner[static_cast<std::size_t>(v)]) +
                        " and " + std::to_string(s));
      else
        owner[static_cast<std::size_t>(v)] = static_cast<std::int32_t>(s);
      if (r.owned_weights[i] <= 0)
        report.fail("fed.vertex.weight",
                    "vertex " + std::to_string(v) + " has leaf count " +
                        std::to_string(r.owned_weights[i]));
    }
  }
  for (std::size_t v = 0; v < n; ++v)
    if (owner[v] < 0)
      report.fail("fed.vertex.missing",
                  "vertex " + std::to_string(v) + " owned by no shard");

  // Edge well-formedness plus the cross-shard agreement protocol: the owner
  // of min(a,b) is primary for the edge; the owner of max(a,b), when
  // different, must echo it with the identical weight.
  std::unordered_map<std::uint64_t, FedEdge> primaries;
  std::unordered_map<std::uint64_t, FedEdge> echoes;
  const auto well_formed = [&](std::size_t s, const FedEdge& e) {
    if (e.a < 0 || e.b < 0 || e.a >= coarse || e.b >= coarse) {
      report.fail("fed.edge.range", "shard " + std::to_string(s) +
                                        " edge " + edge_str(e) +
                                        " endpoint out of range");
      return false;
    }
    if (e.a >= e.b) {
      report.fail("fed.edge.order", "shard " + std::to_string(s) + " edge " +
                                        edge_str(e) + " not ordered a < b");
      return false;
    }
    if (e.w <= 0) {
      report.fail("fed.edge.weight", "shard " + std::to_string(s) + " edge " +
                                         edge_str(e) + " non-positive");
      return false;
    }
    return true;
  };
  for (std::size_t s = 0; s < reports.size(); ++s) {
    for (const FedEdge& e : reports[s].primary) {
      if (!well_formed(s, e)) continue;
      if (owner[static_cast<std::size_t>(e.a)] !=
          static_cast<std::int32_t>(s))
        report.fail("fed.edge.owner",
                    "shard " + std::to_string(s) + " primary for edge " +
                        edge_str(e) + " without owning vertex " +
                        std::to_string(e.a));
      if (!primaries.emplace(edge_key(e), e).second)
        report.fail("fed.edge.duplicate",
                    "edge " + edge_str(e) + " reported primary twice");
    }
    for (const FedEdge& e : reports[s].echo) {
      if (!well_formed(s, e)) continue;
      if (owner[static_cast<std::size_t>(e.b)] !=
          static_cast<std::int32_t>(s))
        report.fail("fed.edge.owner",
                    "shard " + std::to_string(s) + " echoes edge " +
                        edge_str(e) + " without owning vertex " +
                        std::to_string(e.b));
      if (!echoes.emplace(edge_key(e), e).second)
        report.fail("fed.edge.duplicate",
                    "edge " + edge_str(e) + " echoed twice");
    }
  }
  for (const auto& [key, e] : primaries) {
    const std::int32_t lo_owner = owner[static_cast<std::size_t>(e.a)];
    const std::int32_t hi_owner = owner[static_cast<std::size_t>(e.b)];
    if (lo_owner == hi_owner) continue;  // intra-shard edge: no echo due
    const auto it = echoes.find(key);
    if (it == echoes.end())
      report.fail("fed.edge.unmatched",
                  "cross-shard edge " + edge_str(e) + " never echoed by the " +
                      std::to_string(e.b) + "-side owner");
    else if (it->second.w != e.w)
      report.fail("fed.edge.weight",
                  "edge {" + std::to_string(e.a) + "," + std::to_string(e.b) +
                      "} weight disagreement: primary " + std::to_string(e.w) +
                      " vs echo " + std::to_string(it->second.w));
  }
  for (const auto& [key, e] : echoes)
    if (primaries.find(key) == primaries.end())
      report.fail("fed.edge.unmatched",
                  "echoed edge " + edge_str(e) + " has no primary report");
  return report;
}

CheckReport check_fed_commit(std::int64_t total_leaves,
                             std::span<const std::int64_t> owned_leaves,
                             std::span<const std::uint64_t> assign_fps,
                             std::uint64_t expect_fp) {
  CheckReport report("fed commit barrier");
  std::int64_t sum = 0;
  for (const std::int64_t leaves : owned_leaves) sum += leaves;
  if (sum != total_leaves)
    report.fail("fed.leaves.sum",
                "shards own " + std::to_string(sum) + " leaves of " +
                    std::to_string(total_leaves) +
                    " (lost or duplicated trees)");
  for (std::size_t s = 0; s < assign_fps.size(); ++s)
    if (assign_fps[s] != expect_fp)
      report.fail("fed.assign.divergent",
                  "shard " + std::to_string(s) +
                      " adopted assignment digest diverges from the "
                      "coordinator");
  return report;
}

}  // namespace pnr::check
