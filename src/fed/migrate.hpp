#pragma once
// Federation migration payloads: refinement-history subtrees as wire bytes.
//
// A federated shard holds a *replicated* mesh (the PARED replication
// invariant — every daemon adapts the identical mesh deterministically) but
// each refinement tree is owned by exactly one shard. Migration therefore
// ships real serialized subtree bytes, and the receiver proves the payload
// matches its replica bit for bit (ids, topology, levels, geometry) before
// accepting ownership. The byte layout is exactly par::ParedRankT's
// serialize_tree, so the simulator and the socket federation measure the
// same payload volumes:
//
//   u64 node_count, then per node (DFS, child[1] before child[0] popped):
//   i32 elem, kVertsPerElem × i32 vert, i16 level, u8 leaf,
//   kVertsPerElem × kDim × f64 coords.
//
// Unlike the simulator's aborting validator, verify_subtree answers a trust
// boundary: payloads arrive over sockets, so every mismatch is a returned
// diagnosis, never a crash.

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "mesh/tet_mesh.hpp"
#include "mesh/tri_mesh.hpp"
#include "partition/partition.hpp"

namespace pnr::fed {

using Bytes = std::vector<std::uint8_t>;

namespace detail {

/// The slice of mesh API the migration codec needs, specialized per mesh
/// family (kept local so pnr_fed does not depend on the simulator or fem).
template <typename Mesh>
struct MeshTraits;

template <>
struct MeshTraits<mesh::TriMesh> {
  static constexpr int kVertsPerElem = 3;
  static constexpr int kDim = 2;
  static const auto& elem(const mesh::TriMesh& m, mesh::ElemIdx e) {
    return m.tri(e);
  }
  static void coords(const mesh::TriMesh& m, mesh::VertIdx v, double* out) {
    const auto& p = m.vertex(v);
    out[0] = p.x;
    out[1] = p.y;
  }
  template <typename F>
  static void for_each_interface(const mesh::TriMesh& m, F&& f) {
    m.for_each_leaf_edge([&](mesh::VertIdx, mesh::VertIdx, mesh::ElemIdx e1,
                             mesh::ElemIdx e2) { f(e1, e2); });
  }
};

template <>
struct MeshTraits<mesh::TetMesh> {
  static constexpr int kVertsPerElem = 4;
  static constexpr int kDim = 3;
  static const auto& elem(const mesh::TetMesh& m, mesh::ElemIdx e) {
    return m.tet(e);
  }
  static void coords(const mesh::TetMesh& m, mesh::VertIdx v, double* out) {
    const auto& p = m.vertex(v);
    out[0] = p.x;
    out[1] = p.y;
    out[2] = p.z;
  }
  template <typename F>
  static void for_each_interface(const mesh::TetMesh& m, F&& f) {
    m.for_each_leaf_face([&](mesh::VertIdx, mesh::VertIdx, mesh::VertIdx,
                             mesh::ElemIdx e1, mesh::ElemIdx e2) {
      f(e1, e2);
    });
  }
};

}  // namespace detail

/// Serialize the refinement-history subtree rooted at initial element
/// `root` (which must be alive) into a migration payload.
template <typename Mesh>
Bytes pack_subtree(const Mesh& mesh, mesh::ElemIdx root);

/// What a verified payload contained.
struct SubtreeInfo {
  std::int64_t nodes = 0;   ///< history nodes (interior + leaves)
  std::int64_t leaves = 0;  ///< current finest-mesh members
};

/// Prove `data` is exactly pack_subtree(mesh, root) — element ids in range,
/// every node matching the replica bit for bit, no trailing bytes. Returns
/// nullopt with `why` set on the first mismatch; never aborts (payloads
/// cross a process trust boundary).
template <typename Mesh>
std::optional<SubtreeInfo> verify_subtree(const Mesh& mesh,
                                          mesh::ElemIdx root,
                                          const std::uint8_t* data,
                                          std::size_t size,
                                          std::string* why = nullptr);

/// Digest of the current leaves (ids, ancestry, levels, geometry bits) in
/// deterministic leaf order. Replicated meshes agree on this after every
/// adaptation round; any divergence between daemons is caught here before
/// it can corrupt a migration plan.
template <typename Mesh>
std::uint64_t mesh_fingerprint(const Mesh& mesh);

/// Digest of an assignment vector (leaf/coarse order as passed).
std::uint64_t assignment_fingerprint(std::span<const part::PartId> assign);

/// Current element tags in dense leaf order (the adopted assignment).
template <typename Mesh>
std::vector<part::PartId> leaf_tags(const Mesh& mesh);

}  // namespace pnr::fed
