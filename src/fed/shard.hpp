#pragma once
// Shard-side federation state machine (docs/FEDERATION.md).
//
// A shard is one daemon's slice of a federated repartition round: a real
// transient workload run on a *replicated* mesh plus an ownership vector
// over the refinement trees (one owner per initial element, the PARED
// replication model on sockets). The coordinator drives the round protocol:
//
//   advance          step the replicated workload (every shard identically);
//   interface_report gather this shard's owned coarse weights + interface
//                    edges (primary for owned-min edges, echo for owned-max
//                    cross-shard edges — check::check_fed_reports audits);
//   apply_plan       stage the coordinator's next assignment and pack the
//                    refinement-history subtrees leaving this shard;
//   ingest           verify an incoming subtree bit-for-bit against the
//                    replica before accepting ownership;
//   commit           flip ownership to the staged plan and re-tag leaves.
//
// Every mutating transition (advance / apply_plan / commit) is
// deterministic from the workload spec + op sequence, so svc checkpoints
// replay shards exactly like single-process sessions. ingest mutates
// nothing — the replica already holds every element — which is why it is
// pure validation and never enters the oplog.

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "check/check_fed.hpp"
#include "fed/migrate.hpp"
#include "pared/workloads.hpp"
#include "partition/partition.hpp"

namespace pnr::fed {

template <typename Run>
class ShardT {
 public:
  using Mesh = std::remove_cvref_t<decltype(std::declval<Run&>().mesh())>;

  /// `rank` in [0, count): this daemon's slot. Tree `c` starts owned by
  /// shard `c % count` on every shard (deterministic, no round needed).
  ShardT(Run run, int rank, int count);

  struct AdvanceResult {
    int step = 0;
    double t = 0.0;
    std::int64_t bisections = 0;
    std::int64_t merges = 0;
    std::int64_t elements = 0;  ///< leaves after the step
    std::uint64_t mesh_fp = 0;  ///< replica digest after the step
  };

  /// One subtree leaving this shard for `dest`.
  struct Outgoing {
    int dest = 0;
    mesh::ElemIdx root = 0;
    Bytes payload;
  };

  struct PlanResult {
    std::int64_t trees_out = 0;
    std::int64_t elements_out = 0;  ///< leaves leaving this shard
    std::vector<Outgoing> outgoing;
  };

  struct CommitResult {
    std::int64_t elements = 0;      ///< total replica leaves
    std::int64_t owned_leaves = 0;  ///< leaves owned after the flip
    std::uint64_t assign_fp = 0;    ///< digest of the adopted ownership
    std::uint64_t mesh_fp = 0;
  };

  /// Step the replicated workload. Fails (nullopt + why) when the workload
  /// is finished or a migration round is still in flight.
  std::optional<AdvanceResult> advance(std::string* why = nullptr);

  /// This shard's slice of the coarse graph: owned vertices with leaf
  /// counts, primary edges (it owns min(a, b)), echoes of cross-shard
  /// edges whose max endpoint it owns. Edges sorted by (a, b).
  check::FedShardReport interface_report() const;

  /// Stage the coordinator's next coarse assignment and pack every subtree
  /// this shard must ship. Fails on shape/range errors or when a plan is
  /// already staged.
  std::optional<PlanResult> apply_plan(std::span<const part::PartId> next,
                                       std::string* why = nullptr);

  struct IngestResult {
    std::int64_t nodes = 0;
    std::int64_t leaves = 0;
  };

  /// Verify a subtree pushed by shard `src` bit-for-bit against the
  /// replica. Requires a staged plan that moves `root` from `src` to this
  /// shard. Pure validation: the replica already holds the elements, so a
  /// hostile payload is rejected with a diagnosis and no state changes.
  std::optional<IngestResult> ingest(int src, mesh::ElemIdx root,
                                     const std::uint8_t* data,
                                     std::size_t size,
                                     std::string* why = nullptr);

  /// Flip ownership to the staged plan and re-tag every leaf with its new
  /// owner (mesh tags follow adaptation, so subsequent rounds inherit the
  /// adopted partition). Fails when no plan is staged.
  std::optional<CommitResult> commit(std::string* why = nullptr);

  int rank() const { return rank_; }
  int count() const { return count_; }
  bool done() const { return run_.done(); }
  int step() const { return run_.step(); }
  bool plan_staged() const { return staged_.has_value(); }
  std::int64_t elements() const { return run_.mesh().num_leaves(); }
  std::int64_t owned_leaves() const;
  std::uint64_t mesh_fp() const { return mesh_fingerprint(run_.mesh()); }
  std::uint64_t assign_fp() const {
    return assignment_fingerprint(ownership_);
  }
  const Run& run() const { return run_; }
  const std::vector<part::PartId>& ownership() const { return ownership_; }

 private:
  Run run_;
  int rank_;
  int count_;
  /// Owner shard of each refinement tree, indexed by initial element.
  std::vector<part::PartId> ownership_;
  /// Assignment staged by apply_plan, adopted by commit.
  std::optional<std::vector<part::PartId>> staged_;
};

using Shard2D = ShardT<pared::TransientRun>;
using Shard3D = ShardT<pared::TransientRun3D>;

extern template class ShardT<pared::TransientRun>;
extern template class ShardT<pared::TransientRun3D>;

}  // namespace pnr::fed
