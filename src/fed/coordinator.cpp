#include "fed/coordinator.hpp"

#include <algorithm>
#include <unordered_set>

#include "graph/builder.hpp"

namespace pnr::fed {

namespace {

core::PnrOptions pnr_options_of(const svc::WorkloadSpec& spec) {
  core::PnrOptions popt;
  popt.alpha = spec.alpha;
  popt.beta = spec.beta;
  return popt;
}

std::string client_error(const svc::Client& c) {
  const auto& e = c.last_error();
  if (!e.transport.empty()) return "transport: " + e.transport;
  if (!e.detail.empty()) return e.detail;
  return "unknown client error";
}

template <typename Run>
constexpr svc::WorkloadKind kind_of() {
  if constexpr (std::is_same_v<Run, pared::TransientRun>)
    return svc::WorkloadKind::kTransient2D;
  else
    return svc::WorkloadKind::kTransient3D;
}

}  // namespace

template <typename Run>
CoordinatorT<Run>::CoordinatorT(svc::WorkloadSpec spec, engine::Kind engine,
                                std::vector<svc::Client*> daemons,
                                CoordinatorOptions options)
    : spec_(std::move(spec)),
      engine_(engine),
      daemons_(std::move(daemons)),
      options_(options),
      replica_(Run(spec_.transient)),
      session_(spec_.strategy, spec_.parts, spec_.session_seed,
               pnr_options_of(spec_), engine_) {}

template <typename Run>
bool CoordinatorT<Run>::attach(std::string* why) {
  const auto fail = [&](std::string reason) {
    if (why) *why = std::move(reason);
    return false;
  };
  if (attached_) return fail("already attached");
  if (daemons_.empty()) return fail("no daemons");
  const int n = static_cast<int>(daemons_.size());
  if (spec_.kind != kind_of<Run>())
    return fail("workload kind does not match the coordinator's mesh family");
  if (spec_.strategy != pared::Strategy::kPNR)
    return fail("federation requires the kPNR strategy: the plan is the "
                "session's coarse assignment");
  if (spec_.parts != n)
    return fail("spec.parts must equal the daemon count");
  if (spec_.engine == svc::kEngineDefault)
    return fail("resolve the engine before attaching: kEngineDefault would "
                "let every daemon pick its own");

  const std::uint64_t replica_fp = mesh_fingerprint(replica_.mesh());
  const std::int64_t elements = replica_.mesh().num_leaves();
  sessions_.clear();
  for (int i = 0; i < n; ++i) {
    svc::FedAttach att;
    att.spec = spec_;
    att.rank = static_cast<std::uint16_t>(i);
    att.count = static_cast<std::uint16_t>(n);
    const auto got = daemons_[static_cast<std::size_t>(i)]->fed_attach(att);
    if (!got)
      return fail("shard " + std::to_string(i) + " attach failed: " +
                  client_error(*daemons_[static_cast<std::size_t>(i)]));
    if (got->mesh_fp != replica_fp || got->elements != elements)
      return fail("shard " + std::to_string(i) +
                  " built a different initial replica (non-deterministic "
                  "build or mismatched limits)");
    sessions_.push_back(got->session);
  }
  attached_ = true;
  return true;
}

template <typename Run>
RoundResult CoordinatorT<Run>::round() {
  RoundResult out;
  const auto fail = [&](std::string reason) {
    out.ok = false;
    out.why = std::move(reason);
    return out;
  };
  if (!attached_) return fail("attach() has not succeeded");
  if (replica_.done()) return fail("workload finished");
  const int n = static_cast<int>(daemons_.size());
  const auto client = [&](int i) -> svc::Client& {
    return *daemons_[static_cast<std::size_t>(i)];
  };

  // Phase 1: advance the replicas in lockstep. Any daemon whose mesh digest
  // leaves the coordinator's is broken *now* — catching it before planning
  // means no migration payload is ever built from a diverged mesh.
  const auto info = replica_.advance();
  out.step = info.step;
  out.t = info.t;
  out.refined = info.bisections;
  out.coarsened = info.merges;
  out.elements = replica_.mesh().num_leaves();
  const std::uint64_t replica_fp = mesh_fingerprint(replica_.mesh());
  out.mesh_fp = replica_fp;
  for (int i = 0; i < n; ++i) {
    const auto adv = client(i).fed_advance(sessions_[static_cast<std::size_t>(i)]);
    if (!adv)
      return fail("shard " + std::to_string(i) + " advance failed: " +
                  client_error(client(i)));
    if (adv->step != out.step || adv->elements != out.elements ||
        adv->mesh_fp != replica_fp)
      return fail("shard " + std::to_string(i) +
                  " replica diverged after the adaptation step");
  }

  // Phase 2: gather + audit the interface reports.
  std::vector<check::FedShardReport> reports;
  reports.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    auto rep = client(i).fed_interface(sessions_[static_cast<std::size_t>(i)]);
    if (!rep)
      return fail("shard " + std::to_string(i) + " interface failed: " +
                  client_error(client(i)));
    reports.push_back(std::move(*rep));
  }
  const auto roots = replica_.mesh().num_initial_elements();
  if (options_.check_level >= 1) {
    auto audit = check::check_fed_reports(roots, reports);
    if (!audit.ok()) {
      out.violations = audit.violations();
      return fail("interface audit failed: " + audit.to_string());
    }
  }

  // Phase 3: assemble the federated coarse graph and step the session.
  // GraphBuilder's CSR is insertion-order independent, so the union of the
  // shards' slices can — and, by the adopt check, must — reproduce the
  // replica's own coarse dual graph byte for byte.
  graph::GraphBuilder builder(static_cast<graph::VertexId>(roots));
  for (const auto& rep : reports) {
    for (std::size_t k = 0; k < rep.owned.size(); ++k)
      builder.set_vertex_weight(static_cast<graph::VertexId>(rep.owned[k]),
                                rep.owned_weights[k]);
    for (const auto& e : rep.primary)
      builder.add_edge(static_cast<graph::VertexId>(e.a),
                       static_cast<graph::VertexId>(e.b), e.w);
  }
  if (!session_.adopt_federated_graph(replica_.mutable_mesh(),
                                      builder.build()))
    return fail("federated coarse graph does not match the replica's own "
                "refresh — a shard misreported its slice");
  out.report = session_.step(replica_.mutable_mesh());
  const auto& next = session_.coarse_assignment();
  if (static_cast<mesh::ElemIdx>(next.size()) != roots)
    return fail("session produced no coarse assignment");
  out.assign_fp = assignment_fingerprint(next);

  // Phase 4: push the plan; every shard stages it and packs what it ships.
  std::vector<svc::FedPlanReply> plans;
  plans.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    auto plan = client(i).fed_plan(sessions_[static_cast<std::size_t>(i)],
                                   next);
    if (!plan)
      return fail("shard " + std::to_string(i) + " rejected the plan: " +
                  client_error(client(i)));
    out.trees_moved += static_cast<std::int64_t>(plan->outgoing.size());
    out.elements_moved += plan->elements_out;
    for (const auto& tree : plan->outgoing)
      out.payload_bytes += static_cast<std::int64_t>(tree.payload.size());
    plans.push_back(std::move(*plan));
  }

  // Phase 5: relay each shard's outgoing subtrees to their destinations.
  // The receiver verifies every payload against its replica; a rejected
  // subtree (kAuditFailed) means a daemon shipped corrupt bytes.
  std::int64_t leaves_in = 0;
  for (int src = 0; src < n; ++src) {
    std::vector<std::vector<svc::FedTree>> by_dest(
        static_cast<std::size_t>(n));
    for (auto& tree : plans[static_cast<std::size_t>(src)].outgoing) {
      if (tree.dest < 0 || tree.dest >= n)
        return fail("shard " + std::to_string(src) +
                    " routed a subtree to nonexistent shard " +
                    std::to_string(tree.dest));
      by_dest[static_cast<std::size_t>(tree.dest)].push_back(std::move(tree));
    }
    for (int dest = 0; dest < n; ++dest) {
      auto& batch = by_dest[static_cast<std::size_t>(dest)];
      if (batch.empty()) continue;
      const auto ack = client(dest).fed_exchange(
          sessions_[static_cast<std::size_t>(dest)], src, batch);
      if (!ack)
        return fail("exchange " + std::to_string(src) + " -> " +
                    std::to_string(dest) + " failed: " +
                    client_error(client(dest)));
      if (ack->accepted != static_cast<std::int64_t>(batch.size()))
        return fail("shard " + std::to_string(dest) + " accepted " +
                    std::to_string(ack->accepted) + " of " +
                    std::to_string(batch.size()) + " subtrees");
      leaves_in += ack->leaves_in;
    }
  }
  if (leaves_in != out.elements_moved)
    return fail("migration leaf conservation broke: " +
                std::to_string(out.elements_moved) + " leaves left shards, " +
                std::to_string(leaves_in) + " arrived");

  // Phase 6: commit barrier + conservation audit.
  std::vector<std::int64_t> owned;
  std::vector<std::uint64_t> fps;
  owned.reserve(static_cast<std::size_t>(n));
  fps.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const auto commit =
        client(i).fed_commit(sessions_[static_cast<std::size_t>(i)]);
    if (!commit)
      return fail("shard " + std::to_string(i) + " commit failed: " +
                  client_error(client(i)));
    if (commit->mesh_fp != replica_fp || commit->elements != out.elements)
      return fail("shard " + std::to_string(i) +
                  " replica diverged at commit");
    owned.push_back(commit->owned_leaves);
    fps.push_back(commit->assign_fp);
  }
  if (options_.check_level >= 1) {
    auto audit = check::check_fed_commit(out.elements, owned, fps,
                                         out.assign_fp);
    if (!audit.ok()) {
      out.violations = audit.violations();
      return fail("commit audit failed: " + audit.to_string());
    }
  }

  trajectory_fp_ = util::fnv1a_value(out.assign_fp, trajectory_fp_);
  trajectory_fp_ = util::fnv1a_value(replica_fp, trajectory_fp_);
  ++rounds_;
  out.ok = true;
  return out;
}

template <typename Run>
bool CoordinatorT<Run>::finish(bool shutdown_daemons, std::string* why) {
  bool ok = true;
  const auto note = [&](std::string reason) {
    if (ok && why) *why = std::move(reason);
    ok = false;
  };
  // Close sessions first: a daemon acks close only after its shard queue
  // drained this session's in-flight work, so the quiesce ordering is
  // close-all, then shutdown-all.
  for (std::size_t i = 0; i < sessions_.size(); ++i) {
    svc::Client& c = *daemons_[i];
    if (!c.connected()) continue;
    if (!c.close_session(sessions_[i]))
      note("shard " + std::to_string(i) + " close failed: " +
           client_error(c));
  }
  sessions_.clear();
  attached_ = false;
  if (shutdown_daemons) {
    // Ranks may share a daemon process; shut each distinct client down once.
    std::unordered_set<svc::Client*> seen;
    for (svc::Client* c : daemons_) {
      if (!seen.insert(c).second || !c->connected()) continue;
      if (!c->shutdown_server())
        note("daemon shutdown failed: " + client_error(*c));
    }
  }
  return ok;
}

template class CoordinatorT<pared::TransientRun>;
template class CoordinatorT<pared::TransientRun3D>;

}  // namespace pnr::fed
