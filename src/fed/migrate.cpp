#include "fed/migrate.hpp"

#include <string>

#include "parallel/serialize.hpp"
#include "util/fnv.hpp"

namespace pnr::fed {

namespace {

void fail(std::string* why, std::string reason) {
  if (why) *why = std::move(reason);
}

/// Replica-side DFS of the subtree under `root`, identical to the packing
/// order (child[0] pushed first, so child[1] is visited first).
template <typename Mesh>
std::vector<mesh::ElemIdx> subtree_nodes(const Mesh& mesh,
                                         mesh::ElemIdx root) {
  using Traits = detail::MeshTraits<Mesh>;
  std::vector<mesh::ElemIdx> stack{root};
  std::vector<mesh::ElemIdx> nodes;
  while (!stack.empty()) {
    const mesh::ElemIdx e = stack.back();
    stack.pop_back();
    nodes.push_back(e);
    const auto& t = Traits::elem(mesh, e);
    if (!t.leaf) {
      stack.push_back(t.child[0]);
      stack.push_back(t.child[1]);
    }
  }
  return nodes;
}

}  // namespace

template <typename Mesh>
Bytes pack_subtree(const Mesh& mesh, mesh::ElemIdx root) {
  using Traits = detail::MeshTraits<Mesh>;
  par::Writer w;
  const auto nodes = subtree_nodes(mesh, root);
  w.put(static_cast<std::uint64_t>(nodes.size()));
  for (const mesh::ElemIdx e : nodes) {
    const auto& t = Traits::elem(mesh, e);
    w.put(e);
    for (int k = 0; k < Traits::kVertsPerElem; ++k)
      w.put(t.v[static_cast<std::size_t>(k)]);
    w.put(t.level);
    w.put(static_cast<std::uint8_t>(t.leaf));
    for (int k = 0; k < Traits::kVertsPerElem; ++k) {
      double xyz[3];
      Traits::coords(mesh, t.v[static_cast<std::size_t>(k)], xyz);
      for (int d = 0; d < Traits::kDim; ++d) w.put(xyz[d]);
    }
  }
  return w.take();
}

template <typename Mesh>
std::optional<SubtreeInfo> verify_subtree(const Mesh& mesh,
                                          mesh::ElemIdx root,
                                          const std::uint8_t* data,
                                          std::size_t size, std::string* why) {
  using Traits = detail::MeshTraits<Mesh>;
  if (root < 0 || root >= mesh.num_initial_elements() ||
      Traits::elem(mesh, root).level != 0) {
    fail(why, "root is not an initial element");
    return std::nullopt;
  }
  par::TryReader r(data, size);
  const auto count = r.get<std::uint64_t>();
  if (!count) {
    fail(why, "truncated payload");
    return std::nullopt;
  }
  // Walk the replica's own DFS in lockstep: the payload must name the same
  // nodes in the same order with bit-identical topology and geometry, so a
  // valid payload is *exactly* pack_subtree of this replica.
  const auto expect = subtree_nodes(mesh, root);
  if (*count != expect.size()) {
    fail(why, "node count " + std::to_string(*count) +
                  " does not match replica subtree of " +
                  std::to_string(expect.size()));
    return std::nullopt;
  }
  SubtreeInfo info;
  for (const mesh::ElemIdx want : expect) {
    const auto e = r.get<mesh::ElemIdx>();
    if (!e || *e != want) {
      fail(why, "node id diverges from replica subtree");
      return std::nullopt;
    }
    const auto& t = Traits::elem(mesh, want);
    for (int k = 0; k < Traits::kVertsPerElem; ++k) {
      const auto v = r.get<mesh::VertIdx>();
      if (!v || *v != t.v[static_cast<std::size_t>(k)]) {
        fail(why, "vertex ids diverge from replica");
        return std::nullopt;
      }
    }
    const auto level = r.get<std::int16_t>();
    const auto leaf = r.get<std::uint8_t>();
    if (!level || !leaf || *level != t.level ||
        *leaf != static_cast<std::uint8_t>(t.leaf)) {
      fail(why, "level/leaf flags diverge from replica");
      return std::nullopt;
    }
    for (int k = 0; k < Traits::kVertsPerElem; ++k) {
      double xyz[3];
      Traits::coords(mesh, t.v[static_cast<std::size_t>(k)], xyz);
      for (int d = 0; d < Traits::kDim; ++d) {
        const auto c = r.get<double>();
        // Bitwise comparison: replicas are bit-identical, so even a NaN
        // payload must reproduce the replica's exact bit pattern.
        std::uint64_t got = 0, want_bits = 0;
        if (c) {
          std::memcpy(&got, &*c, sizeof(got));
          std::memcpy(&want_bits, &xyz[d], sizeof(want_bits));
        }
        if (!c || got != want_bits) {
          fail(why, "geometry diverges from replica");
          return std::nullopt;
        }
      }
    }
    ++info.nodes;
    info.leaves += t.leaf;
  }
  if (!r.done()) {
    fail(why, "trailing bytes after subtree");
    return std::nullopt;
  }
  return info;
}

template <typename Mesh>
std::uint64_t mesh_fingerprint(const Mesh& mesh) {
  using Traits = detail::MeshTraits<Mesh>;
  std::uint64_t h = util::kFnvSeed;
  h = util::fnv1a_value(mesh.num_leaves(), h);
  for (const mesh::ElemIdx e : mesh.leaf_elements()) {
    const auto& t = Traits::elem(mesh, e);
    h = util::fnv1a_value(e, h);
    h = util::fnv1a_value(t.coarse, h);
    h = util::fnv1a_value(t.level, h);
    for (int k = 0; k < Traits::kVertsPerElem; ++k) {
      h = util::fnv1a_value(t.v[static_cast<std::size_t>(k)], h);
      double xyz[3];
      Traits::coords(mesh, t.v[static_cast<std::size_t>(k)], xyz);
      for (int d = 0; d < Traits::kDim; ++d) h = util::fnv1a_value(xyz[d], h);
    }
  }
  return h;
}

std::uint64_t assignment_fingerprint(std::span<const part::PartId> assign) {
  std::uint64_t h = util::kFnvSeed;
  h = util::fnv1a_value(static_cast<std::uint64_t>(assign.size()), h);
  return util::fnv1a(assign.data(), assign.size() * sizeof(part::PartId), h);
}

template <typename Mesh>
std::vector<part::PartId> leaf_tags(const Mesh& mesh) {
  std::vector<part::PartId> tags;
  tags.reserve(static_cast<std::size_t>(mesh.num_leaves()));
  for (const mesh::ElemIdx e : mesh.leaf_elements()) tags.push_back(mesh.tag(e));
  return tags;
}

template Bytes pack_subtree<mesh::TriMesh>(const mesh::TriMesh&,
                                           mesh::ElemIdx);
template Bytes pack_subtree<mesh::TetMesh>(const mesh::TetMesh&,
                                           mesh::ElemIdx);
template std::optional<SubtreeInfo> verify_subtree<mesh::TriMesh>(
    const mesh::TriMesh&, mesh::ElemIdx, const std::uint8_t*, std::size_t,
    std::string*);
template std::optional<SubtreeInfo> verify_subtree<mesh::TetMesh>(
    const mesh::TetMesh&, mesh::ElemIdx, const std::uint8_t*, std::size_t,
    std::string*);
template std::uint64_t mesh_fingerprint<mesh::TriMesh>(const mesh::TriMesh&);
template std::uint64_t mesh_fingerprint<mesh::TetMesh>(const mesh::TetMesh&);
template std::vector<part::PartId> leaf_tags<mesh::TriMesh>(
    const mesh::TriMesh&);
template std::vector<part::PartId> leaf_tags<mesh::TetMesh>(
    const mesh::TetMesh&);

}  // namespace pnr::fed
