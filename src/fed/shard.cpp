#include "fed/shard.hpp"

#include <algorithm>

#include "mesh/dual.hpp"

namespace pnr::fed {

namespace {

void fail(std::string* why, std::string reason) {
  if (why) *why = std::move(reason);
}

}  // namespace

template <typename Run>
ShardT<Run>::ShardT(Run run, int rank, int count)
    : run_(std::move(run)), rank_(rank), count_(count) {
  const auto roots =
      static_cast<std::size_t>(run_.mesh().num_initial_elements());
  ownership_.reserve(roots);
  for (std::size_t c = 0; c < roots; ++c)
    ownership_.push_back(static_cast<part::PartId>(
        c % static_cast<std::size_t>(count_)));
  // Tags mirror ownership from the start so round 0 reports are honest.
  const auto leaves = run_.mesh().leaf_elements();
  const auto fine =
      mesh::project_coarse_assignment(run_.mesh(), leaves, ownership_);
  for (std::size_t i = 0; i < leaves.size(); ++i)
    run_.mutable_mesh().set_tag(leaves[i], fine[i]);
}

template <typename Run>
std::optional<typename ShardT<Run>::AdvanceResult> ShardT<Run>::advance(
    std::string* why) {
  if (staged_) {
    fail(why, "migration round in flight: commit or abandon the plan first");
    return std::nullopt;
  }
  if (run_.done()) {
    fail(why, "workload finished");
    return std::nullopt;
  }
  const auto info = run_.advance();
  AdvanceResult out;
  out.step = info.step;
  out.t = info.t;
  out.bisections = info.bisections;
  out.merges = info.merges;
  out.elements = run_.mesh().num_leaves();
  out.mesh_fp = mesh_fingerprint(run_.mesh());
  return out;
}

template <typename Run>
check::FedShardReport ShardT<Run>::interface_report() const {
  const Mesh& mesh = run_.mesh();
  check::FedShardReport report;
  const auto roots = mesh.num_initial_elements();
  for (mesh::ElemIdx c = 0; c < roots; ++c) {
    if (ownership_[static_cast<std::size_t>(c)] != rank_) continue;
    report.owned.push_back(c);
    report.owned_weights.push_back(mesh.leaf_count(c));
  }
  mesh.for_each_coarse_interface(
      [&](mesh::ElemIdx c1, mesh::ElemIdx c2, std::int64_t w) {
        const part::PartId lo = ownership_[static_cast<std::size_t>(c1)];
        const part::PartId hi = ownership_[static_cast<std::size_t>(c2)];
        if (lo == rank_)
          report.primary.push_back({c1, c2, w});
        else if (hi == rank_)
          report.echo.push_back({c1, c2, w});
      });
  const auto by_endpoints = [](const check::FedEdge& x,
                               const check::FedEdge& y) {
    return x.a != y.a ? x.a < y.a : x.b < y.b;
  };
  std::sort(report.primary.begin(), report.primary.end(), by_endpoints);
  std::sort(report.echo.begin(), report.echo.end(), by_endpoints);
  return report;
}

template <typename Run>
std::optional<typename ShardT<Run>::PlanResult> ShardT<Run>::apply_plan(
    std::span<const part::PartId> next, std::string* why) {
  if (staged_) {
    fail(why, "plan already staged");
    return std::nullopt;
  }
  const Mesh& mesh = run_.mesh();
  const auto roots = static_cast<std::size_t>(mesh.num_initial_elements());
  if (next.size() != roots) {
    fail(why, "plan names " + std::to_string(next.size()) + " trees of " +
                  std::to_string(roots));
    return std::nullopt;
  }
  for (const part::PartId p : next)
    if (p < 0 || p >= count_) {
      fail(why, "plan assigns a tree to shard " + std::to_string(p) +
                    " outside [0," + std::to_string(count_) + ")");
      return std::nullopt;
    }
  PlanResult out;
  for (std::size_t c = 0; c < roots; ++c) {
    if (ownership_[c] != rank_ || next[c] == rank_) continue;
    const auto root = static_cast<mesh::ElemIdx>(c);
    Outgoing o;
    o.dest = next[c];
    o.root = root;
    o.payload = pack_subtree(mesh, root);
    out.outgoing.push_back(std::move(o));
    ++out.trees_out;
    out.elements_out += mesh.leaf_count(root);
  }
  staged_.emplace(next.begin(), next.end());
  return out;
}

template <typename Run>
std::optional<typename ShardT<Run>::IngestResult> ShardT<Run>::ingest(
    int src, mesh::ElemIdx root, const std::uint8_t* data, std::size_t size,
    std::string* why) {
  if (!staged_) {
    fail(why, "no migration plan staged");
    return std::nullopt;
  }
  if (src < 0 || src >= count_ || src == rank_) {
    fail(why, "bad source shard " + std::to_string(src));
    return std::nullopt;
  }
  const Mesh& mesh = run_.mesh();
  if (root < 0 || root >= mesh.num_initial_elements()) {
    fail(why, "root " + std::to_string(root) + " is not an initial element");
    return std::nullopt;
  }
  const auto c = static_cast<std::size_t>(root);
  if (ownership_[c] != src) {
    fail(why, "tree " + std::to_string(root) + " is owned by shard " +
                  std::to_string(ownership_[c]) + ", not the sender");
    return std::nullopt;
  }
  if ((*staged_)[c] != rank_) {
    fail(why, "tree " + std::to_string(root) +
                  " is not planned for this shard");
    return std::nullopt;
  }
  const auto info = verify_subtree(mesh, root, data, size, why);
  if (!info) return std::nullopt;
  IngestResult out;
  out.nodes = info->nodes;
  out.leaves = info->leaves;
  return out;
}

template <typename Run>
std::optional<typename ShardT<Run>::CommitResult> ShardT<Run>::commit(
    std::string* why) {
  if (!staged_) {
    fail(why, "no migration plan staged");
    return std::nullopt;
  }
  ownership_ = std::move(*staged_);
  staged_.reset();
  const auto leaves = run_.mesh().leaf_elements();
  const auto fine =
      mesh::project_coarse_assignment(run_.mesh(), leaves, ownership_);
  for (std::size_t i = 0; i < leaves.size(); ++i)
    run_.mutable_mesh().set_tag(leaves[i], fine[i]);
  CommitResult out;
  out.elements = run_.mesh().num_leaves();
  out.owned_leaves = owned_leaves();
  out.assign_fp = assign_fp();
  out.mesh_fp = mesh_fp();
  return out;
}

template <typename Run>
std::int64_t ShardT<Run>::owned_leaves() const {
  const Mesh& mesh = run_.mesh();
  std::int64_t sum = 0;
  const auto roots = mesh.num_initial_elements();
  for (mesh::ElemIdx c = 0; c < roots; ++c)
    if (ownership_[static_cast<std::size_t>(c)] == rank_)
      sum += mesh.leaf_count(c);
  return sum;
}

template class ShardT<pared::TransientRun>;
template class ShardT<pared::TransientRun3D>;

}  // namespace pnr::fed
