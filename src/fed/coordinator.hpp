#pragma once
// Federation coordinator: drives federated repartition rounds across N live
// pnr_serve daemons (docs/FEDERATION.md). The coordinator owns its own
// *replica* of the transient workload plus the one pared::Session that runs
// the partitioner — daemons never partition, they only adapt, report, pack
// and verify. Each round():
//
//   1. advance the replica and every daemon (kOpFedAdvance), cross-checking
//      element counts and replica mesh fingerprints — divergence is fatal
//      the round it happens;
//   2. gather every shard's interface report (kOpFedInterface), audit the
//      union with check::check_fed_reports, and assemble the federated
//      coarse graph from owned vertices + primary edges;
//   3. swap that graph into the session (adopt_federated_graph — it must
//      equal the replica's own refresh bit for bit, which is the federation
//      equivalence claim) and step the session on the replica mesh;
//   4. push the resulting coarse assignment to every daemon (kOpFedPlan),
//      collecting the serialized subtrees each shard must ship;
//   5. relay subtrees to their destinations (kOpFedExchange), where each
//      receiving shard verifies them against its replica;
//   6. commit the ownership flip everywhere (kOpFedCommit) and audit the
//      barrier with check::check_fed_commit.
//
// Because the adopted graph is proven byte-equal to what the session would
// have built alone, the session's assignment trajectory is bitwise
// identical to the single-process pared::Session run — bench_federation
// and scripts/fed_gate.py hard-gate exactly that.

#include <cstdint>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "check/report.hpp"
#include "engine/engine.hpp"
#include "fed/migrate.hpp"
#include "pared/session.hpp"
#include "pared/workloads.hpp"
#include "svc/client.hpp"
#include "svc/codec.hpp"
#include "util/fnv.hpp"

namespace pnr::fed {

struct CoordinatorOptions {
  /// 0 = trust the shards (skip the pnr::check validators); >= 1 audits the
  /// interface reports before partitioning and the commit barrier after the
  /// ownership flip, every round.
  int check_level = 1;
};

/// One federated round's outcome. !ok means the federation is broken —
/// `why` carries the first fatal diagnosis and `violations` any validator
/// findings; the caller should finish() and stop, not retry.
struct RoundResult {
  bool ok = false;
  std::string why;
  int step = 0;
  double t = 0.0;
  std::int64_t elements = 0;   ///< replica leaves after the adaptation
  std::int64_t refined = 0;
  std::int64_t coarsened = 0;
  std::int64_t trees_moved = 0;
  std::int64_t elements_moved = 0;  ///< leaves changing owner
  std::int64_t payload_bytes = 0;   ///< serialized subtree bytes relayed
  std::uint64_t assign_fp = 0;      ///< digest of the adopted assignment
  std::uint64_t mesh_fp = 0;        ///< replica digest after the adaptation
  pared::StepReport report;         ///< the session's own step measures
  std::vector<check::Violation> violations;
};

template <typename Run>
class CoordinatorT {
 public:
  using Mesh = std::remove_cvref_t<decltype(std::declval<Run&>().mesh())>;

  /// `daemons` are connected clients, one per shard rank, borrowed for the
  /// coordinator's lifetime (the caller owns connections and pumps). The
  /// spec must be the matching transient kind with strategy kPNR and
  /// parts == daemons.size(); `engine` is the *resolved* backend — passing
  /// kEngineDefault through would let each daemon substitute its own.
  CoordinatorT(svc::WorkloadSpec spec, engine::Kind engine,
               std::vector<svc::Client*> daemons,
               CoordinatorOptions options = {});

  /// Attach every daemon as shard rank i of N (kOpFedAttach) and cross-check
  /// each daemon's initial replica fingerprint against the coordinator's.
  bool attach(std::string* why = nullptr);

  /// One federated adaptation + repartition round (the six phases above).
  RoundResult round();

  bool attached() const { return attached_; }
  bool finished() const { return replica_.done(); }
  int rounds() const { return rounds_; }
  /// Running digest chaining every round's (assign_fp, mesh_fp) — equal
  /// across any shard count iff the trajectories are bitwise identical.
  std::uint64_t trajectory_fingerprint() const { return trajectory_fp_; }
  const pared::Session<Mesh>& session() const { return session_; }
  const Run& replica() const { return replica_; }
  const std::vector<std::uint32_t>& sessions() const { return sessions_; }

  /// Graceful teardown. round() is synchronous, so by the time finish()
  /// runs no migration round is in flight — it closes every shard session
  /// and, with `shutdown_daemons`, sends each distinct daemon kOpShutdown
  /// (the server quiesces its shard queues before acking). Idempotent.
  bool finish(bool shutdown_daemons, std::string* why = nullptr);

 private:
  svc::WorkloadSpec spec_;
  engine::Kind engine_;
  std::vector<svc::Client*> daemons_;
  CoordinatorOptions options_;
  Run replica_;
  pared::Session<Mesh> session_;
  std::vector<std::uint32_t> sessions_;  ///< shard session id per rank
  bool attached_ = false;
  int rounds_ = 0;
  std::uint64_t trajectory_fp_ = util::kFnvSeed;
};

using Coordinator2D = CoordinatorT<pared::TransientRun>;
using Coordinator3D = CoordinatorT<pared::TransientRun3D>;

extern template class CoordinatorT<pared::TransientRun>;
extern template class CoordinatorT<pared::TransientRun3D>;

}  // namespace pnr::fed
