#pragma once
// Tiny leveled logger. Benches run quiet by default; examples turn on info.

#include <sstream>
#include <string>

namespace pnr::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global threshold; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Thread-safe emit (single write call per message).
void log_message(LogLevel level, const std::string& msg);

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_message(level_, stream_.str()); }
  template <typename T>
  LogLine& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace pnr::util

#define PNR_LOG_DEBUG ::pnr::util::detail::LogLine(::pnr::util::LogLevel::kDebug)
#define PNR_LOG_INFO ::pnr::util::detail::LogLine(::pnr::util::LogLevel::kInfo)
#define PNR_LOG_WARN ::pnr::util::detail::LogLine(::pnr::util::LogLevel::kWarn)
#define PNR_LOG_ERROR ::pnr::util::detail::LogLine(::pnr::util::LogLevel::kError)
