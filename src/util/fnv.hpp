#pragma once
// FNV-1a fingerprinting, the repo-wide digest for determinism gates: the
// benches hash reply streams and assignment trajectories with exactly these
// constants, and the federation layer hashes replica meshes and adopted
// assignments so divergence between processes is caught the round it
// happens. Not cryptographic — a tripwire, not an authenticator.

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <type_traits>

namespace pnr::util {

inline constexpr std::uint64_t kFnvSeed = 1469598103934665603ull;
inline constexpr std::uint64_t kFnvPrime = 1099511628211ull;

inline std::uint64_t fnv1a(const void* data, std::size_t size,
                           std::uint64_t h = kFnvSeed) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}

/// Mix one trivially copyable value (its in-memory little-endian bytes —
/// the same layout par::Writer pins on the wire) into a running digest.
template <typename T>
std::uint64_t fnv1a_value(const T& v, std::uint64_t h = kFnvSeed) {
  static_assert(std::is_trivially_copyable_v<T>);
  return fnv1a(&v, sizeof(T), h);
}

}  // namespace pnr::util
