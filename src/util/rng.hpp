#pragma once
// Deterministic, seedable PRNG used by every randomized component (mesh
// jitter, matchings, tie-breaks, Lanczos start vectors). We avoid
// std::mt19937 so that streams are identical across standard libraries.

#include <cstdint>
#include <vector>

namespace pnr::util {

/// SplitMix64: used to expand a single seed into xoshiro state.
std::uint64_t splitmix64(std::uint64_t& state);

/// xoshiro256** — fast, high-quality, 2^256-1 period.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

  /// Uniform 64-bit value.
  std::uint64_t next_u64();

  /// Uniform in [0, bound) without modulo bias (Lemire reduction).
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform double in [0, 1).
  double next_double();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform signed int in [lo, hi] inclusive.
  int uniform_int(int lo, int hi);

  /// Standard normal via Box–Muller (cached spare).
  double normal();

  /// Fisher–Yates shuffle of an index-like vector.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(next_below(i));
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Split off an independent stream (for per-rank determinism).
  Rng fork();

 private:
  std::uint64_t s_[4];
  double spare_ = 0.0;
  bool has_spare_ = false;
};

}  // namespace pnr::util
