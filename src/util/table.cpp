#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <ostream>

#include "util/assert.hpp"

namespace pnr::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  PNR_REQUIRE(!header_.empty());
}

Table& Table::row() {
  rows_.emplace_back();
  rows_.back().reserve(header_.size());
  return *this;
}

Table& Table::cell(const std::string& s) {
  PNR_REQUIRE_MSG(!rows_.empty(), "call row() before cell()");
  PNR_REQUIRE_MSG(rows_.back().size() < header_.size(),
                  "more cells than header columns");
  rows_.back().push_back(s);
  return *this;
}

Table& Table::cell(long long v) { return cell(std::to_string(v)); }
Table& Table::cell(long v) { return cell(std::to_string(v)); }
Table& Table::cell(int v) { return cell(std::to_string(v)); }
Table& Table::cell(std::size_t v) { return cell(std::to_string(v)); }

Table& Table::cell(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return cell(std::string(buf));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& r : rows_)
    for (std::size_t c = 0; c < r.size(); ++c)
      width[c] = std::max(width[c], r[c].size());

  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < header_.size(); ++c) {
      const std::string& s = c < cells.size() ? cells[c] : std::string();
      os << (c ? "  " : "");
      for (std::size_t k = s.size(); k < width[c]; ++k) os << ' ';
      os << s;
    }
    os << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (auto w : width) total += w + 2;
  for (std::size_t k = 2; k < total; ++k) os << '-';
  os << '\n';
  for (const auto& r : rows_) emit(r);
}

void Table::write_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c)
      os << (c ? "," : "") << cells[c];
    os << '\n';
  };
  emit(header_);
  for (const auto& r : rows_) emit(r);
}

bool Table::save_csv(const std::string& path) const {
  std::ofstream f(path);
  if (!f) return false;
  write_csv(f);
  return static_cast<bool>(f);
}

}  // namespace pnr::util
