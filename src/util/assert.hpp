#pragma once
// Lightweight contract checks. PNR_ASSERT is for internal invariants and is
// compiled out in NDEBUG builds; PNR_REQUIRE is for API preconditions and is
// always on (a violated precondition aborts with a location message).

#include <cstdio>
#include <cstdlib>

namespace pnr::util {

[[noreturn]] inline void contract_fail(const char* kind, const char* expr,
                                       const char* file, int line,
                                       const char* msg) {
  std::fprintf(stderr, "pnr: %s failed: %s at %s:%d%s%s\n", kind, expr, file,
               line, msg ? " — " : "", msg ? msg : "");
  std::abort();
}

}  // namespace pnr::util

#define PNR_REQUIRE(cond)                                                      \
  do {                                                                         \
    if (!(cond))                                                               \
      ::pnr::util::contract_fail("precondition", #cond, __FILE__, __LINE__,    \
                                 nullptr);                                     \
  } while (0)

#define PNR_REQUIRE_MSG(cond, msg)                                             \
  do {                                                                         \
    if (!(cond))                                                               \
      ::pnr::util::contract_fail("precondition", #cond, __FILE__, __LINE__,    \
                                 msg);                                         \
  } while (0)

#ifdef NDEBUG
// Unevaluated but still *compiled* (sizeof of the negated condition), so a
// Release build rejects assert expressions that bit-rot or grow side
// effects instead of silently discarding them.
#define PNR_ASSERT(cond) ((void)sizeof(!(cond)))
#else
#define PNR_ASSERT(cond)                                                       \
  do {                                                                         \
    if (!(cond))                                                               \
      ::pnr::util::contract_fail("invariant", #cond, __FILE__, __LINE__,       \
                                 nullptr);                                     \
  } while (0)
#endif
