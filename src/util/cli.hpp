#pragma once
// Minimal command-line flag parsing for the bench/example binaries.
// Supports --name=value and boolean --name; anything without a leading
// "--" is positional (the value-after-space form is deliberately not
// supported — it makes boolean flags ambiguous).

#include <string>
#include <vector>

namespace pnr::util {

class Cli {
 public:
  Cli(int argc, char** argv);

  bool has(const std::string& name) const;
  std::string get(const std::string& name, const std::string& def) const;
  int get_int(const std::string& name, int def) const;
  double get_double(const std::string& name, double def) const;
  bool get_bool(const std::string& name, bool def = false) const;

  /// Comma-separated int list, e.g. --procs=4,8,16.
  std::vector<int> get_int_list(const std::string& name,
                                std::vector<int> def) const;

  /// Positional (non-flag) arguments in order.
  const std::vector<std::string>& positional() const { return positional_; }

 private:
  struct Flag {
    std::string name;
    std::string value;
    bool has_value;
  };
  const Flag* find(const std::string& name) const;

  std::vector<Flag> flags_;
  std::vector<std::string> positional_;
};

}  // namespace pnr::util
