#pragma once
// Streaming statistics used by the benches to report series summaries
// (mean/max migration fractions, etc.) exactly as the paper quotes them.

#include <cstddef>
#include <vector>

namespace pnr::util {

/// Welford running mean/variance plus min/max.
class RunningStat {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const;  ///< sample variance (n-1 denominator)
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Percentile over a stored sample (nearest-rank definition).
double percentile(std::vector<double> values, double p);

}  // namespace pnr::util
