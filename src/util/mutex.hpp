#pragma once
// Annotated locking primitives: thin wrappers over std::mutex /
// std::condition_variable_any that carry the Clang Thread Safety
// annotations from util/thread_annotations.hpp, so -Wthread-safety can
// check which lock guards which field (libstdc++'s own lock types carry no
// annotations, which is why the raw types cannot be used directly on the
// annotated concurrency surface). Zero-cost off Clang: the wrappers are
// exactly a std::mutex and a scoped lock after inlining.
//
// Usage pattern (see docs/STATIC_ANALYSIS.md):
//
//   util::Mutex mutex_;
//   int queue_depth_ PNR_GUARDED_BY(mutex_) = 0;
//   util::CondVar cv_;
//   ...
//   {
//     util::MutexLock lock(mutex_);
//     while (queue_depth_ == 0) cv_.wait(mutex_);   // while-loop waits keep
//     --queue_depth_;                               // the analysis exact
//   }
//
// Condition waits are written as explicit while-loops instead of predicate
// lambdas: a lambda body is analyzed as its own function with an empty
// capability set, so a predicate reading guarded fields would need its own
// PNR_REQUIRES — the loop form keeps every guarded access inside the
// function that visibly holds the lock.

#include <condition_variable>
#include <mutex>

#include "util/thread_annotations.hpp"

namespace pnr::util {

/// Annotated mutual-exclusion capability. Prefer MutexLock for scoped
/// acquisition; the raw lock()/unlock() exist for the few call sites that
/// must interleave acquisition with control flow.
class PNR_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() PNR_ACQUIRE() { m_.lock(); }
  void unlock() PNR_RELEASE() { m_.unlock(); }
  bool try_lock() PNR_TRY_ACQUIRE(true) { return m_.try_lock(); }

 private:
  std::mutex m_;
};

/// Scoped lock over a Mutex (the annotated std::lock_guard).
class PNR_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) PNR_ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.lock();
  }
  ~MutexLock() PNR_RELEASE() { mutex_.unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mutex_;
};

/// Condition variable paired with Mutex. wait() atomically releases the
/// mutex, sleeps, and reacquires before returning — the capability set is
/// unchanged across the call, which is exactly what PNR_REQUIRES states.
/// Spurious wakeups happen; always wait in a while-loop over the guarded
/// condition.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

  /// The mutex must be held; it is held again when wait returns. The
  /// unlock/relock pair happens inside condition_variable_any (a system
  /// header, outside the analysis), so the net capability set is what the
  /// annotation declares.
  void wait(Mutex& mutex) PNR_REQUIRES(mutex) { cv_.wait(mutex); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace pnr::util
