#include "util/rng.hpp"

#include <cmath>

#include "util/assert.hpp"

namespace pnr::util {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  PNR_REQUIRE(bound > 0);
  // Lemire's nearly-divisionless method.
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (lo < threshold) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::next_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  return lo + (hi - lo) * next_double();
}

int Rng::uniform_int(int lo, int hi) {
  PNR_REQUIRE(lo <= hi);
  const auto span = static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  return lo + static_cast<int>(next_below(span));
}

double Rng::normal() {
  if (has_spare_) {
    has_spare_ = false;
    return spare_;
  }
  double u, v, s;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double f = std::sqrt(-2.0 * std::log(s) / s);
  spare_ = v * f;
  has_spare_ = true;
  return u * f;
}

Rng Rng::fork() { return Rng(next_u64()); }

}  // namespace pnr::util
