#include "util/cli.hpp"

#include <cstdlib>
#include <cstring>

namespace pnr::util {

Cli::Cli(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strncmp(a, "--", 2) != 0) {
      positional_.emplace_back(a);
      continue;
    }
    std::string body(a + 2);
    const auto eq = body.find('=');
    if (eq != std::string::npos) {
      flags_.push_back({body.substr(0, eq), body.substr(eq + 1), true});
    } else {
      flags_.push_back({body, "", false});
    }
  }
}

const Cli::Flag* Cli::find(const std::string& name) const {
  for (const auto& f : flags_)
    if (f.name == name) return &f;
  return nullptr;
}

bool Cli::has(const std::string& name) const { return find(name) != nullptr; }

std::string Cli::get(const std::string& name, const std::string& def) const {
  const Flag* f = find(name);
  return f && f->has_value ? f->value : def;
}

int Cli::get_int(const std::string& name, int def) const {
  const Flag* f = find(name);
  return f && f->has_value ? std::atoi(f->value.c_str()) : def;
}

double Cli::get_double(const std::string& name, double def) const {
  const Flag* f = find(name);
  return f && f->has_value ? std::atof(f->value.c_str()) : def;
}

bool Cli::get_bool(const std::string& name, bool def) const {
  const Flag* f = find(name);
  if (!f) return def;
  if (!f->has_value) return true;
  return f->value != "0" && f->value != "false" && f->value != "no";
}

std::vector<int> Cli::get_int_list(const std::string& name,
                                   std::vector<int> def) const {
  const Flag* f = find(name);
  if (!f || !f->has_value) return def;
  std::vector<int> out;
  std::size_t pos = 0;
  const std::string& s = f->value;
  while (pos < s.size()) {
    auto comma = s.find(',', pos);
    if (comma == std::string::npos) comma = s.size();
    out.push_back(std::atoi(s.substr(pos, comma - pos).c_str()));
    pos = comma + 1;
  }
  return out;
}

}  // namespace pnr::util
