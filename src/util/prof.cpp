#include "util/prof.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <map>
#include <ostream>

#include "util/json.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"
#include "util/table.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace pnr::prof {

namespace {

struct SpanAgg {
  std::int64_t calls = 0;
  std::uint64_t ns = 0;
};

/// Global registry. A plain mutex is enough: probes fire at phase
/// granularity, not per edge, so contention is negligible even with the
/// simulator's ranks recording concurrently.
struct Registry {
  util::Mutex mutex;
  std::map<std::string, SpanAgg> spans PNR_GUARDED_BY(mutex);
  std::map<std::string, std::int64_t> counters PNR_GUARDED_BY(mutex);
  std::map<std::string, std::int64_t> gauges PNR_GUARDED_BY(mutex);
};

Registry& registry() {
  static Registry r;
  return r;
}

std::atomic<bool> g_enabled{false};

// Unused when PNR_PROF_DISABLE compiles the span probes out.
[[maybe_unused]] std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// The open-span path of this thread ("a/b/c"). Spans truncate it back on
/// close, so it never outgrows the deepest live nesting.
thread_local std::string t_path;

}  // namespace

void set_enabled(bool on) { g_enabled.store(on, std::memory_order_relaxed); }

bool enabled() { return g_enabled.load(std::memory_order_relaxed); }

void reset() {
  Registry& r = registry();
  util::MutexLock lock(r.mutex);
  r.spans.clear();
  r.counters.clear();
  r.gauges.clear();
}

Report snapshot() {
  Report out;
  Registry& r = registry();
  util::MutexLock lock(r.mutex);
  out.spans.reserve(r.spans.size());
  for (const auto& [path, agg] : r.spans)
    out.spans.push_back({path, agg.calls, static_cast<double>(agg.ns) * 1e-9});
  out.counters.reserve(r.counters.size());
  for (const auto& [name, value] : r.counters)
    out.counters.push_back({name, value});
  out.gauges.reserve(r.gauges.size());
  for (const auto& [name, value] : r.gauges) out.gauges.push_back({name, value});
  return out;
}

std::int64_t peak_rss_bytes() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
#if defined(__APPLE__)
  return static_cast<std::int64_t>(usage.ru_maxrss);  // bytes on macOS
#else
  return static_cast<std::int64_t>(usage.ru_maxrss) * 1024;  // KiB on Linux
#endif
#else
  return 0;
#endif
}

#ifndef PNR_PROF_DISABLE

void count(const char* name, std::int64_t delta) {
  if (!enabled()) return;
  Registry& r = registry();
  util::MutexLock lock(r.mutex);
  r.counters[name] += delta;
}

void gauge_max(const char* name, std::int64_t value) {
  if (!enabled()) return;
  Registry& r = registry();
  util::MutexLock lock(r.mutex);
  auto [it, inserted] = r.gauges.emplace(name, value);
  if (!inserted) it->second = std::max(it->second, value);
}

void sample_peak_rss() { gauge_max("peak_rss_bytes", peak_rss_bytes()); }

Span::Span(const char* name) : active_(enabled()) {
  if (!active_) return;
  parent_len_ = static_cast<std::uint32_t>(t_path.size());
  if (!t_path.empty()) t_path += '/';
  t_path += name;
  start_ns_ = now_ns();
}

Span::~Span() {
  if (!active_) return;
  const std::uint64_t elapsed = now_ns() - start_ns_;
  {
    Registry& r = registry();
    util::MutexLock lock(r.mutex);
    SpanAgg& agg = r.spans[t_path];
    ++agg.calls;
    agg.ns += elapsed;
  }
  t_path.resize(parent_len_);
}

#endif  // PNR_PROF_DISABLE

void write_summary(std::ostream& os) {
  const Report report = snapshot();
  if (!report.spans.empty()) {
    util::Table table({"span", "calls", "total ms", "ms/call"});
    for (const SpanRow& s : report.spans) {
      // Indent by nesting depth so the tree reads at a glance.
      const auto depth = std::count(s.path.begin(), s.path.end(), '/');
      const auto leaf = s.path.rfind('/');
      const std::string name =
          std::string(static_cast<std::size_t>(2 * depth), ' ') +
          (leaf == std::string::npos ? s.path : s.path.substr(leaf + 1));
      table.row()
          .cell(name)
          .cell(s.calls)
          .cell(s.seconds * 1e3, 3)
          .cell(s.calls > 0 ? s.seconds * 1e3 / static_cast<double>(s.calls)
                            : 0.0,
                4);
    }
    table.print(os);
  }
  if (!report.counters.empty()) {
    util::Table table({"counter", "value"});
    for (const CounterRow& c : report.counters)
      table.row().cell(c.name).cell(c.value);
    table.print(os);
  }
  if (!report.gauges.empty()) {
    util::Table table({"gauge", "max"});
    for (const CounterRow& g : report.gauges)
      table.row().cell(g.name).cell(g.value);
    table.print(os);
  }
}

std::string to_json() {
  const Report report = snapshot();
  util::Json doc = util::Json::object();
  util::Json spans = util::Json::array();
  for (const SpanRow& s : report.spans) {
    util::Json row = util::Json::object();
    row["path"] = s.path;
    row["calls"] = s.calls;
    row["seconds"] = s.seconds;
    spans.push_back(std::move(row));
  }
  doc["spans"] = std::move(spans);
  util::Json counters = util::Json::object();
  for (const CounterRow& c : report.counters) counters[c.name] = c.value;
  doc["counters"] = std::move(counters);
  util::Json gauges = util::Json::object();
  for (const CounterRow& g : report.gauges) gauges[g.name] = g.value;
  doc["gauges"] = std::move(gauges);
  return doc.dump(2);
}

}  // namespace pnr::prof
