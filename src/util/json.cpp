#include "util/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace pnr::util {

Json& Json::operator[](const std::string& key) {
  if (type_ != Type::kObject) {
    *this = object();
  }
  for (auto& [k, v] : object_)
    if (k == key) return v;
  object_.emplace_back(key, Json());
  return object_.back().second;
}

const Json* Json::find(const std::string& key) const {
  for (const auto& [k, v] : object_)
    if (k == key) return &v;
  return nullptr;
}

namespace {

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_newline(std::string& out, int indent, int depth) {
  if (indent <= 0) return;
  out += '\n';
  out.append(static_cast<std::size_t>(indent) * depth, ' ');
}

}  // namespace

void Json::dump_to(std::string& out, int indent, int depth) const {
  switch (type_) {
    case Type::kNull: out += "null"; break;
    case Type::kBool: out += bool_ ? "true" : "false"; break;
    case Type::kInt: out += std::to_string(int_); break;
    case Type::kDouble: {
      if (std::isfinite(double_)) {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%.17g", double_);
        out += buf;
      } else {
        out += "null";  // JSON has no inf/nan
      }
      break;
    }
    case Type::kString: append_escaped(out, string_); break;
    case Type::kArray: {
      out += '[';
      for (std::size_t i = 0; i < array_.size(); ++i) {
        if (i) out += ',';
        append_newline(out, indent, depth + 1);
        array_[i].dump_to(out, indent, depth + 1);
      }
      if (!array_.empty()) append_newline(out, indent, depth);
      out += ']';
      break;
    }
    case Type::kObject: {
      out += '{';
      for (std::size_t i = 0; i < object_.size(); ++i) {
        if (i) out += ',';
        append_newline(out, indent, depth + 1);
        append_escaped(out, object_[i].first);
        out += indent > 0 ? ": " : ":";
        object_[i].second.dump_to(out, indent, depth + 1);
      }
      if (!object_.empty()) append_newline(out, indent, depth);
      out += '}';
      break;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

namespace {

class Parser {
 public:
  Parser(const std::string& text, std::string* error)
      : text_(text), error_(error) {}

  std::optional<Json> run() {
    auto v = value();
    if (!v) return std::nullopt;
    skip_ws();
    if (pos_ != text_.size()) {
      fail("trailing characters");
      return std::nullopt;
    }
    return v;
  }

 private:
  void fail(const char* what) {
    if (error_ && error_->empty())
      *error_ = std::string(what) + " at offset " + std::to_string(pos_);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r'))
      ++pos_;
  }

  bool consume(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool literal(const char* word) {
    const std::size_t len = std::string(word).size();
    if (text_.compare(pos_, len, word) == 0) {
      pos_ += len;
      return true;
    }
    fail("invalid literal");
    return false;
  }

  std::optional<std::string> string_body() {
    // Called with pos_ at the opening quote.
    ++pos_;
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            fail("truncated \\u escape");
            return std::nullopt;
          }
          const unsigned code = static_cast<unsigned>(
              std::strtoul(text_.substr(pos_, 4).c_str(), nullptr, 16));
          pos_ += 4;
          // UTF-8 encode (basic-plane only; enough for our exports).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xc0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3f));
          } else {
            out += static_cast<char>(0xe0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
            out += static_cast<char>(0x80 | (code & 0x3f));
          }
          break;
        }
        default:
          fail("bad escape");
          return std::nullopt;
      }
    }
    fail("unterminated string");
    return std::nullopt;
  }

  std::optional<Json> number() {
    const std::size_t start = pos_;
    bool is_double = false;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c >= '0' && c <= '9') {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        is_double = true;
        ++pos_;
      } else {
        break;
      }
    }
    const std::string tok = text_.substr(start, pos_ - start);
    if (tok.empty() || tok == "-") {
      fail("invalid number");
      return std::nullopt;
    }
    if (is_double) return Json(std::strtod(tok.c_str(), nullptr));
    return Json(static_cast<std::int64_t>(std::strtoll(tok.c_str(), nullptr, 10)));
  }

  std::optional<Json> value() {
    skip_ws();
    if (pos_ >= text_.size()) {
      fail("unexpected end of input");
      return std::nullopt;
    }
    const char c = text_[pos_];
    if (c == '{') {
      ++pos_;
      Json obj = Json::object();
      if (consume('}')) return obj;
      for (;;) {
        skip_ws();
        if (pos_ >= text_.size() || text_[pos_] != '"') {
          fail("expected object key");
          return std::nullopt;
        }
        auto key = string_body();
        if (!key) return std::nullopt;
        if (!consume(':')) {
          fail("expected ':'");
          return std::nullopt;
        }
        auto member = value();
        if (!member) return std::nullopt;
        obj[*key] = std::move(*member);
        if (consume(',')) continue;
        if (consume('}')) return obj;
        fail("expected ',' or '}'");
        return std::nullopt;
      }
    }
    if (c == '[') {
      ++pos_;
      Json arr = Json::array();
      if (consume(']')) return arr;
      for (;;) {
        auto element = value();
        if (!element) return std::nullopt;
        arr.push_back(std::move(*element));
        if (consume(',')) continue;
        if (consume(']')) return arr;
        fail("expected ',' or ']'");
        return std::nullopt;
      }
    }
    if (c == '"') {
      auto s = string_body();
      if (!s) return std::nullopt;
      return Json(std::move(*s));
    }
    if (c == 't') return literal("true") ? std::optional<Json>(Json(true))
                                         : std::nullopt;
    if (c == 'f') return literal("false") ? std::optional<Json>(Json(false))
                                          : std::nullopt;
    if (c == 'n') return literal("null") ? std::optional<Json>(Json())
                                         : std::nullopt;
    return number();
  }

  const std::string& text_;
  std::string* error_;
  std::size_t pos_ = 0;
};

}  // namespace

std::optional<Json> Json::parse(const std::string& text, std::string* error) {
  if (error) error->clear();
  return Parser(text, error).run();
}

}  // namespace pnr::util
