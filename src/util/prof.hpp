#pragma once
// pnr::prof — the observability layer: RAII tracing spans with nesting,
// monotonic counters, max-gauges, peak-RSS sampling, and exporters (ASCII
// summary table via pnr::util::Table, JSON for the BENCH_pipeline.json
// perf trajectory). API and JSON schema are documented in
// docs/OBSERVABILITY.md.
//
// Cost model: every probe first checks one relaxed atomic flag, so with
// profiling disabled (the default) an instrumented hot path pays a single
// load and a well-predicted branch. Probes are placed at phase granularity
// (per coarsening level, per KL invocation, per eigensolve) — never inside
// inner loops — and hot-loop statistics are accumulated locally and emitted
// once. Building with -DPNR_PROF=OFF (which defines PNR_PROF_DISABLE)
// compiles the probes out entirely.
//
// Spans aggregate by their full nesting path ("pipeline.repartition/
// session.step/pnr.repartition"), kept per thread via a thread-local stack
// and merged into the global registry on span close, so the simulator's
// ranks can record concurrently.

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace pnr::prof {

/// Runtime master switch; probes are no-ops while disabled. Off by default.
void set_enabled(bool on);
bool enabled();

/// Drop every recorded span/counter/gauge (the enabled flag is unchanged).
void reset();

struct SpanRow {
  std::string path;      ///< "/"-joined nesting path
  std::int64_t calls = 0;
  double seconds = 0.0;  ///< inclusive wall time
};

struct CounterRow {
  std::string name;
  std::int64_t value = 0;
};

/// A consistent copy of the registry: spans sorted by path, counters and
/// gauges sorted by name. Only spans that have *closed* are included.
struct Report {
  std::vector<SpanRow> spans;
  std::vector<CounterRow> counters;
  std::vector<CounterRow> gauges;
};

Report snapshot();

/// Peak resident set size of the process in bytes (0 where unsupported).
std::int64_t peak_rss_bytes();

#ifndef PNR_PROF_DISABLE

/// Add `delta` to the monotonic counter `name`.
void count(const char* name, std::int64_t delta = 1);

/// Record `value` into the max-gauge `name` (keeps the largest seen).
void gauge_max(const char* name, std::int64_t value);

/// Record the current peak RSS into the "peak_rss_bytes" max-gauge.
void sample_peak_rss();

/// RAII tracing span: measures wall time from construction to destruction
/// and aggregates (call count + total seconds) under the nesting path
/// formed by the spans currently open on this thread. Use via
/// PNR_PROF_SPAN; the enabled() check happens once, at construction.
class Span {
 public:
  explicit Span(const char* name);
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  bool active_;
  std::uint32_t parent_len_ = 0;  ///< thread path length to restore
  std::uint64_t start_ns_ = 0;
};

#else  // PNR_PROF_DISABLE: compile the probes out.

inline void count(const char*, std::int64_t = 1) {}
inline void gauge_max(const char*, std::int64_t) {}
inline void sample_peak_rss() {}

class Span {
 public:
  explicit Span(const char*) {}
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
};

#endif  // PNR_PROF_DISABLE

/// Render the current report as aligned ASCII tables (spans, counters,
/// gauges), skipping empty sections.
void write_summary(std::ostream& os);

/// The current report as a JSON object:
///   {"spans": [{"path": ..., "calls": ..., "seconds": ...}, ...],
///    "counters": {name: value, ...}, "gauges": {name: value, ...}}
std::string to_json();

#define PNR_PROF_CONCAT2(a, b) a##b
#define PNR_PROF_CONCAT(a, b) PNR_PROF_CONCAT2(a, b)
/// Open a span covering the rest of the enclosing scope.
#define PNR_PROF_SPAN(name) \
  ::pnr::prof::Span PNR_PROF_CONCAT(pnr_prof_span_, __LINE__)(name)

}  // namespace pnr::prof
