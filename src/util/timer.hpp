#pragma once
// Wall-clock timing helpers for the benchmark harness.

#include <chrono>

namespace pnr::util {

/// Monotonic stopwatch; starts on construction.
class Timer {
 public:
  Timer() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  /// Elapsed seconds since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  double millis() const { return seconds() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace pnr::util
