#pragma once
// Clang Thread Safety Analysis annotations (docs/STATIC_ANALYSIS.md,
// "Compiler-enforced lock discipline"). These macros let the *compiler*
// prove the lock discipline that used to live in comments: every
// mutex-guarded field names its mutex with PNR_GUARDED_BY, every function
// that expects a lock held says so with PNR_REQUIRES, and Clang's
// -Wthread-safety turns any mismatch into a build error on the
// clang-analysis CI leg. The annotations mirror the paper's
// correctness-by-construction framing: like the pnr::check validators,
// they move an invariant ("incremental state equals rebuilt state" there,
// "this field is only touched under this lock" here) from hope to a gate.
//
// Off Clang (GCC builds, which the default toolchain uses) every macro
// expands to nothing, so the annotations are free and cannot change
// behavior. The annotated pnr::util::Mutex / MutexLock / CondVar wrappers
// in util/mutex.hpp are the intended way to consume these; annotating raw
// std::mutex members does nothing because libstdc++'s lock types carry no
// annotations themselves.
//
// Conventions (see docs/STATIC_ANALYSIS.md for the full guide):
//   * PNR_GUARDED_BY(mu) on a field: reads and writes require mu held.
//   * PNR_PT_GUARDED_BY(mu) on a pointer field: the *pointee* requires mu.
//   * PNR_REQUIRES(mu) on a function: callers must already hold mu.
//   * PNR_ACQUIRE/PNR_RELEASE on a function: it takes/drops mu itself.
//   * PNR_EXCLUDES(mu) on a function: callers must NOT hold mu (deadlock
//     guard for functions that acquire mu internally).
//   * PNR_NO_THREAD_SAFETY_ANALYSIS is the waiver of last resort; every
//     use must carry a comment justifying why the analysis cannot see the
//     discipline (and should name the lock that actually protects it).

#if defined(__clang__) && defined(__has_attribute)
#define PNR_THREAD_ANNOTATION_IMPL(x) __attribute__((x))
#else
#define PNR_THREAD_ANNOTATION_IMPL(x)  // no-op off Clang
#endif

/// Marks a class as a lockable capability ("mutex" is the conventional
/// description string Clang prints in diagnostics).
#define PNR_CAPABILITY(x) PNR_THREAD_ANNOTATION_IMPL(capability(x))

/// Marks an RAII class whose constructor acquires and destructor releases.
#define PNR_SCOPED_CAPABILITY PNR_THREAD_ANNOTATION_IMPL(scoped_lockable)

/// Field annotation: access requires the named capability held.
#define PNR_GUARDED_BY(x) PNR_THREAD_ANNOTATION_IMPL(guarded_by(x))

/// Pointer-field annotation: the pointed-to data requires the capability.
#define PNR_PT_GUARDED_BY(x) PNR_THREAD_ANNOTATION_IMPL(pt_guarded_by(x))

/// Lock-ordering hints for deadlock detection.
#define PNR_ACQUIRED_BEFORE(...) \
  PNR_THREAD_ANNOTATION_IMPL(acquired_before(__VA_ARGS__))
#define PNR_ACQUIRED_AFTER(...) \
  PNR_THREAD_ANNOTATION_IMPL(acquired_after(__VA_ARGS__))

/// Function annotation: the caller must hold the capability on entry (and
/// still holds it on exit).
#define PNR_REQUIRES(...) \
  PNR_THREAD_ANNOTATION_IMPL(requires_capability(__VA_ARGS__))

/// Function annotations: the function itself acquires/releases.
#define PNR_ACQUIRE(...) \
  PNR_THREAD_ANNOTATION_IMPL(acquire_capability(__VA_ARGS__))
#define PNR_RELEASE(...) \
  PNR_THREAD_ANNOTATION_IMPL(release_capability(__VA_ARGS__))
#define PNR_TRY_ACQUIRE(...) \
  PNR_THREAD_ANNOTATION_IMPL(try_acquire_capability(__VA_ARGS__))

/// Function annotation: the caller must NOT hold the capability (the
/// function acquires it itself; holding it on entry would deadlock).
#define PNR_EXCLUDES(...) \
  PNR_THREAD_ANNOTATION_IMPL(locks_excluded(__VA_ARGS__))

/// Returns a reference to the named capability (for accessor functions).
#define PNR_RETURN_CAPABILITY(x) \
  PNR_THREAD_ANNOTATION_IMPL(lock_returned(x))

/// Waiver of last resort: the function's locking is correct but outside
/// what the analysis can express. Every use MUST carry a comment naming
/// the discipline that actually protects it.
#define PNR_NO_THREAD_SAFETY_ANALYSIS \
  PNR_THREAD_ANNOTATION_IMPL(no_thread_safety_analysis)
