#pragma once
// ASCII/CSV table writer used by the benchmark harness to print the paper's
// tables (Figs. 3, 4, 5) with aligned columns, and optionally dump CSV for
// plotting the series figures (Figs. 7, 8).

#include <iosfwd>
#include <string>
#include <vector>

namespace pnr::util {

/// A simple column-aligned table. Cells are strings; helpers format numbers.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Start a new row. Subsequent cell() calls fill it left to right.
  Table& row();
  Table& cell(const std::string& s);
  Table& cell(long long v);
  Table& cell(long v);
  Table& cell(int v);
  Table& cell(std::size_t v);
  /// Fixed-precision floating point cell.
  Table& cell(double v, int precision = 2);

  std::size_t rows() const { return rows_.size(); }

  /// Render with padded columns and a header rule.
  void print(std::ostream& os) const;

  /// Comma-separated dump (no padding), header first.
  void write_csv(std::ostream& os) const;

  /// Convenience: write_csv to a file path; returns false on I/O error.
  bool save_csv(const std::string& path) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace pnr::util
