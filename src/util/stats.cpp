#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace pnr::util {

void RunningStat::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStat::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

double percentile(std::vector<double> values, double p) {
  PNR_REQUIRE(!values.empty());
  PNR_REQUIRE(p >= 0.0 && p <= 100.0);
  std::sort(values.begin(), values.end());
  const auto rank = static_cast<std::size_t>(
      std::ceil(p / 100.0 * static_cast<double>(values.size())));
  return values[rank == 0 ? 0 : rank - 1];
}

}  // namespace pnr::util
