#pragma once
// Minimal JSON document: build, serialize, parse. Backs the machine-readable
// exports (pnr::prof trajectories, BENCH_pipeline.json) without an external
// dependency. Objects preserve insertion order so serialized output is
// stable and diffs cleanly.

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace pnr::util {

class Json {
 public:
  enum class Type { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

  Json() = default;
  Json(bool b) : type_(Type::kBool), bool_(b) {}
  Json(int v) : type_(Type::kInt), int_(v) {}
  Json(std::int64_t v) : type_(Type::kInt), int_(v) {}
  Json(double v) : type_(Type::kDouble), double_(v) {}
  Json(const char* s) : type_(Type::kString), string_(s) {}
  Json(std::string s) : type_(Type::kString), string_(std::move(s)) {}

  static Json array() { return Json(Type::kArray); }
  static Json object() { return Json(Type::kObject); }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_number() const {
    return type_ == Type::kInt || type_ == Type::kDouble;
  }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  bool as_bool() const { return bool_; }
  /// Numeric accessors convert between the int/double representations.
  std::int64_t as_int() const {
    return type_ == Type::kDouble ? static_cast<std::int64_t>(double_) : int_;
  }
  double as_double() const {
    return type_ == Type::kInt ? static_cast<double>(int_) : double_;
  }
  const std::string& as_string() const { return string_; }

  // Array interface.
  void push_back(Json v) { array_.push_back(std::move(v)); }
  std::size_t size() const { return array_.size(); }
  const Json& at(std::size_t i) const { return array_[i]; }
  const std::vector<Json>& elements() const { return array_; }

  // Object interface. operator[] inserts a null member when absent.
  Json& operator[](const std::string& key);
  /// Member lookup; nullptr when absent (or not an object).
  const Json* find(const std::string& key) const;
  const std::vector<std::pair<std::string, Json>>& members() const {
    return object_;
  }

  /// Serialize. indent == 0 is compact single-line; indent > 0 pretty-prints
  /// with that many spaces per nesting level.
  std::string dump(int indent = 0) const;

  /// Parse a complete JSON document (trailing junk is an error). Returns
  /// nullopt on malformed input and, when `error` is non-null, a short
  /// description with the byte offset.
  static std::optional<Json> parse(const std::string& text,
                                   std::string* error = nullptr);

 private:
  explicit Json(Type t) : type_(t) {}
  void dump_to(std::string& out, int indent, int depth) const;

  Type type_ = Type::kNull;
  bool bool_ = false;
  std::int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
  std::vector<Json> array_;
  std::vector<std::pair<std::string, Json>> object_;
};

}  // namespace pnr::util
