#include "util/log.hpp"

#include <atomic>
#include <cstdio>

#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace pnr::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};
/// Serializes whole lines onto stderr; nothing else is guarded by it, so a
/// bare capability (no GUARDED_BY siblings) is the honest annotation.
Mutex g_mutex;
const char* level_name(LogLevel l) {
  switch (l) {
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
    default: return "?";
  }
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }
LogLevel log_level() { return g_level.load(); }

void log_message(LogLevel level, const std::string& msg) {
  if (level < g_level.load()) return;
  MutexLock lock(g_mutex);
  std::fprintf(stderr, "[pnr %s] %s\n", level_name(level), msg.c_str());
}

}  // namespace pnr::util
