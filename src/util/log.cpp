#include "util/log.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace pnr::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::mutex g_mutex;
const char* level_name(LogLevel l) {
  switch (l) {
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
    default: return "?";
  }
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }
LogLevel log_level() { return g_level.load(); }

void log_message(LogLevel level, const std::string& msg) {
  if (level < g_level.load()) return;
  std::lock_guard<std::mutex> lock(g_mutex);
  std::fprintf(stderr, "[pnr %s] %s\n", level_name(level), msg.c_str());
}

}  // namespace pnr::util
