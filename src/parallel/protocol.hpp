#pragma once
// The PARED coordinator protocol of Figure 2, run over the message-passing
// simulator, for both 2D triangle and 3D tetrahedral meshes. Ranks hold a
// *replicated* copy of the mesh (our parallel refinement, like the paper's,
// produces the identical mesh on every rank — see DESIGN.md substitutions)
// but each refinement-history tree is *owned* by exactly one rank;
// ownership is what the protocol redistributes.
//
//   P0  every rank adapts the mesh (refine + coarsen) deterministically;
//   P1  each rank computes new vertex/edge weights of the coarse graph G
//       for the trees it owns;
//   P2  the weights are sent to the coordinator P_C;
//   P3  P_C updates G, repartitions it with PNR, and broadcasts the new
//       assignment; ranks serialize the refinement trees they lose and ship
//       them to the new owners, which validate the payload.
//
// Migration traffic is therefore real serialized bytes proportional to the
// number of fine elements moved — the quantity the paper's Figures 4/5/8
// measure.

#include <cstdint>
#include <vector>

#include "core/pnr.hpp"
#include "fem/estimator.hpp"
#include "fem/problems.hpp"
#include "mesh/tet_mesh.hpp"
#include "mesh/tri_mesh.hpp"
#include "parallel/comm.hpp"

namespace pnr::par {

struct StepStats {
  std::int64_t bisections = 0;      ///< P0 refinements (global)
  std::int64_t merges = 0;          ///< P0 coarsenings (global)
  std::int64_t trees_moved = 0;     ///< coarse trees that changed owner
  std::int64_t elements_moved = 0;  ///< leaves in those trees (C_migrate)
  std::int64_t payload_bytes = 0;   ///< serialized tree bytes shipped
  graph::Weight cut_after = 0;      ///< coarse-graph cut of the new Π̂
  double imbalance_after = 0.0;
};

namespace detail {

template <typename Mesh>
struct MeshTraits;

template <>
struct MeshTraits<mesh::TriMesh> {
  static constexpr int kVertsPerElem = 3;
  static constexpr int kDim = 2;
  using Field = fem::ScalarField2;
  static const auto& elem(const mesh::TriMesh& m, mesh::ElemIdx e) {
    return m.tri(e);
  }
  static void coords(const mesh::TriMesh& m, mesh::VertIdx v, double* out) {
    const auto& p = m.vertex(v);
    out[0] = p.x;
    out[1] = p.y;
  }
  template <typename F>
  static void for_each_interface(const mesh::TriMesh& m, F&& f) {
    m.for_each_leaf_edge([&](mesh::VertIdx, mesh::VertIdx, mesh::ElemIdx e1,
                             mesh::ElemIdx e2) { f(e1, e2); });
  }
};

template <>
struct MeshTraits<mesh::TetMesh> {
  static constexpr int kVertsPerElem = 4;
  static constexpr int kDim = 3;
  using Field = fem::ScalarField3;
  static const auto& elem(const mesh::TetMesh& m, mesh::ElemIdx e) {
    return m.tet(e);
  }
  static void coords(const mesh::TetMesh& m, mesh::VertIdx v, double* out) {
    const auto& p = m.vertex(v);
    out[0] = p.x;
    out[1] = p.y;
    out[2] = p.z;
  }
  template <typename F>
  static void for_each_interface(const mesh::TetMesh& m, F&& f) {
    m.for_each_leaf_face([&](mesh::VertIdx, mesh::VertIdx, mesh::VertIdx,
                             mesh::ElemIdx e1, mesh::ElemIdx e2) {
      f(e1, e2);
    });
  }
};

}  // namespace detail

/// One rank's view of the protocol. Construct inside World::run.
template <typename Mesh>
class ParedRankT {
 public:
  using Traits = detail::MeshTraits<Mesh>;
  using Field = typename Traits::Field;

  /// Every rank constructs the same initial mesh (replication invariant).
  ParedRankT(Comm& comm, Mesh mesh, core::PnrOptions options,
             std::uint64_t seed);

  /// The coordinator computes the initial PNR partition of G and broadcasts
  /// it; every rank records the resulting tree ownership.
  void initialize();

  /// One full P0–P3 round against the given field/marking policy.
  StepStats step(const Field& field, const fem::MarkOptions& mark);

  /// Tree owner per initial element (identical on every rank after a step).
  const std::vector<part::PartId>& ownership() const { return ownership_; }
  const Mesh& local_mesh() const { return mesh_; }

  /// Leaves owned by this rank (elements of trees assigned to it).
  std::int64_t owned_leaves() const;

  static constexpr int kCoordinator = 0;

 private:
  graph::Graph assemble_coarse_graph(StepStats& stats);
  void migrate_trees(const std::vector<part::PartId>& next, StepStats& stats);
  Bytes serialize_tree(mesh::ElemIdx root) const;
  void validate_tree_payload(const Bytes& payload) const;

  Comm& comm_;
  Mesh mesh_;
  core::Pnr pnr_;
  util::Rng rng_;
  std::vector<part::PartId> ownership_;  ///< per initial element
};

using ParedRank = ParedRankT<mesh::TriMesh>;
using ParedRank3D = ParedRankT<mesh::TetMesh>;

extern template class ParedRankT<mesh::TriMesh>;
extern template class ParedRankT<mesh::TetMesh>;

}  // namespace pnr::par
