#include "parallel/protocol.hpp"

#include <algorithm>
#include <unordered_map>

#include "graph/builder.hpp"
#include "mesh/dual.hpp"
#include "parallel/serialize.hpp"
#include "util/assert.hpp"
#include "util/prof.hpp"

namespace pnr::par {

namespace {
constexpr int kTagTreeCount = 103;
constexpr int kTagTree = 104;

struct EdgeTriple {
  mesh::ElemIdx a;
  mesh::ElemIdx b;
  graph::Weight w;
};
}  // namespace

template <typename Mesh>
ParedRankT<Mesh>::ParedRankT(Comm& comm, Mesh mesh, core::PnrOptions options,
                             std::uint64_t seed)
    : comm_(comm),
      mesh_(std::move(mesh)),
      pnr_(static_cast<part::PartId>(comm.size()), options),
      // Every rank must draw the same random stream wherever the replicated
      // algorithm touches randomness (coordinator-only code may diverge).
      rng_(seed) {
  ownership_.assign(static_cast<std::size_t>(mesh_.num_initial_elements()), 0);
}

template <typename Mesh>
void ParedRankT<Mesh>::initialize() {
  Bytes assignment;
  if (comm_.rank() == kCoordinator) {
    const auto g = mesh::nested_dual_graph(mesh_);
    const auto pi = pnr_.initial_partition(g, rng_);
    Writer w;
    w.put_vector(pi.assign);
    assignment = w.take();
  }
  assignment = comm_.broadcast(kCoordinator, std::move(assignment));
  Reader r(std::move(assignment));
  ownership_ = r.get_vector<part::PartId>();
  PNR_REQUIRE(ownership_.size() ==
              static_cast<std::size_t>(mesh_.num_initial_elements()));
}

template <typename Mesh>
std::int64_t ParedRankT<Mesh>::owned_leaves() const {
  std::int64_t total = 0;
  for (mesh::ElemIdx c = 0; c < mesh_.num_initial_elements(); ++c)
    if (ownership_[static_cast<std::size_t>(c)] == comm_.rank())
      total += mesh_.leaf_count(c);
  return total;
}

template <typename Mesh>
graph::Graph ParedRankT<Mesh>::assemble_coarse_graph(StepStats& stats) {
  PNR_PROF_SPAN("protocol.weights");
  // P1: weights for the trees this rank owns. An interface edge (a, b) is
  // reported by the owner of min(a, b) so exactly one rank sends it.
  std::vector<mesh::ElemIdx> owned;
  std::vector<graph::Weight> owned_weights;
  for (mesh::ElemIdx c = 0; c < mesh_.num_initial_elements(); ++c)
    if (ownership_[static_cast<std::size_t>(c)] == comm_.rank()) {
      owned.push_back(c);
      owned_weights.push_back(mesh_.leaf_count(c));
    }

  std::vector<EdgeTriple> edges;
  {
    std::unordered_map<std::uint64_t, graph::Weight> acc;
    Traits::for_each_interface(mesh_, [&](mesh::ElemIdx e1, mesh::ElemIdx e2) {
      if (e1 == mesh::kNoElem || e2 == mesh::kNoElem) return;
      const mesh::ElemIdx c1 = Traits::elem(mesh_, e1).coarse;
      const mesh::ElemIdx c2 = Traits::elem(mesh_, e2).coarse;
      if (c1 == c2) return;
      const mesh::ElemIdx lo = std::min(c1, c2), hi = std::max(c1, c2);
      if (ownership_[static_cast<std::size_t>(lo)] != comm_.rank()) return;
      ++acc[(static_cast<std::uint64_t>(hi) << 32) |
            static_cast<std::uint64_t>(lo)];
    });
    edges.reserve(acc.size());
    for (const auto& [key, w] : acc)
      edges.push_back({static_cast<mesh::ElemIdx>(key & 0xffffffffull),
                       static_cast<mesh::ElemIdx>(key >> 32), w});
    std::sort(edges.begin(), edges.end(),
              [](const EdgeTriple& x, const EdgeTriple& y) {
                if (x.a != y.a) return x.a < y.a;
                return x.b < y.b;
              });
  }

  // P2: ship to the coordinator.
  Writer w;
  w.put_vector(owned);
  w.put_vector(owned_weights);
  w.put_vector(edges);
  const auto all = comm_.gather(kCoordinator, w.take());

  // P3 (coordinator side): rebuild G.
  if (comm_.rank() != kCoordinator) return {};
  graph::GraphBuilder builder(mesh_.num_initial_elements());
  std::int64_t payload = 0;
  for (const Bytes& msg : all) {
    payload += static_cast<std::int64_t>(msg.size());
    Reader r(msg);
    const auto ids = r.get_vector<mesh::ElemIdx>();
    const auto weights = r.get_vector<graph::Weight>();
    const auto triples = r.get_vector<EdgeTriple>();
    PNR_REQUIRE(ids.size() == weights.size());
    for (std::size_t i = 0; i < ids.size(); ++i)
      builder.set_vertex_weight(ids[i], weights[i]);
    for (const EdgeTriple& t : triples) builder.add_edge(t.a, t.b, t.w);
  }
  stats.payload_bytes += payload;
  return builder.build();
}

template <typename Mesh>
Bytes ParedRankT<Mesh>::serialize_tree(mesh::ElemIdx root) const {
  // Depth-first dump of the refinement history tree plus the coordinates of
  // every vertex it references — a faithful migration payload.
  Writer w;
  std::vector<mesh::ElemIdx> stack{root};
  std::vector<mesh::ElemIdx> nodes;
  while (!stack.empty()) {
    const mesh::ElemIdx e = stack.back();
    stack.pop_back();
    nodes.push_back(e);
    const auto& t = Traits::elem(mesh_, e);
    if (!t.leaf) {
      stack.push_back(t.child[0]);
      stack.push_back(t.child[1]);
    }
  }
  w.put(static_cast<std::uint64_t>(nodes.size()));
  for (const mesh::ElemIdx e : nodes) {
    const auto& t = Traits::elem(mesh_, e);
    w.put(e);
    for (int k = 0; k < Traits::kVertsPerElem; ++k)
      w.put(t.v[static_cast<std::size_t>(k)]);
    w.put(t.level);
    w.put(static_cast<std::uint8_t>(t.leaf));
    for (int k = 0; k < Traits::kVertsPerElem; ++k) {
      double xyz[3];
      Traits::coords(mesh_, t.v[static_cast<std::size_t>(k)], xyz);
      for (int d = 0; d < Traits::kDim; ++d) w.put(xyz[d]);
    }
  }
  return w.take();
}

template <typename Mesh>
void ParedRankT<Mesh>::validate_tree_payload(const Bytes& payload) const {
  Reader r(payload);
  const auto count = r.get<std::uint64_t>();
  for (std::uint64_t k = 0; k < count; ++k) {
    const auto e = r.get<mesh::ElemIdx>();
    const auto& t = Traits::elem(mesh_, e);
    // Replication invariant: the shipped tree must match our replica bit
    // for bit (same ids, same topology, same geometry).
    PNR_REQUIRE(t.alive);
    for (int i = 0; i < Traits::kVertsPerElem; ++i)
      PNR_REQUIRE(t.v[static_cast<std::size_t>(i)] == r.get<mesh::VertIdx>());
    PNR_REQUIRE(t.level == r.get<std::int16_t>());
    PNR_REQUIRE(static_cast<std::uint8_t>(t.leaf) == r.get<std::uint8_t>());
    for (int i = 0; i < Traits::kVertsPerElem; ++i) {
      double xyz[3];
      Traits::coords(mesh_, t.v[static_cast<std::size_t>(i)], xyz);
      for (int d = 0; d < Traits::kDim; ++d)
        PNR_REQUIRE(xyz[d] == r.get<double>());
    }
  }
  PNR_REQUIRE(r.done());
}

template <typename Mesh>
void ParedRankT<Mesh>::migrate_trees(const std::vector<part::PartId>& next,
                                     StepStats& stats) {
  PNR_PROF_SPAN("protocol.migrate");
  const std::int64_t payload_before = stats.payload_bytes;
  const std::int64_t elements_before = stats.elements_moved;
  const int me = comm_.rank();
  // Count and serialize outgoing trees per destination.
  std::vector<std::vector<mesh::ElemIdx>> outgoing(
      static_cast<std::size_t>(comm_.size()));
  for (mesh::ElemIdx c = 0; c < mesh_.num_initial_elements(); ++c) {
    const auto sc = static_cast<std::size_t>(c);
    if (ownership_[sc] == me && next[sc] != me)
      outgoing[static_cast<std::size_t>(next[sc])].push_back(c);
  }

  for (int dest = 0; dest < comm_.size(); ++dest) {
    if (dest == me) continue;
    Writer header;
    header.put(static_cast<std::uint64_t>(
        outgoing[static_cast<std::size_t>(dest)].size()));
    comm_.send(dest, kTagTreeCount, header.take());
    for (const mesh::ElemIdx c : outgoing[static_cast<std::size_t>(dest)]) {
      Bytes payload = serialize_tree(c);
      stats.payload_bytes += static_cast<std::int64_t>(payload.size());
      ++stats.trees_moved;
      stats.elements_moved += mesh_.leaf_count(c);
      comm_.send(dest, kTagTree, std::move(payload));
    }
  }
  for (int src = 0; src < comm_.size(); ++src) {
    if (src == me) continue;
    Reader header(comm_.recv(src, kTagTreeCount));
    const auto count = header.get<std::uint64_t>();
    for (std::uint64_t k = 0; k < count; ++k)
      validate_tree_payload(comm_.recv(src, kTagTree));
  }
  ownership_ = next;
  // This rank's own contributions (the step()'s all-reduce would multiply
  // global numbers by the rank count).
  prof::count("protocol.payload_bytes", stats.payload_bytes - payload_before);
  prof::count("protocol.elements_moved",
              stats.elements_moved - elements_before);
}

template <typename Mesh>
StepStats ParedRankT<Mesh>::step(const Field& field,
                                 const fem::MarkOptions& mark) {
  PNR_PROF_SPAN("protocol.step");
  StepStats stats;

  // P0: deterministic replicated adaptation.
  {
    PNR_PROF_SPAN("protocol.adapt");
    const auto to_coarsen = fem::mark_for_coarsening(mesh_, field, mark);
    stats.merges = mesh_.coarsen(to_coarsen);
    const auto to_refine = fem::mark_for_refinement(mesh_, field, mark);
    stats.bisections = mesh_.refine(to_refine);
  }

  // P1 + P2: weights to the coordinator. P3: repartition and broadcast.
  graph::Graph g = assemble_coarse_graph(stats);
  Bytes reply;
  if (comm_.rank() == kCoordinator) {
    part::Partition current(static_cast<part::PartId>(comm_.size()),
                            ownership_);
    core::RepartitionStats rstats;
    const auto pi = pnr_.repartition(g, current, rng_, &rstats);
    Writer w;
    w.put(rstats.cut_after);
    w.put(rstats.imbalance_after);
    w.put_vector(pi.assign);
    reply = w.take();
  }
  reply = comm_.broadcast(kCoordinator, std::move(reply));
  Reader r(std::move(reply));
  stats.cut_after = r.get<graph::Weight>();
  stats.imbalance_after = r.get<double>();
  const auto next = r.get_vector<part::PartId>();
  PNR_REQUIRE(next.size() == ownership_.size());

  migrate_trees(next, stats);

  // Aggregate the per-rank counters so every rank reports global numbers.
  stats.trees_moved = comm_.all_reduce_sum(stats.trees_moved);
  stats.elements_moved = comm_.all_reduce_sum(stats.elements_moved);
  stats.payload_bytes = comm_.all_reduce_sum(stats.payload_bytes);
  return stats;
}

template class ParedRankT<mesh::TriMesh>;
template class ParedRankT<mesh::TetMesh>;

}  // namespace pnr::par
