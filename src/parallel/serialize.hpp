#pragma once
// Byte-buffer serialization for the message-passing layer: PODs and vectors
// of PODs, little-endian layout. Two readers share the Writer's format:
// Reader aborts on underflow (trusted intra-process messages), TryReader
// returns nullopt (untrusted wire input, used by pnr::svc).

#include <bit>
#include <cstdint>
#include <cstring>
#include <optional>
#include <string>
#include <type_traits>
#include <vector>

#include "parallel/comm.hpp"
#include "util/assert.hpp"

namespace pnr::par {

// The byte layout is the in-memory layout of little-endian hosts; pinning it
// at compile time makes the encoding an exchange format, not just a memcpy.
static_assert(std::endian::native == std::endian::little,
              "pnr wire/message format is defined little-endian");

class Writer {
 public:
  template <typename T>
  void put(const T& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    const auto offset = buffer_.size();
    buffer_.resize(offset + sizeof(T));
    std::memcpy(buffer_.data() + offset, &v, sizeof(T));
  }

  template <typename T>
  void put_vector(const std::vector<T>& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    put(static_cast<std::uint64_t>(v.size()));
    const auto offset = buffer_.size();
    buffer_.resize(offset + v.size() * sizeof(T));
    if (!v.empty())
      std::memcpy(buffer_.data() + offset, v.data(), v.size() * sizeof(T));
  }

  Bytes take() { return std::move(buffer_); }
  std::size_t size() const { return buffer_.size(); }

 private:
  Bytes buffer_;
};

class Reader {
 public:
  /// Owns the buffer (taken by value) so temporaries — e.g. the result of
  /// Comm::recv — can be passed directly without dangling.
  explicit Reader(Bytes bytes) : bytes_(std::move(bytes)) {}

  template <typename T>
  T get() {
    static_assert(std::is_trivially_copyable_v<T>);
    PNR_REQUIRE_MSG(pos_ + sizeof(T) <= bytes_.size(), "message underflow");
    T v;
    std::memcpy(&v, bytes_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  template <typename T>
  std::vector<T> get_vector() {
    const auto n = static_cast<std::size_t>(get<std::uint64_t>());
    PNR_REQUIRE_MSG(pos_ + n * sizeof(T) <= bytes_.size(), "message underflow");
    std::vector<T> v(n);
    if (n) std::memcpy(v.data(), bytes_.data() + pos_, n * sizeof(T));
    pos_ += n * sizeof(T);
    return v;
  }

  bool done() const { return pos_ == bytes_.size(); }

 private:
  Bytes bytes_;
  std::size_t pos_ = 0;
};

/// Non-aborting reader over the same layout, for input that crosses a trust
/// boundary (pnr::svc frames): every accessor reports malformed or truncated
/// data as nullopt instead of raising, and vector reads are bounded so a
/// hostile length prefix cannot drive a huge allocation. Views the buffer
/// (no copy); the buffer must outlive the reader.
class TryReader {
 public:
  TryReader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}
  explicit TryReader(const Bytes& bytes)
      : TryReader(bytes.data(), bytes.size()) {}

  template <typename T>
  std::optional<T> get() {
    static_assert(std::is_trivially_copyable_v<T>);
    if (size_ - pos_ < sizeof(T)) return std::nullopt;
    T v;
    std::memcpy(&v, data_ + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  /// Vector whose encoded element count must not exceed `max_count`; the
  /// count is validated against the remaining bytes before any allocation.
  template <typename T>
  std::optional<std::vector<T>> get_vector(std::uint64_t max_count) {
    static_assert(std::is_trivially_copyable_v<T>);
    const auto n = get<std::uint64_t>();
    if (!n || *n > max_count || (size_ - pos_) / sizeof(T) < *n)
      return std::nullopt;
    std::vector<T> v(static_cast<std::size_t>(*n));
    if (*n) std::memcpy(v.data(), data_ + pos_, v.size() * sizeof(T));
    pos_ += v.size() * sizeof(T);
    return v;
  }

  /// Length-prefixed byte string, bounded like get_vector.
  std::optional<std::string> get_string(std::uint64_t max_bytes) {
    const auto v = get_vector<char>(max_bytes);
    if (!v) return std::nullopt;
    return std::string(v->begin(), v->end());
  }

  std::size_t remaining() const { return size_ - pos_; }
  bool done() const { return pos_ == size_; }

 private:
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

inline void put_string(Writer& w, const std::string& s) {
  w.put(static_cast<std::uint64_t>(s.size()));
  for (const char c : s) w.put(c);
}

}  // namespace pnr::par
