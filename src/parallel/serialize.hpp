#pragma once
// Byte-buffer serialization for the message-passing layer: PODs and vectors
// of PODs, little-endian host layout (the simulator never crosses machines).

#include <cstdint>
#include <cstring>
#include <string>
#include <type_traits>
#include <vector>

#include "parallel/comm.hpp"
#include "util/assert.hpp"

namespace pnr::par {

class Writer {
 public:
  template <typename T>
  void put(const T& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    const auto offset = buffer_.size();
    buffer_.resize(offset + sizeof(T));
    std::memcpy(buffer_.data() + offset, &v, sizeof(T));
  }

  template <typename T>
  void put_vector(const std::vector<T>& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    put(static_cast<std::uint64_t>(v.size()));
    const auto offset = buffer_.size();
    buffer_.resize(offset + v.size() * sizeof(T));
    if (!v.empty())
      std::memcpy(buffer_.data() + offset, v.data(), v.size() * sizeof(T));
  }

  Bytes take() { return std::move(buffer_); }
  std::size_t size() const { return buffer_.size(); }

 private:
  Bytes buffer_;
};

class Reader {
 public:
  /// Owns the buffer (taken by value) so temporaries — e.g. the result of
  /// Comm::recv — can be passed directly without dangling.
  explicit Reader(Bytes bytes) : bytes_(std::move(bytes)) {}

  template <typename T>
  T get() {
    static_assert(std::is_trivially_copyable_v<T>);
    PNR_REQUIRE_MSG(pos_ + sizeof(T) <= bytes_.size(), "message underflow");
    T v;
    std::memcpy(&v, bytes_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  template <typename T>
  std::vector<T> get_vector() {
    const auto n = static_cast<std::size_t>(get<std::uint64_t>());
    PNR_REQUIRE_MSG(pos_ + n * sizeof(T) <= bytes_.size(), "message underflow");
    std::vector<T> v(n);
    if (n) std::memcpy(v.data(), bytes_.data() + pos_, n * sizeof(T));
    pos_ += n * sizeof(T);
    return v;
  }

  bool done() const { return pos_ == bytes_.size(); }

 private:
  Bytes bytes_;
  std::size_t pos_ = 0;
};

}  // namespace pnr::par
