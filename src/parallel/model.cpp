#include "parallel/model.hpp"

#include <cmath>

#include "graph/algorithms.hpp"
#include "util/assert.hpp"

namespace pnr::par {

double migration_cost_model(const graph::Graph& h, std::int32_t origin,
                            std::int64_t m) {
  PNR_REQUIRE(origin >= 0 && origin < h.num_vertices());
  const auto p = static_cast<double>(h.num_vertices());
  const auto dist = graph::bfs_distances(h, origin);
  double total = 0.0;
  for (std::size_t j = 0; j < dist.size(); ++j)
    if (static_cast<std::int32_t>(j) != origin && dist[j] > 0)
      total += static_cast<double>(dist[j]) * (static_cast<double>(m) / p);
  return total;
}

double corner_mesh_bound(std::int32_t p, std::int64_t m) {
  PNR_REQUIRE(p >= 1);
  const double sqrt_p = std::sqrt(static_cast<double>(p));
  return 2.0 * (sqrt_p - 1.0) * (static_cast<double>(p - 1)) *
         static_cast<double>(m) / static_cast<double>(p);
}

}  // namespace pnr::par
