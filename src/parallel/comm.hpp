#pragma once
// In-process message-passing runtime standing in for MPI (see DESIGN.md,
// substitutions). Ranks run on std::thread and communicate exclusively
// through typed mailboxes — point-to-point send/recv with tags, barrier,
// all-reduce, gather and broadcast, mirroring the MPI subset PARED uses.
// All traffic is counted so the benches can report logical message volume.

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <vector>

#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace pnr::par {

using Bytes = std::vector<std::uint8_t>;

class World;

/// Per-rank communicator handle (valid only inside World::run).
class Comm {
 public:
  int rank() const { return rank_; }
  int size() const;

  /// Asynchronous point-to-point send (never blocks; mailboxes are unbounded).
  void send(int dest, int tag, Bytes data);

  /// Blocking receive of the next message from `src` with `tag` (FIFO per
  /// (src, tag) channel).
  Bytes recv(int src, int tag);

  void barrier();

  std::int64_t all_reduce_sum(std::int64_t value);
  double all_reduce_max(double value);

  /// Root receives everyone's buffer (index = rank); non-roots get {}.
  std::vector<Bytes> gather(int root, Bytes data);

  /// Root's buffer is delivered to everyone.
  Bytes broadcast(int root, Bytes data);

  /// Logical traffic counters for this rank.
  std::int64_t bytes_sent() const { return bytes_sent_; }
  std::int64_t messages_sent() const { return messages_sent_; }

 private:
  friend class World;
  Comm(World* world, int rank) : world_(world), rank_(rank) {}
  World* world_;
  int rank_;
  std::int64_t bytes_sent_ = 0;
  std::int64_t messages_sent_ = 0;
};

/// Owns the shared mailboxes and runs one function per rank on its own
/// thread. Any uncaught exception in a rank is rethrown after join.
class World {
 public:
  explicit World(int num_ranks);

  int size() const { return num_ranks_; }

  /// Execute fn on every rank concurrently; returns when all finish.
  void run(const std::function<void(Comm&)>& fn);

  /// Total logical traffic of the last run().
  std::int64_t total_bytes() const { return total_bytes_; }
  std::int64_t total_messages() const { return total_messages_; }

 private:
  friend class Comm;

  struct Mailbox {
    util::Mutex mutex;
    util::CondVar cv;
    // (src, tag) -> FIFO queue
    std::map<std::pair<int, int>, std::deque<Bytes>> queues
        PNR_GUARDED_BY(mutex);
  };

  void deliver(int dest, int src, int tag, Bytes data);
  Bytes take(int dest, int src, int tag);
  void barrier_wait() PNR_EXCLUDES(barrier_mutex_);

  int num_ranks_;
  std::vector<Mailbox> mailboxes_;

  util::Mutex barrier_mutex_;
  util::CondVar barrier_cv_;
  int barrier_count_ PNR_GUARDED_BY(barrier_mutex_) = 0;
  std::uint64_t barrier_generation_ PNR_GUARDED_BY(barrier_mutex_) = 0;

  std::int64_t total_bytes_ = 0;
  std::int64_t total_messages_ = 0;
};

}  // namespace pnr::par
