#include "parallel/comm.hpp"

#include <atomic>
#include <cstring>
#include <exception>
#include <thread>

#include "exec/pool.hpp"
#include "util/assert.hpp"
#include "util/prof.hpp"

namespace pnr::par {

namespace {
// Tags at the top of the range are reserved for the built-in collectives.
// SPMD discipline (every rank executes the same collective sequence) plus
// FIFO (src, tag) channels make reuse across successive collectives safe.
constexpr int kGatherTag = (1 << 30) + 1;
constexpr int kBcastTag = (1 << 30) + 2;
constexpr int kReduceTag = (1 << 30) + 3;

Bytes pack_i64(std::int64_t v) {
  Bytes b(sizeof v);
  std::memcpy(b.data(), &v, sizeof v);
  return b;
}
std::int64_t unpack_i64(const Bytes& b) {
  PNR_REQUIRE(b.size() == sizeof(std::int64_t));
  std::int64_t v;
  std::memcpy(&v, b.data(), sizeof v);
  return v;
}
Bytes pack_f64(double v) {
  Bytes b(sizeof v);
  std::memcpy(b.data(), &v, sizeof v);
  return b;
}
double unpack_f64(const Bytes& b) {
  PNR_REQUIRE(b.size() == sizeof(double));
  double v;
  std::memcpy(&v, b.data(), sizeof v);
  return v;
}
}  // namespace

// ---- Comm -------------------------------------------------------------------

int Comm::size() const { return world_->size(); }

void Comm::send(int dest, int tag, Bytes data) {
  PNR_REQUIRE(dest >= 0 && dest < world_->size());
  bytes_sent_ += static_cast<std::int64_t>(data.size());
  ++messages_sent_;
  prof::count("par.messages_sent");
  prof::count("par.bytes_sent", static_cast<std::int64_t>(data.size()));
  world_->deliver(dest, rank_, tag, std::move(data));
}

Bytes Comm::recv(int src, int tag) {
  PNR_REQUIRE(src >= 0 && src < world_->size());
  return world_->take(rank_, src, tag);
}

void Comm::barrier() { world_->barrier_wait(); }

std::vector<Bytes> Comm::gather(int root, Bytes data) {
  if (rank_ != root) {
    send(root, kGatherTag, std::move(data));
    return {};
  }
  std::vector<Bytes> all(static_cast<std::size_t>(size()));
  all[static_cast<std::size_t>(rank_)] = std::move(data);
  for (int src = 0; src < size(); ++src)
    if (src != root) all[static_cast<std::size_t>(src)] = recv(src, kGatherTag);
  return all;
}

Bytes Comm::broadcast(int root, Bytes data) {
  if (rank_ == root) {
    for (int dest = 0; dest < size(); ++dest)
      if (dest != root) send(dest, kBcastTag, data);
    return data;
  }
  return recv(root, kBcastTag);
}

std::int64_t Comm::all_reduce_sum(std::int64_t value) {
  if (rank_ != 0) {
    send(0, kReduceTag, pack_i64(value));
    return unpack_i64(recv(0, kReduceTag));
  }
  std::int64_t total = value;
  for (int src = 1; src < size(); ++src) total += unpack_i64(recv(src, kReduceTag));
  for (int dest = 1; dest < size(); ++dest) send(dest, kReduceTag, pack_i64(total));
  return total;
}

double Comm::all_reduce_max(double value) {
  if (rank_ != 0) {
    send(0, kReduceTag, pack_f64(value));
    return unpack_f64(recv(0, kReduceTag));
  }
  double best = value;
  for (int src = 1; src < size(); ++src)
    best = std::max(best, unpack_f64(recv(src, kReduceTag)));
  for (int dest = 1; dest < size(); ++dest) send(dest, kReduceTag, pack_f64(best));
  return best;
}

// ---- World ------------------------------------------------------------------

World::World(int num_ranks)
    : num_ranks_(num_ranks), mailboxes_(static_cast<std::size_t>(num_ranks)) {
  PNR_REQUIRE(num_ranks >= 1);
}

void World::deliver(int dest, int src, int tag, Bytes data) {
  Mailbox& box = mailboxes_[static_cast<std::size_t>(dest)];
  {
    util::MutexLock lock(box.mutex);
    box.queues[{src, tag}].push_back(std::move(data));
  }
  box.cv.notify_all();
}

Bytes World::take(int dest, int src, int tag) {
  Mailbox& box = mailboxes_[static_cast<std::size_t>(dest)];
  util::MutexLock lock(box.mutex);
  auto& queue = box.queues[{src, tag}];
  while (queue.empty()) box.cv.wait(box.mutex);
  Bytes data = std::move(queue.front());
  queue.pop_front();
  return data;
}

void World::barrier_wait() {
  util::MutexLock lock(barrier_mutex_);
  const std::uint64_t generation = barrier_generation_;
  if (++barrier_count_ == num_ranks_) {
    barrier_count_ = 0;
    ++barrier_generation_;
    barrier_cv_.notify_all();
    return;
  }
  while (barrier_generation_ == generation) barrier_cv_.wait(barrier_mutex_);
}

void World::run(const std::function<void(Comm&)>& fn) {
  std::vector<std::thread> threads;
  std::vector<Comm> comms;
  comms.reserve(static_cast<std::size_t>(num_ranks_));
  for (int r = 0; r < num_ranks_; ++r) comms.push_back(Comm(this, r));

  std::exception_ptr first_error;
  util::Mutex error_mutex;
  for (int r = 0; r < num_ranks_; ++r) {
    threads.emplace_back([&, r] {
      // Ranks are themselves concurrent, so any pnr::exec kernel they call
      // must run inline: nesting pool regions inside rank threads would
      // serialize the ranks on the pool's region lock and re-order chunk
      // claims between runs.
      exec::SerialRegion serial_region;
      try {
        fn(comms[static_cast<std::size_t>(r)]);
      } catch (...) {
        util::MutexLock lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();

  total_bytes_ = 0;
  total_messages_ = 0;
  for (const Comm& c : comms) {
    total_bytes_ += c.bytes_sent();
    total_messages_ += c.messages_sent();
  }
  // Leftover undelivered messages would deadlock the *next* run; clear them.
  // All rank threads are joined, but queues is lock-annotated, so take the
  // (uncontended) lock to keep the analysis honest.
  for (auto& box : mailboxes_) {
    util::MutexLock lock(box.mutex);
    box.queues.clear();
  }

  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace pnr::par
