#pragma once
// The Section 8 migration-cost model: when m new elements appear on one
// processor P_o and balance is restored by moving elements only between
// *adjacent* processors (edges of the processor connectivity graph H^t),
// the total migration cost is Σ_{j≠o} d_{o,j}·(m/p), where d is the hop
// distance in H^t. For a √p×√p processor mesh with P_o in a corner this is
// bounded by 2√p·m — independent of the mesh size, which is exactly the
// behavior Figure 5 measures for PNR.

#include <cstdint>

#include "graph/csr.hpp"

namespace pnr::graph {
class Graph;
}

namespace pnr::par {

/// Σ_{j≠origin} d(origin, j) · (m / p) over the processor graph `h`
/// (unreachable processors contribute nothing). `m` is the number of new
/// elements created on `origin`.
double migration_cost_model(const graph::Graph& h, std::int32_t origin,
                            std::int64_t m);

/// The closed-form upper bound 2(√p−1)(p−1)·m/p ≤ 2√p·m for a corner origin
/// on a 2D processor mesh (Section 8's example).
double corner_mesh_bound(std::int32_t p, std::int64_t m);

}  // namespace pnr::par
