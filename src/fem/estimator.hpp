#pragma once
// Elementwise L∞ error indicator and refine/coarsen marking. The indicator
// is the maximum deviation of the analytic field over the element from its
// centroid value — an O(h·|∇u|) proxy for the interpolation error that the
// paper's L∞-norm adaptation equidistributes.

#include <vector>

#include "fem/problems.hpp"
#include "mesh/tet_mesh.hpp"
#include "mesh/tri_mesh.hpp"

namespace pnr::fem {

double element_indicator(const mesh::TriMesh& mesh, mesh::ElemIdx e,
                         const ScalarField2& field);
double element_indicator(const mesh::TetMesh& mesh, mesh::ElemIdx e,
                         const ScalarField3& field);

struct MarkOptions {
  double refine_threshold = 1e-3;   ///< refine when indicator exceeds this
  double coarsen_threshold = 0.0;   ///< coarsen when strictly below this
  int max_level = 40;               ///< never refine past this tree depth
};

std::vector<mesh::ElemIdx> mark_for_refinement(const mesh::TriMesh& mesh,
                                               const ScalarField2& field,
                                               const MarkOptions& options);
std::vector<mesh::ElemIdx> mark_for_refinement(const mesh::TetMesh& mesh,
                                               const ScalarField3& field,
                                               const MarkOptions& options);

std::vector<mesh::ElemIdx> mark_for_coarsening(const mesh::TriMesh& mesh,
                                               const ScalarField2& field,
                                               const MarkOptions& options);
std::vector<mesh::ElemIdx> mark_for_coarsening(const mesh::TetMesh& mesh,
                                               const ScalarField3& field,
                                               const MarkOptions& options);

}  // namespace pnr::fem
