#pragma once
// The paper's two analytic test problems.
//
// Section 6 (static, Laplace Δu = 0 on (-1,1)²):
//   u(x,y) = g(x,y) = cos(2π(x−y))·sinh(2π(x+y+2))/sinh(8π)
// — smooth but changing rapidly near the corner (1,1). Our 3D analog keeps
// harmonicity and corner concentration by summing two such separable modes.
//
// Section 10 (transient, Poisson Δu = f on (-1,1)²):
//   u(x,y,t) = 1/(1 + 100(x+t)² + 100(y+t)²)
// — a peak of height 1 at (−t, −t) moving along the diagonal for
// t ∈ [−0.5, 0.5].

#include <functional>

namespace pnr::fem {

/// A time-independent scalar field with enough calculus for the estimator.
struct ScalarField2 {
  std::function<double(double, double)> value;
  /// −Δu (the Poisson right-hand side; zero for harmonic fields).
  std::function<double(double, double)> neg_laplacian;
};

struct ScalarField3 {
  std::function<double(double, double, double)> value;
  std::function<double(double, double, double)> neg_laplacian;
};

/// The Section 6 corner problem (harmonic).
ScalarField2 corner_problem_2d();

/// 3D analog: sum of two harmonic separable modes peaking at (1,1,1).
ScalarField3 corner_problem_3d();

/// The Section 10 moving peak at time t (with its exact −Δu).
ScalarField2 moving_peak(double t);

/// 3D analog of the moving peak: u = 1/(1 + 100·|x + t·1|²), a peak of
/// height 1 at (−t,−t,−t) moving along the main diagonal of (-1,1)³.
ScalarField3 moving_peak_3d(double t);

}  // namespace pnr::fem
