#include "fem/sparse.hpp"

#include <algorithm>
#include <numeric>

#include "exec/pool.hpp"
#include "util/assert.hpp"

namespace pnr::fem {

CsrMatrix CsrMatrix::from_triplets(std::int32_t n,
                                   const std::vector<std::int32_t>& rows,
                                   const std::vector<std::int32_t>& cols,
                                   const std::vector<double>& values) {
  PNR_REQUIRE(rows.size() == cols.size() && cols.size() == values.size());
  CsrMatrix m;
  m.n_ = n;

  std::vector<std::int64_t> count(static_cast<std::size_t>(n), 0);
  for (const std::int32_t r : rows) {
    PNR_REQUIRE(r >= 0 && r < n);
    ++count[static_cast<std::size_t>(r)];
  }
  m.xadj_.assign(static_cast<std::size_t>(n) + 1, 0);
  for (std::int32_t r = 0; r < n; ++r)
    m.xadj_[static_cast<std::size_t>(r) + 1] =
        m.xadj_[static_cast<std::size_t>(r)] + count[static_cast<std::size_t>(r)];

  std::vector<std::int32_t> tmp_cols(rows.size());
  std::vector<double> tmp_vals(rows.size());
  std::vector<std::int64_t> cursor(m.xadj_.begin(), m.xadj_.end() - 1);
  for (std::size_t k = 0; k < rows.size(); ++k) {
    const auto slot = static_cast<std::size_t>(
        cursor[static_cast<std::size_t>(rows[k])]++);
    tmp_cols[slot] = cols[k];
    tmp_vals[slot] = values[k];
  }

  // Sort each row and merge duplicates.
  m.cols_.reserve(rows.size());
  m.vals_.reserve(rows.size());
  std::vector<std::int64_t> new_xadj{0};
  new_xadj.reserve(static_cast<std::size_t>(n) + 1);
  std::vector<std::size_t> order;
  for (std::int32_t r = 0; r < n; ++r) {
    const auto b = static_cast<std::size_t>(m.xadj_[static_cast<std::size_t>(r)]);
    const auto e = static_cast<std::size_t>(m.xadj_[static_cast<std::size_t>(r) + 1]);
    order.resize(e - b);
    std::iota(order.begin(), order.end(), b);
    std::sort(order.begin(), order.end(), [&](std::size_t x, std::size_t y) {
      return tmp_cols[x] < tmp_cols[y];
    });
    for (const std::size_t k : order) {
      if (!m.cols_.empty() &&
          static_cast<std::int64_t>(m.cols_.size()) > new_xadj.back() &&
          m.cols_.back() == tmp_cols[k]) {
        m.vals_.back() += tmp_vals[k];
      } else {
        m.cols_.push_back(tmp_cols[k]);
        m.vals_.push_back(tmp_vals[k]);
      }
    }
    new_xadj.push_back(static_cast<std::int64_t>(m.cols_.size()));
  }
  m.xadj_ = std::move(new_xadj);
  return m;
}

void CsrMatrix::apply(std::span<const double> x, std::span<double> y) const {
  PNR_REQUIRE(x.size() == static_cast<std::size_t>(n_));
  PNR_REQUIRE(y.size() == static_cast<std::size_t>(n_));
  // Rows are independent and each row accumulates serially, so the result
  // is bitwise identical for any pool size.
  exec::default_pool().parallel_for(
      n_,
      [&](std::int64_t rb, std::int64_t re) {
        for (std::int64_t r = rb; r < re; ++r) {
          double acc = 0.0;
          for (std::int64_t k = xadj_[static_cast<std::size_t>(r)];
               k < xadj_[static_cast<std::size_t>(r) + 1]; ++k)
            acc +=
                vals_[static_cast<std::size_t>(k)] *
                x[static_cast<std::size_t>(cols_[static_cast<std::size_t>(k)])];
          y[static_cast<std::size_t>(r)] = acc;
        }
      },
      exec::Chunking{2048, 4096});
}

double CsrMatrix::diagonal(std::int32_t row) const {
  for (std::int64_t k = xadj_[static_cast<std::size_t>(row)];
       k < xadj_[static_cast<std::size_t>(row) + 1]; ++k)
    if (cols_[static_cast<std::size_t>(k)] == row)
      return vals_[static_cast<std::size_t>(k)];
  return 0.0;
}

void CsrMatrix::set_dirichlet(std::int32_t i, double value,
                              std::span<double> rhs) {
  PNR_REQUIRE(i >= 0 && i < n_);
  // Zero row i, set diagonal to 1.
  for (std::int64_t k = xadj_[static_cast<std::size_t>(i)];
       k < xadj_[static_cast<std::size_t>(i) + 1]; ++k)
    vals_[static_cast<std::size_t>(k)] =
        cols_[static_cast<std::size_t>(k)] == i ? 1.0 : 0.0;
  rhs[static_cast<std::size_t>(i)] = value;
  // Zero column i in other rows, moving the contribution to the RHS.
  for (std::int32_t r = 0; r < n_; ++r) {
    if (r == i) continue;
    for (std::int64_t k = xadj_[static_cast<std::size_t>(r)];
         k < xadj_[static_cast<std::size_t>(r) + 1]; ++k)
      if (cols_[static_cast<std::size_t>(k)] == i) {
        rhs[static_cast<std::size_t>(r)] -=
            vals_[static_cast<std::size_t>(k)] * value;
        vals_[static_cast<std::size_t>(k)] = 0.0;
      }
  }
}

void CsrMatrix::set_dirichlet_all(std::span<const char> constrained,
                                  std::span<const double> values,
                                  std::span<double> rhs) {
  PNR_REQUIRE(constrained.size() == static_cast<std::size_t>(n_));
  PNR_REQUIRE(values.size() == static_cast<std::size_t>(n_));
  PNR_REQUIRE(rhs.size() == static_cast<std::size_t>(n_));
  for (std::int32_t r = 0; r < n_; ++r) {
    const bool row_fixed = constrained[static_cast<std::size_t>(r)] != 0;
    for (std::int64_t k = xadj_[static_cast<std::size_t>(r)];
         k < xadj_[static_cast<std::size_t>(r) + 1]; ++k) {
      const std::int32_t c = cols_[static_cast<std::size_t>(k)];
      auto& v = vals_[static_cast<std::size_t>(k)];
      if (row_fixed) {
        v = c == r ? 1.0 : 0.0;
      } else if (constrained[static_cast<std::size_t>(c)]) {
        rhs[static_cast<std::size_t>(r)] -=
            v * values[static_cast<std::size_t>(c)];
        v = 0.0;
      }
    }
    if (row_fixed)
      rhs[static_cast<std::size_t>(r)] = values[static_cast<std::size_t>(r)];
  }
}

}  // namespace pnr::fem
