#include "fem/cg.hpp"

#include <cmath>
#include <vector>

#include "exec/pool.hpp"
#include "util/assert.hpp"
#include "util/prof.hpp"

namespace pnr::fem {

namespace {

/// Chunking shared by every vector kernel in the solve. One fixed
/// decomposition means the ordered dot products combine the same partials
/// in the same fixed-shape tree at every thread count; below the grain a
/// single chunk makes them exactly the legacy left-to-right loops.
constexpr exec::Chunking kVecChunking{4096, 4096};

double ordered_dot(exec::Pool& pool, std::span<const double> a,
                   std::span<const double> b) {
  return pool.parallel_reduce(
      static_cast<std::int64_t>(a.size()), 0.0,
      [&](std::int64_t lo, std::int64_t hi) {
        double acc = 0.0;
        for (std::int64_t i = lo; i < hi; ++i)
          acc += a[static_cast<std::size_t>(i)] * b[static_cast<std::size_t>(i)];
        return acc;
      },
      [](double x, double y) { return x + y; }, kVecChunking);
}

}  // namespace

CgResult conjugate_gradient(const CsrMatrix& a, std::span<const double> b,
                            std::span<double> x, double tol, int max_iters) {
  PNR_PROF_SPAN("fem.cg");
  const auto n = static_cast<std::size_t>(a.size());
  const auto ni = static_cast<std::int64_t>(n);
  PNR_REQUIRE(b.size() == n && x.size() == n);
  exec::Pool& pool = exec::default_pool();

  std::vector<double> inv_diag(n);
  pool.parallel_for(
      ni,
      [&](std::int64_t lo, std::int64_t hi) {
        for (std::int64_t i = lo; i < hi; ++i) {
          const double d = a.diagonal(static_cast<std::int32_t>(i));
          inv_diag[static_cast<std::size_t>(i)] = d != 0.0 ? 1.0 / d : 1.0;
        }
      },
      kVecChunking);

  std::vector<double> r(n), z(n), p(n), ap(n);
  a.apply(x, ap);
  pool.parallel_for(
      ni,
      [&](std::int64_t lo, std::int64_t hi) {
        for (std::int64_t i = lo; i < hi; ++i)
          r[static_cast<std::size_t>(i)] =
              b[static_cast<std::size_t>(i)] - ap[static_cast<std::size_t>(i)];
      },
      kVecChunking);
  double b_norm = std::sqrt(ordered_dot(pool, b, b));
  if (b_norm == 0.0) b_norm = 1.0;

  pool.parallel_for(
      ni,
      [&](std::int64_t lo, std::int64_t hi) {
        for (std::int64_t i = lo; i < hi; ++i)
          z[static_cast<std::size_t>(i)] =
              inv_diag[static_cast<std::size_t>(i)] *
              r[static_cast<std::size_t>(i)];
      },
      kVecChunking);
  p = z;
  double rz = ordered_dot(pool, r, z);

  CgResult result;
  for (int it = 1; it <= max_iters; ++it) {
    a.apply(p, ap);
    const double pap = ordered_dot(pool, p, ap);
    if (pap <= 0.0) break;  // matrix not SPD (should not happen)
    const double alpha = rz / pap;
    pool.parallel_for(
        ni,
        [&](std::int64_t lo, std::int64_t hi) {
          for (std::int64_t i = lo; i < hi; ++i) {
            x[static_cast<std::size_t>(i)] +=
                alpha * p[static_cast<std::size_t>(i)];
            r[static_cast<std::size_t>(i)] -=
                alpha * ap[static_cast<std::size_t>(i)];
          }
        },
        kVecChunking);
    const double r_norm = std::sqrt(ordered_dot(pool, r, r));
    result.iterations = it;
    result.residual = r_norm / b_norm;
    result.residuals.push_back(result.residual);
    if (result.residual <= tol) {
      result.converged = true;
      return result;
    }
    pool.parallel_for(
        ni,
        [&](std::int64_t lo, std::int64_t hi) {
          for (std::int64_t i = lo; i < hi; ++i)
            z[static_cast<std::size_t>(i)] =
                inv_diag[static_cast<std::size_t>(i)] *
                r[static_cast<std::size_t>(i)];
        },
        kVecChunking);
    const double rz_new = ordered_dot(pool, r, z);
    const double beta = rz_new / rz;
    rz = rz_new;
    pool.parallel_for(
        ni,
        [&](std::int64_t lo, std::int64_t hi) {
          for (std::int64_t i = lo; i < hi; ++i)
            p[static_cast<std::size_t>(i)] =
                z[static_cast<std::size_t>(i)] +
                beta * p[static_cast<std::size_t>(i)];
        },
        kVecChunking);
  }
  return result;
}

}  // namespace pnr::fem
