#include "fem/cg.hpp"

#include <cmath>
#include <vector>

#include "util/assert.hpp"

namespace pnr::fem {

CgResult conjugate_gradient(const CsrMatrix& a, std::span<const double> b,
                            std::span<double> x, double tol, int max_iters) {
  const auto n = static_cast<std::size_t>(a.size());
  PNR_REQUIRE(b.size() == n && x.size() == n);

  std::vector<double> inv_diag(n);
  for (std::int32_t i = 0; i < a.size(); ++i) {
    const double d = a.diagonal(i);
    inv_diag[static_cast<std::size_t>(i)] = d != 0.0 ? 1.0 / d : 1.0;
  }

  std::vector<double> r(n), z(n), p(n), ap(n);
  a.apply(x, ap);
  double b_norm = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    r[i] = b[i] - ap[i];
    b_norm += b[i] * b[i];
  }
  b_norm = std::sqrt(b_norm);
  if (b_norm == 0.0) b_norm = 1.0;

  for (std::size_t i = 0; i < n; ++i) z[i] = inv_diag[i] * r[i];
  p = z;
  double rz = 0.0;
  for (std::size_t i = 0; i < n; ++i) rz += r[i] * z[i];

  CgResult result;
  for (int it = 1; it <= max_iters; ++it) {
    a.apply(p, ap);
    double pap = 0.0;
    for (std::size_t i = 0; i < n; ++i) pap += p[i] * ap[i];
    if (pap <= 0.0) break;  // matrix not SPD (should not happen)
    const double alpha = rz / pap;
    double r_norm = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      x[i] += alpha * p[i];
      r[i] -= alpha * ap[i];
      r_norm += r[i] * r[i];
    }
    result.iterations = it;
    result.residual = std::sqrt(r_norm) / b_norm;
    if (result.residual <= tol) {
      result.converged = true;
      return result;
    }
    for (std::size_t i = 0; i < n; ++i) z[i] = inv_diag[i] * r[i];
    double rz_new = 0.0;
    for (std::size_t i = 0; i < n; ++i) rz_new += r[i] * z[i];
    const double beta = rz_new / rz;
    rz = rz_new;
    for (std::size_t i = 0; i < n; ++i) p[i] = z[i] + beta * p[i];
  }
  return result;
}

}  // namespace pnr::fem
