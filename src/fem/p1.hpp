#pragma once
// P1 (linear) Galerkin discretization of −Δu = f with Dirichlet boundary
// conditions on the adaptive meshes. One vertex unknown per alive mesh
// vertex; boundary values come from the analytic field (the paper's test
// problems prescribe the exact solution on ∂Ω).

#include <vector>

#include "fem/cg.hpp"
#include "fem/problems.hpp"
#include "fem/sparse.hpp"
#include "mesh/tet_mesh.hpp"
#include "mesh/tri_mesh.hpp"

namespace pnr::fem {

struct P1System {
  CsrMatrix matrix;
  std::vector<double> rhs;
  /// equation index -> mesh vertex
  std::vector<mesh::VertIdx> dof_to_vert;
  /// mesh vertex -> equation index (-1 for dead slots)
  std::vector<std::int32_t> vert_to_dof;
};

P1System assemble_poisson(const mesh::TriMesh& mesh, const ScalarField2& field);
P1System assemble_poisson(const mesh::TetMesh& mesh, const ScalarField3& field);

struct SolveResult {
  std::vector<double> u;  ///< by dof index
  CgResult cg;
  double max_error = 0.0;  ///< L∞ vertex error vs the analytic solution
};

SolveResult solve_poisson(const mesh::TriMesh& mesh, const ScalarField2& field,
                          double tol = 1e-9);
SolveResult solve_poisson(const mesh::TetMesh& mesh, const ScalarField3& field,
                          double tol = 1e-9);

}  // namespace pnr::fem
