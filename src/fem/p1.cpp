#include "fem/p1.hpp"

#include <cmath>

#include "util/assert.hpp"

namespace pnr::fem {

namespace {

template <typename Mesh>
void number_dofs(const Mesh& mesh, P1System& sys) {
  sys.vert_to_dof.assign(mesh.vertex_slots(), -1);
  for (std::size_t v = 0; v < mesh.vertex_slots(); ++v)
    if (mesh.vertex_alive(static_cast<mesh::VertIdx>(v))) {
      sys.vert_to_dof[v] = static_cast<std::int32_t>(sys.dof_to_vert.size());
      sys.dof_to_vert.push_back(static_cast<mesh::VertIdx>(v));
    }
}

}  // namespace

P1System assemble_poisson(const mesh::TriMesh& mesh,
                          const ScalarField2& field) {
  P1System sys;
  number_dofs(mesh, sys);
  const auto n = static_cast<std::int32_t>(sys.dof_to_vert.size());
  sys.rhs.assign(static_cast<std::size_t>(n), 0.0);

  std::vector<std::int32_t> rows, cols;
  std::vector<double> vals;
  const auto leaves = mesh.leaf_elements();
  rows.reserve(leaves.size() * 9);
  cols.reserve(leaves.size() * 9);
  vals.reserve(leaves.size() * 9);

  for (const mesh::ElemIdx e : leaves) {
    const auto& t = mesh.tri(e);
    const mesh::Point2 p[3] = {mesh.vertex(t.v[0]), mesh.vertex(t.v[1]),
                               mesh.vertex(t.v[2])};
    const double area = mesh.signed_area(e);
    PNR_ASSERT(area > 0.0);
    // Gradient coefficients: b_i = y_{i+1} − y_{i+2}, c_i = x_{i+2} − x_{i+1}.
    double b[3], c[3];
    for (int i = 0; i < 3; ++i) {
      const int j = (i + 1) % 3, k = (i + 2) % 3;
      b[i] = p[j].y - p[k].y;
      c[i] = p[k].x - p[j].x;
    }
    std::int32_t dof[3];
    for (int i = 0; i < 3; ++i)
      dof[i] = sys.vert_to_dof[static_cast<std::size_t>(t.v[static_cast<std::size_t>(i)])];

    for (int i = 0; i < 3; ++i)
      for (int j = 0; j < 3; ++j) {
        rows.push_back(dof[i]);
        cols.push_back(dof[j]);
        vals.push_back((b[i] * b[j] + c[i] * c[j]) / (4.0 * area));
      }
    // One-point quadrature for the load.
    const mesh::Point2 cen = mesh.centroid(e);
    const double f = field.neg_laplacian(cen.x, cen.y);
    for (int i = 0; i < 3; ++i)
      sys.rhs[static_cast<std::size_t>(dof[i])] += f * area / 3.0;
  }
  sys.matrix = CsrMatrix::from_triplets(n, rows, cols, vals);

  // Dirichlet boundary from the analytic field.
  const auto boundary = mesh.boundary_vertex_mask();
  std::vector<char> constrained(static_cast<std::size_t>(n), false);
  std::vector<double> values(static_cast<std::size_t>(n), 0.0);
  for (std::int32_t d = 0; d < n; ++d) {
    const auto v = static_cast<std::size_t>(sys.dof_to_vert[static_cast<std::size_t>(d)]);
    if (boundary[v]) {
      constrained[static_cast<std::size_t>(d)] = true;
      const mesh::Point2& pt = mesh.vertex(static_cast<mesh::VertIdx>(v));
      values[static_cast<std::size_t>(d)] = field.value(pt.x, pt.y);
    }
  }
  sys.matrix.set_dirichlet_all(constrained, values, sys.rhs);
  return sys;
}

P1System assemble_poisson(const mesh::TetMesh& mesh,
                          const ScalarField3& field) {
  P1System sys;
  number_dofs(mesh, sys);
  const auto n = static_cast<std::int32_t>(sys.dof_to_vert.size());
  sys.rhs.assign(static_cast<std::size_t>(n), 0.0);

  std::vector<std::int32_t> rows, cols;
  std::vector<double> vals;
  const auto leaves = mesh.leaf_elements();
  rows.reserve(leaves.size() * 16);
  cols.reserve(leaves.size() * 16);
  vals.reserve(leaves.size() * 16);

  for (const mesh::ElemIdx e : leaves) {
    const auto& t = mesh.tet(e);
    const mesh::Point3 p[4] = {mesh.vertex(t.v[0]), mesh.vertex(t.v[1]),
                               mesh.vertex(t.v[2]), mesh.vertex(t.v[3])};
    const double vol = mesh.signed_volume(e);
    PNR_ASSERT(vol > 0.0);

    // Barycentric gradients: rows of the inverse of M = [p1−p0 p2−p0 p3−p0].
    const double m[3][3] = {
        {p[1].x - p[0].x, p[2].x - p[0].x, p[3].x - p[0].x},
        {p[1].y - p[0].y, p[2].y - p[0].y, p[3].y - p[0].y},
        {p[1].z - p[0].z, p[2].z - p[0].z, p[3].z - p[0].z}};
    const double det = 6.0 * vol;
    double inv[3][3];  // inverse of M times det, then scaled
    inv[0][0] = m[1][1] * m[2][2] - m[1][2] * m[2][1];
    inv[0][1] = m[0][2] * m[2][1] - m[0][1] * m[2][2];
    inv[0][2] = m[0][1] * m[1][2] - m[0][2] * m[1][1];
    inv[1][0] = m[1][2] * m[2][0] - m[1][0] * m[2][2];
    inv[1][1] = m[0][0] * m[2][2] - m[0][2] * m[2][0];
    inv[1][2] = m[0][2] * m[1][0] - m[0][0] * m[1][2];
    inv[2][0] = m[1][0] * m[2][1] - m[1][1] * m[2][0];
    inv[2][1] = m[0][1] * m[2][0] - m[0][0] * m[2][1];
    inv[2][2] = m[0][0] * m[1][1] - m[0][1] * m[1][0];

    double grad[4][3];
    for (int i = 1; i < 4; ++i)
      for (int d = 0; d < 3; ++d) grad[i][d] = inv[i - 1][d] / det;
    for (int d = 0; d < 3; ++d)
      grad[0][d] = -(grad[1][d] + grad[2][d] + grad[3][d]);

    std::int32_t dof[4];
    for (int i = 0; i < 4; ++i)
      dof[i] = sys.vert_to_dof[static_cast<std::size_t>(t.v[static_cast<std::size_t>(i)])];

    for (int i = 0; i < 4; ++i)
      for (int j = 0; j < 4; ++j) {
        double dotg = 0.0;
        for (int d = 0; d < 3; ++d) dotg += grad[i][d] * grad[j][d];
        rows.push_back(dof[i]);
        cols.push_back(dof[j]);
        vals.push_back(dotg * vol);
      }
    const mesh::Point3 cen = mesh.centroid(e);
    const double f = field.neg_laplacian(cen.x, cen.y, cen.z);
    for (int i = 0; i < 4; ++i)
      sys.rhs[static_cast<std::size_t>(dof[i])] += f * vol / 4.0;
  }
  sys.matrix = CsrMatrix::from_triplets(n, rows, cols, vals);

  const auto boundary = mesh.boundary_vertex_mask();
  std::vector<char> constrained(static_cast<std::size_t>(n), false);
  std::vector<double> values(static_cast<std::size_t>(n), 0.0);
  for (std::int32_t d = 0; d < n; ++d) {
    const auto v = static_cast<std::size_t>(sys.dof_to_vert[static_cast<std::size_t>(d)]);
    if (boundary[v]) {
      constrained[static_cast<std::size_t>(d)] = true;
      const mesh::Point3& pt = mesh.vertex(static_cast<mesh::VertIdx>(v));
      values[static_cast<std::size_t>(d)] = field.value(pt.x, pt.y, pt.z);
    }
  }
  sys.matrix.set_dirichlet_all(constrained, values, sys.rhs);
  return sys;
}

SolveResult solve_poisson(const mesh::TriMesh& mesh, const ScalarField2& field,
                          double tol) {
  P1System sys = assemble_poisson(mesh, field);
  SolveResult out;
  out.u.assign(sys.rhs.size(), 0.0);
  out.cg = conjugate_gradient(sys.matrix, sys.rhs, out.u, tol);
  for (std::size_t d = 0; d < out.u.size(); ++d) {
    const mesh::Point2& pt = mesh.vertex(sys.dof_to_vert[d]);
    out.max_error =
        std::max(out.max_error, std::abs(out.u[d] - field.value(pt.x, pt.y)));
  }
  return out;
}

SolveResult solve_poisson(const mesh::TetMesh& mesh, const ScalarField3& field,
                          double tol) {
  P1System sys = assemble_poisson(mesh, field);
  SolveResult out;
  out.u.assign(sys.rhs.size(), 0.0);
  out.cg = conjugate_gradient(sys.matrix, sys.rhs, out.u, tol);
  for (std::size_t d = 0; d < out.u.size(); ++d) {
    const mesh::Point3& pt = mesh.vertex(sys.dof_to_vert[d]);
    out.max_error = std::max(
        out.max_error, std::abs(out.u[d] - field.value(pt.x, pt.y, pt.z)));
  }
  return out;
}

}  // namespace pnr::fem
