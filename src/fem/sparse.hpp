#pragma once
// Minimal CSR sparse matrix for the P1 finite element solver (symmetric
// positive definite systems from Laplace/Poisson).

#include <cstdint>
#include <span>
#include <vector>

namespace pnr::fem {

class CsrMatrix {
 public:
  CsrMatrix() = default;

  /// Build from unordered (row, col, value) triplets; duplicates accumulate.
  static CsrMatrix from_triplets(std::int32_t n,
                                 const std::vector<std::int32_t>& rows,
                                 const std::vector<std::int32_t>& cols,
                                 const std::vector<double>& values);

  std::int32_t size() const { return n_; }
  std::int64_t nonzeros() const { return static_cast<std::int64_t>(vals_.size()); }

  /// y = A x.
  void apply(std::span<const double> x, std::span<double> y) const;

  double diagonal(std::int32_t row) const;

  /// Dirichlet elimination: zero row and column `i`, put 1 on the diagonal,
  /// and adjust `rhs` so the solution satisfies x[i] = value.
  void set_dirichlet(std::int32_t i, double value, std::span<double> rhs);

  /// Batched Dirichlet elimination in one pass over the nonzeros:
  /// constrained[i] != 0 forces x[i] = values[i].
  void set_dirichlet_all(std::span<const char> constrained,
                         std::span<const double> values,
                         std::span<double> rhs);

 private:
  std::int32_t n_ = 0;
  std::vector<std::int64_t> xadj_{0};
  std::vector<std::int32_t> cols_;
  std::vector<double> vals_;
};

}  // namespace pnr::fem
