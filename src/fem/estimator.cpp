#include "fem/estimator.hpp"

#include <algorithm>
#include <cmath>

namespace pnr::fem {

double element_indicator(const mesh::TriMesh& mesh, mesh::ElemIdx e,
                         const ScalarField2& field) {
  const auto& t = mesh.tri(e);
  const mesh::Point2 c = mesh.centroid(e);
  const double uc = field.value(c.x, c.y);
  double eta = 0.0;
  for (const mesh::VertIdx v : t.v) {
    const mesh::Point2& p = mesh.vertex(v);
    eta = std::max(eta, std::abs(field.value(p.x, p.y) - uc));
  }
  return eta;
}

double element_indicator(const mesh::TetMesh& mesh, mesh::ElemIdx e,
                         const ScalarField3& field) {
  const auto& t = mesh.tet(e);
  const mesh::Point3 c = mesh.centroid(e);
  const double uc = field.value(c.x, c.y, c.z);
  double eta = 0.0;
  for (const mesh::VertIdx v : t.v) {
    const mesh::Point3& p = mesh.vertex(v);
    eta = std::max(eta, std::abs(field.value(p.x, p.y, p.z) - uc));
  }
  return eta;
}

namespace {

template <typename Mesh, typename Field, typename TreeDepth>
std::vector<mesh::ElemIdx> mark_refine_impl(const Mesh& mesh,
                                            const Field& field,
                                            const MarkOptions& options,
                                            TreeDepth&& level_of) {
  std::vector<mesh::ElemIdx> marked;
  for (const mesh::ElemIdx e : mesh.leaf_elements())
    if (level_of(e) < options.max_level &&
        element_indicator(mesh, e, field) > options.refine_threshold)
      marked.push_back(e);
  return marked;
}

template <typename Mesh, typename Field>
std::vector<mesh::ElemIdx> mark_coarsen_impl(const Mesh& mesh,
                                             const Field& field,
                                             const MarkOptions& options) {
  std::vector<mesh::ElemIdx> marked;
  if (options.coarsen_threshold <= 0.0) return marked;
  for (const mesh::ElemIdx e : mesh.leaf_elements())
    if (element_indicator(mesh, e, field) < options.coarsen_threshold)
      marked.push_back(e);
  return marked;
}

}  // namespace

std::vector<mesh::ElemIdx> mark_for_refinement(const mesh::TriMesh& mesh,
                                               const ScalarField2& field,
                                               const MarkOptions& options) {
  return mark_refine_impl(mesh, field, options,
                          [&](mesh::ElemIdx e) { return mesh.tri(e).level; });
}

std::vector<mesh::ElemIdx> mark_for_refinement(const mesh::TetMesh& mesh,
                                               const ScalarField3& field,
                                               const MarkOptions& options) {
  return mark_refine_impl(mesh, field, options,
                          [&](mesh::ElemIdx e) { return mesh.tet(e).level; });
}

std::vector<mesh::ElemIdx> mark_for_coarsening(const mesh::TriMesh& mesh,
                                               const ScalarField2& field,
                                               const MarkOptions& options) {
  return mark_coarsen_impl(mesh, field, options);
}

std::vector<mesh::ElemIdx> mark_for_coarsening(const mesh::TetMesh& mesh,
                                               const ScalarField3& field,
                                               const MarkOptions& options) {
  return mark_coarsen_impl(mesh, field, options);
}

}  // namespace pnr::fem
