#pragma once
// Jacobi-preconditioned conjugate gradients for the SPD systems assembled
// by the P1 discretization. The vector kernels (matvec, axpy, dot) run on
// the pnr::exec default pool; every dot product is an *ordered* reduction
// over a thread-count-independent chunk decomposition, so the iterate and
// residual sequences are bitwise identical for any --threads value.

#include <span>
#include <vector>

#include "fem/sparse.hpp"

namespace pnr::fem {

struct CgResult {
  int iterations = 0;
  double residual = 0.0;  ///< final relative residual
  bool converged = false;
  /// Relative residual after each iteration (residuals.size() ==
  /// iterations); deterministic across thread counts.
  std::vector<double> residuals;
};

CgResult conjugate_gradient(const CsrMatrix& a, std::span<const double> b,
                            std::span<double> x, double tol = 1e-9,
                            int max_iters = 20000);

}  // namespace pnr::fem
