#pragma once
// Jacobi-preconditioned conjugate gradients for the SPD systems assembled
// by the P1 discretization.

#include <span>

#include "fem/sparse.hpp"

namespace pnr::fem {

struct CgResult {
  int iterations = 0;
  double residual = 0.0;  ///< final relative residual
  bool converged = false;
};

CgResult conjugate_gradient(const CsrMatrix& a, std::span<const double> b,
                            std::span<double> x, double tol = 1e-9,
                            int max_iters = 20000);

}  // namespace pnr::fem
