#include "fem/problems.hpp"

#include <cmath>
#include <numbers>

namespace pnr::fem {

namespace {
constexpr double kTwoPi = 2.0 * std::numbers::pi;
}

ScalarField2 corner_problem_2d() {
  ScalarField2 field;
  field.value = [](double x, double y) {
    return std::cos(kTwoPi * (x - y)) * std::sinh(kTwoPi * (x + y + 2.0)) /
           std::sinh(8.0 * std::numbers::pi);
  };
  // cos(a(x−y))·sinh(a(x+y+c)) is harmonic: the (−2a² + 2a²) terms cancel.
  field.neg_laplacian = [](double, double) { return 0.0; };
  return field;
}

ScalarField3 corner_problem_3d() {
  ScalarField3 field;
  const double denom = 2.0 * std::sinh(8.0 * std::numbers::pi);
  field.value = [denom](double x, double y, double z) {
    return (std::cos(kTwoPi * (x - y)) * std::sinh(kTwoPi * (x + y + 2.0)) +
            std::cos(kTwoPi * (y - z)) * std::sinh(kTwoPi * (y + z + 2.0))) /
           denom;
  };
  field.neg_laplacian = [](double, double, double) { return 0.0; };
  return field;
}

ScalarField2 moving_peak(double t) {
  ScalarField2 field;
  field.value = [t](double x, double y) {
    const double dx = x + t, dy = y + t;
    return 1.0 / (1.0 + 100.0 * dx * dx + 100.0 * dy * dy);
  };
  field.neg_laplacian = [t](double x, double y) {
    // u = 1/(1+s), s = 100(dx²+dy²):
    //   Δu = −(s_xx+s_yy)/(1+s)² + 2(s_x²+s_y²)/(1+s)³.
    const double dx = x + t, dy = y + t;
    const double s = 100.0 * (dx * dx + dy * dy);
    const double sx = 200.0 * dx, sy = 200.0 * dy;
    const double one = 1.0 + s;
    const double lap = -400.0 / (one * one) +
                       2.0 * (sx * sx + sy * sy) / (one * one * one);
    return -lap;
  };
  return field;
}

ScalarField3 moving_peak_3d(double t) {
  ScalarField3 field;
  field.value = [t](double x, double y, double z) {
    const double dx = x + t, dy = y + t, dz = z + t;
    return 1.0 / (1.0 + 100.0 * (dx * dx + dy * dy + dz * dz));
  };
  field.neg_laplacian = [t](double x, double y, double z) {
    // u = 1/D with D = 1 + a·r², a = 100:
    //   Δu = −6a/D² + 8a²r²/D³  ⇒  −Δu = (2a/D³)(3 − a·r²).
    const double dx = x + t, dy = y + t, dz = z + t;
    const double r2 = dx * dx + dy * dy + dz * dz;
    const double d = 1.0 + 100.0 * r2;
    return 200.0 * (3.0 - 100.0 * r2) / (d * d * d);
  };
  return field;
}

}  // namespace pnr::fem
