#pragma once
// METIS graph-file I/O — the lingua franca of graph partitioners (Chaco,
// METIS, ParMETIS, Scotch all read it). Format: a header line
//   <#vertices> <#edges> [fmt [ncon]]
// where fmt is a 3-digit flag string (001 = edge weights, 010 = vertex
// weights, 011 = both), followed by one line per vertex listing
// [vertex weight] (neighbor edge-weight?)* with 1-based neighbor ids.
// '%' starts a comment line.

#include <optional>
#include <string>

#include "graph/csr.hpp"

namespace pnr::graph {

/// Write `g` with both weight kinds (fmt 011). Returns false on I/O error.
bool write_metis(const Graph& g, const std::string& path);

/// Read a METIS file (any fmt; multi-constraint ncon > 1 is rejected).
/// Returns nullopt on parse error or asymmetric adjacency. Hardened
/// against hostile input: header counts are checked against the file size
/// before any allocation, weights are range-capped, and truncated or
/// overlong adjacency lists are rejected without partial state.
std::optional<Graph> read_metis(const std::string& path);

}  // namespace pnr::graph
