#include "graph/csr.hpp"

#include <algorithm>
#include <string>
#include <unordered_set>

#include "util/assert.hpp"

namespace pnr::graph {

Graph::Graph(std::vector<std::int64_t> xadj, std::vector<VertexId> adjncy,
             std::vector<Weight> adjwgt, std::vector<Weight> vwgt)
    : xadj_(std::move(xadj)),
      adjncy_(std::move(adjncy)),
      adjwgt_(std::move(adjwgt)),
      vwgt_(std::move(vwgt)) {
  PNR_REQUIRE(xadj_.size() == vwgt_.size() + 1);
  PNR_REQUIRE(adjncy_.size() == adjwgt_.size());
  PNR_REQUIRE(xadj_.front() == 0);
  PNR_REQUIRE(xadj_.back() == static_cast<std::int64_t>(adjncy_.size()));
}

Weight Graph::total_vertex_weight() const {
  Weight total = 0;
  for (Weight w : vwgt_) total += w;
  return total;
}

Weight Graph::weighted_degree(VertexId v) const {
  Weight total = 0;
  for (std::int64_t e = xadj_[v]; e < xadj_[v + 1]; ++e) total += adjwgt_[e];
  return total;
}

Weight Graph::edge_weight(VertexId u, VertexId v) const {
  for (std::int64_t e = xadj_[u]; e < xadj_[u + 1]; ++e)
    if (adjncy_[e] == v) return adjwgt_[e];
  return 0;
}

bool Graph::set_edge_weight(VertexId u, VertexId v, Weight w) {
  bool found_uv = false;
  for (std::int64_t e = xadj_[u]; e < xadj_[u + 1]; ++e)
    if (adjncy_[e] == v) {
      adjwgt_[e] = w;
      found_uv = true;
      break;
    }
  if (!found_uv) return false;
  for (std::int64_t e = xadj_[v]; e < xadj_[v + 1]; ++e)
    if (adjncy_[e] == u) {
      adjwgt_[e] = w;
      return true;
    }
  PNR_REQUIRE_MSG(false, "asymmetric CSR: edge present one way only");
  return false;
}

std::string Graph::validate() const {
  const VertexId n = num_vertices();
  if (xadj_.size() != static_cast<std::size_t>(n) + 1)
    return "xadj size mismatch";
  if (xadj_.front() != 0) return "xadj[0] != 0";
  for (VertexId v = 0; v < n; ++v)
    if (xadj_[v] > xadj_[v + 1]) return "xadj not monotone";
  if (xadj_.back() != static_cast<std::int64_t>(adjncy_.size()))
    return "xadj back mismatch";
  if (adjncy_.size() != adjwgt_.size()) return "adjwgt size mismatch";

  for (VertexId v = 0; v < n; ++v) {
    std::unordered_set<VertexId> seen;
    for (std::int64_t e = xadj_[v]; e < xadj_[v + 1]; ++e) {
      const VertexId u = adjncy_[e];
      if (u < 0 || u >= n) return "neighbor out of range";
      if (u == v) return "self loop";
      if (!seen.insert(u).second) return "duplicate edge";
      if (adjwgt_[e] < 0) return "negative edge weight";
      if (edge_weight(u, v) != adjwgt_[e]) return "asymmetric edge weight";
    }
  }
  for (VertexId v = 0; v < n; ++v)
    if (vwgt_[v] < 0) return "negative vertex weight";
  return {};
}

}  // namespace pnr::graph
