#pragma once
// Induced subgraph extraction, used by the recursive bisection partitioners
// (RSB and Multilevel-KL recurse on the two halves of each bisection).

#include <vector>

#include "graph/csr.hpp"

namespace pnr::graph {

struct Subgraph {
  Graph graph;
  /// local vertex id -> original vertex id
  std::vector<VertexId> to_parent;
};

/// Subgraph induced by `vertices` (need not be sorted; must be unique).
/// Edges with one endpoint outside are dropped; weights are preserved.
Subgraph induced_subgraph(const Graph& g, const std::vector<VertexId>& vertices);

}  // namespace pnr::graph
