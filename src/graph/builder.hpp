#pragma once
// Incremental construction of symmetric CSR graphs from unordered edge
// insertions. Duplicate {u,v} insertions accumulate weight, which is exactly
// what the dual-graph builders need (each adjacent leaf pair contributes 1).

#include <vector>

#include "graph/csr.hpp"

namespace pnr::graph {

class GraphBuilder {
 public:
  explicit GraphBuilder(VertexId num_vertices);

  /// Add (or accumulate onto) undirected edge {u,v}. Self loops are rejected.
  void add_edge(VertexId u, VertexId v, Weight w = 1);

  void set_vertex_weight(VertexId v, Weight w);
  void add_vertex_weight(VertexId v, Weight w);

  VertexId num_vertices() const { return num_vertices_; }

  /// Build the CSR graph. The builder may be reused afterwards (it keeps its
  /// contents); neighbor lists come out sorted by vertex id for determinism.
  Graph build() const;

 private:
  VertexId num_vertices_;
  // Per-vertex half-edges (only u < v stored once; expanded at build time).
  std::vector<std::vector<std::pair<VertexId, Weight>>> half_;
  std::vector<Weight> vwgt_;
};

}  // namespace pnr::graph
