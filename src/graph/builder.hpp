#pragma once
// Construction of symmetric CSR graphs from unordered edge insertions.
// Duplicate {u,v} insertions accumulate weight, which is exactly what the
// dual-graph builders need (each adjacent leaf pair contributes 1). Two
// front ends share one deterministic assembly kernel:
//   * GraphBuilder — incremental add_edge/add_vertex_weight, for call sites
//     that discover edges one at a time;
//   * build_csr_from_edges — a flat batch of edges, for call sites that
//     already hold them (fine dual extraction, contraction).
// Assembly runs on the pnr::exec default pool (degree count → offset scan →
// fill → per-vertex sort/merge); the output is bitwise identical for any
// thread count because adjacency lists are canonicalized by neighbor id.

#include <span>
#include <vector>

#include "graph/csr.hpp"

namespace pnr::graph {

/// One undirected edge {u, v} with weight w (u != v; duplicates accumulate).
struct WeightedEdge {
  VertexId u;
  VertexId v;
  Weight w;
};

/// Assemble the symmetric CSR graph of an unordered edge batch. Pass an
/// empty `vwgt` for unit vertex weights. Deterministic for any pool size;
/// parallel when the default pool has more than one thread.
Graph build_csr_from_edges(VertexId num_vertices,
                           std::span<const WeightedEdge> edges,
                           std::vector<Weight> vwgt);

class GraphBuilder {
 public:
  explicit GraphBuilder(VertexId num_vertices);

  /// Add (or accumulate onto) undirected edge {u,v}. Self loops are rejected.
  void add_edge(VertexId u, VertexId v, Weight w = 1);

  void set_vertex_weight(VertexId v, Weight w);
  void add_vertex_weight(VertexId v, Weight w);

  VertexId num_vertices() const { return num_vertices_; }

  /// Build the CSR graph. The builder may be reused afterwards (it keeps its
  /// contents); neighbor lists come out sorted by vertex id for determinism.
  Graph build() const;

 private:
  VertexId num_vertices_;
  // Per-vertex half-edges (only u < v stored once; expanded at build time).
  std::vector<std::vector<std::pair<VertexId, Weight>>> half_;
  std::vector<Weight> vwgt_;
};

}  // namespace pnr::graph
