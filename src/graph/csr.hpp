#pragma once
// Compact CSR representation of an undirected weighted graph — the common
// currency between the mesh layer (dual graphs), the partitioners, and the
// PNR core. Vertex and edge weights are integral because in this system they
// are *counts* (leaves of refinement trees, adjacent leaf pairs), and the
// paper's cut/migration numbers are exact integers.

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace pnr::graph {

using VertexId = std::int32_t;
using Weight = std::int64_t;

constexpr VertexId kInvalidVertex = -1;

/// Undirected graph in symmetric CSR form. Every edge {u,v} is stored twice
/// (once in each endpoint's adjacency list) with equal weight.
class Graph {
 public:
  Graph() = default;

  /// Takes ownership of prebuilt CSR arrays; validates shape in debug builds.
  Graph(std::vector<std::int64_t> xadj, std::vector<VertexId> adjncy,
        std::vector<Weight> adjwgt, std::vector<Weight> vwgt);

  VertexId num_vertices() const { return static_cast<VertexId>(vwgt_.size()); }
  /// Number of undirected edges (half the stored directed arcs).
  std::int64_t num_edges() const {
    return static_cast<std::int64_t>(adjncy_.size()) / 2;
  }

  std::span<const VertexId> neighbors(VertexId v) const {
    return {adjncy_.data() + xadj_[v],
            static_cast<std::size_t>(xadj_[v + 1] - xadj_[v])};
  }
  std::span<const Weight> edge_weights(VertexId v) const {
    return {adjwgt_.data() + xadj_[v],
            static_cast<std::size_t>(xadj_[v + 1] - xadj_[v])};
  }

  std::int64_t degree(VertexId v) const { return xadj_[v + 1] - xadj_[v]; }

  /// Paired neighbor/edge-weight spans for the common zipped iteration.
  struct Adjacency {
    std::span<const VertexId> nbrs;
    std::span<const Weight> wgts;
    std::size_t size() const { return nbrs.size(); }
  };
  Adjacency adjacency(VertexId v) const {
    return {neighbors(v), edge_weights(v)};
  }

  Weight vertex_weight(VertexId v) const { return vwgt_[v]; }
  void set_vertex_weight(VertexId v, Weight w) { vwgt_[v] = w; }

  /// Sum of all vertex weights.
  Weight total_vertex_weight() const;

  /// Sum of weights of edges incident to v.
  Weight weighted_degree(VertexId v) const;

  /// Weight of edge {u,v}; 0 if absent. O(deg(u)).
  Weight edge_weight(VertexId u, VertexId v) const;

  /// Update the weight of existing edge {u,v} in both directions.
  /// Returns false (and changes nothing) if the edge does not exist.
  bool set_edge_weight(VertexId u, VertexId v, Weight w);

  /// Mutable weight arrays for in-place re-propagation (the hierarchy cache
  /// rewrites every level's weights each round). Topology stays immutable;
  /// callers must keep the two directions of each arc equal.
  std::span<Weight> mutable_vertex_weights() { return vwgt_; }
  std::span<Weight> mutable_arc_weights() { return adjwgt_; }

  const std::vector<std::int64_t>& xadj() const { return xadj_; }
  const std::vector<VertexId>& adjncy() const { return adjncy_; }
  const std::vector<Weight>& adjwgt() const { return adjwgt_; }
  const std::vector<Weight>& vwgt() const { return vwgt_; }

  /// Full structural validation (symmetry, sorted-free duplicate check,
  /// weight positivity, no self loops). Used by tests and debug asserts.
  /// Returns an empty string if valid, else a description of the violation.
  std::string validate() const;

 private:
  std::vector<std::int64_t> xadj_{0};
  std::vector<VertexId> adjncy_;
  std::vector<Weight> adjwgt_;
  std::vector<Weight> vwgt_;
};

}  // namespace pnr::graph
