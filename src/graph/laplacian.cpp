#include "graph/laplacian.hpp"

#include <cmath>

#include "util/assert.hpp"

namespace pnr::graph {

void laplacian_apply(const Graph& g, std::span<const double> x,
                     std::span<double> y) {
  const auto n = static_cast<std::size_t>(g.num_vertices());
  PNR_REQUIRE(x.size() == n && y.size() == n);
  for (std::size_t v = 0; v < n; ++v) {
    const auto nbrs = g.neighbors(static_cast<VertexId>(v));
    const auto wgts = g.edge_weights(static_cast<VertexId>(v));
    double acc = 0.0;
    double deg = 0.0;
    for (std::size_t k = 0; k < nbrs.size(); ++k) {
      const double w = static_cast<double>(wgts[k]);
      deg += w;
      acc += w * x[static_cast<std::size_t>(nbrs[k])];
    }
    y[v] = deg * x[v] - acc;
  }
}

void deflate_constant(std::span<double> x) {
  if (x.empty()) return;
  double mean = 0.0;
  for (double v : x) mean += v;
  mean /= static_cast<double>(x.size());
  for (double& v : x) v -= mean;
}

double normalize(std::span<double> x) {
  double norm2 = 0.0;
  for (double v : x) norm2 += v * v;
  const double norm = std::sqrt(norm2);
  if (norm > 0.0)
    for (double& v : x) v /= norm;
  return norm;
}

double dot(std::span<const double> a, std::span<const double> b) {
  PNR_REQUIRE(a.size() == b.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

int laplacian_solve_cg(const Graph& g, std::span<const double> b,
                       std::span<double> x, double tol, int max_iters,
                       CgScratch* scratch) {
  const auto n = static_cast<std::size_t>(g.num_vertices());
  PNR_REQUIRE(b.size() == n && x.size() == n);

  CgScratch local;
  CgScratch& ws = scratch ? *scratch : local;
  std::vector<double>& r = ws.r;
  r.assign(b.begin(), b.end());
  deflate_constant(r);
  for (double& v : x) v = 0.0;

  std::vector<double>& p = ws.p;
  p.assign(r.begin(), r.end());
  std::vector<double>& ap = ws.ap;
  ap.assign(n, 0.0);
  double rr = dot(r, r);
  const double b_norm = std::sqrt(dot(r, r));
  if (b_norm == 0.0) return 0;
  const double stop = tol * b_norm;

  for (int it = 1; it <= max_iters; ++it) {
    laplacian_apply(g, p, ap);
    const double pap = dot(p, ap);
    if (pap <= 0.0) return -1;  // L is PSD; zero means p in nullspace
    const double alpha = rr / pap;
    for (std::size_t i = 0; i < n; ++i) {
      x[i] += alpha * p[i];
      r[i] -= alpha * ap[i];
    }
    deflate_constant(std::span<double>(r));  // guard against drift
    const double rr_new = dot(r, r);
    if (std::sqrt(rr_new) <= stop) {
      deflate_constant(x);
      return it;
    }
    const double beta = rr_new / rr;
    rr = rr_new;
    for (std::size_t i = 0; i < n; ++i) p[i] = r[i] + beta * p[i];
  }
  return -1;
}

}  // namespace pnr::graph
