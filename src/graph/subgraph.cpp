#include "graph/subgraph.hpp"

#include "graph/builder.hpp"
#include "util/assert.hpp"

namespace pnr::graph {

Subgraph induced_subgraph(const Graph& g,
                          const std::vector<VertexId>& vertices) {
  std::vector<VertexId> to_local(static_cast<std::size_t>(g.num_vertices()),
                                 kInvalidVertex);
  for (std::size_t i = 0; i < vertices.size(); ++i) {
    const VertexId v = vertices[i];
    PNR_REQUIRE(v >= 0 && v < g.num_vertices());
    PNR_REQUIRE_MSG(to_local[static_cast<std::size_t>(v)] == kInvalidVertex,
                    "duplicate vertex in subgraph selection");
    to_local[static_cast<std::size_t>(v)] = static_cast<VertexId>(i);
  }

  GraphBuilder builder(static_cast<VertexId>(vertices.size()));
  for (std::size_t i = 0; i < vertices.size(); ++i) {
    const VertexId v = vertices[i];
    builder.set_vertex_weight(static_cast<VertexId>(i), g.vertex_weight(v));
    const auto nbrs = g.neighbors(v);
    const auto wgts = g.edge_weights(v);
    for (std::size_t k = 0; k < nbrs.size(); ++k) {
      const VertexId lu = to_local[static_cast<std::size_t>(nbrs[k])];
      if (lu != kInvalidVertex && nbrs[k] > v)
        builder.add_edge(static_cast<VertexId>(i), lu, wgts[k]);
    }
  }
  return Subgraph{builder.build(), vertices};
}

}  // namespace pnr::graph
