#pragma once
// Graph Laplacian operations. Two consumers:
//  * the RSB partitioner's Lanczos iteration (Fiedler vector of L = D - A),
//  * the Hu–Blake optimal diffusion flow, which solves L x = b on the
//    processor connectivity graph.

#include <span>
#include <vector>

#include "graph/csr.hpp"

namespace pnr::graph {

/// y = L x with L = D - A using edge weights.
void laplacian_apply(const Graph& g, std::span<const double> x,
                     std::span<double> y);

/// Make x orthogonal to the all-ones vector (deflates the trivial
/// eigenvector of L).
void deflate_constant(std::span<double> x);

/// Normalize to unit 2-norm; returns the prior norm (0 if x was zero).
double normalize(std::span<double> x);

double dot(std::span<const double> a, std::span<const double> b);

/// Reusable CG work vectors for callers that solve in a tight loop (the
/// rebalancer solves one p-vertex system per sweep).
struct CgScratch {
  std::vector<double> r, p, ap;
};

/// Conjugate gradient for L x = b restricted to the subspace orthogonal to
/// ones (b must sum to 0 on each connected component; caller guarantees a
/// connected graph). Returns iterations used, or -1 if not converged.
/// `scratch`, when given, supplies the work vectors instead of fresh
/// allocations; contents on entry are ignored.
int laplacian_solve_cg(const Graph& g, std::span<const double> b,
                       std::span<double> x, double tol = 1e-10,
                       int max_iters = 10000, CgScratch* scratch = nullptr);

}  // namespace pnr::graph
