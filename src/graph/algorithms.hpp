#pragma once
// Basic graph traversals shared by the partitioners and the Section 8
// processor-connectivity model: BFS hop distances, connected components,
// and all-pairs hop distances for small graphs (the processor graph H^t).

#include <vector>

#include "graph/csr.hpp"

namespace pnr::graph {

/// Hop distances from `source` (-1 for unreachable vertices).
std::vector<std::int32_t> bfs_distances(const Graph& g, VertexId source);

/// Component label per vertex, labels are 0..num_components-1 assigned in
/// order of discovery from vertex 0 upward.
struct Components {
  std::vector<std::int32_t> label;
  std::int32_t count = 0;
};
Components connected_components(const Graph& g);

bool is_connected(const Graph& g);

/// Dense all-pairs hop distance matrix via n BFS runs; intended for small n
/// (processor graphs). dist[i*n+j] == -1 when unreachable.
std::vector<std::int32_t> all_pairs_hops(const Graph& g);

/// Connected components restricted to one part of a partition: labels only
/// vertices v with part[v]==which; others get -1. Returns component count.
std::int32_t part_components(const Graph& g,
                             const std::vector<std::int32_t>& part,
                             std::int32_t which,
                             std::vector<std::int32_t>& label);

}  // namespace pnr::graph
