#include "graph/builder.hpp"

#include <algorithm>
#include <atomic>
#include <utility>

#include "check/level.hpp"
#include "exec/pool.hpp"
#include "util/assert.hpp"
#include "util/prof.hpp"

namespace pnr::graph {

namespace {

/// Shared deterministic assembly: raw arc counts → offset scan → fill →
/// per-vertex sort and duplicate merge → compaction. The kPar instantiation
/// uses relaxed atomics for the cross-vertex counters (increments commute,
/// so the counts are exact); the serial instantiation uses plain integers
/// and is what a one-thread pool runs. Both produce the identical graph:
/// adjacency lists come out sorted by neighbor id with duplicate weights
/// summed, which erases any trace of fill order.
template <bool kPar>
Graph assemble_csr(exec::Pool& pool, VertexId num_vertices,
                   std::span<const WeightedEdge> edges,
                   std::vector<Weight> vwgt) {
  const auto n = static_cast<std::size_t>(num_vertices);
  const auto m = static_cast<std::int64_t>(edges.size());
  const exec::Chunking edge_ck{2048, 4096};
  const exec::Chunking vertex_ck{1024, 4096};

  std::vector<std::int64_t> deg(n, 0);
  const auto bump = [&deg](VertexId v) {
    if constexpr (kPar)
      std::atomic_ref<std::int64_t>(deg[static_cast<std::size_t>(v)])
          .fetch_add(1, std::memory_order_relaxed);
    else
      ++deg[static_cast<std::size_t>(v)];
  };
  pool.parallel_for(
      m,
      [&](std::int64_t b, std::int64_t e) {
        for (std::int64_t k = b; k < e; ++k) {
          const WeightedEdge& edge = edges[static_cast<std::size_t>(k)];
          PNR_ASSERT(edge.u >= 0 && edge.u < num_vertices);
          PNR_ASSERT(edge.v >= 0 && edge.v < num_vertices);
          PNR_ASSERT(edge.u != edge.v);
          bump(edge.u);
          bump(edge.v);
        }
      },
      edge_ck);

  std::vector<std::int64_t> xadj(n + 1, 0);
  const std::int64_t arcs =
      pool.exclusive_scan(deg, std::span<std::int64_t>(xadj).first(n));
  xadj[n] = arcs;

  std::vector<VertexId> tmp_adj(static_cast<std::size_t>(arcs));
  std::vector<Weight> tmp_wgt(static_cast<std::size_t>(arcs));
  std::vector<std::int64_t> cursor(xadj.begin(), xadj.end() - 1);
  const auto place = [&](VertexId at, VertexId nbr, Weight w) {
    std::int64_t slot;
    if constexpr (kPar)
      slot = std::atomic_ref<std::int64_t>(cursor[static_cast<std::size_t>(at)])
                 .fetch_add(1, std::memory_order_relaxed);
    else
      slot = cursor[static_cast<std::size_t>(at)]++;
    tmp_adj[static_cast<std::size_t>(slot)] = nbr;
    tmp_wgt[static_cast<std::size_t>(slot)] = w;
  };
  pool.parallel_for(
      m,
      [&](std::int64_t b, std::int64_t e) {
        for (std::int64_t k = b; k < e; ++k) {
          const WeightedEdge& edge = edges[static_cast<std::size_t>(k)];
          place(edge.u, edge.v, edge.w);
          place(edge.v, edge.u, edge.w);
        }
      },
      edge_ck);

  // Canonicalize each adjacency list in place: sort by (neighbor, weight),
  // merge duplicate neighbors by summing their weights (commutative, so the
  // merged weight is fill-order independent), record the merged degree.
  std::vector<std::int64_t> merged_deg(n, 0);
  pool.parallel_for(
      static_cast<std::int64_t>(n),
      [&](std::int64_t vb, std::int64_t ve) {
        std::vector<std::pair<VertexId, Weight>> scratch;
        for (std::int64_t v = vb; v < ve; ++v) {
          const auto b = static_cast<std::size_t>(xadj[static_cast<std::size_t>(v)]);
          const auto e =
              static_cast<std::size_t>(xadj[static_cast<std::size_t>(v) + 1]);
          scratch.clear();
          for (std::size_t k = b; k < e; ++k)
            scratch.emplace_back(tmp_adj[k], tmp_wgt[k]);
          std::sort(scratch.begin(), scratch.end());
          std::size_t out = b;
          for (std::size_t k = 0; k < scratch.size(); ++k) {
            if (out > b && tmp_adj[out - 1] == scratch[k].first) {
              tmp_wgt[out - 1] += scratch[k].second;
            } else {
              tmp_adj[out] = scratch[k].first;
              tmp_wgt[out] = scratch[k].second;
              ++out;
            }
          }
          merged_deg[static_cast<std::size_t>(v)] =
              static_cast<std::int64_t>(out - b);
        }
      },
      vertex_ck);

  std::vector<std::int64_t> final_xadj(n + 1, 0);
  const std::int64_t final_arcs = pool.exclusive_scan(
      merged_deg, std::span<std::int64_t>(final_xadj).first(n));
  final_xadj[n] = final_arcs;
  std::vector<VertexId> adjncy(static_cast<std::size_t>(final_arcs));
  std::vector<Weight> adjwgt(static_cast<std::size_t>(final_arcs));
  pool.parallel_for(
      static_cast<std::int64_t>(n),
      [&](std::int64_t vb, std::int64_t ve) {
        for (std::int64_t v = vb; v < ve; ++v) {
          const auto src = static_cast<std::size_t>(xadj[static_cast<std::size_t>(v)]);
          const auto dst =
              static_cast<std::size_t>(final_xadj[static_cast<std::size_t>(v)]);
          const auto cnt =
              static_cast<std::size_t>(merged_deg[static_cast<std::size_t>(v)]);
          for (std::size_t k = 0; k < cnt; ++k) {
            adjncy[dst + k] = tmp_adj[src + k];
            adjwgt[dst + k] = tmp_wgt[src + k];
          }
        }
      },
      vertex_ck);

  if (vwgt.empty()) vwgt.assign(n, 1);
  Graph out(std::move(final_xadj), std::move(adjncy), std::move(adjwgt),
            std::move(vwgt));
  PNR_CHECK2_AUDIT("build_csr_from_edges", out.validate());
  return out;
}

}  // namespace

Graph build_csr_from_edges(VertexId num_vertices,
                           std::span<const WeightedEdge> edges,
                           std::vector<Weight> vwgt) {
  PNR_PROF_SPAN("graph.build");
  PNR_REQUIRE(num_vertices >= 0);
  PNR_REQUIRE(vwgt.empty() ||
              vwgt.size() == static_cast<std::size_t>(num_vertices));
  exec::Pool& pool = exec::default_pool();
  if (pool.serial())
    return assemble_csr<false>(pool, num_vertices, edges, std::move(vwgt));
  return assemble_csr<true>(pool, num_vertices, edges, std::move(vwgt));
}

GraphBuilder::GraphBuilder(VertexId num_vertices)
    : num_vertices_(num_vertices),
      half_(static_cast<std::size_t>(num_vertices)),
      vwgt_(static_cast<std::size_t>(num_vertices), 1) {
  PNR_REQUIRE(num_vertices >= 0);
}

void GraphBuilder::add_edge(VertexId u, VertexId v, Weight w) {
  PNR_REQUIRE(u >= 0 && u < num_vertices_);
  PNR_REQUIRE(v >= 0 && v < num_vertices_);
  PNR_REQUIRE_MSG(u != v, "self loops are not representable");
  if (u > v) std::swap(u, v);
  // Accumulate onto an existing entry if present (linear scan: dual-graph
  // vertices have small bounded degree).
  auto& list = half_[static_cast<std::size_t>(u)];
  for (auto& [nbr, wgt] : list)
    if (nbr == v) {
      wgt += w;
      return;
    }
  list.emplace_back(v, w);
}

void GraphBuilder::set_vertex_weight(VertexId v, Weight w) {
  PNR_REQUIRE(v >= 0 && v < num_vertices_);
  vwgt_[static_cast<std::size_t>(v)] = w;
}

void GraphBuilder::add_vertex_weight(VertexId v, Weight w) {
  PNR_REQUIRE(v >= 0 && v < num_vertices_);
  vwgt_[static_cast<std::size_t>(v)] += w;
}

Graph GraphBuilder::build() const {
  PNR_PROF_SPAN("graph.build");
  const auto n = static_cast<std::size_t>(num_vertices_);
  exec::Pool& pool = exec::default_pool();
  if (!pool.serial()) {
    // Flatten the half-edge lists into one batch (sizes → scan → disjoint
    // fill) and hand it to the parallel assembler. The assembler's sorted,
    // duplicate-merged output is bitwise identical to the serial path below.
    std::vector<std::int64_t> counts(n, 0);
    pool.parallel_for(static_cast<std::int64_t>(n),
                      [&](std::int64_t b, std::int64_t e) {
                        for (std::int64_t u = b; u < e; ++u)
                          counts[static_cast<std::size_t>(u)] =
                              static_cast<std::int64_t>(
                                  half_[static_cast<std::size_t>(u)].size());
                      });
    std::vector<std::int64_t> offsets(n, 0);
    const std::int64_t m = pool.exclusive_scan(counts, offsets);
    std::vector<WeightedEdge> edges(static_cast<std::size_t>(m));
    pool.parallel_for(
        static_cast<std::int64_t>(n), [&](std::int64_t b, std::int64_t e) {
          for (std::int64_t u = b; u < e; ++u) {
            std::int64_t o = offsets[static_cast<std::size_t>(u)];
            for (const auto& [v, w] : half_[static_cast<std::size_t>(u)])
              edges[static_cast<std::size_t>(o++)] = {
                  static_cast<VertexId>(u), v, w};
          }
        });
    return assemble_csr<true>(pool, num_vertices_, edges, vwgt_);
  }

  std::vector<std::int64_t> deg(n, 0);
  for (std::size_t u = 0; u < n; ++u)
    for (const auto& [v, w] : half_[u]) {
      (void)w;
      ++deg[u];
      ++deg[static_cast<std::size_t>(v)];
    }

  std::vector<std::int64_t> xadj(n + 1, 0);
  for (std::size_t v = 0; v < n; ++v) xadj[v + 1] = xadj[v] + deg[v];

  std::vector<VertexId> adjncy(static_cast<std::size_t>(xadj[n]));
  std::vector<Weight> adjwgt(adjncy.size());
  std::vector<std::int64_t> cursor(xadj.begin(), xadj.end() - 1);
  for (std::size_t u = 0; u < n; ++u)
    for (const auto& [v, w] : half_[u]) {
      const auto su = static_cast<std::size_t>(u);
      const auto sv = static_cast<std::size_t>(v);
      adjncy[static_cast<std::size_t>(cursor[su])] = v;
      adjwgt[static_cast<std::size_t>(cursor[su])] = w;
      ++cursor[su];
      adjncy[static_cast<std::size_t>(cursor[sv])] = static_cast<VertexId>(u);
      adjwgt[static_cast<std::size_t>(cursor[sv])] = w;
      ++cursor[sv];
    }

  // Sort each adjacency list by neighbor id (stable, deterministic layout).
  // One scratch buffer reused across vertices: this serial path runs once
  // per rebalance sweep on the processor quotient graph, where per-vertex
  // allocations used to dominate.
  std::vector<std::pair<VertexId, Weight>> tmp;
  for (std::size_t v = 0; v < n; ++v) {
    const auto b = static_cast<std::size_t>(xadj[v]);
    const auto e = static_cast<std::size_t>(xadj[v + 1]);
    tmp.clear();
    tmp.reserve(e - b);
    for (std::size_t k = b; k < e; ++k) tmp.emplace_back(adjncy[k], adjwgt[k]);
    std::sort(tmp.begin(), tmp.end());
    for (std::size_t k = b; k < e; ++k) {
      adjncy[k] = tmp[k - b].first;
      adjwgt[k] = tmp[k - b].second;
    }
  }

  Graph out(std::move(xadj), std::move(adjncy), std::move(adjwgt), vwgt_);
  // Every CSR graph in the system is produced here (dual extraction,
  // contraction, subgraphs), so this one audit covers them all.
  PNR_CHECK2_AUDIT("GraphBuilder::build", out.validate());
  return out;
}

}  // namespace pnr::graph
