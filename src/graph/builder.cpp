#include "graph/builder.hpp"

#include <algorithm>
#include <map>

#include "check/level.hpp"
#include "util/assert.hpp"

namespace pnr::graph {

GraphBuilder::GraphBuilder(VertexId num_vertices)
    : num_vertices_(num_vertices),
      half_(static_cast<std::size_t>(num_vertices)),
      vwgt_(static_cast<std::size_t>(num_vertices), 1) {
  PNR_REQUIRE(num_vertices >= 0);
}

void GraphBuilder::add_edge(VertexId u, VertexId v, Weight w) {
  PNR_REQUIRE(u >= 0 && u < num_vertices_);
  PNR_REQUIRE(v >= 0 && v < num_vertices_);
  PNR_REQUIRE_MSG(u != v, "self loops are not representable");
  if (u > v) std::swap(u, v);
  // Accumulate onto an existing entry if present (linear scan: dual-graph
  // vertices have small bounded degree).
  auto& list = half_[static_cast<std::size_t>(u)];
  for (auto& [nbr, wgt] : list)
    if (nbr == v) {
      wgt += w;
      return;
    }
  list.emplace_back(v, w);
}

void GraphBuilder::set_vertex_weight(VertexId v, Weight w) {
  PNR_REQUIRE(v >= 0 && v < num_vertices_);
  vwgt_[static_cast<std::size_t>(v)] = w;
}

void GraphBuilder::add_vertex_weight(VertexId v, Weight w) {
  PNR_REQUIRE(v >= 0 && v < num_vertices_);
  vwgt_[static_cast<std::size_t>(v)] += w;
}

Graph GraphBuilder::build() const {
  const auto n = static_cast<std::size_t>(num_vertices_);
  std::vector<std::int64_t> deg(n, 0);
  for (std::size_t u = 0; u < n; ++u)
    for (const auto& [v, w] : half_[u]) {
      (void)w;
      ++deg[u];
      ++deg[static_cast<std::size_t>(v)];
    }

  std::vector<std::int64_t> xadj(n + 1, 0);
  for (std::size_t v = 0; v < n; ++v) xadj[v + 1] = xadj[v] + deg[v];

  std::vector<VertexId> adjncy(static_cast<std::size_t>(xadj[n]));
  std::vector<Weight> adjwgt(adjncy.size());
  std::vector<std::int64_t> cursor(xadj.begin(), xadj.end() - 1);
  for (std::size_t u = 0; u < n; ++u)
    for (const auto& [v, w] : half_[u]) {
      const auto su = static_cast<std::size_t>(u);
      const auto sv = static_cast<std::size_t>(v);
      adjncy[static_cast<std::size_t>(cursor[su])] = v;
      adjwgt[static_cast<std::size_t>(cursor[su])] = w;
      ++cursor[su];
      adjncy[static_cast<std::size_t>(cursor[sv])] = static_cast<VertexId>(u);
      adjwgt[static_cast<std::size_t>(cursor[sv])] = w;
      ++cursor[sv];
    }

  // Sort each adjacency list by neighbor id (stable, deterministic layout).
  for (std::size_t v = 0; v < n; ++v) {
    const auto b = static_cast<std::size_t>(xadj[v]);
    const auto e = static_cast<std::size_t>(xadj[v + 1]);
    std::vector<std::pair<VertexId, Weight>> tmp;
    tmp.reserve(e - b);
    for (std::size_t k = b; k < e; ++k) tmp.emplace_back(adjncy[k], adjwgt[k]);
    std::sort(tmp.begin(), tmp.end());
    for (std::size_t k = b; k < e; ++k) {
      adjncy[k] = tmp[k - b].first;
      adjwgt[k] = tmp[k - b].second;
    }
  }

  Graph out(std::move(xadj), std::move(adjncy), std::move(adjwgt), vwgt_);
  // Every CSR graph in the system is produced here (dual extraction,
  // contraction, subgraphs), so this one audit covers them all.
  PNR_CHECK2_AUDIT("GraphBuilder::build", out.validate());
  return out;
}

}  // namespace pnr::graph
