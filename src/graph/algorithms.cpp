#include "graph/algorithms.hpp"

#include <queue>

#include "util/assert.hpp"

namespace pnr::graph {

std::vector<std::int32_t> bfs_distances(const Graph& g, VertexId source) {
  PNR_REQUIRE(source >= 0 && source < g.num_vertices());
  std::vector<std::int32_t> dist(static_cast<std::size_t>(g.num_vertices()),
                                 -1);
  std::queue<VertexId> q;
  dist[static_cast<std::size_t>(source)] = 0;
  q.push(source);
  while (!q.empty()) {
    const VertexId v = q.front();
    q.pop();
    for (VertexId u : g.neighbors(v))
      if (dist[static_cast<std::size_t>(u)] < 0) {
        dist[static_cast<std::size_t>(u)] =
            dist[static_cast<std::size_t>(v)] + 1;
        q.push(u);
      }
  }
  return dist;
}

Components connected_components(const Graph& g) {
  const auto n = static_cast<std::size_t>(g.num_vertices());
  Components out;
  out.label.assign(n, -1);
  std::vector<VertexId> stack;
  for (std::size_t s = 0; s < n; ++s) {
    if (out.label[s] >= 0) continue;
    const std::int32_t c = out.count++;
    out.label[s] = c;
    stack.push_back(static_cast<VertexId>(s));
    while (!stack.empty()) {
      const VertexId v = stack.back();
      stack.pop_back();
      for (VertexId u : g.neighbors(v))
        if (out.label[static_cast<std::size_t>(u)] < 0) {
          out.label[static_cast<std::size_t>(u)] = c;
          stack.push_back(u);
        }
    }
  }
  return out;
}

bool is_connected(const Graph& g) {
  if (g.num_vertices() == 0) return true;
  return connected_components(g).count == 1;
}

std::vector<std::int32_t> all_pairs_hops(const Graph& g) {
  const auto n = static_cast<std::size_t>(g.num_vertices());
  std::vector<std::int32_t> dist(n * n, -1);
  for (std::size_t s = 0; s < n; ++s) {
    const auto row = bfs_distances(g, static_cast<VertexId>(s));
    for (std::size_t t = 0; t < n; ++t) dist[s * n + t] = row[t];
  }
  return dist;
}

std::int32_t part_components(const Graph& g,
                             const std::vector<std::int32_t>& part,
                             std::int32_t which,
                             std::vector<std::int32_t>& label) {
  const auto n = static_cast<std::size_t>(g.num_vertices());
  PNR_REQUIRE(part.size() == n);
  label.assign(n, -1);
  std::int32_t count = 0;
  std::vector<VertexId> stack;
  for (std::size_t s = 0; s < n; ++s) {
    if (part[s] != which || label[s] >= 0) continue;
    const std::int32_t c = count++;
    label[s] = c;
    stack.push_back(static_cast<VertexId>(s));
    while (!stack.empty()) {
      const VertexId v = stack.back();
      stack.pop_back();
      for (VertexId u : g.neighbors(v)) {
        const auto su = static_cast<std::size_t>(u);
        if (part[su] == which && label[su] < 0) {
          label[su] = c;
          stack.push_back(u);
        }
      }
    }
  }
  return count;
}

}  // namespace pnr::graph
