#include "graph/io.hpp"

#include <fstream>
#include <sstream>

#include "graph/builder.hpp"
#include "util/log.hpp"

namespace pnr::graph {

bool write_metis(const Graph& g, const std::string& path) {
  std::ofstream f(path);
  if (!f) return false;
  f << g.num_vertices() << ' ' << g.num_edges() << " 011\n";
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    f << g.vertex_weight(v);
    const auto nbrs = g.neighbors(v);
    const auto wgts = g.edge_weights(v);
    for (std::size_t k = 0; k < nbrs.size(); ++k)
      f << ' ' << (nbrs[k] + 1) << ' ' << wgts[k];
    f << '\n';
  }
  return static_cast<bool>(f);
}

std::optional<Graph> read_metis(const std::string& path) {
  std::ifstream f(path);
  if (!f) {
    PNR_LOG_WARN << "cannot open " << path;
    return std::nullopt;
  }

  auto next_line = [&](std::istringstream& out) {
    std::string line;
    while (std::getline(f, line)) {
      if (!line.empty() && line[0] == '%') continue;
      std::istringstream probe(line);
      std::string tok;
      if (probe >> tok) {
        out = std::istringstream(line);
        return true;
      }
    }
    return false;
  };

  f.seekg(0, std::ios::end);
  const auto file_bytes = static_cast<long long>(f.tellg());
  f.seekg(0, std::ios::beg);
  if (!f) return std::nullopt;

  std::istringstream header;
  if (!next_line(header)) return std::nullopt;
  long long n = 0, m = 0;
  std::string fmt = "000";
  int ncon = 1;
  header >> n >> m;
  if (header >> fmt) header >> ncon;
  if (n <= 0 || m < 0 || ncon != 1) return std::nullopt;
  // Every vertex occupies at least one byte of its adjacency line and
  // every edge at least two arc tokens, so header counts beyond the file
  // size are hostile or corrupt; rejecting them BEFORE sizing the builder
  // bounds allocation by the actual file size. The hard cap keeps the
  // VertexId casts and the `2 * m` arithmetic below exact.
  constexpr long long kMaxHeaderCount = 1LL << 30;
  if (n > kMaxHeaderCount || m > kMaxHeaderCount || n > file_bytes ||
      m > file_bytes) {
    PNR_LOG_WARN << path << ": implausible header " << n << ' ' << m;
    return std::nullopt;
  }
  if (fmt.size() > 3) return std::nullopt;
  while (fmt.size() < 3) fmt.insert(fmt.begin(), '0');
  const bool has_vsize = fmt[0] == '1';  // METIS "vertex sizes" — unsupported
  const bool has_vwgt = fmt[1] == '1';
  const bool has_ewgt = fmt[2] == '1';
  if (has_vsize) return std::nullopt;

  GraphBuilder builder(static_cast<VertexId>(n));
  long long arcs = 0;
  for (long long v = 0; v < n; ++v) {
    std::istringstream line;
    if (!next_line(line)) return std::nullopt;
    if (has_vwgt) {
      Weight w;
      if (!(line >> w) || w < 0 || w > (1LL << 40)) return std::nullopt;
      builder.set_vertex_weight(static_cast<VertexId>(v), w);
    }
    long long nbr;
    while (line >> nbr) {
      Weight w = 1;
      // The edge-weight cap bounds the builder's duplicate-arc
      // accumulation: at most 2m ≤ 2^31 arcs of ≤ 2^31 each can land on
      // one pair, which stays well inside Weight.
      if (has_ewgt && (!(line >> w) || w < 0 || w > (1LL << 31)))
        return std::nullopt;
      if (nbr < 1 || nbr > n) return std::nullopt;
      if (++arcs > 2 * m) return std::nullopt;  // more arcs than claimed
      // Each undirected edge appears in both endpoint lines; add it once.
      if (nbr - 1 > v)
        builder.add_edge(static_cast<VertexId>(v),
                         static_cast<VertexId>(nbr - 1), w);
    }
  }
  if (arcs != 2 * m) {
    PNR_LOG_WARN << path << ": header claims " << m << " edges, found "
                 << arcs << " arcs";
    return std::nullopt;
  }
  Graph g = builder.build();
  if (g.num_edges() != m) return std::nullopt;  // asymmetric listing
  return g;
}

}  // namespace pnr::graph
