#pragma once
// Graph contraction for the multilevel partitioners. Heavy-edge matching
// (HEM) follows Hendrickson–Leland / Karypis–Kumar: visit vertices in random
// order and match each unmatched vertex with its unmatched neighbor of
// heaviest connecting edge. The PNR repartitioner additionally restricts the
// matching to endpoints in the *same subset* of the current partition so the
// current assignment survives contraction (Section 9's modification (a)).

#include <optional>
#include <vector>

#include "graph/csr.hpp"
#include "util/rng.hpp"

namespace pnr::graph {

struct CoarsenOptions {
  /// Refuse matches that would create a coarse vertex heavier than this
  /// (0 = no cap). Keeps the coarsest graph balanceable.
  Weight max_vertex_weight = 0;
  /// If set, only match vertices u,v with (*partition)[u]==(*partition)[v].
  const std::vector<std::int32_t>* partition = nullptr;
  /// Random matching instead of heavy-edge (used by the ablation bench).
  bool random_matching = false;
};

struct CoarseLevel {
  Graph graph;                        ///< contracted graph
  std::vector<VertexId> fine_to_coarse;  ///< map of size fine n
};

/// One level of matching + contraction. Unmatched vertices map alone.
CoarseLevel coarsen_once(const Graph& g, util::Rng& rng,
                         const CoarsenOptions& options);

/// Full multilevel hierarchy: coarsen until the graph has at most
/// `target_vertices` vertices or contraction stalls (shrink < 10%).
/// levels[0] corresponds to one application of coarsen_once on the input.
std::vector<CoarseLevel> build_hierarchy(const Graph& g, util::Rng& rng,
                                         VertexId target_vertices,
                                         const CoarsenOptions& options);

/// Push a coarse partition down one level: part_fine[v] = part_coarse[map[v]].
std::vector<std::int32_t> project_partition(
    const std::vector<VertexId>& fine_to_coarse,
    const std::vector<std::int32_t>& coarse_part);

}  // namespace pnr::graph
