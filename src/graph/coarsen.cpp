#include "graph/coarsen.hpp"

#include <algorithm>
#include <numeric>

#include "check/level.hpp"
#include "exec/pool.hpp"
#include "graph/builder.hpp"
#include "util/assert.hpp"
#include "util/prof.hpp"

namespace pnr::graph {

namespace {

/// Returns match[v] = partner (or v itself when unmatched).
std::vector<VertexId> compute_matching(const Graph& g, util::Rng& rng,
                                       const CoarsenOptions& options) {
  const auto n = static_cast<std::size_t>(g.num_vertices());
  std::vector<VertexId> match(n, kInvalidVertex);
  std::vector<VertexId> order(n);
  std::iota(order.begin(), order.end(), 0);
  rng.shuffle(order);

  for (VertexId v : order) {
    const auto sv = static_cast<std::size_t>(v);
    if (match[sv] != kInvalidVertex) continue;
    VertexId best = v;
    Weight best_w = -1;
    const auto nbrs = g.neighbors(v);
    const auto wgts = g.edge_weights(v);
    for (std::size_t k = 0; k < nbrs.size(); ++k) {
      const VertexId u = nbrs[k];
      const auto su = static_cast<std::size_t>(u);
      if (match[su] != kInvalidVertex) continue;
      if (options.partition &&
          (*options.partition)[su] != (*options.partition)[sv])
        continue;
      if (options.max_vertex_weight > 0 &&
          g.vertex_weight(v) + g.vertex_weight(u) > options.max_vertex_weight)
        continue;
      if (options.random_matching) {
        // First admissible neighbor in the shuffled visit order is effectively
        // random; pick uniformly among admissible ones via reservoir step.
        if (best == v || rng.next_below(2) == 0) best = u;
      } else if (wgts[k] > best_w ||
                 (wgts[k] == best_w && best != v && u < best)) {
        best_w = wgts[k];
        best = u;
      }
    }
    match[sv] = best;
    if (best != v) match[static_cast<std::size_t>(best)] = v;
  }
  return match;
}

}  // namespace

CoarseLevel coarsen_once(const Graph& g, util::Rng& rng,
                         const CoarsenOptions& options) {
  PNR_PROF_SPAN("coarsen.once");
  // Matching and contraction both scan every adjacency list once.
  prof::count("coarsen.edges_scanned", 2 * g.num_edges());
  const auto n = static_cast<std::size_t>(g.num_vertices());
  if (options.partition) PNR_REQUIRE(options.partition->size() == n);

  const auto match = compute_matching(g, rng, options);

  // Assign coarse ids: each matched pair and each singleton gets one.
  std::vector<VertexId> fine_to_coarse(n, kInvalidVertex);
  VertexId next = 0;
  for (std::size_t v = 0; v < n; ++v) {
    if (fine_to_coarse[v] != kInvalidVertex) continue;
    const VertexId partner = match[v];
    fine_to_coarse[v] = next;
    if (partner != static_cast<VertexId>(v))
      fine_to_coarse[static_cast<std::size_t>(partner)] = next;
    ++next;
  }

  std::vector<Weight> cw(static_cast<std::size_t>(next), 0);
  for (std::size_t v = 0; v < n; ++v)
    cw[static_cast<std::size_t>(fine_to_coarse[v])] +=
        g.vertex_weight(static_cast<VertexId>(v));

  // Contraction: project every surviving fine edge (v < nbr, different
  // coarse endpoints) into a flat batch — per-vertex counts, an offset
  // scan, then a disjoint parallel fill — and let the deterministic CSR
  // assembler merge the duplicates. Bitwise identical for any pool size.
  exec::Pool& pool = exec::default_pool();
  std::vector<std::int64_t> counts(n, 0);
  pool.parallel_for(
      static_cast<std::int64_t>(n), [&](std::int64_t b, std::int64_t e) {
        for (std::int64_t v = b; v < e; ++v) {
          const VertexId cv = fine_to_coarse[static_cast<std::size_t>(v)];
          std::int64_t c = 0;
          for (const VertexId u : g.neighbors(static_cast<VertexId>(v)))
            if (static_cast<VertexId>(v) < u &&
                cv != fine_to_coarse[static_cast<std::size_t>(u)])
              ++c;
          counts[static_cast<std::size_t>(v)] = c;
        }
      });
  std::vector<std::int64_t> offsets(n, 0);
  const std::int64_t num_coarse_edges = pool.exclusive_scan(counts, offsets);
  std::vector<WeightedEdge> coarse_edges(
      static_cast<std::size_t>(num_coarse_edges));
  pool.parallel_for(
      static_cast<std::int64_t>(n), [&](std::int64_t b, std::int64_t e) {
        for (std::int64_t v = b; v < e; ++v) {
          const VertexId cv = fine_to_coarse[static_cast<std::size_t>(v)];
          std::int64_t o = offsets[static_cast<std::size_t>(v)];
          const auto nbrs = g.neighbors(static_cast<VertexId>(v));
          const auto wgts = g.edge_weights(static_cast<VertexId>(v));
          for (std::size_t k = 0; k < nbrs.size(); ++k) {
            const VertexId cu =
                fine_to_coarse[static_cast<std::size_t>(nbrs[k])];
            if (static_cast<VertexId>(v) < nbrs[k] && cv != cu)
              coarse_edges[static_cast<std::size_t>(o++)] = {cv, cu, wgts[k]};
          }
        }
      });

  CoarseLevel level{build_csr_from_edges(next, coarse_edges, std::move(cw)),
                    std::move(fine_to_coarse)};
  PNR_CHECK1(level.graph.total_vertex_weight() == g.total_vertex_weight(),
             "contraction changed the total vertex weight");
  return level;
}

std::vector<CoarseLevel> build_hierarchy(const Graph& g, util::Rng& rng,
                                         VertexId target_vertices,
                                         const CoarsenOptions& options) {
  PNR_PROF_SPAN("coarsen.hierarchy");
  std::vector<CoarseLevel> levels;
  const Graph* current = &g;
  while (current->num_vertices() > target_vertices) {
    CoarseLevel level = coarsen_once(*current, rng, options);
    const auto before = current->num_vertices();
    const auto after = level.graph.num_vertices();
    if (after >= before - before / 10) break;  // contraction stalled
    levels.push_back(std::move(level));
    current = &levels.back().graph;
  }
  prof::count("coarsen.levels", static_cast<std::int64_t>(levels.size()));
  return levels;
}

std::vector<std::int32_t> project_partition(
    const std::vector<VertexId>& fine_to_coarse,
    const std::vector<std::int32_t>& coarse_part) {
  std::vector<std::int32_t> fine(fine_to_coarse.size());
  for (std::size_t v = 0; v < fine_to_coarse.size(); ++v) {
    const auto c = static_cast<std::size_t>(fine_to_coarse[v]);
    PNR_ASSERT(c < coarse_part.size());
    fine[v] = coarse_part[c];
  }
  return fine;
}

}  // namespace pnr::graph
