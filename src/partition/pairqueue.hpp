#pragma once
// The p×p table of gain-sorted priority queues described in Section 9 of the
// paper: entry (i,j) holds candidate vertex moves from subset i to subset j,
// ordered by potential gain. The refiner repeatedly takes the best head
// across the table. Entries are versioned so that stale candidates (pushed
// before a neighboring move changed their gain) are discarded lazily on pop.

#include <cstdint>
#include <optional>
#include <queue>
#include <vector>

#include "graph/csr.hpp"
#include "partition/partition.hpp"

namespace pnr::part {

class PairQueueTable {
 public:
  explicit PairQueueTable(PartId num_parts);

  struct Entry {
    graph::VertexId v;
    PartId from;
    PartId to;
    double gain;
    std::uint32_t version;
  };

  /// Queue a candidate move. `version` must match the vertex's current
  /// version for the entry to be considered live at pop time.
  void push(graph::VertexId v, PartId from, PartId to, double gain,
            std::uint32_t version);

  /// Pop the entry with the largest gain across all p² queues, skipping
  /// entries whose version is stale according to `current_version`.
  /// Returns nullopt when every queue is exhausted.
  std::optional<Entry> pop_best(const std::vector<std::uint32_t>& current_version);

  void clear();
  std::size_t size() const { return live_hint_; }

 private:
  struct Item {
    double gain;
    std::uint64_t order;  // FIFO tiebreak for determinism
    graph::VertexId v;
    std::uint32_t version;
    bool operator<(const Item& o) const {
      if (gain != o.gain) return gain < o.gain;
      return order > o.order;  // earlier push wins ties
    }
  };

  PartId p_;
  std::vector<std::priority_queue<Item>> queues_;  // index = from*p + to
  std::uint64_t next_order_ = 0;
  std::size_t live_hint_ = 0;
};

}  // namespace pnr::part
