#pragma once
// The table of gain-sorted candidate moves described in Section 9 of the
// paper: entry (i,j) holds candidate vertex moves from subset i to subset j,
// ordered by potential gain, and the refiner repeatedly takes the best
// candidate across the whole table.
//
// The paper sketches this as a p×p grid of queues; here all cells share one
// *indexed* d-ary heap. The refiner only ever asks for the global best head,
// so per-cell heaps would just turn every pop into an O(p²) scan of heads —
// measured as the dominant queue cost once gains became exact. A candidate is
// addressed by (vertex, to) and can be re-keyed or removed in place in
// O(log size), which is what lets the refiner maintain exact gains
// incrementally: when a neighboring move changes a candidate's gain the
// entry is updated where it sits, instead of pushing a fresh copy and lazily
// discarding the stale one on pop (the churn the versioned variant of this
// table suffered from). A vertex holds at most one entry per destination
// subset, all filed under its current subset.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "graph/csr.hpp"
#include "partition/partition.hpp"

namespace pnr::part {

class PairQueueTable {
 public:
  /// The table addresses entries by (vertex, to), so it must know both the
  /// subset count and the vertex count up front.
  PairQueueTable(PartId num_parts, graph::VertexId num_vertices);

  struct Entry {
    graph::VertexId v;
    PartId from;
    PartId to;
    double gain;
  };

  /// Insert candidate (v: from → to), or re-key it in place if present.
  /// An existing entry keeps its arrival order (FIFO tiebreak), so updating
  /// a gain does not demote the entry behind equal-gain newcomers.
  void push_or_update(graph::VertexId v, PartId from, PartId to, double gain);

  /// Drop candidate (v: from → to) if present.
  void remove(graph::VertexId v, PartId from, PartId to);

  /// Drop every candidate of v (all filed under its current subset `from`).
  void remove_all(graph::VertexId v, PartId from);

  bool contains(graph::VertexId v, PartId to) const {
    return pos_[slot(v, to)] >= 0;
  }

  /// Pop the entry with the largest gain across the table (FIFO order
  /// breaks ties). Returns nullopt when the table is empty.
  std::optional<Entry> pop_best();

  void clear();
  std::size_t size() const { return heap_.size(); }

  /// Total push_or_update calls that inserted a *new* entry (stat hook).
  std::int64_t pushes() const { return pushes_; }

  /// Deep audit for pnr::check: heap order (no child ranks better than its
  /// parent), (v,to)-index/heap agreement in both directions, and entry
  /// sanity (from != to, ids in range). Empty string when consistent.
  std::string self_check() const;

 private:
  struct Item {
    double gain;
    std::uint64_t order;  // FIFO tiebreak for determinism
    graph::VertexId v;
    PartId from;
    PartId to;
  };

  std::size_t slot(graph::VertexId v, PartId to) const {
    return static_cast<std::size_t>(v) * static_cast<std::size_t>(p_) +
           static_cast<std::size_t>(to);
  }

  /// True iff a ranks strictly better than b (larger gain, earlier order).
  /// This is a *total* order, so the pop sequence is independent of the
  /// heap's internal shape — the arity below is a pure perf knob.
  static bool better(const Item& a, const Item& b) {
    if (a.gain != b.gain) return a.gain > b.gain;
    return a.order < b.order;
  }

  /// 4-ary: half the sift depth of a binary heap, and the four children sit
  /// in adjacent cache lines. Pops (full-depth sift_down) outnumber pushes
  /// in the refiner's exact-gain mode, which is the trade d-ary heaps win.
  static constexpr std::size_t kArity = 4;

  void sift_up(std::size_t i);
  void sift_down(std::size_t i);
  void remove_at(std::size_t i);

  PartId p_;
  std::vector<Item> heap_;
  std::vector<std::int32_t> pos_;  // (v,to) -> index in heap_
  std::uint64_t next_order_ = 0;
  std::int64_t pushes_ = 0;
};

}  // namespace pnr::part
