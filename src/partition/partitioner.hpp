#pragma once
// Facade selecting among the partitioning algorithms by name; the benches
// and the PARED driver use this single entry point.

#include <optional>
#include <span>
#include <string>

#include "partition/partition.hpp"
#include "util/rng.hpp"

namespace pnr::part {

enum class Method {
  kMultilevelKL,
  kRSB,
  kInertial,  ///< requires coordinates
  kRCB,       ///< requires coordinates
  kRandom,    ///< stress-test baseline
};

struct PartitionerOptions {
  Method method = Method::kMultilevelKL;
  double imbalance_tol = 0.03;
  /// Row-major n×dim coordinates, required by Method::kInertial.
  std::span<const double> coords;
  int dim = 2;
};

/// Parse "mlkl" / "rsb" / "inertial" / "rcb" / "random" (plus the aliases
/// "multilevel-kl", "geometric", "coordinate" and the display names
/// method_name prints, so parse_method(method_name(m)) == m for every
/// Method); nullopt on unknown.
std::optional<Method> parse_method(const std::string& name);
const char* method_name(Method m);

Partition make_partition(const Graph& g, PartId p, util::Rng& rng,
                         const PartitionerOptions& options = {});

}  // namespace pnr::part
