#pragma once
// Incrementally maintained partition-connectivity state, shared by the KL
// refiner and the greedy rebalancer.
//
// ConnTable keeps, for every vertex v, the sparse row conn(v, ·): the total
// edge weight from v into each subset it touches. The row is built once in
// O(deg) and then kept exact with O(1) delta updates per incident move, so a
// gain query costs a scan of the (tiny) row instead of a full adjacency
// re-gather. A vertex touches at most min(deg, p) subsets, which bounds the
// backing pool by 2·|E| slots regardless of p.
//
// VertexSet is the companion O(1) indexed set used to track the boundary
// (vertices with at least one cross-partition edge) incrementally.

#include <span>
#include <vector>

#include "graph/csr.hpp"
#include "partition/partition.hpp"

namespace pnr::part {

/// Sparse conn(v, part) rows over a fixed graph; exact under delta updates.
class ConnTable {
 public:
  struct Slot {
    PartId part;
    Weight weight;
  };

  /// (Re)build every row from scratch for the given assignment.
  void build(const Graph& g, const std::vector<PartId>& assign,
             PartId num_parts);

  /// conn(v, t); 0 when v has no edge into subset t. O(row size).
  Weight get(graph::VertexId v, PartId t) const {
    for (const Slot& s : entries(v))
      if (s.part == t) return s.weight;
    return 0;
  }

  /// The nonzero slots of row v, in unspecified (but deterministic) order.
  std::span<const Slot> entries(graph::VertexId v) const {
    const auto sv = static_cast<std::size_t>(v);
    return {pool_.data() + offset_[sv], static_cast<std::size_t>(count_[sv])};
  }

  /// conn(v, t) += delta, creating the slot on demand and dropping it when
  /// it reaches zero. Callers must order updates remove-first (the -delta of
  /// a move before its +delta) so rows never exceed their capacity.
  void add(graph::VertexId v, PartId t, Weight delta);

  /// True iff v has an edge into a subset other than `own`.
  bool is_boundary(graph::VertexId v, PartId own) const {
    const auto row = entries(v);
    if (row.size() >= 2) return true;
    return row.size() == 1 && row[0].part != own;
  }

  bool empty() const { return offset_.empty(); }

  /// Number of rows (vertices of the graph the table was built for).
  /// offset_ is CSR-style with a trailing end sentinel, hence the -1.
  std::size_t rows() const { return offset_.empty() ? 0 : offset_.size() - 1; }

 private:
  std::vector<std::int64_t> offset_;  ///< row start in pool_
  std::vector<std::int32_t> count_;   ///< live slots per row
  std::vector<Slot> pool_;
};

/// Apply the conn-table deltas of moving v from `from` to `to`: every
/// neighbor u gets conn(u, from) -= w(u,v) and conn(u, to) += w(u,v).
/// (Row v itself is unaffected — it describes v's neighbors, none of which
/// moved.) Call with the *graph* adjacency; the partition array itself is
/// updated by the caller.
void conn_apply_move(ConnTable& conn, const Graph& g, graph::VertexId v,
                     PartId from, PartId to);

/// Incrementally maintained processor quotient graph: the dense p×p cut
/// weight between every subset pair, kept exact under vertex moves straight
/// from the mover's conn row (O(row) per move, vs. the O(E) full-graph scan
/// of processor_graph). The rebalancer consumes only H's adjacency pattern
/// (which neighbor pairs exist), so the unit-weight CSR it hands to Hu–Blake
/// is rebuilt lazily and only when some pair crossed zero — by construction
/// bit-identical to re-deriving H from scratch every sweep.
class QuotientGraph {
 public:
  /// (Re)build the dense cut weights from scratch. O(E).
  void build(const Graph& g, const std::vector<PartId>& assign,
             PartId num_parts);

  /// Account for moving v from `from` to `to`, reading v's conn row (which
  /// the move itself never changes — it describes v's neighbors). Call once
  /// per move, any time around the matching conn_apply_move.
  void apply_move(const ConnTable& conn, graph::VertexId v, PartId from,
                  PartId to);

  /// Unit-weight processor connectivity graph (neighbors sorted, all edge
  /// weights 1) for the Hu–Blake solve; cached while the adjacency pattern
  /// is unchanged. Counts "rebalance.quotient_rebuilds" on each rebuild.
  const graph::Graph& unit_graph();

  /// Cut weight between subsets a and b (a != b).
  Weight cross(PartId a, PartId b) const {
    return a < b ? cross_[static_cast<std::size_t>(a) *
                              static_cast<std::size_t>(p_) +
                          static_cast<std::size_t>(b)]
                 : cross_[static_cast<std::size_t>(b) *
                              static_cast<std::size_t>(p_) +
                          static_cast<std::size_t>(a)];
  }

  /// Empty string when the dense weights equal a from-scratch recompute for
  /// the given assignment (level-2 audit), else the first violation.
  std::string violation(const Graph& g, const Partition& pi) const;

 private:
  Weight& at(PartId a, PartId b) {
    return a < b ? cross_[static_cast<std::size_t>(a) *
                              static_cast<std::size_t>(p_) +
                          static_cast<std::size_t>(b)]
                 : cross_[static_cast<std::size_t>(b) *
                              static_cast<std::size_t>(p_) +
                          static_cast<std::size_t>(a)];
  }
  void touch(PartId a, PartId b, Weight delta);

  PartId p_ = 0;
  std::vector<Weight> cross_;  ///< upper triangle of the p×p cut matrix
  graph::Graph unit_;
  bool unit_valid_ = false;
};

/// Exact connectivity state handed along the rebalance → refine chain that
/// the uncoarsening loop runs at every level. Both passes keep the conn
/// table (and, when valid, the quotient graph) exact under every move they
/// apply — rollbacks included — so the next pass in the chain adopts the
/// state instead of re-scanning the graph. The owner must call invalidate()
/// whenever the graph or the assignment changes outside those passes (e.g.
/// when projecting to the next level).
struct SharedConnState {
  ConnTable conn;
  QuotientGraph quotient;
  bool conn_valid = false;
  bool quotient_valid = false;

  void invalidate() {
    conn_valid = false;
    quotient_valid = false;
  }
};

/// Dense O(1) membership set over vertex ids with an iterable item list
/// (swap-with-last removal; order is deterministic given the op sequence).
class VertexSet {
 public:
  void reset(std::size_t n) {
    pos_.assign(n, -1);
    items_.clear();
  }

  bool contains(graph::VertexId v) const {
    return pos_[static_cast<std::size_t>(v)] >= 0;
  }

  void insert(graph::VertexId v) {
    auto& p = pos_[static_cast<std::size_t>(v)];
    if (p >= 0) return;
    p = static_cast<std::int32_t>(items_.size());
    items_.push_back(v);
  }

  void erase(graph::VertexId v) {
    auto& p = pos_[static_cast<std::size_t>(v)];
    if (p < 0) return;
    const graph::VertexId last = items_.back();
    items_[static_cast<std::size_t>(p)] = last;
    pos_[static_cast<std::size_t>(last)] = p;
    items_.pop_back();
    p = -1;
  }

  const std::vector<graph::VertexId>& items() const { return items_; }
  std::size_t size() const { return items_.size(); }

 private:
  std::vector<std::int32_t> pos_;
  std::vector<graph::VertexId> items_;
};

}  // namespace pnr::part
