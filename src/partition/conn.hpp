#pragma once
// Incrementally maintained partition-connectivity state, shared by the KL
// refiner and the greedy rebalancer.
//
// ConnTable keeps, for every vertex v, the sparse row conn(v, ·): the total
// edge weight from v into each subset it touches. The row is built once in
// O(deg) and then kept exact with O(1) delta updates per incident move, so a
// gain query costs a scan of the (tiny) row instead of a full adjacency
// re-gather. A vertex touches at most min(deg, p) subsets, which bounds the
// backing pool by 2·|E| slots regardless of p.
//
// VertexSet is the companion O(1) indexed set used to track the boundary
// (vertices with at least one cross-partition edge) incrementally.

#include <span>
#include <vector>

#include "graph/csr.hpp"
#include "partition/partition.hpp"

namespace pnr::part {

/// Sparse conn(v, part) rows over a fixed graph; exact under delta updates.
class ConnTable {
 public:
  struct Slot {
    PartId part;
    Weight weight;
  };

  /// (Re)build every row from scratch for the given assignment.
  void build(const Graph& g, const std::vector<PartId>& assign,
             PartId num_parts);

  /// conn(v, t); 0 when v has no edge into subset t. O(row size).
  Weight get(graph::VertexId v, PartId t) const {
    for (const Slot& s : entries(v))
      if (s.part == t) return s.weight;
    return 0;
  }

  /// The nonzero slots of row v, in unspecified (but deterministic) order.
  std::span<const Slot> entries(graph::VertexId v) const {
    const auto sv = static_cast<std::size_t>(v);
    return {pool_.data() + offset_[sv], static_cast<std::size_t>(count_[sv])};
  }

  /// conn(v, t) += delta, creating the slot on demand and dropping it when
  /// it reaches zero. Callers must order updates remove-first (the -delta of
  /// a move before its +delta) so rows never exceed their capacity.
  void add(graph::VertexId v, PartId t, Weight delta);

  /// True iff v has an edge into a subset other than `own`.
  bool is_boundary(graph::VertexId v, PartId own) const {
    const auto row = entries(v);
    if (row.size() >= 2) return true;
    return row.size() == 1 && row[0].part != own;
  }

  bool empty() const { return offset_.empty(); }

 private:
  std::vector<std::int64_t> offset_;  ///< row start in pool_
  std::vector<std::int32_t> count_;   ///< live slots per row
  std::vector<Slot> pool_;
};

/// Apply the conn-table deltas of moving v from `from` to `to`: every
/// neighbor u gets conn(u, from) -= w(u,v) and conn(u, to) += w(u,v).
/// (Row v itself is unaffected — it describes v's neighbors, none of which
/// moved.) Call with the *graph* adjacency; the partition array itself is
/// updated by the caller.
void conn_apply_move(ConnTable& conn, const Graph& g, graph::VertexId v,
                     PartId from, PartId to);

/// Dense O(1) membership set over vertex ids with an iterable item list
/// (swap-with-last removal; order is deterministic given the op sequence).
class VertexSet {
 public:
  void reset(std::size_t n) {
    pos_.assign(n, -1);
    items_.clear();
  }

  bool contains(graph::VertexId v) const {
    return pos_[static_cast<std::size_t>(v)] >= 0;
  }

  void insert(graph::VertexId v) {
    auto& p = pos_[static_cast<std::size_t>(v)];
    if (p >= 0) return;
    p = static_cast<std::int32_t>(items_.size());
    items_.push_back(v);
  }

  void erase(graph::VertexId v) {
    auto& p = pos_[static_cast<std::size_t>(v)];
    if (p < 0) return;
    const graph::VertexId last = items_.back();
    items_[static_cast<std::size_t>(p)] = last;
    pos_[static_cast<std::size_t>(last)] = p;
    items_.pop_back();
    p = -1;
  }

  const std::vector<graph::VertexId>& items() const { return items_; }
  std::size_t size() const { return items_.size(); }

 private:
  std::vector<std::int32_t> pos_;
  std::vector<graph::VertexId> items_;
};

}  // namespace pnr::part
