#include "partition/pairqueue.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace pnr::part {

PairQueueTable::PairQueueTable(PartId num_parts, graph::VertexId num_vertices)
    : p_(num_parts),
      pos_(static_cast<std::size_t>(num_vertices) * num_parts, -1) {
  PNR_REQUIRE(num_parts > 0);
  PNR_REQUIRE(num_vertices >= 0);
}

void PairQueueTable::sift_up(std::size_t i) {
  while (i > 0) {
    const std::size_t parent = (i - 1) / kArity;
    if (!better(heap_[i], heap_[parent])) break;
    std::swap(heap_[i], heap_[parent]);
    pos_[slot(heap_[i].v, heap_[i].to)] = static_cast<std::int32_t>(i);
    i = parent;
  }
  pos_[slot(heap_[i].v, heap_[i].to)] = static_cast<std::int32_t>(i);
}

void PairQueueTable::sift_down(std::size_t i) {
  for (;;) {
    std::size_t best = i;
    const std::size_t first = kArity * i + 1;
    const std::size_t last = std::min(first + kArity, heap_.size());
    for (std::size_t c = first; c < last; ++c)
      if (better(heap_[c], heap_[best])) best = c;
    if (best == i) break;
    std::swap(heap_[i], heap_[best]);
    pos_[slot(heap_[i].v, heap_[i].to)] = static_cast<std::int32_t>(i);
    i = best;
  }
  pos_[slot(heap_[i].v, heap_[i].to)] = static_cast<std::int32_t>(i);
}

void PairQueueTable::push_or_update(graph::VertexId v, PartId from, PartId to,
                                    double gain) {
  PNR_REQUIRE(from >= 0 && from < p_ && to >= 0 && to < p_ && from != to);
  const std::int32_t i = pos_[slot(v, to)];
  if (i < 0) {
    heap_.push_back(Item{gain, next_order_++, v, from, to});
    sift_up(heap_.size() - 1);
    ++pushes_;
    return;
  }
  auto& item = heap_[static_cast<std::size_t>(i)];
  PNR_ASSERT(item.v == v && item.from == from);
  item.gain = gain;
  sift_up(static_cast<std::size_t>(i));
  sift_down(static_cast<std::size_t>(pos_[slot(v, to)]));
}

void PairQueueTable::remove_at(std::size_t i) {
  pos_[slot(heap_[i].v, heap_[i].to)] = -1;
  const std::size_t last = heap_.size() - 1;
  if (i != last) {
    heap_[i] = heap_[last];
    heap_.pop_back();
    sift_up(i);
    sift_down(static_cast<std::size_t>(pos_[slot(heap_[i].v, heap_[i].to)]));
  } else {
    heap_.pop_back();
  }
}

void PairQueueTable::remove(graph::VertexId v, [[maybe_unused]] PartId from,
                            PartId to) {
  const std::int32_t i = pos_[slot(v, to)];
  if (i < 0) return;
  PNR_ASSERT(heap_[static_cast<std::size_t>(i)].from == from);
  remove_at(static_cast<std::size_t>(i));
}

void PairQueueTable::remove_all(graph::VertexId v, PartId from) {
  for (PartId to = 0; to < p_; ++to) remove(v, from, to);
}

std::optional<PairQueueTable::Entry> PairQueueTable::pop_best() {
  if (heap_.empty()) return std::nullopt;
  const Item item = heap_[0];
  remove_at(0);
  return Entry{item.v, item.from, item.to, item.gain};
}

std::string PairQueueTable::self_check() const {
  const auto num_vertices =
      static_cast<graph::VertexId>(pos_.size() / static_cast<std::size_t>(p_));
  std::size_t live = 0;
  for (std::size_t i = 0; i < heap_.size(); ++i) {
    const Item& item = heap_[i];
    if (item.v < 0 || item.v >= num_vertices)
      return "heap entry " + std::to_string(i) + " has vertex out of range";
    if (item.from < 0 || item.from >= p_ || item.to < 0 || item.to >= p_ ||
        item.from == item.to)
      return "heap entry " + std::to_string(i) + " has bad subset pair";
    if (i > 0 && better(item, heap_[(i - 1) / kArity]))
      return "heap property violated at index " + std::to_string(i);
    if (pos_[slot(item.v, item.to)] != static_cast<std::int32_t>(i))
      return "position index stale for heap entry " + std::to_string(i);
  }
  for (std::size_t s = 0; s < pos_.size(); ++s) {
    const std::int32_t i = pos_[s];
    if (i < 0) continue;
    ++live;
    if (static_cast<std::size_t>(i) >= heap_.size())
      return "position index points past the heap at slot " +
             std::to_string(s);
    const Item& item = heap_[static_cast<std::size_t>(i)];
    if (slot(item.v, item.to) != s)
      return "position index points at a foreign entry at slot " +
             std::to_string(s);
  }
  if (live != heap_.size())
    return "position index tracks " + std::to_string(live) +
           " entries for a heap of " + std::to_string(heap_.size());
  return {};
}

void PairQueueTable::clear() {
  for (const Item& item : heap_) pos_[slot(item.v, item.to)] = -1;
  heap_.clear();
}

}  // namespace pnr::part
