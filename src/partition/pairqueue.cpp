#include "partition/pairqueue.hpp"

#include "util/assert.hpp"

namespace pnr::part {

PairQueueTable::PairQueueTable(PartId num_parts)
    : p_(num_parts),
      queues_(static_cast<std::size_t>(num_parts) * num_parts) {
  PNR_REQUIRE(num_parts > 0);
}

void PairQueueTable::push(graph::VertexId v, PartId from, PartId to,
                          double gain, std::uint32_t version) {
  PNR_REQUIRE(from >= 0 && from < p_ && to >= 0 && to < p_ && from != to);
  queues_[static_cast<std::size_t>(from) * p_ + to].push(
      Item{gain, next_order_++, v, version});
  ++live_hint_;
}

std::optional<PairQueueTable::Entry> PairQueueTable::pop_best(
    const std::vector<std::uint32_t>& current_version) {
  for (;;) {
    // Scan the p² heads for the best live candidate. p ≤ 128 in all the
    // paper's experiments, so this scan is cheap relative to gain updates.
    double best_gain = 0.0;
    std::uint64_t best_order = 0;
    std::size_t best_q = queues_.size();
    for (std::size_t q = 0; q < queues_.size(); ++q) {
      auto& pq = queues_[q];
      // Drop stale heads so the scan sees live gains only.
      while (!pq.empty() &&
             pq.top().version !=
                 current_version[static_cast<std::size_t>(pq.top().v)]) {
        pq.pop();
        --live_hint_;
      }
      if (pq.empty()) continue;
      const Item& head = pq.top();
      if (best_q == queues_.size() || head.gain > best_gain ||
          (head.gain == best_gain && head.order < best_order)) {
        best_gain = head.gain;
        best_order = head.order;
        best_q = q;
      }
    }
    if (best_q == queues_.size()) return std::nullopt;
    const Item item = queues_[best_q].top();
    queues_[best_q].pop();
    --live_hint_;
    return Entry{item.v, static_cast<PartId>(best_q / p_),
                 static_cast<PartId>(best_q % p_), item.gain, item.version};
  }
}

void PairQueueTable::clear() {
  for (auto& q : queues_)
    while (!q.empty()) q.pop();
  live_hint_ = 0;
}

}  // namespace pnr::part
