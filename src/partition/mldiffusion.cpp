#include "partition/mldiffusion.hpp"

#include <algorithm>

#include "graph/coarsen.hpp"
#include "partition/rebalance.hpp"
#include "partition/refine.hpp"
#include "util/assert.hpp"
#include "util/prof.hpp"

namespace pnr::part {

MlDiffusionResult multilevel_diffusion(const Graph& g, Partition& pi,
                                       util::Rng& rng,
                                       const MlDiffusionOptions& options) {
  PNR_PROF_SPAN("mld.repartition");
  PNR_REQUIRE(pi.valid_for(g));
  MlDiffusionResult result;
  const Partition original = pi;

  // Partition-respecting hierarchy, re-projecting the constraint per level.
  graph::CoarsenOptions copt;
  copt.max_vertex_weight =
      std::max<Weight>(1, g.total_vertex_weight() / (4 * pi.num_parts));
  const graph::VertexId floor_size = std::max<graph::VertexId>(
      options.coarsest_size, 4 * pi.num_parts);

  std::vector<graph::CoarseLevel> levels;
  std::vector<std::vector<PartId>> assigns{pi.assign};
  {
    const Graph* cur = &g;
    while (cur->num_vertices() > floor_size) {
      copt.partition = &assigns.back();
      graph::CoarseLevel level = graph::coarsen_once(*cur, rng, copt);
      const auto before = cur->num_vertices();
      const auto after = level.graph.num_vertices();
      if (after >= before - before / 10) break;
      std::vector<PartId> assign(static_cast<std::size_t>(after), 0);
      for (std::size_t v = 0; v < level.fine_to_coarse.size(); ++v)
        assign[static_cast<std::size_t>(level.fine_to_coarse[v])] =
            assigns.back()[v];
      assigns.push_back(std::move(assign));
      levels.push_back(std::move(level));
      cur = &levels.back().graph;
    }
  }
  result.levels = static_cast<int>(levels.size());

  RefineOptions ropt;
  ropt.hard_balance = true;
  ropt.imbalance_tol = options.imbalance_tol;
  ropt.max_passes = options.kl_passes;

  RebalanceOptions bopt;
  bopt.tol = options.imbalance_tol / 2.0;

  std::vector<PartId> assign = assigns.back();
  PNR_PROF_SPAN("mld.uncoarsen_refine");
  for (std::size_t k = levels.size() + 1; k-- > 0;) {
    const Graph& level_graph = k == 0 ? g : levels[k - 1].graph;
    Partition level_pi(pi.num_parts, std::move(assign));
    rebalance_greedy(level_graph, level_pi, bopt);
    refine_partition(level_graph, level_pi, ropt);
    if (k == 0) rebalance_greedy(level_graph, level_pi, bopt);
    assign = std::move(level_pi.assign);
    if (k > 0)
      assign = graph::project_partition(levels[k - 1].fine_to_coarse, assign);
  }

  pi.assign = std::move(assign);
  result.weight_moved = migration_cost(g, original, pi);
  result.moves = moved_vertices(original, pi);
  return result;
}

}  // namespace pnr::part
